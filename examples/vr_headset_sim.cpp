/**
 * @file
 * VR-headset sizing study: given a target per-eye resolution and memory
 * budget, how do the three systems (Orin-class GPU, GSCore, Neo) fare
 * against the 60/90 FPS service-level objectives the AR/VR platforms in
 * §2.1 demand?
 *
 *   ./vr_headset_sim [scene] [scale]
 *
 * This is the workload the paper's introduction motivates: per-eye QHD at
 * headset refresh rates on an edge-device memory system.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/gpu_model.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"
#include "sim/perf_harness.h"
#include "sim/workload_cache.h"

using namespace neo;

namespace
{

void
report(const char *system, const SequenceResult &r)
{
    double fps = r.meanFps();
    std::printf("  %-10s %7.1f FPS  %6.2f ms/frame  %6.2f GB/60f   "
                "60FPS:%-4s 90FPS:%s\n",
                system, fps, r.meanLatencyMs(), r.trafficGBPer60Frames(),
                fps >= 60.0 ? "yes" : "no", fps >= 90.0 ? "yes" : "no");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scene = argc > 1 ? argv[1] : "Playground";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    const int frames = 6;

    std::printf("VR headset sizing: scene %s (scale %.2f), per-eye "
                "resolutions, 51.2 GB/s edge memory\n\n",
                scene.c_str(), scale);

    GpuModel orin;
    GscoreModel gscore;
    NeoModel neo;

    for (Resolution res : {kResHD, kResFHD, kResQHD}) {
        std::printf("%s per eye (%dx%d)\n", res.name, res.width,
                    res.height);

        WorkloadKey k16{scene, scale, res, 16, frames, 1.0f};
        WorkloadKey k64{scene, scale, res, 64, frames, 1.0f};
        auto seq16 = cachedWorkloads(k16, defaultCacheDir());
        auto seq64 = cachedWorkloads(k64, defaultCacheDir());

        report("Orin AGX", simulateGpu(orin, seq16));
        report("GSCore", simulateGscore(gscore, seq16));
        report("Neo", simulateNeo(neo, seq64));
        std::printf("\n");
    }

    std::printf("(stereo rendering doubles the per-frame work: halve the "
                "FPS columns for a two-eye budget)\n");
    return 0;
}
