/**
 * @file
 * Socket front end demo/smoke server: one NeoServer behind the framed
 * TCP protocol (serve/net/), serving loopback clients until a Shutdown
 * request drains it.
 *
 *   ./neo_serve_net [--threads N] [--port P] [--print-solo N]
 *                   [--state-dir PATH]
 *
 * --state-dir enables durable sessions (serve/durable/): state is
 * checkpointed + journaled under PATH, and on startup the server
 * recovers whatever a previous incarnation persisted, printing
 * "recovered sessions=N snapshot=S replayed=R skipped=K" for the
 * crash-recovery smoke to parse.
 *
 * Prints "listening on 127.0.0.1:PORT" once bound (PORT is ephemeral
 * unless --port/NEO_SERVER_NET_PORT pins it) — the CI smoke parses that
 * line, drives the server with neo_serve_net_client, and compares the
 * served frame hashes against the "solo F HASH" lines --print-solo
 * emits from an in-process reference render of the same trajectory.
 * Exits 0 only after a graceful drain completes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/neo_renderer.h"
#include "scene/synthetic.h"
#include "scene/trajectory.h"
#include "serve/net/frontend.h"
#include "serve/server.h"

using namespace neo;
using namespace neo::serve;

namespace
{

/** The scene/trajectory contract shared with neo_serve_net_client: the
    client opens an orbit at speed 1.0 and 256x192, which is exactly
    what the solo reference below renders. */
std::shared_ptr<const GaussianScene>
demoScene()
{
    SyntheticSceneParams params;
    params.count = 8000;
    params.clusters = 6;
    params.extent = 8.0f;
    params.seed = 2026;
    params.name = "net-demo";
    return std::make_shared<const GaussianScene>(generateScene(params));
}

} // namespace

int
main(int argc, char **argv)
{
    int threads = 0;
    int port = -1;
    int print_solo = 0;
    const char *state_dir = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--print-solo") == 0 &&
                   i + 1 < argc) {
            print_solo = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--state-dir") == 0 &&
                   i + 1 < argc) {
            state_dir = argv[++i];
        } else {
            std::fprintf(stderr, "usage: neo_serve_net [--threads N] "
                                 "[--port P] [--print-solo N] "
                                 "[--state-dir PATH]\n");
            return 2;
        }
    }

    auto scene = demoScene();
    ServerConfig cfg = serverConfigFromEnv();
    cfg.pipeline.threads = threads;
    NeoServer server(scene, cfg);

    if (print_solo > 0) {
        // Ground truth for the smoke: what a solo renderer produces for
        // the trajectory the client will open over the wire.
        const Trajectory traj(TrajectoryKind::Orbit, *scene, 1.0f);
        const Resolution res{256, 192, "net"};
        PipelineOptions solo_opts = cfg.pipeline;
        solo_opts.threads = 1;
        NeoRenderer solo(solo_opts);
        Image img;
        for (int f = 0; f < print_solo; ++f) {
            solo.renderFrameInto(img, *scene, traj.cameraAt(f, res),
                                 static_cast<uint64_t>(f));
            std::printf("solo %d %016llx\n", f,
                        static_cast<unsigned long long>(
                            img.contentHash()));
        }
    }

    if (state_dir) {
        if (!server.enableDurability(
                serve::durable::durableConfigFromEnv(state_dir))) {
            std::fprintf(stderr,
                         "neo_serve_net: durable mode failed for %s\n",
                         state_dir);
            return 1;
        }
        const serve::durable::RecoveryStatus &rec = server.recovery();
        std::printf("recovered sessions=%u snapshot=%llu replayed=%llu "
                    "skipped=%u\n",
                    rec.sessions_restored,
                    static_cast<unsigned long long>(rec.snapshot_seq),
                    static_cast<unsigned long long>(rec.journal_replayed),
                    rec.generations_skipped);
        std::fflush(stdout);
    }

    net::NetConfig ncfg = net::netConfigFromEnv();
    if (port >= 0)
        ncfg.port = port;
    net::NetFrontend frontend(server, ncfg);
    if (!frontend.start()) {
        std::fprintf(stderr, "neo_serve_net: bind/listen failed\n");
        return 1;
    }
    std::printf("listening on 127.0.0.1:%d\n", frontend.port());
    std::fflush(stdout); // the CI smoke parses the port from a pipe

    frontend.run(); // returns after a drain completes (Shutdown frame)

    const net::NetCounters &c = frontend.counters();
    std::printf("served %llu requests over %llu connections "
                "(%llu frames in, %llu out, %llu protocol errors)\n",
                static_cast<unsigned long long>(c.requests_served),
                static_cast<unsigned long long>(c.accepted),
                static_cast<unsigned long long>(c.frames_in),
                static_cast<unsigned long long>(c.frames_out),
                static_cast<unsigned long long>(c.protocol_errors));
    if (!frontend.drained()) {
        std::fprintf(stderr, "neo_serve_net: exited without a completed "
                             "drain\n");
        return 1;
    }
    std::printf("drained cleanly\n");
    return 0;
}
