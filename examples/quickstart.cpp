/**
 * @file
 * Quickstart: build a synthetic Gaussian scene, render a few frames with
 * Neo's reuse-and-update renderer, and write the last frame to a PPM.
 *
 *   ./quickstart [output.ppm] [--threads N]
 *
 * N = 0 defers to NEO_THREADS (default serial); -1 uses every core. The
 * rendered frames are bit-identical for any thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/parallel.h"
#include "core/neo_renderer.h"
#include "scene/synthetic.h"
#include "scene/trajectory.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const char *out_path = "quickstart.ppm";
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --threads needs a value\n");
                return 2;
            }
            threads = std::atoi(argv[++i]);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "error: unknown flag '%s' (usage: quickstart "
                         "[output.ppm] [--threads N])\n",
                         argv[i]);
            return 2;
        } else {
            out_path = argv[i];
        }
    }

    // 1. Make a scene. Real applications would load a trained 3DGS model;
    //    here we synthesize one (see scene/synthetic.h).
    SyntheticSceneParams params;
    params.count = 30000;
    params.clusters = 8;
    params.extent = 8.0f;
    params.seed = 2024;
    GaussianScene scene = generateScene(params);
    std::printf("scene: %zu gaussians, radius %.1f\n", scene.size(),
                scene.bounding_radius);

    // 2. Create the renderer. Defaults follow the paper's Table 1
    //    (64-px tiles, 8-px subtiles, 256-entry sorting chunks); the
    //    thread count drives every tile-parallel stage.
    PipelineOptions opts = NeoRenderer::neoDefaultOptions();
    opts.threads = threads;
    NeoRenderer renderer(opts);
    std::printf("threads: %d effective (requested %d, machine has %d)\n",
                resolveThreadCount(threads), threads,
                hardwareThreadCount());

    // 3. Orbit the scene and render. Frame 0 cold-starts with a full
    //    sort; every later frame reuses and updates the sorted tables.
    Trajectory orbit(TrajectoryKind::Orbit, scene);
    Resolution res{640, 384, "demo"};

    Image image;
    for (int frame = 0; frame < 5; ++frame) {
        Camera camera = orbit.cameraAt(frame, res);
        NeoFrameReport report;
        image = renderer.renderFrame(scene, camera, frame, &report);
        std::printf(
            "frame %d: %llu instances, %llu incoming, %llu outgoing, "
            "retention %.3f%s\n",
            frame,
            static_cast<unsigned long long>(report.frame.instances),
            static_cast<unsigned long long>(report.reuse.incoming),
            static_cast<unsigned long long>(report.reuse.outgoing_marked),
            report.reuse.mean_retention,
            report.reuse.cold_start ? " (cold start)" : "");
    }

    // 4. Save the last frame.
    image.clampChannels();
    if (!image.writePpm(out_path)) {
        std::fprintf(stderr, "error: could not write %s\n", out_path);
        return 1;
    }
    std::printf("wrote %s (%dx%d)\n", out_path, image.width(),
                image.height());
    return 0;
}
