/**
 * @file
 * Multi-session serving demo: one NeoServer, three camera streams with
 * different QoS targets, an overloaded queue, an injected stall that
 * quarantines its session, and the recovery back to Healthy — while the
 * other sessions' frames stay bit-identical to solo runs.
 *
 *   ./multi_session_server [--threads N]
 *
 * Server policy knobs come from the NEO_SERVER_* environment variables
 * (see serve/qos.h); this demo overrides a few per session to show the
 * drop policies and the degradation ladder.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/parallel.h"
#include "scene/synthetic.h"
#include "scene/trajectory.h"
#include "serve/server.h"

using namespace neo;
using namespace neo::serve;

int
main(int argc, char **argv)
{
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: multi_session_server [--threads N]\n");
            return 2;
        }
    }

    // One scene shared (immutably) by every session.
    SyntheticSceneParams params;
    params.count = 20000;
    params.clusters = 6;
    params.extent = 8.0f;
    params.seed = 2026;
    auto scene =
        std::make_shared<const GaussianScene>(generateScene(params));
    std::printf("scene: %zu gaussians shared across sessions\n",
                scene->size());

    ServerConfig cfg = serverConfigFromEnv();
    cfg.max_sessions = 3;
    cfg.pipeline.threads = threads;
    // Small ladder so the demo's quarantine recovers within a few frames.
    cfg.quarantine_max_failures = 3;
    cfg.backoff_base = 1;
    cfg.backoff_cap = 4;
    NeoServer server(scene, cfg);

    const Resolution res{480, 270, "demo"};

    // Session A: interactive viewer — the queue coalesces to the latest
    // camera and a deadline drives the degradation ladder.
    QosTarget interactive;
    interactive.target_fps = 120.0; // aggressive: forces degradation
    interactive.queue_capacity = 2;
    interactive.drop_policy = DropPolicy::CoalesceLatest;
    interactive.restore_after = 2;

    // Session B: offline exporter — no deadline, never degrades, frames
    // stay bit-identical to a solo run by construction.
    QosTarget exact; // defaults: no deadline, drop-oldest

    // Session C: best-effort stream with a reject-backoff queue.
    QosTarget besteffort;
    besteffort.queue_capacity = 2;
    besteffort.drop_policy = DropPolicy::RejectBackoff;

    const AdmitResult a = server.open(
        Trajectory(TrajectoryKind::Orbit, *scene), res, interactive);
    const AdmitResult b = server.open(
        Trajectory(TrajectoryKind::Dolly, *scene), res, exact);
    const AdmitResult c = server.open(
        Trajectory(TrajectoryKind::Walk, *scene), res, besteffort);
    if (!a.admitted || !b.admitted || !c.admitted) {
        std::fprintf(stderr, "admission failed\n");
        return 1;
    }
    // A fourth stream bounces off admission control.
    const AdmitResult full =
        server.open(Trajectory(TrajectoryKind::Orbit, *scene), res);
    std::printf("admission: a=%u b=%u c=%u, fourth open -> %s\n",
                a.session_id, b.session_id, c.session_id,
                full.admitted ? "admitted?!" : full.reason);

    // Wedge session A's sort stage for two frames mid-run: the watchdog
    // trips, A is quarantined and rebuilt; B and C never notice.
    Session *sa = server.session(a.session_id);
    Session *sb = server.session(b.session_id);
    Session *sc = server.session(c.session_id);

    for (int f = 0; f < 24; ++f) {
        if (f == 12)
            sa->injectStall(StageWatchdog::Sort, 250.0, 2);
        // Overload: three submissions per pump into bounded queues.
        for (int burst = 0; burst < 3; ++burst) {
            sa->submit(static_cast<uint64_t>(f));
            sb->submit(static_cast<uint64_t>(f));
            sc->submit(static_cast<uint64_t>(f));
        }
        server.pump();
        std::printf("pump %2d: a=%-11s b=%-11s c=%-11s (a rebuilds %u)\n",
                    f, sessionStateName(sa->state()),
                    sessionStateName(sb->state()),
                    sessionStateName(sc->state()), sa->rebuilds());
    }
    server.drain();

    const SessionStats sas = sa->stats();
    const SessionStats sbs = sb->stats();
    const SessionStats scs = sc->stats();
    std::printf("\nsession a: %llu rendered, %llu coalesced, %llu "
                "degraded frames, %llu trips, %llu quarantines, %llu "
                "recoveries\n",
                static_cast<unsigned long long>(sas.rendered),
                static_cast<unsigned long long>(sas.coalesced),
                static_cast<unsigned long long>(sas.degraded_frames),
                static_cast<unsigned long long>(sas.watchdog_trips),
                static_cast<unsigned long long>(sas.quarantines),
                static_cast<unsigned long long>(sas.recoveries));
    std::printf("session b: %llu rendered, %llu dropped-oldest, "
                "%llu degraded frames (exact stream: must be 0)\n",
                static_cast<unsigned long long>(sbs.rendered),
                static_cast<unsigned long long>(sbs.dropped_oldest),
                static_cast<unsigned long long>(sbs.degraded_frames));
    std::printf("session c: %llu rendered, %llu rejected with backoff "
                "hints\n",
                static_cast<unsigned long long>(scs.rendered),
                static_cast<unsigned long long>(scs.rejected));

    const bool ok = sa->state() == SessionState::Healthy &&
                    sas.recoveries >= 1 && sbs.degraded_frames == 0;
    std::printf("\n%s\n", ok ? "demo OK: stall contained to session a"
                             : "demo FAILED");
    return ok ? 0 : 1;
}
