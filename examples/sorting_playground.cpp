/**
 * @file
 * Sorting playground: drives the sorting substrate directly — no renderer
 * — to show how Dynamic Partial Sorting repairs an almost-sorted table
 * across frames, how interleaved boundaries let entries cross chunks
 * (Fig. 9), and what each step costs in hardware-counter terms.
 *
 *   ./sorting_playground
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "sort/dynamic_partial.h"
#include "sort/merge_unit.h"

using namespace neo;

namespace
{

void
show(const char *label, const std::vector<TileEntry> &t)
{
    std::printf("%-10s", label);
    for (const auto &e : t)
        std::printf("%3.0f", e.depth);
    std::printf("   (sorted %.0f%%)\n", 100.0 * sortedFraction(t));
}

} // namespace

int
main()
{
    // --- Fig. 9 in miniature: one entry displaced across a chunk -------
    std::printf("Fig. 9 walkthrough: chunk = 8, entry 0 starts in the "
                "wrong chunk\n\n");
    std::vector<TileEntry> t;
    for (int i = 0; i < 16; ++i)
        t.push_back({static_cast<GaussianId>(i),
                     static_cast<float>(i + 1), true});
    t[12].depth = 0.0f; // belongs at the front, two chunks away

    DynamicPartialConfig fixed;
    fixed.chunk = 8;
    fixed.interleave = false;
    auto t_fixed = t;
    for (uint64_t frame = 1; frame <= 4; ++frame)
        dynamicPartialSort(t_fixed, frame, fixed);
    show("fixed:", t_fixed);

    DynamicPartialConfig inter;
    inter.chunk = 8;
    inter.interleave = true;
    auto t_inter = t;
    for (uint64_t frame = 1; frame <= 4; ++frame) {
        dynamicPartialSort(t_inter, frame, inter);
        char label[16];
        std::snprintf(label, sizeof(label), "t%llu:",
                      static_cast<unsigned long long>(frame));
        show(label, t_inter);
    }

    // --- A frame of the reuse-and-update flow on a raw table ------------
    std::printf("\nreuse-and-update on a 2048-entry table (chunk 256)\n");
    Rng rng(7);
    std::vector<TileEntry> table;
    for (int i = 0; i < 2048; ++i)
        table.push_back({static_cast<GaussianId>(i),
                         rng.uniform(0.0f, 100.0f), true});
    std::sort(table.begin(), table.end(), entryDepthLess);

    // Camera moved: depths drift, some entries leave, newcomers arrive.
    for (auto &e : table)
        e.depth += rng.uniform(-0.5f, 0.5f);
    for (int k = 0; k < 40; ++k)
        table[rng.below(table.size())].valid = false;
    std::vector<TileEntry> incoming;
    for (int k = 0; k < 64; ++k)
        incoming.push_back({static_cast<GaussianId>(10000 + k),
                            rng.uniform(0.0f, 100.0f), true});
    std::sort(incoming.begin(), incoming.end(), entryDepthLess);

    SortCoreStats stats;
    dynamicPartialSort(table, 1, {}, &stats); // (1) reorder
    std::vector<TileEntry> merged;
    msuUpdateTable(table, incoming, merged, &stats.msu); // (2)+(3)

    std::printf("  after reorder+merge: %zu entries, sorted %.2f%%\n",
                merged.size(), 100.0 * sortedFraction(merged));
    std::printf("  hardware counters: %llu chunk loads, %llu BSU "
                "compare-exchanges, %llu MSU elements, %llu deletions\n",
                static_cast<unsigned long long>(stats.chunk_loads),
                static_cast<unsigned long long>(
                    stats.bsu.compare_exchanges),
                static_cast<unsigned long long>(
                    stats.msu.elements_processed),
                static_cast<unsigned long long>(
                    stats.msu.filtered_invalid));
    std::printf("  off-chip traffic this frame: %llu bytes (vs %zu bytes "
                "for a from-scratch multi-pass sort)\n",
                static_cast<unsigned long long>(
                    (stats.entries_read + stats.entries_written) * 8),
                (table.size() * 2 * 4) * 8 * 2);
    return 0;
}
