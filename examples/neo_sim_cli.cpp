/**
 * @file
 * Command-line simulator front end — the "run your own experiment" entry
 * point a downstream user would reach for:
 *
 *   ./neo_sim_cli --scene Train --system neo --res qhd \
 *                 --frames 8 --speed 2 --bandwidth 51.2 --scale 1.0 \
 *                 --threads 8
 *
 * Prints per-frame latency/traffic and the sequence summary for one of
 * the three modeled systems (orin | gscore | neo). --threads N drives the
 * functional workload extraction on a cache miss (0 = NEO_THREADS env,
 * -1 = all cores); extracted workloads are bit-identical for any value.
 */

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/parallel.h"
#include "sim/gpu_model.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"
#include "sim/perf_harness.h"
#include "sim/workload_cache.h"

using namespace neo;

namespace
{

struct Args
{
    std::string scene = "Family";
    std::string system = "neo";
    std::string res = "qhd";
    int frames = 8;
    float speed = 1.0f;
    double bandwidth = 51.2;
    double scale = 1.0;
    int threads = 0;
};

Resolution
parseRes(const std::string &r)
{
    if (r == "hd")
        return kResHD;
    if (r == "fhd")
        return kResFHD;
    if (r == "qhd")
        return kResQHD;
    fatal("unknown resolution '%s' (hd|fhd|qhd)", r.c_str());
}

Args
parse(int argc, char **argv)
{
    Args a;
    for (int i = 1; i + 1 < argc; i += 2) {
        std::string k = argv[i];
        const char *v = argv[i + 1];
        if (k == "--scene")
            a.scene = v;
        else if (k == "--system")
            a.system = v;
        else if (k == "--res")
            a.res = v;
        else if (k == "--frames")
            a.frames = std::atoi(v);
        else if (k == "--speed")
            a.speed = static_cast<float>(std::atof(v));
        else if (k == "--bandwidth")
            a.bandwidth = std::atof(v);
        else if (k == "--scale")
            a.scale = std::atof(v);
        else if (k == "--threads")
            a.threads = std::atoi(v);
        else
            fatal("unknown flag '%s'", k.c_str());
    }
    return a;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse(argc, argv);
    Resolution res = parseRes(args.res);
    const int tile_px = args.system == "neo" ? 64 : 16;

    WorkloadKey key{args.scene, args.scale, res, tile_px, args.frames,
                    args.speed};
    std::printf("threads: %d effective (requested %d, machine has %d)\n",
                resolveThreadCount(args.threads), args.threads,
                hardwareThreadCount());
    auto seq = cachedWorkloads(key, defaultCacheDir(), args.threads);

    SequenceResult result;
    if (args.system == "orin") {
        GpuConfig cfg;
        cfg.dram.bandwidth_gbps = args.bandwidth;
        result = simulateGpu(GpuModel(cfg), seq);
    } else if (args.system == "gscore") {
        GscoreConfig cfg;
        cfg.dram.bandwidth_gbps = args.bandwidth;
        result = simulateGscore(GscoreModel(cfg), seq);
    } else if (args.system == "neo") {
        NeoConfig cfg;
        cfg.dram.bandwidth_gbps = args.bandwidth;
        result = simulateNeo(NeoModel(cfg), seq);
    } else {
        fatal("unknown system '%s' (orin|gscore|neo)",
              args.system.c_str());
    }

    std::printf("%s on %s @ %s, %.1f GB/s, speed x%.1f, scale %.2f\n",
                args.system.c_str(), args.scene.c_str(), res.name,
                args.bandwidth, static_cast<double>(args.speed),
                args.scale);
    std::printf("%-7s %-12s %-12s %-10s %-10s %-10s\n", "frame",
                "latency(ms)", "traffic(MB)", "FE%", "sort%", "raster%");
    for (size_t f = 0; f < result.frames.size(); ++f) {
        const FrameSim &s = result.frames[f];
        std::printf("%-7zu %-12.2f %-12.1f %-10.1f %-10.1f %-10.1f\n", f,
                    s.latencyMs(), s.traffic.total() / 1e6,
                    100.0 * s.traffic.fraction(Stage::FeatureExtraction),
                    100.0 * s.traffic.fraction(Stage::Sorting),
                    100.0 * s.traffic.fraction(Stage::Rasterization));
    }
    std::printf("\nsummary: %.1f FPS mean, %.2f ms worst frame, %.2f GB "
                "per 60 frames\n",
                result.meanFps(), result.maxLatencyMs(),
                result.trafficGBPer60Frames());
    return 0;
}
