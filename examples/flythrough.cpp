/**
 * @file
 * Scene fly-through: renders a camera path through a large synthetic
 * scene with Neo's reuse-and-update sorting and dumps numbered PPM frames
 * plus a per-frame reuse log. This is the "walkthrough of a generated
 * world" scenario from the paper's introduction.
 *
 *   ./flythrough [frames] [output_prefix]
 */

#include <cstdio>
#include <cstdlib>

#include "core/neo_renderer.h"
#include "metrics/psnr.h"
#include "scene/datasets.h"
#include "scene/trajectory.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const int frames = argc > 1 ? std::atoi(argv[1]) : 8;
    const char *prefix = argc > 2 ? argv[2] : "flythrough";

    // A scaled-down "Lighthouse" so the functional renderer stays
    // interactive on a CPU; bump the scale for higher fidelity.
    ScenePreset preset = presetByName("Lighthouse");
    GaussianScene scene = buildScene(preset, 0.05);
    Trajectory path(TrajectoryKind::Walk, scene);
    Resolution res{512, 320, "demo"};

    PipelineOptions opts;
    opts.tile_px = 64;
    NeoRenderer neo(opts);
    Renderer reference(opts);

    std::printf("%-6s %-10s %-10s %-10s %-12s %-10s\n", "frame",
                "instances", "incoming", "outgoing", "retention",
                "PSNR(ref)");
    for (int f = 0; f < frames; ++f) {
        Camera cam = path.cameraAt(f, res);
        NeoFrameReport report;
        Image img = neo.renderFrame(scene, cam, f, &report);

        // Reference check against the exact per-frame sort.
        Image ref = reference.render(scene, cam);
        double quality = psnr(ref, img);

        std::printf("%-6d %-10llu %-10llu %-10llu %-12.3f %-10.1f\n", f,
                    static_cast<unsigned long long>(report.frame.instances),
                    static_cast<unsigned long long>(report.reuse.incoming),
                    static_cast<unsigned long long>(
                        report.reuse.outgoing_marked),
                    report.reuse.mean_retention, quality);

        char path_buf[256];
        std::snprintf(path_buf, sizeof(path_buf), "%s_%03d.ppm", prefix, f);
        img.clampChannels();
        img.writePpm(path_buf);
    }
    std::printf("wrote %d frames to %s_NNN.ppm\n", frames, prefix);
    return 0;
}
