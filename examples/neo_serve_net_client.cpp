/**
 * @file
 * Minimal blocking client for the socket front end (the CI smoke
 * driver): connect to a neo_serve_net server on loopback, open one
 * orbit session, submit N frames, print each served hash, and
 * optionally request a graceful server drain.
 *
 *   ./neo_serve_net_client --port P [--frames N] [--shutdown]
 *                          [--resume ID] [--start-frame F] [--abandon]
 *
 * --resume re-binds to a session that survived a durable server restart
 * instead of opening a new one; --start-frame submits frames [F, F+N)
 * so a resumed stream continues where the crashed one stopped.
 * --abandon exits without closing the session — the crash-recovery
 * smoke uses it to leave a live session behind for a later --resume.
 *
 * Prints "frame F HASH" per served frame (compared by ci.sh against
 * the server's "solo F HASH" reference lines) and "shutdown acked"
 * when --shutdown is acknowledged.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/net/client.h"

using namespace neo::serve::net;

int
main(int argc, char **argv)
{
    int port = -1;
    int frames = 3;
    int start_frame = 0;
    long resume_id = -1;
    bool shutdown = false;
    bool abandon = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
            frames = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--start-frame") == 0 &&
                   i + 1 < argc) {
            start_frame = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--resume") == 0 && i + 1 < argc) {
            resume_id = std::atol(argv[++i]);
        } else if (std::strcmp(argv[i], "--shutdown") == 0) {
            shutdown = true;
        } else if (std::strcmp(argv[i], "--abandon") == 0) {
            abandon = true;
        } else {
            std::fprintf(stderr, "usage: neo_serve_net_client --port P "
                                 "[--frames N] [--shutdown] "
                                 "[--resume ID] [--start-frame F] "
                                 "[--abandon]\n");
            return 2;
        }
    }
    if (port <= 0) {
        std::fprintf(stderr, "neo_serve_net_client: --port required\n");
        return 2;
    }

    NetClient client;
    if (!client.connect(port)) {
        std::fprintf(stderr, "connect to 127.0.0.1:%d failed\n", port);
        return 1;
    }

    OpenOkReply ok;
    if (resume_id >= 0) {
        if (!client.resumeSession(static_cast<uint32_t>(resume_id),
                                  &ok)) {
            std::fprintf(stderr, "resume-session failed: %s\n",
                         wireErrorName(client.lastError()));
            return 1;
        }
        std::printf("session %u resumed\n", ok.session_id);
    } else {
        // Must match the solo reference neo_serve_net renders: orbit,
        // speed 1.0, 256x192.
        OpenSessionReq open;
        open.trajectory_kind = 0;
        open.speed = 1.0f;
        open.width = 256;
        open.height = 192;
        if (!client.openSession(open, &ok)) {
            std::fprintf(stderr, "open-session failed: %s\n",
                         wireErrorName(client.lastError()));
            return 1;
        }
        std::printf("session %u open\n", ok.session_id);
    }

    for (int f = start_frame; f < start_frame + frames; ++f) {
        SubmitFrameReq req;
        req.session_id = ok.session_id;
        req.frame_index = static_cast<uint64_t>(f);
        SubmitReply reply;
        if (!client.submitFrame(req, &reply) || !reply.rendered) {
            std::fprintf(stderr, "submit-frame %d failed: %s\n", f,
                         wireErrorName(client.lastError()));
            return 1;
        }
        std::printf("frame %d %016llx\n", f,
                    static_cast<unsigned long long>(reply.frame_hash));
        // The crash-recovery smoke reads these lines through a pipe
        // while deciding when to kill the server mid-stream.
        std::fflush(stdout);
    }

    StatsReply stats;
    if (!client.stats(ok.session_id, &stats)) {
        std::fprintf(stderr, "stats failed: %s\n",
                     wireErrorName(client.lastError()));
        return 1;
    }
    std::printf("rendered %llu, deadline misses %llu, faults %llu\n",
                static_cast<unsigned long long>(stats.stats.rendered),
                static_cast<unsigned long long>(
                    stats.stats.deadline_misses),
                static_cast<unsigned long long>(stats.stats.faults));

    if (shutdown) {
        if (!client.shutdownServer()) {
            std::fprintf(stderr, "shutdown not acked: %s\n",
                         wireErrorName(client.lastError()));
            return 1;
        }
        std::printf("shutdown acked\n");
    } else if (!abandon && !client.closeSession(ok.session_id)) {
        std::fprintf(stderr, "close-session failed: %s\n",
                     wireErrorName(client.lastError()));
        return 1;
    }
    return 0;
}
