/**
 * @file
 * Table 4: per-component area and power breakdown of the Neo accelerator
 * at 7 nm / 1 GHz.
 *
 * Expected: the additional hardware Neo introduces over a GSCore-style
 * design (MSU+ and ITU) accounts for ~9% of total area and power.
 */

#include <cstdio>
#include <string>

#include "sim/area_power.h"

using namespace neo;

int
main()
{
    std::printf("==========================================================\n");
    std::printf("Table 4 - area and power breakdown of Neo components\n");
    std::printf("  paper: MSU+ and ITU together are 9.04%% of area, "
                "8.91%% of power\n");
    std::printf("==========================================================\n");
    std::printf("%-30s %-12s %-12s\n", "Component", "Area (mm2)",
                "Power (mW)");

    auto rows = neoTable4Rows();
    for (const auto &r : rows)
        std::printf("%-30s %-12.4f %-12.1f\n", r.name.c_str(), r.area_mm2,
                    r.power_mw);

    // The new hardware blocks Neo adds on top of a GSCore-style design.
    NeoConfig cfg;
    double msu_area = 0.0, msu_power = 0.0, itu_area = 0.0,
           itu_power = 0.0;
    for (const auto &r : rows) {
        if (r.name.find("Merge Sort Unit+") != std::string::npos) {
            msu_area = r.area_mm2;
            msu_power = r.power_mw;
        }
        if (r.name.find("Intersection Test Unit") != std::string::npos) {
            itu_area = r.area_mm2;
            itu_power = r.power_mw;
        }
    }
    ComponentAP total = neoAreaPowerTotal(cfg);
    std::printf("\nMSU+ + ITU overhead: %.2f%% of area, %.2f%% of power "
                "(paper: 9.04%% / 8.91%%)\n",
                100.0 * (msu_area + itu_area) / total.area_mm2,
                100.0 * (msu_power + itu_power) / total.power_mw);
    return 0;
}
