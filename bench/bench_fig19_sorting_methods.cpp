/**
 * @file
 * Figure 19: per-frame latency and rendering quality of four sorting-reuse
 * methods running on the Neo hardware:
 *   hierarchical (GSCore-style from-scratch), periodic, background, and
 *   Neo's Dynamic Partial Sorting (incremental update).
 *
 * Expected shape: periodic shows latency spikes above the 16.6 ms SLO and
 * collapsing quality between refreshes; background shows elevated steady
 * latency and degraded quality (viewpoint lag); hierarchical matches Neo's
 * quality but needs multiple off-chip passes (higher latency); Neo stays
 * low-latency and accurate.
 *
 * Latency series is computed from QHD workloads on the Neo memory system;
 * quality series from functional rendering of a scaled-down scene.
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "core/reuse_update.h"
#include "gs/tile_sort.h"
#include "metrics/psnr.h"
#include "sim/dram.h"
#include "sort/merge_unit.h"
#include "sort/strategies.h"

using namespace neo;
using namespace neo::bench;

namespace
{

/** Sorting traffic (bytes) of each method for one QHD frame. */
double
sortBytes(const std::string &method, const FrameWorkload &w, int frame,
          int period)
{
    const double entry = record::kTableEntry;
    const double n = static_cast<double>(w.instances);
    const double incoming = static_cast<double>(w.incoming_instances);
    double table_len = w.meanTileLength();
    double chunks = std::max(1.0, table_len / 256.0);
    double full_passes = 1.0 + std::ceil(std::log2(chunks));

    if (method == "neo")
        return 2.0 * entry * (n + 2.0 * incoming);
    if (method == "hierarchical")
        return 2.0 * entry * n * 2.0; // bucket pass + fine pass
    if (method == "periodic")
        return (frame % period == 0) ? 2.0 * entry * n * full_passes : 0.0;
    // background: continuous full sorting of the next frame's table.
    return 2.0 * entry * n * full_passes;
}

/** Frame latency (ms) on Neo hardware with a given sorting method. */
double
frameLatencyMs(const std::string &method, const FrameWorkload &w,
               int frame, int period, const DramModel &dram)
{
    double dup_write = (method == "neo")
                           ? static_cast<double>(w.incoming_instances)
                           : static_cast<double>(w.instances);
    double fe = static_cast<double>(w.visible_gaussians) *
                    (record::kGaussian3d + record::kFeature2d) +
                dup_write * record::kTableEntry;
    double sort = sortBytes(method, w, frame, period);
    double raster = static_cast<double>(w.instances) *
                        (record::kTableEntry + record::kFeature2d) +
                    static_cast<double>(w.res.pixels()) * record::kPixel +
                    static_cast<double>(w.instances) * record::kTableEntry;
    double mem_ms = dram.streamSeconds(fe + sort + raster) * 1e3;
    double blend_ms =
        static_cast<double>(w.blend_ops) / 32e9 * 1e3; // 16 SCU x 2/cycle
    return std::max(mem_ms, blend_ms);
}

/**
 * Guard the figure's counters against batching/speculation drift: the
 * fused-batch dispatch (sortTablesParallel) and the speculative parallel
 * merge must report exactly the per-tile compares/moves of the serial
 * unbatched path, or the paper-figure traffic numbers silently skew.
 */
bool
countersMatch(const SortCoreStats &serial, const SortCoreStats &threaded,
              const char *label)
{
    const bool ok =
        serial.bsu.subchunks == threaded.bsu.subchunks &&
        serial.bsu.compare_exchanges == threaded.bsu.compare_exchanges &&
        serial.bsu.stages == threaded.bsu.stages &&
        serial.msu.merges == threaded.msu.merges &&
        serial.msu.elements_processed == threaded.msu.elements_processed &&
        serial.msu.compares == threaded.msu.compares &&
        serial.msu.filtered_invalid == threaded.msu.filtered_invalid &&
        serial.chunk_loads == threaded.chunk_loads &&
        serial.chunk_stores == threaded.chunk_stores &&
        serial.entries_read == threaded.entries_read &&
        serial.entries_written == threaded.entries_written &&
        serial.global_merge_passes == threaded.global_merge_passes;
    std::printf("%-28s %s (compares %llu vs %llu)\n", label,
                ok ? "OK" : "DRIFT",
                static_cast<unsigned long long>(serial.msu.compares),
                static_cast<unsigned long long>(threaded.msu.compares));
    return ok;
}

} // namespace

int
main()
{
    banner("Figure 19 - latency and quality across sorting methods",
           "hierarchical / periodic / background / Neo DPS on Neo hardware",
           "periodic spikes past the 16.6 ms SLO and loses quality; "
           "background has high steady latency; Neo stays fast and "
           "accurate");

    const int frames = benchFrameCount(48);
    const int period = 15;
    DramModel dram{lpddr4Edge()};

    // ---- latency series from QHD workloads (Train scene) ----------------
    auto seq = sequence("Train", kResQHD, 64, frames);
    const char *methods[] = {"hierarchical", "periodic", "background",
                             "neo"};
    std::printf("\n(a) latency over frames (ms) [SLO 16.6 ms]\n");
    for (const char *m : methods) {
        std::vector<double> lat;
        for (size_t f = 0; f < seq.size(); ++f)
            lat.push_back(frameLatencyMs(m, seq[f], static_cast<int>(f),
                                         period, dram));
        std::printf("%-14s mean %6.2f  max %6.2f  %s\n", m, mean(lat),
                    percentile(lat, 100.0), sparkline(lat).c_str());
    }

    // ---- quality series from functional rendering -----------------------
    std::printf("\n(b) PSNR over frames (dB, vs exact per-frame sort)\n");
    ScenePreset preset = presetByName("Train");
    GaussianScene scene = buildScene(preset, 0.02);
    Trajectory traj(preset.trajectory, scene, 2.0f);
    Resolution res{320, 192, "bench"};

    PipelineOptions opts;
    opts.tile_px = 32;
    Renderer renderer(opts);

    HierarchicalSortStrategy hier;
    PeriodicSortStrategy periodic(period);
    BackgroundSortStrategy background;
    ReuseUpdateSorter neo_dps;
    SortingStrategy *strategies[] = {&hier, &periodic, &background,
                                     &neo_dps};

    const int q_frames = std::min(frames, 48);
    std::vector<std::vector<double>> psnr_series(4);
    BatchSortScratch ref_sort_scratch;
    for (int f = 0; f < q_frames; ++f) {
        Camera cam = traj.cameraAt(f, res);
        BinnedFrame frame = binFrame(scene, cam, opts.tile_px);
        BinnedFrame sorted = frame;
        // The exact per-frame reference ordering, via the same fused
        // batched key-sort the pipeline uses (bit-identical to per-tile
        // std::sort(entryDepthLess)).
        sortTablesBatched(sorted.tiles, 1, ref_sort_scratch);
        Image ref = renderer.renderWithOrdering(sorted, {});
        for (int s = 0; s < 4; ++s) {
            strategies[s]->beginFrame(frame, f);
            Image img = renderer.renderWithOrdering(
                frame, strategies[s]->orderings());
            psnr_series[s].push_back(psnr(ref, img));
        }
    }
    for (int s = 0; s < 4; ++s) {
        std::printf("%-14s mean %6.2f  min %6.2f  %s\n",
                    strategies[s]->name().c_str(), mean(psnr_series[s]),
                    percentile(psnr_series[s], 0.0),
                    sparkline(psnr_series[s]).c_str());
    }

    // ---- counter drift cross-check --------------------------------------
    bool drift_ok = true;
    std::printf("\n(c) counter drift: batched/speculative vs serial\n");
    {
        Camera cam0 = traj.cameraAt(0, res);
        BinnedFrame f0 = binFrame(scene, cam0, opts.tile_px);

        FullSortStrategy serial_full, batched_full;
        serial_full.setThreads(1);
        batched_full.setThreads(4);
        serial_full.beginFrame(f0, 0);
        batched_full.beginFrame(f0, 0);
        drift_ok &= countersMatch(serial_full.stats(), batched_full.stats(),
                                  "full-sort fused batches");

        // Speculative merge, accept outcome (sorted inputs) and fallback
        // outcome (the reused table is not sorted): both must report the
        // serial interleaving's counters.
        std::vector<TileEntry> big_a, big_b;
        for (uint32_t i = 0; i < 4096; ++i) {
            big_a.push_back({2 * i, static_cast<float>(2 * i), true});
            big_b.push_back({2 * i + 1, static_cast<float>(2 * i + 1),
                             true});
        }
        std::vector<TileEntry> merged_serial, merged_spec;
        MsuStats serial_m, spec_m;
        msuMerge(big_a, big_b, merged_serial, &serial_m, 1);
        msuMerge(big_a, big_b, merged_spec, &spec_m, 8);
        SortCoreStats sc_serial, sc_spec;
        sc_serial.msu = serial_m;
        sc_spec.msu = spec_m;
        drift_ok &= countersMatch(sc_serial, sc_spec,
                                  "speculative merge (accept)");

        std::swap(big_a.front(), big_a.back()); // refute the speculation
        msuMerge(big_a, big_b, merged_serial, &serial_m, 1);
        msuMerge(big_a, big_b, merged_spec, &spec_m, 8);
        sc_serial.msu = serial_m;
        sc_spec.msu = spec_m;
        drift_ok &= countersMatch(sc_serial, sc_spec,
                                  "speculative merge (fallback)");
    }
    if (!drift_ok) {
        std::printf("counter drift detected — figure numbers unreliable\n");
        return 1;
    }
    return 0;
}
