/**
 * @file
 * Table 3: technology, frequency, area and power of GSCore and Neo at
 * 7 nm / 1 GHz, from the analytic synthesis model.
 *
 * Expected: Neo 0.387 mm^2 / 797.8 mW vs GSCore 0.417 mm^2 / 719.9 mW —
 * slightly smaller area, marginally higher power.
 */

#include <cstdio>

#include "sim/area_power.h"

using namespace neo;

int
main()
{
    std::printf("=====================================================\n");
    std::printf("Table 3 - evaluated GSCore and Neo accelerators\n");
    std::printf("  paper: Neo 0.387 mm2 / 797.8 mW; GSCore 0.417 mm2 / "
                "719.9 mW\n");
    std::printf("=====================================================\n");
    std::printf("%-10s %-12s %-10s %-12s %-12s\n", "Device", "Technology",
                "Freq", "Area (mm2)", "Power (mW)");

    ComponentAP gscore = gscoreAreaPowerTotal();
    std::printf("%-10s %-12s %-10s %-12.3f %-12.1f\n", gscore.name.c_str(),
                "7 nm", "1 GHz", gscore.area_mm2, gscore.power_mw);

    ComponentAP neo = neoAreaPowerTotal();
    std::printf("%-10s %-12s %-10s %-12.3f %-12.1f\n", neo.name.c_str(),
                "7 nm", "1 GHz", neo.area_mm2, neo.power_mw);

    std::printf("\narea delta vs GSCore: %+.1f%%, power delta: %+.1f%%\n",
                100.0 * (neo.area_mm2 / gscore.area_mm2 - 1.0),
                100.0 * (neo.power_mw / gscore.power_mw - 1.0));

    std::printf("\nDeepScaleTool-style node scaling (area factor from "
                "28 nm): 22 nm %.2f, 16 nm %.2f, 7 nm %.2f\n",
                deepScaleFactor(28, 22, true), deepScaleFactor(28, 16, true),
                deepScaleFactor(28, 7, true));
    return 0;
}
