/**
 * @file
 * Figure 15: end-to-end throughput (FPS) of Orin AGX, GSCore (16 cores)
 * and Neo on the six scenes at HD / FHD / QHD, plus the MEAN column.
 *
 * Expected shape: Neo > GSCore > Orin everywhere, with Neo's advantage
 * growing with resolution (paper: 1.8/3.3/5.6x over GSCore and
 * 5.0/7.2/10.0x over Orin at HD/FHD/QHD; Neo ~99.3 FPS at QHD).
 */

#include <cstdio>

#include "bench_common.h"
#include "sim/gpu_model.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"

using namespace neo;
using namespace neo::bench;

int
main()
{
    banner("Figure 15 - end-to-end throughput (FPS)",
           "Orin AGX vs GSCore(16) vs Neo",
           "Neo/GSCore speedup 1.8/3.3/5.6x at HD/FHD/QHD; Neo ~99 FPS "
           "@ QHD");

    GpuModel orin;
    GscoreModel gscore;
    NeoModel neo;

    for (auto res : mainResolutions()) {
        std::printf("\n-- %s --\n", res.name);
        cell("Scene");
        cell("OrinAGX");
        cell("GSCore");
        cell("Neo");
        cell("Neo/GS");
        cell("Neo/Orin");
        endRow();

        double sum_orin = 0.0, sum_gscore = 0.0, sum_neo = 0.0;
        for (const auto &scene : mainScenes()) {
            auto seq16 = sequence(scene, res, 16);
            auto seq64 = sequence(scene, res, 64);
            double f_orin = simulateGpu(orin, seq16).meanFps();
            double f_gscore = simulateGscore(gscore, seq16).meanFps();
            double f_neo = simulateNeo(neo, seq64).meanFps();
            cell(scene.c_str());
            cellf(f_orin);
            cellf(f_gscore);
            cellf(f_neo);
            cellf(f_neo / f_gscore, "%-12.2f");
            cellf(f_neo / f_orin, "%-12.2f");
            endRow();
            sum_orin += f_orin;
            sum_gscore += f_gscore;
            sum_neo += f_neo;
        }
        double n = mainScenes().size();
        cell("MEAN");
        cellf(sum_orin / n);
        cellf(sum_gscore / n);
        cellf(sum_neo / n);
        cellf(sum_neo / sum_gscore, "%-12.2f");
        cellf(sum_neo / sum_orin, "%-12.2f");
        endRow();
    }
    return 0;
}
