/**
 * @file
 * Thread-scaling bench — the repo's perf trajectory entry point.
 *
 * Renders a synthetic-scene orbit end to end (culling + projection + SH,
 * binning, per-tile sorting, rasterization) through the functional
 * pipeline at 1/2/4/8 worker threads and reports ms/frame plus the
 * speedup over the serial baseline. Frame hashes are checked across all
 * points: a mismatch means the determinism contract of common/parallel.h
 * is broken and the run fails.
 *
 *   ./bench_scaling [--json out.json] [--gaussians N] [--frames N]
 *                   [--threads-list 1,2,4,8] [--stage] [--pr N]
 *                   [--raster-mode blocked|reference|both] [--fast-exp]
 *                   [--integrity off|check|recover]
 *
 * With --stage each frame runs the explicit staged loop and the report
 * (and JSON) carries a per-stage breakdown — bin / sort / raster /
 * tracker ms per frame — so eliminating a serial stage is visible in the
 * stage column, not just the total. --raster-mode selects the blend
 * implementation (subtile-blocked kernel, default, or the scalar
 * reference); "both" runs the staged sweep twice and prints an A/B
 * column with the reference raster_ms next to the blocked one, failing
 * if the two paths disagree on a single frame bit or raster counter.
 * --fast-exp enables the deterministic polynomial exp
 * (RasterConfig::fast_exp) for the sweep. With --json the results are
 * written machine-readable (BENCH_PR<n>.json schema) for CI artifact
 * upload, trend tracking, and the regression gate (bench/diff_bench.sh);
 * the JSON records the raster kernel variant and fast_exp mode, so every
 * trajectory point is self-describing about what exactly it measured.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "scene/synthetic.h"
#include "scene/trajectory.h"
#include "sim/perf_harness.h"

using namespace neo;

namespace
{

struct Args
{
    std::string json_path;
    size_t gaussians = 30000;
    int frames = 5;
    int pr = 5;
    bool stage = false;
    bool fast_exp = false;
    std::string raster_mode = "blocked";
    std::string integrity = "off";
    std::vector<int> threads = {1, 2, 4, 8};
};

std::vector<int>
parseThreadList(const char *s)
{
    std::vector<int> out;
    for (const char *p = s; *p;) {
        int v = std::atoi(p);
        if (v > 0)
            out.push_back(v);
        while (*p && *p != ',')
            ++p;
        if (*p == ',')
            ++p;
    }
    return out;
}

Args
parse(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc;) {
        if (std::strcmp(argv[i], "--stage") == 0) {
            a.stage = true;
            i += 1;
            continue;
        }
        if (std::strcmp(argv[i], "--fast-exp") == 0) {
            a.fast_exp = true;
            i += 1;
            continue;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "flag '%s' needs a value\n", argv[i]);
            std::exit(2);
        }
        if (std::strcmp(argv[i], "--json") == 0)
            a.json_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--gaussians") == 0)
            a.gaussians = static_cast<size_t>(std::atol(argv[i + 1]));
        else if (std::strcmp(argv[i], "--frames") == 0)
            a.frames = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--threads-list") == 0)
            a.threads = parseThreadList(argv[i + 1]);
        else if (std::strcmp(argv[i], "--pr") == 0)
            a.pr = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--raster-mode") == 0)
            a.raster_mode = argv[i + 1];
        else if (std::strcmp(argv[i], "--integrity") == 0)
            a.integrity = argv[i + 1];
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            std::exit(2);
        }
        i += 2;
    }
    if (a.threads.empty())
        a.threads = {1};
    if (a.raster_mode != "blocked" && a.raster_mode != "reference" &&
        a.raster_mode != "both") {
        std::fprintf(stderr,
                     "--raster-mode must be blocked, reference or both\n");
        std::exit(2);
    }
    if (a.raster_mode == "both" && !a.stage) {
        // The A/B column compares raster_ms, which only the staged loop
        // measures.
        a.stage = true;
    }
    if (a.integrity != "off" && a.integrity != "check" &&
        a.integrity != "recover") {
        std::fprintf(stderr,
                     "--integrity must be off, check or recover\n");
        std::exit(2);
    }
    return a;
}

bool
writeJson(const std::string &path, const Args &args, Resolution res,
          const std::vector<ThreadScalingPoint> &points,
          const std::vector<ThreadScalingPoint> *reference_points,
          bool deterministic)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    double best = 0.0;
    for (const auto &p : points)
        best = p.speedup > best ? p.speedup : best;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"scaling\",\n");
    std::fprintf(f, "  \"pr\": %d,\n", args.pr);
    std::fprintf(f, "  \"pipeline\": \"%s\",\n",
                 args.stage ? "functional-render-staged"
                            : "functional-render");
    std::fprintf(f, "  \"raster_mode\": \"%s\",\n",
                 args.raster_mode.c_str());
    std::fprintf(f, "  \"raster_kernel\": \"%s\",\n",
                 kRasterKernelVariant);
    std::fprintf(f, "  \"fast_exp\": %s,\n",
                 args.fast_exp ? "true" : "false");
    std::fprintf(f, "  \"integrity_mode\": \"%s\",\n",
                 args.integrity.c_str());
    std::fprintf(f, "  \"scene\": \"synthetic-orbit\",\n");
    std::fprintf(f, "  \"gaussians\": %zu,\n", args.gaussians);
    std::fprintf(f, "  \"resolution\": \"%dx%d\",\n", res.width,
                 res.height);
    std::fprintf(f, "  \"frames\": %d,\n", args.frames);
    std::fprintf(f, "  \"machine_cores\": %d,\n", hardwareThreadCount());
    std::fprintf(f, "  \"deterministic_across_threads\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const ThreadScalingPoint &p = points[i];
        std::fprintf(f,
                     "    {\"threads\": %d, \"ms_per_frame\": %.3f, "
                     "\"speedup\": %.3f",
                     p.threads, p.ms_per_frame, p.speedup);
        if (p.has_stages)
            // render_ms (bin + sort + raster) is the slice comparable to
            // the non-staged pipeline of earlier trajectory points, which
            // did not run the delta tracker; diff_bench.sh prefers it.
            std::fprintf(f,
                         ", \"render_ms\": %.3f, "
                         "\"stages\": {\"bin_ms\": %.3f, "
                         "\"sort_ms\": %.3f, \"raster_ms\": %.3f, "
                         "\"tracker_ms\": %.3f}",
                         p.stages.bin_ms + p.stages.sort_ms +
                             p.stages.raster_ms,
                         p.stages.bin_ms, p.stages.sort_ms,
                         p.stages.raster_ms, p.stages.tracker_ms);
        if (reference_points && i < reference_points->size())
            std::fprintf(f, ", \"raster_ms_reference\": %.3f",
                         (*reference_points)[i].stages.raster_ms);
        std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"max_speedup\": %.3f\n", best);
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
}

/** A/B contract: identical frames and identical raster counters. */
bool
abPointsMatch(const ThreadScalingPoint &blocked,
              const ThreadScalingPoint &reference)
{
    const RasterStats &b = blocked.last_frame.raster;
    const RasterStats &r = reference.last_frame.raster;
    return blocked.frame_hash == reference.frame_hash &&
           b.gaussians_in == r.gaussians_in &&
           b.intersection_tests == r.intersection_tests &&
           b.gaussians_blended == r.gaussians_blended &&
           b.blend_ops == r.blend_ops &&
           b.pixels_terminated == r.pixels_terminated;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse(argc, argv);

    bench::banner("Thread scaling of the functional pipeline",
                  "perf trajectory",
                  "near-linear scaling of the tile-parallel stages; "
                  "bit-identical frames at every thread count");

    SyntheticSceneParams params;
    params.count = args.gaussians;
    params.clusters = 8;
    params.extent = 8.0f;
    params.seed = 2026;
    params.name = "scaling";
    GaussianScene scene = generateScene(params);
    Trajectory orbit(TrajectoryKind::Orbit, scene);
    const Resolution res{640, 384, "bench"};

    std::printf("scene: %zu gaussians, %d frames @ %dx%d, machine has %d "
                "hardware thread(s), raster mode %s, fast_exp %s, "
                "integrity %s\n\n",
                scene.size(), args.frames, res.width, res.height,
                hardwareThreadCount(), args.raster_mode.c_str(),
                args.fast_exp ? "on" : "off", args.integrity.c_str());

    PipelineOptions opts;
    opts.raster.reference_path = (args.raster_mode == "reference");
    opts.raster.fast_exp = args.fast_exp;
    opts.integrity = args.integrity == "check"
                         ? IntegrityMode::Check
                         : (args.integrity == "recover"
                                ? IntegrityMode::Recover
                                : IntegrityMode::Off);
    std::vector<ThreadScalingPoint> points =
        args.stage
            ? sweepRenderThreadsStaged(scene, orbit, res, args.frames,
                                       args.threads, opts)
            : sweepRenderThreads(scene, orbit, res, args.frames,
                                 args.threads, opts);

    // A/B: same sweep through the scalar reference rasterizer.
    std::vector<ThreadScalingPoint> reference_points;
    bool ab_ok = true;
    if (args.raster_mode == "both") {
        PipelineOptions ref_opts = opts;
        ref_opts.raster.reference_path = true;
        reference_points = sweepRenderThreadsStaged(
            scene, orbit, res, args.frames, args.threads, ref_opts);
        for (size_t i = 0; i < points.size(); ++i)
            ab_ok = ab_ok && abPointsMatch(points[i], reference_points[i]);
    }

    bool deterministic = true;
    for (const auto &p : points)
        deterministic = deterministic &&
                        p.frame_hash == points.front().frame_hash;

    if (args.raster_mode == "both") {
        std::printf("%-10s %-12s %-12s %-12s %-10s %s\n", "threads",
                    "ms/frame", "raster(blk)", "raster(ref)", "ref/blk",
                    "frame hash");
        for (size_t i = 0; i < points.size(); ++i) {
            const auto &p = points[i];
            const double ref_ms = reference_points[i].stages.raster_ms;
            std::printf("%-10d %-12.2f %-12.2f %-12.2f %-10.2f %016llx\n",
                        p.threads, p.ms_per_frame, p.stages.raster_ms,
                        ref_ms,
                        p.stages.raster_ms > 0.0
                            ? ref_ms / p.stages.raster_ms
                            : 0.0,
                        static_cast<unsigned long long>(p.frame_hash));
        }
        std::printf("\nblocked vs reference: %s\n",
                    ab_ok ? "OK (bit-identical frames and counters)"
                          : "FAILED");
    } else if (args.stage) {
        std::printf("%-10s %-12s %-10s %-10s %-10s %-10s %-10s %s\n",
                    "threads", "ms/frame", "bin", "sort", "raster",
                    "tracker", "speedup", "frame hash");
        for (const auto &p : points)
            std::printf(
                "%-10d %-12.2f %-10.2f %-10.2f %-10.2f %-10.2f %-10.2f "
                "%016llx\n",
                p.threads, p.ms_per_frame, p.stages.bin_ms,
                p.stages.sort_ms, p.stages.raster_ms, p.stages.tracker_ms,
                p.speedup,
                static_cast<unsigned long long>(p.frame_hash));
    } else {
        std::printf("%-10s %-14s %-10s %s\n", "threads", "ms/frame",
                    "speedup", "frame hash");
        for (const auto &p : points)
            std::printf("%-10d %-14.2f %-10.2f %016llx\n", p.threads,
                        p.ms_per_frame, p.speedup,
                        static_cast<unsigned long long>(p.frame_hash));
    }
    std::printf("\ndeterminism across thread counts: %s\n",
                deterministic ? "OK (bit-identical frames)" : "FAILED");

    if (!args.json_path.empty()) {
        if (!writeJson(args.json_path, args, res, points,
                       reference_points.empty() ? nullptr
                                                : &reference_points,
                       deterministic)) {
            std::fprintf(stderr, "error: could not write %s\n",
                         args.json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", args.json_path.c_str());
    }
    return deterministic && ab_ok ? 0 : 1;
}
