/**
 * @file
 * Thread-scaling bench — first point of the repo's perf trajectory.
 *
 * Renders a synthetic-scene orbit end to end (culling + projection + SH,
 * binning, per-tile sorting, rasterization) through the functional
 * pipeline at 1/2/4/8 worker threads and reports ms/frame plus the
 * speedup over the serial baseline. Frame hashes are checked across all
 * points: a mismatch means the determinism contract of common/parallel.h
 * is broken and the run fails.
 *
 *   ./bench_scaling [--json out.json] [--gaussians N] [--frames N]
 *                   [--threads-list 1,2,4,8]
 *
 * With --json the results are written machine-readable (BENCH_PR2.json
 * schema) for CI artifact upload and trend tracking.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "scene/synthetic.h"
#include "scene/trajectory.h"
#include "sim/perf_harness.h"

using namespace neo;

namespace
{

struct Args
{
    std::string json_path;
    size_t gaussians = 30000;
    int frames = 5;
    std::vector<int> threads = {1, 2, 4, 8};
};

std::vector<int>
parseThreadList(const char *s)
{
    std::vector<int> out;
    for (const char *p = s; *p;) {
        int v = std::atoi(p);
        if (v > 0)
            out.push_back(v);
        while (*p && *p != ',')
            ++p;
        if (*p == ',')
            ++p;
    }
    return out;
}

Args
parse(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; i += 2) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "flag '%s' needs a value\n", argv[i]);
            std::exit(2);
        }
        if (std::strcmp(argv[i], "--json") == 0)
            a.json_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--gaussians") == 0)
            a.gaussians = static_cast<size_t>(std::atol(argv[i + 1]));
        else if (std::strcmp(argv[i], "--frames") == 0)
            a.frames = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--threads-list") == 0)
            a.threads = parseThreadList(argv[i + 1]);
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            std::exit(2);
        }
    }
    if (a.threads.empty())
        a.threads = {1};
    return a;
}

bool
writeJson(const std::string &path, const Args &args, Resolution res,
          const std::vector<ThreadScalingPoint> &points, bool deterministic)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    double best = 0.0;
    for (const auto &p : points)
        best = p.speedup > best ? p.speedup : best;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"scaling\",\n");
    std::fprintf(f, "  \"pr\": 2,\n");
    std::fprintf(f, "  \"pipeline\": \"functional-render\",\n");
    std::fprintf(f, "  \"scene\": \"synthetic-orbit\",\n");
    std::fprintf(f, "  \"gaussians\": %zu,\n", args.gaussians);
    std::fprintf(f, "  \"resolution\": \"%dx%d\",\n", res.width,
                 res.height);
    std::fprintf(f, "  \"frames\": %d,\n", args.frames);
    std::fprintf(f, "  \"machine_cores\": %d,\n", hardwareThreadCount());
    std::fprintf(f, "  \"deterministic_across_threads\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const ThreadScalingPoint &p = points[i];
        std::fprintf(f,
                     "    {\"threads\": %d, \"ms_per_frame\": %.3f, "
                     "\"speedup\": %.3f}%s\n",
                     p.threads, p.ms_per_frame, p.speedup,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"max_speedup\": %.3f\n", best);
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse(argc, argv);

    bench::banner("Thread scaling of the functional pipeline",
                  "perf trajectory, PR 2",
                  "near-linear scaling of the tile-parallel stages; "
                  "bit-identical frames at every thread count");

    SyntheticSceneParams params;
    params.count = args.gaussians;
    params.clusters = 8;
    params.extent = 8.0f;
    params.seed = 2026;
    params.name = "scaling";
    GaussianScene scene = generateScene(params);
    Trajectory orbit(TrajectoryKind::Orbit, scene);
    const Resolution res{640, 384, "bench"};

    std::printf("scene: %zu gaussians, %d frames @ %dx%d, machine has %d "
                "hardware thread(s)\n\n",
                scene.size(), args.frames, res.width, res.height,
                hardwareThreadCount());

    std::vector<ThreadScalingPoint> points = sweepRenderThreads(
        scene, orbit, res, args.frames, args.threads);

    bool deterministic = true;
    for (const auto &p : points)
        deterministic = deterministic &&
                        p.frame_hash == points.front().frame_hash;

    std::printf("%-10s %-14s %-10s %s\n", "threads", "ms/frame", "speedup",
                "frame hash");
    for (const auto &p : points)
        std::printf("%-10d %-14.2f %-10.2f %016llx\n", p.threads,
                    p.ms_per_frame, p.speedup,
                    static_cast<unsigned long long>(p.frame_hash));
    std::printf("\ndeterminism across thread counts: %s\n",
                deterministic ? "OK (bit-identical frames)" : "FAILED");

    if (!args.json_path.empty()) {
        if (!writeJson(args.json_path, args, res, points, deterministic)) {
            std::fprintf(stderr, "error: could not write %s\n",
                         args.json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", args.json_path.c_str());
    }
    return deterministic ? 0 : 1;
}
