/**
 * @file
 * Figure 6: CDF of the per-tile proportion of Gaussians shared between
 * consecutive frames, for the six scenes.
 *
 * Expected shape: heavy mass near 1.0 — the paper reports that in all
 * scenes over 90% of tiles retain more than 78% of their Gaussians.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "core/delta_tracker.h"
#include "gs/pipeline.h"
#include "scene/trajectory.h"

using namespace neo;
using namespace neo::bench;

int
main()
{
    banner("Figure 6 - temporal similarity of assigned Gaussians per tile",
           "per-tile retention CDF, consecutive frames",
           ">90% of tiles retain >78% of Gaussians, all scenes");

    const int frames = benchFrameCount(8);
    const double scale = benchSceneScale();

    cell("Scene");
    cell("p10");
    cell("p50");
    cell("mean");
    cell(">=0.78");
    endRow();

    for (const auto &name : mainScenes()) {
        ScenePreset preset = presetByName(name);
        GaussianScene scene = buildScene(preset, scale);
        Trajectory traj(preset.trajectory, scene);
        Renderer renderer; // 16-px tiles, as the motivation study
        DeltaTracker tracker;

        std::vector<double> retention;
        for (int f = 0; f < frames; ++f) {
            Camera cam = traj.cameraAt(f, kResQHD);
            BinnedFrame frame = binFrame(scene, cam, 16);
            FrameDelta delta = tracker.observe(frame);
            if (f > 0)
                retention.insert(retention.end(),
                                 delta.tile_retention.begin(),
                                 delta.tile_retention.end());
        }
        (void)renderer;

        cell(name.c_str());
        cellf(percentile(retention, 10.0), "%-12.3f");
        cellf(percentile(retention, 50.0), "%-12.3f");
        cellf(mean(retention), "%-12.3f");
        cellf(fractionAtLeast(retention, 0.78), "%-12.3f");
        endRow();

        // Compact CDF series (value:cumulative) like the figure's x-axis.
        auto cdf = empiricalCdf(retention, 8);
        std::printf("  cdf:");
        for (const auto &p : cdf)
            std::printf(" %.2f:%.2f", p.value, p.cumulative);
        std::printf("\n");
    }
    return 0;
}
