/**
 * @file
 * Figure 17: extreme AR/VR scenarios.
 *  (a) Large-scale Mill 19-style scenes (Building, Rubble): FPS for Orin,
 *      GSCore and Neo. Paper: Neo ~65.2 FPS mean; Orin <13.6, GSCore <24.9.
 *  (b) Rapid camera movement (1x..16x) on the T&T scenes: Neo stays above
 *      the 60 FPS SLO even though reuse decreases.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>

#include "bench_common.h"
#include "sim/gpu_model.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"

using namespace neo;
using namespace neo::bench;

int
main()
{
    banner("Figure 17 - extreme AR/VR scenarios",
           "large-scale scenes + rapid camera movement",
           "(a) Neo ~65 FPS on Mill 19; (b) Neo >60 FPS up to 16x speed");

    GpuModel orin;
    GscoreModel gscore;
    NeoModel neo;

    std::printf("\n(a) large-scale scenes @ QHD\n");
    cell("Scene");
    cell("OrinAGX");
    cell("GSCore");
    cell("Neo");
    endRow();
    for (const char *scene : {"Building", "Rubble"}) {
        auto seq16 = sequence(scene, kResQHD, 16);
        auto seq64 = sequence(scene, kResQHD, 64);
        cell(scene);
        cellf(simulateGpu(orin, seq16).meanFps());
        cellf(simulateGscore(gscore, seq16).meanFps());
        cellf(simulateNeo(neo, seq64).meanFps());
        endRow();
    }

    std::printf("\n(b) rapid camera movement @ QHD, Neo, 6-scene mean\n");
    cell("Speed");
    cell("Neo FPS");
    cell("retention");
    cell("incoming%");
    endRow();
    for (float speed : {1.0f, 2.0f, 4.0f, 8.0f, 16.0f}) {
        double fps = 0.0, retention = 0.0, incoming = 0.0;
        for (const auto &scene : mainScenes()) {
            auto seq = sequence(scene, kResQHD, 64, 8, speed);
            SequenceResult r = simulateNeo(neo, seq);
            fps += r.meanFps() / mainScenes().size();
            double ret = 0.0, inc = 0.0;
            for (size_t i = 1; i < seq.size(); ++i) {
                ret += seq[i].mean_tile_retention;
                inc += static_cast<double>(seq[i].incoming_instances) /
                       std::max<uint64_t>(seq[i].instances, 1);
            }
            retention += ret / (seq.size() - 1) / mainScenes().size();
            incoming += inc / (seq.size() - 1) / mainScenes().size();
        }
        char label[16];
        std::snprintf(label, sizeof(label), "x%.0f", speed);
        cell(label);
        cellf(fps);
        cellf(retention, "%-12.3f");
        cellf(100.0 * incoming, "%-12.1f");
        endRow();
    }
    std::printf("\n(SLO: 60 FPS)\n");
    return 0;
}
