/**
 * @file
 * Figure 18: hardware ablation at QHD (6-scene mean), normalized to
 * GSCore.
 *  - GSCore: baseline (sorts from scratch).
 *  - Neo-S:  GSCore with Neo's Sorting Engine (reuse-and-update sorting),
 *            but no deferred-depth-update or on-the-fly-ITU hardware: a
 *            post-processing pass refreshes table metadata and bitmaps
 *            still travel off-chip.
 *  - Neo:    the full co-design.
 *
 * Expected shape: Neo-S cuts traffic ~71% / speeds up ~3.3x vs GSCore;
 * full Neo adds another ~36% traffic cut and ~1.7x speedup. Also reports
 * the §4.4 claim: Neo without deferred depth updates moves ~33% more
 * bytes than full Neo.
 */

#include <cstdio>

#include "bench_common.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"

using namespace neo;
using namespace neo::bench;

int
main()
{
    banner("Figure 18 - ablation: GSCore -> Neo-S -> Neo @ QHD",
           "speedup and DRAM traffic normalized to GSCore",
           "Neo-S: ~3.3x speedup, -71% traffic; Neo: +1.7x more, -36% "
           "more traffic");

    GscoreModel gscore;
    NeoModel neo_s(neoSOnlyConfig());
    NeoModel neo;

    double lat_gscore = 0.0, lat_neos = 0.0, lat_neo = 0.0;
    double gb_gscore = 0.0, gb_neos = 0.0, gb_neo = 0.0;
    for (const auto &scene : mainScenes()) {
        auto seq16 = sequence(scene, kResQHD, 16);
        auto seq64 = sequence(scene, kResQHD, 64);
        SequenceResult rg = simulateGscore(gscore, seq16);
        SequenceResult rs = simulateNeo(neo_s, seq64);
        SequenceResult rn = simulateNeo(neo, seq64);
        lat_gscore += rg.meanLatencyMs();
        lat_neos += rs.meanLatencyMs();
        lat_neo += rn.meanLatencyMs();
        gb_gscore += rg.totalTrafficGB();
        gb_neos += rs.totalTrafficGB();
        gb_neo += rn.totalTrafficGB();
    }

    std::printf("\n");
    cell("Config");
    cell("Speedup");
    cell("RelTraffic");
    endRow();
    cell("GSCore");
    cellf(1.0, "%-12.2f");
    cellf(1.0, "%-12.2f");
    endRow();
    cell("Neo-S");
    cellf(lat_gscore / lat_neos, "%-12.2f");
    cellf(gb_neos / gb_gscore, "%-12.2f");
    endRow();
    cell("Neo");
    cellf(lat_gscore / lat_neo, "%-12.2f");
    cellf(gb_neo / gb_gscore, "%-12.2f");
    endRow();

    std::printf("\nincremental: Neo over Neo-S = %.2fx speedup, %.1f%% "
                "further traffic cut (paper: 1.7x, 35.8%%)\n",
                lat_neos / lat_neo, 100.0 * (1.0 - gb_neo / gb_neos));

    // §4.4 claim: dropping only the deferred depth update costs ~33%.
    NeoConfig no_defer;
    no_defer.deferred_depth_update = false;
    NeoModel neo_nodefer(no_defer);
    double gb_nodefer = 0.0;
    for (const auto &scene : mainScenes()) {
        auto seq64 = sequence(scene, kResQHD, 64);
        gb_nodefer += simulateNeo(neo_nodefer, seq64).totalTrafficGB();
    }
    std::printf("no deferred depth update: +%.1f%% traffic vs full Neo "
                "(paper: +33.2%%)\n",
                100.0 * (gb_nodefer / gb_neo - 1.0));
    return 0;
}
