/**
 * @file
 * Figure 16: DRAM traffic (GB) to render 60 frames at QHD, per scene, for
 * Orin AGX, GSCore and Neo.
 *
 * Expected shape: Orin >> GSCore >> Neo; the paper reports 6-scene means
 * of 346.5 / 104.6 / 19.6 GB, i.e. reductions of 94.4% / 81.3% by Neo.
 */

#include <cstdio>

#include "bench_common.h"
#include "sim/gpu_model.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"

using namespace neo;
using namespace neo::bench;

int
main()
{
    banner("Figure 16 - DRAM traffic for 60 frames @ QHD (GB)",
           "Orin AGX vs GSCore vs Neo",
           "means 346.5 / 104.6 / 19.6 GB; Neo cuts 94.4% vs GPU, 81.3% "
           "vs GSCore");

    GpuModel orin;
    GscoreModel gscore;
    NeoModel neo;

    cell("Scene");
    cell("OrinAGX");
    cell("GSCore");
    cell("Neo");
    endRow();

    double sum_orin = 0.0, sum_gscore = 0.0, sum_neo = 0.0;
    for (const auto &scene : mainScenes()) {
        auto seq16 = sequence(scene, kResQHD, 16);
        auto seq64 = sequence(scene, kResQHD, 64);
        double t_orin =
            simulateGpu(orin, seq16).trafficGBPer60Frames();
        double t_gscore =
            simulateGscore(gscore, seq16).trafficGBPer60Frames();
        double t_neo = simulateNeo(neo, seq64).trafficGBPer60Frames();
        cell(scene.c_str());
        cellf(t_orin);
        cellf(t_gscore);
        cellf(t_neo);
        endRow();
        sum_orin += t_orin;
        sum_gscore += t_gscore;
        sum_neo += t_neo;
    }
    double n = mainScenes().size();
    cell("MEAN");
    cellf(sum_orin / n);
    cellf(sum_gscore / n);
    cellf(sum_neo / n);
    endRow();

    std::printf("\nNeo reduction vs Orin: %.1f%% (paper 94.4%%), vs "
                "GSCore: %.1f%% (paper 81.3%%)\n",
                100.0 * (1.0 - sum_neo / sum_orin),
                100.0 * (1.0 - sum_neo / sum_gscore));
    return 0;
}
