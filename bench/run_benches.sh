#!/usr/bin/env bash
# Machine-readable perf trajectory entry point.
#
# Runs the thread-scaling bench (with the per-stage breakdown) against an
# existing build and writes the trajectory JSON into the repo root, so
# every PR appends a comparable point (BENCH_PR<n>.json) that
# bench/diff_bench.sh can gate against the previous one.
#
#   bench/run_benches.sh [BUILD_DIR] [OUTPUT_JSON]
#
# BUILD_DIR defaults to ./build; OUTPUT_JSON to ./BENCH_PR7.json — pass
# the PR's own filename explicitly from CI.
# Knobs: NEO_BENCH_GAUSSIANS / NEO_BENCH_FRAMES_SCALING / NEO_BENCH_THREADS
# shrink or grow the run (CI smoke uses the defaults); NEO_BENCH_PR sets
# the "pr" field when the output name does not imply it;
# NEO_BENCH_RASTER_MODE ({blocked,reference,both}, default blocked)
# selects the rasterizer blend path — "both" also runs the scalar
# reference sweep and records its raster_ms for the A/B column;
# NEO_BENCH_FAST_EXP=1 switches the falloff exp to the deterministic
# polynomial (RasterConfig::fast_exp; recorded in the JSON either way,
# keep it off for points meant to be comparable with the pre-PR5
# std::exp trajectory); NEO_BENCH_INTEGRITY ({off,check,recover},
# default off) runs the sweep with the integrity fences enabled — the
# mode is recorded as "integrity_mode" in the JSON, and trajectory
# points meant to be comparable across PRs must keep it off.
# NEO_BENCH_SERVER_JSON, when set, additionally runs the multi-session
# serving bench (bench_server: sessions x threads sweep over the same
# scene, with per-frame hash checks against solo renderers) and writes
# its JSON there; NEO_BENCH_SESSIONS (default 1,2,4) sets its session
# sweep; NEO_BENCH_NET=1 adds the socket-front-end sweep (--net: the
# same 1-session workload over a loopback socket, with the wire
# overhead in us/request reported next to the in-process numbers in a
# separate "net_points" array that diff_bench.sh ignores).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_PR7.json}"

GAUSSIANS="${NEO_BENCH_GAUSSIANS:-30000}"
FRAMES="${NEO_BENCH_FRAMES_SCALING:-5}"
THREADS="${NEO_BENCH_THREADS:-1,2,4,8}"
RASTER_MODE="${NEO_BENCH_RASTER_MODE:-blocked}"
FAST_EXP="${NEO_BENCH_FAST_EXP:-0}"
INTEGRITY="${NEO_BENCH_INTEGRITY:-off}"

# Derive the trajectory point number from the output name when possible.
PR="${NEO_BENCH_PR:-}"
if [[ -z "$PR" ]]; then
    if [[ "$(basename "$OUT_JSON")" =~ BENCH_PR([0-9]+)\.json ]]; then
        PR="${BASH_REMATCH[1]}"
    else
        PR=5
    fi
fi

BIN="$BUILD_DIR/bench/bench_scaling"
if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not built (run: cmake --build $BUILD_DIR -t bench_scaling)" >&2
    exit 1
fi

FAST_EXP_FLAG=()
if [[ "$FAST_EXP" == "1" ]]; then
    FAST_EXP_FLAG=(--fast-exp)
fi

"$BIN" --json "$OUT_JSON" \
       --gaussians "$GAUSSIANS" \
       --frames "$FRAMES" \
       --threads-list "$THREADS" \
       --pr "$PR" \
       --raster-mode "$RASTER_MODE" \
       --integrity "$INTEGRITY" \
       ${FAST_EXP_FLAG[@]+"${FAST_EXP_FLAG[@]}"} \
       --stage

echo "run_benches.sh: wrote $OUT_JSON"

if [[ -n "${NEO_BENCH_SERVER_JSON:-}" ]]; then
    SBIN="$BUILD_DIR/bench/bench_server"
    if [[ ! -x "$SBIN" ]]; then
        echo "error: $SBIN not built (run: cmake --build $BUILD_DIR -t bench_server)" >&2
        exit 1
    fi
    NET_FLAG=()
    if [[ "${NEO_BENCH_NET:-0}" == "1" ]]; then
        NET_FLAG=(--net)
    fi
    "$SBIN" --json "$NEO_BENCH_SERVER_JSON" \
            --gaussians "$GAUSSIANS" \
            --frames "$FRAMES" \
            --sessions-list "${NEO_BENCH_SESSIONS:-1,2,4}" \
            --threads-list "$THREADS" \
            --pr "$PR" \
            ${NET_FLAG[@]+"${NET_FLAG[@]}"}
    echo "run_benches.sh: wrote $NEO_BENCH_SERVER_JSON"
fi
