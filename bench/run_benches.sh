#!/usr/bin/env bash
# Machine-readable perf trajectory entry point.
#
# Runs the thread-scaling bench against an existing build and writes
# BENCH_PR2.json (schema: see bench_scaling.cpp) into the repo root, so
# every PR from here on can append a comparable point to the trajectory.
#
#   bench/run_benches.sh [BUILD_DIR] [OUTPUT_JSON]
#
# BUILD_DIR defaults to ./build; OUTPUT_JSON to ./BENCH_PR2.json.
# Knobs: NEO_BENCH_GAUSSIANS / NEO_BENCH_FRAMES_SCALING / NEO_BENCH_THREADS
# shrink or grow the run (CI smoke uses the defaults).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_PR2.json}"

GAUSSIANS="${NEO_BENCH_GAUSSIANS:-30000}"
FRAMES="${NEO_BENCH_FRAMES_SCALING:-5}"
THREADS="${NEO_BENCH_THREADS:-1,2,4,8}"

BIN="$BUILD_DIR/bench/bench_scaling"
if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not built (run: cmake --build $BUILD_DIR -t bench_scaling)" >&2
    exit 1
fi

"$BIN" --json "$OUT_JSON" \
       --gaussians "$GAUSSIANS" \
       --frames "$FRAMES" \
       --threads-list "$THREADS"

echo "run_benches.sh: wrote $OUT_JSON"
