/**
 * @file
 * Table 2: rendering quality of original 3DGS vs Neo.
 *
 * The paper reports per-scene PSNR/LPIPS against dataset ground-truth
 * photos, with Neo within 0.1 dB PSNR and 0.001 LPIPS of the original.
 * We have no photographic ground truth for synthetic scenes, so this
 * harness measures the quantity those deltas encode: the direct
 * discrepancy between Neo's frames and the exact-sorted renderer's
 * frames. A PSNR(original->Neo) above ~40 dB mathematically bounds the
 * paper's |delta PSNR vs GT| below ~0.1 dB.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/neo_renderer.h"
#include "metrics/lpips_proxy.h"
#include "metrics/psnr.h"
#include "metrics/ssim.h"
#include "scene/trajectory.h"

using namespace neo;
using namespace neo::bench;

int
main()
{
    banner("Table 2 - rendering quality, original 3DGS vs Neo",
           "PSNR / LPIPS parity per scene",
           "Neo within 0.1 dB PSNR and 0.001 LPIPS of original 3DGS");

    const int frames = std::min(benchFrameCount(8), 16);
    const double scale = 0.02; // functional rendering runs scaled scenes
    Resolution res{320, 192, "bench"};

    cell("Scene");
    cell("PSNR(dB)");
    cell("LPIPSproxy");
    cell("SSIM");
    cell("parity");
    endRow();

    for (const auto &name : mainScenes()) {
        ScenePreset preset = presetByName(name);
        GaussianScene scene = buildScene(preset, scale);
        Trajectory traj(preset.trajectory, scene);

        PipelineOptions opts;
        opts.tile_px = 32;
        NeoRenderer neo(opts);
        Renderer base(opts);

        double worst_psnr = 1e9, worst_lpips = 0.0, worst_ssim = 1.0;
        for (int f = 0; f < frames; ++f) {
            Camera cam = traj.cameraAt(f, res);
            Image neo_img = neo.renderFrame(scene, cam, f);
            Image ref_img = base.render(scene, cam);
            worst_psnr = std::min(worst_psnr, psnr(ref_img, neo_img));
            worst_lpips =
                std::max(worst_lpips, lpipsProxy(ref_img, neo_img));
            worst_ssim = std::min(worst_ssim, ssim(ref_img, neo_img));
        }

        cell(name.c_str());
        cellf(worst_psnr);
        cellf(worst_lpips, "%-12.4f");
        cellf(worst_ssim, "%-12.4f");
        cell(worst_psnr > 40.0 ? "<=0.1dB" : ">0.1dB?");
        endRow();
    }

    std::printf("\n(worst frame over %d-frame trajectories; PSNR is "
                "original->Neo, so >=40 dB bounds the paper's delta "
                "of 0.1 dB)\n",
                frames);
    return 0;
}
