/**
 * @file
 * Design-choice ablation D3 (§4.3): number of off-chip Dynamic Partial
 * Sorting passes per frame. More passes buy ordering accuracy (and thus
 * rendering quality) at proportional DRAM traffic; the paper adopts a
 * single pass after observing <0.1 dB quality impact.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "core/reuse_update.h"
#include "gs/pipeline.h"
#include "metrics/psnr.h"
#include "scene/datasets.h"
#include "scene/trajectory.h"

using namespace neo;

int
main()
{
    std::printf("==========================================================\n");
    std::printf("Ablation D3 - off-chip sorting passes per frame (§4.3)\n");
    std::printf("  paper: single pass costs <0.1 dB; extra passes add "
                "proportional traffic\n");
    std::printf("==========================================================\n");

    ScenePreset preset = presetByName("Playground");
    GaussianScene scene = buildScene(preset, 0.02);
    Trajectory traj(preset.trajectory, scene, 2.0f);
    Resolution res{320, 192, "bench"};

    PipelineOptions opts;
    opts.tile_px = 32;
    Renderer base(opts);

    std::printf("%-8s %-14s %-14s %-16s\n", "passes", "minPSNR(dB)",
                "meanPSNR(dB)", "sortbytes/frame");

    const int frames = 12;
    for (int passes = 1; passes <= 4; ++passes) {
        DynamicPartialConfig dps;
        dps.passes = passes;
        ReuseUpdateSorter sorter(dps);
        Renderer renderer(opts);

        double min_psnr = 1e9, sum_psnr = 0.0;
        uint64_t bytes = 0;
        int measured = 0;
        for (int f = 0; f < frames; ++f) {
            Camera cam = traj.cameraAt(f, res);
            BinnedFrame frame = binFrame(scene, cam, opts.tile_px);
            sorter.beginFrame(frame, f);
            if (f == 0) {
                sorter.takeStats();
                continue; // cold start is a full sort; skip
            }
            BinnedFrame sorted = frame;
            for (auto &tile : sorted.tiles)
                std::sort(tile.begin(), tile.end(), entryDepthLess);
            Image ref = base.renderWithOrdering(sorted, {});
            Image img =
                renderer.renderWithOrdering(frame, sorter.orderings());
            double q = psnr(ref, img);
            min_psnr = std::min(min_psnr, q);
            sum_psnr += q;
            ++measured;
            SortCoreStats s = sorter.takeStats();
            bytes += (s.entries_read + s.entries_written) * 8;
        }
        std::printf("%-8d %-14.2f %-14.2f %-16.0f\n", passes, min_psnr,
                    sum_psnr / measured,
                    static_cast<double>(bytes) / measured);
    }

    std::printf("\n(PSNR is against the exact per-frame sort; traffic "
                "scales ~linearly with passes while quality saturates "
                "after one pass)\n");
    return 0;
}
