/**
 * @file
 * Figure 10: software-only Neo (Neo-SW) versus original 3DGS on the Orin
 * AGX GPU — DRAM traffic breakdown over 60 frames and per-frame latency
 * breakdown.
 *
 * Expected shape: Neo-SW cuts total traffic ~70% (sorting traffic ~83%)
 * but speeds the frame up only ~1.1x, because rasterization dominates GPU
 * runtime and the insert/delete merges diverge on SIMT hardware.
 */

#include <cstdio>

#include "bench_common.h"
#include "sim/gpu_model.h"

using namespace neo;
using namespace neo::bench;

namespace
{

struct Agg
{
    TrafficBreakdown traffic; // normalized to 60 frames
    double fe_ms = 0.0, sort_ms = 0.0, raster_ms = 0.0, total_ms = 0.0;
};

Agg
run(const GpuModel &model)
{
    Agg a;
    int scenes = 0;
    for (const auto &scene : mainScenes()) {
        auto seq = sequence(scene, kResQHD, 16);
        SequenceResult r = simulateGpu(model, seq);
        double k = 60.0 / static_cast<double>(seq.size());
        TrafficBreakdown t = r.traffic();
        a.traffic.feature_bytes += t.feature_bytes * k;
        a.traffic.sorting_bytes += t.sorting_bytes * k;
        a.traffic.raster_bytes += t.raster_bytes * k;
        double fe = 0.0, sort = 0.0, raster = 0.0, total = 0.0;
        for (const auto &f : r.frames) {
            fe += f.fe_compute_s * 1e3;
            sort += f.sort_compute_s * 1e3;
            raster += f.raster_compute_s * 1e3;
            total += f.latencyMs();
        }
        a.fe_ms += fe / seq.size();
        a.sort_ms += sort / seq.size();
        a.raster_ms += raster / seq.size();
        a.total_ms += total / seq.size();
        ++scenes;
    }
    a.traffic.feature_bytes /= scenes;
    a.traffic.sorting_bytes /= scenes;
    a.traffic.raster_bytes /= scenes;
    a.fe_ms /= scenes;
    a.sort_ms /= scenes;
    a.raster_ms /= scenes;
    a.total_ms /= scenes;
    return a;
}

} // namespace

int
main()
{
    banner("Figure 10 - Neo-SW on Orin AGX",
           "original 3DGS vs Neo software algorithm on the GPU",
           "traffic 282 GB -> 48 GB (60 frames) but latency only ~1.1x "
           "better; sorting speedup limited to ~1.54x");

    GpuConfig base_cfg;
    GpuConfig sw_cfg;
    sw_cfg.neo_sw = true;
    Agg base = run(GpuModel(base_cfg));
    Agg neosw = run(GpuModel(sw_cfg));

    std::printf("\n(a) DRAM traffic, 60 frames @ QHD (GB)\n");
    cell("");
    cell("FE");
    cell("Sort");
    cell("Raster");
    cell("Total");
    endRow();
    cell("3DGS");
    cellf(base.traffic.feature_bytes / 1e9);
    cellf(base.traffic.sorting_bytes / 1e9);
    cellf(base.traffic.raster_bytes / 1e9);
    cellf(base.traffic.totalGB());
    endRow();
    cell("Neo-SW");
    cellf(neosw.traffic.feature_bytes / 1e9);
    cellf(neosw.traffic.sorting_bytes / 1e9);
    cellf(neosw.traffic.raster_bytes / 1e9);
    cellf(neosw.traffic.totalGB());
    endRow();

    std::printf("\n(b) latency per frame (ms, compute view)\n");
    cell("");
    cell("FE");
    cell("Sort");
    cell("Raster");
    cell("Frame");
    endRow();
    cell("3DGS");
    cellf(base.fe_ms, "%-12.2f");
    cellf(base.sort_ms, "%-12.2f");
    cellf(base.raster_ms, "%-12.2f");
    cellf(base.total_ms, "%-12.2f");
    endRow();
    cell("Neo-SW");
    cellf(neosw.fe_ms, "%-12.2f");
    cellf(neosw.sort_ms, "%-12.2f");
    cellf(neosw.raster_ms, "%-12.2f");
    cellf(neosw.total_ms, "%-12.2f");
    endRow();

    std::printf("\ntraffic reduction: %.1f%% total, %.1f%% sorting "
                "(paper: 70.4%% / 82.8%%)\n",
                100.0 * (1.0 - neosw.traffic.total() / base.traffic.total()),
                100.0 * (1.0 - neosw.traffic.sorting_bytes /
                                   base.traffic.sorting_bytes));
    std::printf("end-to-end speedup: %.2fx (paper: ~1.1x)\n",
                base.total_ms / neosw.total_ms);
    return 0;
}
