/**
 * @file
 * Multi-session serving bench — the serving layer's throughput and
 * isolation entry point.
 *
 * Opens N sessions against one shared scene/RendererShared and drives
 * each from its own driver thread over the same synthetic orbit the
 * thread-scaling bench renders (same scene parameters, resolution and
 * frame count), sweeping sessions x pipeline worker threads. Every
 * delivered frame's hash is compared against a solo single-session
 * renderer walking the same trajectory: the fault-isolation contract
 * says concurrent siblings must not change a single bit, so a mismatch
 * fails the run. The 1-session / threads=1 point renders the identical
 * per-frame workload as bench_scaling's threads=1 staged point, which is
 * what bench/diff_bench.sh gates the serving-layer overhead with.
 *
 *   ./bench_server [--json out.json] [--gaussians N] [--frames N]
 *                  [--sessions-list 1,2,4] [--threads-list 1,2,4,8]
 *                  [--pr N] [--net] [--checkpoint]
 *
 * --net additionally measures the socket front end: a NetFrontend on an
 * ephemeral loopback port over the same scene, driven by the blocking
 * NetClient one request per frame, at each thread count. Next to the
 * end-to-end net ms/frame, the wire overhead is measured directly as
 * the mean round-trip of a no-render Stats request — the full framed
 * path (encode, CRC, two loopback hops, poll dispatch, decode) without
 * a render inside, so the number is not a difference of two large
 * jittery frame times. Net points land in a separate "net_points" JSON
 * array whose lines carry no "sessions" key, so bench/diff_bench.sh's
 * in-process extraction is untouched.
 *
 * --checkpoint measures durable-mode overhead (serve/durable/): the
 * same 1-session workload twice per thread count — plain, then with
 * checkpointing + write-ahead journaling (fdatasync every record,
 * snapshot cadence mid-run) into a scratch state directory. Both runs'
 * hashes are still compared against solo. The pair lands in a
 * "durable_points" array (again no "sessions" key); diff_bench.sh
 * gates durable vs plain within the same file at <=10%.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "bench_common.h"
#include "common/parallel.h"
#include "scene/synthetic.h"
#include "scene/trajectory.h"
#include "serve/durable/durable.h"
#include "serve/net/client.h"
#include "serve/net/frontend.h"
#include "serve/server.h"

using namespace neo;

namespace
{

struct Args
{
    std::string json_path;
    size_t gaussians = 30000;
    int frames = 5;
    int pr = 8;
    std::vector<int> sessions = {1, 2, 4};
    std::vector<int> threads = {1, 2, 4, 8};
    bool net = false;
    bool checkpoint = false;
};

std::vector<int>
parseIntList(const char *s)
{
    std::vector<int> out;
    for (const char *p = s; *p;) {
        int v = std::atoi(p);
        if (v > 0)
            out.push_back(v);
        while (*p && *p != ',')
            ++p;
        if (*p == ',')
            ++p;
    }
    return out;
}

Args
parse(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--net") == 0) {
            a.net = true;
            continue;
        }
        if (std::strcmp(argv[i], "--checkpoint") == 0) {
            a.checkpoint = true;
            continue;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "flag '%s' needs a value\n", argv[i]);
            std::exit(2);
        }
        if (std::strcmp(argv[i], "--json") == 0)
            a.json_path = argv[++i];
        else if (std::strcmp(argv[i], "--gaussians") == 0)
            a.gaussians = static_cast<size_t>(std::atol(argv[++i]));
        else if (std::strcmp(argv[i], "--frames") == 0)
            a.frames = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--sessions-list") == 0)
            a.sessions = parseIntList(argv[++i]);
        else if (std::strcmp(argv[i], "--threads-list") == 0)
            a.threads = parseIntList(argv[++i]);
        else if (std::strcmp(argv[i], "--pr") == 0)
            a.pr = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            std::exit(2);
        }
    }
    if (a.sessions.empty())
        a.sessions = {1};
    if (a.threads.empty())
        a.threads = {1};
    if (a.frames < 1)
        a.frames = 1;
    return a;
}

struct PointResult
{
    int sessions = 0;
    int threads = 0;
    /** Wall-clock per delivered frame across all sessions. */
    double ms_per_frame = 0.0;
    /** Every delivered hash matched the solo run. */
    bool isolated = true;
};

/** One --net sweep point: a single session driven over the loopback
    socket, request per frame, against the in-process baseline at the
    same thread count. Carries no "sessions" field on purpose — the
    JSON line must not match diff_bench.sh's in-process extraction. */
struct NetPointResult
{
    int threads = 0;
    /** Wall-clock per served frame including both loopback hops. */
    double net_ms_per_frame = 0.0;
    /** Mean round-trip of a no-render Stats request, in microseconds —
        the framed wire path with no frame render inside. */
    double wire_overhead_us = 0.0;
    /** Every served hash matched the solo run. */
    bool isolated = true;
};

/** One --checkpoint sweep point: the 1-session workload plain vs with
    durable checkpointing + journaling. No "sessions" key, same reason
    as NetPointResult. */
struct DurablePointResult
{
    int threads = 0;
    /** Wall-clock per frame without durability. */
    double base_ms_per_frame = 0.0;
    /** Same workload with write-ahead journaling (fdatasync per
        record) and mid-run snapshot checkpoints. */
    double durable_ms_per_frame = 0.0;
    /** Every hash (both runs) matched the solo run. */
    bool isolated = true;
};

/** Scratch durable state directory; removed with its contents. */
class ScratchStateDir
{
  public:
    ScratchStateDir()
    {
        char tmpl[] = "bench-durable-XXXXXX";
        const char *dir = mkdtemp(tmpl);
        path_ = dir ? dir : "";
    }

    ~ScratchStateDir()
    {
        if (path_.empty())
            return;
        if (DIR *d = opendir(path_.c_str())) {
            while (dirent *e = readdir(d)) {
                const std::string name = e->d_name;
                if (name != "." && name != "..")
                    ::unlink((path_ + "/" + name).c_str());
            }
            closedir(d);
        }
        ::rmdir(path_.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

bool
writeJson(const std::string &path, const Args &args, Resolution res,
          const std::vector<PointResult> &points,
          const std::vector<NetPointResult> &net_points,
          const std::vector<DurablePointResult> &durable_points,
          bool isolated_all)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"server\",\n");
    std::fprintf(f, "  \"pr\": %d,\n", args.pr);
    std::fprintf(f, "  \"scene\": \"synthetic-orbit\",\n");
    std::fprintf(f, "  \"gaussians\": %zu,\n", args.gaussians);
    std::fprintf(f, "  \"resolution\": \"%dx%d\",\n", res.width,
                 res.height);
    std::fprintf(f, "  \"frames\": %d,\n", args.frames);
    std::fprintf(f, "  \"machine_cores\": %d,\n", hardwareThreadCount());
    std::fprintf(f, "  \"isolation\": \"delivered frame hashes "
                    "bit-identical to solo renderers\",\n");
    std::fprintf(f, "  \"isolated_all\": %s,\n",
                 isolated_all ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const PointResult &p = points[i];
        std::fprintf(f,
                     "    {\"sessions\": %d, \"threads\": %d, "
                     "\"ms_per_frame\": %.3f, \"isolated\": %s}%s\n",
                     p.sessions, p.threads, p.ms_per_frame,
                     p.isolated ? "true" : "false",
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n",
                 net_points.empty() && durable_points.empty() ? "" : ",");
    if (!net_points.empty()) {
        // Socket-front-end points: no "sessions" key, so
        // bench/diff_bench.sh's grep for the in-process
        // 1-session/threads=1 line cannot land here.
        std::fprintf(f, "  \"net_points\": [\n");
        for (size_t i = 0; i < net_points.size(); ++i) {
            const NetPointResult &p = net_points[i];
            std::fprintf(f,
                         "    {\"threads\": %d, "
                         "\"net_ms_per_frame\": %.3f, "
                         "\"wire_overhead_us\": %.1f, "
                         "\"isolated\": %s}%s\n",
                         p.threads, p.net_ms_per_frame,
                         p.wire_overhead_us,
                         p.isolated ? "true" : "false",
                         i + 1 < net_points.size() ? "," : "");
        }
        std::fprintf(f, "  ]%s\n", durable_points.empty() ? "" : ",");
    }
    if (!durable_points.empty()) {
        // Durable-mode pairs: again no "sessions" key. diff_bench.sh
        // gates durable vs base within each threads=1 line.
        std::fprintf(f, "  \"durable_points\": [\n");
        for (size_t i = 0; i < durable_points.size(); ++i) {
            const DurablePointResult &p = durable_points[i];
            const double pct =
                p.base_ms_per_frame > 0.0
                    ? (p.durable_ms_per_frame - p.base_ms_per_frame) *
                          100.0 / p.base_ms_per_frame
                    : 0.0;
            std::fprintf(f,
                         "    {\"threads\": %d, "
                         "\"base_ms_per_frame\": %.3f, "
                         "\"durable_ms_per_frame\": %.3f, "
                         "\"checkpoint_overhead_pct\": %.1f, "
                         "\"isolated\": %s}%s\n",
                         p.threads, p.base_ms_per_frame,
                         p.durable_ms_per_frame, pct,
                         p.isolated ? "true" : "false",
                         i + 1 < durable_points.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse(argc, argv);

    bench::banner("Multi-session serving throughput and isolation",
                  "serving-layer trajectory",
                  "healthy sessions bit-identical to solo runs at every "
                  "sessions x threads point");

    SyntheticSceneParams params;
    params.count = args.gaussians;
    params.clusters = 8;
    params.extent = 8.0f;
    params.seed = 2026;
    params.name = "scaling";
    auto scene =
        std::make_shared<const GaussianScene>(generateScene(params));
    const Resolution res{640, 384, "bench"};

    int max_sessions = 1;
    for (int s : args.sessions)
        max_sessions = std::max(max_sessions, s);

    // Session i orbits at its own speed: distinct camera streams, so an
    // accidental cross-session state leak cannot hide behind identical
    // inputs. Session 0 matches bench_scaling's orbit exactly.
    std::vector<Trajectory> trajectories;
    trajectories.reserve(static_cast<size_t>(max_sessions));
    for (int i = 0; i < max_sessions; ++i)
        trajectories.emplace_back(TrajectoryKind::Orbit, *scene,
                                  1.0f + 0.25f * static_cast<float>(i));

    std::printf("scene: %zu gaussians, %d frames @ %dx%d, machine has "
                "%d hardware thread(s)\n\n",
                scene->size(), args.frames, res.width, res.height,
                hardwareThreadCount());

    // Solo ground truth per trajectory: frame hashes are bit-identical
    // at every thread count (determinism contract), so one serial run
    // per stream serves every sweep point.
    std::vector<std::vector<uint64_t>> solo(
        static_cast<size_t>(max_sessions));
    {
        PipelineOptions opts = NeoRenderer::neoDefaultOptions();
        opts.threads = 1;
        for (int i = 0; i < max_sessions; ++i) {
            NeoRenderer solo_renderer(opts);
            Image image;
            for (int f = 0; f <= args.frames; ++f) {
                solo_renderer.renderFrameInto(
                    image, *scene,
                    trajectories[static_cast<size_t>(i)].cameraAt(f, res),
                    static_cast<uint64_t>(f));
                solo[static_cast<size_t>(i)].push_back(
                    image.contentHash());
            }
        }
    }

    using clock = std::chrono::steady_clock;
    std::vector<PointResult> points;
    bool isolated_all = true;

    std::printf("%-10s %-10s %-12s %-14s %s\n", "sessions", "threads",
                "ms/frame", "frames/sec", "isolated");
    for (int S : args.sessions) {
        for (int T : args.threads) {
            serve::ServerConfig cfg;
            cfg.max_sessions = static_cast<size_t>(S);
            cfg.pipeline = NeoRenderer::neoDefaultOptions();
            cfg.pipeline.threads = T;
            // The bench measures throughput under oversubscription; a
            // contention spike is not a wedged stage, so park the
            // watchdog floor far above any real frame time.
            cfg.watchdog_floor_ms = 10000.0;

            serve::NeoServer server(scene, cfg);
            std::vector<serve::Session *> sessions;
            for (int i = 0; i < S; ++i) {
                const serve::AdmitResult admit = server.open(
                    trajectories[static_cast<size_t>(i)], res);
                if (!admit.admitted) {
                    std::fprintf(stderr, "admission failed: %s\n",
                                 admit.reason);
                    return 1;
                }
                sessions.push_back(server.session(admit.session_id));
            }

            std::atomic<bool> isolated{true};

            // Untimed warm-up frame per session (pool spin-up, buffer
            // growth), mirroring the scaling bench's protocol.
            for (int i = 0; i < S; ++i) {
                sessions[static_cast<size_t>(i)]->submit(0);
                serve::FrameOutcome o;
                sessions[static_cast<size_t>(i)]->step(&o);
                if (!o.rendered ||
                    o.frame_hash != solo[static_cast<size_t>(i)][0])
                    isolated.store(false);
            }

            // One driver thread per session; the shared pool serializes
            // stage dispatches, so this measures aggregate throughput.
            const auto t0 = clock::now();
            std::vector<std::thread> drivers;
            drivers.reserve(static_cast<size_t>(S));
            for (int i = 0; i < S; ++i) {
                drivers.emplace_back([&, i] {
                    serve::Session *s =
                        sessions[static_cast<size_t>(i)];
                    for (int f = 1; f <= args.frames; ++f) {
                        s->submit(static_cast<uint64_t>(f));
                        serve::FrameOutcome o;
                        s->step(&o);
                        if (!o.rendered ||
                            o.frame_hash !=
                                solo[static_cast<size_t>(i)]
                                    [static_cast<size_t>(f)])
                            isolated.store(false);
                    }
                });
            }
            for (auto &d : drivers)
                d.join();
            const double elapsed_ms =
                std::chrono::duration<double, std::milli>(clock::now() -
                                                          t0)
                    .count();

            PointResult p;
            p.sessions = S;
            p.threads = T;
            p.ms_per_frame = elapsed_ms / (S * args.frames);
            p.isolated = isolated.load();
            isolated_all = isolated_all && p.isolated;
            points.push_back(p);

            std::printf("%-10d %-10d %-12.2f %-14.1f %s\n", S, T,
                        p.ms_per_frame,
                        p.ms_per_frame > 0.0 ? 1000.0 / p.ms_per_frame
                                             : 0.0,
                        p.isolated ? "yes" : "NO");
        }
    }

    // --- Socket front end: the same 1-session workload over loopback,
    // one framed request per frame, against the in-process baseline.
    std::vector<NetPointResult> net_points;
    if (args.net) {
        std::printf("\nsocket front end (loopback, 1 session, one "
                    "request per frame)\n");
        std::printf("%-10s %-14s %-18s %s\n", "threads", "net ms/frame",
                    "wire overhead us", "isolated");
        for (int T : args.threads) {
            serve::ServerConfig cfg;
            cfg.max_sessions = 1;
            cfg.pipeline = NeoRenderer::neoDefaultOptions();
            cfg.pipeline.threads = T;
            cfg.watchdog_floor_ms = 10000.0;
            serve::NeoServer server(scene, cfg);

            serve::net::NetConfig ncfg = serve::net::netConfigFromEnv();
            ncfg.port = 0; // ephemeral: concurrent runs must not collide
            serve::net::NetFrontend frontend(server, ncfg);
            if (!frontend.start()) {
                std::fprintf(stderr, "net: bind/listen failed\n");
                return 1;
            }
            std::thread loop([&frontend] { frontend.run(); });

            NetPointResult p;
            p.threads = T;
            bool ok = true;
            {
                serve::net::NetClient client;
                ok = client.connect(frontend.port());

                serve::net::OpenOkReply open_ok;
                if (ok) {
                    // Trajectory 0's contract: orbit at speed 1.0 over
                    // the bench resolution, hash-comparable to solo[0].
                    serve::net::OpenSessionReq open;
                    open.trajectory_kind = 0;
                    open.speed = 1.0f;
                    open.width = static_cast<uint16_t>(res.width);
                    open.height = static_cast<uint16_t>(res.height);
                    ok = client.openSession(open, &open_ok);
                }

                // Untimed warm-up frame, mirroring the in-process
                // protocol above.
                if (ok) {
                    serve::net::SubmitFrameReq req;
                    req.session_id = open_ok.session_id;
                    req.frame_index = 0;
                    serve::net::SubmitReply reply;
                    ok = client.submitFrame(req, &reply) &&
                         reply.rendered;
                    if (ok && reply.frame_hash != solo[0][0])
                        p.isolated = false;
                }

                if (ok) {
                    const auto t0 = clock::now();
                    for (int f = 1; f <= args.frames && ok; ++f) {
                        serve::net::SubmitFrameReq req;
                        req.session_id = open_ok.session_id;
                        req.frame_index = static_cast<uint64_t>(f);
                        serve::net::SubmitReply reply;
                        ok = client.submitFrame(req, &reply) &&
                             reply.rendered;
                        if (ok && reply.frame_hash !=
                                      solo[0][static_cast<size_t>(f)])
                            p.isolated = false;
                    }
                    p.net_ms_per_frame =
                        std::chrono::duration<double, std::milli>(
                            clock::now() - t0)
                            .count() /
                        args.frames;
                }

                // The render dwarfs the wire cost, so measure the wire
                // overhead directly: no-render Stats round-trips walk
                // the full framed path without a frame inside.
                if (ok) {
                    const int kPings = 200;
                    serve::net::StatsReply sr;
                    const auto t0 = clock::now();
                    for (int k = 0; k < kPings && ok; ++k)
                        ok = client.stats(open_ok.session_id, &sr);
                    p.wire_overhead_us =
                        std::chrono::duration<double, std::micro>(
                            clock::now() - t0)
                            .count() /
                        kPings;
                }

                // Graceful drain doubles as the per-point teardown: the
                // loop thread returns once every connection is flushed.
                if (ok)
                    ok = client.shutdownServer();
                if (!ok) {
                    std::fprintf(
                        stderr, "net: request failed at threads=%d: %s\n",
                        T,
                        serve::net::wireErrorName(client.lastError()));
                    frontend.requestStop();
                }
            }
            loop.join();
            if (!ok)
                return 1;

            isolated_all = isolated_all && p.isolated;
            net_points.push_back(p);

            std::printf("%-10d %-14.2f %-18.1f %s\n", T,
                        p.net_ms_per_frame, p.wire_overhead_us,
                        p.isolated ? "yes" : "NO");
        }
    }

    // --- Durable mode: the 1-session workload plain vs checkpointed,
    // measuring what write-ahead journaling + snapshots cost per frame.
    std::vector<DurablePointResult> durable_points;
    if (args.checkpoint) {
        std::printf("\ndurable checkpointing (1 session, fdatasync per "
                    "record, snapshot cadence %d frames)\n",
                    std::max(args.frames / 2, 1));
        std::printf("%-10s %-14s %-16s %-12s %s\n", "threads",
                    "base ms/frame", "durable ms/frame", "overhead",
                    "isolated");

        // One 1-session pass over trajectory 0; returns ms/frame, or a
        // negative value on failure. Durable runs mirror the serving
        // loop's checkpoint pump (maybeCheckpoint after each step).
        auto runPoint = [&](int T, const serve::durable::DurableConfig
                                       *durable,
                            bool *isolated_out) -> double {
            serve::ServerConfig cfg;
            cfg.max_sessions = 1;
            cfg.pipeline = NeoRenderer::neoDefaultOptions();
            cfg.pipeline.threads = T;
            cfg.watchdog_floor_ms = 10000.0;
            serve::NeoServer server(scene, cfg);
            if (durable && !server.enableDurability(*durable))
                return -1.0;
            const serve::AdmitResult admit =
                server.open(trajectories[0], res);
            if (!admit.admitted)
                return -1.0;
            serve::Session *s = server.session(admit.session_id);

            bool isolated = true;
            // Untimed warm-up, same protocol as the sweeps above.
            s->submit(0);
            serve::FrameOutcome o;
            s->step(&o);
            if (!o.rendered || o.frame_hash != solo[0][0])
                isolated = false;

            const auto t0 = clock::now();
            for (int f = 1; f <= args.frames; ++f) {
                s->submit(static_cast<uint64_t>(f));
                s->step(&o);
                if (!o.rendered ||
                    o.frame_hash != solo[0][static_cast<size_t>(f)])
                    isolated = false;
                if (durable)
                    server.maybeCheckpoint();
            }
            const double ms =
                std::chrono::duration<double, std::milli>(clock::now() -
                                                          t0)
                    .count() /
                args.frames;
            *isolated_out = isolated;
            return ms;
        };

        for (int T : args.threads) {
            ScratchStateDir state;
            if (state.path().empty()) {
                std::fprintf(stderr, "durable: mkdtemp failed\n");
                return 1;
            }
            serve::durable::DurableConfig dcfg;
            dcfg.state_dir = state.path();
            dcfg.keep_generations = 3;
            // Checkpoint mid-run (not only at drain) so the snapshot
            // write cost lands inside the timed window.
            dcfg.checkpoint_every = static_cast<uint64_t>(
                std::max(args.frames / 2, 1));
            dcfg.sync_every = 1;

            DurablePointResult p;
            p.threads = T;
            bool base_iso = true;
            bool dur_iso = true;
            p.base_ms_per_frame = runPoint(T, nullptr, &base_iso);
            p.durable_ms_per_frame = runPoint(T, &dcfg, &dur_iso);
            if (p.base_ms_per_frame < 0.0 ||
                p.durable_ms_per_frame < 0.0) {
                std::fprintf(stderr,
                             "durable: point failed at threads=%d\n", T);
                return 1;
            }
            p.isolated = base_iso && dur_iso;
            isolated_all = isolated_all && p.isolated;
            durable_points.push_back(p);

            const double pct =
                p.base_ms_per_frame > 0.0
                    ? (p.durable_ms_per_frame - p.base_ms_per_frame) *
                          100.0 / p.base_ms_per_frame
                    : 0.0;
            char pct_col[32];
            std::snprintf(pct_col, sizeof pct_col, "%+.1f%%", pct);
            std::printf("%-10d %-14.2f %-16.2f %-12s %s\n", T,
                        p.base_ms_per_frame, p.durable_ms_per_frame,
                        pct_col, p.isolated ? "yes" : "NO");
        }
    }

    std::printf("\nfault isolation (hashes vs solo runs): %s\n",
                isolated_all ? "OK (bit-identical)" : "FAILED");

    if (!args.json_path.empty()) {
        if (!writeJson(args.json_path, args, res, points, net_points,
                       durable_points, isolated_all)) {
            std::fprintf(stderr, "error: could not write %s\n",
                         args.json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", args.json_path.c_str());
    }
    return isolated_all ? 0 : 1;
}
