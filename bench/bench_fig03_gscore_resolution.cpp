/**
 * @file
 * Figure 3: GSCore throughput (FPS) at HD / FHD / QHD on the six scenes,
 * with the paper's original configuration (4 cores, 51.2 GB/s).
 *
 * Expected shape: >60 FPS at HD, a steep drop at FHD and QHD (the paper
 * measures 66.7 / 31.1 / 15.8 FPS on average).
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/gscore_model.h"

using namespace neo;
using namespace neo::bench;

int
main()
{
    banner("Figure 3 - GSCore FPS vs resolution",
           "GSCore, 4 cores, 51.2 GB/s",
           "66.7 FPS HD / 31.1 FPS FHD / 15.8 FPS QHD (mean)");

    GscoreConfig cfg;
    cfg.cores = 4;
    GscoreModel model(cfg);

    cell("Scene");
    for (auto res : mainResolutions())
        cell(res.name);
    endRow();

    std::vector<double> mean_fps(3, 0.0);
    for (const auto &scene : mainScenes()) {
        cell(scene.c_str());
        int col = 0;
        for (auto res : mainResolutions()) {
            auto seq = sequence(scene, res, 16);
            SequenceResult r = simulateGscore(model, seq);
            cellf(r.meanFps());
            mean_fps[col++] += r.meanFps() / mainScenes().size();
        }
        endRow();
    }
    cell("MEAN");
    for (double f : mean_fps)
        cellf(f);
    endRow();

    std::printf("\nSLO: 60 FPS -> HD %s, FHD %s, QHD %s\n",
                mean_fps[0] >= 60.0 ? "met" : "missed",
                mean_fps[1] >= 60.0 ? "met" : "missed",
                mean_fps[2] >= 60.0 ? "met" : "missed");
    return 0;
}
