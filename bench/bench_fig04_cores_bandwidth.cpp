/**
 * @file
 * Figure 4: GSCore FPS at QHD sweeping core count {4, 8, 16} against DRAM
 * bandwidth {51.2, 102.4, 204.8} GB/s.
 *
 * Expected shape: at 51.2 GB/s, 4 -> 16 cores gains ~1.1x (bandwidth
 * bound); at fixed 16 cores, 4x bandwidth gains ~3.8x. The paper measures
 * 15.4/17.0/17.3 (51.2), 24.3/31.4/34.6 (102.4), 34.4/50.8/66.3 (204.8).
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/gscore_model.h"

using namespace neo;
using namespace neo::bench;

int
main()
{
    banner("Figure 4 - GSCore FPS vs cores x bandwidth @ QHD",
           "GSCore @ QHD, 6-scene mean",
           "compute scaling stalls at low bandwidth; bandwidth is the "
           "bottleneck");

    const int cores[] = {4, 8, 16};
    const double bws[] = {51.2, 102.4, 204.8};

    // Workloads are shared across configs: extract once per scene.
    std::vector<std::vector<FrameWorkload>> seqs;
    for (const auto &scene : mainScenes())
        seqs.push_back(sequence(scene, kResQHD, 16));

    cell("BW\\cores");
    for (int c : cores) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%d", c);
        cell(buf);
    }
    endRow();

    double fps_4_low = 0.0, fps_16_low = 0.0, fps_16_high = 0.0;
    for (double bw : bws) {
        char label[32];
        std::snprintf(label, sizeof(label), "%.1f GB/s", bw);
        cell(label);
        for (int c : cores) {
            GscoreConfig cfg;
            cfg.cores = c;
            cfg.dram.bandwidth_gbps = bw;
            GscoreModel model(cfg);
            double fps = 0.0;
            for (const auto &seq : seqs)
                fps += simulateGscore(model, seq).meanFps() / seqs.size();
            cellf(fps);
            if (bw == 51.2 && c == 4)
                fps_4_low = fps;
            if (bw == 51.2 && c == 16)
                fps_16_low = fps;
            if (bw == 204.8 && c == 16)
                fps_16_high = fps;
        }
        endRow();
    }

    std::printf("\ncore scaling 4->16 @ 51.2 GB/s: %.2fx (paper: ~1.12x)\n",
                fps_16_low / fps_4_low);
    std::printf("bandwidth scaling 51.2->204.8 @ 16 cores: %.2fx "
                "(paper: ~3.83x)\n",
                fps_16_high / fps_16_low);
    return 0;
}
