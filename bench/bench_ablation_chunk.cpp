/**
 * @file
 * Design-choice ablation D1/D2 (DESIGN.md): Dynamic Partial Sorting chunk
 * size and boundary interleaving.
 *
 * Sweeps the chunk capacity and toggles interleaved boundaries, measuring
 * (a) how many frames a perturbed table needs to reconverge to a sorted
 * state and (b) the steady-state disorder under continuous depth drift.
 * The paper picks 256-entry chunks with interleaving; fixed boundaries
 * must fail to converge whenever entries need to cross chunks (Fig. 9).
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "sort/dynamic_partial.h"

using namespace neo;

namespace
{

std::vector<TileEntry>
makeTable(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<TileEntry> t;
    for (size_t i = 0; i < n; ++i)
        t.push_back({static_cast<GaussianId>(i),
                     rng.uniform(0.0f, 1000.0f), true});
    std::sort(t.begin(), t.end(), entryDepthLess);
    return t;
}

/** Frames to reach >=99.9% sortedness after a burst perturbation. */
int
convergenceFrames(size_t chunk, bool interleave, float burst)
{
    DynamicPartialConfig cfg;
    cfg.chunk = chunk;
    cfg.interleave = interleave;
    auto t = makeTable(4096, chunk * 7 + interleave);
    Rng rng(chunk);
    for (auto &e : t)
        e.depth += rng.uniform(-burst, burst);
    for (int frame = 1; frame <= 64; ++frame) {
        dynamicPartialSort(t, frame, cfg);
        if (sortedFraction(t) >= 0.999)
            return frame;
    }
    return -1; // did not converge
}

/** Mean steady-state disorder under continuous drift. */
double
steadyDisorder(size_t chunk, bool interleave)
{
    DynamicPartialConfig cfg;
    cfg.chunk = chunk;
    cfg.interleave = interleave;
    auto t = makeTable(4096, chunk * 13);
    Rng rng(chunk + 1);
    double acc = 0.0;
    const int frames = 40;
    for (int frame = 1; frame <= frames; ++frame) {
        for (auto &e : t)
            e.depth += rng.uniform(-0.8f, 0.8f);
        dynamicPartialSort(t, frame, cfg);
        acc += 1.0 - sortedFraction(t);
    }
    return acc / frames;
}

} // namespace

int
main()
{
    std::printf("==========================================================\n");
    std::printf("Ablation D1/D2 - DPS chunk size and boundary interleaving\n");
    std::printf("  paper: 256-entry chunks, interleaved boundaries (Fig. 9)\n");
    std::printf("==========================================================\n");

    std::printf("\nconvergence after a burst (4096-entry table, frames to "
                ">=99.9%% sorted; -1 = stuck)\n");
    std::printf("%-8s %-14s %-14s %-14s\n", "chunk", "burst",
                "interleaved", "fixed");
    for (size_t chunk : {64u, 128u, 256u}) {
        for (float burst : {50.0f, 200.0f}) {
            std::printf("%-8zu %-14.0f %-14d %-14d\n", chunk, burst,
                        convergenceFrames(chunk, true, burst),
                        convergenceFrames(chunk, false, burst));
        }
    }

    std::printf("\nsteady-state disorder under drift (lower is better)\n");
    std::printf("%-8s %-14s %-14s %-16s\n", "chunk", "interleaved",
                "fixed", "traffic/frame");
    for (size_t chunk : {64u, 128u, 256u}) {
        // One pass reads+writes each entry once regardless of chunk size;
        // the traffic column shows bytes per frame for the 4096 table.
        std::printf("%-8zu %-14.5f %-14.5f %-16.0f\n", chunk,
                    steadyDisorder(chunk, true),
                    steadyDisorder(chunk, false), 4096.0 * 8.0 * 2.0);
    }

    std::printf("\n(conclusion: interleaving is required for convergence; "
                "chunk size trades on-chip buffer area against boundary "
                "crossings per frame)\n");
    return 0;
}
