#!/usr/bin/env bash
# Auto-vectorization smoke check for the subtile-blocked rasterizer.
#
# The blocked kernel's whole point is that its inner loops compile to
# SIMD: this script recompiles src/gs/raster.cpp with the Release flags
# plus -fopt-info-vec-optimized and asserts that
#
#   1. the conic-power loop (the line writing `pw[p] = -0.5f * ...` in
#      blendBlocked) is reported "loop vectorized", and
#   2. at least MIN_VECTORIZED loops of raster.cpp vectorize overall.
#
# A silent vectorization regression (e.g. an accidental loop-carried
# dependency or a call in the inner loop) fails here long before it is
# visible as a wall-clock regression on a loaded CI box.
#
#   bench/check_vectorization.sh [CXX]
#
# CXX defaults to ${CXX:-g++}; requires GCC-style -fopt-info. Exits 0 on
# pass, 1 on a vectorization regression, 2 when the toolchain cannot
# produce a report (e.g. non-GCC compiler) — callers may treat 2 as skip.
set -euo pipefail

cd "$(dirname "$0")/.."

CXX_BIN="${1:-${CXX:-g++}}"
SRC="src/gs/raster.cpp"
MIN_VECTORIZED=2

if ! "$CXX_BIN" --version 2>/dev/null | grep -qiE "gcc|g\+\+"; then
    echo "check_vectorization.sh: SKIP — $CXX_BIN is not GCC," \
         "-fopt-info unavailable" >&2
    exit 2
fi

# The line of the blocked kernel's power loop body: the vectorization
# target the report must mention (match on the assignment, which is
# unique to that loop).
power_line="$(grep -n 'pw\[p\] = conicPower' "$SRC" | head -1 | cut -d: -f1)"
if [[ -z "$power_line" ]]; then
    echo "check_vectorization.sh: FAIL — power-loop marker not found" \
         "in $SRC (kernel restructured? update this script)" >&2
    exit 1
fi

report="$("$CXX_BIN" -std=c++20 -O3 -DNDEBUG -Wall -Isrc -c "$SRC" \
          -o /dev/null -fopt-info-vec-optimized 2>&1 | grep -F "$SRC" \
          || true)"

vectorized_lines="$(printf '%s\n' "$report" |
    grep -E "optimized: *loop vectorized" |
    sed -E "s|.*$SRC:([0-9]+):.*|\1|" | sort -un || true)"

count="$(printf '%s\n' "$vectorized_lines" | grep -c . || true)"

# The reported loop line is the `for` header, a few lines above the body
# marker; accept a report within 8 lines upstream of it.
power_ok=0
for line in $vectorized_lines; do
    if ((line <= power_line && line >= power_line - 8)); then
        power_ok=1
    fi
done

echo "check_vectorization.sh: $count vectorized loop line(s) in $SRC:" \
     $(printf '%s ' $vectorized_lines)
if ((!power_ok)); then
    echo "check_vectorization.sh: FAIL — the blocked kernel's conic-power" \
         "loop (near $SRC:$power_line) did not vectorize" >&2
    exit 1
fi
if ((count < MIN_VECTORIZED)); then
    echo "check_vectorization.sh: FAIL — only $count vectorized loop(s)," \
         "expected >= $MIN_VECTORIZED" >&2
    exit 1
fi
echo "check_vectorization.sh: OK (power loop near line $power_line" \
     "vectorized)"
