#!/usr/bin/env bash
# Auto-vectorization smoke check for the SIMD hot loops.
#
# The blocked rasterizer and the delta tracker exist to keep their inner
# loops SIMD: this script recompiles the hot translation units with the
# Release flags plus -fopt-info-vec-optimized and asserts that each
# named marker loop is reported "loop vectorized":
#
#   src/gs/raster.cpp
#     1. the fused conic-power + block-retire pass of blendBlocked
#        (the line computing `power = conicPower(...)`);
#     2. the survivor exp batch loop
#        (the line writing `sexp[i] = fastExpNegativeLane(...)`);
#     and at least MIN_VECTORIZED_RASTER loops overall.
#   src/core/delta_tracker.cpp
#     3. the SoA sorted-id extract scan of observe()
#        (the line writing `ids[i] = ...`);
#     and at least MIN_VECTORIZED_TRACKER loops overall.
#   src/gs/tile_sort.cpp
#     4. the key unpack/reconstruct loop of the fused small-sort batch
#        kernel keySortTable (the line writing `out[i].id = ...`);
#     and at least MIN_VECTORIZED_SORT loops overall.
#
# A silent vectorization regression (e.g. an accidental loop-carried
# dependency, a call in the inner loop, or a select turned back into a
# branch) fails here long before it is visible as a wall-clock
# regression on a loaded CI box.
#
#   bench/check_vectorization.sh [CXX]
#
# CXX defaults to ${CXX:-g++}; requires GCC-style -fopt-info. Exits 0 on
# pass, 1 on a vectorization regression, 2 when the toolchain cannot
# produce a report (e.g. non-GCC compiler) — callers may treat 2 as skip.
set -euo pipefail

cd "$(dirname "$0")/.."

CXX_BIN="${1:-${CXX:-g++}}"
MIN_VECTORIZED_RASTER=3
MIN_VECTORIZED_TRACKER=1
MIN_VECTORIZED_SORT=1

if ! "$CXX_BIN" --version 2>/dev/null | grep -qiE "gcc|g\+\+"; then
    echo "check_vectorization.sh: SKIP — $CXX_BIN is not GCC," \
         "-fopt-info unavailable" >&2
    exit 2
fi

fail=0

# vectorized_lines SRC -> unique source lines reported "loop vectorized"
vectorized_lines() {
    local src="$1"
    "$CXX_BIN" -std=c++20 -O3 -DNDEBUG -Wall -Isrc -c "$src" \
        -o /dev/null -fopt-info-vec-optimized 2>&1 |
        grep -F "$src" |
        grep -E "optimized: *loop vectorized" |
        sed -E "s|.*$src:([0-9]+):.*|\1|" | sort -un || true
}

# require_marker SRC LINES MARKER_REGEX LABEL
#
# The marker line is the loop-body statement; -fopt-info reports the
# `for` header a few lines above it, so accept a vectorized-loop report
# within 8 lines upstream of the marker.
require_marker() {
    local src="$1" lines="$2" marker="$3" label="$4"
    local marker_line
    marker_line="$(grep -n "$marker" "$src" | head -1 | cut -d: -f1)"
    if [[ -z "$marker_line" ]]; then
        echo "check_vectorization.sh: FAIL — marker '$label' not found" \
             "in $src (loop restructured? update this script)" >&2
        fail=1
        return
    fi
    local line ok=0
    for line in $lines; do
        if ((line <= marker_line && line >= marker_line - 8)); then
            ok=1
        fi
    done
    if ((!ok)); then
        echo "check_vectorization.sh: FAIL — the $label loop (near" \
             "$src:$marker_line) did not vectorize" >&2
        fail=1
    else
        echo "check_vectorization.sh: OK — $label loop (near" \
             "$src:$marker_line) vectorized"
    fi
}

# require_count SRC LINES MIN_COUNT — runs in the main shell so a
# failure reaches the gate's exit status.
require_count() {
    local src="$1" lines="$2" min="$3" count
    count="$(printf '%s\n' "$lines" | grep -c . || true)"
    echo "check_vectorization.sh: $count vectorized loop line(s) in" \
         "$src:" $(printf '%s ' $lines)
    if ((count < min)); then
        echo "check_vectorization.sh: FAIL — only $count vectorized" \
             "loop(s) in $src, expected >= $min" >&2
        fail=1
    fi
}

raster_lines="$(vectorized_lines src/gs/raster.cpp)"
require_count src/gs/raster.cpp "$raster_lines" "$MIN_VECTORIZED_RASTER"
require_marker src/gs/raster.cpp "$raster_lines" \
    'power = conicPower' "blocked kernel conic-power"
require_marker src/gs/raster.cpp "$raster_lines" \
    'sexp\[i\] = fastExpNegativeLane' "survivor exp batch"

tracker_lines="$(vectorized_lines src/core/delta_tracker.cpp)"
require_count src/core/delta_tracker.cpp "$tracker_lines" \
    "$MIN_VECTORIZED_TRACKER"
require_marker src/core/delta_tracker.cpp "$tracker_lines" \
    'ids\[i\] = static_cast<GaussianId>' "delta-tracker sorted-id scan"

sort_lines="$(vectorized_lines src/gs/tile_sort.cpp)"
require_count src/gs/tile_sort.cpp "$sort_lines" "$MIN_VECTORIZED_SORT"
require_marker src/gs/tile_sort.cpp "$sort_lines" \
    'out\[i\].id = static_cast<uint32_t>' "key-sort unpack"

if ((fail)); then
    exit 1
fi
echo "check_vectorization.sh: OK (all marker loops vectorized)"
