/**
 * @file
 * google-benchmark microbenchmarks of the sorting substrate: the BSU
 * network, chunk sorting, the MSU+ merge/update path, Dynamic Partial
 * Sorting, and a full functional frame. These measure host throughput of
 * the functional models (not accelerator cycles) and guard against
 * performance regressions in the library itself.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/reuse_update.h"
#include "gs/pipeline.h"
#include "scene/synthetic.h"
#include "sort/chunk_sort.h"
#include "sort/dynamic_partial.h"

namespace
{

using namespace neo;

std::vector<TileEntry>
randomTable(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<TileEntry> t;
    t.reserve(n);
    for (size_t i = 0; i < n; ++i)
        t.push_back({static_cast<GaussianId>(i),
                     rng.uniform(0.0f, 1000.0f), true});
    return t;
}

void
BM_BsuSubchunk(benchmark::State &state)
{
    auto base = randomTable(kBsuWidth, 1);
    for (auto _ : state) {
        auto t = base;
        bsuSortSubchunk(t, 0, kBsuWidth);
        benchmark::DoNotOptimize(t.data());
    }
    state.SetItemsProcessed(state.iterations() * kBsuWidth);
}
BENCHMARK(BM_BsuSubchunk);

void
BM_SortChunk(benchmark::State &state)
{
    auto base = randomTable(kChunkSize, 2);
    for (auto _ : state) {
        auto t = base;
        sortChunk(t, 0, kChunkSize);
        benchmark::DoNotOptimize(t.data());
    }
    state.SetItemsProcessed(state.iterations() * kChunkSize);
}
BENCHMARK(BM_SortChunk);

void
BM_FullSortTable(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    auto base = randomTable(n, 3);
    for (auto _ : state) {
        auto t = base;
        fullSortTable(t);
        benchmark::DoNotOptimize(t.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullSortTable)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_DynamicPartialSort(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    auto base = randomTable(n, 4);
    std::sort(base.begin(), base.end(), entryDepthLess);
    Rng rng(5);
    for (auto &e : base)
        e.depth += rng.uniform(-1.0f, 1.0f);
    uint64_t frame = 0;
    for (auto _ : state) {
        auto t = base;
        dynamicPartialSort(t, ++frame, {});
        benchmark::DoNotOptimize(t.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DynamicPartialSort)->Arg(1024)->Arg(4096);

void
BM_MsuUpdateTable(benchmark::State &state)
{
    auto table = randomTable(2048, 6);
    std::sort(table.begin(), table.end(), entryDepthLess);
    for (size_t i = 0; i < table.size(); i += 37)
        table[i].valid = false;
    auto incoming = randomTable(64, 7);
    std::sort(incoming.begin(), incoming.end(), entryDepthLess);
    std::vector<TileEntry> out;
    for (auto _ : state) {
        msuUpdateTable(table, incoming, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * (2048 + 64));
}
BENCHMARK(BM_MsuUpdateTable);

void
BM_RenderFrame(benchmark::State &state)
{
    SyntheticSceneParams p;
    p.count = 5000;
    p.seed = 9;
    GaussianScene scene = generateScene(p);
    Camera cam({256, 192, "bench"}, deg2rad(50.0f));
    cam.lookAt({0.0f, 2.0f, -3.0f * scene.bounding_radius}, scene.center);
    Renderer renderer;
    for (auto _ : state) {
        Image img = renderer.render(scene, cam);
        benchmark::DoNotOptimize(img.pixels().data());
    }
}
BENCHMARK(BM_RenderFrame)->Unit(benchmark::kMillisecond);

void
BM_NeoIncrementalFrame(benchmark::State &state)
{
    SyntheticSceneParams p;
    p.count = 5000;
    p.seed = 10;
    GaussianScene scene = generateScene(p);
    Camera cam({256, 192, "bench"}, deg2rad(50.0f));
    cam.lookAt({0.0f, 2.0f, -3.0f * scene.bounding_radius}, scene.center);
    BinnedFrame frame = binFrame(scene, cam, 64);
    ReuseUpdateSorter sorter;
    sorter.beginFrame(frame, 0); // cold start outside the loop
    uint64_t f = 0;
    for (auto _ : state) {
        sorter.beginFrame(frame, ++f);
        benchmark::DoNotOptimize(&sorter);
    }
}
BENCHMARK(BM_NeoIncrementalFrame)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
