/**
 * @file
 * Extension study (§7): composing Neo with memory-footprint pruning.
 * The paper argues reuse-and-update sorting is orthogonal to
 * pruning/quantization work and "complements existing methods, enabling
 * further gains in bandwidth efficiency". This bench quantifies the
 * composition: prune the scene to a fraction of its Gaussians, then
 * measure Neo and GSCore traffic/FPS on the pruned scene.
 *
 * Expected: pruning reduces both systems' traffic roughly in proportion
 * to the kept fraction, and the Neo-vs-GSCore gap persists at every
 * pruning level (the techniques stack).
 */

#include <cstdio>

#include "gs/prune.h"
#include "scene/datasets.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"
#include "sim/perf_harness.h"

using namespace neo;

int
main()
{
    std::printf("==========================================================\n");
    std::printf("Extension - composing Neo with scene pruning (§7)\n");
    std::printf("  paper: pruning is orthogonal; Neo 'complements existing "
                "methods'\n");
    std::printf("==========================================================\n");

    ScenePreset preset = presetByName("Playground");
    const double scale = 0.25; // keep runtime modest; ratios are invariant
    const int frames = 6;

    GscoreModel gscore;
    NeoModel neo;

    std::printf("%-8s %-10s %-12s %-12s %-12s %-12s\n", "keep", "gauss",
                "GS GB/60f", "Neo GB/60f", "GS FPS", "Neo FPS");
    for (double keep : {1.0, 0.75, 0.5, 0.25}) {
        GaussianScene scene = buildScene(preset, scale);
        pruneToFraction(scene, keep);
        Trajectory traj(preset.trajectory, scene);

        WorkloadSequences seqs =
            extractSequences(scene, traj, kResQHD, frames);
        SequenceResult rg = simulateGscore(gscore, seqs.tile16);
        SequenceResult rn = simulateNeo(neo, seqs.tile64);

        std::printf("%-8.2f %-10zu %-12.1f %-12.1f %-12.1f %-12.1f\n",
                    keep, scene.size(), rg.trafficGBPer60Frames(),
                    rn.trafficGBPer60Frames(), rg.meanFps(), rn.meanFps());
    }
    std::printf("\n(the Neo/GSCore traffic gap persists at every pruning "
                "level: the techniques compose)\n");
    return 0;
}
