/**
 * @file
 * Figure 5: DRAM traffic (GB, normalized to 60 rendered frames) and its
 * per-stage breakdown for (a) the GPU and (b) GSCore, at HD/FHD/QHD.
 *
 * Expected shape: sorting dominates — up to ~91% on the GPU and ~69% on
 * GSCore at QHD — and grows with resolution.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/gpu_model.h"
#include "sim/gscore_model.h"

using namespace neo;
using namespace neo::bench;

namespace
{

template <typename Model, typename SimFn>
void
report(const char *name, const Model &model, SimFn &&simulate)
{
    std::printf("\n(%s) traffic for 60 frames, 6-scene mean\n", name);
    cell("Res");
    cell("FE (GB)");
    cell("Sort (GB)");
    cell("Raster(GB)");
    cell("Total (GB)");
    cell("Sort %");
    endRow();
    for (auto res : mainResolutions()) {
        TrafficBreakdown total;
        double scale_to_60 = 0.0;
        for (const auto &scene : mainScenes()) {
            auto seq = sequence(scene, res, 16);
            SequenceResult r = simulate(model, seq);
            TrafficBreakdown t = r.traffic();
            double k = 60.0 / static_cast<double>(seq.size()) /
                       mainScenes().size();
            total.feature_bytes += t.feature_bytes * k;
            total.sorting_bytes += t.sorting_bytes * k;
            total.raster_bytes += t.raster_bytes * k;
            scale_to_60 = 1.0;
        }
        (void)scale_to_60;
        cell(res.name);
        cellf(total.feature_bytes / 1e9);
        cellf(total.sorting_bytes / 1e9);
        cellf(total.raster_bytes / 1e9);
        cellf(total.totalGB());
        cellf(100.0 * total.fraction(Stage::Sorting));
        endRow();
    }
}

} // namespace

int
main()
{
    banner("Figure 5 - DRAM traffic breakdown (60 frames)",
           "GPU vs GSCore, HD/FHD/QHD",
           "sorting share: GPU 81/88/91%, GSCore 63/67/69%; "
           "GSCore totals ~105 GB @ QHD");

    report("a: GPU, Orin AGX", GpuModel(),
           [](const GpuModel &m, const std::vector<FrameWorkload> &s) {
               return simulateGpu(m, s);
           });
    report("b: GSCore, 16 cores", GscoreModel(),
           [](const GscoreModel &m, const std::vector<FrameWorkload> &s) {
               return simulateGscore(m, s);
           });
    return 0;
}
