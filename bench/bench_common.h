/**
 * @file
 * Shared plumbing for the paper-reproduction benches: cached workload
 * access, the scene roster, and fixed-width table printing that mirrors
 * the rows/series of the paper's figures.
 */

#ifndef NEO_BENCH_BENCH_COMMON_H
#define NEO_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "scene/datasets.h"
#include "sim/perf_harness.h"
#include "sim/workload_cache.h"

namespace neo::bench
{

/** The six main-evaluation scenes. */
inline std::vector<std::string>
mainScenes()
{
    return {"Family", "Francis", "Horse", "Lighthouse", "Playground",
            "Train"};
}

/** The three evaluation resolutions. */
inline std::vector<Resolution>
mainResolutions()
{
    return {kResHD, kResFHD, kResQHD};
}

/**
 * Cached workload sequence for a scene at a resolution and tile geometry.
 * Scene scale and frame count respect NEO_SCENE_SCALE / NEO_BENCH_FRAMES.
 */
inline std::vector<FrameWorkload>
sequence(const std::string &scene, Resolution res, int tile_px,
         int default_frames = 8, float speed = 1.0f)
{
    WorkloadKey key;
    key.scene = scene;
    key.scene_scale = benchSceneScale();
    key.res = res;
    key.tile_px = tile_px;
    key.frames = benchFrameCount(default_frames);
    key.speed = speed;
    return cachedWorkloads(key, defaultCacheDir());
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *paper_ref,
       const char *expectation)
{
    std::printf("==============================================================================\n");
    std::printf("%s  (%s)\n", experiment, paper_ref);
    std::printf("  paper: %s\n", expectation);
    std::printf("  scene scale %.2f, %d frames/sequence (override: "
                "NEO_SCENE_SCALE / NEO_BENCH_FRAMES)\n",
                benchSceneScale(), benchFrameCount(8));
    std::printf("==============================================================================\n");
}

/** Simple aligned cell printers. */
inline void
cell(const char *s)
{
    std::printf("%-12s", s);
}

inline void
cellf(double v, const char *fmt = "%-12.1f")
{
    std::printf(fmt, v);
}

inline void
endRow()
{
    std::printf("\n");
}

/** Geometric/arithmetic mean helper for the MEAN column. */
inline double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

} // namespace neo::bench

#endif // NEO_BENCH_BENCH_COMMON_H
