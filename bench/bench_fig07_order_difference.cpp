/**
 * @file
 * Figure 7: per-tile sort-order displacement between consecutive frames at
 * the 90th/95th/99th percentile, for the six scenes.
 *
 * Expected shape: tiny displacements — the paper's worst 99th-percentile
 * shift is 31 positions, negligible against tile tables of thousands.
 */

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "core/gaussian_table.h"
#include "gs/pipeline.h"
#include "scene/trajectory.h"

using namespace neo;
using namespace neo::bench;

int
main()
{
    banner("Figure 7 - temporal similarity of sort order per tile",
           "order displacement percentiles, consecutive frames",
           "99th percentile <= ~31 positions in all scenes");

    const int frames = benchFrameCount(8);
    const double scale = benchSceneScale();

    cell("Scene");
    cell("p90");
    cell("p95");
    cell("p99");
    cell("p99/len%");
    endRow();

    for (const auto &name : mainScenes()) {
        ScenePreset preset = presetByName(name);
        GaussianScene scene = buildScene(preset, scale);
        Trajectory traj(preset.trajectory, scene);

        std::vector<double> displacements;
        std::vector<double> relative; // displacement / table length
        std::vector<std::vector<TileEntry>> prev;
        for (int f = 0; f < frames; ++f) {
            Camera cam = traj.cameraAt(f, kResQHD);
            BinnedFrame frame = binFrame(scene, cam, 16);
            for (auto &tile : frame.tiles)
                std::sort(tile.begin(), tile.end(), entryDepthLess);
            if (f > 0) {
                for (size_t t = 0; t < frame.tiles.size(); ++t) {
                    if (t >= prev.size() || prev[t].size() < 16)
                        continue;
                    auto d = orderDisplacements(prev[t], frame.tiles[t]);
                    double len = static_cast<double>(prev[t].size());
                    for (double v : d)
                        relative.push_back(v / len);
                    displacements.insert(displacements.end(), d.begin(),
                                         d.end());
                }
            }
            prev = std::move(frame.tiles);
        }

        cell(name.c_str());
        cellf(percentile(displacements, 90.0));
        cellf(percentile(displacements, 95.0));
        cellf(percentile(displacements, 99.0));
        cellf(100.0 * percentile(relative, 99.0), "%-12.2f");
        endRow();
    }
    std::printf("\n(p99/len%% is the 99th-percentile displacement relative "
                "to the tile table length — the 'negligible deviation' "
                "the paper argues for)\n");
    return 0;
}
