# Shared warning/optimisation flags for neo's own targets, applied via the
# neo::compile_options interface target so third-party code (GoogleTest)
# never inherits -Werror.

add_library(neo_compile_options INTERFACE)
add_library(neo::compile_options ALIAS neo_compile_options)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(neo_compile_options INTERFACE
        -Wall -Wextra)
    if(NEO_WERROR)
        target_compile_options(neo_compile_options INTERFACE -Werror)
    endif()
elseif(MSVC)
    target_compile_options(neo_compile_options INTERFACE /W4)
    if(NEO_WERROR)
        target_compile_options(neo_compile_options INTERFACE /WX)
    endif()
endif()

# Convenience wrapper: declare one static library per src/ module with the
# canonical include path (repo-root/src) and the shared warning flags.
function(neo_add_module name)
    cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
    add_library(${name} STATIC ${ARG_SOURCES})
    add_library(neo::${name} ALIAS ${name})
    target_include_directories(${name} PUBLIC "${PROJECT_SOURCE_DIR}/src")
    target_link_libraries(${name}
        PUBLIC ${ARG_DEPS}
        PRIVATE neo::compile_options)
endfunction()
