#!/usr/bin/env bash
# Tier-1 verification, exactly what CI runs:
#   configure with -Werror on neo's own sources, build everything
#   (libraries, all test/bench/example targets), run ctest.
# The ctest log is left at $BUILD_DIR/Testing/Temporary/LastTest.log.
#
# Knobs:
#   BUILD_DIR     build directory (default: build)
#   BUILD_TYPE    explicit CMAKE_BUILD_TYPE, e.g. Release for the
#                 -O3 -DNDEBUG job (default: project default, Release)
#   NEO_CI_BENCH  when 1, run the thread-scaling bench after the tests as
#                 a NON-GATING smoke step, writing BENCH_PR2.json for
#                 artifact upload (a bench failure does not fail CI)
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
BUILD_TYPE="${BUILD_TYPE:-}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DNEO_WERROR=ON \
    ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [[ "${NEO_CI_BENCH:-0}" == "1" ]]; then
    echo "ci.sh: running thread-scaling bench (non-gating smoke)"
    if ! bench/run_benches.sh "$BUILD_DIR" BENCH_PR2.json; then
        echo "ci.sh: WARNING scaling bench failed (non-gating)" >&2
    fi
fi

echo "ci.sh: all green (log: $BUILD_DIR/Testing/Temporary/LastTest.log)"
