#!/usr/bin/env bash
# Tier-1 verification, exactly what CI runs:
#   configure with -Werror on neo's own sources, build everything
#   (libraries, all test/bench/example targets), run ctest.
# The ctest log is left at $BUILD_DIR/Testing/Temporary/LastTest.log.
#
# Knobs:
#   BUILD_DIR     build directory (default: build)
#   BUILD_TYPE    explicit CMAKE_BUILD_TYPE, e.g. Release for the
#                 -O3 -DNDEBUG job (default: project default, Release)
#   NEO_CI_BENCH  when 1, run the thread-scaling bench after the tests,
#                 writing $NEO_BENCH_JSON for artifact upload. A bench
#                 *crash* is non-gating, but when the JSON is produced and
#                 the previous trajectory point ($NEO_BENCH_BASELINE) is
#                 checked in, bench/diff_bench.sh gates the job: >10%
#                 ms/frame or raster_ms regression at threads=1 fails CI.
#                 The rasterizer auto-vectorization smoke check
#                 (bench/check_vectorization.sh) also runs; it gates on a
#                 vectorization regression and skips on non-GCC. After the
#                 trajectory point, one NEO_INTEGRITY=check sweep is
#                 recorded (…_integrity.json) and gated against the off
#                 point: >10% check-mode overhead at threads=1 fails.
#   NEO_BENCH_JSON      output trajectory point (default: BENCH_PR7.json)
#   NEO_BENCH_BASELINE  previous trajectory point (default: BENCH_PR6.json)
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
BUILD_TYPE="${BUILD_TYPE:-}"
JOBS="${JOBS:-$(nproc)}"
NEO_BENCH_JSON="${NEO_BENCH_JSON:-BENCH_PR7.json}"
NEO_BENCH_BASELINE="${NEO_BENCH_BASELINE:-BENCH_PR6.json}"

cmake -B "$BUILD_DIR" -S . -DNEO_WERROR=ON \
    ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# The integrity suite (bit-flip injection matrix, NEO_INTEGRITY modes) is
# part of the default ctest run above; re-running the label by itself makes
# a fault-detection regression unmissable in the CI log.
echo "ci.sh: re-running integrity-labelled tests"
ctest --test-dir "$BUILD_DIR" -L integrity --output-on-failure -j "$JOBS"

if [[ "${NEO_CI_BENCH:-0}" == "1" ]]; then
    echo "ci.sh: checking rasterizer auto-vectorization"
    rc=0
    bench/check_vectorization.sh || rc=$?
    # Fail-closed: 0 = pass, 2 = documented skip (non-GCC toolchain);
    # anything else — including a missing or broken script — gates.
    if [[ "$rc" != "0" && "$rc" != "2" ]]; then
        echo "ci.sh: FAIL — rasterizer vectorization check failed (rc=$rc)" >&2
        exit 1
    fi

    echo "ci.sh: running thread-scaling bench"
    if ! bench/run_benches.sh "$BUILD_DIR" "$NEO_BENCH_JSON"; then
        echo "ci.sh: WARNING scaling bench failed (non-gating)" >&2
    else
        if [[ -f "$NEO_BENCH_BASELINE" && "$NEO_BENCH_BASELINE" != "$NEO_BENCH_JSON" ]]; then
            echo "ci.sh: gating on perf regression vs $NEO_BENCH_BASELINE"
            bench/diff_bench.sh "$NEO_BENCH_BASELINE" "$NEO_BENCH_JSON"
        fi

        # One check-mode point alongside the trajectory point: its JSON is
        # an artifact, and diff_bench.sh gates the *fenced* sweep against
        # the integrity-off point just recorded on this same machine —
        # check-mode overhead above 10% ms/frame at threads=1 fails CI.
        NEO_INTEGRITY_JSON="${NEO_BENCH_JSON%.json}_integrity.json"
        echo "ci.sh: running check-mode integrity bench point"
        if ! NEO_BENCH_INTEGRITY=check NEO_BENCH_PR="${NEO_BENCH_PR:-7}" \
             bench/run_benches.sh "$BUILD_DIR" "$NEO_INTEGRITY_JSON"; then
            echo "ci.sh: WARNING integrity bench failed (non-gating)" >&2
        else
            echo "ci.sh: gating check-mode overhead vs $NEO_BENCH_JSON"
            bench/diff_bench.sh "$NEO_BENCH_JSON" "$NEO_INTEGRITY_JSON"
        fi
    fi
fi

echo "ci.sh: all green (log: $BUILD_DIR/Testing/Temporary/LastTest.log)"
