#!/usr/bin/env bash
# Tier-1 verification, exactly what CI runs:
#   configure with -Werror on neo's own sources, build everything
#   (libraries, all test/bench/example targets), run ctest.
# The ctest log is left at build/Testing/Temporary/LastTest.log for upload.
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DNEO_WERROR=ON "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "ci.sh: all green (log: $BUILD_DIR/Testing/Temporary/LastTest.log)"
