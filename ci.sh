#!/usr/bin/env bash
# Tier-1 verification, exactly what CI runs:
#   configure with -Werror on neo's own sources, build everything
#   (libraries, all test/bench/example targets), run ctest.
# The ctest log is left at $BUILD_DIR/Testing/Temporary/LastTest.log.
#
# Knobs:
#   BUILD_DIR     build directory (default: build)
#   BUILD_TYPE    explicit CMAKE_BUILD_TYPE, e.g. Release for the
#                 -O3 -DNDEBUG job (default: project default, Release)
#   NEO_CI_BENCH  when 1, run the thread-scaling bench after the tests,
#                 writing $NEO_BENCH_JSON for artifact upload. A bench
#                 *crash* is non-gating, but when the JSON is produced and
#                 the previous trajectory point ($NEO_BENCH_BASELINE) is
#                 checked in, bench/diff_bench.sh gates the job: >10%
#                 ms/frame or raster_ms regression at threads=1 fails CI.
#                 The rasterizer auto-vectorization smoke check
#                 (bench/check_vectorization.sh) also runs; it gates on a
#                 vectorization regression and skips on non-GCC. After the
#                 trajectory point, one NEO_INTEGRITY=check sweep is
#                 recorded (…_integrity.json) and gated against the off
#                 point: >10% check-mode overhead at threads=1 fails.
#                 After the scaling point, the multi-session serving
#                 bench ($NEO_BENCH_SERVER_JSON) runs with its in-bench
#                 isolation contract (delivered hashes vs solo runs), and
#                 its 1-session/threads=1 point is gated against the
#                 scaling point's threads=1 ms/frame: >10% serving-layer
#                 overhead fails CI. The sweep also records the socket
#                 front end's loopback overhead (--net, "net_points" in
#                 the same JSON — informational, not gated) and the
#                 durable-mode pair (--checkpoint, "durable_points"):
#                 checkpoint + write-ahead journal overhead at threads=1
#                 is gated at <=10% over the plain run in the same file.
#   NEO_CI_TSAN   when 1, build a second tree with -DNEO_SANITIZE=thread
#                 and run the server-, net- and durability-labelled tests
#                 (the concurrent session drivers, the socket front end's
#                 loopback chaos suite, and the crash-recovery suites)
#                 under ThreadSanitizer.
#   NEO_BENCH_JSON        output trajectory point
#                         (default: BENCH_PR10_scaling.json)
#   NEO_BENCH_BASELINE    previous trajectory point
#                         (default: BENCH_PR9_scaling.json)
#   NEO_BENCH_SERVER_JSON serving-layer sweep output (default: BENCH_PR10.json)
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
BUILD_TYPE="${BUILD_TYPE:-}"
JOBS="${JOBS:-$(nproc)}"
NEO_BENCH_JSON="${NEO_BENCH_JSON:-BENCH_PR10_scaling.json}"
NEO_BENCH_BASELINE="${NEO_BENCH_BASELINE:-BENCH_PR9_scaling.json}"
NEO_BENCH_SERVER_JSON="${NEO_BENCH_SERVER_JSON:-BENCH_PR10.json}"

cmake -B "$BUILD_DIR" -S . -DNEO_WERROR=ON \
    ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# The integrity suite (bit-flip injection matrix, NEO_INTEGRITY modes) is
# part of the default ctest run above; re-running the label by itself makes
# a fault-detection regression unmissable in the CI log.
echo "ci.sh: re-running integrity-labelled tests"
ctest --test-dir "$BUILD_DIR" -L integrity --output-on-failure -j "$JOBS"

# Same treatment for the multi-session serving layer: the label collects
# the admission/degradation/quarantine suites plus the randomized
# fault-isolation soak.
echo "ci.sh: re-running server-labelled tests"
ctest --test-dir "$BUILD_DIR" -L server --output-on-failure -j "$JOBS"

# The socket front end: wire-codec isolation tests (malformed-frame
# taxonomy, torn delivery, fuzz) plus the loopback chaos suite (network
# faults on victim connections vs bit-identical healthy siblings).
echo "ci.sh: re-running net-labelled tests"
ctest --test-dir "$BUILD_DIR" -L net --output-on-failure -j "$JOBS"

# Durable sessions: snapshot/journal codec taxonomy, crash-injected
# checkpoint writes, in-process kill/recover bit-identity, and the
# real-binary SIGKILL-and-resume attestation.
echo "ci.sh: re-running durability-labelled tests"
ctest --test-dir "$BUILD_DIR" -L durability --output-on-failure -j "$JOBS"

# Loopback end-to-end smoke over the real binaries: neo_serve_net binds
# an ephemeral port and prints the solo reference hashes; the client
# drives the same trajectory over the framed protocol and requests a
# graceful drain. The served hashes must be bit-identical to the solo
# render, and the server must exit 0 (drain completed).
echo "ci.sh: loopback socket front-end smoke"
NET_LOG="$BUILD_DIR/neo_serve_net_smoke.log"
"$BUILD_DIR/examples/neo_serve_net" --print-solo 3 >"$NET_LOG" &
NET_PID=$!
NET_PORT=""
for _ in $(seq 1 100); do
    NET_PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$NET_LOG")"
    [[ -n "$NET_PORT" ]] && break
    kill -0 "$NET_PID" 2>/dev/null || break
    sleep 0.1
done
if [[ -z "$NET_PORT" ]]; then
    echo "ci.sh: FAIL — socket front end did not report a port" >&2
    kill "$NET_PID" 2>/dev/null || true
    cat "$NET_LOG" >&2 || true
    exit 1
fi
CLIENT_OUT="$("$BUILD_DIR/examples/neo_serve_net_client" \
    --port "$NET_PORT" --frames 3 --shutdown)"
if ! wait "$NET_PID"; then
    echo "ci.sh: FAIL — socket front end exited without a clean drain" >&2
    cat "$NET_LOG" >&2 || true
    exit 1
fi
SOLO_HASHES="$(sed -n 's/^solo [0-9]* //p' "$NET_LOG")"
WIRE_HASHES="$(sed -n 's/^frame [0-9]* //p' <<<"$CLIENT_OUT")"
if [[ -z "$SOLO_HASHES" || "$SOLO_HASHES" != "$WIRE_HASHES" ]]; then
    echo "ci.sh: FAIL — hashes served over the wire differ from the" \
         "solo render" >&2
    echo "--- server log:" >&2
    cat "$NET_LOG" >&2 || true
    echo "--- client output:" >&2
    printf '%s\n' "$CLIENT_OUT" >&2
    exit 1
fi
if ! grep -q "shutdown acked" <<<"$CLIENT_OUT"; then
    echo "ci.sh: FAIL — client shutdown request was not acked" >&2
    exit 1
fi
echo "ci.sh: socket front-end smoke OK (3 frames bit-identical over" \
     "the wire, drained cleanly)"

# Kill-9-and-recover smoke over the real binaries: a durable server is
# SIGKILLed mid-stream (no drain, no warning), restarted on the same
# state directory, and the resumed session's served hashes must equal
# the uninterrupted solo reference — the headline durability contract,
# exercised end to end outside the test harness.
echo "ci.sh: kill-9-and-recover durability smoke"
DUR_DIR="$BUILD_DIR/neo_serve_net_durable_state"
DUR_LOG="$BUILD_DIR/neo_serve_net_durable.log"
rm -rf "$DUR_DIR"
"$BUILD_DIR/examples/neo_serve_net" --print-solo 6 --state-dir "$DUR_DIR" \
    >"$DUR_LOG" &
DUR_PID=$!
DUR_PORT=""
for _ in $(seq 1 100); do
    DUR_PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$DUR_LOG")"
    [[ -n "$DUR_PORT" ]] && break
    kill -0 "$DUR_PID" 2>/dev/null || break
    sleep 0.1
done
if [[ -z "$DUR_PORT" ]]; then
    echo "ci.sh: FAIL — durable server did not report a port" >&2
    kill "$DUR_PID" 2>/dev/null || true
    cat "$DUR_LOG" >&2 || true
    exit 1
fi
# First client: three frames land (journaled) and the session is left
# open (--abandon, no Close record), then the server is SIGKILLed — no
# drain, no final snapshot.
"$BUILD_DIR/examples/neo_serve_net_client" --port "$DUR_PORT" --frames 3 \
    --abandon >/dev/null
kill -9 "$DUR_PID"
wait "$DUR_PID" 2>/dev/null || true
# Second incarnation on the same state directory must recover...
DUR_LOG2="$BUILD_DIR/neo_serve_net_durable2.log"
"$BUILD_DIR/examples/neo_serve_net" --state-dir "$DUR_DIR" >"$DUR_LOG2" &
DUR_PID=$!
DUR_PORT=""
for _ in $(seq 1 100); do
    DUR_PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$DUR_LOG2")"
    [[ -n "$DUR_PORT" ]] && break
    kill -0 "$DUR_PID" 2>/dev/null || break
    sleep 0.1
done
if [[ -z "$DUR_PORT" ]]; then
    echo "ci.sh: FAIL — restarted durable server did not report a port" >&2
    kill "$DUR_PID" 2>/dev/null || true
    cat "$DUR_LOG2" >&2 || true
    exit 1
fi
if ! grep -q '^recovered ' "$DUR_LOG2"; then
    echo "ci.sh: FAIL — restarted durable server printed no recovery" \
         "attestation" >&2
    kill "$DUR_PID" 2>/dev/null || true
    cat "$DUR_LOG2" >&2 || true
    exit 1
fi
# ...and the resumed session continues bit-identically to the solo
# reference incarnation A printed for the full 6-frame stream.
DUR_CLIENT_OUT="$("$BUILD_DIR/examples/neo_serve_net_client" \
    --port "$DUR_PORT" --resume 0 --start-frame 3 --frames 3 --shutdown)"
if ! wait "$DUR_PID"; then
    echo "ci.sh: FAIL — restarted durable server exited without a clean" \
         "drain" >&2
    cat "$DUR_LOG2" >&2 || true
    exit 1
fi
DUR_SOLO="$(sed -n 's/^solo [345] //p' "$DUR_LOG")"
DUR_WIRE="$(sed -n 's/^frame [345] //p' <<<"$DUR_CLIENT_OUT")"
if [[ -z "$DUR_SOLO" || "$DUR_SOLO" != "$DUR_WIRE" ]]; then
    echo "ci.sh: FAIL — hashes served after kill-9 recovery differ from" \
         "the uninterrupted solo render" >&2
    echo "--- incarnation A log:" >&2
    cat "$DUR_LOG" >&2 || true
    echo "--- incarnation B log:" >&2
    cat "$DUR_LOG2" >&2 || true
    echo "--- resumed client output:" >&2
    printf '%s\n' "$DUR_CLIENT_OUT" >&2
    exit 1
fi
if ! grep -q "session 0 resumed" <<<"$DUR_CLIENT_OUT"; then
    echo "ci.sh: FAIL — client did not resume the recovered session" >&2
    exit 1
fi
rm -rf "$DUR_DIR"
echo "ci.sh: kill-9-and-recover smoke OK (resumed frames bit-identical" \
     "to the uninterrupted solo render)"

if [[ "${NEO_CI_TSAN:-0}" == "1" ]]; then
    # The serving layer's concurrency contract (submit()/stats() vs one
    # driver per session, shared pool dispatch from N drivers) is
    # exactly the kind of thing TSAN catches and unit asserts miss. The
    # net label rides along: its chaos suite runs the poll loop in a
    # dedicated thread against blocking clients, the same
    # loop-thread-vs-driver shape the front end ships with.
    TSAN_DIR="${TSAN_DIR:-build-tsan}"
    echo "ci.sh: building with -fsanitize=thread into $TSAN_DIR"
    cmake -B "$TSAN_DIR" -S . -DNEO_WERROR=ON -DNEO_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$TSAN_DIR" -j "$JOBS"
    echo "ci.sh: running server-, net- and durability-labelled tests" \
         "under TSAN"
    ctest --test-dir "$TSAN_DIR" -L 'server|net|durability' \
        --output-on-failure -j "$JOBS"
fi

if [[ "${NEO_CI_BENCH:-0}" == "1" ]]; then
    echo "ci.sh: checking rasterizer auto-vectorization"
    rc=0
    bench/check_vectorization.sh || rc=$?
    # Fail-closed: 0 = pass, 2 = documented skip (non-GCC toolchain);
    # anything else — including a missing or broken script — gates.
    if [[ "$rc" != "0" && "$rc" != "2" ]]; then
        echo "ci.sh: FAIL — rasterizer vectorization check failed (rc=$rc)" >&2
        exit 1
    fi

    echo "ci.sh: running thread-scaling bench"
    if ! bench/run_benches.sh "$BUILD_DIR" "$NEO_BENCH_JSON"; then
        echo "ci.sh: WARNING scaling bench failed (non-gating)" >&2
    else
        if [[ -f "$NEO_BENCH_BASELINE" && "$NEO_BENCH_BASELINE" != "$NEO_BENCH_JSON" ]]; then
            echo "ci.sh: gating on perf regression vs $NEO_BENCH_BASELINE"
            bench/diff_bench.sh "$NEO_BENCH_BASELINE" "$NEO_BENCH_JSON"
        fi

        # One check-mode point alongside the trajectory point: its JSON is
        # an artifact, and diff_bench.sh gates the *fenced* sweep against
        # the integrity-off point just recorded on this same machine —
        # check-mode overhead above 10% ms/frame at threads=1 fails CI.
        NEO_INTEGRITY_JSON="${NEO_BENCH_JSON%.json}_integrity.json"
        echo "ci.sh: running check-mode integrity bench point"
        if ! NEO_BENCH_INTEGRITY=check NEO_BENCH_PR="${NEO_BENCH_PR:-10}" \
             bench/run_benches.sh "$BUILD_DIR" "$NEO_INTEGRITY_JSON"; then
            echo "ci.sh: WARNING integrity bench failed (non-gating)" >&2
        else
            echo "ci.sh: gating check-mode overhead vs $NEO_BENCH_JSON"
            bench/diff_bench.sh "$NEO_BENCH_JSON" "$NEO_INTEGRITY_JSON"
        fi

        # The serving-layer sweep: bench_server fails by itself when any
        # delivered hash differs from the solo run (isolation contract),
        # and diff_bench.sh gates its 1-session/threads=1 point against
        # the scaling point — the serving layer (queues, QoS, watchdogs,
        # hashing) must stay within 10% of the bare staged render loop.
        # --net adds the loopback socket sweep: the same workload over
        # the framed wire protocol, with the per-request overhead
        # recorded in a "net_points" array the gate ignores. --checkpoint
        # adds the durable-mode pair, whose threads=1 overhead
        # diff_bench.sh gates at <=10% against the plain run in the same
        # file.
        echo "ci.sh: running multi-session serving bench"
        if ! "$BUILD_DIR/bench/bench_server" --json "$NEO_BENCH_SERVER_JSON" \
             --pr "${NEO_BENCH_PR:-10}" --net --checkpoint; then
            echo "ci.sh: FAIL — serving bench failed (isolation contract" \
                 "or crash)" >&2
            exit 1
        fi
        echo "ci.sh: gating serving-layer overhead vs $NEO_BENCH_JSON"
        bench/diff_bench.sh "$NEO_BENCH_JSON" "$NEO_BENCH_SERVER_JSON"
    fi
fi

echo "ci.sh: all green (log: $BUILD_DIR/Testing/Temporary/LastTest.log)"
