#!/usr/bin/env bash
# Tier-1 verification, exactly what CI runs:
#   configure with -Werror on neo's own sources, build everything
#   (libraries, all test/bench/example targets), run ctest.
# The ctest log is left at $BUILD_DIR/Testing/Temporary/LastTest.log.
#
# Knobs:
#   BUILD_DIR     build directory (default: build)
#   BUILD_TYPE    explicit CMAKE_BUILD_TYPE, e.g. Release for the
#                 -O3 -DNDEBUG job (default: project default, Release)
#   NEO_CI_BENCH  when 1, run the thread-scaling bench after the tests,
#                 writing $NEO_BENCH_JSON for artifact upload. A bench
#                 *crash* is non-gating, but when the JSON is produced and
#                 the previous trajectory point ($NEO_BENCH_BASELINE) is
#                 checked in, bench/diff_bench.sh gates the job: >10%
#                 ms/frame or raster_ms regression at threads=1 fails CI.
#                 The rasterizer auto-vectorization smoke check
#                 (bench/check_vectorization.sh) also runs; it gates on a
#                 vectorization regression and skips on non-GCC. After the
#                 trajectory point, one NEO_INTEGRITY=check sweep is
#                 recorded (…_integrity.json) and gated against the off
#                 point: >10% check-mode overhead at threads=1 fails.
#                 After the scaling point, the multi-session serving
#                 bench ($NEO_BENCH_SERVER_JSON) runs with its in-bench
#                 isolation contract (delivered hashes vs solo runs), and
#                 its 1-session/threads=1 point is gated against the
#                 scaling point's threads=1 ms/frame: >10% serving-layer
#                 overhead fails CI.
#   NEO_CI_TSAN   when 1, build a second tree with -DNEO_SANITIZE=thread
#                 and run the server-labelled tests (the concurrent
#                 session drivers) under ThreadSanitizer.
#   NEO_BENCH_JSON        output trajectory point
#                         (default: BENCH_PR8_scaling.json)
#   NEO_BENCH_BASELINE    previous trajectory point (default: BENCH_PR7.json)
#   NEO_BENCH_SERVER_JSON serving-layer sweep output (default: BENCH_PR8.json)
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
BUILD_TYPE="${BUILD_TYPE:-}"
JOBS="${JOBS:-$(nproc)}"
NEO_BENCH_JSON="${NEO_BENCH_JSON:-BENCH_PR8_scaling.json}"
NEO_BENCH_BASELINE="${NEO_BENCH_BASELINE:-BENCH_PR7.json}"
NEO_BENCH_SERVER_JSON="${NEO_BENCH_SERVER_JSON:-BENCH_PR8.json}"

cmake -B "$BUILD_DIR" -S . -DNEO_WERROR=ON \
    ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# The integrity suite (bit-flip injection matrix, NEO_INTEGRITY modes) is
# part of the default ctest run above; re-running the label by itself makes
# a fault-detection regression unmissable in the CI log.
echo "ci.sh: re-running integrity-labelled tests"
ctest --test-dir "$BUILD_DIR" -L integrity --output-on-failure -j "$JOBS"

# Same treatment for the multi-session serving layer: the label collects
# the admission/degradation/quarantine suites plus the randomized
# fault-isolation soak.
echo "ci.sh: re-running server-labelled tests"
ctest --test-dir "$BUILD_DIR" -L server --output-on-failure -j "$JOBS"

if [[ "${NEO_CI_TSAN:-0}" == "1" ]]; then
    # The serving layer's concurrency contract (submit()/stats() vs one
    # driver per session, shared pool dispatch from N drivers) is
    # exactly the kind of thing TSAN catches and unit asserts miss.
    TSAN_DIR="${TSAN_DIR:-build-tsan}"
    echo "ci.sh: building with -fsanitize=thread into $TSAN_DIR"
    cmake -B "$TSAN_DIR" -S . -DNEO_WERROR=ON -DNEO_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$TSAN_DIR" -j "$JOBS"
    echo "ci.sh: running server-labelled tests under TSAN"
    ctest --test-dir "$TSAN_DIR" -L server --output-on-failure -j "$JOBS"
fi

if [[ "${NEO_CI_BENCH:-0}" == "1" ]]; then
    echo "ci.sh: checking rasterizer auto-vectorization"
    rc=0
    bench/check_vectorization.sh || rc=$?
    # Fail-closed: 0 = pass, 2 = documented skip (non-GCC toolchain);
    # anything else — including a missing or broken script — gates.
    if [[ "$rc" != "0" && "$rc" != "2" ]]; then
        echo "ci.sh: FAIL — rasterizer vectorization check failed (rc=$rc)" >&2
        exit 1
    fi

    echo "ci.sh: running thread-scaling bench"
    if ! bench/run_benches.sh "$BUILD_DIR" "$NEO_BENCH_JSON"; then
        echo "ci.sh: WARNING scaling bench failed (non-gating)" >&2
    else
        if [[ -f "$NEO_BENCH_BASELINE" && "$NEO_BENCH_BASELINE" != "$NEO_BENCH_JSON" ]]; then
            echo "ci.sh: gating on perf regression vs $NEO_BENCH_BASELINE"
            bench/diff_bench.sh "$NEO_BENCH_BASELINE" "$NEO_BENCH_JSON"
        fi

        # One check-mode point alongside the trajectory point: its JSON is
        # an artifact, and diff_bench.sh gates the *fenced* sweep against
        # the integrity-off point just recorded on this same machine —
        # check-mode overhead above 10% ms/frame at threads=1 fails CI.
        NEO_INTEGRITY_JSON="${NEO_BENCH_JSON%.json}_integrity.json"
        echo "ci.sh: running check-mode integrity bench point"
        if ! NEO_BENCH_INTEGRITY=check NEO_BENCH_PR="${NEO_BENCH_PR:-8}" \
             bench/run_benches.sh "$BUILD_DIR" "$NEO_INTEGRITY_JSON"; then
            echo "ci.sh: WARNING integrity bench failed (non-gating)" >&2
        else
            echo "ci.sh: gating check-mode overhead vs $NEO_BENCH_JSON"
            bench/diff_bench.sh "$NEO_BENCH_JSON" "$NEO_INTEGRITY_JSON"
        fi

        # The serving-layer sweep: bench_server fails by itself when any
        # delivered hash differs from the solo run (isolation contract),
        # and diff_bench.sh gates its 1-session/threads=1 point against
        # the scaling point — the serving layer (queues, QoS, watchdogs,
        # hashing) must stay within 10% of the bare staged render loop.
        echo "ci.sh: running multi-session serving bench"
        if ! "$BUILD_DIR/bench/bench_server" --json "$NEO_BENCH_SERVER_JSON" \
             --pr "${NEO_BENCH_PR:-8}"; then
            echo "ci.sh: FAIL — serving bench failed (isolation contract" \
                 "or crash)" >&2
            exit 1
        fi
        echo "ci.sh: gating serving-layer overhead vs $NEO_BENCH_JSON"
        bench/diff_bench.sh "$NEO_BENCH_JSON" "$NEO_BENCH_SERVER_JSON"
    fi
fi

echo "ci.sh: all green (log: $BUILD_DIR/Testing/Temporary/LastTest.log)"
