/**
 * @file
 * Unit tests for PSNR, SSIM and the LPIPS proxy: identity behaviour and
 * monotonicity in corruption strength (the property Table 2 relies on).
 */

#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/image.h"
#include "common/rng.h"
#include "metrics/lpips_proxy.h"
#include "metrics/psnr.h"
#include "metrics/ssim.h"

namespace neo
{
namespace
{

Image
randomImage(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    Image img(w, h);
    for (auto &p : img.pixels())
        p = {rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
             rng.uniform(0.0f, 1.0f)};
    return img;
}

Image
addNoise(const Image &src, float amplitude, uint64_t seed)
{
    Rng rng(seed);
    Image out = src;
    for (auto &p : out.pixels()) {
        p.x = clamp(p.x + rng.uniform(-amplitude, amplitude), 0.0f, 1.0f);
        p.y = clamp(p.y + rng.uniform(-amplitude, amplitude), 0.0f, 1.0f);
        p.z = clamp(p.z + rng.uniform(-amplitude, amplitude), 0.0f, 1.0f);
    }
    return out;
}

TEST(PsnrTest, IdenticalImagesHitCap)
{
    Image img = randomImage(32, 32, 1);
    EXPECT_DOUBLE_EQ(psnr(img, img), 99.0);
    EXPECT_DOUBLE_EQ(psnr(img, img, 50.0), 50.0);
}

TEST(PsnrTest, KnownMseGivesKnownPsnr)
{
    Image a(16, 16, {0.0f, 0.0f, 0.0f});
    Image b(16, 16, {0.1f, 0.1f, 0.1f});
    // MSE = 0.01 -> PSNR = 20 dB.
    EXPECT_NEAR(meanSquaredError(a, b), 0.01, 1e-9);
    EXPECT_NEAR(psnr(a, b), 20.0, 1e-6);
}

TEST(PsnrTest, MonotoneInNoise)
{
    Image ref = randomImage(64, 64, 2);
    double prev = psnr(ref, ref);
    for (float amp : {0.02f, 0.05f, 0.1f, 0.2f}) {
        double v = psnr(ref, addNoise(ref, amp, 3));
        EXPECT_LT(v, prev) << "amplitude " << amp;
        prev = v;
    }
}

TEST(PsnrTest, SizeMismatchPanics)
{
    Image a(4, 4), b(8, 8);
    EXPECT_DEATH({ meanSquaredError(a, b); }, "size mismatch");
}

TEST(SsimTest, IdenticalIsOne)
{
    Image img = randomImage(64, 64, 4);
    EXPECT_NEAR(ssim(img, img), 1.0, 1e-9);
}

TEST(SsimTest, NoiseLowersSsim)
{
    Image ref = randomImage(64, 64, 5);
    double clean = ssim(ref, addNoise(ref, 0.05f, 6));
    double dirty = ssim(ref, addNoise(ref, 0.3f, 6));
    EXPECT_LT(dirty, clean);
    EXPECT_LT(clean, 1.0);
}

TEST(SsimTest, SymmetricInArguments)
{
    Image a = randomImage(32, 32, 7);
    Image b = addNoise(a, 0.1f, 8);
    EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-9);
}

TEST(LpipsProxyTest, IdenticalIsZero)
{
    Image img = randomImage(64, 64, 9);
    EXPECT_NEAR(lpipsProxy(img, img), 0.0, 1e-9);
}

TEST(LpipsProxyTest, MonotoneInNoise)
{
    Image ref = randomImage(64, 64, 10);
    double prev = 0.0;
    for (float amp : {0.05f, 0.15f, 0.4f}) {
        double v = lpipsProxy(ref, addNoise(ref, amp, 11));
        EXPECT_GT(v, prev) << "amplitude " << amp;
        prev = v;
    }
}

TEST(LpipsProxyTest, StructuralCorruptionScoresWorseThanUniformShift)
{
    // A small uniform brightness shift is perceptually mild; scrambling
    // blocks of the image is severe. The proxy must rank them correctly.
    Image ref = randomImage(64, 64, 12);
    Image shifted = ref;
    for (auto &p : shifted.pixels()) {
        p.x = clamp(p.x + 0.03f, 0.0f, 1.0f);
        p.y = clamp(p.y + 0.03f, 0.0f, 1.0f);
        p.z = clamp(p.z + 0.03f, 0.0f, 1.0f);
    }
    Image scrambled = ref;
    // Swap the left and right halves.
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 32; ++x)
            std::swap(scrambled.at(x, y), scrambled.at(x + 32, y));
    EXPECT_LT(lpipsProxy(ref, shifted), lpipsProxy(ref, scrambled));
}

TEST(LpipsProxyTest, BoundedForUnrelatedInputs)
{
    // Two unrelated noise images are the worst realistic case; the proxy
    // must stay finite and well above the rendering-artifact regime.
    Image ref = randomImage(64, 64, 13);
    Image other = randomImage(64, 64, 14);
    double v = lpipsProxy(ref, other);
    EXPECT_GT(v, 0.3);
    EXPECT_LT(v, 2.5);
}

} // namespace
} // namespace neo
