/**
 * @file
 * Unit tests for the linear-algebra toolkit.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"

namespace neo
{
namespace
{

TEST(Vec3Test, BasicArithmetic)
{
    Vec3 a{1.0f, 2.0f, 3.0f};
    Vec3 b{4.0f, -5.0f, 6.0f};
    Vec3 sum = a + b;
    EXPECT_FLOAT_EQ(sum.x, 5.0f);
    EXPECT_FLOAT_EQ(sum.y, -3.0f);
    EXPECT_FLOAT_EQ(sum.z, 9.0f);
    Vec3 diff = a - b;
    EXPECT_FLOAT_EQ(diff.x, -3.0f);
    EXPECT_FLOAT_EQ(diff.y, 7.0f);
    EXPECT_FLOAT_EQ(diff.z, -3.0f);
    EXPECT_FLOAT_EQ(a.dot(b), 4.0f - 10.0f + 18.0f);
}

TEST(Vec3Test, CrossProductIsOrthogonal)
{
    Vec3 a{1.0f, 2.0f, 3.0f};
    Vec3 b{-2.0f, 0.5f, 1.0f};
    Vec3 c = a.cross(b);
    EXPECT_NEAR(c.dot(a), 0.0f, 1e-5f);
    EXPECT_NEAR(c.dot(b), 0.0f, 1e-5f);
}

TEST(Vec3Test, NormalizedHasUnitLength)
{
    Vec3 v{3.0f, 4.0f, 12.0f};
    EXPECT_NEAR(v.normalized().norm(), 1.0f, 1e-6f);
}

TEST(Vec3Test, NormalizedZeroVectorIsZero)
{
    Vec3 z{0.0f, 0.0f, 0.0f};
    Vec3 n = z.normalized();
    EXPECT_FLOAT_EQ(n.x, 0.0f);
    EXPECT_FLOAT_EQ(n.y, 0.0f);
    EXPECT_FLOAT_EQ(n.z, 0.0f);
}

TEST(Mat3Test, IdentityMultiplication)
{
    Mat3 i = Mat3::identity();
    Vec3 v{1.0f, -2.0f, 3.0f};
    Vec3 r = i * v;
    EXPECT_FLOAT_EQ(r.x, v.x);
    EXPECT_FLOAT_EQ(r.y, v.y);
    EXPECT_FLOAT_EQ(r.z, v.z);
}

TEST(Mat3Test, InverseRoundTrip)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        Mat3 m;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                m(r, c) = rng.uniform(-2.0f, 2.0f);
        if (std::fabs(m.determinant()) < 1e-3f)
            continue;
        Mat3 prod = m * m.inverse();
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                EXPECT_NEAR(prod(r, c), r == c ? 1.0f : 0.0f, 1e-3f)
                    << "trial " << trial;
    }
}

TEST(Mat3Test, DeterminantOfDiagonal)
{
    Mat3 d = Mat3::diagonal(2.0f, 3.0f, 4.0f);
    EXPECT_NEAR(d.determinant(), 24.0f, 1e-5f);
}

TEST(Mat3Test, TransposeInvolution)
{
    Rng rng(5);
    Mat3 m;
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c)
            m(r, c) = rng.uniform(-1.0f, 1.0f);
    Mat3 tt = m.transposed().transposed();
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c)
            EXPECT_FLOAT_EQ(tt(r, c), m(r, c));
}

TEST(Mat4Test, TransformPointTranslation)
{
    Mat4 m = Mat4::identity();
    m(0, 3) = 1.0f;
    m(1, 3) = -2.0f;
    m(2, 3) = 3.0f;
    Vec3 p = m.transformPoint({0.0f, 0.0f, 0.0f});
    EXPECT_FLOAT_EQ(p.x, 1.0f);
    EXPECT_FLOAT_EQ(p.y, -2.0f);
    EXPECT_FLOAT_EQ(p.z, 3.0f);
}

TEST(Mat4Test, MatrixProductAssociatesWithVector)
{
    Rng rng(9);
    Mat4 a = Mat4::identity();
    Mat4 b = Mat4::identity();
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c) {
            a(r, c) = rng.uniform(-1.0f, 1.0f);
            b(r, c) = rng.uniform(-1.0f, 1.0f);
        }
    Vec4 v{0.3f, -0.7f, 1.1f, 1.0f};
    Vec4 lhs = (a * b) * v;
    Vec4 rhs = a * (b * v);
    EXPECT_NEAR(lhs.x, rhs.x, 1e-4f);
    EXPECT_NEAR(lhs.y, rhs.y, 1e-4f);
    EXPECT_NEAR(lhs.z, rhs.z, 1e-4f);
    EXPECT_NEAR(lhs.w, rhs.w, 1e-4f);
}

TEST(QuatTest, IdentityIsNoRotation)
{
    Quat q;
    Mat3 r = q.toMatrix();
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(r(i, j), i == j ? 1.0f : 0.0f, 1e-6f);
}

TEST(QuatTest, AxisAngleRotatesAsExpected)
{
    // 90 degrees about +z maps +x to +y.
    Quat q = Quat::fromAxisAngle({0.0f, 0.0f, 1.0f}, deg2rad(90.0f));
    Vec3 r = q.toMatrix() * Vec3{1.0f, 0.0f, 0.0f};
    EXPECT_NEAR(r.x, 0.0f, 1e-5f);
    EXPECT_NEAR(r.y, 1.0f, 1e-5f);
    EXPECT_NEAR(r.z, 0.0f, 1e-5f);
}

TEST(QuatTest, RotationMatrixIsOrthonormal)
{
    Rng rng(12);
    for (int trial = 0; trial < 20; ++trial) {
        Mat3 r = rng.rotation().toMatrix();
        Mat3 rrt = r * r.transposed();
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                EXPECT_NEAR(rrt(i, j), i == j ? 1.0f : 0.0f, 1e-4f);
        EXPECT_NEAR(r.determinant(), 1.0f, 1e-4f);
    }
}

TEST(CovarianceTest, ScaleRotationCovarianceIsSymmetricPsd)
{
    Rng rng(21);
    for (int trial = 0; trial < 20; ++trial) {
        Vec3 scale{rng.uniform(0.01f, 1.0f), rng.uniform(0.01f, 1.0f),
                   rng.uniform(0.01f, 1.0f)};
        Mat3 cov = covarianceFromScaleRotation(scale, rng.rotation());
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                EXPECT_NEAR(cov(i, j), cov(j, i), 1e-5f);
        // PSD: x^T C x >= 0 for random x.
        for (int k = 0; k < 5; ++k) {
            Vec3 x = rng.onSphere();
            EXPECT_GE(x.dot(cov * x), -1e-6f);
        }
    }
}

TEST(CovarianceTest, IsotropicScaleGivesDiagonal)
{
    Mat3 cov = covarianceFromScaleRotation({0.5f, 0.5f, 0.5f},
                                           Rng(2).rotation());
    // R S S R^T with isotropic S = s^2 I regardless of R.
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(cov(i, j), i == j ? 0.25f : 0.0f, 1e-5f);
}

TEST(EigenTest, SymmetricEigenvalues2x2KnownCase)
{
    // [[2, 0], [0, 1]] has eigenvalues 2, 1.
    auto [mx, mn] = symmetricEigenvalues2x2(2.0f, 0.0f, 1.0f);
    EXPECT_NEAR(mx, 2.0f, 1e-6f);
    EXPECT_NEAR(mn, 1.0f, 1e-6f);
}

TEST(EigenTest, EigenvaluesMatchTraceAndDeterminant)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        float a = rng.uniform(0.1f, 4.0f);
        float c = rng.uniform(0.1f, 4.0f);
        float b = rng.uniform(-1.0f, 1.0f) * std::sqrt(a * c) * 0.9f;
        auto [mx, mn] = symmetricEigenvalues2x2(a, b, c);
        EXPECT_NEAR(mx + mn, a + c, 1e-3f);
        EXPECT_NEAR(mx * mn, a * c - b * b, 1e-2f);
        EXPECT_GE(mx, mn);
    }
}

TEST(UtilTest, ClampAndAngleConversions)
{
    EXPECT_EQ(clamp(5, 0, 3), 3);
    EXPECT_EQ(clamp(-1, 0, 3), 0);
    EXPECT_EQ(clamp(2, 0, 3), 2);
    EXPECT_NEAR(deg2rad(180.0f), kPi, 1e-6f);
    EXPECT_NEAR(rad2deg(kPi / 2.0f), 90.0f, 1e-4f);
}

} // namespace
} // namespace neo
