/**
 * @file
 * Unit tests for the DRAM service-time model.
 */

#include <gtest/gtest.h>

#include "sim/dram.h"

namespace neo
{
namespace
{

TEST(DramTest, PresetsMatchPaperBandwidths)
{
    EXPECT_DOUBLE_EQ(lpddr4Edge().bandwidth_gbps, 51.2);
    EXPECT_DOUBLE_EQ(lpddr4Double().bandwidth_gbps, 102.4);
    EXPECT_DOUBLE_EQ(lpddr5Orin().bandwidth_gbps, 204.8);
}

TEST(DramTest, StreamTimeScalesLinearly)
{
    DramModel dram(lpddr4Edge());
    double t1 = dram.streamSeconds(1e9);
    double t2 = dram.streamSeconds(2e9);
    EXPECT_NEAR(t2 / t1, 2.0, 1e-6);
}

TEST(DramTest, StreamTimeMatchesEffectiveBandwidth)
{
    DramConfig cfg;
    cfg.bandwidth_gbps = 100.0;
    cfg.stream_efficiency = 0.8;
    DramModel dram(cfg);
    // 80 GB/s effective -> 1 GB takes 12.5 ms.
    EXPECT_NEAR(dram.streamSeconds(1e9), 0.0125, 1e-5);
}

TEST(DramTest, ZeroBytesIsFree)
{
    DramModel dram;
    EXPECT_DOUBLE_EQ(dram.streamSeconds(0.0), 0.0);
    EXPECT_DOUBLE_EQ(dram.randomSeconds(0.0, 64.0), 0.0);
}

TEST(DramTest, SmallTransferRoundsToBurst)
{
    DramConfig cfg;
    cfg.burst_bytes = 32.0;
    DramModel dram(cfg);
    // 1 byte costs a full burst.
    EXPECT_DOUBLE_EQ(dram.streamSeconds(1.0), dram.streamSeconds(32.0));
    EXPECT_GT(dram.streamSeconds(33.0), dram.streamSeconds(32.0));
}

TEST(DramTest, RandomAccessIsSlowerThanStreaming)
{
    DramModel dram(lpddr4Edge());
    double stream = dram.streamSeconds(1e6 * 8.0);
    double random = dram.randomSeconds(1e6, 8.0);
    EXPECT_GT(random, stream);
}

TEST(DramTest, RandomPenaltyIsConfigurable)
{
    DramConfig a, b;
    a.random_penalty = 2.0;
    b.random_penalty = 8.0;
    double ta = DramModel(a).randomSeconds(1000.0, 8.0);
    double tb = DramModel(b).randomSeconds(1000.0, 8.0);
    EXPECT_NEAR(tb / ta, 4.0, 1e-6);
}

TEST(DramTest, HigherBandwidthIsFaster)
{
    double slow = DramModel(lpddr4Edge()).streamSeconds(1e9);
    double fast = DramModel(lpddr4Double()).streamSeconds(1e9);
    EXPECT_NEAR(slow / fast, 2.0, 1e-6);
}

} // namespace
} // namespace neo
