/**
 * @file
 * Shared helpers for the test suite: tiny deterministic scenes, random
 * tile tables, and convenience cameras.
 */

#ifndef NEO_TESTS_TEST_UTIL_H
#define NEO_TESTS_TEST_UTIL_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gs/camera.h"
#include "gs/gaussian.h"
#include "gs/sh.h"
#include "gs/tiling.h"
#include "scene/synthetic.h"

namespace neo::test
{

/**
 * Wall-clock dilation factor for timing-sensitive tests (watchdog
 * floors, injected stalls). Sanitizer instrumentation slows every stage
 * by an order of magnitude, so thresholds that cleanly separate healthy
 * frames from injected stalls in a plain build collapse under TSAN —
 * scale both sides of the separation by this factor instead of
 * loosening the plain-build values.
 */
inline constexpr double
sanitizerTimeScale()
{
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    return 10.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
    return 10.0;
#else
    return 1.0;
#endif
#else
    return 1.0;
#endif
}

/** Small resolution used by functional tests (fast, tile-aligned). */
inline Resolution
smallRes()
{
    return {256, 192, "small"};
}

/** Camera at +z distance looking at the origin. */
inline Camera
frontCamera(float distance = 5.0f, Resolution res = smallRes())
{
    Camera cam(res, deg2rad(50.0f));
    cam.lookAt({0.0f, 0.0f, -distance}, {0.0f, 0.0f, 0.0f});
    return cam;
}

/** One Gaussian with a flat color at @p pos. */
inline Gaussian
makeGaussian(Vec3 pos, float scale = 0.1f, float opacity = 0.8f,
             Vec3 color = {1.0f, 0.0f, 0.0f})
{
    Gaussian g;
    g.position = pos;
    g.scale = {scale, scale, scale};
    g.opacity = opacity;
    setShFromColor(g, color);
    return g;
}

/** Scene with @p n Gaussians in a blob in front of the camera. */
inline GaussianScene
blobScene(size_t n, uint64_t seed = 7)
{
    Rng rng(seed);
    GaussianScene scene;
    scene.name = "blob";
    for (size_t i = 0; i < n; ++i) {
        Vec3 pos{rng.uniform(-1.5f, 1.5f), rng.uniform(-1.0f, 1.0f),
                 rng.uniform(-1.0f, 1.0f)};
        Vec3 color{rng.uniform(0.1f, 1.0f), rng.uniform(0.1f, 1.0f),
                   rng.uniform(0.1f, 1.0f)};
        scene.gaussians.push_back(
            makeGaussian(pos, rng.uniform(0.03f, 0.15f),
                         rng.uniform(0.3f, 0.9f), color));
    }
    recomputeBounds(scene);
    return scene;
}

/** A small standard synthetic scene for integration-style tests. */
inline GaussianScene
tinySyntheticScene(size_t count = 4000, uint64_t seed = 42)
{
    SyntheticSceneParams p;
    p.seed = seed;
    p.count = count;
    p.extent = 6.0f;
    p.clusters = 5;
    p.name = "tiny";
    return generateScene(p);
}

/** Random tile table with @p n entries, depths in [0, 100). */
inline std::vector<TileEntry>
randomTable(size_t n, uint64_t seed = 11)
{
    Rng rng(seed);
    std::vector<TileEntry> t;
    t.reserve(n);
    for (size_t i = 0; i < n; ++i)
        t.push_back({static_cast<GaussianId>(i),
                     rng.uniform(0.0f, 100.0f), true});
    return t;
}

/** True when @p t is sorted by entryDepthLess. */
inline bool
isSorted(const std::vector<TileEntry> &t)
{
    for (size_t i = 0; i + 1 < t.size(); ++i)
        if (entryDepthLess(t[i + 1], t[i]))
            return false;
    return true;
}

/** Nearly sorted table: sorted, then each entry perturbed in depth. */
inline std::vector<TileEntry>
nearlySortedTable(size_t n, float jitter, uint64_t seed = 13)
{
    auto t = randomTable(n, seed);
    std::sort(t.begin(), t.end(), entryDepthLess);
    Rng rng(seed + 1);
    for (auto &e : t)
        e.depth += rng.uniform(-jitter, jitter);
    return t;
}

} // namespace neo::test

#endif // NEO_TESTS_TEST_UTIL_H
