/**
 * @file
 * Unit tests for the NeoRenderer facade (functional rendering + workload
 * extraction with reuse-and-update sorting).
 */

#include <gtest/gtest.h>

#include "core/neo_renderer.h"
#include "metrics/psnr.h"
#include "scene/trajectory.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(NeoRendererTest, DefaultOptionsMatchTable1)
{
    PipelineOptions opts = NeoRenderer::neoDefaultOptions();
    EXPECT_EQ(opts.tile_px, 64);
    EXPECT_EQ(opts.raster.subtile_size, 8);
}

TEST(NeoRendererTest, FirstFrameMatchesBaselineExactly)
{
    GaussianScene scene = test::tinySyntheticScene(2000);
    Trajectory traj(TrajectoryKind::Orbit, scene);
    Camera cam = traj.cameraAt(0, test::smallRes());

    PipelineOptions opts = NeoRenderer::neoDefaultOptions();
    NeoRenderer neo_r(opts);
    Renderer base(opts);

    Image neo_img = neo_r.renderFrame(scene, cam, 0);
    Image base_img = base.render(scene, cam);
    // Cold start performs a full sort: identical output.
    EXPECT_DOUBLE_EQ(Image::meanAbsoluteDifference(neo_img, base_img), 0.0);
}

TEST(NeoRendererTest, SubsequentFramesStayCloseToBaseline)
{
    GaussianScene scene = test::tinySyntheticScene(3000);
    Trajectory traj(TrajectoryKind::Orbit, scene);
    PipelineOptions opts = NeoRenderer::neoDefaultOptions();
    NeoRenderer neo_r(opts);
    Renderer base(opts);

    for (int f = 0; f < 5; ++f) {
        Camera cam = traj.cameraAt(f, test::smallRes());
        Image neo_img = neo_r.renderFrame(scene, cam, f);
        Image base_img = base.render(scene, cam);
        double quality = psnr(base_img, neo_img);
        EXPECT_GT(quality, 30.0) << "frame " << f;
    }
}

TEST(NeoRendererTest, ReportIsPopulated)
{
    GaussianScene scene = test::tinySyntheticScene(2000);
    Trajectory traj(TrajectoryKind::Orbit, scene);
    NeoRenderer renderer;
    NeoFrameReport report;
    renderer.renderFrame(scene, traj.cameraAt(0, test::smallRes()), 0,
                         &report);
    EXPECT_TRUE(report.reuse.cold_start);
    EXPECT_GT(report.frame.instances, 0u);
    EXPECT_GT(report.sort.entries_read, 0u);

    renderer.renderFrame(scene, traj.cameraAt(1, test::smallRes()), 1,
                         &report);
    EXPECT_FALSE(report.reuse.cold_start);
}

TEST(NeoRendererTest, WorkloadCarriesDeltas)
{
    GaussianScene scene = test::tinySyntheticScene(2000);
    Trajectory traj(TrajectoryKind::Orbit, scene);
    NeoRenderer renderer;
    FrameWorkload w0 =
        renderer.extractWorkload(scene, traj.cameraAt(0, test::smallRes()),
                                 0);
    EXPECT_EQ(w0.incoming_instances, w0.instances); // everything new
    FrameWorkload w1 =
        renderer.extractWorkload(scene, traj.cameraAt(1, test::smallRes()),
                                 1);
    EXPECT_LT(w1.incoming_instances, w1.instances);
    EXPECT_GT(w1.mean_tile_retention, 0.5);
}

TEST(NeoRendererTest, ResetRestartsColdly)
{
    GaussianScene scene = test::tinySyntheticScene(1500);
    Trajectory traj(TrajectoryKind::Orbit, scene);
    NeoRenderer renderer;
    NeoFrameReport report;
    renderer.renderFrame(scene, traj.cameraAt(0, test::smallRes()), 0,
                         &report);
    renderer.renderFrame(scene, traj.cameraAt(1, test::smallRes()), 1,
                         &report);
    EXPECT_FALSE(report.reuse.cold_start);
    renderer.reset();
    renderer.renderFrame(scene, traj.cameraAt(2, test::smallRes()), 2,
                         &report);
    EXPECT_TRUE(report.reuse.cold_start);
}

} // namespace
} // namespace neo
