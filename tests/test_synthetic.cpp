/**
 * @file
 * Unit tests for the synthetic scene generator and dataset presets.
 */

#include <cstddef>

#include <gtest/gtest.h>

#include "scene/datasets.h"
#include "scene/synthetic.h"

namespace neo
{
namespace
{

TEST(SyntheticTest, CountRespected)
{
    SyntheticSceneParams p;
    p.count = 5000;
    GaussianScene scene = generateScene(p);
    EXPECT_EQ(scene.size(), 5000u);
}

TEST(SyntheticTest, DeterministicInSeed)
{
    SyntheticSceneParams p;
    p.count = 1000;
    p.seed = 99;
    GaussianScene a = generateScene(p);
    GaussianScene b = generateScene(p);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(a[i].position.x, b[i].position.x);
        EXPECT_FLOAT_EQ(a[i].opacity, b[i].opacity);
        EXPECT_FLOAT_EQ(a[i].scale.y, b[i].scale.y);
    }
}

TEST(SyntheticTest, DifferentSeedsDiffer)
{
    SyntheticSceneParams p;
    p.count = 500;
    p.seed = 1;
    GaussianScene a = generateScene(p);
    p.seed = 2;
    GaussianScene b = generateScene(p);
    int same = 0;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].position.x == b[i].position.x)
            ++same;
    EXPECT_LT(same, 5);
}

TEST(SyntheticTest, OpacitiesInValidRange)
{
    SyntheticSceneParams p;
    p.count = 2000;
    GaussianScene scene = generateScene(p);
    for (const auto &g : scene.gaussians) {
        EXPECT_GE(g.opacity, 0.02f);
        EXPECT_LE(g.opacity, 0.98f);
    }
}

TEST(SyntheticTest, ScalesArePositive)
{
    SyntheticSceneParams p;
    p.count = 2000;
    GaussianScene scene = generateScene(p);
    for (const auto &g : scene.gaussians) {
        EXPECT_GT(g.scale.x, 0.0f);
        EXPECT_GT(g.scale.y, 0.0f);
        EXPECT_GT(g.scale.z, 0.0f);
    }
}

TEST(SyntheticTest, BoundsEncloseAllGaussians)
{
    SyntheticSceneParams p;
    p.count = 2000;
    GaussianScene scene = generateScene(p);
    EXPECT_GT(scene.bounding_radius, 0.0f);
    for (const auto &g : scene.gaussians) {
        float d = (g.position - scene.center).norm();
        EXPECT_LE(d, scene.bounding_radius + 1e-3f);
    }
}

TEST(SyntheticTest, GroundSheetIsFlattened)
{
    SyntheticSceneParams p;
    p.count = 4000;
    p.ground_fraction = 0.5f;
    GaussianScene scene = generateScene(p);
    // Ground Gaussians sit near y=0 and are flattened in y; verify a good
    // share of the scene has y-scale much smaller than x-scale.
    int flat = 0;
    for (const auto &g : scene.gaussians)
        if (g.scale.y < 0.3f * g.scale.x)
            ++flat;
    EXPECT_GT(flat, static_cast<int>(0.2 * scene.size()));
}

TEST(DatasetsTest, SixTanksAndTemplesScenes)
{
    auto presets = tanksAndTemplesPresets();
    ASSERT_EQ(presets.size(), 6u);
    const char *expected[] = {"Family",     "Francis",    "Horse",
                              "Lighthouse", "Playground", "Train"};
    for (size_t i = 0; i < presets.size(); ++i)
        EXPECT_EQ(presets[i].name, expected[i]);
}

TEST(DatasetsTest, Mill19Scenes)
{
    auto presets = mill19Presets();
    ASSERT_EQ(presets.size(), 2u);
    EXPECT_EQ(presets[0].name, "Building");
    EXPECT_EQ(presets[1].name, "Rubble");
    // Large-scale scenes are much larger than the T&T ones.
    for (const auto &p : presets)
        EXPECT_GT(p.params.count, 2000000u);
}

TEST(DatasetsTest, PresetByNameFindsBothSuites)
{
    EXPECT_EQ(presetByName("Train").params.count, 1000000u);
    EXPECT_EQ(presetByName("Rubble").name, "Rubble");
}

TEST(DatasetsTest, PresetByNameUnknownDies)
{
    EXPECT_DEATH({ presetByName("NotAScene"); }, "unknown scene preset");
}

TEST(DatasetsTest, BuildSceneAppliesScale)
{
    ScenePreset p = presetByName("Horse");
    GaussianScene scene = buildScene(p, 0.01);
    EXPECT_EQ(scene.size(), 4500u);
    EXPECT_EQ(scene.name, "Horse");
}

TEST(DatasetsTest, BuildSceneEnforcesMinimumCount)
{
    ScenePreset p = presetByName("Horse");
    GaussianScene scene = buildScene(p, 1e-9);
    EXPECT_EQ(scene.size(), 1000u);
}

TEST(DatasetsTest, SceneCountsSpanPaperRange)
{
    // The six scenes must differ in size (Train largest) so per-scene
    // effects are visible in the benches, as in the paper.
    auto presets = tanksAndTemplesPresets();
    size_t train = presetByName("Train").params.count;
    for (const auto &p : presets)
        EXPECT_LE(p.params.count, train);
    EXPECT_LT(presetByName("Horse").params.count, train);
}

} // namespace
} // namespace neo
