/**
 * @file
 * Integration tests across modules: quality parity between Neo and full
 * re-sorting on a real (small) scene trajectory, temporal-similarity
 * statistics in the ranges the paper's motivation study reports, and the
 * strategy quality ordering of Fig. 19.
 */

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/neo_renderer.h"
#include "metrics/lpips_proxy.h"
#include "metrics/psnr.h"
#include "scene/datasets.h"
#include "sim/perf_harness.h"
#include "sort/strategies.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(IntegrationTest, NeoQualityParityOnTrajectory)
{
    GaussianScene scene = test::tinySyntheticScene(6000, 77);
    Trajectory traj(TrajectoryKind::Orbit, scene);

    PipelineOptions opts;
    opts.tile_px = 32; // divides the 256x192 test resolution
    opts.raster.subtile_size = 8;
    NeoRenderer neo_r(opts);
    Renderer base(opts);

    double worst_psnr = 1e9;
    double worst_lpips = 0.0;
    for (int f = 0; f < 8; ++f) {
        Camera cam = traj.cameraAt(f, test::smallRes());
        Image neo_img = neo_r.renderFrame(scene, cam, f);
        Image ref_img = base.render(scene, cam);
        worst_psnr = std::min(worst_psnr, psnr(ref_img, neo_img));
        worst_lpips = std::max(worst_lpips, lpipsProxy(ref_img, neo_img));
    }
    // Table 2: quality parity (our thresholds are conservative for the
    // small test scene).
    EXPECT_GT(worst_psnr, 32.0);
    EXPECT_LT(worst_lpips, 0.05);
}

TEST(IntegrationTest, TemporalSimilarityMatchesMotivationStudy)
{
    // Fig. 6/7: under a 30 FPS-like orbit, tiles retain most Gaussians and
    // sort-order displacement is small.
    GaussianScene scene = test::tinySyntheticScene(8000, 5);
    Trajectory traj(TrajectoryKind::Orbit, scene, 1.0f);
    Renderer renderer;
    DeltaTracker tracker;

    std::vector<double> retention;
    std::vector<double> displacements;
    std::vector<std::vector<TileEntry>> prev_tiles;
    for (int f = 0; f < 6; ++f) {
        Camera cam = traj.cameraAt(f, test::smallRes());
        BinnedFrame frame = renderer.prepare(scene, cam);
        FrameDelta delta = tracker.observe(frame);
        if (f > 0) {
            for (double r : delta.tile_retention)
                retention.push_back(r);
            for (size_t t = 0; t < frame.tiles.size(); ++t) {
                if (t < prev_tiles.size() && prev_tiles[t].size() > 8) {
                    auto d = orderDisplacements(prev_tiles[t],
                                                frame.tiles[t]);
                    displacements.insert(displacements.end(), d.begin(),
                                         d.end());
                }
            }
        }
        prev_tiles = frame.tiles;
    }
    ASSERT_FALSE(retention.empty());
    ASSERT_FALSE(displacements.empty());
    // Most tiles retain most of their Gaussians.
    EXPECT_GT(mean(retention), 0.8);
    // Median displacement is tiny relative to table length.
    EXPECT_LT(percentile(displacements, 50.0), 8.0);
}

TEST(IntegrationTest, StrategyQualityOrderingMatchesFig19)
{
    // Rasterize the same trajectory with full sorting (reference), Neo's
    // reuse-update, and periodic sorting with a long period. Periodic must
    // be the worst; Neo must stay close to the reference.
    GaussianScene scene = test::tinySyntheticScene(6000, 9);
    Trajectory traj(TrajectoryKind::Orbit, scene, 2.0f);

    PipelineOptions opts;
    opts.tile_px = 32;
    Renderer renderer(opts);
    ReuseUpdateSorter neo_sorter;
    PeriodicSortStrategy periodic(16);

    double neo_min_psnr = 1e9, periodic_min_psnr = 1e9;
    for (int f = 0; f < 10; ++f) {
        Camera cam = traj.cameraAt(f, test::smallRes());
        BinnedFrame frame = binFrame(scene, cam, opts.tile_px);
        Image ref = renderer.renderWithOrdering(
            renderer.prepare(scene, cam), {});

        neo_sorter.beginFrame(frame, f);
        Image neo_img =
            renderer.renderWithOrdering(frame, neo_sorter.orderings());
        neo_min_psnr = std::min(neo_min_psnr, psnr(ref, neo_img));

        periodic.beginFrame(frame, f);
        Image per_img =
            renderer.renderWithOrdering(frame, periodic.orderings());
        periodic_min_psnr = std::min(periodic_min_psnr, psnr(ref, per_img));
    }
    EXPECT_GT(neo_min_psnr, periodic_min_psnr)
        << "reuse-update must beat stale periodic tables";
    EXPECT_GT(neo_min_psnr, 30.0);
}

TEST(IntegrationTest, WorkloadPipelineFeedsAllModels)
{
    GaussianScene scene = test::tinySyntheticScene(5000, 3);
    Trajectory traj(TrajectoryKind::Orbit, scene);
    WorkloadSequences seqs =
        extractSequences(scene, traj, test::smallRes(), 4);
    ASSERT_EQ(seqs.tile16.size(), 4u);
    ASSERT_EQ(seqs.tile64.size(), 4u);

    SequenceResult gpu = simulateGpu(GpuModel(), seqs.tile16);
    SequenceResult gscore = simulateGscore(GscoreModel(), seqs.tile16);
    SequenceResult neo = simulateNeo(NeoModel(), seqs.tile64);
    EXPECT_GT(gpu.meanFps(), 0.0);
    EXPECT_GT(gscore.meanFps(), 0.0);
    EXPECT_GT(neo.meanFps(), 0.0);
    // Neo moves the least data.
    EXPECT_LT(neo.totalTrafficGB(), gscore.totalTrafficGB());
    EXPECT_LT(gscore.totalTrafficGB(), gpu.totalTrafficGB());
}

TEST(IntegrationTest, RapidMotionDegradesRetentionNotCorrectness)
{
    // Fig. 17(b) precondition: faster camera -> lower retention -> more
    // incoming work, while the rendered membership stays exact.
    GaussianScene scene = test::tinySyntheticScene(5000, 21);
    double slow_retention = 0.0, fast_retention = 0.0;
    for (float speed : {1.0f, 8.0f}) {
        Trajectory traj(TrajectoryKind::Orbit, scene, speed);
        Renderer renderer;
        DeltaTracker tracker;
        double sum = 0.0;
        int frames = 0;
        for (int f = 0; f < 5; ++f) {
            Camera cam = traj.cameraAt(f, test::smallRes());
            FrameDelta d = tracker.observe(renderer.prepare(scene, cam));
            if (f > 0) {
                sum += d.meanRetention();
                ++frames;
            }
        }
        double avg = sum / frames;
        if (speed == 1.0f)
            slow_retention = avg;
        else
            fast_retention = avg;
    }
    EXPECT_LT(fast_retention, slow_retention);
    EXPECT_GT(fast_retention, 0.2) << "even at 8x most Gaussians persist";
}

TEST(IntegrationTest, DatasetPresetsDriveFullPipeline)
{
    // Smoke: a (scaled-down) paper preset goes through the whole stack.
    ScenePreset preset = presetByName("Family");
    GaussianScene scene = buildScene(preset, 0.01); // 5500 Gaussians
    Trajectory traj(preset.trajectory, scene);
    NeoRenderer renderer;
    NeoFrameReport report;
    Image img = renderer.renderFrame(
        scene, traj.cameraAt(0, test::smallRes()), 0, &report);
    EXPECT_FALSE(img.empty());
    EXPECT_GT(report.frame.instances, 0u);
}

} // namespace
} // namespace neo
