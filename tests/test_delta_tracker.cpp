/**
 * @file
 * Unit tests for per-tile membership delta tracking.
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "core/delta_tracker.h"
#include "test_util.h"

namespace neo
{
namespace
{

BinnedFrame
frameAt(const GaussianScene &scene, float angle)
{
    Camera cam(test::smallRes(), deg2rad(50.0f));
    cam.lookAt({5.0f * std::sin(angle), 0.5f, -5.0f * std::cos(angle)},
               {0.0f, 0.0f, 0.0f});
    return binFrame(scene, cam, 16);
}

TEST(DeltaTrackerTest, FirstFrameIsAllIncoming)
{
    GaussianScene scene = test::blobScene(200);
    DeltaTracker tracker;
    EXPECT_TRUE(tracker.firstFrame());
    BinnedFrame frame = frameAt(scene, 0.0f);
    FrameDelta d = tracker.observe(frame);
    EXPECT_FALSE(tracker.firstFrame());
    EXPECT_EQ(d.incoming_total, frame.instances);
    EXPECT_EQ(d.outgoing_total, 0u);
}

TEST(DeltaTrackerTest, IdenticalFrameHasNoDeltas)
{
    GaussianScene scene = test::blobScene(200);
    DeltaTracker tracker;
    BinnedFrame frame = frameAt(scene, 0.0f);
    tracker.observe(frame);
    FrameDelta d = tracker.observe(frame);
    EXPECT_EQ(d.incoming_total, 0u);
    EXPECT_EQ(d.outgoing_total, 0u);
    EXPECT_DOUBLE_EQ(d.meanRetention(), 1.0);
}

TEST(DeltaTrackerTest, SmallMotionSmallDeltas)
{
    GaussianScene scene = test::blobScene(500);
    DeltaTracker tracker;
    tracker.observe(frameAt(scene, 0.0f));
    BinnedFrame next = frameAt(scene, 0.01f);
    FrameDelta d = tracker.observe(next);
    // A slight viewpoint change churns only a small fraction.
    EXPECT_LT(static_cast<double>(d.incoming_total),
              0.35 * next.instances);
    EXPECT_GT(d.meanRetention(), 0.6);
}

TEST(DeltaTrackerTest, LargerMotionChurnsMore)
{
    GaussianScene scene = test::blobScene(500);
    DeltaTracker slow_tracker, fast_tracker;
    slow_tracker.observe(frameAt(scene, 0.0f));
    fast_tracker.observe(frameAt(scene, 0.0f));
    FrameDelta slow = slow_tracker.observe(frameAt(scene, 0.01f));
    FrameDelta fast = fast_tracker.observe(frameAt(scene, 0.15f));
    EXPECT_GE(fast.incoming_total, slow.incoming_total);
    EXPECT_LE(fast.meanRetention(), slow.meanRetention() + 1e-9);
}

TEST(DeltaTrackerTest, IncomingEntriesCarryDepths)
{
    GaussianScene scene = test::blobScene(200);
    DeltaTracker tracker;
    tracker.observe(frameAt(scene, 0.0f));
    BinnedFrame next = frameAt(scene, 0.05f);
    FrameDelta d = tracker.observe(next);
    for (const auto &td : d.tiles)
        for (const auto &e : td.incoming) {
            ASSERT_TRUE(next.isVisible(e.id));
            EXPECT_FLOAT_EQ(e.depth, next.featureOf(e.id).depth);
        }
}

TEST(DeltaTrackerTest, OutgoingIdsAreSortedAndConsistent)
{
    GaussianScene scene = test::blobScene(300);
    DeltaTracker tracker;
    tracker.observe(frameAt(scene, 0.0f));
    FrameDelta d = tracker.observe(frameAt(scene, 0.08f));
    uint64_t total = 0;
    for (const auto &td : d.tiles) {
        EXPECT_EQ(td.outgoing, td.outgoing_ids.size());
        total += td.outgoing;
        for (size_t i = 1; i < td.outgoing_ids.size(); ++i)
            EXPECT_LT(td.outgoing_ids[i - 1], td.outgoing_ids[i]);
    }
    EXPECT_EQ(total, d.outgoing_total);
}

TEST(DeltaTrackerTest, RetentionBetweenZeroAndOne)
{
    GaussianScene scene = test::blobScene(300);
    DeltaTracker tracker;
    tracker.observe(frameAt(scene, 0.0f));
    FrameDelta d = tracker.observe(frameAt(scene, 0.3f));
    for (double r : d.tile_retention) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
}

TEST(DeltaTrackerTest, ResetForgetsHistory)
{
    GaussianScene scene = test::blobScene(200);
    DeltaTracker tracker;
    BinnedFrame frame = frameAt(scene, 0.0f);
    tracker.observe(frame);
    tracker.reset();
    EXPECT_TRUE(tracker.firstFrame());
    FrameDelta d = tracker.observe(frame);
    EXPECT_EQ(d.incoming_total, frame.instances);
}

TEST(DeltaTrackerTest, MeanRetentionOfEmptySampleSetIsOne)
{
    // Documented convention: no retention samples reads as perfect
    // retention (1.0), so consumers scaling repair work by
    // (1 - retention) schedule nothing when nothing is known to have
    // changed.
    FrameDelta empty;
    EXPECT_TRUE(empty.tile_retention.empty());
    EXPECT_DOUBLE_EQ(empty.meanRetention(), 1.0);

    // First observed frame: no previous membership, so no samples.
    GaussianScene scene = test::blobScene(150);
    DeltaTracker tracker;
    FrameDelta first = tracker.observe(frameAt(scene, 0.0f));
    EXPECT_TRUE(first.tile_retention.empty());
    EXPECT_DOUBLE_EQ(first.meanRetention(), 1.0);

    // Second frame: samples exist, mean leaves the convention value
    // behind only because real evidence arrived.
    FrameDelta second = tracker.observe(frameAt(scene, 0.02f));
    EXPECT_FALSE(second.tile_retention.empty());
}

TEST(DeltaTrackerTest, ThreadCountDoesNotChangeDeltas)
{
    GaussianScene scene = test::blobScene(500);
    BinnedFrame f0 = frameAt(scene, 0.0f);
    BinnedFrame f1 = frameAt(scene, 0.05f);

    DeltaTracker serial;
    serial.setThreads(1);
    serial.observe(f0);
    FrameDelta want = serial.observe(f1);

    for (int threads : {2, 8}) {
        DeltaTracker tracker;
        tracker.setThreads(threads);
        tracker.observe(f0);
        FrameDelta got = tracker.observe(f1);
        EXPECT_EQ(want.incoming_total, got.incoming_total);
        EXPECT_EQ(want.outgoing_total, got.outgoing_total);
        // The Fig. 6 sample sequence must come out in tile-index order,
        // bit-identical to the serial pass.
        EXPECT_EQ(want.tile_retention, got.tile_retention);
        ASSERT_EQ(want.tiles.size(), got.tiles.size());
        for (size_t t = 0; t < want.tiles.size(); ++t) {
            EXPECT_EQ(want.tiles[t].outgoing_ids, got.tiles[t].outgoing_ids);
            EXPECT_EQ(want.tiles[t].prev_size, got.tiles[t].prev_size);
            EXPECT_EQ(want.tiles[t].retention, got.tiles[t].retention);
            ASSERT_EQ(want.tiles[t].incoming.size(),
                      got.tiles[t].incoming.size());
            for (size_t i = 0; i < want.tiles[t].incoming.size(); ++i) {
                EXPECT_EQ(want.tiles[t].incoming[i].id,
                          got.tiles[t].incoming[i].id);
                EXPECT_EQ(want.tiles[t].incoming[i].depth,
                          got.tiles[t].incoming[i].depth);
            }
        }
    }
}

TEST(DeltaTrackerTest, ReuseObserveMatchesAllocatingObserve)
{
    GaussianScene scene = test::blobScene(300);
    DeltaTracker fresh, reusing;
    FrameDelta reused;
    for (int f = 0; f < 3; ++f) {
        BinnedFrame frame = frameAt(scene, 0.03f * f);
        FrameDelta want = fresh.observe(frame);
        reusing.observe(frame, reused);
        EXPECT_EQ(want.incoming_total, reused.incoming_total);
        EXPECT_EQ(want.outgoing_total, reused.outgoing_total);
        EXPECT_EQ(want.tile_retention, reused.tile_retention);
    }
}

// --- Randomized set-difference oracle -----------------------------------
//
// The merge-based observe() must agree field for field (and byte for
// byte on tile_retention) with a naive sorted set-difference oracle on
// arbitrary tile membership — including shuffled (depth-ordered) entry
// lists, empty tiles, full turnover, and no change — at every thread
// count.

/** Naive per-tile delta: sorted-vector set operations, no shortcuts. */
struct OracleDelta
{
    std::vector<std::vector<TileEntry>> incoming;
    std::vector<std::vector<GaussianId>> outgoing;
    std::vector<double> retention_by_tile; // 1.0 when prev empty
    std::vector<uint32_t> prev_size;
    uint64_t incoming_total = 0;
    uint64_t outgoing_total = 0;
    std::vector<double> tile_retention;
};

OracleDelta
oracleObserve(const std::vector<std::vector<GaussianId>> &prev_sorted,
              const BinnedFrame &frame, bool have_prev)
{
    const size_t tiles = frame.tiles.size();
    OracleDelta d;
    d.incoming.resize(tiles);
    d.outgoing.resize(tiles);
    d.retention_by_tile.assign(tiles, 1.0);
    d.prev_size.assign(tiles, 0);
    for (size_t t = 0; t < tiles; ++t) {
        const auto &entries = frame.tiles[t];
        std::vector<GaussianId> cur;
        for (const auto &e : entries)
            cur.push_back(e.id);
        std::sort(cur.begin(), cur.end());
        if (!have_prev) {
            d.incoming[t] = entries;
            d.incoming_total += entries.size();
            continue;
        }
        const auto &prev = prev_sorted[t];
        d.prev_size[t] = static_cast<uint32_t>(prev.size());
        for (const auto &e : entries)
            if (!std::binary_search(prev.begin(), prev.end(), e.id))
                d.incoming[t].push_back(e);
        d.incoming_total += d.incoming[t].size();
        std::set_difference(prev.begin(), prev.end(), cur.begin(),
                            cur.end(),
                            std::back_inserter(d.outgoing[t]));
        d.outgoing_total += d.outgoing[t].size();
        if (!prev.empty()) {
            const uint32_t shared =
                static_cast<uint32_t>(prev.size()) -
                static_cast<uint32_t>(d.outgoing[t].size());
            d.retention_by_tile[t] =
                static_cast<double>(shared) /
                static_cast<double>(prev.size());
            d.tile_retention.push_back(d.retention_by_tile[t]);
        }
    }
    return d;
}

TEST(DeltaTrackerTest, MatchesSetDifferenceOracleOnRandomFrames)
{
    constexpr size_t kTiles = 37;    // not a multiple of any chunk count
    constexpr uint32_t kUniverse = 500;

    for (int threads : {1, 2, 8}) {
        Rng rng(913);
        DeltaTracker tracker;
        tracker.setThreads(threads);

        std::vector<std::vector<GaussianId>> prev_sorted;
        std::vector<std::vector<TileEntry>> last_tiles;
        bool have_prev = false;
        for (int f = 0; f < 6; ++f) {
            // Random membership per tile, presented in random order (as
            // a depth-sorted pipeline would); frame 3 repeats frame 2's
            // membership exactly (the no-change case), tile 0 is often
            // empty.
            BinnedFrame frame;
            frame.grid = TileGrid(Resolution{16 * 8, 16 * 5, "oracle"},
                                  16); // 8x5 = 40 >= kTiles
            frame.tiles.resize(kTiles);
            if (f == 3) {
                frame.tiles = last_tiles;
            } else {
                for (size_t t = 0; t < kTiles; ++t) {
                    auto &list = frame.tiles[t];
                    if (t == 0 && f % 2 == 0)
                        continue; // empty tile
                    const size_t count = rng.below(40);
                    std::vector<GaussianId> ids;
                    while (ids.size() < count) {
                        GaussianId id = static_cast<GaussianId>(
                            rng.below(kUniverse));
                        if (std::find(ids.begin(), ids.end(), id) ==
                            ids.end())
                            ids.push_back(id);
                    }
                    for (GaussianId id : ids)
                        list.push_back(TileEntry{
                            id, rng.uniform(0.1f, 50.0f), true});
                }
            }
            last_tiles = frame.tiles;

            OracleDelta want =
                oracleObserve(prev_sorted, frame, have_prev);
            FrameDelta got = tracker.observe(frame);

            EXPECT_EQ(want.incoming_total, got.incoming_total)
                << "threads=" << threads << " frame=" << f;
            EXPECT_EQ(want.outgoing_total, got.outgoing_total);
            // Byte-identical Fig. 6 sample sequence.
            ASSERT_EQ(want.tile_retention.size(),
                      got.tile_retention.size());
            for (size_t i = 0; i < want.tile_retention.size(); ++i)
                EXPECT_EQ(std::bit_cast<uint64_t>(
                              want.tile_retention[i]),
                          std::bit_cast<uint64_t>(
                              got.tile_retention[i]))
                    << "threads=" << threads << " frame=" << f
                    << " sample=" << i;
            ASSERT_EQ(got.tiles.size(), kTiles);
            for (size_t t = 0; t < kTiles; ++t) {
                const TileDelta &td = got.tiles[t];
                EXPECT_EQ(want.outgoing[t], td.outgoing_ids)
                    << "tile " << t;
                EXPECT_EQ(want.outgoing[t].size(), td.outgoing);
                EXPECT_EQ(want.prev_size[t], td.prev_size);
                EXPECT_EQ(std::bit_cast<uint64_t>(
                              want.retention_by_tile[t]),
                          std::bit_cast<uint64_t>(td.retention))
                    << "tile " << t;
                ASSERT_EQ(want.incoming[t].size(), td.incoming.size())
                    << "tile " << t;
                for (size_t i = 0; i < td.incoming.size(); ++i) {
                    EXPECT_EQ(want.incoming[t][i].id,
                              td.incoming[i].id);
                    EXPECT_EQ(want.incoming[t][i].depth,
                              td.incoming[i].depth);
                }
            }

            // The oracle's next reference membership.
            prev_sorted.assign(kTiles, {});
            for (size_t t = 0; t < kTiles; ++t) {
                for (const auto &e : frame.tiles[t])
                    prev_sorted[t].push_back(e.id);
                std::sort(prev_sorted[t].begin(), prev_sorted[t].end());
            }
            have_prev = true;
        }
    }
}

TEST(DeltaTrackerTest, IncomingPlusRetainedEqualsCurrent)
{
    GaussianScene scene = test::blobScene(400);
    DeltaTracker tracker;
    BinnedFrame f0 = frameAt(scene, 0.0f);
    tracker.observe(f0);
    BinnedFrame f1 = frameAt(scene, 0.04f);
    FrameDelta d = tracker.observe(f1);
    // |cur| = |prev| - outgoing + incoming, summed over tiles.
    EXPECT_EQ(f1.instances,
              f0.instances - d.outgoing_total + d.incoming_total);
}

} // namespace
} // namespace neo
