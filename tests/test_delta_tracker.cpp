/**
 * @file
 * Unit tests for per-tile membership delta tracking.
 */

#include <cmath>
#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "core/delta_tracker.h"
#include "test_util.h"

namespace neo
{
namespace
{

BinnedFrame
frameAt(const GaussianScene &scene, float angle)
{
    Camera cam(test::smallRes(), deg2rad(50.0f));
    cam.lookAt({5.0f * std::sin(angle), 0.5f, -5.0f * std::cos(angle)},
               {0.0f, 0.0f, 0.0f});
    return binFrame(scene, cam, 16);
}

TEST(DeltaTrackerTest, FirstFrameIsAllIncoming)
{
    GaussianScene scene = test::blobScene(200);
    DeltaTracker tracker;
    EXPECT_TRUE(tracker.firstFrame());
    BinnedFrame frame = frameAt(scene, 0.0f);
    FrameDelta d = tracker.observe(frame);
    EXPECT_FALSE(tracker.firstFrame());
    EXPECT_EQ(d.incoming_total, frame.instances);
    EXPECT_EQ(d.outgoing_total, 0u);
}

TEST(DeltaTrackerTest, IdenticalFrameHasNoDeltas)
{
    GaussianScene scene = test::blobScene(200);
    DeltaTracker tracker;
    BinnedFrame frame = frameAt(scene, 0.0f);
    tracker.observe(frame);
    FrameDelta d = tracker.observe(frame);
    EXPECT_EQ(d.incoming_total, 0u);
    EXPECT_EQ(d.outgoing_total, 0u);
    EXPECT_DOUBLE_EQ(d.meanRetention(), 1.0);
}

TEST(DeltaTrackerTest, SmallMotionSmallDeltas)
{
    GaussianScene scene = test::blobScene(500);
    DeltaTracker tracker;
    tracker.observe(frameAt(scene, 0.0f));
    BinnedFrame next = frameAt(scene, 0.01f);
    FrameDelta d = tracker.observe(next);
    // A slight viewpoint change churns only a small fraction.
    EXPECT_LT(static_cast<double>(d.incoming_total),
              0.35 * next.instances);
    EXPECT_GT(d.meanRetention(), 0.6);
}

TEST(DeltaTrackerTest, LargerMotionChurnsMore)
{
    GaussianScene scene = test::blobScene(500);
    DeltaTracker slow_tracker, fast_tracker;
    slow_tracker.observe(frameAt(scene, 0.0f));
    fast_tracker.observe(frameAt(scene, 0.0f));
    FrameDelta slow = slow_tracker.observe(frameAt(scene, 0.01f));
    FrameDelta fast = fast_tracker.observe(frameAt(scene, 0.15f));
    EXPECT_GE(fast.incoming_total, slow.incoming_total);
    EXPECT_LE(fast.meanRetention(), slow.meanRetention() + 1e-9);
}

TEST(DeltaTrackerTest, IncomingEntriesCarryDepths)
{
    GaussianScene scene = test::blobScene(200);
    DeltaTracker tracker;
    tracker.observe(frameAt(scene, 0.0f));
    BinnedFrame next = frameAt(scene, 0.05f);
    FrameDelta d = tracker.observe(next);
    for (const auto &td : d.tiles)
        for (const auto &e : td.incoming) {
            ASSERT_TRUE(next.isVisible(e.id));
            EXPECT_FLOAT_EQ(e.depth, next.featureOf(e.id).depth);
        }
}

TEST(DeltaTrackerTest, OutgoingIdsAreSortedAndConsistent)
{
    GaussianScene scene = test::blobScene(300);
    DeltaTracker tracker;
    tracker.observe(frameAt(scene, 0.0f));
    FrameDelta d = tracker.observe(frameAt(scene, 0.08f));
    uint64_t total = 0;
    for (const auto &td : d.tiles) {
        EXPECT_EQ(td.outgoing, td.outgoing_ids.size());
        total += td.outgoing;
        for (size_t i = 1; i < td.outgoing_ids.size(); ++i)
            EXPECT_LT(td.outgoing_ids[i - 1], td.outgoing_ids[i]);
    }
    EXPECT_EQ(total, d.outgoing_total);
}

TEST(DeltaTrackerTest, RetentionBetweenZeroAndOne)
{
    GaussianScene scene = test::blobScene(300);
    DeltaTracker tracker;
    tracker.observe(frameAt(scene, 0.0f));
    FrameDelta d = tracker.observe(frameAt(scene, 0.3f));
    for (double r : d.tile_retention) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
}

TEST(DeltaTrackerTest, ResetForgetsHistory)
{
    GaussianScene scene = test::blobScene(200);
    DeltaTracker tracker;
    BinnedFrame frame = frameAt(scene, 0.0f);
    tracker.observe(frame);
    tracker.reset();
    EXPECT_TRUE(tracker.firstFrame());
    FrameDelta d = tracker.observe(frame);
    EXPECT_EQ(d.incoming_total, frame.instances);
}

TEST(DeltaTrackerTest, IncomingPlusRetainedEqualsCurrent)
{
    GaussianScene scene = test::blobScene(400);
    DeltaTracker tracker;
    BinnedFrame f0 = frameAt(scene, 0.0f);
    tracker.observe(f0);
    BinnedFrame f1 = frameAt(scene, 0.04f);
    FrameDelta d = tracker.observe(f1);
    // |cur| = |prev| - outgoing + incoming, summed over tiles.
    EXPECT_EQ(f1.instances,
              f0.instances - d.outgoing_total + d.incoming_total);
}

} // namespace
} // namespace neo
