/**
 * @file
 * End-to-end crash-recovery attestation over the real binaries: fork
 * neo_serve_net with --state-dir, stream frames into it over the real
 * socket with neo_serve_net_client, SIGKILL the server mid-stream at an
 * arbitrary frame, restart it on the same state directory, resume the
 * session, and assert the full served stream — before and after the
 * kill — is bit-identical to the server's own uninterrupted in-process
 * solo reference. Plus the graceful path: a drained server restarts
 * with its sessions restored from the final snapshot and an empty
 * journal replay.
 *
 * Binary paths arrive via NEO_SERVE_NET_BIN / NEO_SERVE_NET_CLIENT_BIN
 * (set by tests/CMakeLists.txt); the tests skip when absent so the
 * suite stays runnable standalone.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <dirent.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace
{

/** One spawned child with line-buffered access to its stdout. */
class Proc
{
  public:
    Proc() = default;
    ~Proc() { terminate(); }
    Proc(const Proc &) = delete;
    Proc &operator=(const Proc &) = delete;

    bool spawn(const std::vector<std::string> &argv)
    {
        int fds[2];
        if (pipe(fds) != 0)
            return false;
        pid_ = fork();
        if (pid_ < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            return false;
        }
        if (pid_ == 0) {
            ::close(fds[0]);
            dup2(fds[1], STDOUT_FILENO);
            ::close(fds[1]);
            std::vector<char *> args;
            args.reserve(argv.size() + 1);
            for (const std::string &a : argv)
                args.push_back(const_cast<char *>(a.c_str()));
            args.push_back(nullptr);
            execv(args[0], args.data());
            _exit(127);
        }
        ::close(fds[1]);
        out_ = fdopen(fds[0], "r");
        return out_ != nullptr;
    }

    /** Next stdout line (without the newline); false on EOF. */
    bool nextLine(std::string *line)
    {
        if (!out_)
            return false;
        char *buf = nullptr;
        size_t cap = 0;
        const ssize_t n = getline(&buf, &cap, out_);
        if (n < 0) {
            free(buf);
            return false;
        }
        *line = std::string(buf, buf[n - 1] == '\n'
                                     ? static_cast<size_t>(n) - 1
                                     : static_cast<size_t>(n));
        free(buf);
        return true;
    }

    /** Read lines until one starts with @p prefix. */
    bool waitForLine(const char *prefix, std::string *line)
    {
        while (nextLine(line)) {
            if (line->rfind(prefix, 0) == 0)
                return true;
        }
        return false;
    }

    void kill9()
    {
        if (pid_ > 0)
            ::kill(pid_, SIGKILL);
    }

    /** Reap the child; returns its wait status (-1 when not running). */
    int join()
    {
        if (pid_ <= 0)
            return -1;
        int status = -1;
        waitpid(pid_, &status, 0);
        pid_ = -1;
        if (out_) {
            fclose(out_);
            out_ = nullptr;
        }
        return status;
    }

    pid_t pid() const { return pid_; }

  private:
    void terminate()
    {
        if (pid_ > 0) {
            kill9();
            join();
        } else if (out_) {
            fclose(out_);
            out_ = nullptr;
        }
    }

    pid_t pid_ = -1;
    FILE *out_ = nullptr;
};

/** Scratch state directory in the test's working directory. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char tmpl[] = "durable-e2e-XXXXXX";
        const char *dir = mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        path_ = dir ? dir : "durable-e2e-fallback";
    }

    ~ScratchDir()
    {
        if (DIR *d = opendir(path_.c_str())) {
            while (dirent *e = readdir(d)) {
                const std::string name = e->d_name;
                if (name != "." && name != "..")
                    ::unlink((path_ + "/" + name).c_str());
            }
            closedir(d);
        }
        ::rmdir(path_.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

const char *
serverBin()
{
    return std::getenv("NEO_SERVE_NET_BIN");
}

/** The client ships next to the server binary; NEO_SERVE_NET_CLIENT_BIN
    overrides for out-of-tree runs. */
std::string
clientBin()
{
    if (const char *env = std::getenv("NEO_SERVE_NET_CLIENT_BIN"))
        return env;
    const char *server = serverBin();
    if (!server)
        return "";
    std::string path = server;
    const size_t slash = path.find_last_of('/');
    path.resize(slash == std::string::npos ? 0 : slash + 1);
    return path + "neo_serve_net_client";
}

struct RecoveryLine
{
    unsigned sessions = 0;
    unsigned long long snapshot = 0;
    unsigned long long replayed = 0;
    unsigned skipped = 0;
};

/** Start a durable server; parses solo refs (when requested), the
    recovery attestation line, and the bound port. */
bool
startServer(Proc *server, const std::string &state_dir, int solo_frames,
            std::map<int, uint64_t> *solo, RecoveryLine *recovery,
            int *port)
{
    std::vector<std::string> argv = {serverBin(), "--state-dir",
                                     state_dir, "--port", "0"};
    if (solo_frames > 0) {
        argv.push_back("--print-solo");
        argv.push_back(std::to_string(solo_frames));
    }
    if (!server->spawn(argv))
        return false;

    std::string line;
    while (server->nextLine(&line)) {
        int f = 0;
        unsigned long long hash = 0;
        if (std::sscanf(line.c_str(), "solo %d %llx", &f, &hash) == 2) {
            if (solo)
                (*solo)[f] = hash;
            continue;
        }
        RecoveryLine r;
        if (std::sscanf(line.c_str(),
                        "recovered sessions=%u snapshot=%llu "
                        "replayed=%llu skipped=%u",
                        &r.sessions, &r.snapshot, &r.replayed,
                        &r.skipped) == 4) {
            if (recovery)
                *recovery = r;
            continue;
        }
        if (std::sscanf(line.c_str(), "listening on 127.0.0.1:%d",
                        port) == 1)
            return true;
    }
    return false;
}

} // namespace

TEST(DurableE2eTest, Kill9MidStreamThenResumeBitIdentical)
{
    if (!serverBin() || clientBin().empty())
        GTEST_SKIP() << "NEO_SERVE_NET_BIN / NEO_SERVE_NET_CLIENT_BIN "
                        "not set";
    ScratchDir dir;
    constexpr int kFrames = 10;
    constexpr int kKillAfter = 4; //!< client frames served before kill

    // Incarnation A: durable server printing its own uninterrupted solo
    // reference for the full stream.
    Proc server_a;
    std::map<int, uint64_t> solo;
    int port = 0;
    ASSERT_TRUE(startServer(&server_a, dir.path(), kFrames, &solo,
                            nullptr, &port));
    ASSERT_EQ(solo.size(), static_cast<size_t>(kFrames));

    // Stream, and SIGKILL the real server process mid-stream: after the
    // kKillAfter-th served frame the client's next request is in flight
    // with no reply — the crash lands at an arbitrary point of the
    // submit/journal/render/reply window. The client asks for far more
    // frames than the reference so it cannot finish (and close its
    // session) before the kill, however the pipe buffers race.
    Proc client_a;
    ASSERT_TRUE(client_a.spawn({clientBin(), "--port",
                                std::to_string(port), "--frames",
                                "100000"}));
    std::map<int, uint64_t> served;
    std::string line;
    while (client_a.nextLine(&line)) {
        int f = 0;
        unsigned long long hash = 0;
        if (std::sscanf(line.c_str(), "frame %d %llx", &f, &hash) != 2)
            continue;
        served[f] = hash;
        if (static_cast<int>(served.size()) == kKillAfter) {
            server_a.kill9();
            break;
        }
    }
    ASSERT_GE(static_cast<int>(served.size()), kKillAfter);
    client_a.join(); // dies on the vanished server; exit status is moot
    const int status_a = server_a.join();
    ASSERT_TRUE(WIFSIGNALED(status_a) && WTERMSIG(status_a) == SIGKILL);

    // Incarnation B on the same state directory: must recover.
    Proc server_b;
    RecoveryLine rec;
    int port_b = 0;
    ASSERT_TRUE(startServer(&server_b, dir.path(), 0, nullptr, &rec,
                            &port_b));
    // Recovery may come from a snapshot, a journal replay, or both —
    // but after a mid-stream kill it must come from somewhere.
    EXPECT_TRUE(rec.sessions > 0 || rec.replayed > 0)
        << "restart recovered nothing";
    EXPECT_EQ(rec.skipped, 0u) << "no generation should be corrupt here";

    // Resume where the stream stopped. The server may have accepted one
    // more frame than the client saw a reply for (the in-flight request
    // at kill time) — resubmitting that frame is idempotent, so
    // restarting from the last *confirmed* frame is always correct.
    const int resume_at = static_cast<int>(served.size());
    Proc client_b;
    ASSERT_TRUE(client_b.spawn(
        {clientBin(), "--port", std::to_string(port_b), "--resume", "0",
         "--start-frame", std::to_string(resume_at), "--frames",
         std::to_string(kFrames - resume_at), "--shutdown"}));
    bool resumed = false;
    bool acked = false;
    while (client_b.nextLine(&line)) {
        int f = 0;
        unsigned long long hash = 0;
        if (line.rfind("session ", 0) == 0 &&
            line.find("resumed") != std::string::npos)
            resumed = true;
        if (std::sscanf(line.c_str(), "frame %d %llx", &f, &hash) == 2)
            served[f] = hash;
        if (line == "shutdown acked")
            acked = true;
    }
    EXPECT_TRUE(resumed);
    EXPECT_TRUE(acked);
    EXPECT_EQ(client_b.join(), 0);

    // The recovery attestation: every served frame, across the kill,
    // bit-identical to the uninterrupted solo reference.
    ASSERT_EQ(served.size(), static_cast<size_t>(kFrames));
    for (int f = 0; f < kFrames; ++f) {
        ASSERT_TRUE(solo.count(f));
        EXPECT_EQ(served[f], solo[f])
            << "frame " << f << " diverged across the crash";
    }

    // And the drained second incarnation exits cleanly.
    std::string drained;
    EXPECT_TRUE(server_b.waitForLine("drained cleanly", &drained));
    EXPECT_EQ(server_b.join(), 0);
}

TEST(DurableE2eTest, GracefulDrainRestartsWithEmptyJournalReplay)
{
    if (!serverBin() || clientBin().empty())
        GTEST_SKIP() << "NEO_SERVE_NET_BIN / NEO_SERVE_NET_CLIENT_BIN "
                        "not set";
    ScratchDir dir;
    constexpr int kFirst = 4;
    constexpr int kTotal = 7;

    Proc server_a;
    std::map<int, uint64_t> solo;
    int port = 0;
    ASSERT_TRUE(startServer(&server_a, dir.path(), kTotal, &solo,
                            nullptr, &port));

    // Stream a few frames, then request a graceful drain: the server
    // cuts a final compacting snapshot before closing.
    Proc client_a;
    ASSERT_TRUE(client_a.spawn({clientBin(), "--port",
                                std::to_string(port), "--frames",
                                std::to_string(kFirst), "--shutdown"}));
    std::map<int, uint64_t> served;
    std::string line;
    bool acked = false;
    while (client_a.nextLine(&line)) {
        int f = 0;
        unsigned long long hash = 0;
        if (std::sscanf(line.c_str(), "frame %d %llx", &f, &hash) == 2)
            served[f] = hash;
        if (line == "shutdown acked")
            acked = true;
    }
    EXPECT_TRUE(acked);
    EXPECT_EQ(client_a.join(), 0);
    EXPECT_EQ(server_a.join(), 0) << "drain must exit cleanly";

    // Restart: the session comes back from the final snapshot alone.
    Proc server_b;
    RecoveryLine rec;
    int port_b = 0;
    ASSERT_TRUE(startServer(&server_b, dir.path(), 0, nullptr, &rec,
                            &port_b));
    EXPECT_EQ(rec.sessions, 1u);
    EXPECT_EQ(rec.replayed, 0u)
        << "a drained server has nothing to replay";

    Proc client_b;
    ASSERT_TRUE(client_b.spawn(
        {clientBin(), "--port", std::to_string(port_b), "--resume", "0",
         "--start-frame", std::to_string(kFirst), "--frames",
         std::to_string(kTotal - kFirst), "--shutdown"}));
    while (client_b.nextLine(&line)) {
        int f = 0;
        unsigned long long hash = 0;
        if (std::sscanf(line.c_str(), "frame %d %llx", &f, &hash) == 2)
            served[f] = hash;
    }
    EXPECT_EQ(client_b.join(), 0);
    EXPECT_EQ(server_b.join(), 0);

    ASSERT_EQ(served.size(), static_cast<size_t>(kTotal));
    for (int f = 0; f < kTotal; ++f)
        EXPECT_EQ(served[f], solo[f])
            << "frame " << f << " diverged across the drain/restart";
}
