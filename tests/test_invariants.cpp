/**
 * @file
 * Long-horizon property tests on the reuse-and-update state machine: the
 * persistent tables must stay hygienic over many frames — no duplicate
 * ids within a tile, no unbounded accumulation of invalidated entries,
 * table population tracking the binned membership, and deterministic
 * replay. These are the invariants that make "reuse instead of rebuild"
 * safe to ship.
 */

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/reuse_update.h"
#include "scene/trajectory.h"
#include "test_util.h"

namespace neo
{
namespace
{

class ReuseInvariantTest : public ::testing::TestWithParam<float>
{
  protected:
    static BinnedFrame
    frameAt(const GaussianScene &scene, const Trajectory &traj, int f)
    {
        Camera cam = traj.cameraAt(f, test::smallRes());
        return binFrame(scene, cam, 32);
    }
};

TEST_P(ReuseInvariantTest, TablesStayHygienicOverLongRuns)
{
    const float speed = GetParam();
    GaussianScene scene = test::tinySyntheticScene(4000, 123);
    Trajectory traj(TrajectoryKind::Orbit, scene, speed);
    ReuseUpdateSorter sorter;

    const int frames = 24;
    for (int f = 0; f < frames; ++f) {
        BinnedFrame frame = frameAt(scene, traj, f);
        sorter.beginFrame(frame, f);

        uint64_t invalid_entries = 0;
        for (size_t t = 0; t < sorter.tables().tileCount(); ++t) {
            const auto &table = sorter.tables().table(t);

            // Invariant 1: no duplicate ids within a tile table.
            std::unordered_set<GaussianId> seen;
            for (const auto &e : table) {
                EXPECT_TRUE(seen.insert(e.id).second)
                    << "duplicate id " << e.id << " in tile " << t
                    << " at frame " << f << " (speed " << speed << ")";
                if (!e.valid)
                    ++invalid_entries;
            }
        }

        // Invariant 2: invalidated entries are bounded by one frame of
        // outgoing churn (they are filtered at the next merge, never
        // accumulated).
        EXPECT_EQ(invalid_entries, sorter.lastReport().outgoing_marked)
            << "stale invalid entries leaked across frames (frame " << f
            << ")";

        // Invariant 3: valid population equals the binned membership.
        EXPECT_EQ(sorter.tables().validEntries(), frame.instances)
            << "frame " << f;
    }
}

INSTANTIATE_TEST_SUITE_P(Speeds, ReuseInvariantTest,
                         ::testing::Values(0.5f, 2.0f, 8.0f));

TEST(ReuseDeterminismTest, ReplayIsBitIdentical)
{
    GaussianScene scene = test::tinySyntheticScene(3000, 5);
    Trajectory traj(TrajectoryKind::Dolly, scene, 1.5f);

    auto run = [&]() {
        ReuseUpdateSorter sorter;
        std::vector<std::vector<TileEntry>> final_tables;
        for (int f = 0; f < 10; ++f) {
            Camera cam = traj.cameraAt(f, test::smallRes());
            BinnedFrame frame = binFrame(scene, cam, 32);
            sorter.beginFrame(frame, f);
        }
        return sorter.tables().tables();
    };

    auto a = run();
    auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (size_t t = 0; t < a.size(); ++t) {
        ASSERT_EQ(a[t].size(), b[t].size()) << "tile " << t;
        for (size_t i = 0; i < a[t].size(); ++i) {
            EXPECT_EQ(a[t][i].id, b[t][i].id);
            EXPECT_EQ(a[t][i].depth, b[t][i].depth);
            EXPECT_EQ(a[t][i].valid, b[t][i].valid);
        }
    }
}

TEST(ReuseBoundedMemoryTest, TableSizeTracksSceneNotHistory)
{
    // After many frames the total table size must stay within one frame
    // of churn of the current instance count — reuse must not hoard
    // every Gaussian ever seen.
    GaussianScene scene = test::tinySyntheticScene(4000, 77);
    Trajectory traj(TrajectoryKind::Orbit, scene, 4.0f);
    ReuseUpdateSorter sorter;
    uint64_t last_instances = 0;
    for (int f = 0; f < 30; ++f) {
        Camera cam = traj.cameraAt(f, test::smallRes());
        BinnedFrame frame = binFrame(scene, cam, 32);
        sorter.beginFrame(frame, f);
        last_instances = frame.instances;
    }
    uint64_t total = sorter.tables().totalEntries();
    EXPECT_LE(total,
              last_instances + sorter.lastReport().outgoing_marked);
    EXPECT_GE(total, last_instances);
}

TEST(StrategyStateIsolationTest, StrategiesDoNotAliasFrameStorage)
{
    // Orderings returned by a strategy must remain valid and unchanged
    // even after the caller's BinnedFrame is destroyed or mutated.
    GaussianScene scene = test::blobScene(300);
    ReuseUpdateSorter sorter;
    std::vector<TileEntry> snapshot;
    int probe = -1;
    {
        Camera cam = test::frontCamera(5.0f);
        BinnedFrame frame = binFrame(scene, cam, 32);
        sorter.beginFrame(frame, 0);
        for (int t = 0; t < frame.grid.tileCount(); ++t) {
            if (!sorter.tileOrder(t).empty()) {
                probe = t;
                snapshot = sorter.tileOrder(t);
                break;
            }
        }
        // Mutate the frame before it dies.
        for (auto &tile : frame.tiles)
            tile.clear();
    }
    ASSERT_GE(probe, 0);
    const auto &after = sorter.tileOrder(probe);
    ASSERT_EQ(after.size(), snapshot.size());
    for (size_t i = 0; i < after.size(); ++i)
        EXPECT_EQ(after[i].id, snapshot[i].id);
}

} // namespace
} // namespace neo
