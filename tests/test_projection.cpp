/**
 * @file
 * Unit tests for EWA projection / feature extraction.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "gs/projection.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(ProjectionTest, CenteredGaussianProjectsToImageCenter)
{
    Camera cam = test::frontCamera(5.0f);
    Gaussian g = test::makeGaussian({0.0f, 0.0f, 0.0f});
    auto pg = projectGaussian(g, 7, cam);
    ASSERT_TRUE(pg.has_value());
    EXPECT_EQ(pg->id, 7u);
    EXPECT_NEAR(pg->mean2d.x, cam.width() / 2.0f, 0.5f);
    EXPECT_NEAR(pg->mean2d.y, cam.height() / 2.0f, 0.5f);
    EXPECT_NEAR(pg->depth, 5.0f, 1e-3f);
}

TEST(ProjectionTest, BehindCameraIsRejected)
{
    Camera cam = test::frontCamera(5.0f);
    Gaussian g = test::makeGaussian({0.0f, 0.0f, -10.0f});
    EXPECT_FALSE(projectGaussian(g, 0, cam).has_value());
}

TEST(ProjectionTest, IsotropicGaussianGivesCircularConic)
{
    Camera cam = test::frontCamera(5.0f);
    Gaussian g = test::makeGaussian({0.0f, 0.0f, 0.0f}, 0.2f);
    auto pg = projectGaussian(g, 0, cam);
    ASSERT_TRUE(pg.has_value());
    EXPECT_NEAR(pg->conic_a, pg->conic_c, 0.05f * pg->conic_a);
    EXPECT_NEAR(pg->conic_b, 0.0f, 0.05f * pg->conic_a);
}

TEST(ProjectionTest, RadiusShrinksWithDistance)
{
    Camera cam = test::frontCamera(5.0f);
    Gaussian near_g = test::makeGaussian({0.0f, 0.0f, -2.0f}, 0.2f);
    Gaussian far_g = test::makeGaussian({0.0f, 0.0f, 10.0f}, 0.2f);
    auto pn = projectGaussian(near_g, 0, cam);
    auto pf = projectGaussian(far_g, 1, cam);
    ASSERT_TRUE(pn && pf);
    EXPECT_GT(pn->radius_px, pf->radius_px);
}

TEST(ProjectionTest, RadiusGrowsWithScale)
{
    Camera cam = test::frontCamera(5.0f);
    auto small = projectGaussian(
        test::makeGaussian({0.0f, 0.0f, 0.0f}, 0.05f), 0, cam);
    auto large = projectGaussian(
        test::makeGaussian({0.0f, 0.0f, 0.0f}, 0.5f), 1, cam);
    ASSERT_TRUE(small && large);
    EXPECT_GT(large->radius_px, small->radius_px);
}

TEST(ProjectionTest, FalloffPeaksAtCenter)
{
    Camera cam = test::frontCamera(5.0f);
    auto pg = projectGaussian(
        test::makeGaussian({0.0f, 0.0f, 0.0f}, 0.3f), 0, cam);
    ASSERT_TRUE(pg.has_value());
    EXPECT_NEAR(pg->falloff(0.0f, 0.0f), 1.0f, 1e-5f);
    EXPECT_LT(pg->falloff(pg->radius_px / 2.0f, 0.0f), 1.0f);
    EXPECT_LT(pg->falloff(pg->radius_px, pg->radius_px),
              pg->falloff(pg->radius_px / 4.0f, 0.0f));
}

TEST(ProjectionTest, ConicMatchesCovarianceInverse)
{
    Camera cam = test::frontCamera(4.0f);
    Gaussian g = test::makeGaussian({0.3f, -0.2f, 0.0f}, 0.25f);
    Vec3 cam_pos = cam.toCameraSpace(g.position);
    Mat3 w = cam.worldToCamera().rotationBlock();
    Mat3 cov_cam = w * g.covariance() * w.transposed();
    Vec3 cov2d =
        ewaCovariance2d(cov_cam, cam_pos, cam.focalX(), cam.focalY());
    auto pg = projectGaussian(g, 0, cam);
    ASSERT_TRUE(pg.has_value());
    const float det = cov2d.x * cov2d.z - cov2d.y * cov2d.y;
    EXPECT_NEAR(pg->conic_a, cov2d.z / det, 1e-3f * std::fabs(pg->conic_a));
    EXPECT_NEAR(pg->conic_c, cov2d.x / det, 1e-3f * std::fabs(pg->conic_c));
    EXPECT_NEAR(pg->conic_b, -cov2d.y / det,
                1e-3f * std::fabs(pg->conic_a) + 1e-6f);
}

TEST(ProjectionTest, DilationBoundsConditioning)
{
    // Extremely thin Gaussians must still produce a valid (PSD) 2D
    // covariance thanks to the dilation term.
    Camera cam = test::frontCamera(5.0f);
    Gaussian g = test::makeGaussian({0.0f, 0.0f, 0.0f});
    g.scale = {0.5f, 1e-6f, 0.5f};
    auto pg = projectGaussian(g, 0, cam);
    ASSERT_TRUE(pg.has_value());
    EXPECT_GT(pg->radius_px, 0.0f);
}

TEST(ProjectionTest, OpacityAndColorCarriedThrough)
{
    Camera cam = test::frontCamera(5.0f);
    Gaussian g = test::makeGaussian({0.0f, 0.0f, 0.0f}, 0.1f, 0.7f,
                                    {0.9f, 0.1f, 0.2f});
    auto pg = projectGaussian(g, 0, cam);
    ASSERT_TRUE(pg.has_value());
    EXPECT_FLOAT_EQ(pg->opacity, 0.7f);
    EXPECT_NEAR(pg->color.x, 0.9f, 1e-4f);
    EXPECT_NEAR(pg->color.y, 0.1f, 1e-4f);
}

/** Parameterized sweep: projection must be stable across distances. */
class ProjectionDistanceTest : public ::testing::TestWithParam<float>
{
};

TEST_P(ProjectionDistanceTest, DepthEqualsCameraDistance)
{
    float d = GetParam();
    Camera cam = test::frontCamera(d);
    auto pg = projectGaussian(
        test::makeGaussian({0.0f, 0.0f, 0.0f}, 0.1f), 0, cam);
    ASSERT_TRUE(pg.has_value());
    EXPECT_NEAR(pg->depth, d, 1e-3f * d);
    EXPECT_GE(pg->radius_px, 1.0f);
}

INSTANTIATE_TEST_SUITE_P(Distances, ProjectionDistanceTest,
                         ::testing::Values(0.5f, 1.0f, 2.0f, 5.0f, 10.0f,
                                           50.0f));

} // namespace
} // namespace neo
