/**
 * @file
 * Tests for the event-driven Sorting Engine schedule (Fig. 12 micro-
 * architecture): correctness of the accounting, the benefit of double
 * buffering, core-count scaling until the channel saturates, and
 * consistency with the analytic NeoModel's bandwidth-bound assumption.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sorting_engine.h"

namespace neo
{
namespace
{

std::vector<uint32_t>
uniformTiles(size_t tiles, uint32_t len)
{
    return std::vector<uint32_t>(tiles, len);
}

TEST(SortingEngineTest, EmptyFrameIsFree)
{
    SortingEngineResult r = scheduleSortingEngine({});
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.chunks, 0u);
    SortingEngineResult r2 = scheduleSortingEngine({0, 0, 0});
    EXPECT_EQ(r2.cycles, 0u);
}

TEST(SortingEngineTest, ChunkAndByteAccounting)
{
    // One tile of 600 entries -> chunks of 256/256/88; bytes = 2 * 600*8.
    SortingEngineResult r = scheduleSortingEngine(uniformTiles(1, 600));
    EXPECT_EQ(r.chunks, 3u);
    EXPECT_EQ(r.bytes_moved, 2u * 600u * 8u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(SortingEngineTest, SingleChunkLatencyIsLoadSortStore)
{
    SortingEngineConfig cfg;
    cfg.cores = 1;
    cfg.channel_bytes_per_cycle = 64.0;
    SortingEngineResult r = scheduleSortingEngine(uniformTiles(1, 256), cfg);
    // load = ceil(2048/64) = 32, sort = 256, store = 32 -> 320 cycles.
    EXPECT_EQ(r.cycles, 320u);
}

TEST(SortingEngineTest, DoubleBufferingHidesMemoryLatency)
{
    SortingEngineConfig db;
    db.cores = 4;
    SortingEngineConfig sb = db;
    sb.double_buffered = false;
    auto tiles = uniformTiles(64, 2048);
    SortingEngineResult with = scheduleSortingEngine(tiles, db);
    SortingEngineResult without = scheduleSortingEngine(tiles, sb);
    EXPECT_LT(with.cycles, without.cycles);
    EXPECT_GT(with.core_busy_fraction, without.core_busy_fraction);
}

TEST(SortingEngineTest, CoreScalingGatedByChannelBandwidth)
{
    // Fig. 4's lesson reproduced at the engine level: at the edge-device
    // channel (51.2 B/cycle, i.e. 3.2 entries/cycle of load+store), even
    // 4 cores saturate the channel, so 4 -> 16 cores gains nothing; with
    // an ample channel the same sweep scales almost linearly.
    auto tiles = uniformTiles(256, 1024);

    SortingEngineConfig narrow4, narrow16;
    narrow4.cores = 4;
    narrow16.cores = 16;
    uint64_t n4 = scheduleSortingEngine(tiles, narrow4).cycles;
    uint64_t n16 = scheduleSortingEngine(tiles, narrow16).cycles;
    EXPECT_LT(static_cast<double>(n4) / n16, 1.15)
        << "cores cannot help when the channel is saturated";

    SortingEngineConfig wide4 = narrow4, wide16 = narrow16;
    wide4.channel_bytes_per_cycle = 1024.0;
    wide16.channel_bytes_per_cycle = 1024.0;
    uint64_t w4 = scheduleSortingEngine(tiles, wide4).cycles;
    uint64_t w16 = scheduleSortingEngine(tiles, wide16).cycles;
    EXPECT_GT(static_cast<double>(w4) / w16, 2.5)
        << "with bandwidth to spare, 4 -> 16 cores must scale";
}

TEST(SortingEngineTest, ChannelBoundWhenBandwidthIsScarce)
{
    SortingEngineConfig cfg;
    cfg.channel_bytes_per_cycle = 4.0; // starved channel
    auto tiles = uniformTiles(64, 2048);
    SortingEngineResult r = scheduleSortingEngine(tiles, cfg);
    EXPECT_GT(r.channel_busy_fraction, 0.9);
    EXPECT_LT(r.core_busy_fraction, 0.5);
    // Makespan is within 25% of the pure-bandwidth lower bound.
    double bw_bound = r.bytes_moved / cfg.channel_bytes_per_cycle;
    EXPECT_LT(r.cycles, 1.25 * bw_bound);
    EXPECT_GE(static_cast<double>(r.cycles), bw_bound * 0.99);
}

TEST(SortingEngineTest, ComputeBoundWhenBandwidthIsAmple)
{
    SortingEngineConfig cfg;
    cfg.cores = 2;
    cfg.channel_bytes_per_cycle = 1024.0; // effectively free memory
    auto tiles = uniformTiles(32, 4096);
    SortingEngineResult r = scheduleSortingEngine(tiles, cfg);
    EXPECT_GT(r.core_busy_fraction, 0.8);
    // Lower bound: total entries / (cores * rate).
    double compute_bound = 32.0 * 4096.0 / (2.0 * 1.0);
    EXPECT_GE(static_cast<double>(r.cycles), compute_bound * 0.99);
    EXPECT_LT(static_cast<double>(r.cycles), compute_bound * 1.3);
}

TEST(SortingEngineTest, SecondsConversionUsesFrequency)
{
    SortingEngineResult r = scheduleSortingEngine(uniformTiles(4, 512));
    EXPECT_NEAR(r.seconds(1.0), r.cycles * 1e-9, 1e-15);
    EXPECT_NEAR(r.seconds(2.0), r.cycles * 0.5e-9, 1e-15);
}

TEST(SortingEngineTest, AgreesWithAnalyticBandwidthModel)
{
    // At the paper's operating point (16 cores, 51.2 B/cycle channel,
    // QHD-scale tables) the engine is bandwidth-bound, which is exactly
    // what the analytic NeoModel assumes when it takes
    // max(compute, memory). Verify the schedule's makespan is close to
    // the bandwidth lower bound.
    SortingEngineConfig cfg; // defaults = Table 1
    auto tiles = uniformTiles(900, 1600); // ~1.4M entries at 64-px tiles
    SortingEngineResult r = scheduleSortingEngine(tiles, cfg);
    double bw_bound = r.bytes_moved / cfg.channel_bytes_per_cycle;
    EXPECT_LT(static_cast<double>(r.cycles), 1.2 * bw_bound);
}

TEST(SortingEngineTest, RaggedTilesScheduleCompletely)
{
    std::vector<uint32_t> tiles{1, 0, 255, 256, 257, 5000, 3, 0, 77};
    SortingEngineResult r = scheduleSortingEngine(tiles);
    uint64_t entries = 1 + 255 + 256 + 257 + 5000 + 3 + 77;
    EXPECT_EQ(r.bytes_moved, 2u * entries * 8u);
    // chunks: 1 + 1 + 1 + 2 + 20 + 1 + 1 = 27
    EXPECT_EQ(r.chunks, 27u);
}

} // namespace
} // namespace neo
