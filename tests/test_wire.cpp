/**
 * @file
 * Wire-codec isolation tests for the socket front end: header/payload
 * round-trips for every message type, the full malformed-frame taxonomy
 * (each class answered with its typed error), resync-by-magic-scan after
 * framing loss, torn delivery at every split offset, and a seeded fuzz
 * loop (random splits + mutations) asserting the decoder is total —
 * no crash, no over-read, bounded buffering — on arbitrary bytes.
 * No sockets anywhere: the codec is pure.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/net/wire.h"

namespace neo::serve::net::test
{
namespace
{

/** Drain every frame/error event out of @p dec. */
struct Events
{
    std::vector<DecodedFrame> frames;
    std::vector<WireError> errors;
};

Events
drain(FrameDecoder &dec)
{
    Events ev;
    DecodedFrame frame;
    WireError error = WireError::None;
    for (;;) {
        const DecodeStatus st = dec.next(&frame, &error);
        if (st == DecodeStatus::NeedMore)
            return ev;
        if (st == DecodeStatus::Frame)
            ev.frames.push_back(frame);
        else
            ev.errors.push_back(error);
    }
}

std::vector<uint8_t>
submitFrameBytes(uint32_t session, uint64_t frame)
{
    std::vector<uint8_t> bytes;
    SubmitFrameReq req;
    req.session_id = session;
    req.frame_index = frame;
    encodeSubmitFrame(bytes, req);
    return bytes;
}

// --- CRC ---------------------------------------------------------------

TEST(WireCrcTest, MatchesIeeeReferenceVector)
{
    const char *check = "123456789";
    EXPECT_EQ(crc32(check, std::strlen(check)), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

// --- Round-trips -------------------------------------------------------

TEST(WireRoundTripTest, OpenSession)
{
    OpenSessionReq in;
    in.trajectory_kind = 1;
    in.speed = 1.75f;
    in.width = 640;
    in.height = 384;
    std::vector<uint8_t> bytes;
    encodeOpenSession(bytes, in);

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    const Events ev = drain(dec);
    ASSERT_EQ(ev.frames.size(), 1u);
    EXPECT_TRUE(ev.errors.empty());
    EXPECT_EQ(ev.frames[0].type, MsgType::OpenSession);

    OpenSessionReq out;
    ASSERT_TRUE(decodeOpenSession(ev.frames[0].payload, &out));
    EXPECT_EQ(out.trajectory_kind, in.trajectory_kind);
    EXPECT_FLOAT_EQ(out.speed, in.speed);
    EXPECT_EQ(out.width, in.width);
    EXPECT_EQ(out.height, in.height);
}

TEST(WireRoundTripTest, SubmitReplyCarriesFullOutcome)
{
    SubmitReply in;
    in.accepted = true;
    in.coalesced = true;
    in.stepped = true;
    in.rendered = true;
    in.deadline_missed = true;
    in.retry_after_frames = -3;
    in.request = 41;
    in.frame_hash = 0xDEADBEEFCAFEF00Dull;
    in.resolution_drop = 2;
    in.state = 1;
    in.watchdog_stage = -1;
    in.faults = 7;
    in.rebuilds = 2;
    std::vector<uint8_t> bytes;
    encodeSubmitReply(bytes, in);

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    const Events ev = drain(dec);
    ASSERT_EQ(ev.frames.size(), 1u);

    SubmitReply out;
    ASSERT_TRUE(decodeSubmitReply(ev.frames[0].payload, &out));
    EXPECT_EQ(out.accepted, in.accepted);
    EXPECT_EQ(out.coalesced, in.coalesced);
    EXPECT_EQ(out.stepped, in.stepped);
    EXPECT_EQ(out.rendered, in.rendered);
    EXPECT_EQ(out.deadline_missed, in.deadline_missed);
    EXPECT_EQ(out.retry_after_frames, in.retry_after_frames);
    EXPECT_EQ(out.request, in.request);
    EXPECT_EQ(out.frame_hash, in.frame_hash);
    EXPECT_EQ(out.resolution_drop, in.resolution_drop);
    EXPECT_EQ(out.state, in.state);
    EXPECT_EQ(out.watchdog_stage, in.watchdog_stage);
    EXPECT_EQ(out.faults, in.faults);
    EXPECT_EQ(out.rebuilds, in.rebuilds);
}

TEST(WireRoundTripTest, StatsReplyCarriesEveryCounter)
{
    StatsReply in;
    in.session_id = 5;
    in.state = 2;
    in.queue_depth = 3;
    in.stats.submitted = 100;
    in.stats.accepted = 90;
    in.stats.rejected = 10;
    in.stats.dropped_oldest = 4;
    in.stats.coalesced = 5;
    in.stats.dropped_stale = 6;
    in.stats.backoff_skips = 7;
    in.stats.rendered = 80;
    in.stats.deadline_misses = 8;
    in.stats.degraded_frames = 9;
    in.stats.faults = 1;
    in.stats.watchdog_trips = 2;
    in.stats.quarantines = 3;
    in.stats.recoveries = 2;
    std::vector<uint8_t> bytes;
    encodeStatsReply(bytes, in);

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    const Events ev = drain(dec);
    ASSERT_EQ(ev.frames.size(), 1u);

    StatsReply out;
    ASSERT_TRUE(decodeStatsReply(ev.frames[0].payload, &out));
    EXPECT_EQ(out.session_id, in.session_id);
    EXPECT_EQ(out.state, in.state);
    EXPECT_EQ(out.queue_depth, in.queue_depth);
    EXPECT_EQ(out.stats.submitted, in.stats.submitted);
    EXPECT_EQ(out.stats.rendered, in.stats.rendered);
    EXPECT_EQ(out.stats.quarantines, in.stats.quarantines);
    EXPECT_EQ(out.stats.recoveries, in.stats.recoveries);
}

TEST(WireRoundTripTest, ErrorAndEmptyFrames)
{
    std::vector<uint8_t> bytes;
    ErrorReply err;
    err.code = static_cast<uint16_t>(WireError::CrcMismatch);
    err.detail = 0x02;
    encodeError(bytes, err);
    encodeEmpty(bytes, MsgType::ShutdownAck);

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    const Events ev = drain(dec);
    ASSERT_EQ(ev.frames.size(), 2u);
    EXPECT_EQ(ev.frames[0].type, MsgType::Error);
    EXPECT_EQ(ev.frames[1].type, MsgType::ShutdownAck);
    EXPECT_TRUE(ev.frames[1].payload.empty());

    ErrorReply out;
    ASSERT_TRUE(decodeError(ev.frames[0].payload, &out));
    EXPECT_EQ(out.code, err.code);
    EXPECT_EQ(out.detail, err.detail);
}

// --- Malformed-frame taxonomy ------------------------------------------

TEST(WireMalformedTest, BadMagicEmitsOneErrorThenResyncs)
{
    std::vector<uint8_t> bytes = {'j', 'u', 'n', 'k', 0x00, 0x11,
                                  0x22, 0x33, 0x44, 0x55};
    const std::vector<uint8_t> good = submitFrameBytes(1, 2);
    bytes.insert(bytes.end(), good.begin(), good.end());

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    const Events ev = drain(dec);
    ASSERT_EQ(ev.errors.size(), 1u);
    EXPECT_EQ(ev.errors[0], WireError::BadMagic);
    ASSERT_EQ(ev.frames.size(), 1u);
    EXPECT_EQ(ev.frames[0].type, MsgType::SubmitFrame);
}

TEST(WireMalformedTest, BadVersionRejectedAndSkipped)
{
    std::vector<uint8_t> bytes = submitFrameBytes(1, 2);
    bytes[4] = 0x7F; // version low byte
    const std::vector<uint8_t> good = submitFrameBytes(3, 4);
    bytes.insert(bytes.end(), good.begin(), good.end());

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    const Events ev = drain(dec);
    ASSERT_EQ(ev.errors.size(), 1u);
    EXPECT_EQ(ev.errors[0], WireError::BadVersion);
    ASSERT_EQ(ev.frames.size(), 1u);
    SubmitFrameReq out;
    ASSERT_TRUE(decodeSubmitFrame(ev.frames[0].payload, &out));
    EXPECT_EQ(out.session_id, 3u);
}

TEST(WireMalformedTest, OversizedLengthRejectedWithoutAllocating)
{
    std::vector<uint8_t> bytes = submitFrameBytes(1, 2);
    bytes[8] = 0xFF; // length field: declare ~4GB
    bytes[9] = 0xFF;
    bytes[10] = 0xFF;
    bytes[11] = 0xFF;

    FrameDecoder dec(4096);
    dec.feed(bytes.data(), bytes.size());
    const Events ev = drain(dec);
    ASSERT_EQ(ev.errors.size(), 1u);
    EXPECT_EQ(ev.errors[0], WireError::Oversized);
    EXPECT_TRUE(ev.frames.empty());
    // The decoder must not have buffered toward the declared length.
    EXPECT_LT(dec.pendingBytes(), bytes.size());
}

TEST(WireMalformedTest, CrcMismatchRejectsFrameKeepsStream)
{
    std::vector<uint8_t> bytes = submitFrameBytes(1, 2);
    bytes[kWireHeaderSize] ^= 0x01; // flip one payload bit
    const std::vector<uint8_t> good = submitFrameBytes(3, 4);
    bytes.insert(bytes.end(), good.begin(), good.end());

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    const Events ev = drain(dec);
    ASSERT_EQ(ev.errors.size(), 1u);
    EXPECT_EQ(ev.errors[0], WireError::CrcMismatch);
    ASSERT_EQ(ev.frames.size(), 1u);
    SubmitFrameReq out;
    ASSERT_TRUE(decodeSubmitFrame(ev.frames[0].payload, &out));
    EXPECT_EQ(out.session_id, 3u) << "stream must continue past the "
                                     "rejected frame";
}

TEST(WireMalformedTest, UnknownTypeRejectedKeepsStream)
{
    std::vector<uint8_t> bytes;
    const uint8_t payload[2] = {0xAA, 0xBB};
    encodeFrame(bytes, static_cast<MsgType>(0x42), payload, 2);
    const std::vector<uint8_t> good = submitFrameBytes(3, 4);
    bytes.insert(bytes.end(), good.begin(), good.end());

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    const Events ev = drain(dec);
    ASSERT_EQ(ev.errors.size(), 1u);
    EXPECT_EQ(ev.errors[0], WireError::UnknownType);
    ASSERT_EQ(ev.frames.size(), 1u);
    EXPECT_EQ(ev.frames[0].type, MsgType::SubmitFrame);
}

TEST(WireMalformedTest, TruncatedFrameStaysPendingNeverDecodes)
{
    const std::vector<uint8_t> bytes = submitFrameBytes(1, 2);
    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size() - 3);
    const Events ev = drain(dec);
    EXPECT_TRUE(ev.frames.empty());
    EXPECT_TRUE(ev.errors.empty());
    EXPECT_EQ(dec.pendingBytes(), bytes.size() - 3)
        << "a partial frame is held, not consumed — the connection "
           "progress timeout owns truncation";
}

TEST(WireMalformedTest, BadPayloadsRejectedByTypedDecoders)
{
    // Wrong size.
    OpenSessionReq open;
    EXPECT_FALSE(decodeOpenSession({0x01, 0x02}, &open));
    // Out-of-range fields (kind, speed, resolution).
    std::vector<uint8_t> bytes;
    OpenSessionReq bad;
    bad.trajectory_kind = 9;
    bad.width = 640;
    bad.height = 384;
    encodeOpenSession(bytes, bad);
    std::vector<uint8_t> payload(bytes.begin() + kWireHeaderSize,
                                 bytes.end());
    EXPECT_FALSE(decodeOpenSession(payload, &open));

    bytes.clear();
    bad.trajectory_kind = 0;
    bad.width = 2; // below the 16px floor
    encodeOpenSession(bytes, bad);
    payload.assign(bytes.begin() + kWireHeaderSize, bytes.end());
    EXPECT_FALSE(decodeOpenSession(payload, &open));

    // Trailing bytes are rejected, not ignored.
    SubmitFrameReq submit;
    std::vector<uint8_t> extra(13, 0);
    EXPECT_FALSE(decodeSubmitFrame(extra, &submit));
}

// --- Torn delivery -----------------------------------------------------

TEST(WireTornDeliveryTest, EverySplitOffsetReassembles)
{
    std::vector<uint8_t> bytes = submitFrameBytes(7, 99);
    const std::vector<uint8_t> second = submitFrameBytes(8, 100);
    bytes.insert(bytes.end(), second.begin(), second.end());

    for (size_t split = 1; split < bytes.size(); ++split) {
        FrameDecoder dec;
        dec.feed(bytes.data(), split);
        Events ev = drain(dec);
        dec.feed(bytes.data() + split, bytes.size() - split);
        const Events rest = drain(dec);
        ev.frames.insert(ev.frames.end(), rest.frames.begin(),
                         rest.frames.end());
        ASSERT_EQ(ev.frames.size(), 2u) << "split at " << split;
        EXPECT_TRUE(ev.errors.empty() && rest.errors.empty());
        SubmitFrameReq out;
        ASSERT_TRUE(decodeSubmitFrame(ev.frames[1].payload, &out));
        EXPECT_EQ(out.session_id, 8u);
    }
}

TEST(WireTornDeliveryTest, ByteAtATimeAcrossGarbageAndResync)
{
    // garbage (with a fake partial magic) | good | garbage | good
    std::vector<uint8_t> bytes = {'N', 'E', 'x', 0x00, 0xFF};
    const std::vector<uint8_t> a = submitFrameBytes(1, 1);
    bytes.insert(bytes.end(), a.begin(), a.end());
    bytes.push_back('N'); // partial magic directly before real magic
    const std::vector<uint8_t> b = submitFrameBytes(2, 2);
    bytes.insert(bytes.end(), b.begin(), b.end());

    FrameDecoder dec;
    Events all;
    for (uint8_t byte : bytes) {
        dec.feed(&byte, 1);
        const Events ev = drain(dec);
        all.frames.insert(all.frames.end(), ev.frames.begin(),
                          ev.frames.end());
        all.errors.insert(all.errors.end(), ev.errors.begin(),
                          ev.errors.end());
    }
    ASSERT_EQ(all.frames.size(), 2u);
    SubmitFrameReq out;
    ASSERT_TRUE(decodeSubmitFrame(all.frames[1].payload, &out));
    EXPECT_EQ(out.session_id, 2u);
}

// --- Fuzz --------------------------------------------------------------

TEST(WireFuzzTest, RandomSplitsAndMutationsNeverBreakTheDecoder)
{
    Rng rng(2026);
    for (int round = 0; round < 400; ++round) {
        // A run of valid frames...
        std::vector<uint8_t> bytes;
        const int n = 1 + static_cast<int>(rng.next() % 4);
        for (int i = 0; i < n; ++i) {
            const uint64_t pick = rng.next() % 3;
            if (pick == 0) {
                bytes.insert(bytes.end(), 0, 0);
                OpenSessionReq req;
                req.trajectory_kind =
                    static_cast<uint8_t>(rng.next() % 3);
                req.speed = 1.0f;
                req.width = 256;
                req.height = 192;
                encodeOpenSession(bytes, req);
            } else if (pick == 1) {
                const auto f = submitFrameBytes(
                    static_cast<uint32_t>(rng.next()),
                    rng.next());
                bytes.insert(bytes.end(), f.begin(), f.end());
            } else {
                encodeEmpty(bytes, MsgType::Shutdown);
            }
        }
        // ...mutated: flip bytes, insert garbage, truncate.
        const int mutations = static_cast<int>(rng.next() % 6);
        for (int m = 0; m < mutations && !bytes.empty(); ++m) {
            const uint64_t op = rng.next() % 3;
            const size_t at = rng.next() % bytes.size();
            if (op == 0) {
                bytes[at] ^= static_cast<uint8_t>(1 + rng.next() % 255);
            } else if (op == 1) {
                bytes.insert(bytes.begin() + static_cast<ptrdiff_t>(at),
                             static_cast<uint8_t>(rng.next()));
            } else {
                bytes.resize(at);
            }
        }

        // Feed in random-size chunks; the decoder must stay total.
        FrameDecoder dec(4096);
        size_t off = 0;
        uint64_t events = 0;
        while (off < bytes.size()) {
            const size_t chunk = std::min<size_t>(
                1 + rng.next() % 23, bytes.size() - off);
            dec.feed(bytes.data() + off, chunk);
            off += chunk;
            const Events ev = drain(dec);
            events += ev.frames.size() + ev.errors.size();
            for (const DecodedFrame &f : ev.frames) {
                // Whatever decodes must re-encode (the payload survived
                // CRC, so it is exactly what a peer sent).
                EXPECT_LE(f.payload.size(), 4096u);
            }
        }
        // Bounded buffering: at most one partial frame may be pending.
        EXPECT_LE(dec.pendingBytes(), kWireHeaderSize + 4096u);
        EXPECT_EQ(dec.framesDecoded() + dec.errorsEmitted(), events);
    }
}

TEST(WireFuzzTest, PureGarbageNeverDecodesAFrame)
{
    Rng rng(77);
    FrameDecoder dec(4096);
    for (int i = 0; i < 200; ++i) {
        uint8_t chunk[64];
        for (uint8_t &b : chunk)
            b = static_cast<uint8_t>(rng.next());
        dec.feed(chunk, sizeof(chunk));
        drain(dec);
    }
    // 12800 random bytes: odds of a valid frame (magic + version + crc)
    // are astronomically small — any decode here is a validation bug.
    EXPECT_EQ(dec.framesDecoded(), 0u);
    EXPECT_LE(dec.pendingBytes(), kWireHeaderSize + 4096u);
}

} // namespace
} // namespace neo::serve::net::test
