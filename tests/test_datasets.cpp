/**
 * @file
 * Unit tests for the dataset preset helpers, focused on the environment
 * knob parsing: NEO_SCENE_SCALE and NEO_BENCH_FRAMES must consume their
 * whole value (regressions: atof read "2x" as 2, atoi read "10garbage"
 * as 10) and fall back to the default on junk or out-of-range input.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "scene/datasets.h"

namespace neo::test
{
namespace
{

/** Save/restore one env var for the duration of a test body. */
class ScopedEnv
{
  public:
    explicit ScopedEnv(const char *name) : name_(name)
    {
        const char *cur = std::getenv(name);
        had_ = cur != nullptr;
        saved_ = cur ? cur : "";
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, saved_.c_str(), 1);
        else
            unsetenv(name_);
    }
    void set(const char *value) { setenv(name_, value, 1); }
    void unset() { unsetenv(name_); }

  private:
    const char *name_;
    bool had_ = false;
    std::string saved_;
};

TEST(BenchSceneScale, UnsetAndValidValues)
{
    ScopedEnv env("NEO_SCENE_SCALE");
    env.unset();
    EXPECT_DOUBLE_EQ(benchSceneScale(), 1.0);
    env.set("2");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 2.0);
    env.set("0.25");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 0.25);
    env.set("4");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 4.0);
}

TEST(BenchSceneScale, TrailingJunkFallsBackToDefault)
{
    // Regression: atof("2x") == 2 silently doubled the scene.
    ScopedEnv env("NEO_SCENE_SCALE");
    env.set("2x");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 1.0);
    env.set("1.5 ");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 1.0);
    env.set("scale");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 1.0);
    env.set("");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 1.0);
}

TEST(BenchSceneScale, OutOfRangeFallsBackToDefault)
{
    ScopedEnv env("NEO_SCENE_SCALE");
    env.set("0");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 1.0);
    env.set("-1");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 1.0);
    env.set("4.5");
    EXPECT_DOUBLE_EQ(benchSceneScale(), 1.0);
}

TEST(BenchFrameCount, UnsetAndValidValues)
{
    ScopedEnv env("NEO_BENCH_FRAMES");
    env.unset();
    EXPECT_EQ(benchFrameCount(30), 30);
    env.set("10");
    EXPECT_EQ(benchFrameCount(30), 10);
    env.set("2");
    EXPECT_EQ(benchFrameCount(30), 2);
}

TEST(BenchFrameCount, TrailingJunkFallsBackToDefault)
{
    // Regression: atoi("10garbage") == 10 silently honoured the prefix.
    ScopedEnv env("NEO_BENCH_FRAMES");
    env.set("10garbage");
    EXPECT_EQ(benchFrameCount(30), 30);
    env.set("ten");
    EXPECT_EQ(benchFrameCount(30), 30);
    env.set("10.5");
    EXPECT_EQ(benchFrameCount(30), 30);
    env.set("");
    EXPECT_EQ(benchFrameCount(30), 30);
}

TEST(BenchFrameCount, OutOfRangeFallsBackToDefault)
{
    ScopedEnv env("NEO_BENCH_FRAMES");
    env.set("1");
    EXPECT_EQ(benchFrameCount(30), 30);
    env.set("0");
    EXPECT_EQ(benchFrameCount(30), 30);
    env.set("-5");
    EXPECT_EQ(benchFrameCount(30), 30);
    env.set("100001");
    EXPECT_EQ(benchFrameCount(30), 30);
}

TEST(BuildScene, ScaleFloorsAtMinimumCount)
{
    // buildScene clamps the scaled count at 1000 so a tiny scale still
    // produces a usable scene.
    ScenePreset preset = tanksAndTemplesPresets().front();
    GaussianScene scene = buildScene(preset, 1e-6);
    EXPECT_GE(scene.size(), 1000u);
}

} // namespace
} // namespace neo::test
