/**
 * @file
 * Unit tests of the serving layer's policy pieces: drop-policy parsing,
 * QoS deadline derivation, the NEO_SERVER_* environment knobs (validated
 * full-string parses), the deadline-driven BudgetController severity
 * ladder, and the rolling-median StageWatchdog.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/qos.h"
#include "serve/watchdog.h"

namespace neo::serve::test
{
namespace
{

// --- Drop policies -----------------------------------------------------

TEST(DropPolicyTest, NamesRoundTrip)
{
    for (DropPolicy p :
         {DropPolicy::DropOldest, DropPolicy::RejectBackoff,
          DropPolicy::CoalesceLatest}) {
        DropPolicy parsed = DropPolicy::DropOldest;
        EXPECT_TRUE(parseDropPolicy(dropPolicyName(p), &parsed));
        EXPECT_EQ(parsed, p);
    }
}

TEST(DropPolicyTest, ParseRejectsUnknownAndKeepsOutput)
{
    DropPolicy p = DropPolicy::CoalesceLatest;
    EXPECT_FALSE(parseDropPolicy("newest-wins", &p));
    EXPECT_FALSE(parseDropPolicy("", &p));
    EXPECT_FALSE(parseDropPolicy(nullptr, &p));
    EXPECT_EQ(p, DropPolicy::CoalesceLatest);
}

// --- QosTarget ---------------------------------------------------------

TEST(QosTargetTest, ExplicitDeadlineOverridesTargetFps)
{
    QosTarget q;
    EXPECT_EQ(q.frameDeadlineMs(), 0.0);
    q.target_fps = 50.0;
    EXPECT_DOUBLE_EQ(q.frameDeadlineMs(), 20.0);
    q.deadline_ms = 5.0;
    EXPECT_DOUBLE_EQ(q.frameDeadlineMs(), 5.0);
}

// --- NEO_SERVER_* environment knobs ------------------------------------

class ServerEnvTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        for (const char *name : kKnobs) {
            const char *v = std::getenv(name);
            saved_.emplace_back(name, v ? std::string(v) : std::string());
            unsetenv(name);
        }
    }

    void TearDown() override
    {
        for (const auto &[name, value] : saved_) {
            if (value.empty())
                unsetenv(name);
            else
                setenv(name, value.c_str(), 1);
        }
    }

    static constexpr const char *kKnobs[] = {
        "NEO_SERVER_MAX_SESSIONS",     "NEO_SERVER_QUEUE_CAP",
        "NEO_SERVER_DROP_POLICY",      "NEO_SERVER_DEADLINE_MS",
        "NEO_SERVER_MAX_STALENESS",    "NEO_SERVER_RESTORE_FRAMES",
        "NEO_SERVER_WATCHDOG_FACTOR",  "NEO_SERVER_WATCHDOG_FLOOR_MS",
        "NEO_SERVER_QUARANTINE_RETRIES", "NEO_SERVER_BACKOFF_CAP"};

    std::vector<std::pair<const char *, std::string>> saved_;
};

TEST_F(ServerEnvTest, DefaultsWithNoEnvironment)
{
    const ServerConfig cfg = serverConfigFromEnv();
    const ServerConfig ref;
    EXPECT_EQ(cfg.max_sessions, ref.max_sessions);
    EXPECT_EQ(cfg.default_qos.queue_capacity,
              ref.default_qos.queue_capacity);
    EXPECT_EQ(cfg.default_qos.drop_policy, ref.default_qos.drop_policy);
    EXPECT_EQ(cfg.default_qos.deadline_ms, ref.default_qos.deadline_ms);
    EXPECT_EQ(cfg.quarantine_max_failures, ref.quarantine_max_failures);
}

TEST_F(ServerEnvTest, ValidValuesApply)
{
    setenv("NEO_SERVER_MAX_SESSIONS", "3", 1);
    setenv("NEO_SERVER_QUEUE_CAP", "2", 1);
    setenv("NEO_SERVER_DROP_POLICY", "coalesce-latest", 1);
    setenv("NEO_SERVER_DEADLINE_MS", "16.6", 1);
    setenv("NEO_SERVER_MAX_STALENESS", "5", 1);
    setenv("NEO_SERVER_RESTORE_FRAMES", "7", 1);
    setenv("NEO_SERVER_WATCHDOG_FACTOR", "4.0", 1);
    setenv("NEO_SERVER_WATCHDOG_FLOOR_MS", "2.5", 1);
    setenv("NEO_SERVER_QUARANTINE_RETRIES", "5", 1);
    setenv("NEO_SERVER_BACKOFF_CAP", "32", 1);

    const ServerConfig cfg = serverConfigFromEnv();
    EXPECT_EQ(cfg.max_sessions, 3u);
    EXPECT_EQ(cfg.default_qos.queue_capacity, 2u);
    EXPECT_EQ(cfg.default_qos.drop_policy, DropPolicy::CoalesceLatest);
    EXPECT_DOUBLE_EQ(cfg.default_qos.deadline_ms, 16.6);
    EXPECT_EQ(cfg.default_qos.max_staleness, 5);
    EXPECT_EQ(cfg.default_qos.restore_after, 7);
    EXPECT_DOUBLE_EQ(cfg.watchdog_factor, 4.0);
    EXPECT_DOUBLE_EQ(cfg.watchdog_floor_ms, 2.5);
    EXPECT_EQ(cfg.quarantine_max_failures, 5);
    EXPECT_EQ(cfg.backoff_cap, 32);
}

TEST_F(ServerEnvTest, MalformedOrOutOfRangeValuesKeepDefaults)
{
    const ServerConfig ref;
    // Trailing garbage: the full-string contract must reject "8x", not
    // silently parse the prefix.
    setenv("NEO_SERVER_MAX_SESSIONS", "8x", 1);
    setenv("NEO_SERVER_QUEUE_CAP", "0", 1); // below range
    setenv("NEO_SERVER_DROP_POLICY", "newest-wins", 1);
    setenv("NEO_SERVER_DEADLINE_MS", "fast", 1);
    setenv("NEO_SERVER_WATCHDOG_FACTOR", "1.0", 1); // below range
    setenv("NEO_SERVER_QUARANTINE_RETRIES", "-1", 1);

    const ServerConfig cfg = serverConfigFromEnv();
    EXPECT_EQ(cfg.max_sessions, ref.max_sessions);
    EXPECT_EQ(cfg.default_qos.queue_capacity,
              ref.default_qos.queue_capacity);
    EXPECT_EQ(cfg.default_qos.drop_policy, ref.default_qos.drop_policy);
    EXPECT_EQ(cfg.default_qos.deadline_ms, ref.default_qos.deadline_ms);
    EXPECT_DOUBLE_EQ(cfg.watchdog_factor, ref.watchdog_factor);
    EXPECT_EQ(cfg.quarantine_max_failures, ref.quarantine_max_failures);
}

// --- BudgetController --------------------------------------------------

StageTimings
frameOf(double total_ms)
{
    StageTimings t;
    t.raster_ms = total_ms;
    return t;
}

TEST(BudgetControllerTest, NoDeadlineNeverDegrades)
{
    BudgetController ctl;
    ctl.configure(QosTarget{}); // deadline off
    for (int i = 0; i < 10; ++i)
        ctl.record(frameOf(1e6));
    const DegradePlan p = ctl.plan();
    EXPECT_EQ(p.resolution_drop, 0);
    EXPECT_FALSE(p.skip_sorter_update);
    EXPECT_EQ(ctl.severity(), 0);
}

TEST(BudgetControllerTest, MissesClimbTheLadderToSorterSkip)
{
    QosTarget q;
    q.deadline_ms = 10.0;
    q.max_resolution_drop = 2;
    BudgetController ctl;
    ctl.configure(q);

    ctl.record(frameOf(50.0));
    EXPECT_EQ(ctl.plan().resolution_drop, 1);
    EXPECT_FALSE(ctl.plan().skip_sorter_update);
    ctl.record(frameOf(50.0));
    EXPECT_EQ(ctl.plan().resolution_drop, 2);
    ctl.record(frameOf(50.0));
    EXPECT_EQ(ctl.plan().resolution_drop, 2) << "tier capped";
    EXPECT_TRUE(ctl.plan().skip_sorter_update);
    ctl.record(frameOf(50.0));
    EXPECT_EQ(ctl.severity(), 3) << "severity saturates at max";
    EXPECT_EQ(ctl.degradations(), 3u);
}

TEST(BudgetControllerTest, PredictedMissDegradesBeforeTheActualMiss)
{
    QosTarget q;
    q.deadline_ms = 10.0;
    BudgetController ctl;
    ctl.configure(q);
    ctl.record(frameOf(30.0)); // miss; EMA = 30
    EXPECT_EQ(ctl.severity(), 1);
    // 5 ms is on time, but the EMA (17.5) still predicts a miss: hold.
    ctl.record(frameOf(5.0));
    EXPECT_EQ(ctl.severity(), 2);
    EXPECT_GT(ctl.predictedMs(), q.deadline_ms);
}

TEST(BudgetControllerTest, OnTimeStreakRestoresOneStepAtATime)
{
    QosTarget q;
    q.deadline_ms = 10.0;
    q.restore_after = 3;
    BudgetController ctl;
    ctl.configure(q);

    ctl.record(frameOf(50.0));
    ctl.record(frameOf(50.0));
    EXPECT_EQ(ctl.severity(), 2);

    // Fast frames first drain the EMA (the predictor may climb one more
    // step before it clears the deadline), then each restore_after
    // streak steps severity down by exactly one.
    std::vector<int> trace;
    for (int i = 0; i < 30 && ctl.severity() > 0; ++i) {
        ctl.record(frameOf(1.0));
        trace.push_back(ctl.severity());
    }
    EXPECT_EQ(ctl.severity(), 0);
    for (size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i - 1] - trace[i], -1) << "step " << i;
    // Once recovery starts, severity only falls one step per streak.
    int peak = 0;
    for (int s : trace)
        peak = std::max(peak, s);
    EXPECT_EQ(ctl.restores(), static_cast<uint64_t>(peak));
    for (size_t i = 1; i < trace.size(); ++i) {
        if (trace[i] < trace[i - 1]) {
            EXPECT_EQ(trace[i - 1] - trace[i], 1) << "step " << i;
        }
    }
}

TEST(BudgetControllerTest, ResetClearsSeverityAndPrediction)
{
    QosTarget q;
    q.deadline_ms = 10.0;
    BudgetController ctl;
    ctl.configure(q);
    ctl.record(frameOf(100.0));
    EXPECT_GT(ctl.severity(), 0);
    ctl.reset();
    EXPECT_EQ(ctl.severity(), 0);
    EXPECT_EQ(ctl.predictedMs(), 0.0);
}

// --- StageWatchdog -----------------------------------------------------

StageWatchdog::Config
wdConfig(double factor = 4.0, double floor_ms = 1.0, int warmup = 3)
{
    StageWatchdog::Config c;
    c.factor = factor;
    c.floor_ms = floor_ms;
    c.warmup = warmup;
    return c;
}

TEST(StageWatchdogTest, NoTripDuringWarmup)
{
    StageWatchdog wd;
    wd.configure(wdConfig());
    // The very first samples are wild, but the tripwire is not armed.
    EXPECT_FALSE(wd.observe(StageWatchdog::Bin, 1000.0));
    EXPECT_FALSE(wd.observe(StageWatchdog::Bin, 0.001));
    EXPECT_EQ(wd.trips(), 0u);
}

TEST(StageWatchdogTest, TripsOnFactorTimesMedianAboveFloor)
{
    StageWatchdog wd;
    wd.configure(wdConfig(/*factor=*/4.0, /*floor_ms=*/1.0,
                          /*warmup=*/3));
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(wd.observe(StageWatchdog::Sort, 2.0));
    EXPECT_FALSE(wd.observe(StageWatchdog::Sort, 7.9)) << "below 4x";
    EXPECT_TRUE(wd.observe(StageWatchdog::Sort, 8.1)) << "above 4x";
    EXPECT_EQ(wd.trips(), 1u);
}

TEST(StageWatchdogTest, FloorSuppressesMicrosecondNoise)
{
    StageWatchdog wd;
    wd.configure(wdConfig(/*factor=*/4.0, /*floor_ms=*/20.0,
                          /*warmup=*/3));
    // Median 0.01 ms: a 100x outlier is still under the floor.
    for (int i = 0; i < 4; ++i)
        wd.observe(StageWatchdog::Raster, 0.01);
    EXPECT_FALSE(wd.observe(StageWatchdog::Raster, 1.0));
    EXPECT_TRUE(wd.observe(StageWatchdog::Raster, 25.0));
}

TEST(StageWatchdogTest, TrippedSamplesStayOutOfTheMedian)
{
    StageWatchdog wd;
    wd.configure(wdConfig(/*factor=*/4.0, /*floor_ms=*/1.0,
                          /*warmup=*/3));
    for (int i = 0; i < 4; ++i)
        wd.observe(StageWatchdog::Bin, 2.0);
    const double median_before = wd.rollingMedian(StageWatchdog::Bin);
    // A repeatedly stalling stage must keep tripping: if tripped samples
    // entered the history, the median would drift up until stalls look
    // normal.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(wd.observe(StageWatchdog::Bin, 50.0)) << i;
    EXPECT_EQ(wd.rollingMedian(StageWatchdog::Bin), median_before);
    EXPECT_EQ(wd.trips(), 10u);
}

TEST(StageWatchdogTest, ObserveFrameFeedsAllStagesAndReportsFirstTrip)
{
    StageWatchdog wd;
    wd.configure(wdConfig(/*factor=*/4.0, /*floor_ms=*/1.0,
                          /*warmup=*/2));
    StageTimings normal;
    normal.bin_ms = 2.0;
    normal.sort_ms = 3.0;
    normal.raster_ms = 4.0;
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(wd.observeFrame(normal), -1);

    StageTimings stalled = normal;
    stalled.sort_ms = 100.0;
    EXPECT_EQ(wd.observeFrame(stalled), StageWatchdog::Sort);
    // The other stages' histories stayed warm through the stalled frame.
    EXPECT_GT(wd.rollingMedian(StageWatchdog::Bin), 0.0);
    EXPECT_GT(wd.rollingMedian(StageWatchdog::Raster), 0.0);
}

TEST(StageWatchdogTest, ResetDropsHistoryAndRearmsWarmup)
{
    StageWatchdog wd;
    wd.configure(wdConfig(/*factor=*/4.0, /*floor_ms=*/1.0,
                          /*warmup=*/2));
    for (int i = 0; i < 3; ++i)
        wd.observe(StageWatchdog::Bin, 2.0);
    wd.reset();
    EXPECT_EQ(wd.rollingMedian(StageWatchdog::Bin), 0.0);
    EXPECT_FALSE(wd.observe(StageWatchdog::Bin, 1000.0))
        << "warmup re-arms after reset";
}

TEST(StageWatchdogTest, StageNames)
{
    EXPECT_STREQ(StageWatchdog::stageName(StageWatchdog::Bin), "bin");
    EXPECT_STREQ(StageWatchdog::stageName(StageWatchdog::Sort), "sort");
    EXPECT_STREQ(StageWatchdog::stageName(StageWatchdog::Raster),
                 "raster");
    EXPECT_STREQ(StageWatchdog::stageName(7), "unknown");
}

} // namespace
} // namespace neo::serve::test
