/**
 * @file
 * Unit tests for the baseline sorting-reuse strategies (§4.1 design space).
 */

#include <cmath>
#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "gs/pipeline.h"
#include "sort/strategies.h"
#include "test_util.h"

namespace neo
{
namespace
{

/** Orbiting frames over a small scene. */
BinnedFrame
frameAt(const GaussianScene &scene, int f, int tile_px = 16)
{
    Camera cam(test::smallRes(), deg2rad(50.0f));
    float angle = 0.02f * f;
    cam.lookAt({5.0f * std::sin(angle), 0.5f, -5.0f * std::cos(angle)},
               {0.0f, 0.0f, 0.0f});
    return binFrame(scene, cam, tile_px);
}

bool
allTilesSorted(const SortingStrategy &s, const BinnedFrame &frame)
{
    for (int t = 0; t < frame.grid.tileCount(); ++t)
        if (!test::isSorted(s.tileOrder(t)))
            return false;
    return true;
}

TEST(FullSortTest, ExactEveryFrame)
{
    GaussianScene scene = test::blobScene(300);
    FullSortStrategy s;
    for (int f = 0; f < 4; ++f) {
        BinnedFrame frame = frameAt(scene, f);
        s.beginFrame(frame, f);
        EXPECT_TRUE(allTilesSorted(s, frame)) << "frame " << f;
        // Membership matches the current frame exactly.
        uint64_t total = 0;
        for (const auto &t : s.orderings())
            total += t.size();
        EXPECT_EQ(total, frame.instances);
    }
    EXPECT_GT(s.stats().entries_read, 0u);
}

TEST(FullSortTest, TakeStatsResets)
{
    GaussianScene scene = test::blobScene(100);
    FullSortStrategy s;
    BinnedFrame frame = frameAt(scene, 0);
    s.beginFrame(frame, 0);
    SortCoreStats first = s.takeStats();
    EXPECT_GT(first.entries_read, 0u);
    EXPECT_EQ(s.stats().entries_read, 0u);
}

TEST(HierarchicalTest, ExactOrderingWithDifferentCostProfile)
{
    GaussianScene scene = test::blobScene(300);
    HierarchicalSortStrategy hier;
    FullSortStrategy full;
    BinnedFrame frame = frameAt(scene, 0);
    hier.beginFrame(frame, 0);
    full.beginFrame(frame, 0);
    EXPECT_TRUE(allTilesSorted(hier, frame));
    // Same functional result as full sorting.
    for (int t = 0; t < frame.grid.tileCount(); ++t) {
        const auto &a = hier.tileOrder(t);
        const auto &b = full.tileOrder(t);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i].id, b[i].id) << "tile " << t << " slot " << i;
    }
    // Hierarchical streams the table through DRAM a fixed 2x, while the
    // naive chunk+global-merge path costs more on long tables.
    EXPECT_GT(hier.stats().entries_read, 0u);
}

TEST(PeriodicTest, RefreshesOnSchedule)
{
    GaussianScene scene = test::blobScene(300);
    PeriodicSortStrategy s(4);
    for (int f = 0; f < 9; ++f) {
        BinnedFrame frame = frameAt(scene, f);
        s.beginFrame(frame, f);
        bool expect_refresh = (f % 4 == 0);
        EXPECT_EQ(s.refreshedLastFrame(), expect_refresh) << "frame " << f;
    }
}

TEST(PeriodicTest, NoWorkBetweenRefreshes)
{
    GaussianScene scene = test::blobScene(300);
    PeriodicSortStrategy s(4);
    BinnedFrame f0 = frameAt(scene, 0);
    s.beginFrame(f0, 0);
    s.takeStats();
    BinnedFrame f1 = frameAt(scene, 1);
    s.beginFrame(f1, 1);
    EXPECT_EQ(s.stats().entries_read, 0u);
    EXPECT_EQ(s.stats().chunk_loads, 0u);
}

TEST(PeriodicTest, ServesStaleTablesBetweenRefreshes)
{
    GaussianScene scene = test::blobScene(300);
    PeriodicSortStrategy s(8);
    BinnedFrame f0 = frameAt(scene, 0);
    s.beginFrame(f0, 0);
    // Capture the refresh-frame table of some non-empty tile.
    int probe = -1;
    for (int t = 0; t < f0.grid.tileCount(); ++t)
        if (!s.tileOrder(t).empty()) {
            probe = t;
            break;
        }
    ASSERT_GE(probe, 0);
    auto stale = s.tileOrder(probe);

    BinnedFrame f3 = frameAt(scene, 3);
    s.beginFrame(f3, 3);
    const auto &served = s.tileOrder(probe);
    ASSERT_EQ(served.size(), stale.size());
    for (size_t i = 0; i < served.size(); ++i)
        EXPECT_EQ(served[i].id, stale[i].id);
}

TEST(BackgroundTest, ServesPreviousFrameOrdering)
{
    GaussianScene scene = test::blobScene(300);
    BackgroundSortStrategy bg;
    FullSortStrategy full;

    BinnedFrame f0 = frameAt(scene, 0);
    bg.beginFrame(f0, 0);
    full.beginFrame(f0, 0);
    // Remember frame 0's exact ordering.
    auto f0_orderings = full.orderings();

    BinnedFrame f1 = frameAt(scene, 1);
    bg.beginFrame(f1, 1);
    // Frame 1 must be served with frame 0's ordering.
    for (int t = 0; t < f1.grid.tileCount(); ++t) {
        const auto &served = bg.tileOrder(t);
        const auto &expect = f0_orderings[t];
        ASSERT_EQ(served.size(), expect.size()) << "tile " << t;
        for (size_t i = 0; i < served.size(); ++i)
            EXPECT_EQ(served[i].id, expect[i].id);
    }
}

TEST(BackgroundTest, SustainedWorkEveryFrame)
{
    GaussianScene scene = test::blobScene(300);
    BackgroundSortStrategy bg;
    for (int f = 0; f < 3; ++f) {
        BinnedFrame frame = frameAt(scene, f);
        bg.beginFrame(frame, f);
        EXPECT_GT(bg.takeStats().entries_read, 0u) << "frame " << f;
    }
}

TEST(StrategyNamesTest, AreDistinct)
{
    FullSortStrategy a;
    PeriodicSortStrategy b;
    BackgroundSortStrategy c;
    HierarchicalSortStrategy d;
    EXPECT_NE(a.name(), b.name());
    EXPECT_NE(b.name(), c.name());
    EXPECT_NE(c.name(), d.name());
    EXPECT_EQ(b.period(), 8);
}

TEST(HierarchicalSortTableTest, CountsTwoPasses)
{
    auto t = test::randomTable(512, 3);
    SortCoreStats stats;
    hierarchicalSortTable(t, &stats);
    EXPECT_TRUE(test::isSorted(t));
    EXPECT_EQ(stats.entries_read, 1024u);
    EXPECT_EQ(stats.entries_written, 1024u);
    EXPECT_EQ(stats.chunk_loads, 2u);
}

TEST(FusedBatchingTest, MixedTinyHugeTilesSortInTileIndexOrder)
{
    // A frame whose tile sizes span four orders of magnitude: runs of
    // 0-6 entry tiles around two huge ones. The fused batch packing must
    // keep every result in its own tile slot (tile-index order) and stay
    // bit-identical — orderings and counters — across thread counts.
    BinnedFrame frame;
    size_t next_id = 0;
    auto addTile = [&](size_t n) {
        std::vector<TileEntry> t = test::randomTable(n, 500 + next_id);
        for (auto &e : t)
            e.id += static_cast<GaussianId>(next_id);
        next_id += n + 1;
        frame.instances += n;
        frame.tiles.push_back(std::move(t));
    };
    for (size_t t = 0; t < 150; ++t)
        addTile(t % 7);
    addTile(4000);
    for (size_t t = 0; t < 150; ++t)
        addTile(t % 5);
    addTile(2500);

    FullSortStrategy serial;
    serial.setThreads(1);
    serial.beginFrame(frame, 0);
    ASSERT_EQ(serial.orderings().size(), frame.tiles.size());
    for (size_t t = 0; t < frame.tiles.size(); ++t) {
        auto expect = frame.tiles[t];
        std::sort(expect.begin(), expect.end(), entryDepthLess);
        const auto &got = serial.orderings()[t];
        ASSERT_EQ(got.size(), expect.size()) << "tile " << t;
        for (size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i].id, expect[i].id)
                << "tile " << t << " index " << i;
    }

    for (int threads : {2, 8}) {
        FullSortStrategy threaded;
        threaded.setThreads(threads);
        threaded.beginFrame(frame, 0);
        for (size_t t = 0; t < frame.tiles.size(); ++t) {
            const auto &a = serial.orderings()[t];
            const auto &b = threaded.orderings()[t];
            ASSERT_EQ(a.size(), b.size()) << "tile " << t;
            for (size_t i = 0; i < a.size(); ++i)
                EXPECT_EQ(a[i].id, b[i].id)
                    << "tile " << t << " index " << i;
        }
        EXPECT_EQ(serial.stats().msu.compares,
                  threaded.stats().msu.compares);
        EXPECT_EQ(serial.stats().entries_read,
                  threaded.stats().entries_read);
        EXPECT_EQ(serial.stats().chunk_loads,
                  threaded.stats().chunk_loads);
    }
}

} // namespace
} // namespace neo
