/**
 * @file
 * Unit tests for the deterministic parallel execution layer: static chunk
 * boundaries, parallelFor edge cases (0 items, fewer items than threads),
 * thread-count resolution, and pool behaviour under oversubscription.
 */

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/parallel.h"

namespace neo::test
{
namespace
{

TEST(ParallelChunking, ZeroItemsYieldZeroChunks)
{
    EXPECT_EQ(parallelChunkCount(0, 1), 0u);
    EXPECT_EQ(parallelChunkCount(0, 8), 0u);
}

TEST(ParallelChunking, FewerItemsThanThreadsOneChunkPerItem)
{
    EXPECT_EQ(parallelChunkCount(3, 8), 3u);
    for (size_t c = 0; c < 3; ++c) {
        ParallelRange r = parallelChunkRange(3, 3, c);
        EXPECT_EQ(r.begin, c);
        EXPECT_EQ(r.end, c + 1);
    }
}

TEST(ParallelChunking, ChunksAreContiguousBalancedAndExhaustive)
{
    for (size_t n : {1u, 2u, 7u, 10u, 64u, 1000u, 1001u}) {
        for (int threads : {1, 2, 3, 7, 8, 16}) {
            const size_t chunks = parallelChunkCount(n, threads);
            ASSERT_GE(chunks, 1u);
            ASSERT_LE(chunks, n);
            size_t expect_begin = 0;
            size_t min_size = n, max_size = 0;
            for (size_t c = 0; c < chunks; ++c) {
                ParallelRange r = parallelChunkRange(n, chunks, c);
                EXPECT_EQ(r.begin, expect_begin)
                    << "n=" << n << " chunks=" << chunks << " c=" << c;
                EXPECT_GT(r.size(), 0u);
                min_size = std::min(min_size, r.size());
                max_size = std::max(max_size, r.size());
                expect_begin = r.end;
            }
            EXPECT_EQ(expect_begin, n);
            EXPECT_LE(max_size - min_size, 1u)
                << "static chunks must be balanced";
        }
    }
}

TEST(ParallelChunking, OutOfRangeChunkIsEmpty)
{
    EXPECT_EQ(parallelChunkRange(10, 4, 4).size(), 0u);
    EXPECT_EQ(parallelChunkRange(10, 0, 0).size(), 0u);
}

TEST(ParallelFor, ZeroItemsNeverInvokesBody)
{
    int calls = 0;
    parallelFor(0, 8, [&](size_t, size_t, size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SerialFallbackIsSingleInlineChunk)
{
    std::vector<size_t> chunk_of(5, 99);
    parallelFor(5, 1, [&](size_t begin, size_t end, size_t chunk) {
        for (size_t i = begin; i < end; ++i)
            chunk_of[i] = chunk;
    });
    for (size_t c : chunk_of)
        EXPECT_EQ(c, 0u);
}

TEST(ParallelFor, EveryIndexVisitedExactlyOnce)
{
    const size_t n = 1000;
    for (int threads : {2, 3, 8, 16}) {
        std::vector<std::atomic<int>> visits(n);
        parallelFor(n, threads, [&](size_t begin, size_t end, size_t) {
            for (size_t i = begin; i < end; ++i)
                visits[i].fetch_add(1);
        });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, FewerItemsThanThreadsStillCoversAll)
{
    std::vector<std::atomic<int>> visits(3);
    parallelFor(3, 16, [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i)
            visits[i].fetch_add(1);
    });
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, PerChunkAccumulatorsMergeToSerialResult)
{
    const size_t n = 4096;
    std::vector<uint64_t> values(n);
    std::iota(values.begin(), values.end(), 1);
    const uint64_t serial =
        std::accumulate(values.begin(), values.end(), uint64_t{0});

    const int threads = 8;
    const size_t chunks = parallelChunkCount(n, threads);
    std::vector<uint64_t> partial(chunks, 0);
    parallelFor(n, threads, [&](size_t begin, size_t end, size_t chunk) {
        for (size_t i = begin; i < end; ++i)
            partial[chunk] += values[i];
    });
    uint64_t merged = 0;
    for (uint64_t p : partial)
        merged += p;
    EXPECT_EQ(merged, serial);
}

TEST(ParallelFor, NestedCallRunsInline)
{
    // A body that itself calls parallelFor must not deadlock the pool;
    // the inner loop degrades to inline execution.
    std::vector<std::atomic<int>> visits(64);
    parallelFor(8, 4, [&](size_t begin, size_t end, size_t) {
        for (size_t outer = begin; outer < end; ++outer) {
            parallelFor(8, 4, [&](size_t b, size_t e, size_t) {
                for (size_t inner = b; inner < e; ++inner)
                    visits[outer * 8 + inner].fetch_add(1);
            });
        }
    });
    for (size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelForEach, VisitsEachIndexOnce)
{
    std::vector<std::atomic<int>> visits(100);
    parallelForEach(100, 8, [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(visits[i].load(), 1);
}

TEST(ResolveThreadCount, ExplicitRequestWinsAndIsCapped)
{
    EXPECT_EQ(resolveThreadCount(4), 4);
    EXPECT_EQ(resolveThreadCount(1), 1);
    EXPECT_EQ(resolveThreadCount(kMaxThreads + 50), kMaxThreads);
}

TEST(ResolveThreadCount, NegativeMeansHardware)
{
    EXPECT_EQ(resolveThreadCount(-1), hardwareThreadCount());
    EXPECT_GE(hardwareThreadCount(), 1);
}

TEST(ResolveThreadCount, ZeroDefersToEnvironment)
{
    // Guard the process-global env var; tests in this binary run serially.
    const char *saved = std::getenv("NEO_THREADS");
    std::string saved_copy = saved ? saved : "";

    unsetenv("NEO_THREADS");
    EXPECT_EQ(resolveThreadCount(0), 1);

    setenv("NEO_THREADS", "3", 1);
    EXPECT_EQ(resolveThreadCount(0), 3);

    setenv("NEO_THREADS", "auto", 1);
    EXPECT_EQ(resolveThreadCount(0), hardwareThreadCount());

    setenv("NEO_THREADS", "garbage", 1);
    EXPECT_EQ(resolveThreadCount(0), 1);

    if (saved)
        setenv("NEO_THREADS", saved_copy.c_str(), 1);
    else
        unsetenv("NEO_THREADS");
}

TEST(ResolveThreadCount, PartiallyNumericEnvFallsBackToOneThread)
{
    // Regression: atoi-style parsing accepted "4garbage" as 4 threads.
    // Full-string consumption must reject trailing junk (warn-once) and
    // run serial rather than silently honouring the numeric prefix.
    const char *saved = std::getenv("NEO_THREADS");
    const std::string saved_copy = saved ? saved : "";

    setenv("NEO_THREADS", "4garbage", 1);
    EXPECT_EQ(resolveThreadCount(0), 1);
    setenv("NEO_THREADS", "2.5", 1);
    EXPECT_EQ(resolveThreadCount(0), 1);
    setenv("NEO_THREADS", "-3", 1);
    EXPECT_EQ(resolveThreadCount(0), 1);
    setenv("NEO_THREADS", " 4", 1);
    EXPECT_EQ(resolveThreadCount(0), 4); // strtol skips leading space
    setenv("NEO_THREADS", "4 ", 1);
    EXPECT_EQ(resolveThreadCount(0), 1); // trailing space is junk

    if (saved)
        setenv("NEO_THREADS", saved_copy.c_str(), 1);
    else
        unsetenv("NEO_THREADS");
}

TEST(ParallelForAccumulate, ChunkOrderMergeMatchesSerial)
{
    const size_t n = 777;
    std::vector<uint64_t> values(n);
    std::iota(values.begin(), values.end(), 1);
    const uint64_t serial =
        std::accumulate(values.begin(), values.end(), uint64_t{0});

    auto partial = parallelForAccumulate<uint64_t>(
        n, 8, [&](size_t begin, size_t end, uint64_t &acc) {
            for (size_t i = begin; i < end; ++i)
                acc += values[i];
        });
    EXPECT_EQ(partial.size(), parallelChunkCount(n, 8));
    uint64_t merged = 0;
    for (uint64_t p : partial)
        merged += p;
    EXPECT_EQ(merged, serial);

    // Zero items: no accumulators, body never runs.
    auto empty = parallelForAccumulate<uint64_t>(
        0, 8, [&](size_t, size_t, uint64_t &) { FAIL(); });
    EXPECT_TRUE(empty.empty());
}

TEST(ThreadPool, ConcurrentDispatchersSerializeSafely)
{
    // Two application threads each drive their own parallel loops against
    // the shared pool; jobs must not corrupt each other.
    std::atomic<uint64_t> total{0};
    auto worker = [&] {
        for (int round = 0; round < 20; ++round) {
            auto partial = parallelForAccumulate<uint64_t>(
                64, 4, [&](size_t begin, size_t end, uint64_t &acc) {
                    for (size_t i = begin; i < end; ++i)
                        acc += i;
                });
            uint64_t sum = 0;
            for (uint64_t p : partial)
                sum += p;
            total.fetch_add(sum);
        }
    };
    std::thread a(worker), b(worker);
    a.join();
    b.join();
    // Each loop sums 0..63 = 2016; 2 threads x 20 rounds.
    EXPECT_EQ(total.load(), 2016u * 40u);
}

TEST(ThreadPool, RepeatedJobsReuseWorkers)
{
    // Dispatch many small jobs back to back; worker count must stay
    // bounded by the largest request, not grow per job.
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> sum{0};
        parallelForEach(16, 4, [&](size_t i) {
            sum.fetch_add(static_cast<int>(i));
        });
        EXPECT_EQ(sum.load(), 120);
    }
    EXPECT_LE(ThreadPool::shared().workerCount(), kMaxThreads - 1);
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller)
{
    EXPECT_THROW(
        parallelForEach(8, 4,
                        [&](size_t i) {
                            if (i == 5)
                                throw std::runtime_error("boom");
                        }),
        std::runtime_error);

    // The pool must stay usable afterwards.
    std::atomic<int> visits{0};
    parallelForEach(8, 4, [&](size_t) { visits.fetch_add(1); });
    EXPECT_EQ(visits.load(), 8);
}

// --- Opt-in worker CPU affinity -----------------------------------------

TEST(ThreadAffinity, ParseRecognizesModes)
{
    EXPECT_EQ(parseThreadAffinity("compact"), ThreadAffinity::Compact);
    EXPECT_EQ(parseThreadAffinity("scatter"), ThreadAffinity::Scatter);
    EXPECT_EQ(parseThreadAffinity(""), ThreadAffinity::None);
    EXPECT_EQ(parseThreadAffinity("garbage"), ThreadAffinity::None);
    EXPECT_EQ(parseThreadAffinity(nullptr), ThreadAffinity::None);
}

TEST(ThreadAffinity, UnrecognizedEnvValueRunsUnpinned)
{
    // Regression: a typo like "compat" must degrade to None (with a
    // once-only diagnostic), never crash or pin arbitrarily.
    const char *saved = std::getenv("NEO_THREAD_AFFINITY");
    const std::string saved_copy = saved ? saved : "";

    setenv("NEO_THREAD_AFFINITY", "compat", 1);
    EXPECT_EQ(threadAffinityMode(), ThreadAffinity::None);
    setenv("NEO_THREAD_AFFINITY", "none", 1);
    EXPECT_EQ(threadAffinityMode(), ThreadAffinity::None);
    setenv("NEO_THREAD_AFFINITY", "scatter", 1);
    EXPECT_EQ(threadAffinityMode(), ThreadAffinity::Scatter);

    if (saved)
        setenv("NEO_THREAD_AFFINITY", saved_copy.c_str(), 1);
    else
        unsetenv("NEO_THREAD_AFFINITY");
}

TEST(ThreadAffinity, MalformedEnvWarnsOnceThroughSharedRegistry)
{
    // Regression for the common/env migration: the affinity knob now
    // parses via envChoice, so its one-shot diagnostic lives in the
    // shared warn-once registry and env::resetWarnings() re-arms it.
    const char *saved = std::getenv("NEO_THREAD_AFFINITY");
    const std::string saved_copy = saved ? saved : "";

    env::resetWarnings();
    setenv("NEO_THREAD_AFFINITY", "compat", 1);
    EXPECT_EQ(threadAffinityMode(), ThreadAffinity::None);
    // The first resolution consumed the knob's single warning slot...
    EXPECT_FALSE(env::shouldWarnOnce("NEO_THREAD_AFFINITY"));
    // ...and later resolutions still fall back, now silently.
    EXPECT_EQ(threadAffinityMode(), ThreadAffinity::None);

    env::resetWarnings();
    EXPECT_TRUE(env::shouldWarnOnce("NEO_THREAD_AFFINITY"))
        << "resetWarnings must re-arm the diagnostic";

    if (saved)
        setenv("NEO_THREAD_AFFINITY", saved_copy.c_str(), 1);
    else
        unsetenv("NEO_THREAD_AFFINITY");
    env::resetWarnings();
}

TEST(ResolveThreadCount, MalformedEnvWarnsOnceThroughSharedRegistry)
{
    // NEO_THREADS keeps its hand-rolled parse (the "auto" special case)
    // but its diagnostic moved into the same registry.
    const char *saved = std::getenv("NEO_THREADS");
    const std::string saved_copy = saved ? saved : "";

    env::resetWarnings();
    setenv("NEO_THREADS", "garbage", 1);
    EXPECT_EQ(resolveThreadCount(0), 1);
    EXPECT_FALSE(env::shouldWarnOnce("NEO_THREADS"));
    EXPECT_EQ(resolveThreadCount(0), 1);

    if (saved)
        setenv("NEO_THREADS", saved_copy.c_str(), 1);
    else
        unsetenv("NEO_THREADS");
    env::resetWarnings();
}

TEST(ThreadAffinity, CompactMapsConsecutiveCpusSkippingSlotZero)
{
    // Worker w lands on cpu (w + 1) % cpus: consecutive cores, cpu 0
    // left to the dispatching thread until the range wraps.
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Compact, 0, 8), 1);
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Compact, 1, 8), 2);
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Compact, 6, 8), 7);
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Compact, 7, 8), 0);
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Compact, 0, 2), 1);
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Compact, 1, 2), 0);
}

TEST(ThreadAffinity, ScatterAlternatesIndexRangeHalves)
{
    // Odd slots take the upper half, even slots the lower half, each
    // walked in order — alternating sockets on the common two-socket
    // cpu enumeration.
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Scatter, 0, 8), 4);
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Scatter, 1, 8), 1);
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Scatter, 2, 8), 5);
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Scatter, 3, 8), 2);
    EXPECT_EQ(affinityCpuForWorker(ThreadAffinity::Scatter, 4, 8), 6);

    // Odd cpu counts: each half wraps within itself, so the first
    // (cpus - 1) workers land on distinct cpus — no worker pair shares
    // a core while another core sits idle.
    std::vector<int> seen;
    for (int w = 0; w < 6; ++w)
        seen.push_back(
            affinityCpuForWorker(ThreadAffinity::Scatter, w, 7));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(ThreadAffinity, SingleCpuAlwaysZero)
{
    for (auto mode : {ThreadAffinity::None, ThreadAffinity::Compact,
                      ThreadAffinity::Scatter})
        for (int w : {0, 1, 5})
            EXPECT_EQ(affinityCpuForWorker(mode, w, 1), 0);
}

// --- fused weighted batching (buildWeightedBatchesInto) ---

std::vector<ParallelRange>
batchesFor(const std::vector<size_t> &weights, size_t grain)
{
    std::vector<ParallelRange> out;
    buildWeightedBatchesInto(out, weights.size(), grain,
                             [&](size_t i) { return weights[i]; });
    return out;
}

/** Every batching must partition [0, n) into contiguous non-empty runs. */
void
expectPartition(const std::vector<ParallelRange> &batches, size_t n)
{
    size_t cursor = 0;
    for (const ParallelRange &b : batches) {
        EXPECT_EQ(b.begin, cursor);
        EXPECT_GT(b.end, b.begin);
        cursor = b.end;
    }
    EXPECT_EQ(cursor, n);
}

TEST(WeightedBatches, EmptyInputYieldsNoBatches)
{
    EXPECT_TRUE(batchesFor({}, 256).empty());
}

TEST(WeightedBatches, TinyItemsFuseUpToGrain)
{
    // 100 items of weight 1, grain 10 -> exactly 10 batches of 10.
    auto batches = batchesFor(std::vector<size_t>(100, 1), 10);
    expectPartition(batches, 100);
    ASSERT_EQ(batches.size(), 10u);
    for (const ParallelRange &b : batches)
        EXPECT_EQ(b.size(), 10u);
}

TEST(WeightedBatches, HeavyItemIsItsOwnBatch)
{
    // A grain-clearing item must not drag neighbors into its batch.
    auto batches = batchesFor({1, 1, 500, 1, 1}, 10);
    expectPartition(batches, 5);
    ASSERT_EQ(batches.size(), 3u);
    EXPECT_EQ(batches[1].begin, 2u);
    EXPECT_EQ(batches[1].end, 3u);
}

TEST(WeightedBatches, ZeroWeightItemsJoinTheCurrentBatch)
{
    // All-zero weights (a frame of empty tiles) collapse to one batch.
    auto batches = batchesFor(std::vector<size_t>(50, 0), 256);
    expectPartition(batches, 50);
    EXPECT_EQ(batches.size(), 1u);
}

TEST(WeightedBatches, PartitionHoldsForMixedWeights)
{
    std::vector<size_t> weights;
    for (size_t i = 0; i < 400; ++i)
        weights.push_back(i % 7 == 0 ? 300 : i % 7);
    for (size_t grain : {size_t{1}, size_t{64}, size_t{256},
                         size_t{1u << 20}}) {
        auto batches = batchesFor(weights, grain);
        expectPartition(batches, weights.size());
    }
}

TEST(WeightedBatches, BatchBoundariesIgnoreThreadCount)
{
    // Determinism hinges on batches being a pure function of
    // (n, grain, weights); parallelForBatched must visit every item of
    // every batch exactly once at any thread count, with the serial
    // chunk order reproduced by the per-chunk merge.
    std::vector<size_t> weights;
    for (size_t i = 0; i < 300; ++i)
        weights.push_back(1 + i % 9);
    auto batches = batchesFor(weights, 64);
    expectPartition(batches, weights.size());

    for (int threads : {1, 2, 8}) {
        std::vector<int> visits(weights.size(), 0);
        parallelForBatched(batches, threads,
                           [&](size_t begin, size_t end, size_t chunk) {
                               EXPECT_LT(chunk,
                                         parallelChunkCount(batches.size(),
                                                            threads));
                               for (size_t i = begin; i < end; ++i)
                                   ++visits[i];
                           });
        for (size_t i = 0; i < visits.size(); ++i)
            EXPECT_EQ(visits[i], 1) << "threads " << threads << " item "
                                    << i;
    }
}

TEST(ThreadAffinity, PinnedPoolStillComputesCorrectly)
{
    // Smoke test: with NEO_THREAD_AFFINITY set, a fresh pool spawns
    // pinned workers (sampled at spawn time) and the deterministic
    // chunking contract is untouched. Results must be identical either
    // way — pinning is scheduling-only.
    const char *saved = std::getenv("NEO_THREAD_AFFINITY");
    const std::string saved_copy = saved ? saved : "";
    for (const char *mode : {"compact", "scatter"}) {
        setenv("NEO_THREAD_AFFINITY", mode, 1);
        ThreadPool pool;
        std::vector<int> hits(16, 0);
        pool.run(hits.size(), [&](size_t chunk) { hits[chunk] = 1; });
        EXPECT_GT(pool.workerCount(), 0) << mode;
        for (size_t c = 0; c < hits.size(); ++c)
            EXPECT_EQ(hits[c], 1) << mode << " chunk " << c;
    }
    if (saved)
        setenv("NEO_THREAD_AFFINITY", saved_copy.c_str(), 1);
    else
        unsetenv("NEO_THREAD_AFFINITY");
}

} // namespace
} // namespace neo::test
