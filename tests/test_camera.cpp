/**
 * @file
 * Unit tests for the pinhole camera.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "gs/camera.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(CameraTest, FocalLengthFromFov)
{
    Camera cam({1280, 720, "HD"}, deg2rad(90.0f));
    // 90-degree vertical FOV: focal = h/2.
    EXPECT_NEAR(cam.focalY(), 360.0f, 0.5f);
    EXPECT_NEAR(cam.focalX(), cam.focalY(), 1e-4f);
}

TEST(CameraTest, LookAtTargetProjectsToImageCenter)
{
    Camera cam = test::frontCamera(5.0f);
    Vec3 cam_space = cam.toCameraSpace({0.0f, 0.0f, 0.0f});
    EXPECT_NEAR(cam_space.x, 0.0f, 1e-4f);
    EXPECT_NEAR(cam_space.y, 0.0f, 1e-4f);
    EXPECT_NEAR(cam_space.z, 5.0f, 1e-4f);
    Vec2 px = cam.toScreen(cam_space);
    EXPECT_NEAR(px.x, cam.width() / 2.0f, 1e-2f);
    EXPECT_NEAR(px.y, cam.height() / 2.0f, 1e-2f);
}

TEST(CameraTest, DepthIncreasesAwayFromCamera)
{
    Camera cam = test::frontCamera(5.0f);
    float z_near = cam.toCameraSpace({0.0f, 0.0f, -1.0f}).z;
    float z_far = cam.toCameraSpace({0.0f, 0.0f, 3.0f}).z;
    EXPECT_LT(z_near, z_far);
    EXPECT_NEAR(z_near, 4.0f, 1e-4f);
    EXPECT_NEAR(z_far, 8.0f, 1e-4f);
}

TEST(CameraTest, PointsBehindCameraHaveNegativeDepth)
{
    Camera cam = test::frontCamera(5.0f);
    EXPECT_LT(cam.toCameraSpace({0.0f, 0.0f, -10.0f}).z, 0.0f);
}

TEST(CameraTest, RightwardPointProjectsRightward)
{
    Camera cam = test::frontCamera(5.0f);
    // Camera at -z looking toward +z: world +x appears to the... whichever
    // side, moving the point further along the same direction must move
    // the projection monotonically.
    Vec2 p1 = cam.toScreen(cam.toCameraSpace({0.5f, 0.0f, 0.0f}));
    Vec2 p2 = cam.toScreen(cam.toCameraSpace({1.0f, 0.0f, 0.0f}));
    Vec2 c = cam.toScreen(cam.toCameraSpace({0.0f, 0.0f, 0.0f}));
    float d1 = p1.x - c.x;
    float d2 = p2.x - c.x;
    EXPECT_GT(std::fabs(d2), std::fabs(d1));
    EXPECT_GT(d1 * d2, 0.0f); // same side
}

TEST(CameraTest, UpwardWorldPointProjectsUpwardInImage)
{
    // Pixel y grows downward; a world point above the target must land at
    // smaller pixel y than the center.
    Camera cam = test::frontCamera(5.0f);
    Vec2 up = cam.toScreen(cam.toCameraSpace({0.0f, 1.0f, 0.0f}));
    EXPECT_LT(up.y, cam.height() / 2.0f);
}

TEST(CameraTest, ViewDirectionIsUnit)
{
    Camera cam = test::frontCamera(3.0f);
    Vec3 d = cam.viewDirection({1.0f, 2.0f, 3.0f});
    EXPECT_NEAR(d.norm(), 1.0f, 1e-5f);
}

TEST(CameraTest, DegenerateUpVectorIsHandled)
{
    Camera cam({128, 128, "t"}, deg2rad(60.0f));
    // Looking straight down with up = +y (parallel to view direction).
    cam.lookAt({0.0f, 5.0f, 0.0f}, {0.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f});
    Vec3 c = cam.toCameraSpace({0.0f, 0.0f, 0.0f});
    EXPECT_NEAR(c.z, 5.0f, 1e-3f);
    EXPECT_NEAR(c.x, 0.0f, 1e-3f);
    EXPECT_NEAR(c.y, 0.0f, 1e-3f);
}

TEST(CameraTest, ResolutionPresetsMatchPaper)
{
    EXPECT_EQ(kResHD.width, 1280);
    EXPECT_EQ(kResHD.height, 720);
    EXPECT_EQ(kResFHD.width, 1920);
    EXPECT_EQ(kResFHD.height, 1080);
    EXPECT_EQ(kResQHD.width, 2560);
    EXPECT_EQ(kResQHD.height, 1440);
    EXPECT_EQ(kResQHD.pixels(), 2560L * 1440L);
}

} // namespace
} // namespace neo
