/**
 * @file
 * Unit tests for the float RGB framebuffer.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "common/image.h"

namespace neo
{
namespace
{

TEST(ImageTest, ConstructionAndFill)
{
    Image img(4, 3, {0.5f, 0.25f, 1.0f});
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_EQ(img.pixelCount(), 12u);
    EXPECT_FALSE(img.empty());
    EXPECT_FLOAT_EQ(img.at(2, 1).x, 0.5f);
    EXPECT_FLOAT_EQ(img.at(2, 1).y, 0.25f);
}

TEST(ImageTest, DefaultIsEmpty)
{
    Image img;
    EXPECT_TRUE(img.empty());
    EXPECT_EQ(img.pixelCount(), 0u);
}

TEST(ImageTest, ClampChannels)
{
    Image img(2, 1);
    img.at(0, 0) = {-0.5f, 0.5f, 2.0f};
    img.clampChannels();
    EXPECT_FLOAT_EQ(img.at(0, 0).x, 0.0f);
    EXPECT_FLOAT_EQ(img.at(0, 0).y, 0.5f);
    EXPECT_FLOAT_EQ(img.at(0, 0).z, 1.0f);
}

TEST(ImageTest, MeanAbsoluteDifference)
{
    Image a(2, 2, {0.0f, 0.0f, 0.0f});
    Image b(2, 2, {0.3f, 0.3f, 0.3f});
    EXPECT_NEAR(Image::meanAbsoluteDifference(a, b), 0.3, 1e-6);
    EXPECT_DOUBLE_EQ(Image::meanAbsoluteDifference(a, a), 0.0);
}

TEST(ImageTest, Downsample2xAveragesQuads)
{
    Image img(4, 2);
    img.at(0, 0) = {1.0f, 0.0f, 0.0f};
    img.at(1, 0) = {0.0f, 1.0f, 0.0f};
    img.at(0, 1) = {0.0f, 0.0f, 1.0f};
    img.at(1, 1) = {1.0f, 1.0f, 1.0f};
    Image half = img.downsample2x();
    EXPECT_EQ(half.width(), 2);
    EXPECT_EQ(half.height(), 1);
    EXPECT_FLOAT_EQ(half.at(0, 0).x, 0.5f);
    EXPECT_FLOAT_EQ(half.at(0, 0).y, 0.5f);
    EXPECT_FLOAT_EQ(half.at(0, 0).z, 0.5f);
}

TEST(ImageTest, DownsampleTooSmallReturnsEmpty)
{
    Image img(1, 1);
    EXPECT_TRUE(img.downsample2x().empty());
}

TEST(ImageTest, LumaWeightsSumToOne)
{
    Image img(1, 1, {1.0f, 1.0f, 1.0f});
    auto luma = img.luma();
    ASSERT_EQ(luma.size(), 1u);
    EXPECT_NEAR(luma[0], 1.0f, 1e-5f);
}

TEST(ImageTest, LumaGreenDominates)
{
    Image g(1, 1, {0.0f, 1.0f, 0.0f});
    Image r(1, 1, {1.0f, 0.0f, 0.0f});
    EXPECT_GT(g.luma()[0], r.luma()[0]);
}

TEST(ImageTest, WritePpmProducesFile)
{
    Image img(8, 8, {1.0f, 0.5f, 0.0f});
    const char *path = "/tmp/neo_test_image.ppm";
    ASSERT_TRUE(img.writePpm(path));
    std::FILE *f = std::fopen(path, "rb");
    ASSERT_NE(f, nullptr);
    char magic[3] = {};
    ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
    EXPECT_EQ(magic[0], 'P');
    EXPECT_EQ(magic[1], '6');
    std::fclose(f);
    std::remove(path);
}

TEST(ImageTest, WritePpmFailsOnBadPath)
{
    Image img(2, 2);
    EXPECT_FALSE(img.writePpm("/nonexistent_dir_xyz/out.ppm"));
}

} // namespace
} // namespace neo
