/**
 * @file
 * Determinism guard: the whole synthetic-scene pipeline must be a pure
 * function of the RNG seed. Two independent runs with the same seed have
 * to produce bit-identical frames and workload descriptors, so any future
 * parallelism PR that introduces nondeterministic reduction order trips
 * this test instead of silently perturbing the paper's figures.
 */

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/delta_tracker.h"
#include "core/neo_renderer.h"
#include "gs/pipeline.h"
#include "scene/synthetic.h"
#include "sort/merge_unit.h"
#include "test_util.h"

namespace neo::test
{
namespace
{

/** Canonical bit-pattern hash shared with the scaling bench. */
uint64_t
hashImage(const Image &img)
{
    return img.contentHash();
}

struct RunResult
{
    uint64_t frame_hash;
    FrameStats stats;
    FrameWorkload workload;
};

RunResult
runPipeline(uint64_t seed, int threads = 1, bool reference_raster = false)
{
    SyntheticSceneParams params;
    params.seed = seed;
    params.count = 4000;
    params.name = "determinism";
    GaussianScene scene = generateScene(params);

    PipelineOptions opts;
    opts.threads = threads;
    opts.raster.reference_path = reference_raster;
    Renderer renderer(opts);
    Camera cam = frontCamera();

    RunResult out;
    out.frame_hash = hashImage(renderer.render(scene, cam, &out.stats));
    out.workload = renderer.extractWorkload(scene, cam);
    return out;
}

void
expectEqualRuns(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.frame_hash, b.frame_hash);
    EXPECT_EQ(a.stats.scene_gaussians, b.stats.scene_gaussians);
    EXPECT_EQ(a.stats.visible_gaussians, b.stats.visible_gaussians);
    EXPECT_EQ(a.stats.instances, b.stats.instances);
    EXPECT_EQ(a.stats.raster.gaussians_in, b.stats.raster.gaussians_in);
    EXPECT_EQ(a.stats.raster.intersection_tests,
              b.stats.raster.intersection_tests);
    EXPECT_EQ(a.stats.raster.gaussians_blended,
              b.stats.raster.gaussians_blended);
    EXPECT_EQ(a.stats.raster.blend_ops, b.stats.raster.blend_ops);
    EXPECT_EQ(a.stats.raster.pixels_terminated,
              b.stats.raster.pixels_terminated);
    EXPECT_EQ(a.workload.instances, b.workload.instances);
    EXPECT_EQ(a.workload.blend_ops, b.workload.blend_ops);
    EXPECT_EQ(a.workload.intersection_tests,
              b.workload.intersection_tests);
    EXPECT_EQ(a.workload.tile_lengths, b.workload.tile_lengths);
}

void
expectEqualSortStats(const SortCoreStats &a, const SortCoreStats &b)
{
    EXPECT_EQ(a.bsu.subchunks, b.bsu.subchunks);
    EXPECT_EQ(a.bsu.compare_exchanges, b.bsu.compare_exchanges);
    EXPECT_EQ(a.bsu.stages, b.bsu.stages);
    EXPECT_EQ(a.msu.merges, b.msu.merges);
    EXPECT_EQ(a.msu.elements_processed, b.msu.elements_processed);
    EXPECT_EQ(a.msu.compares, b.msu.compares);
    EXPECT_EQ(a.msu.filtered_invalid, b.msu.filtered_invalid);
    EXPECT_EQ(a.chunk_loads, b.chunk_loads);
    EXPECT_EQ(a.chunk_stores, b.chunk_stores);
    EXPECT_EQ(a.entries_read, b.entries_read);
    EXPECT_EQ(a.entries_written, b.entries_written);
    EXPECT_EQ(a.global_merge_passes, b.global_merge_passes);
}

TEST(Determinism, SameSeedBitIdenticalFrames)
{
    const RunResult a = runPipeline(42);
    const RunResult b = runPipeline(42);
    expectEqualRuns(a, b);
}

TEST(Determinism, ThreadCountDoesNotChangeAnyBit)
{
    // The determinism contract of common/parallel.h: the whole pipeline
    // (frame pixels, FrameWorkload, raster counters) is bit-identical for
    // threads in {1, 2, 8}, including 8 threads on fewer cores.
    const RunResult serial = runPipeline(42, 1);
    expectEqualRuns(serial, runPipeline(42, 2));
    expectEqualRuns(serial, runPipeline(42, 8));
}

TEST(Determinism, BlockedAndReferenceRasterizersInterchangeable)
{
    // The two blend implementations and the thread count can be varied
    // together without changing a bit: the serial blocked run is the
    // anchor, compared against the scalar reference at 1 and 8 threads.
    const RunResult blocked = runPipeline(42, 1, false);
    expectEqualRuns(blocked, runPipeline(42, 1, true));
    expectEqualRuns(blocked, runPipeline(42, 8, true));
}

void
expectEqualBinned(const BinnedFrame &a, const BinnedFrame &b)
{
    EXPECT_EQ(a.grid.tiles_x, b.grid.tiles_x);
    EXPECT_EQ(a.grid.tiles_y, b.grid.tiles_y);
    EXPECT_EQ(a.instances, b.instances);
    EXPECT_EQ(a.feature_of_id, b.feature_of_id);
    ASSERT_EQ(a.features.size(), b.features.size());
    for (size_t i = 0; i < a.features.size(); ++i) {
        EXPECT_EQ(a.features[i].id, b.features[i].id);
        EXPECT_EQ(a.features[i].mean2d.x, b.features[i].mean2d.x);
        EXPECT_EQ(a.features[i].mean2d.y, b.features[i].mean2d.y);
        EXPECT_EQ(a.features[i].depth, b.features[i].depth);
        EXPECT_EQ(a.features[i].radius_px, b.features[i].radius_px);
        EXPECT_EQ(a.mean2d[i].x, b.mean2d[i].x);
        EXPECT_EQ(a.depth[i], b.depth[i]);
        EXPECT_EQ(a.radius_px[i], b.radius_px[i]);
    }
    ASSERT_EQ(a.tiles.size(), b.tiles.size());
    for (size_t t = 0; t < a.tiles.size(); ++t) {
        ASSERT_EQ(a.tiles[t].size(), b.tiles[t].size()) << "tile " << t;
        for (size_t i = 0; i < a.tiles[t].size(); ++i) {
            EXPECT_EQ(a.tiles[t][i].id, b.tiles[t][i].id);
            EXPECT_EQ(a.tiles[t][i].depth, b.tiles[t][i].depth);
            EXPECT_EQ(a.tiles[t][i].valid, b.tiles[t][i].valid);
        }
    }
}

TEST(Determinism, ParallelBinningScatterBitIdentical)
{
    // The per-chunk scatter with chunk-order concatenation must reproduce
    // the serial ascending-id pass exactly: features in id order, every
    // tile list in ascending id order, SoA mirrors in sync.
    GaussianScene scene = test::tinySyntheticScene();
    Camera cam = test::frontCamera();
    for (int tile_px : {16, 64}) {
        const BinnedFrame serial = binFrame(scene, cam, tile_px, 1);
        for (int threads : {2, 8})
            expectEqualBinned(serial,
                              binFrame(scene, cam, tile_px, threads));
    }
}

TEST(Determinism, ParallelMsuMergeBitIdentical)
{
    // The MSU merge tree and the two-way update merge across threads:
    // identical entries AND identical hardware counters.
    auto table = test::randomTable(16384, 97);
    for (size_t i = 0; i < table.size(); i += 71)
        table[i].valid = false;

    auto serial = table;
    MsuStats serial_stats;
    msuMergeRuns(serial, 0, serial.size(), 1, &serial_stats, 1);

    auto incoming = test::randomTable(3000, 98);
    for (auto &e : incoming)
        e.id += 1 << 20;
    std::sort(incoming.begin(), incoming.end(), entryDepthLess);
    std::vector<TileEntry> serial_merged;
    MsuStats serial_update;
    msuUpdateTable(serial, incoming, serial_merged, &serial_update, 1);

    for (int threads : {2, 8}) {
        auto t = table;
        MsuStats stats;
        msuMergeRuns(t, 0, t.size(), 1, &stats, threads);
        ASSERT_EQ(serial.size(), t.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].id, t[i].id);
            EXPECT_EQ(serial[i].depth, t[i].depth);
            EXPECT_EQ(serial[i].valid, t[i].valid);
        }
        EXPECT_EQ(serial_stats.compares, stats.compares);
        EXPECT_EQ(serial_stats.merges, stats.merges);
        EXPECT_EQ(serial_stats.elements_processed,
                  stats.elements_processed);
        EXPECT_EQ(serial_stats.filtered_invalid, stats.filtered_invalid);

        std::vector<TileEntry> merged;
        MsuStats update;
        msuUpdateTable(t, incoming, merged, &update, threads);
        ASSERT_EQ(serial_merged.size(), merged.size());
        for (size_t i = 0; i < merged.size(); ++i)
            EXPECT_EQ(serial_merged[i].id, merged[i].id);
        EXPECT_EQ(serial_update.compares, update.compares);
        EXPECT_EQ(serial_update.filtered_invalid, update.filtered_invalid);
    }
}

TEST(Determinism, ParallelDeltaTrackerBitIdentical)
{
    // tile_retention is the Fig. 6 sample set: sequence order (tile-index
    // order) and every double must match the serial pass exactly.
    GaussianScene scene = test::tinySyntheticScene();
    std::vector<Camera> cams;
    for (int f = 0; f < 3; ++f) {
        Camera cam(test::smallRes(), deg2rad(50.0f));
        const float angle = 0.04f * f;
        cam.lookAt({6.0f * std::sin(angle), 0.5f, -6.0f * std::cos(angle)},
                   {0.0f, 0.0f, 0.0f});
        cams.push_back(cam);
    }

    auto run = [&](int threads) {
        DeltaTracker tracker;
        tracker.setThreads(threads);
        std::vector<FrameDelta> deltas;
        for (const Camera &cam : cams)
            deltas.push_back(tracker.observe(binFrame(scene, cam, 16, 1)));
        return deltas;
    };

    const auto serial = run(1);
    for (int threads : {2, 8}) {
        const auto parallel = run(threads);
        ASSERT_EQ(serial.size(), parallel.size());
        for (size_t f = 0; f < serial.size(); ++f) {
            EXPECT_EQ(serial[f].incoming_total, parallel[f].incoming_total);
            EXPECT_EQ(serial[f].outgoing_total, parallel[f].outgoing_total);
            EXPECT_EQ(serial[f].tile_retention, parallel[f].tile_retention);
            EXPECT_EQ(serial[f].meanRetention(),
                      parallel[f].meanRetention());
        }
    }
}

TEST(Determinism, NeoRendererThreadInvariantAcrossFrames)
{
    // Reuse-and-update sorting carries per-tile tables across frames, so
    // drive several frames and require identical frame hashes, workloads
    // and sorting-hardware counters for threads in {1, 2, 8}.
    SyntheticSceneParams params;
    params.seed = 42;
    params.count = 4000;
    params.name = "determinism-neo";
    GaussianScene scene = generateScene(params);
    Camera cam = frontCamera();

    struct NeoRun
    {
        std::vector<uint64_t> frame_hashes;
        std::vector<SortCoreStats> sort_stats;
        std::vector<std::vector<double>> retention_seqs;
        FrameWorkload last_workload;
    };
    auto run = [&](int threads) {
        PipelineOptions opts = NeoRenderer::neoDefaultOptions();
        opts.threads = threads;
        NeoRenderer renderer(opts);
        NeoRun out;
        for (uint64_t f = 0; f < 4; ++f) {
            NeoFrameReport report;
            out.frame_hashes.push_back(
                hashImage(renderer.renderFrame(scene, cam, f, &report)));
            out.sort_stats.push_back(report.sort);
            out.retention_seqs.push_back(
                renderer.sorter().lastDelta().tile_retention);
        }
        NeoRenderer extract(opts);
        for (uint64_t f = 0; f < 4; ++f)
            out.last_workload = extract.extractWorkload(scene, cam, f);
        return out;
    };

    const NeoRun serial = run(1);
    for (int threads : {2, 8}) {
        const NeoRun parallel = run(threads);
        EXPECT_EQ(serial.frame_hashes, parallel.frame_hashes)
            << "threads=" << threads;
        EXPECT_EQ(serial.retention_seqs, parallel.retention_seqs)
            << "threads=" << threads;
        ASSERT_EQ(serial.sort_stats.size(), parallel.sort_stats.size());
        for (size_t f = 0; f < serial.sort_stats.size(); ++f)
            expectEqualSortStats(serial.sort_stats[f],
                                 parallel.sort_stats[f]);
        EXPECT_EQ(serial.last_workload.instances,
                  parallel.last_workload.instances);
        EXPECT_EQ(serial.last_workload.blend_ops,
                  parallel.last_workload.blend_ops);
        EXPECT_EQ(serial.last_workload.tile_lengths,
                  parallel.last_workload.tile_lengths);
        EXPECT_EQ(serial.last_workload.incoming_instances,
                  parallel.last_workload.incoming_instances);
        EXPECT_EQ(serial.last_workload.outgoing_instances,
                  parallel.last_workload.outgoing_instances);
        EXPECT_EQ(serial.last_workload.mean_tile_retention,
                  parallel.last_workload.mean_tile_retention);
    }
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const RunResult a = runPipeline(42);
    const RunResult b = runPipeline(43);

    // A different seed must actually change the scene; otherwise the
    // bit-identical check above would be vacuous.
    EXPECT_NE(a.frame_hash, b.frame_hash);
}

} // namespace
} // namespace neo::test
