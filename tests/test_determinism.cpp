/**
 * @file
 * Determinism guard: the whole synthetic-scene pipeline must be a pure
 * function of the RNG seed. Two independent runs with the same seed have
 * to produce bit-identical frames and workload descriptors, so any future
 * parallelism PR that introduces nondeterministic reduction order trips
 * this test instead of silently perturbing the paper's figures.
 */

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "gs/pipeline.h"
#include "scene/synthetic.h"
#include "test_util.h"

namespace neo::test
{
namespace
{

/** FNV-1a over the raw bit pattern of every pixel channel. */
uint64_t
hashImage(const Image &img)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint32_t bits) {
        for (int i = 0; i < 4; ++i) {
            h ^= (bits >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const Vec3 &px : img.pixels()) {
        for (float c : {px.x, px.y, px.z}) {
            uint32_t bits;
            std::memcpy(&bits, &c, sizeof(bits));
            mix(bits);
        }
    }
    return h;
}

struct RunResult
{
    uint64_t frame_hash;
    FrameStats stats;
    FrameWorkload workload;
};

RunResult
runPipeline(uint64_t seed)
{
    SyntheticSceneParams params;
    params.seed = seed;
    params.count = 4000;
    params.name = "determinism";
    GaussianScene scene = generateScene(params);

    Renderer renderer;
    Camera cam = frontCamera();

    RunResult out;
    out.frame_hash = hashImage(renderer.render(scene, cam, &out.stats));
    out.workload = renderer.extractWorkload(scene, cam);
    return out;
}

TEST(Determinism, SameSeedBitIdenticalFrames)
{
    const RunResult a = runPipeline(42);
    const RunResult b = runPipeline(42);

    EXPECT_EQ(a.frame_hash, b.frame_hash);
    EXPECT_EQ(a.stats.scene_gaussians, b.stats.scene_gaussians);
    EXPECT_EQ(a.stats.visible_gaussians, b.stats.visible_gaussians);
    EXPECT_EQ(a.stats.instances, b.stats.instances);
    EXPECT_EQ(a.workload.instances, b.workload.instances);
    EXPECT_EQ(a.workload.blend_ops, b.workload.blend_ops);
    EXPECT_EQ(a.workload.tile_lengths, b.workload.tile_lengths);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const RunResult a = runPipeline(42);
    const RunResult b = runPipeline(43);

    // A different seed must actually change the scene; otherwise the
    // bit-identical check above would be vacuous.
    EXPECT_NE(a.frame_hash, b.frame_hash);
}

} // namespace
} // namespace neo::test
