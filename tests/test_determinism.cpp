/**
 * @file
 * Determinism guard: the whole synthetic-scene pipeline must be a pure
 * function of the RNG seed. Two independent runs with the same seed have
 * to produce bit-identical frames and workload descriptors, so any future
 * parallelism PR that introduces nondeterministic reduction order trips
 * this test instead of silently perturbing the paper's figures.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/neo_renderer.h"
#include "gs/pipeline.h"
#include "scene/synthetic.h"
#include "test_util.h"

namespace neo::test
{
namespace
{

/** Canonical bit-pattern hash shared with the scaling bench. */
uint64_t
hashImage(const Image &img)
{
    return img.contentHash();
}

struct RunResult
{
    uint64_t frame_hash;
    FrameStats stats;
    FrameWorkload workload;
};

RunResult
runPipeline(uint64_t seed, int threads = 1)
{
    SyntheticSceneParams params;
    params.seed = seed;
    params.count = 4000;
    params.name = "determinism";
    GaussianScene scene = generateScene(params);

    PipelineOptions opts;
    opts.threads = threads;
    Renderer renderer(opts);
    Camera cam = frontCamera();

    RunResult out;
    out.frame_hash = hashImage(renderer.render(scene, cam, &out.stats));
    out.workload = renderer.extractWorkload(scene, cam);
    return out;
}

void
expectEqualRuns(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.frame_hash, b.frame_hash);
    EXPECT_EQ(a.stats.scene_gaussians, b.stats.scene_gaussians);
    EXPECT_EQ(a.stats.visible_gaussians, b.stats.visible_gaussians);
    EXPECT_EQ(a.stats.instances, b.stats.instances);
    EXPECT_EQ(a.stats.raster.gaussians_in, b.stats.raster.gaussians_in);
    EXPECT_EQ(a.stats.raster.intersection_tests,
              b.stats.raster.intersection_tests);
    EXPECT_EQ(a.stats.raster.gaussians_blended,
              b.stats.raster.gaussians_blended);
    EXPECT_EQ(a.stats.raster.blend_ops, b.stats.raster.blend_ops);
    EXPECT_EQ(a.stats.raster.pixels_terminated,
              b.stats.raster.pixels_terminated);
    EXPECT_EQ(a.workload.instances, b.workload.instances);
    EXPECT_EQ(a.workload.blend_ops, b.workload.blend_ops);
    EXPECT_EQ(a.workload.intersection_tests,
              b.workload.intersection_tests);
    EXPECT_EQ(a.workload.tile_lengths, b.workload.tile_lengths);
}

void
expectEqualSortStats(const SortCoreStats &a, const SortCoreStats &b)
{
    EXPECT_EQ(a.bsu.subchunks, b.bsu.subchunks);
    EXPECT_EQ(a.bsu.compare_exchanges, b.bsu.compare_exchanges);
    EXPECT_EQ(a.bsu.stages, b.bsu.stages);
    EXPECT_EQ(a.msu.merges, b.msu.merges);
    EXPECT_EQ(a.msu.elements_processed, b.msu.elements_processed);
    EXPECT_EQ(a.msu.compares, b.msu.compares);
    EXPECT_EQ(a.msu.filtered_invalid, b.msu.filtered_invalid);
    EXPECT_EQ(a.chunk_loads, b.chunk_loads);
    EXPECT_EQ(a.chunk_stores, b.chunk_stores);
    EXPECT_EQ(a.entries_read, b.entries_read);
    EXPECT_EQ(a.entries_written, b.entries_written);
    EXPECT_EQ(a.global_merge_passes, b.global_merge_passes);
}

TEST(Determinism, SameSeedBitIdenticalFrames)
{
    const RunResult a = runPipeline(42);
    const RunResult b = runPipeline(42);
    expectEqualRuns(a, b);
}

TEST(Determinism, ThreadCountDoesNotChangeAnyBit)
{
    // The determinism contract of common/parallel.h: the whole pipeline
    // (frame pixels, FrameWorkload, raster counters) is bit-identical for
    // threads in {1, 2, 8}, including 8 threads on fewer cores.
    const RunResult serial = runPipeline(42, 1);
    expectEqualRuns(serial, runPipeline(42, 2));
    expectEqualRuns(serial, runPipeline(42, 8));
}

TEST(Determinism, NeoRendererThreadInvariantAcrossFrames)
{
    // Reuse-and-update sorting carries per-tile tables across frames, so
    // drive several frames and require identical frame hashes, workloads
    // and sorting-hardware counters for threads in {1, 2, 8}.
    SyntheticSceneParams params;
    params.seed = 42;
    params.count = 4000;
    params.name = "determinism-neo";
    GaussianScene scene = generateScene(params);
    Camera cam = frontCamera();

    struct NeoRun
    {
        std::vector<uint64_t> frame_hashes;
        std::vector<SortCoreStats> sort_stats;
        FrameWorkload last_workload;
    };
    auto run = [&](int threads) {
        PipelineOptions opts = NeoRenderer::neoDefaultOptions();
        opts.threads = threads;
        NeoRenderer renderer(opts);
        NeoRun out;
        for (uint64_t f = 0; f < 4; ++f) {
            NeoFrameReport report;
            out.frame_hashes.push_back(
                hashImage(renderer.renderFrame(scene, cam, f, &report)));
            out.sort_stats.push_back(report.sort);
        }
        NeoRenderer extract(opts);
        for (uint64_t f = 0; f < 4; ++f)
            out.last_workload = extract.extractWorkload(scene, cam, f);
        return out;
    };

    const NeoRun serial = run(1);
    for (int threads : {2, 8}) {
        const NeoRun parallel = run(threads);
        EXPECT_EQ(serial.frame_hashes, parallel.frame_hashes)
            << "threads=" << threads;
        ASSERT_EQ(serial.sort_stats.size(), parallel.sort_stats.size());
        for (size_t f = 0; f < serial.sort_stats.size(); ++f)
            expectEqualSortStats(serial.sort_stats[f],
                                 parallel.sort_stats[f]);
        EXPECT_EQ(serial.last_workload.instances,
                  parallel.last_workload.instances);
        EXPECT_EQ(serial.last_workload.blend_ops,
                  parallel.last_workload.blend_ops);
        EXPECT_EQ(serial.last_workload.tile_lengths,
                  parallel.last_workload.tile_lengths);
        EXPECT_EQ(serial.last_workload.incoming_instances,
                  parallel.last_workload.incoming_instances);
        EXPECT_EQ(serial.last_workload.outgoing_instances,
                  parallel.last_workload.outgoing_instances);
        EXPECT_EQ(serial.last_workload.mean_tile_retention,
                  parallel.last_workload.mean_tile_retention);
    }
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const RunResult a = runPipeline(42);
    const RunResult b = runPipeline(43);

    // A different seed must actually change the scene; otherwise the
    // bit-identical check above would be vacuous.
    EXPECT_NE(a.frame_hash, b.frame_hash);
}

} // namespace
} // namespace neo::test
