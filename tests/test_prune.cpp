/**
 * @file
 * Unit tests for scene pruning (the §7 composition with Neo).
 */

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "gs/prune.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(PruneTest, ImportanceCriteria)
{
    Gaussian g = test::makeGaussian({0, 0, 0}, 0.2f, 0.5f);
    EXPECT_FLOAT_EQ(pruneImportance(g, PruneCriterion::Opacity), 0.5f);
    EXPECT_NEAR(pruneImportance(g, PruneCriterion::OpacityVolume),
                0.5f * 0.04f, 1e-6f);
}

TEST(PruneTest, ThresholdDropsLowOpacity)
{
    GaussianScene scene;
    for (int i = 0; i < 10; ++i)
        scene.gaussians.push_back(test::makeGaussian(
            {static_cast<float>(i), 0, 0}, 0.1f, i < 4 ? 0.1f : 0.9f));
    recomputeBounds(scene);
    PruneResult r = pruneByThreshold(scene, 0.5f);
    EXPECT_EQ(r.before, 10u);
    EXPECT_EQ(r.after, 6u);
    EXPECT_EQ(scene.size(), 6u);
    for (const auto &g : scene.gaussians)
        EXPECT_GE(g.opacity, 0.5f);
}

TEST(PruneTest, ThresholdZeroKeepsAll)
{
    GaussianScene scene = test::blobScene(100);
    PruneResult r = pruneByThreshold(scene, 0.0f);
    EXPECT_EQ(r.after, 100u);
    EXPECT_DOUBLE_EQ(r.keptFraction(), 1.0);
}

TEST(PruneTest, FractionKeepsExactCount)
{
    GaussianScene scene = test::blobScene(1000, 3);
    PruneResult r = pruneToFraction(scene, 0.25);
    EXPECT_EQ(r.before, 1000u);
    EXPECT_EQ(r.after, 250u);
    EXPECT_EQ(scene.size(), 250u);
}

TEST(PruneTest, FractionKeepsMostImportant)
{
    GaussianScene scene;
    for (int i = 0; i < 100; ++i) {
        float op = 0.01f * (i + 1); // strictly increasing importance
        scene.gaussians.push_back(
            test::makeGaussian({static_cast<float>(i), 0, 0}, 0.1f, op));
    }
    recomputeBounds(scene);
    pruneToFraction(scene, 0.2, PruneCriterion::Opacity);
    ASSERT_EQ(scene.size(), 20u);
    for (const auto &g : scene.gaussians)
        EXPECT_GE(g.opacity, 0.8f);
}

TEST(PruneTest, FractionPreservesOrder)
{
    GaussianScene scene = test::blobScene(500, 5);
    std::vector<Vec3> before;
    for (const auto &g : scene.gaussians)
        before.push_back(g.position);
    pruneToFraction(scene, 0.5);
    // Survivors appear in the same relative order as before.
    size_t cursor = 0;
    for (const auto &g : scene.gaussians) {
        while (cursor < before.size() &&
               (before[cursor].x != g.position.x ||
                before[cursor].y != g.position.y))
            ++cursor;
        ASSERT_LT(cursor, before.size());
        ++cursor;
    }
}

TEST(PruneTest, FractionOneIsNoop)
{
    GaussianScene scene = test::blobScene(100);
    PruneResult r = pruneToFraction(scene, 1.0);
    EXPECT_EQ(r.after, 100u);
}

TEST(PruneTest, FractionZeroKeepsNothing)
{
    GaussianScene scene = test::blobScene(100);
    PruneResult r = pruneToFraction(scene, 0.0);
    EXPECT_EQ(r.after, 0u);
}

TEST(PruneTest, InvalidFractionDies)
{
    GaussianScene scene = test::blobScene(10);
    EXPECT_DEATH({ pruneToFraction(scene, 1.5); }, "outside");
}

TEST(PruneTest, BoundsRecomputedAfterPrune)
{
    GaussianScene scene;
    scene.gaussians.push_back(
        test::makeGaussian({0, 0, 0}, 0.1f, 0.9f));
    scene.gaussians.push_back(
        test::makeGaussian({100, 0, 0}, 0.1f, 0.05f));
    recomputeBounds(scene);
    float before_radius = scene.bounding_radius;
    pruneByThreshold(scene, 0.5f);
    EXPECT_LT(scene.bounding_radius, before_radius);
}

TEST(PruneTest, TieBreakingIsDeterministic)
{
    GaussianScene a, b;
    for (int i = 0; i < 100; ++i) {
        a.gaussians.push_back(
            test::makeGaussian({static_cast<float>(i), 0, 0}, 0.1f, 0.5f));
        b.gaussians.push_back(
            test::makeGaussian({static_cast<float>(i), 0, 0}, 0.1f, 0.5f));
    }
    pruneToFraction(a, 0.3, PruneCriterion::Opacity);
    pruneToFraction(b, 0.3, PruneCriterion::Opacity);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.size(), 30u);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(a[i].position.x, b[i].position.x);
}

} // namespace
} // namespace neo
