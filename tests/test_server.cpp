/**
 * @file
 * Multi-session serving layer tests: admission control, the three queue
 * drop policies, staleness shedding, deadline-driven degradation (with
 * the bit-exactness contract of the direct path), watchdog-tripped
 * quarantine and recovery, the terminal Degraded ladder, attest-mode
 * faults flowing through quarantine, and the fault-isolation contract —
 * healthy sessions' frame hashes bit-identical to solo runs at thread
 * counts {1, 2, 8} while a sibling faults.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/faultinject.h"
#include "common/integrity.h"
#include "serve/server.h"
#include "scene/trajectory.h"
#include "test_util.h"

namespace neo::serve::test
{
namespace
{

using neo::test::smallRes;
using neo::test::tinySyntheticScene;

std::shared_ptr<const GaussianScene>
sharedScene()
{
    static const auto scene = std::make_shared<const GaussianScene>(
        tinySyntheticScene(1500, 77));
    return scene;
}

/** Hermetic server config: integrity off, env-independent defaults, and
    a watchdog floor high enough that scheduler-contention spikes (the
    suite runs under a parallel ctest) can never trip it spuriously —
    tests that want trips inject stalls far above it. */
ServerConfig
baseConfig(int threads = 1)
{
    ServerConfig cfg;
    cfg.pipeline = NeoRenderer::neoDefaultOptions();
    cfg.pipeline.threads = threads;
    cfg.pipeline.integrity = IntegrityMode::Off;
    cfg.watchdog_floor_ms = 250.0 * neo::test::sanitizerTimeScale();
    return cfg;
}

Trajectory
orbitAt(float speed = 1.0f)
{
    return Trajectory(TrajectoryKind::Orbit, *sharedScene(), speed);
}

/** Solo frame hashes of a trajectory (bit-identical at any thread
    count, so one serial run is ground truth for every config). */
std::vector<uint64_t>
soloHashes(const Trajectory &traj, int frames, Resolution res,
           const PipelineOptions &opts)
{
    PipelineOptions solo_opts = opts;
    solo_opts.threads = 1;
    NeoRenderer solo(solo_opts);
    Image img;
    std::vector<uint64_t> hashes;
    for (int f = 0; f < frames; ++f) {
        solo.renderFrameInto(img, *sharedScene(), traj.cameraAt(f, res),
                             static_cast<uint64_t>(f));
        hashes.push_back(img.contentHash());
    }
    return hashes;
}

/** Hash of one frame rendered by a brand-new renderer (cold start) —
    the ground truth for post-rebuild and direct-path frames. */
uint64_t
coldFrameHash(const Camera &camera, uint64_t frame_index,
              const PipelineOptions &opts)
{
    PipelineOptions solo_opts = opts;
    solo_opts.threads = 1;
    NeoRenderer solo(solo_opts);
    Image img;
    solo.renderFrameInto(img, *sharedScene(), camera, frame_index);
    return img.contentHash();
}

// --- Admission control -------------------------------------------------

TEST(ServerAdmissionTest, CapsLiveSessionsAndRecyclesSlots)
{
    ServerConfig cfg = baseConfig();
    cfg.max_sessions = 2;
    NeoServer server(sharedScene(), cfg);

    const AdmitResult a = server.open(orbitAt(), smallRes());
    const AdmitResult b = server.open(orbitAt(), smallRes());
    ASSERT_TRUE(a.admitted);
    ASSERT_TRUE(b.admitted);
    EXPECT_NE(a.session_id, b.session_id);
    EXPECT_EQ(server.liveSessions(), 2u);

    const AdmitResult c = server.open(orbitAt(), smallRes());
    EXPECT_FALSE(c.admitted);
    EXPECT_STREQ(c.reason, "server full");

    EXPECT_TRUE(server.close(a.session_id));
    EXPECT_FALSE(server.close(a.session_id)) << "double close";
    EXPECT_EQ(server.session(a.session_id), nullptr);
    EXPECT_EQ(server.liveSessions(), 1u);

    const AdmitResult d = server.open(orbitAt(), smallRes());
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(d.session_id, a.session_id) << "freed slot is recycled";
}

// --- Queue policies ----------------------------------------------------

TEST(SessionQueueTest, DropOldestDisplacesTheFront)
{
    ServerConfig cfg = baseConfig();
    cfg.default_qos.queue_capacity = 2;
    cfg.default_qos.drop_policy = DropPolicy::DropOldest;
    NeoServer server(sharedScene(), cfg);
    Session *s = server.session(server.open(orbitAt(), smallRes()).session_id);

    EXPECT_TRUE(s->submit(0).accepted);
    EXPECT_TRUE(s->submit(1).accepted);
    const SubmitResult r = s->submit(2);
    EXPECT_TRUE(r.accepted);
    EXPECT_TRUE(r.dropped_oldest);
    EXPECT_EQ(s->queueDepth(), 2u);

    FrameOutcome o;
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.request, 1u) << "frame 0 was displaced";
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.request, 2u);
    EXPECT_EQ(s->stats().dropped_oldest, 1u);
}

TEST(SessionQueueTest, RejectBackoffKeepsQueueAndHintsRetry)
{
    ServerConfig cfg = baseConfig();
    cfg.default_qos.queue_capacity = 2;
    cfg.default_qos.drop_policy = DropPolicy::RejectBackoff;
    NeoServer server(sharedScene(), cfg);
    Session *s = server.session(server.open(orbitAt(), smallRes()).session_id);

    EXPECT_TRUE(s->submit(0).accepted);
    EXPECT_TRUE(s->submit(1).accepted);
    const SubmitResult r = s->submit(2);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.retry_after_frames, 2) << "queue depth is the hint";
    EXPECT_EQ(s->queueDepth(), 2u);

    FrameOutcome o;
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.request, 0u) << "queued requests were not disturbed";
    EXPECT_EQ(s->stats().rejected, 1u);
}

TEST(SessionQueueTest, CoalesceLatestReplacesTheNewest)
{
    ServerConfig cfg = baseConfig();
    cfg.default_qos.queue_capacity = 2;
    cfg.default_qos.drop_policy = DropPolicy::CoalesceLatest;
    NeoServer server(sharedScene(), cfg);
    Session *s = server.session(server.open(orbitAt(), smallRes()).session_id);

    EXPECT_TRUE(s->submit(0).accepted);
    EXPECT_TRUE(s->submit(1).accepted);
    const SubmitResult r = s->submit(2);
    EXPECT_TRUE(r.accepted);
    EXPECT_TRUE(r.coalesced);

    FrameOutcome o;
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.request, 0u);
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.request, 2u) << "frame 1 coalesced into frame 2";
    EXPECT_FALSE(s->step(&o));
    EXPECT_EQ(s->stats().coalesced, 1u);
}

TEST(SessionQueueTest, StaleRequestsAreShedAtDequeue)
{
    ServerConfig cfg = baseConfig();
    cfg.default_qos.queue_capacity = 8;
    cfg.default_qos.max_staleness = 2;
    NeoServer server(sharedScene(), cfg);
    Session *s = server.session(server.open(orbitAt(), smallRes()).session_id);

    for (uint64_t f = 0; f < 5; ++f)
        EXPECT_TRUE(s->submit(f).accepted);
    // submit_seq is 5; requests with seq 1..2 are older than 2
    // submissions and shed, seq 3..5 (frames 2..4) survive.
    FrameOutcome o;
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.request, 2u);
    EXPECT_EQ(s->stats().dropped_stale, 2u);
    EXPECT_EQ(s->drain(), 2u);
    EXPECT_EQ(s->stats().rendered, 3u);
}

// --- Bit-exactness of served frames ------------------------------------

TEST(ServerIsolationTest, ServedFramesMatchSoloRenderer)
{
    const int frames = 4;
    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ServerConfig cfg = baseConfig(threads);
        NeoServer server(sharedScene(), cfg);
        Session *s =
            server.session(server.open(orbitAt(), smallRes()).session_id);
        const std::vector<uint64_t> solo =
            soloHashes(orbitAt(), frames, smallRes(), cfg.pipeline);

        for (int f = 0; f < frames; ++f) {
            s->submit(static_cast<uint64_t>(f));
            FrameOutcome o;
            ASSERT_TRUE(s->step(&o));
            ASSERT_TRUE(o.rendered);
            EXPECT_EQ(o.frame_hash, solo[static_cast<size_t>(f)])
                << "frame " << f;
            EXPECT_EQ(o.resolution_drop, 0);
            EXPECT_FALSE(o.direct_path);
        }
    }
}

// --- Deadline-driven degradation ---------------------------------------

TEST(SessionDegradationTest, ImpossibleDeadlineWalksTheLadder)
{
    ServerConfig cfg = baseConfig();
    QosTarget qos;
    qos.deadline_ms = 1e-6; // everything misses
    qos.max_resolution_drop = 1;
    NeoServer server(sharedScene(), cfg);
    Session *s = server.session(
        server.open(orbitAt(), smallRes(), qos).session_id);

    // Frame 0 renders native (no prediction yet); the first miss drops
    // the tier, the second escalates to skipping the sorter update.
    FrameOutcome o;
    s->submit(0);
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.resolution_drop, 0);
    EXPECT_TRUE(o.deadline_missed);

    s->submit(1);
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.resolution_drop, 1);
    EXPECT_FALSE(o.direct_path);

    s->submit(2);
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.resolution_drop, 1) << "tier capped at max_resolution_drop";
    EXPECT_TRUE(o.direct_path) << "ladder escalates to sorter skip";

    const SessionStats stats = s->stats();
    EXPECT_EQ(stats.deadline_misses, 3u);
    EXPECT_EQ(stats.degraded_frames, 2u);
    EXPECT_EQ(s->state(), SessionState::Healthy)
        << "degradation is not a fault";
}

TEST(SessionDegradationTest, DegradedFramesStayBitExactForTheirTier)
{
    // The degradation ladder trades resolution/sort freshness, never
    // determinism: a tier-dropped frame equals a solo render at the tier
    // resolution, and a direct-path frame equals a cold-start render.
    ServerConfig cfg = baseConfig();
    QosTarget qos;
    qos.deadline_ms = 1e-6;
    qos.max_resolution_drop = 1;
    NeoServer server(sharedScene(), cfg);
    Session *s = server.session(
        server.open(orbitAt(), smallRes(), qos).session_id);

    FrameOutcome o;
    for (uint64_t f = 0; f <= 3; ++f) {
        s->submit(f);
        ASSERT_TRUE(s->step(&o));
        Resolution res = smallRes();
        res.width = std::max(res.width >> o.resolution_drop, 32);
        res.height = std::max(res.height >> o.resolution_drop, 32);
        if (o.direct_path || f == 0 || o.resolution_drop > 0) {
            // Tier changes cold-start the sorter (table shape changes),
            // and the direct path is defined as the cold-start render.
            EXPECT_EQ(o.frame_hash,
                      coldFrameHash(orbitAt().cameraAt(
                                        static_cast<int>(f), res),
                                    f, cfg.pipeline))
                << "frame " << f;
        }
    }
}

// --- Watchdog-tripped quarantine and recovery --------------------------

TEST(SessionQuarantineTest, StallTripsWatchdogQuarantinesAndRecovers)
{
    ServerConfig cfg = baseConfig();
    cfg.watchdog_warmup = 2;
    cfg.watchdog_floor_ms = 100.0 * neo::test::sanitizerTimeScale();
    cfg.backoff_base = 1;
    NeoServer server(sharedScene(), cfg);
    Session *s = server.session(server.open(orbitAt(), smallRes()).session_id);

    // Warm the watchdog history with healthy frames.
    FrameOutcome o;
    for (uint64_t f = 0; f < 4; ++f) {
        s->submit(f);
        ASSERT_TRUE(s->step(&o));
        EXPECT_EQ(o.state, SessionState::Healthy);
    }

    // One wedged sort stage: trip -> quarantine.
    s->injectStall(StageWatchdog::Sort,
                   400.0 * neo::test::sanitizerTimeScale(), 1);
    s->submit(4);
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.watchdog_stage, StageWatchdog::Sort);
    EXPECT_EQ(o.state, SessionState::Quarantined);
    EXPECT_EQ(s->stats().watchdog_trips, 1u);
    EXPECT_EQ(s->stats().quarantines, 1u);

    // backoff_base=1: the next request burns the ladder step...
    s->submit(5);
    ASSERT_TRUE(s->step(&o));
    EXPECT_FALSE(o.rendered);
    EXPECT_EQ(o.state, SessionState::Quarantined);
    EXPECT_EQ(s->stats().backoff_skips, 1u);

    // ...and the one after that is the recovery attempt: rebuilt
    // renderer, cold-start render, bit-identical to a fresh renderer.
    s->submit(6);
    ASSERT_TRUE(s->step(&o));
    ASSERT_TRUE(o.rendered);
    EXPECT_EQ(o.state, SessionState::Healthy);
    EXPECT_EQ(o.rebuilds, 1u);
    EXPECT_EQ(s->stats().recoveries, 1u);
    EXPECT_EQ(o.frame_hash,
              coldFrameHash(orbitAt().cameraAt(6, smallRes()), 6,
                            cfg.pipeline));

    // Healthy again: subsequent frames keep serving.
    s->submit(7);
    ASSERT_TRUE(s->step(&o));
    EXPECT_TRUE(o.rendered);
    EXPECT_EQ(o.state, SessionState::Healthy);
}

TEST(SessionQuarantineTest, PersistentFaultClimbsLadderToDegraded)
{
    ServerConfig cfg = baseConfig();
    cfg.pipeline.integrity = IntegrityMode::Check;
    cfg.quarantine_max_failures = 2;
    cfg.backoff_base = 1;
    NeoServer server(sharedScene(), cfg);
    Session *s = server.session(server.open(orbitAt(), smallRes()).session_id);
    const uint64_t domain = s->id();

    FrameOutcome o;
    s->submit(0);
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.state, SessionState::Healthy);

    // Fault 1: quarantine.
    faultinject::armBitFlip(kIntegrityBinTiles, -1, 7,
                            static_cast<int64_t>(domain));
    s->submit(1);
    ASSERT_TRUE(s->step(&o));
    EXPECT_GT(o.faults, 0u);
    EXPECT_EQ(o.state, SessionState::Quarantined);

    // Backoff step.
    s->submit(2);
    ASSERT_TRUE(s->step(&o));
    EXPECT_FALSE(o.rendered);

    // Recovery attempt faults again -> failures reach
    // quarantine_max_failures -> terminal Degraded.
    faultinject::armBitFlip(kIntegrityBinTiles, -1, 8,
                            static_cast<int64_t>(domain));
    s->submit(3);
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.state, SessionState::Degraded);
    EXPECT_EQ(s->stats().faults, 2u);

    // Degraded is terminal: submissions reject with a reconnect hint,
    // queued requests drop.
    const SubmitResult r = s->submit(4);
    EXPECT_FALSE(r.accepted);
    EXPECT_GT(r.retry_after_frames, 0);
    EXPECT_EQ(s->state(), SessionState::Degraded);
    faultinject::disarm();
}

// --- Attest mode flows through quarantine ------------------------------

TEST(SessionAttestTest, AttestMismatchQuarantinesTheSession)
{
    ServerConfig cfg = baseConfig();
    cfg.pipeline.integrity = IntegrityMode::Attest;
    cfg.backoff_base = 1;
    NeoServer server(sharedScene(), cfg);
    Session *s = server.session(server.open(orbitAt(), smallRes()).session_id);
    const std::vector<uint64_t> solo =
        soloHashes(orbitAt(), 3, smallRes(), cfg.pipeline);

    // Clean attest frames are non-perturbing and fault-free.
    FrameOutcome o;
    for (uint64_t f = 0; f < 3; ++f) {
        s->submit(f);
        ASSERT_TRUE(s->step(&o));
        EXPECT_EQ(o.faults, 0u) << "frame " << f;
        EXPECT_EQ(o.frame_hash, solo[static_cast<size_t>(f)]);
    }

    // Corrupt the delivered framebuffer on an attest-due frame (default
    // period 4: frame 4 is due): the cross-render catches it and the
    // fault quarantines the session like any other FaultReport.
    faultinject::armBitFlip(kIntegrityAttestFrame, -1, 9,
                            static_cast<int64_t>(s->id()));
    s->submit(4);
    ASSERT_TRUE(s->step(&o));
    EXPECT_GT(o.faults, 0u);
    EXPECT_EQ(o.state, SessionState::Quarantined);
    EXPECT_NE(o.frame_hash, coldFrameHash(orbitAt().cameraAt(4, smallRes()),
                                          4, cfg.pipeline))
        << "attest is detection-only: the delivered frame stays corrupted";

    // Recovery: backoff, rebuild, healthy.
    s->submit(5);
    ASSERT_TRUE(s->step(&o));
    EXPECT_FALSE(o.rendered);
    s->submit(6);
    ASSERT_TRUE(s->step(&o));
    EXPECT_EQ(o.state, SessionState::Healthy);
    faultinject::disarm();
}

// --- Fault isolation across sessions -----------------------------------

TEST(ServerIsolationTest, VictimFaultsNeverPerturbHealthySessions)
{
    const int frames = 6;
    const std::vector<Trajectory> trajectories = {orbitAt(1.0f),
                                                  orbitAt(1.5f),
                                                  orbitAt(2.0f)};
    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ServerConfig cfg = baseConfig(threads);
        cfg.pipeline.integrity = IntegrityMode::Check;
        cfg.backoff_base = 1;
        cfg.quarantine_max_failures = 64; // never terminal in this test
        NeoServer server(sharedScene(), cfg);

        std::vector<Session *> sessions;
        std::vector<std::vector<uint64_t>> solo;
        for (const Trajectory &t : trajectories) {
            sessions.push_back(
                server.session(server.open(t, smallRes()).session_id));
            solo.push_back(
                soloHashes(t, frames, smallRes(), cfg.pipeline));
        }
        Session *victim = sessions[1];

        for (int f = 0; f < frames; ++f) {
            // A fresh fault aimed at the victim every frame, pinned to
            // its injection domain so a healthy session can never
            // consume it.
            faultinject::armBitFlip(kIntegrityBinTiles, -1,
                                    static_cast<uint64_t>(100 + f),
                                    static_cast<int64_t>(victim->id()));
            for (Session *s : sessions)
                s->submit(static_cast<uint64_t>(f));
            server.pump();

            for (size_t i = 0; i < sessions.size(); ++i) {
                if (sessions[i] == victim)
                    continue;
                // Healthy sessions delivered this frame bit-identically
                // to their solo runs, no matter what the victim did.
                EXPECT_EQ(sessions[i]->lastImage().contentHash(),
                          solo[i][static_cast<size_t>(f)])
                    << "session " << i << " frame " << f;
                EXPECT_EQ(sessions[i]->state(), SessionState::Healthy);
                EXPECT_EQ(sessions[i]->stats().faults, 0u);
            }
        }
        faultinject::disarm();

        // The victim took faults and quarantined along the way...
        EXPECT_GT(victim->stats().faults, 0u);
        EXPECT_GT(victim->stats().quarantines, 0u);

        // ...and converges back to Healthy once the faults stop. The
        // recovery frame (the render that flips the state back) runs on
        // a rebuilt renderer, so it is bit-identical to a cold-start
        // render; frames after it are warm reuse frames with no solo
        // ground truth, and only need to stay fault-free.
        uint64_t f = frames;
        FrameOutcome recovery;
        bool saw_recovery = false;
        FrameOutcome o;
        for (int i = 0; i < 16 && victim->state() != SessionState::Healthy;
             ++i, ++f) {
            victim->submit(f);
            victim->step(&o);
            if (o.rendered) {
                recovery = o;
                saw_recovery = true;
            }
        }
        ASSERT_EQ(victim->state(), SessionState::Healthy);
        ASSERT_TRUE(saw_recovery);
        EXPECT_EQ(recovery.frame_hash,
                  coldFrameHash(trajectories[1].cameraAt(
                                    static_cast<int>(recovery.request),
                                    smallRes()),
                                recovery.request, cfg.pipeline));
        victim->submit(f);
        ASSERT_TRUE(victim->step(&o));
        ASSERT_TRUE(o.rendered);
        EXPECT_EQ(o.faults, 0u);
    }
}

// --- Concurrent drain --------------------------------------------------

TEST(ServerConcurrencyTest, ConcurrentDrainMatchesSoloHashes)
{
    const int frames = 4;
    const std::vector<Trajectory> trajectories = {
        orbitAt(1.0f), orbitAt(1.25f), orbitAt(1.5f), orbitAt(1.75f)};
    for (int drivers : {1, 2, 8}) {
        SCOPED_TRACE("drivers=" + std::to_string(drivers));
        ServerConfig cfg = baseConfig(2);
        NeoServer server(sharedScene(), cfg);

        std::vector<Session *> sessions;
        for (const Trajectory &t : trajectories)
            sessions.push_back(
                server.session(server.open(t, smallRes()).session_id));

        for (int f = 0; f < frames; ++f)
            for (Session *s : sessions)
                s->submit(static_cast<uint64_t>(f));
        EXPECT_EQ(server.drainConcurrent(drivers),
                  static_cast<size_t>(frames) * sessions.size());

        // Every session's last frame matches its solo run — driver
        // partitioning and pool-dispatch interleaving are invisible.
        for (size_t i = 0; i < sessions.size(); ++i) {
            const std::vector<uint64_t> solo = soloHashes(
                trajectories[i], frames, smallRes(), cfg.pipeline);
            EXPECT_EQ(sessions[i]->lastImage().contentHash(),
                      solo.back())
                << "session " << i;
            EXPECT_EQ(sessions[i]->stats().rendered,
                      static_cast<uint64_t>(frames));
        }
    }
}

} // namespace
} // namespace neo::serve::test
