/**
 * @file
 * Randomized multi-session soak: K sessions served concurrently from
 * persistent driver threads while one victim session takes shuffled
 * per-frame fault injection (bit flips across every control-thread fence
 * point, attest-frame corruption, and stage stalls). The contract under
 * test is the serving layer's strongest claim: the healthy sessions'
 * delivered frame hashes are bit-identical to solo single-session runs
 * for every frame at every thread count, and the victim converges back
 * to Healthy once the fault source stops.
 *
 * Runs under both the `server` and `integrity` ctest labels.
 */

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/faultinject.h"
#include "common/integrity.h"
#include "serve/server.h"
#include "scene/trajectory.h"
#include "test_util.h"

namespace neo::serve::test
{
namespace
{

using neo::test::smallRes;
using neo::test::tinySyntheticScene;

/** Every injection point that executes on the frame's control thread —
    the set a domain-pinned flip can actually land in. */
const char *const kSoakPoints[] = {
    kIntegrityBinTiles,    kIntegritySortTables, kIntegrityProjMean2d,
    kIntegrityProjRadius,  kIntegrityProjDepth,  kIntegrityProjConic,
    kIntegrityAttestFrame,
};

TEST(ServerSoakTest, HealthySessionsSurviveARandomlyFaultingSibling)
{
    const int frames = 10;
    const size_t victim_index = 1;
    const auto scene = std::make_shared<const GaussianScene>(
        tinySyntheticScene(1500, 77));
    const std::vector<Trajectory> trajectories = {
        Trajectory(TrajectoryKind::Orbit, *scene),
        Trajectory(TrajectoryKind::Dolly, *scene),
        Trajectory(TrajectoryKind::Walk, *scene),
    };

    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ServerConfig cfg;
        cfg.pipeline = NeoRenderer::neoDefaultOptions();
        cfg.pipeline.threads = threads;
        // Attest mode keeps every fence point (projection spans, bin
        // tiles, sort tables, attest cross-render) live, so each
        // shuffled injection point can actually fire.
        cfg.pipeline.integrity = IntegrityMode::Attest;
        cfg.backoff_base = 1;
        cfg.backoff_cap = 2;
        // The ladder must never turn terminal in this test: the victim
        // has to keep attempting recovery so it can converge at the end.
        cfg.quarantine_max_failures = 64;
        cfg.watchdog_warmup = 2;
        // The floor must clear scheduler-contention spikes (three driver
        // threads, parallel ctest load): healthy stages on this tiny
        // scene are sub-millisecond, so only the victim's injected
        // stalls may trip. Both sides scale together under sanitizer
        // instrumentation, which dilates healthy stage times 10x+.
        cfg.watchdog_floor_ms = 150.0 * neo::test::sanitizerTimeScale();
        NeoServer server(scene, cfg);

        std::vector<Session *> sessions;
        std::vector<std::vector<uint64_t>> solo;
        for (const Trajectory &t : trajectories) {
            const AdmitResult admit = server.open(t, smallRes());
            ASSERT_TRUE(admit.admitted);
            sessions.push_back(server.session(admit.session_id));

            PipelineOptions solo_opts = cfg.pipeline;
            solo_opts.threads = 1;
            NeoRenderer solo_renderer(solo_opts);
            Image img;
            std::vector<uint64_t> hashes;
            for (int f = 0; f < frames; ++f) {
                solo_renderer.renderFrameInto(
                    img, *scene, t.cameraAt(f, smallRes()),
                    static_cast<uint64_t>(f));
                hashes.push_back(img.contentHash());
            }
            solo.push_back(std::move(hashes));
        }
        Session *victim = sessions[victim_index];

        // Soak: one persistent driver thread per session. The main
        // thread paces the frames and aims a freshly shuffled fault at
        // the victim before each one; healthy drivers record their
        // delivered hashes for post-join comparison (no ASSERTs off the
        // main thread).
        std::mt19937 rng(0xa5f00du + static_cast<unsigned>(threads));
        std::vector<std::vector<uint64_t>> delivered(sessions.size());
        for (auto &d : delivered)
            d.assign(static_cast<size_t>(frames), 0);

        for (int f = 0; f < frames; ++f) {
            const char *point =
                kSoakPoints[rng() % std::size(kSoakPoints)];
            faultinject::armBitFlip(
                point, -1, rng(),
                static_cast<int64_t>(victim->id()));
            if (rng() % 4 == 0)
                victim->injectStall(
                    static_cast<int>(rng() % StageWatchdog::kStageCount),
                    500.0 * neo::test::sanitizerTimeScale(), 1);

            std::vector<std::thread> drivers;
            for (size_t i = 0; i < sessions.size(); ++i) {
                drivers.emplace_back([&, i, f] {
                    sessions[i]->submit(static_cast<uint64_t>(f));
                    FrameOutcome o;
                    sessions[i]->step(&o);
                    if (o.rendered)
                        delivered[i][static_cast<size_t>(f)] =
                            o.frame_hash;
                });
            }
            for (auto &d : drivers)
                d.join();
        }
        faultinject::disarm();
        victim->injectStall(0, 0.0, 0);

        // Healthy sessions: every delivered frame bit-identical to the
        // solo run, no faults, no state excursions.
        for (size_t i = 0; i < sessions.size(); ++i) {
            if (i == victim_index)
                continue;
            for (int f = 0; f < frames; ++f)
                EXPECT_EQ(delivered[i][static_cast<size_t>(f)],
                          solo[i][static_cast<size_t>(f)])
                    << "session " << i << " frame " << f;
            EXPECT_EQ(sessions[i]->state(), SessionState::Healthy);
            EXPECT_EQ(sessions[i]->stats().faults, 0u);
            EXPECT_EQ(sessions[i]->stats().quarantines, 0u);
        }

        // The victim saw real trouble...
        EXPECT_GT(victim->stats().faults + victim->stats().watchdog_trips,
                  0u);

        // ...and converges back to Healthy once the faults stop. The
        // recovery frame runs on a rebuilt renderer (cold start), so its
        // hash is bit-identical to a fresh solo render of that frame;
        // warm reuse frames after it only need to stay fault-free.
        uint64_t f = static_cast<uint64_t>(frames);
        FrameOutcome recovery;
        bool saw_recovery = false;
        FrameOutcome o;
        for (int i = 0;
             i < 32 && victim->state() != SessionState::Healthy;
             ++i, ++f) {
            victim->submit(f);
            victim->step(&o);
            if (o.rendered) {
                recovery = o;
                saw_recovery = true;
            }
        }
        ASSERT_EQ(victim->state(), SessionState::Healthy)
            << "victim failed to converge after the fault source stopped";
        victim->submit(f);
        ASSERT_TRUE(victim->step(&o));
        ASSERT_TRUE(o.rendered);
        EXPECT_EQ(o.faults, 0u);

        if (saw_recovery) {
            PipelineOptions solo_opts = cfg.pipeline;
            solo_opts.threads = 1;
            NeoRenderer cold(solo_opts);
            Image img;
            cold.renderFrameInto(img, *scene,
                                 trajectories[victim_index].cameraAt(
                                     static_cast<int>(recovery.request),
                                     smallRes()),
                                 recovery.request);
            EXPECT_EQ(recovery.frame_hash, img.contentHash());
        }
    }
}

} // namespace
} // namespace neo::serve::test
