/**
 * @file
 * Edge-case and failure-injection tests across modules: image-boundary
 * tiles, degenerate Gaussians, abrupt camera teleports (§4.1's "even
 * under abrupt camera motion" claim), heavy depth ties, and model
 * monotonicity sweeps across resolutions.
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/reuse_update.h"
#include "gs/pipeline.h"
#include "gs/projection.h"
#include "metrics/psnr.h"
#include "sim/gpu_model.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"
#include "sort/strategies.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(EdgeCaseTest, ResolutionNotMultipleOfTileSize)
{
    // 250x190 with 64-px tiles leaves ragged edge tiles; rendering must
    // not touch out-of-bounds pixels and must still produce content.
    GaussianScene scene = test::blobScene(300);
    Camera cam(Resolution{250, 190, "ragged"}, deg2rad(50.0f));
    cam.lookAt({0.0f, 0.0f, -5.0f}, {0.0f, 0.0f, 0.0f});
    PipelineOptions opts;
    opts.tile_px = 64;
    Renderer renderer(opts);
    FrameStats stats;
    Image img = renderer.render(scene, cam, &stats);
    EXPECT_GT(stats.raster.blend_ops, 0u);
    EXPECT_GE(img.width(), 250);
    EXPECT_GE(img.height(), 190);
}

TEST(EdgeCaseTest, GaussianExactlyOnTileBorder)
{
    GaussianScene scene;
    scene.gaussians.push_back(
        test::makeGaussian({0.0f, 0.0f, 0.0f}, 0.15f, 0.9f,
                           {0.0f, 1.0f, 0.0f}));
    recomputeBounds(scene);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 16);
    // The projected center lands at the image center = a tile corner for
    // 256x192 with 16-px tiles; the Gaussian must be binned into every
    // adjacent tile.
    const ProjectedGaussian &pg = frame.features.at(0);
    TileRect rect = tileRectOf(pg, frame.grid);
    EXPECT_GE(rect.count(), 4);
}

TEST(EdgeCaseTest, FullyTransparentGaussiansBlendNothing)
{
    GaussianScene scene;
    for (int i = 0; i < 20; ++i) {
        Gaussian g = test::makeGaussian(
            {0.1f * i, 0.0f, 0.0f}, 0.2f, 0.0005f); // below 1/255 thresh
        scene.gaussians.push_back(g);
    }
    recomputeBounds(scene);
    Camera cam = test::frontCamera(5.0f);
    Renderer renderer;
    FrameStats stats;
    Image img = renderer.render(scene, cam, &stats);
    EXPECT_EQ(stats.raster.blend_ops, 0u);
    for (const auto &p : img.pixels())
        EXPECT_FLOAT_EQ(p.x + p.y + p.z, 0.0f);
}

TEST(EdgeCaseTest, ExtremeFovStillProjects)
{
    Camera wide(test::smallRes(), deg2rad(140.0f));
    wide.lookAt({0.0f, 0.0f, -2.0f}, {0.0f, 0.0f, 0.0f});
    Camera narrow(test::smallRes(), deg2rad(5.0f));
    narrow.lookAt({0.0f, 0.0f, -2.0f}, {0.0f, 0.0f, 0.0f});
    Gaussian g = test::makeGaussian({0.0f, 0.0f, 0.0f}, 0.1f);
    auto pw = projectGaussian(g, 0, wide);
    auto pn = projectGaussian(g, 0, narrow);
    ASSERT_TRUE(pw && pn);
    // Narrow FOV magnifies: larger screen radius.
    EXPECT_GT(pn->radius_px, pw->radius_px);
}

TEST(EdgeCaseTest, CameraTeleportRecoversWithinFrames)
{
    // §4.1: "Even under abrupt camera motion, this method recovers the
    // correct ordering within a few frames." Teleport the camera to the
    // opposite side of the scene and verify membership correctness and
    // quality recovery.
    GaussianScene scene = test::tinySyntheticScene(5000, 31);
    PipelineOptions opts;
    opts.tile_px = 32;
    Renderer base(opts);
    ReuseUpdateSorter sorter;

    auto camAt = [&](float angle) {
        Camera cam(test::smallRes(), deg2rad(50.0f));
        float r = 2.0f * scene.bounding_radius;
        cam.lookAt({scene.center.x + r * std::sin(angle),
                    scene.center.y + 0.4f * scene.bounding_radius,
                    scene.center.z - r * std::cos(angle)},
                   scene.center);
        return cam;
    };

    // Settle for two frames, then teleport by ~120 degrees.
    for (int f = 0; f < 2; ++f) {
        BinnedFrame frame = binFrame(scene, camAt(0.01f * f), 32);
        sorter.beginFrame(frame, f);
    }
    double teleport_psnr = 0.0, recovered_psnr = 0.0;
    for (int f = 2; f < 6; ++f) {
        Camera cam = camAt(2.1f + 0.01f * f);
        BinnedFrame frame = binFrame(scene, cam, 32);
        sorter.beginFrame(frame, f);
        Image ref = base.render(scene, cam);
        Image img = base.renderWithOrdering(frame, sorter.orderings());
        double q = psnr(ref, img);
        if (f == 2)
            teleport_psnr = q;
        recovered_psnr = q;
    }
    // Right after the teleport the ordering may be rough, but within a
    // few frames quality must recover to near-reference.
    EXPECT_GT(recovered_psnr, 30.0);
    EXPECT_GE(recovered_psnr + 1e-9, teleport_psnr);
}

TEST(EdgeCaseTest, HeavyDepthTiesSortDeterministically)
{
    std::vector<TileEntry> t;
    for (int i = 999; i >= 0; --i)
        t.push_back({static_cast<GaussianId>(i), 1.0f, true});
    fullSortTable(t);
    for (size_t i = 0; i + 1 < t.size(); ++i)
        EXPECT_LT(t[i].id, t[i + 1].id);
}

TEST(EdgeCaseTest, PeriodicWithPeriodOneIsFullSort)
{
    GaussianScene scene = test::blobScene(200);
    PeriodicSortStrategy periodic(1);
    FullSortStrategy full;
    for (int f = 0; f < 3; ++f) {
        Camera cam = test::frontCamera(5.0f + 0.1f * f);
        BinnedFrame frame = binFrame(scene, cam, 16);
        periodic.beginFrame(frame, f);
        full.beginFrame(frame, f);
        EXPECT_TRUE(periodic.refreshedLastFrame());
        for (int t = 0; t < frame.grid.tileCount(); ++t) {
            const auto &a = periodic.tileOrder(t);
            const auto &b = full.tileOrder(t);
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i)
                EXPECT_EQ(a[i].id, b[i].id);
        }
    }
}

/** Parameterized monotonicity sweep across resolutions for all models. */
class ModelResolutionTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    static FrameWorkload
    workloadFor(Resolution res, int tile_px)
    {
        FrameWorkload w;
        w.res = res;
        w.tile_size = tile_px;
        w.scene_gaussians = 500000;
        w.visible_gaussians = 300000;
        double dup = (tile_px == 16 ? 5.0 : 1.6) *
                     (static_cast<double>(res.pixels()) / kResHD.pixels());
        w.instances = static_cast<uint64_t>(w.visible_gaussians * dup);
        w.incoming_instances = w.instances / 30;
        w.outgoing_instances = w.instances / 30;
        w.blend_ops = static_cast<uint64_t>(res.pixels() * 35.0);
        w.intersection_tests = w.instances * 16;
        w.tile_lengths.assign(100, static_cast<uint32_t>(w.instances / 100));
        return w;
    }
};

TEST_P(ModelResolutionTest, HigherResolutionNeverFaster)
{
    auto [lo_idx, hi_idx] = GetParam();
    Resolution rs[] = {kResHD, kResFHD, kResQHD};
    Resolution lo = rs[lo_idx], hi = rs[hi_idx];

    EXPECT_GE(GpuModel().simulateFrame(workloadFor(lo, 16)).fps(),
              GpuModel().simulateFrame(workloadFor(hi, 16)).fps());
    EXPECT_GE(GscoreModel().simulateFrame(workloadFor(lo, 16)).fps(),
              GscoreModel().simulateFrame(workloadFor(hi, 16)).fps());
    EXPECT_GE(NeoModel().simulateFrame(workloadFor(lo, 64)).fps(),
              NeoModel().simulateFrame(workloadFor(hi, 64)).fps());

    EXPECT_LE(
        GpuModel().simulateFrame(workloadFor(lo, 16)).traffic.total(),
        GpuModel().simulateFrame(workloadFor(hi, 16)).traffic.total());
    EXPECT_LE(
        NeoModel().simulateFrame(workloadFor(lo, 64)).traffic.total(),
        NeoModel().simulateFrame(workloadFor(hi, 64)).traffic.total());
}

INSTANTIATE_TEST_SUITE_P(Pairs, ModelResolutionTest,
                         ::testing::Values(std::make_tuple(0, 1),
                                           std::make_tuple(1, 2),
                                           std::make_tuple(0, 2)));

TEST(EdgeCaseTest, NeoModelMoreIncomingMoreSortTraffic)
{
    FrameWorkload w;
    w.res = kResQHD;
    w.tile_size = 64;
    w.visible_gaussians = 300000;
    w.instances = 1000000;
    w.blend_ops = 1000000;
    w.intersection_tests = 1000000;
    w.incoming_instances = 1000;
    FrameSim calm = NeoModel().simulateFrame(w);
    w.incoming_instances = 400000;
    FrameSim churny = NeoModel().simulateFrame(w);
    EXPECT_GT(churny.traffic.sorting_bytes, calm.traffic.sorting_bytes);
    EXPECT_GE(churny.latency_s, calm.latency_s);
}

TEST(EdgeCaseTest, EmptyWorkloadIsHarmless)
{
    FrameWorkload w;
    w.res = kResHD;
    FrameSim g = GpuModel().simulateFrame(w);
    FrameSim s = GscoreModel().simulateFrame(w);
    FrameSim n = NeoModel().simulateFrame(w);
    EXPECT_GE(g.latency_s, 0.0);
    EXPECT_GE(s.latency_s, 0.0);
    EXPECT_GE(n.latency_s, 0.0);
}

} // namespace
} // namespace neo
