/**
 * @file
 * Unit tests for 3DGS PLY import/export.
 */

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <unistd.h>

#include <gtest/gtest.h>

#include "scene/ply_io.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(PlyIoTest, OpacityLogitRoundTrip)
{
    for (float o : {0.02f, 0.3f, 0.5f, 0.9f, 0.98f})
        EXPECT_NEAR(logitToOpacity(opacityToLogit(o)), o, 1e-5f);
}

TEST(PlyIoTest, LogitClampsExtremes)
{
    EXPECT_TRUE(std::isfinite(opacityToLogit(0.0f)));
    EXPECT_TRUE(std::isfinite(opacityToLogit(1.0f)));
    EXPECT_NEAR(logitToOpacity(0.0f), 0.5f, 1e-6f);
}

TEST(PlyIoTest, SaveLoadRoundTrip)
{
    GaussianScene scene = test::blobScene(200, 9);
    scene.name = "roundtrip";
    const char *path = "/tmp/neo_test_scene.ply";
    ASSERT_TRUE(savePly(scene, path));

    GaussianScene loaded;
    ASSERT_TRUE(loadPly(loaded, path));
    ASSERT_EQ(loaded.size(), scene.size());
    for (size_t i = 0; i < scene.size(); ++i) {
        const Gaussian &a = scene[i];
        const Gaussian &b = loaded[i];
        EXPECT_NEAR(a.position.x, b.position.x, 1e-5f);
        EXPECT_NEAR(a.position.y, b.position.y, 1e-5f);
        EXPECT_NEAR(a.position.z, b.position.z, 1e-5f);
        EXPECT_NEAR(a.opacity, b.opacity, 1e-4f);
        EXPECT_NEAR(a.scale.x, b.scale.x, 1e-4f * a.scale.x + 1e-6f);
        EXPECT_NEAR(a.scale.y, b.scale.y, 1e-4f * a.scale.y + 1e-6f);
        for (int c = 0; c < 3; ++c)
            for (int k = 0; k < kShCoeffsPerChannel; ++k)
                EXPECT_NEAR(a.sh[c][k], b.sh[c][k], 1e-5f)
                    << "gaussian " << i << " sh[" << c << "][" << k << "]";
        // Quaternions may flip sign but should represent the rotation.
        float dot = a.rotation.w * b.rotation.w +
                    a.rotation.x * b.rotation.x +
                    a.rotation.y * b.rotation.y +
                    a.rotation.z * b.rotation.z;
        EXPECT_NEAR(std::fabs(dot), 1.0f, 1e-4f);
    }
    EXPECT_GT(loaded.bounding_radius, 0.0f);
    std::remove(path);
}

TEST(PlyIoTest, MissingFileFails)
{
    GaussianScene scene;
    EXPECT_FALSE(loadPly(scene, "/tmp/neo_no_such_scene.ply"));
    EXPECT_TRUE(scene.empty());
}

TEST(PlyIoTest, AsciiPlyRejected)
{
    const char *path = "/tmp/neo_test_ascii.ply";
    std::FILE *f = std::fopen(path, "wb");
    std::fputs("ply\nformat ascii 1.0\nelement vertex 1\n"
               "property float x\nend_header\n1.0\n",
               f);
    std::fclose(f);
    GaussianScene scene;
    EXPECT_FALSE(loadPly(scene, path));
    std::remove(path);
}

TEST(PlyIoTest, TruncatedBodyFails)
{
    GaussianScene scene = test::blobScene(50, 3);
    const char *path = "/tmp/neo_test_trunc.ply";
    ASSERT_TRUE(savePly(scene, path));
    // Chop the file.
    std::FILE *f = std::fopen(path, "rb");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path, size - 64), 0);
    GaussianScene loaded;
    EXPECT_FALSE(loadPly(loaded, path));
    EXPECT_TRUE(loaded.empty());
    std::remove(path);
}

TEST(PlyIoTest, LowerShDegreeFileLoads)
{
    // A file with fewer f_rest coefficients (degree-1 SH: 3 per channel)
    // must load, zero-filling the missing band-2 coefficients.
    const char *path = "/tmp/neo_test_deg1.ply";
    std::FILE *f = std::fopen(path, "wb");
    std::fprintf(f, "ply\nformat binary_little_endian 1.0\n"
                    "element vertex 1\n");
    const char *props[] = {"x", "y", "z", "f_dc_0", "f_dc_1", "f_dc_2"};
    for (const char *p : props)
        std::fprintf(f, "property float %s\n", p);
    for (int i = 0; i < 9; ++i)
        std::fprintf(f, "property float f_rest_%d\n", i);
    std::fprintf(f, "property float opacity\n");
    for (int i = 0; i < 3; ++i)
        std::fprintf(f, "property float scale_%d\n", i);
    for (int i = 0; i < 4; ++i)
        std::fprintf(f, "property float rot_%d\n", i);
    std::fprintf(f, "end_header\n");
    float rec[23] = {};
    rec[0] = 1.0f; // x
    rec[3] = 0.7f; // f_dc_0
    rec[6] = 0.11f; // f_rest_0 (channel 0, band-1 coeff 0)
    rec[15] = 0.0f; // opacity logit -> 0.5
    rec[16] = std::log(0.2f);
    rec[17] = std::log(0.2f);
    rec[18] = std::log(0.2f);
    rec[19] = 1.0f; // rot w
    std::fwrite(rec, sizeof(float), 23, f);
    std::fclose(f);

    GaussianScene scene;
    ASSERT_TRUE(loadPly(scene, path));
    ASSERT_EQ(scene.size(), 1u);
    EXPECT_FLOAT_EQ(scene[0].position.x, 1.0f);
    EXPECT_FLOAT_EQ(scene[0].sh[0][0], 0.7f);
    EXPECT_FLOAT_EQ(scene[0].sh[0][1], 0.11f);
    for (int k = 4; k < kShCoeffsPerChannel; ++k)
        EXPECT_FLOAT_EQ(scene[0].sh[0][k], 0.0f);
    EXPECT_NEAR(scene[0].opacity, 0.5f, 1e-5f);
    EXPECT_NEAR(scene[0].scale.x, 0.2f, 1e-5f);
    std::remove(path);
}

TEST(PlyIoTest, RenderedSceneSurvivesRoundTrip)
{
    // The loaded scene must render identically (projection inputs match).
    GaussianScene scene = test::blobScene(100, 21);
    const char *path = "/tmp/neo_test_render.ply";
    ASSERT_TRUE(savePly(scene, path));
    GaussianScene loaded;
    ASSERT_TRUE(loadPly(loaded, path));

    Camera cam = test::frontCamera(5.0f);
    BinnedFrame a = binFrame(scene, cam, 16);
    BinnedFrame b = binFrame(loaded, cam, 16);
    EXPECT_EQ(a.instances, b.instances);
    EXPECT_EQ(a.features.size(), b.features.size());
    std::remove(path);
}

} // namespace
} // namespace neo
