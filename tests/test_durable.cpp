/**
 * @file
 * Durable serving mode tests: snapshot container codec round-trips, the
 * torn-file taxonomy (truncation at every offset, a flipped byte in
 * every region, a seeded corruption fuzz loop — every corruption is
 * detected with a typed reason, never silently loaded), journal
 * torn-tail truncation and epoch pairing, faultinject-driven crash
 * states of the production writers (torn write, bit rot, kill between
 * temp write and rename), and the recovery attestation: an interrupted
 * server rebuilt from snapshot + journal replay continues its sessions
 * bit-identical to an uninterrupted solo render at threads {1, 2, 8}.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/faultinject.h"
#include "common/integrity.h"
#include "common/rng.h"
#include "scene/trajectory.h"
#include "serve/durable/durable.h"
#include "serve/durable/journal.h"
#include "serve/durable/snapshot.h"
#include "serve/server.h"
#include "test_util.h"

namespace neo::serve::durable::test
{
namespace
{

using neo::test::smallRes;
using neo::test::tinySyntheticScene;

std::shared_ptr<const GaussianScene>
sharedScene()
{
    static const auto scene = std::make_shared<const GaussianScene>(
        tinySyntheticScene(1500, 77));
    return scene;
}

/** Hermetic config matching test_server.cpp: integrity off, no
    deadline, watchdog floor far above any contention spike. */
ServerConfig
baseConfig(int threads = 1)
{
    ServerConfig cfg;
    cfg.pipeline = NeoRenderer::neoDefaultOptions();
    cfg.pipeline.threads = threads;
    cfg.pipeline.integrity = IntegrityMode::Off;
    cfg.watchdog_floor_ms = 250.0 * neo::test::sanitizerTimeScale();
    return cfg;
}

Trajectory
orbitAt(float speed = 1.0f)
{
    return Trajectory(TrajectoryKind::Orbit, *sharedScene(), speed);
}

std::vector<uint64_t>
soloHashes(int frames, const PipelineOptions &opts)
{
    PipelineOptions solo_opts = opts;
    solo_opts.threads = 1;
    NeoRenderer solo(solo_opts);
    const Trajectory traj = orbitAt();
    Image img;
    std::vector<uint64_t> hashes;
    for (int f = 0; f < frames; ++f) {
        solo.renderFrameInto(img, *sharedScene(),
                             traj.cameraAt(f, smallRes()),
                             static_cast<uint64_t>(f));
        hashes.push_back(img.contentHash());
    }
    return hashes;
}

/** Fresh scratch state directory under the test's working directory. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char tmpl[] = "durable-test-XXXXXX";
        const char *dir = mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        path_ = dir ? dir : "durable-test-fallback";
    }

    ~ScratchDir()
    {
        if (DIR *d = opendir(path_.c_str())) {
            while (dirent *e = readdir(d)) {
                const std::string name = e->d_name;
                if (name != "." && name != "..")
                    ::unlink((path_ + "/" + name).c_str());
            }
            closedir(d);
        }
        ::rmdir(path_.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A representative snapshot with two sessions exercising every field
    class: queue entries, degradation state, sorter tables, prev ids. */
ServerSnapshot
sampleSnapshot()
{
    ServerSnapshot snap;
    snap.meta.seq = 17;
    snap.meta.journal_epoch = 4;
    snap.meta.journal_offset = 1234;
    snap.meta.frames_journaled = 99;

    SessionDurable a;
    a.id = 0;
    a.open.trajectory_kind = 0;
    a.open.center = {0.5f, -1.0f, 2.0f};
    a.open.radius = 6.5f;
    a.open.speed = 1.5f;
    a.open.width = 256;
    a.open.height = 192;
    a.open.qos.deadline_ms = 12.0;
    a.submit_seq = 41;
    a.stats.submitted = 41;
    a.stats.rendered = 39;
    a.state = 0;
    a.rebuilds = 2;
    a.sorter_stale = 1;
    a.last_drop = 1;
    a.queue.push_back({7, 40});
    a.queue.push_back({8, 41});
    a.budget.ema_ms = 9.5;
    a.budget.warm = true;
    a.budget.severity = 1;
    a.budget.degradations = 3;
    a.has_renderer = 1;
    a.tables = {{{3, 1.5f, true}, {9, 2.5f, false}}, {}, {{1, 0.25f, true}}};
    a.prev_ids = {{3, 9}, {}, {1}};
    snap.sessions.push_back(std::move(a));

    SessionDurable b;
    b.id = 3;
    b.open.trajectory_kind = 2;
    b.open.center = {0.0f, 0.0f, 0.0f};
    b.open.radius = 3.0f;
    b.open.width = 128;
    b.open.height = 96;
    b.submit_seq = 5;
    b.state = 1;
    b.quarantine_failures = 2;
    b.backoff_remaining = 4;
    b.has_renderer = 0;
    snap.sessions.push_back(std::move(b));
    return snap;
}

// --- Container codec ---------------------------------------------------

TEST(SnapshotCodecTest, RoundTripsEveryField)
{
    const ServerSnapshot in = sampleSnapshot();
    const std::vector<uint8_t> bytes = encodeSnapshot(in);

    ServerSnapshot out;
    ASSERT_EQ(decodeSnapshot(bytes.data(), bytes.size(), &out),
              SnapshotError::Ok);
    EXPECT_EQ(out.meta.seq, in.meta.seq);
    EXPECT_EQ(out.meta.journal_epoch, in.meta.journal_epoch);
    EXPECT_EQ(out.meta.journal_offset, in.meta.journal_offset);
    EXPECT_EQ(out.meta.frames_journaled, in.meta.frames_journaled);
    ASSERT_EQ(out.sessions.size(), 2u);

    const SessionDurable &a = out.sessions[0];
    EXPECT_EQ(a.id, 0u);
    EXPECT_FLOAT_EQ(a.open.center.y, -1.0f);
    EXPECT_FLOAT_EQ(a.open.radius, 6.5f);
    EXPECT_FLOAT_EQ(a.open.speed, 1.5f);
    EXPECT_DOUBLE_EQ(a.open.qos.deadline_ms, 12.0);
    EXPECT_EQ(a.submit_seq, 41u);
    EXPECT_EQ(a.stats.rendered, 39u);
    EXPECT_EQ(a.sorter_stale, 1u);
    EXPECT_EQ(a.last_drop, 1);
    ASSERT_EQ(a.queue.size(), 2u);
    EXPECT_EQ(a.queue[1].frame_index, 8u);
    EXPECT_EQ(a.queue[1].submit_seq, 41u);
    EXPECT_DOUBLE_EQ(a.budget.ema_ms, 9.5);
    EXPECT_TRUE(a.budget.warm);
    EXPECT_EQ(a.budget.severity, 1);
    ASSERT_EQ(a.tables.size(), 3u);
    ASSERT_EQ(a.tables[0].size(), 2u);
    EXPECT_EQ(a.tables[0][1].id, 9u);
    EXPECT_FLOAT_EQ(a.tables[0][1].depth, 2.5f);
    EXPECT_FALSE(a.tables[0][1].valid);
    ASSERT_EQ(a.prev_ids.size(), 3u);
    EXPECT_EQ(a.prev_ids[2], std::vector<GaussianId>{1});

    const SessionDurable &b = out.sessions[1];
    EXPECT_EQ(b.id, 3u);
    EXPECT_EQ(b.state, 1u);
    EXPECT_EQ(b.quarantine_failures, 2);
    EXPECT_EQ(b.backoff_remaining, 4);
    EXPECT_EQ(b.has_renderer, 0u);
    EXPECT_TRUE(b.tables.empty());
}

TEST(SnapshotCodecTest, EmptySnapshotRoundTrips)
{
    ServerSnapshot in;
    in.meta.seq = 1;
    const std::vector<uint8_t> bytes = encodeSnapshot(in);
    ServerSnapshot out;
    ASSERT_EQ(decodeSnapshot(bytes.data(), bytes.size(), &out),
              SnapshotError::Ok);
    EXPECT_TRUE(out.sessions.empty());
}

// --- Torn-file taxonomy ------------------------------------------------

TEST(SnapshotTaxonomyTest, TruncationAtEveryOffsetIsDetected)
{
    const std::vector<uint8_t> bytes = encodeSnapshot(sampleSnapshot());
    ASSERT_GT(bytes.size(), kSnapshotHeaderSize + kSnapshotTrailerSize);
    for (size_t len = 0; len < bytes.size(); ++len) {
        ServerSnapshot out;
        const SnapshotError e = decodeSnapshot(bytes.data(), len, &out);
        ASSERT_NE(e, SnapshotError::Ok)
            << "truncation to " << len << " bytes was silently loaded";
    }
}

TEST(SnapshotTaxonomyTest, FlippedBytesReportTypedReasons)
{
    const std::vector<uint8_t> bytes = encodeSnapshot(sampleSnapshot());
    ServerSnapshot out;

    // Header magic / version land before any content validation.
    std::vector<uint8_t> m = bytes;
    m[0] ^= 0xFF;
    EXPECT_EQ(decodeSnapshot(m.data(), m.size(), &out),
              SnapshotError::BadMagic);
    m = bytes;
    m[4] ^= 0xFF;
    EXPECT_EQ(decodeSnapshot(m.data(), m.size(), &out),
              SnapshotError::BadVersion);

    // A corrupt byte inside a section payload is localized by that
    // section's CRC, not blamed on the whole file.
    m = bytes;
    m[kSnapshotHeaderSize + kSectionHeaderSize] ^= 0x01;
    EXPECT_EQ(decodeSnapshot(m.data(), m.size(), &out),
              SnapshotError::SectionCrc);

    // The trailer itself is only covered by the digest comparison.
    m = bytes;
    m[m.size() - 1] ^= 0x01;
    EXPECT_EQ(decodeSnapshot(m.data(), m.size(), &out),
              SnapshotError::DigestMismatch);
}

TEST(SnapshotTaxonomyTest, EveryFlippedByteIsDetected)
{
    const std::vector<uint8_t> bytes = encodeSnapshot(sampleSnapshot());
    for (size_t i = 0; i < bytes.size(); ++i) {
        std::vector<uint8_t> m = bytes;
        m[i] ^= 0x10;
        ServerSnapshot out;
        ASSERT_NE(decodeSnapshot(m.data(), m.size(), &out),
                  SnapshotError::Ok)
            << "flipped byte " << i << " was silently loaded";
    }
}

TEST(SnapshotTaxonomyTest, FuzzedCorruptionNeverLoads)
{
    const std::vector<uint8_t> bytes = encodeSnapshot(sampleSnapshot());
    Rng rng(2026);
    for (int iter = 0; iter < 300; ++iter) {
        std::vector<uint8_t> m = bytes;
        const int mutations = 1 + static_cast<int>(rng.below(4));
        for (int k = 0; k < mutations; ++k) {
            const size_t at = rng.below(m.size());
            switch (rng.below(3)) {
            case 0:
                m[at] ^= static_cast<uint8_t>(1 + rng.below(255));
                break;
            case 1:
                m.resize(at); // truncate
                break;
            default:
                m.insert(m.begin() + static_cast<ptrdiff_t>(at),
                         static_cast<uint8_t>(rng.next()));
                break;
            }
            if (m.empty())
                break;
        }
        if (m == bytes)
            continue;
        ServerSnapshot out;
        ASSERT_NE(decodeSnapshot(m.data(), m.size(), &out),
                  SnapshotError::Ok)
            << "fuzz iteration " << iter << " was silently loaded";
    }
}

// --- Journal -----------------------------------------------------------

JournalRecord
submitRecord(uint32_t id, uint64_t frame)
{
    JournalRecord rec;
    rec.type = JournalRecordType::Submit;
    rec.session_id = id;
    rec.frame_index = frame;
    return rec;
}

TEST(JournalTest, RoundTripsRecordsAcrossReopen)
{
    ScratchDir dir;
    uint64_t end = 0;
    {
        Journal j;
        ASSERT_TRUE(j.open(dir.path()));
        EXPECT_EQ(j.epoch(), 0u) << "fresh journal is never-compacted";

        JournalRecord open;
        open.type = JournalRecordType::Open;
        open.session_id = 2;
        open.open.trajectory_kind = 1;
        open.open.center = {1.0f, 2.0f, 3.0f};
        open.open.radius = 4.0f;
        open.open.width = 64;
        open.open.height = 48;
        ASSERT_TRUE(j.append(open));
        ASSERT_TRUE(j.append(submitRecord(2, 7)));
        JournalRecord close;
        close.type = JournalRecordType::Close;
        close.session_id = 2;
        ASSERT_TRUE(j.append(close));
        end = j.endOffset();
    }

    Journal j;
    ASSERT_TRUE(j.open(dir.path()));
    EXPECT_EQ(j.endOffset(), end);
    EXPECT_EQ(j.tailRecordsLost(), 0u);
    std::vector<JournalRecord> records;
    ASSERT_TRUE(j.replay(kJournalHeaderSize, &records));
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].type, JournalRecordType::Open);
    EXPECT_EQ(records[0].open.width, 64);
    EXPECT_FLOAT_EQ(records[0].open.center.z, 3.0f);
    EXPECT_EQ(records[1].type, JournalRecordType::Submit);
    EXPECT_EQ(records[1].frame_index, 7u);
    EXPECT_EQ(records[2].type, JournalRecordType::Close);
}

TEST(JournalTest, TornTailIsTruncatedOnOpen)
{
    ScratchDir dir;
    uint64_t valid_end = 0;
    {
        Journal j;
        ASSERT_TRUE(j.open(dir.path()));
        ASSERT_TRUE(j.append(submitRecord(0, 1)));
        ASSERT_TRUE(j.append(submitRecord(0, 2)));
        valid_end = j.endOffset();
    }
    // Crash residue: half a record header dangling past the valid log.
    {
        FILE *f = fopen((dir.path() + "/journal.neoj").c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const uint8_t garbage[5] = {2, 0xFF, 0xFF, 0xFF, 0xFF};
        fwrite(garbage, 1, sizeof(garbage), f);
        fclose(f);
    }

    Journal j;
    ASSERT_TRUE(j.open(dir.path()));
    EXPECT_EQ(j.endOffset(), valid_end) << "torn tail truncated";
    std::vector<JournalRecord> records;
    ASSERT_TRUE(j.replay(kJournalHeaderSize, &records));
    EXPECT_EQ(records.size(), 2u);
    // And the log extends cleanly after the truncation.
    ASSERT_TRUE(j.append(submitRecord(0, 3)));
    records.clear();
    ASSERT_TRUE(j.replay(kJournalHeaderSize, &records));
    EXPECT_EQ(records.size(), 3u);
}

TEST(JournalTest, CorruptHeaderRecreatesEpochZero)
{
    ScratchDir dir;
    {
        Journal j;
        ASSERT_TRUE(j.open(dir.path()));
        ASSERT_TRUE(j.reset(9));
        ASSERT_TRUE(j.append(submitRecord(1, 1)));
    }
    {
        FILE *f = fopen((dir.path() + "/journal.neoj").c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        fputc('X', f); // clobber the magic
        fclose(f);
    }
    Journal j;
    ASSERT_TRUE(j.open(dir.path()));
    EXPECT_EQ(j.epoch(), 0u);
    EXPECT_EQ(j.endOffset(), kJournalHeaderSize)
        << "unreadable journal restarts empty, never misreplays";
}

TEST(JournalTest, ResetMovesEpochAndEmptiesLog)
{
    ScratchDir dir;
    Journal j;
    ASSERT_TRUE(j.open(dir.path()));
    ASSERT_TRUE(j.append(submitRecord(0, 1)));
    ASSERT_TRUE(j.reset(5));
    EXPECT_EQ(j.epoch(), 5u);
    EXPECT_EQ(j.endOffset(), kJournalHeaderSize);
    std::vector<JournalRecord> records;
    ASSERT_TRUE(j.replay(kJournalHeaderSize, &records));
    EXPECT_TRUE(records.empty());
}

// --- Faultinject-driven crash states of the production writers ---------

TEST(SnapshotFaultTest, TornWriteIsRefusedByTheLoader)
{
    ScratchDir dir;
    ServerSnapshot snap = sampleSnapshot();
    snap.meta.seq = 1;
    const size_t full = encodeSnapshot(snap).size();

    for (const size_t at : {size_t{0}, size_t{1}, full / 2, full - 1}) {
        faultinject::armDurableFault("durable.snapshot",
                                     faultinject::DurableFault::TornWrite,
                                     1, static_cast<int64_t>(at));
        // The writer itself cannot see the tear (the disk lied), so the
        // call succeeds; detection is the loader's job.
        ASSERT_TRUE(writeSnapshotFile(dir.path(), snap));
        EXPECT_FALSE(faultinject::durablePending());
        ServerSnapshot out;
        EXPECT_NE(loadSnapshotFile(dir.path() + "/" +
                                       snapshotFileName(snap.meta.seq),
                                   &out),
                  SnapshotError::Ok)
            << "torn write truncated at " << at << " loaded silently";
        ++snap.meta.seq;
    }
    faultinject::disarmDurableFault();
}

TEST(SnapshotFaultTest, FlippedBitIsRefusedByTheLoader)
{
    ScratchDir dir;
    ServerSnapshot snap = sampleSnapshot();
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        snap.meta.seq = seed;
        faultinject::armDurableFault("durable.snapshot",
                                     faultinject::DurableFault::FlipBit,
                                     seed);
        ASSERT_TRUE(writeSnapshotFile(dir.path(), snap));
        ServerSnapshot out;
        EXPECT_NE(loadSnapshotFile(dir.path() + "/" +
                                       snapshotFileName(seed),
                                   &out),
                  SnapshotError::Ok)
            << "bit flipped with seed " << seed << " loaded silently";
    }
    faultinject::disarmDurableFault();
}

TEST(SnapshotFaultTest, AbortedRenameLeavesPriorGenerationIntact)
{
    ScratchDir dir;
    ServerSnapshot snap = sampleSnapshot();
    snap.meta.seq = 1;
    ASSERT_TRUE(writeSnapshotFile(dir.path(), snap));

    snap.meta.seq = 2;
    faultinject::armDurableFault("durable.snapshot",
                                 faultinject::DurableFault::AbortRename);
    EXPECT_FALSE(writeSnapshotFile(dir.path(), snap))
        << "a kill between temp write and rename is a failed checkpoint";
    faultinject::disarmDurableFault();

    const std::vector<SnapshotFile> files = listSnapshots(dir.path());
    ASSERT_EQ(files.size(), 1u) << "generation 2 must not be visible";
    EXPECT_EQ(files[0].seq, 1u);
    ServerSnapshot out;
    EXPECT_EQ(loadSnapshotFile(files[0].path, &out), SnapshotError::Ok);

    // pruneSnapshots sweeps the orphaned temp file residue.
    pruneSnapshots(dir.path(), 3);
    if (DIR *d = opendir(dir.path().c_str())) {
        while (dirent *e = readdir(d)) {
            const std::string name = e->d_name;
            EXPECT_EQ(name.find(".tmp"), std::string::npos)
                << "stale temp file survived pruning: " << name;
        }
        closedir(d);
    }
}

TEST(SnapshotFileTest, PruneKeepsNewestGenerations)
{
    ScratchDir dir;
    ServerSnapshot snap;
    for (uint64_t seq = 1; seq <= 5; ++seq) {
        snap.meta.seq = seq;
        ASSERT_TRUE(writeSnapshotFile(dir.path(), snap));
    }
    pruneSnapshots(dir.path(), 2);
    const std::vector<SnapshotFile> files = listSnapshots(dir.path());
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0].seq, 5u);
    EXPECT_EQ(files[1].seq, 4u);
}

// --- End-to-end recovery -----------------------------------------------

DurableConfig
testDurableConfig(const std::string &dir, uint64_t checkpoint_every = 3)
{
    DurableConfig cfg;
    cfg.state_dir = dir;
    cfg.keep_generations = 3;
    cfg.checkpoint_every = checkpoint_every;
    cfg.sync_every = 1;
    return cfg;
}

/** Drive @p count frames the way the wire path does — submit, then one
    step — recording served hashes and letting the cadence checkpoint. */
void
driveFrames(NeoServer &server, uint32_t session_id, uint64_t start,
            uint64_t count, std::vector<uint64_t> *hashes)
{
    Session *s = server.session(session_id);
    ASSERT_NE(s, nullptr);
    for (uint64_t f = start; f < start + count; ++f) {
        ASSERT_TRUE(s->submit(f).accepted);
        FrameOutcome outcome;
        ASSERT_TRUE(s->step(&outcome));
        ASSERT_TRUE(outcome.rendered);
        hashes->push_back(outcome.frame_hash);
        server.maybeCheckpoint();
    }
}

TEST(DurableRecoveryTest, CrashedServerReplaysBitIdentically)
{
    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ScratchDir dir;
        const std::vector<uint64_t> solo =
            soloHashes(10, baseConfig(threads).pipeline);
        std::vector<uint64_t> served;

        uint32_t id = 0;
        {
            NeoServer a(sharedScene(), baseConfig(threads));
            ASSERT_TRUE(
                a.enableDurability(testDurableConfig(dir.path())));
            EXPECT_FALSE(a.recovery().recovered);
            const AdmitResult admit = a.open(orbitAt(), smallRes());
            ASSERT_TRUE(admit.admitted);
            id = admit.session_id;
            driveFrames(a, id, 0, 6, &served);
            // Crash: the process dies here — no drain, no final
            // snapshot, only what the cadence and the journal persisted.
        }

        NeoServer b(sharedScene(), baseConfig(threads));
        ASSERT_TRUE(b.enableDurability(testDurableConfig(dir.path())));
        const RecoveryStatus &rec = b.recovery();
        EXPECT_TRUE(rec.recovered);
        EXPECT_EQ(rec.generations_skipped, 0u);
        ASSERT_EQ(b.liveSessions(), 1u);
        driveFrames(b, id, 6, 4, &served);

        ASSERT_EQ(served.size(), solo.size());
        for (size_t f = 0; f < solo.size(); ++f)
            EXPECT_EQ(served[f], solo[f])
                << "frame " << f << " diverged after recovery";
    }
}

TEST(DurableRecoveryTest, RecoveryFallsBackPastACorruptGeneration)
{
    ScratchDir dir;
    const std::vector<uint64_t> solo = soloHashes(9, baseConfig().pipeline);
    std::vector<uint64_t> served;
    uint32_t id = 0;
    {
        NeoServer a(sharedScene(), baseConfig());
        // Cadence 2: several generations accumulate across 6 frames.
        ASSERT_TRUE(
            a.enableDurability(testDurableConfig(dir.path(), 2)));
        const AdmitResult admit = a.open(orbitAt(), smallRes());
        ASSERT_TRUE(admit.admitted);
        id = admit.session_id;
        driveFrames(a, id, 0, 6, &served);
    }

    // Rot the newest generation at rest; recovery must detect it, fall
    // back one generation, and replay the longer journal suffix.
    std::vector<SnapshotFile> files = listSnapshots(dir.path());
    ASSERT_GE(files.size(), 2u);
    {
        FILE *f = fopen(files[0].path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        fseek(f, 40, SEEK_SET);
        const int c = fgetc(f);
        fseek(f, 40, SEEK_SET);
        fputc(c ^ 0x40, f);
        fclose(f);
    }

    NeoServer b(sharedScene(), baseConfig());
    ASSERT_TRUE(b.enableDurability(testDurableConfig(dir.path(), 2)));
    const RecoveryStatus &rec = b.recovery();
    EXPECT_TRUE(rec.recovered);
    EXPECT_EQ(rec.generations_skipped, 1u)
        << "the corrupt generation must be detected and skipped";
    EXPECT_LT(rec.snapshot_seq, files[0].seq);
    driveFrames(b, id, 6, 3, &served);

    ASSERT_EQ(served.size(), solo.size());
    for (size_t f = 0; f < solo.size(); ++f)
        EXPECT_EQ(served[f], solo[f])
            << "frame " << f << " diverged after fallback recovery";
}

TEST(DurableRecoveryTest, KillMidCheckpointKeepsPriorGenerationGood)
{
    ScratchDir dir;
    const std::vector<uint64_t> solo = soloHashes(8, baseConfig().pipeline);
    std::vector<uint64_t> served;
    uint32_t id = 0;
    {
        NeoServer a(sharedScene(), baseConfig());
        // Cadence 0: only explicit checkpoints, so the aborted one is
        // the newest write attempt.
        ASSERT_TRUE(
            a.enableDurability(testDurableConfig(dir.path(), 0)));
        const AdmitResult admit = a.open(orbitAt(), smallRes());
        ASSERT_TRUE(admit.admitted);
        id = admit.session_id;
        driveFrames(a, id, 0, 3, &served);
        ASSERT_TRUE(a.checkpointNow());
        driveFrames(a, id, 3, 2, &served);
        // Die between temp write and rename of the next checkpoint.
        faultinject::armDurableFault(
            "durable.snapshot", faultinject::DurableFault::AbortRename);
        EXPECT_FALSE(a.checkpointNow());
        faultinject::disarmDurableFault();
    }

    NeoServer b(sharedScene(), baseConfig());
    ASSERT_TRUE(b.enableDurability(testDurableConfig(dir.path(), 0)));
    EXPECT_TRUE(b.recovery().recovered);
    driveFrames(b, id, 5, 3, &served);

    ASSERT_EQ(served.size(), solo.size());
    for (size_t f = 0; f < solo.size(); ++f)
        EXPECT_EQ(served[f], solo[f])
            << "frame " << f << " diverged after aborted checkpoint";
}

TEST(DurableRecoveryTest, GracefulDrainRecoversWithEmptyJournalReplay)
{
    ScratchDir dir;
    const std::vector<uint64_t> solo = soloHashes(7, baseConfig().pipeline);
    std::vector<uint64_t> served;
    uint32_t id = 0;
    {
        NeoServer a(sharedScene(), baseConfig());
        ASSERT_TRUE(a.enableDurability(testDurableConfig(dir.path())));
        const AdmitResult admit = a.open(orbitAt(), smallRes());
        ASSERT_TRUE(admit.admitted);
        id = admit.session_id;
        driveFrames(a, id, 0, 4, &served);
        // Graceful drain: everything folds into one compacting
        // snapshot, leaving nothing to replay.
        ASSERT_TRUE(a.checkpointCompact());
    }

    NeoServer b(sharedScene(), baseConfig());
    ASSERT_TRUE(b.enableDurability(testDurableConfig(dir.path())));
    const RecoveryStatus &rec = b.recovery();
    EXPECT_TRUE(rec.recovered);
    EXPECT_EQ(rec.sessions_restored, 1u);
    EXPECT_EQ(rec.journal_replayed, 0u)
        << "a drained server restores from snapshot alone";
    Session *s = b.session(id);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->stats().rendered, 4u)
        << "restored counters carry the pre-restart history";
    driveFrames(b, id, 4, 3, &served);

    ASSERT_EQ(served.size(), solo.size());
    for (size_t f = 0; f < solo.size(); ++f)
        EXPECT_EQ(served[f], solo[f])
            << "frame " << f << " diverged after drain recovery";
}

TEST(DurableRecoveryTest, ClosedSessionsStayClosedThroughReplay)
{
    ScratchDir dir;
    uint32_t id = 0;
    {
        NeoServer a(sharedScene(), baseConfig());
        ASSERT_TRUE(a.enableDurability(testDurableConfig(dir.path(), 0)));
        const AdmitResult admit = a.open(orbitAt(), smallRes());
        ASSERT_TRUE(admit.admitted);
        id = admit.session_id;
        std::vector<uint64_t> served;
        driveFrames(a, id, 0, 2, &served);
        ASSERT_TRUE(a.close(id));
    }
    NeoServer b(sharedScene(), baseConfig());
    ASSERT_TRUE(b.enableDurability(testDurableConfig(dir.path(), 0)));
    EXPECT_EQ(b.liveSessions(), 0u)
        << "the journaled close must replay too";
    EXPECT_EQ(b.session(id), nullptr);
}

// --- Env knobs ---------------------------------------------------------

TEST(DurableConfigEnvTest, ValidatedKnobsApplyAndMalformedFallBack)
{
    env::resetWarnings();
    setenv("NEO_SERVER_DURABLE_DIR", "env-dir", 1);
    setenv("NEO_SERVER_DURABLE_KEEP", "5", 1);
    setenv("NEO_SERVER_DURABLE_CHECKPOINT", "nonsense", 1);
    setenv("NEO_SERVER_DURABLE_SYNC", "-3", 1); // below range
    const DurableConfig cfg = durableConfigFromEnv();
    const DurableConfig explicit_dir = durableConfigFromEnv("flag-dir");
    unsetenv("NEO_SERVER_DURABLE_DIR");
    unsetenv("NEO_SERVER_DURABLE_KEEP");
    unsetenv("NEO_SERVER_DURABLE_CHECKPOINT");
    unsetenv("NEO_SERVER_DURABLE_SYNC");

    EXPECT_EQ(cfg.state_dir, "env-dir");
    EXPECT_EQ(explicit_dir.state_dir, "flag-dir")
        << "--state-dir takes precedence over the environment";
    EXPECT_EQ(cfg.keep_generations, 5);
    EXPECT_EQ(cfg.checkpoint_every, DurableConfig{}.checkpoint_every)
        << "malformed value keeps the default";
    EXPECT_EQ(cfg.sync_every, DurableConfig{}.sync_every)
        << "out-of-range value keeps the default";
}

} // namespace
} // namespace neo::serve::durable::test
