/**
 * @file
 * Unit and property tests for Dynamic Partial Sorting (Algorithm 1),
 * including the Fig. 9 fixed-vs-interleaved boundary experiment.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sort/dynamic_partial.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(BoundariesTest, OddFrameUsesNaturalGrid)
{
    DynamicPartialConfig cfg;
    cfg.chunk = 256;
    auto r = dynamicPartialBoundaries(1000, 1, cfg);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[0], std::make_pair(size_t{0}, size_t{256}));
    EXPECT_EQ(r[1], std::make_pair(size_t{256}, size_t{512}));
    EXPECT_EQ(r[3], std::make_pair(size_t{768}, size_t{1000}));
}

TEST(BoundariesTest, EvenFrameShiftsByHalfChunk)
{
    DynamicPartialConfig cfg;
    cfg.chunk = 256;
    auto r = dynamicPartialBoundaries(1000, 2, cfg);
    ASSERT_EQ(r.size(), 5u);
    EXPECT_EQ(r[0], std::make_pair(size_t{0}, size_t{128}));
    EXPECT_EQ(r[1], std::make_pair(size_t{128}, size_t{384}));
    EXPECT_EQ(r.back().second, size_t{1000});
}

TEST(BoundariesTest, NoInterleaveAlwaysNatural)
{
    DynamicPartialConfig cfg;
    cfg.chunk = 256;
    cfg.interleave = false;
    auto even = dynamicPartialBoundaries(1000, 2, cfg);
    auto odd = dynamicPartialBoundaries(1000, 3, cfg);
    EXPECT_EQ(even, odd);
    EXPECT_EQ(even[0].second, size_t{256});
}

TEST(BoundariesTest, CoversEveryIndexExactlyOnce)
{
    DynamicPartialConfig cfg;
    cfg.chunk = 64;
    for (uint64_t frame : {0u, 1u, 2u, 3u}) {
        for (size_t len : {1u, 31u, 64u, 65u, 500u}) {
            auto ranges = dynamicPartialBoundaries(len, frame, cfg);
            std::vector<int> covered(len, 0);
            for (auto [s, e] : ranges) {
                EXPECT_LE(e, len);
                for (size_t i = s; i < e; ++i)
                    ++covered[i];
            }
            for (size_t i = 0; i < len; ++i)
                EXPECT_EQ(covered[i], 1)
                    << "index " << i << " len " << len << " frame "
                    << frame;
        }
    }
}

TEST(BoundariesTest, EmptyTableYieldsNothing)
{
    EXPECT_TRUE(dynamicPartialBoundaries(0, 1, {}).empty());
}

TEST(DpsTest, SortsWithinChunkImmediately)
{
    // Entries displaced less than a chunk get fixed in one pass.
    auto t = test::nearlySortedTable(512, 1.0f, 3);
    DynamicPartialConfig cfg;
    cfg.chunk = 256;
    dynamicPartialSort(t, 1, cfg);
    EXPECT_GT(sortedFraction(t), 0.99);
}

TEST(DpsTest, Fig9FixedBoundariesCannotCrossChunks)
{
    // Construct the Fig. 9 pathology: an entry that belongs in chunk 0
    // sits in chunk 1. With interleaving off it can never migrate.
    DynamicPartialConfig cfg;
    cfg.chunk = 16;
    cfg.interleave = false;
    std::vector<TileEntry> t;
    for (int i = 0; i < 32; ++i)
        t.push_back({static_cast<GaussianId>(i),
                     static_cast<float>(i + 1), true});
    // The globally smallest entry starts in the second chunk.
    t[20].depth = 0.0f;
    for (uint64_t frame = 1; frame <= 6; ++frame)
        dynamicPartialSort(t, frame, cfg);
    // Still not globally sorted: min element stuck in chunk 1.
    EXPECT_NE(t[0].depth, 0.0f);
    EXPECT_LT(sortedFraction(t), 1.0);
}

TEST(DpsTest, Fig9InterleavedBoundariesConverge)
{
    DynamicPartialConfig cfg;
    cfg.chunk = 16;
    cfg.interleave = true;
    std::vector<TileEntry> t;
    for (int i = 0; i < 32; ++i)
        t.push_back({static_cast<GaussianId>(i),
                     static_cast<float>(i + 1), true});
    t[20].depth = 0.0f;
    for (uint64_t frame = 1; frame <= 6; ++frame)
        dynamicPartialSort(t, frame, cfg);
    EXPECT_FLOAT_EQ(t[0].depth, 0.0f);
    EXPECT_TRUE(test::isSorted(t));
}

TEST(DpsTest, InterleavedConvergesFromModerateDisorder)
{
    // Displacements of a few chunk-halves converge within a handful of
    // frames — the "accuracy restoration" property of §4.3.
    auto t = test::nearlySortedTable(1024, 30.0f, 5);
    DynamicPartialConfig cfg;
    cfg.chunk = 128;
    double initial = sortedFraction(t);
    for (uint64_t frame = 1; frame <= 8; ++frame)
        dynamicPartialSort(t, frame, cfg);
    EXPECT_GT(sortedFraction(t), initial);
    EXPECT_GT(sortedFraction(t), 0.999);
    EXPECT_LT(meanDisplacement(t), 0.5);
}

TEST(DpsTest, SinglePassReadsWritesEachEntryOnce)
{
    auto t = test::randomTable(1000, 6);
    SortCoreStats stats;
    dynamicPartialSort(t, 1, {}, &stats);
    EXPECT_EQ(stats.entries_read, 1000u);
    EXPECT_EQ(stats.entries_written, 1000u);
    EXPECT_EQ(stats.global_merge_passes, 0u);
}

TEST(DpsTest, MultiPassCostsProportionally)
{
    auto t = test::randomTable(1000, 7);
    DynamicPartialConfig cfg;
    cfg.passes = 3;
    SortCoreStats stats;
    dynamicPartialSort(t, 1, cfg, &stats);
    EXPECT_EQ(stats.entries_read, 3000u);
    EXPECT_EQ(stats.entries_written, 3000u);
}

TEST(DpsTest, MorePassesSortBetterPerFrame)
{
    auto base = test::randomTable(2048, 8);
    auto one = base;
    auto three = base;
    DynamicPartialConfig cfg1;
    cfg1.passes = 1;
    DynamicPartialConfig cfg3;
    cfg3.passes = 3;
    dynamicPartialSort(one, 1, cfg1);
    dynamicPartialSort(three, 1, cfg3);
    EXPECT_GE(sortedFraction(three), sortedFraction(one));
    EXPECT_LE(meanDisplacement(three), meanDisplacement(one));
}

TEST(DpsTest, ZeroPassesPanics)
{
    auto t = test::randomTable(10, 9);
    DynamicPartialConfig cfg;
    cfg.passes = 0;
    EXPECT_DEATH({ dynamicPartialSort(t, 1, cfg); }, "passes");
}

TEST(SortednessTest, MetricsOnKnownTables)
{
    auto sorted = test::randomTable(100, 10);
    std::sort(sorted.begin(), sorted.end(), entryDepthLess);
    EXPECT_DOUBLE_EQ(sortedFraction(sorted), 1.0);
    EXPECT_DOUBLE_EQ(meanDisplacement(sorted), 0.0);

    auto reversed = sorted;
    std::reverse(reversed.begin(), reversed.end());
    EXPECT_DOUBLE_EQ(sortedFraction(reversed), 0.0);
    EXPECT_GT(meanDisplacement(reversed), 40.0);
}

TEST(SortednessTest, TrivialTables)
{
    std::vector<TileEntry> empty;
    EXPECT_DOUBLE_EQ(sortedFraction(empty), 1.0);
    EXPECT_DOUBLE_EQ(meanDisplacement(empty), 0.0);
    std::vector<TileEntry> one{{0, 1.0f, true}};
    EXPECT_DOUBLE_EQ(sortedFraction(one), 1.0);
}

/**
 * Property sweep: under per-frame jitter (the temporal-churn model), DPS
 * keeps the table nearly sorted across a long frame sequence for a range
 * of chunk sizes.
 */
class DpsSteadyStateTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(DpsSteadyStateTest, TracksSlowDepthDrift)
{
    size_t chunk = GetParam();
    DynamicPartialConfig cfg;
    cfg.chunk = chunk;
    Rng rng(chunk);
    auto t = test::randomTable(2000, 12);
    std::sort(t.begin(), t.end(), entryDepthLess);
    double worst = 1.0;
    for (uint64_t frame = 1; frame <= 30; ++frame) {
        // Small per-frame depth drift, like slow camera motion.
        for (auto &e : t)
            e.depth += rng.uniform(-0.3f, 0.3f);
        dynamicPartialSort(t, frame, cfg);
        worst = std::min(worst, sortedFraction(t));
    }
    EXPECT_GT(worst, 0.98) << "chunk " << chunk;
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, DpsSteadyStateTest,
                         ::testing::Values(64, 128, 256));

} // namespace
} // namespace neo
