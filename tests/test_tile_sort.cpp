/**
 * @file
 * Unit tests for the fused cross-tile batched key-sort (gs/tile_sort.h):
 * bit-identity of the packed-key kernel against std::sort(entryDepthLess)
 * including the irregular-input fallbacks, batched dispatch across thread
 * counts, and scratch capacity retention.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "gs/tile_sort.h"
#include "test_util.h"

namespace neo
{
namespace
{

std::vector<TileEntry>
stdSorted(std::vector<TileEntry> t)
{
    std::sort(t.begin(), t.end(), entryDepthLess);
    return t;
}

void
expectBitIdentical(const std::vector<TileEntry> &expect,
                   const std::vector<TileEntry> &got)
{
    ASSERT_EQ(expect.size(), got.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(expect[i].id, got[i].id) << "index " << i;
        EXPECT_EQ(std::bit_cast<uint32_t>(expect[i].depth),
                  std::bit_cast<uint32_t>(got[i].depth))
            << "index " << i;
        EXPECT_EQ(expect[i].valid, got[i].valid) << "index " << i;
    }
}

TEST(KeySortTest, MatchesStdSortAcrossSizes)
{
    TileSortScratch scratch;
    for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                     size_t{255}, size_t{256}, size_t{257}, size_t{4000}}) {
        auto table = test::randomTable(n, 100 + n);
        auto expect = stdSorted(table);
        keySortTable(table, scratch);
        expectBitIdentical(expect, table);
    }
}

TEST(KeySortTest, MatchesStdSortWithNegativeDepths)
{
    // Negative and positive depths exercise both branches of the float
    // bit flip (negatives reverse, positives lift above them).
    auto table = test::randomTable(1000, 7);
    for (size_t i = 0; i < table.size(); i += 2)
        table[i].depth = -table[i].depth;
    auto expect = stdSorted(table);
    TileSortScratch scratch;
    keySortTable(table, scratch);
    expectBitIdentical(expect, table);
}

TEST(KeySortTest, NegativeZeroTiesTakeComparatorFallback)
{
    // entryDepthLess treats -0.0f == +0.0f (ties break by id) while the
    // key space separates them — the kernel must detect the case and
    // fall back, preserving each entry's depth bit pattern exactly.
    std::vector<TileEntry> table{{5, -0.0f, true},
                                 {3, 0.0f, true},
                                 {9, -1.0f, true},
                                 {1, 0.0f, true},
                                 {7, -0.0f, true}};
    auto expect = stdSorted(table);
    TileSortScratch scratch;
    keySortTable(table, scratch);
    expectBitIdentical(expect, table);
    // -0.0f and +0.0f interleave purely by id in the tie group.
    EXPECT_EQ(table[0].id, 9u);
    EXPECT_EQ(table[1].id, 1u);
    EXPECT_EQ(table[4].id, 7u);
}

TEST(KeySortTest, InvalidEntriesTakeComparatorFallback)
{
    // A cleared valid bit cannot ride in the packed key; the kernel must
    // keep such entries (deletion is the MSU+'s job, not the sorter's)
    // in exactly the comparator order.
    auto table = test::randomTable(500, 8);
    for (size_t i = 0; i < table.size(); i += 37)
        table[i].valid = false;
    auto expect = stdSorted(table);
    TileSortScratch scratch;
    keySortTable(table, scratch);
    expectBitIdentical(expect, table);
}

TEST(BatchSortTest, MatchesPerTileSortAcrossThreads)
{
    // Mixed tiny/huge tiles: sizes span four orders of magnitude, so the
    // batch packing fuses runs of tiny tiles and isolates the huge ones.
    std::vector<size_t> sizes;
    for (size_t t = 0; t < 300; ++t)
        sizes.push_back(t % 7); // 0..6-entry tiles, incl. empties
    sizes.push_back(5000);
    for (size_t t = 0; t < 100; ++t)
        sizes.push_back(40);
    sizes.push_back(3000);

    std::vector<std::vector<TileEntry>> base;
    for (size_t t = 0; t < sizes.size(); ++t)
        base.push_back(test::randomTable(sizes[t], 200 + t));
    auto expect = base;
    for (auto &tile : expect)
        std::sort(tile.begin(), tile.end(), entryDepthLess);

    for (int threads : {1, 2, 8}) {
        auto tables = base;
        BatchSortScratch scratch;
        sortTablesBatched(tables, threads, scratch);
        ASSERT_EQ(tables.size(), expect.size());
        for (size_t t = 0; t < tables.size(); ++t)
            expectBitIdentical(expect[t], tables[t]);
    }
}

TEST(BatchSortTest, GrainKnobChangesBatchingNotResults)
{
    auto base = std::vector<std::vector<TileEntry>>{};
    for (size_t t = 0; t < 64; ++t)
        base.push_back(test::randomTable(1 + t % 13, 300 + t));
    auto expect = base;
    for (auto &tile : expect)
        std::sort(tile.begin(), tile.end(), entryDepthLess);

    for (size_t grain : {size_t{1}, size_t{8}, size_t{100000}}) {
        auto tables = base;
        BatchSortScratch scratch;
        sortTablesBatched(tables, 4, scratch, grain);
        for (size_t t = 0; t < tables.size(); ++t)
            expectBitIdentical(expect[t], tables[t]);
    }
}

TEST(BatchSortTest, ScratchCapacityStabilizesAcrossFrames)
{
    // Steady-state contract: after the first frame grew the scratch to
    // its working size, identical later frames must not grow it further.
    std::vector<std::vector<TileEntry>> frame;
    for (size_t t = 0; t < 200; ++t)
        frame.push_back(test::randomTable(1 + t % 50, 400 + t));

    BatchSortScratch scratch;
    auto tables = frame;
    sortTablesBatched(tables, 4, scratch);
    const size_t warm = scratch.capacityBytes();
    EXPECT_GT(warm, 0u);
    for (int f = 0; f < 3; ++f) {
        tables = frame;
        sortTablesBatched(tables, 4, scratch);
        EXPECT_EQ(scratch.capacityBytes(), warm) << "frame " << f;
    }
}

} // namespace
} // namespace neo
