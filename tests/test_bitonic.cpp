/**
 * @file
 * Unit tests for the Bitonic Sorting Unit model.
 */

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "sort/bitonic.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(BitonicTest, NetworkOpsFormula)
{
    // n/2 * k(k+1)/2 for n = 2^k.
    EXPECT_EQ(bitonicNetworkOps(2), 1u);
    EXPECT_EQ(bitonicNetworkOps(4), 6u);
    EXPECT_EQ(bitonicNetworkOps(8), 24u);
    EXPECT_EQ(bitonicNetworkOps(16), 80u);
}

TEST(BitonicTest, NonPowerOfTwoPanics)
{
    EXPECT_DEATH({ bitonicNetworkOps(12); }, "power of two");
}

TEST(BitonicTest, SortsFullSubchunk)
{
    auto t = test::randomTable(16, 3);
    bsuSortSubchunk(t, 0, 16);
    EXPECT_TRUE(test::isSorted(t));
}

TEST(BitonicTest, SortsPartialSubchunkWithPadding)
{
    for (size_t n : {1u, 2u, 5u, 9u, 15u}) {
        auto t = test::randomTable(n, n);
        bsuSortSubchunk(t, 0, n);
        EXPECT_TRUE(test::isSorted(t)) << "n = " << n;
        EXPECT_EQ(t.size(), n);
    }
}

TEST(BitonicTest, OversizedSubchunkPanics)
{
    auto t = test::randomTable(32, 1);
    EXPECT_DEATH({ bsuSortSubchunk(t, 0, 32); }, "exceed");
}

TEST(BitonicTest, SortsSliceInMiddle)
{
    auto t = test::randomTable(48, 5);
    auto before = t;
    bsuSortSubchunk(t, 16, 16);
    // Outside the slice untouched.
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(t[i].id, before[i].id);
    for (size_t i = 32; i < 48; ++i)
        EXPECT_EQ(t[i].id, before[i].id);
    // Slice sorted.
    for (size_t i = 16; i + 1 < 32; ++i)
        EXPECT_FALSE(entryDepthLess(t[i + 1], t[i]));
}

TEST(BitonicTest, StatsCountFixedSchedule)
{
    auto t = test::randomTable(16, 7);
    BsuStats stats;
    bsuSortSubchunk(t, 0, 16, &stats);
    EXPECT_EQ(stats.subchunks, 1u);
    // The network schedule is data independent: exactly 80 ops, 10 stages.
    EXPECT_EQ(stats.compare_exchanges, 80u);
    EXPECT_EQ(stats.stages, 10u);
}

TEST(BitonicTest, RunsProduceSortedBlocks)
{
    auto t = test::randomTable(100, 9);
    BsuStats stats;
    bsuSortRuns(t, 0, 100, &stats);
    // 7 sub-chunks: 6 full + 1 of 4 entries.
    EXPECT_EQ(stats.subchunks, 7u);
    for (size_t block = 0; block < 100; block += 16) {
        size_t end = std::min<size_t>(block + 16, 100);
        for (size_t i = block; i + 1 < end; ++i)
            EXPECT_FALSE(entryDepthLess(t[i + 1], t[i]))
                << "block at " << block;
    }
}

TEST(BitonicTest, PreservesMultiset)
{
    auto t = test::randomTable(16, 11);
    auto ids_before = t;
    bsuSortSubchunk(t, 0, 16);
    auto key = [](const TileEntry &e) { return e.id; };
    std::vector<GaussianId> a, b;
    for (const auto &e : ids_before)
        a.push_back(key(e));
    for (const auto &e : t)
        b.push_back(key(e));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

TEST(BitonicTest, DuplicateDepthsTieBreakById)
{
    std::vector<TileEntry> t;
    for (int i = 15; i >= 0; --i)
        t.push_back({static_cast<GaussianId>(i), 1.0f, true});
    bsuSortSubchunk(t, 0, 16);
    for (size_t i = 0; i + 1 < t.size(); ++i)
        EXPECT_LT(t[i].id, t[i + 1].id);
}

/** Parameterized sweep over sizes. */
class BitonicSizeTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(BitonicSizeTest, RunsSortEveryBlock)
{
    size_t n = GetParam();
    auto t = test::randomTable(n, n * 31 + 1);
    bsuSortRuns(t, 0, n);
    for (size_t block = 0; block < n; block += kBsuWidth) {
        size_t end = std::min(block + kBsuWidth, n);
        for (size_t i = block; i + 1 < end; ++i)
            EXPECT_FALSE(entryDepthLess(t[i + 1], t[i]));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicSizeTest,
                         ::testing::Values(1, 15, 16, 17, 64, 100, 256,
                                           1000));

} // namespace
} // namespace neo
