/**
 * @file
 * Unit tests for spherical-harmonics color evaluation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gs/sh.h"

namespace neo
{
namespace
{

TEST(ShTest, DcBasisIsConstant)
{
    Rng rng(1);
    float basis[kShCoeffsPerChannel];
    for (int i = 0; i < 20; ++i) {
        shBasis(rng.onSphere(), basis);
        EXPECT_NEAR(basis[0], 0.2820948f, 1e-5f);
    }
}

TEST(ShTest, Band1IsLinearInDirection)
{
    float basis[kShCoeffsPerChannel];
    shBasis({0.0f, 0.0f, 1.0f}, basis);
    EXPECT_NEAR(basis[2], 0.4886025f, 1e-5f); // z component
    EXPECT_NEAR(basis[1], 0.0f, 1e-6f);
    EXPECT_NEAR(basis[3], 0.0f, 1e-6f);
    shBasis({0.0f, 0.0f, -1.0f}, basis);
    EXPECT_NEAR(basis[2], -0.4886025f, 1e-5f);
}

TEST(ShTest, FlatColorRoundTrip)
{
    Gaussian g;
    Vec3 color{0.8f, 0.3f, 0.6f};
    setShFromColor(g, color, 0.0f);
    Rng rng(2);
    for (int i = 0; i < 10; ++i) {
        Vec3 c = shColor(g, rng.onSphere());
        EXPECT_NEAR(c.x, color.x, 1e-5f);
        EXPECT_NEAR(c.y, color.y, 1e-5f);
        EXPECT_NEAR(c.z, color.z, 1e-5f);
    }
}

TEST(ShTest, DirectionalComponentVariesWithView)
{
    Gaussian g;
    setShFromColor(g, {0.5f, 0.5f, 0.5f}, 0.5f);
    Vec3 a = shColor(g, {1.0f, 0.0f, 0.0f});
    Vec3 b = shColor(g, {-1.0f, 0.0f, 0.0f});
    float diff = std::fabs(a.x - b.x) + std::fabs(a.y - b.y) +
                 std::fabs(a.z - b.z);
    EXPECT_GT(diff, 1e-3f);
}

TEST(ShTest, ColorIsClampedAtZero)
{
    Gaussian g;
    setShFromColor(g, {0.0f, 0.0f, 0.0f}, 0.0f);
    // Push the DC far negative.
    g.sh[0][0] = -10.0f;
    Vec3 c = shColor(g, {0.0f, 0.0f, 1.0f});
    EXPECT_GE(c.x, 0.0f);
}

TEST(ShTest, ZeroDirectionalStrengthZeroesHigherBands)
{
    Gaussian g;
    setShFromColor(g, {0.2f, 0.4f, 0.6f}, 0.0f);
    for (int c = 0; c < 3; ++c)
        for (int i = 1; i < kShCoeffsPerChannel; ++i)
            EXPECT_FLOAT_EQ(g.sh[c][i], 0.0f);
}

TEST(ShTest, Band2BasisMatchesClosedForm)
{
    // At dir = (0, 0, 1): basis[6] = c * (2 - 0 - 0) = 0.6307831.
    float basis[kShCoeffsPerChannel];
    shBasis({0.0f, 0.0f, 1.0f}, basis);
    EXPECT_NEAR(basis[6], 0.6307831f, 1e-5f);
    EXPECT_NEAR(basis[4], 0.0f, 1e-6f);
    EXPECT_NEAR(basis[8], 0.0f, 1e-6f);
}

} // namespace
} // namespace neo
