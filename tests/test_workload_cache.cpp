/**
 * @file
 * Unit tests for workload serialization and the on-disk cache.
 */

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/workload_cache.h"

namespace neo
{
namespace
{

FrameWorkload
sampleWorkload(int i)
{
    FrameWorkload w;
    w.res = kResHD;
    w.tile_size = 16;
    w.scene_gaussians = 1000 + i;
    w.visible_gaussians = 900 + i;
    w.instances = 5000 + i;
    w.blend_ops = 123456 + i;
    w.intersection_tests = 777 + i;
    w.incoming_instances = 42 + i;
    w.outgoing_instances = 17 + i;
    w.mean_tile_retention = 0.9 + 0.001 * i;
    w.tile_lengths = {1u, 2u, 3u, static_cast<uint32_t>(i)};
    return w;
}

TEST(WorkloadCacheTest, SaveLoadRoundTrip)
{
    std::vector<FrameWorkload> seq{sampleWorkload(0), sampleWorkload(1),
                                   sampleWorkload(2)};
    const char *path = "/tmp/neo_test_workloads.bin";
    ASSERT_TRUE(saveWorkloads(path, seq));
    auto loaded = loadWorkloads(path);
    ASSERT_EQ(loaded.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(loaded[i].scene_gaussians, seq[i].scene_gaussians);
        EXPECT_EQ(loaded[i].instances, seq[i].instances);
        EXPECT_EQ(loaded[i].blend_ops, seq[i].blend_ops);
        EXPECT_EQ(loaded[i].incoming_instances,
                  seq[i].incoming_instances);
        EXPECT_DOUBLE_EQ(loaded[i].mean_tile_retention,
                         seq[i].mean_tile_retention);
        EXPECT_EQ(loaded[i].tile_lengths, seq[i].tile_lengths);
        EXPECT_EQ(loaded[i].res.width, seq[i].res.width);
        EXPECT_EQ(loaded[i].tile_size, seq[i].tile_size);
    }
    std::remove(path);
}

TEST(WorkloadCacheTest, MissingFileLoadsEmpty)
{
    EXPECT_TRUE(loadWorkloads("/tmp/neo_no_such_file.bin").empty());
}

TEST(WorkloadCacheTest, CorruptMagicLoadsEmpty)
{
    const char *path = "/tmp/neo_test_corrupt.bin";
    std::FILE *f = std::fopen(path, "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage", f);
    std::fclose(f);
    EXPECT_TRUE(loadWorkloads(path).empty());
    std::remove(path);
}

TEST(WorkloadCacheTest, KeyStemEncodesEveryField)
{
    WorkloadKey a{"Horse", 1.0, kResHD, 16, 8, 1.0f};
    WorkloadKey b = a;
    EXPECT_EQ(a.stem(), b.stem());
    b.tile_px = 64;
    EXPECT_NE(a.stem(), b.stem());
    b = a;
    b.speed = 2.0f;
    EXPECT_NE(a.stem(), b.stem());
    b = a;
    b.res = kResQHD;
    EXPECT_NE(a.stem(), b.stem());
    b = a;
    b.scene_scale = 0.5;
    EXPECT_NE(a.stem(), b.stem());
    b = a;
    b.frames = 4;
    EXPECT_NE(a.stem(), b.stem());
}

TEST(WorkloadCacheTest, MissThenHitProducesSameSequence)
{
    const char *dir = "/tmp/neo_test_cache_dir";
    WorkloadKey key{"Horse", 0.005, {128, 96, "t"}, 16, 3, 1.0f};
    // Miss: computed from the functional pipeline.
    auto first = cachedWorkloads(key, dir);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_GT(first[0].instances, 0u);
    // Hit: loaded from disk, bit-identical counters.
    auto second = cachedWorkloads(key, dir);
    ASSERT_EQ(second.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(second[i].instances, first[i].instances);
        EXPECT_EQ(second[i].blend_ops, first[i].blend_ops);
        EXPECT_EQ(second[i].tile_lengths, first[i].tile_lengths);
    }
    // Clean up.
    std::string cmd = std::string("rm -rf ") + dir;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
}

TEST(WorkloadCacheTest, EmptySequenceRoundTrips)
{
    const char *path = "/tmp/neo_test_empty.bin";
    ASSERT_TRUE(saveWorkloads(path, {}));
    EXPECT_TRUE(loadWorkloads(path).empty());
    std::remove(path);
}

} // namespace
} // namespace neo
