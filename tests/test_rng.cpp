/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace neo
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedResets)
{
    Rng a(77);
    uint64_t first = a.next();
    a.next();
    a.reseed(77);
    EXPECT_EQ(a.next(), first);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(6);
    for (int i = 0; i < 10000; ++i) {
        float v = rng.uniform(-3.0f, 7.0f);
        EXPECT_GE(v, -3.0f);
        EXPECT_LT(v, 7.0f);
    }
}

TEST(RngTest, UniformMeanIsCentered)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysBelow)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowCoversAllResidues)
{
    Rng rng(9);
    bool seen[7] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(7)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(RngTest, NormalMomentsAreStandard)
{
    Rng rng(10);
    const int n = 200000;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal();
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales)
{
    Rng rng(11);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0f, 2.0f);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, OnSphereIsUnitLength)
{
    Rng rng(12);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NEAR(rng.onSphere().norm(), 1.0f, 1e-5f);
}

TEST(RngTest, OnSphereCoversBothHemispheres)
{
    Rng rng(13);
    int up = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        if (rng.onSphere().z > 0.0f)
            ++up;
    EXPECT_NEAR(static_cast<double>(up) / n, 0.5, 0.03);
}

TEST(RngTest, RotationIsUnitQuaternion)
{
    Rng rng(14);
    for (int i = 0; i < 1000; ++i) {
        Quat q = rng.rotation();
        float n = std::sqrt(q.w * q.w + q.x * q.x + q.y * q.y + q.z * q.z);
        EXPECT_NEAR(n, 1.0f, 1e-5f);
    }
}

} // namespace
} // namespace neo
