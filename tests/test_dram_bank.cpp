/**
 * @file
 * Tests for the banked LPDDR4 model, including the validation that ties
 * it to the analytic DramModel's efficiency constants.
 */

#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

#include "sim/dram.h"
#include "sim/dram_bank.h"

namespace neo
{
namespace
{

TEST(BankedDramTest, PeakBandwidthMatchesDatasheetMath)
{
    BankedDramConfig cfg;
    // 1.6 GHz DDR, 32 B per 8-cycle burst pair -> 6.4 GB/s per channel.
    EXPECT_NEAR(cfg.peakBandwidth(), 6.4e9, 1e7);
}

TEST(BankedDramTest, SequentialStreamIsRowHitDominated)
{
    BankedDramModel dram;
    auto reqs = sequentialStream(0, 1 << 20); // 1 MiB
    const DramReplayStats &s = dram.replay(reqs);
    EXPECT_GT(s.hitRate(), 0.9);
    EXPECT_GT(dram.efficiency(), 0.8);
}

TEST(BankedDramTest, RandomSmallAccessesAreRowMissDominated)
{
    BankedDramModel dram;
    auto reqs = randomStream(1ull << 30, 20000, 8, 7);
    const DramReplayStats &s = dram.replay(reqs);
    EXPECT_LT(s.hitRate(), 0.2);
    EXPECT_LT(dram.efficiency(), 0.25);
}

TEST(BankedDramTest, ValidatesAnalyticStreamEfficiency)
{
    // The analytic DramModel assumes streaming achieves ~85% of peak;
    // the banked replay of a long stream must land in that ballpark.
    BankedDramModel dram;
    dram.replay(sequentialStream(0, 8 << 20));
    double detailed = dram.efficiency();
    double analytic = DramConfig{}.stream_efficiency;
    EXPECT_NEAR(detailed, analytic, 0.15);
}

TEST(BankedDramTest, ValidatesAnalyticRandomPenalty)
{
    // Analytic model: random accesses are random_penalty x slower than
    // streaming. Compare replayed times for equal byte totals.
    BankedDramModel seq_dram, rnd_dram;
    const uint64_t bytes = 4 << 20;
    seq_dram.replay(sequentialStream(0, bytes));
    rnd_dram.replay(
        randomStream(1ull << 30, bytes / 32, 32, 11));
    double slowdown =
        rnd_dram.elapsedSeconds() / seq_dram.elapsedSeconds();
    double analytic = DramConfig{}.random_penalty;
    EXPECT_GT(slowdown, 0.5 * analytic);
    EXPECT_LT(slowdown, 3.0 * analytic);
}

TEST(BankedDramTest, CyclesAccumulateAcrossCalls)
{
    BankedDramModel dram;
    dram.access({0, 32});
    uint64_t after_one = dram.stats().cycles;
    dram.access({32, 32});
    EXPECT_GT(dram.stats().cycles, after_one);
}

TEST(BankedDramTest, ResetClearsState)
{
    BankedDramModel dram;
    dram.replay(sequentialStream(0, 4096));
    dram.reset();
    EXPECT_EQ(dram.stats().cycles, 0u);
    EXPECT_EQ(dram.stats().bursts, 0u);
}

TEST(BankedDramTest, LargeRequestSplitsIntoBursts)
{
    BankedDramModel dram;
    dram.access({0, 256});
    EXPECT_EQ(dram.stats().bursts, 8u); // 256 / 32
}

TEST(BankedDramTest, RowCrossingCausesMiss)
{
    BankedDramConfig cfg;
    BankedDramModel dram(cfg);
    // Two bursts in the same row: 1 miss + 1 hit.
    dram.access({0, 32});
    dram.access({32, 32});
    EXPECT_EQ(dram.stats().row_misses, 1u);
    EXPECT_EQ(dram.stats().row_hits, 1u);
    // A burst in a different row of the same bank: another miss.
    dram.access({static_cast<uint64_t>(cfg.row_bytes) * cfg.banks, 32});
    EXPECT_EQ(dram.stats().row_misses, 2u);
}

TEST(BankedDramTest, SequentialHelperCoversExactByteRange)
{
    auto reqs = sequentialStream(100, 1000, 256);
    uint64_t total = 0;
    for (const auto &r : reqs)
        total += r.bytes;
    EXPECT_EQ(total, 1000u);
    EXPECT_EQ(reqs.front().address, 100u);
}

} // namespace
} // namespace neo
