/**
 * @file
 * Unit tests for the camera trajectories.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "scene/trajectory.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(TrajectoryTest, OrbitKeepsDistanceToCenter)
{
    Trajectory traj(TrajectoryKind::Orbit, {0.0f, 0.0f, 0.0f}, 10.0f, 1.0f);
    for (int f = 0; f < 50; f += 5) {
        Camera cam = traj.cameraAt(f, test::smallRes());
        Vec3 offset = cam.position();
        // Horizontal distance stays at 1.25 * radius.
        float horiz = std::sqrt(offset.x * offset.x + offset.z * offset.z);
        EXPECT_NEAR(horiz, 12.5f, 0.2f);
    }
}

TEST(TrajectoryTest, ConsecutiveFramesMoveSlightly)
{
    Trajectory traj(TrajectoryKind::Orbit, {0.0f, 0.0f, 0.0f}, 10.0f, 1.0f);
    Camera a = traj.cameraAt(10, test::smallRes());
    Camera b = traj.cameraAt(11, test::smallRes());
    float step = (a.position() - b.position()).norm();
    EXPECT_GT(step, 1e-4f);
    EXPECT_LT(step, 0.5f); // smooth at 30 FPS capture rate
}

TEST(TrajectoryTest, SpeedMultiplierScalesStep)
{
    Trajectory slow(TrajectoryKind::Orbit, {0.0f, 0.0f, 0.0f}, 10.0f, 1.0f);
    Trajectory fast(TrajectoryKind::Orbit, {0.0f, 0.0f, 0.0f}, 10.0f, 8.0f);
    float step1 = (slow.cameraAt(1, test::smallRes()).position() -
                   slow.cameraAt(0, test::smallRes()).position())
                      .norm();
    float step8 = (fast.cameraAt(1, test::smallRes()).position() -
                   fast.cameraAt(0, test::smallRes()).position())
                      .norm();
    EXPECT_NEAR(step8 / step1, 8.0f, 0.8f);
}

TEST(TrajectoryTest, OrbitLooksAtCenter)
{
    Vec3 center{2.0f, 1.0f, -3.0f};
    Trajectory traj(TrajectoryKind::Orbit, center, 8.0f, 1.0f);
    for (int f = 0; f < 60; f += 10) {
        Camera cam = traj.cameraAt(f, test::smallRes());
        Vec3 c = cam.toCameraSpace(center);
        EXPECT_GT(c.z, 0.0f) << "center in front of camera";
        EXPECT_NEAR(c.x, 0.0f, 1e-3f);
        EXPECT_NEAR(c.y, 0.0f, 1e-3f);
    }
}

TEST(TrajectoryTest, DollyRadiusOscillates)
{
    Trajectory traj(TrajectoryKind::Dolly, {0.0f, 0.0f, 0.0f}, 10.0f, 4.0f);
    float min_d = 1e9f, max_d = 0.0f;
    for (int f = 0; f < 200; ++f) {
        Vec3 p = traj.cameraAt(f, test::smallRes()).position();
        float d = std::sqrt(p.x * p.x + p.z * p.z);
        min_d = std::min(min_d, d);
        max_d = std::max(max_d, d);
    }
    EXPECT_GT(max_d - min_d, 2.0f);
}

TEST(TrajectoryTest, WalkAdvancesMonotonically)
{
    Trajectory traj(TrajectoryKind::Walk, {0.0f, 0.0f, 0.0f}, 10.0f, 1.0f);
    float prev_x = traj.cameraAt(0, test::smallRes()).position().x;
    for (int f = 1; f < 50; ++f) {
        float x = traj.cameraAt(f, test::smallRes()).position().x;
        EXPECT_GT(x, prev_x);
        prev_x = x;
    }
}

TEST(TrajectoryTest, SceneConstructorUsesBounds)
{
    GaussianScene scene = test::blobScene(100);
    Trajectory traj(TrajectoryKind::Orbit, scene, 1.0f);
    Camera cam = traj.cameraAt(0, test::smallRes());
    // The camera must be outside the scene bounds and see the center.
    EXPECT_GT((cam.position() - scene.center).norm(),
              scene.bounding_radius);
}

/** Parameterized smoothness sweep over speeds (Fig. 17b scenario). */
class TrajectorySpeedTest : public ::testing::TestWithParam<float>
{
};

TEST_P(TrajectorySpeedTest, StepScalesLinearly)
{
    float speed = GetParam();
    Trajectory base(TrajectoryKind::Orbit, {0.0f, 0.0f, 0.0f}, 10.0f, 1.0f);
    Trajectory fast(TrajectoryKind::Orbit, {0.0f, 0.0f, 0.0f}, 10.0f,
                    speed);
    float s1 = (base.cameraAt(1, test::smallRes()).position() -
                base.cameraAt(0, test::smallRes()).position())
                   .norm();
    float sx = (fast.cameraAt(1, test::smallRes()).position() -
                fast.cameraAt(0, test::smallRes()).position())
                   .norm();
    EXPECT_NEAR(sx / s1, speed, 0.15f * speed);
}

INSTANTIATE_TEST_SUITE_P(Speeds, TrajectorySpeedTest,
                         ::testing::Values(2.0f, 4.0f, 8.0f, 16.0f));

} // namespace
} // namespace neo
