/**
 * @file
 * Unit tests for chunk-granular sorting (one Sorting Core operation).
 */

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "sort/chunk_sort.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(ChunkSortTest, SortsFullChunk)
{
    auto t = test::randomTable(256, 1);
    sortChunk(t, 0, 256);
    EXPECT_TRUE(test::isSorted(t));
}

TEST(ChunkSortTest, SortsPartialChunk)
{
    for (size_t n : {1u, 7u, 17u, 100u, 255u}) {
        auto t = test::randomTable(n, n);
        sortChunk(t, 0, n);
        EXPECT_TRUE(test::isSorted(t)) << "n = " << n;
    }
}

TEST(ChunkSortTest, OversizedChunkPanics)
{
    auto t = test::randomTable(300, 2);
    EXPECT_DEATH({ sortChunk(t, 0, 300); }, "chunk capacity");
}

TEST(ChunkSortTest, CountsOneLoadStorePerChunk)
{
    auto t = test::randomTable(256, 3);
    SortCoreStats stats;
    sortChunk(t, 0, 256, &stats);
    EXPECT_EQ(stats.chunk_loads, 1u);
    EXPECT_EQ(stats.chunk_stores, 1u);
    EXPECT_EQ(stats.entries_read, 256u);
    EXPECT_EQ(stats.entries_written, 256u);
    EXPECT_EQ(stats.bsu.subchunks, 16u);
    EXPECT_GT(stats.msu.merges, 0u);
}

TEST(ChunkSortTest, SliceSortLeavesRestUntouched)
{
    auto t = test::randomTable(512, 4);
    auto before = t;
    sortChunk(t, 128, 256);
    for (size_t i = 0; i < 128; ++i)
        EXPECT_EQ(t[i].id, before[i].id);
    for (size_t i = 384; i < 512; ++i)
        EXPECT_EQ(t[i].id, before[i].id);
}

TEST(FullSortTest, SortsArbitraryLengths)
{
    for (size_t n : {0u, 1u, 255u, 256u, 257u, 1000u, 2048u}) {
        auto t = test::randomTable(n, n + 13);
        fullSortTable(t);
        EXPECT_TRUE(test::isSorted(t)) << "n = " << n;
        EXPECT_EQ(t.size(), n);
    }
}

TEST(FullSortTest, SingleChunkHasNoGlobalPasses)
{
    auto t = test::randomTable(200, 5);
    SortCoreStats stats;
    fullSortTable(t, &stats);
    EXPECT_EQ(stats.global_merge_passes, 0u);
}

TEST(FullSortTest, MultiChunkCostsGlobalPasses)
{
    auto t = test::randomTable(1024, 6); // 4 chunks -> 2 merge passes
    SortCoreStats stats;
    fullSortTable(t, &stats);
    EXPECT_EQ(stats.global_merge_passes, 2u);
    // Off-chip entries: chunk pass (1024 RW) + 2 global passes (2048 RW).
    EXPECT_EQ(stats.entries_read, 1024u + 2048u);
    EXPECT_EQ(stats.entries_written, 1024u + 2048u);
}

TEST(FullSortTest, StatsAccumulateAcrossCalls)
{
    SortCoreStats stats;
    auto a = test::randomTable(256, 7);
    auto b = test::randomTable(256, 8);
    fullSortTable(a, &stats);
    fullSortTable(b, &stats);
    EXPECT_EQ(stats.chunk_loads, 2u);
    EXPECT_EQ(stats.chunk_stores, 2u);
}

TEST(FullSortTest, StatsOperatorPlusEquals)
{
    SortCoreStats a, b;
    auto t = test::randomTable(256, 9);
    fullSortTable(t, &a);
    auto u = test::randomTable(512, 10);
    fullSortTable(u, &b);
    SortCoreStats sum = a;
    sum += b;
    EXPECT_EQ(sum.chunk_loads, a.chunk_loads + b.chunk_loads);
    EXPECT_EQ(sum.entries_read, a.entries_read + b.entries_read);
    EXPECT_EQ(sum.bsu.compare_exchanges,
              a.bsu.compare_exchanges + b.bsu.compare_exchanges);
    EXPECT_EQ(sum.msu.elements_processed,
              a.msu.elements_processed + b.msu.elements_processed);
}

TEST(FullSortTest, PreservesMultiset)
{
    auto t = test::randomTable(777, 11);
    std::vector<GaussianId> before;
    for (const auto &e : t)
        before.push_back(e.id);
    fullSortTable(t);
    std::vector<GaussianId> after;
    for (const auto &e : t)
        after.push_back(e.id);
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after);
}

} // namespace
} // namespace neo
