/**
 * @file
 * Unit tests for the end-to-end baseline pipeline.
 */

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "gs/pipeline.h"
#include "metrics/psnr.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(PipelineTest, PrepareSortsEveryTile)
{
    GaussianScene scene = test::blobScene(300);
    Camera cam = test::frontCamera(5.0f);
    Renderer renderer;
    BinnedFrame frame = renderer.prepare(scene, cam);
    for (const auto &tile : frame.tiles)
        EXPECT_TRUE(test::isSorted(tile));
}

TEST(PipelineTest, RenderIsDeterministic)
{
    GaussianScene scene = test::blobScene(200);
    Camera cam = test::frontCamera(5.0f);
    Renderer renderer;
    Image a = renderer.render(scene, cam);
    Image b = renderer.render(scene, cam);
    EXPECT_DOUBLE_EQ(Image::meanAbsoluteDifference(a, b), 0.0);
}

TEST(PipelineTest, RenderProducesNonTrivialImage)
{
    GaussianScene scene = test::blobScene(300);
    Camera cam = test::frontCamera(5.0f);
    Renderer renderer;
    FrameStats stats;
    Image img = renderer.render(scene, cam, &stats);
    EXPECT_GT(stats.raster.blend_ops, 0u);
    double energy = 0.0;
    for (const auto &p : img.pixels())
        energy += p.x + p.y + p.z;
    EXPECT_GT(energy, 1.0);
}

TEST(PipelineTest, StatsReflectScene)
{
    GaussianScene scene = test::blobScene(250);
    Camera cam = test::frontCamera(5.0f);
    Renderer renderer;
    FrameStats stats;
    renderer.render(scene, cam, &stats);
    EXPECT_EQ(stats.scene_gaussians, 250u);
    EXPECT_GT(stats.visible_gaussians, 0u);
    EXPECT_LE(stats.visible_gaussians, 250u);
    EXPECT_GE(stats.instances, stats.visible_gaussians);
}

TEST(PipelineTest, ExplicitOrderingOverridesDefault)
{
    GaussianScene scene = test::blobScene(200);
    Camera cam = test::frontCamera(5.0f);
    Renderer renderer;
    BinnedFrame frame = renderer.prepare(scene, cam);

    // Reverse every tile's ordering; the image must change (wrong blend
    // order) while using the same binned frame.
    std::vector<std::vector<TileEntry>> reversed = frame.tiles;
    for (auto &t : reversed)
        std::reverse(t.begin(), t.end());

    Image correct = renderer.renderWithOrdering(frame, {});
    Image wrong = renderer.renderWithOrdering(frame, reversed);
    EXPECT_GT(Image::meanAbsoluteDifference(correct, wrong), 1e-5);
}

TEST(PipelineTest, WorkloadMatchesRenderCounters)
{
    GaussianScene scene = test::blobScene(300);
    Camera cam = test::frontCamera(5.0f);
    Renderer renderer;
    FrameStats stats;
    renderer.render(scene, cam, &stats);
    FrameWorkload w = renderer.extractWorkload(scene, cam);
    EXPECT_EQ(w.scene_gaussians, stats.scene_gaussians);
    EXPECT_EQ(w.visible_gaussians, stats.visible_gaussians);
    EXPECT_EQ(w.instances, stats.instances);
    EXPECT_EQ(w.tile_lengths.size(),
              static_cast<size_t>((cam.width() + 15) / 16) *
                  ((cam.height() + 15) / 16));
}

TEST(PipelineTest, WorkloadBlendEstimatePositive)
{
    GaussianScene scene = test::blobScene(300);
    Camera cam = test::frontCamera(5.0f);
    Renderer renderer;
    FrameWorkload w = renderer.extractWorkload(scene, cam);
    EXPECT_GT(w.blend_ops, 0u);
    EXPECT_GT(w.intersection_tests, 0u);
    EXPECT_GT(w.nonEmptyTiles(), 0u);
    EXPECT_GT(w.meanTileLength(), 0.0);
}

TEST(PipelineTest, EmptySceneRendersBlack)
{
    GaussianScene scene;
    Camera cam = test::frontCamera(5.0f);
    Renderer renderer;
    FrameStats stats;
    Image img = renderer.render(scene, cam, &stats);
    EXPECT_EQ(stats.instances, 0u);
    for (const auto &p : img.pixels()) {
        EXPECT_FLOAT_EQ(p.x, 0.0f);
        EXPECT_FLOAT_EQ(p.y, 0.0f);
        EXPECT_FLOAT_EQ(p.z, 0.0f);
    }
}

TEST(PipelineTest, TileSize64MatchesTileSize16Image)
{
    // Tile geometry is an implementation detail: the rendered image must
    // be (nearly) identical across tile sizes.
    GaussianScene scene = test::blobScene(300);
    Camera cam = test::frontCamera(5.0f);
    PipelineOptions o16;
    o16.tile_px = 16;
    o16.raster.subtile_size = 8;
    PipelineOptions o64;
    o64.tile_px = 64;
    o64.raster.subtile_size = 8;
    Image a = Renderer(o16).render(scene, cam);
    Image b = Renderer(o64).render(scene, cam);
    EXPECT_GT(psnr(a, b), 35.0);
}

} // namespace
} // namespace neo
