/**
 * @file
 * Unit tests for the subtile rasterizer (ITU + SCU functional model).
 */

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "gs/raster.h"
#include "test_util.h"

namespace neo
{
namespace
{

/** Single-Gaussian frame helper. */
BinnedFrame
singleGaussianFrame(Vec3 world_pos, float scale, float opacity, Vec3 color,
                    int tile_px = 64)
{
    GaussianScene scene;
    scene.gaussians.push_back(
        test::makeGaussian(world_pos, scale, opacity, color));
    recomputeBounds(scene);
    Camera cam = test::frontCamera(5.0f);
    return binFrame(scene, cam, tile_px);
}

TEST(SubtileBitmapTest, CenteredGaussianCoversAllSubtiles)
{
    ProjectedGaussian pg;
    pg.mean2d = {32.0f, 32.0f};
    pg.radius_px = 64.0f;
    SubtileBitmap bm = subtileBitmap(pg, {0.0f, 0.0f}, 64, 8);
    EXPECT_EQ(bm, ~SubtileBitmap{0});
}

TEST(SubtileBitmapTest, FarGaussianCoversNothing)
{
    ProjectedGaussian pg;
    pg.mean2d = {500.0f, 500.0f};
    pg.radius_px = 10.0f;
    EXPECT_EQ(subtileBitmap(pg, {0.0f, 0.0f}, 64, 8), 0u);
}

TEST(SubtileBitmapTest, CornerGaussianCoversCornerOnly)
{
    ProjectedGaussian pg;
    pg.mean2d = {2.0f, 2.0f};
    pg.radius_px = 5.0f;
    SubtileBitmap bm = subtileBitmap(pg, {0.0f, 0.0f}, 64, 8);
    EXPECT_TRUE(bm & 1); // top-left subtile
    EXPECT_EQ(bm & ~SubtileBitmap{1}, 0u); // nothing else
}

TEST(SubtileBitmapTest, BitmapGrowsWithRadius)
{
    ProjectedGaussian pg;
    pg.mean2d = {32.0f, 32.0f};
    pg.radius_px = 4.0f;
    SubtileBitmap small = subtileBitmap(pg, {0.0f, 0.0f}, 64, 8);
    pg.radius_px = 20.0f;
    SubtileBitmap large = subtileBitmap(pg, {0.0f, 0.0f}, 64, 8);
    EXPECT_EQ(small & large, small); // superset
    EXPECT_GT(std::popcount(large), std::popcount(small));
}

TEST(RasterizeTest, SingleGaussianColorsCenterPixel)
{
    BinnedFrame frame =
        singleGaussianFrame({0.0f, 0.0f, 0.0f}, 0.25f, 0.9f,
                            {1.0f, 0.0f, 0.0f});
    ASSERT_EQ(frame.features.size(), 1u);
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tx = static_cast<int>(pg.mean2d.x) / grid.tile_size;
    int ty = static_cast<int>(pg.mean2d.y) / grid.tile_size;
    int tile = grid.tileIndex(tx, ty);
    ASSERT_FALSE(frame.tiles[tile].empty());

    Image image(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    RasterConfig cfg;
    RasterStats stats = rasterizeTile(frame.tiles[tile], frame, tile, cfg,
                                      &image);
    EXPECT_GT(stats.blend_ops, 0u);
    Vec3 px = image.at(static_cast<int>(pg.mean2d.x),
                       static_cast<int>(pg.mean2d.y));
    EXPECT_GT(px.x, 0.5f);
    EXPECT_LT(px.y, 0.1f);
}

TEST(RasterizeTest, FrontGaussianOccludesBack)
{
    GaussianScene scene;
    // Red in front (closer to camera at -5), blue behind, same screen pos.
    scene.gaussians.push_back(test::makeGaussian(
        {0.0f, 0.0f, -1.0f}, 0.3f, 0.95f, {1.0f, 0.0f, 0.0f}));
    scene.gaussians.push_back(test::makeGaussian(
        {0.0f, 0.0f, 1.0f}, 0.3f, 0.95f, {0.0f, 0.0f, 1.0f}));
    recomputeBounds(scene);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 64);

    // Find the tile containing the screen center and sort it by depth.
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    auto entries = frame.tiles[tile];
    std::sort(entries.begin(), entries.end(), entryDepthLess);

    Image image(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    rasterizeTile(entries, frame, tile, RasterConfig{}, &image);
    Vec3 px = image.at(static_cast<int>(pg.mean2d.x),
                       static_cast<int>(pg.mean2d.y));
    EXPECT_GT(px.x, 0.6f) << "front (red) should dominate";
    EXPECT_LT(px.z, 0.3f);

    // Reverse the order: blue now wrongly blended first.
    std::reverse(entries.begin(), entries.end());
    Image wrong(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    rasterizeTile(entries, frame, tile, RasterConfig{}, &wrong);
    Vec3 wrong_px = wrong.at(static_cast<int>(pg.mean2d.x),
                             static_cast<int>(pg.mean2d.y));
    EXPECT_GT(wrong_px.z, 0.6f) << "reversed order should show blue";
}

TEST(RasterizeTest, InvalidEntriesAreSkipped)
{
    BinnedFrame frame =
        singleGaussianFrame({0.0f, 0.0f, 0.0f}, 0.25f, 0.9f,
                            {1.0f, 0.0f, 0.0f});
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    auto entries = frame.tiles[tile];
    for (auto &e : entries)
        e.valid = false;
    Image image(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    RasterStats stats =
        rasterizeTile(entries, frame, tile, RasterConfig{}, &image);
    EXPECT_EQ(stats.blend_ops, 0u);
    EXPECT_EQ(stats.gaussians_blended, 0u);
}

TEST(RasterizeTest, ValidOutReflectsIntersection)
{
    BinnedFrame frame =
        singleGaussianFrame({0.0f, 0.0f, 0.0f}, 0.25f, 0.9f,
                            {1.0f, 0.0f, 0.0f});
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    std::vector<uint8_t> valid;
    rasterizeTile(frame.tiles[tile], frame, tile, RasterConfig{}, nullptr,
                  &valid);
    ASSERT_EQ(valid.size(), frame.tiles[tile].size());
    EXPECT_EQ(valid[0], 1);

    // An entry for a Gaussian that does not touch this tile gets valid=0.
    auto entries = frame.tiles[tile];
    // Fake an entry pointing at the same feature but in a distant tile.
    int far_tile = grid.tileIndex(0, 0) == tile ? grid.tileCount() - 1
                                                : grid.tileIndex(0, 0);
    rasterizeTile(entries, frame, far_tile, RasterConfig{}, nullptr, &valid);
    EXPECT_EQ(valid[0], 0);
}

TEST(RasterizeTest, OpaqueWallTerminatesEarly)
{
    // Stack many opaque Gaussians on the same spot: pixels must saturate
    // and terminate, so blend ops stay far below entries * pixels.
    GaussianScene scene;
    for (int i = 0; i < 50; ++i)
        scene.gaussians.push_back(test::makeGaussian(
            {0.0f, 0.0f, 0.1f * i}, 0.6f, 0.95f, {0.2f, 0.8f, 0.2f}));
    recomputeBounds(scene);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 64);
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    auto entries = frame.tiles[tile];
    std::sort(entries.begin(), entries.end(), entryDepthLess);
    Image image(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    RasterStats stats =
        rasterizeTile(entries, frame, tile, RasterConfig{}, &image);
    EXPECT_GT(stats.pixels_terminated, 0u);
    uint64_t upper = static_cast<uint64_t>(entries.size()) * 64 * 64;
    EXPECT_LT(stats.blend_ops, 3 * upper / 4);
}

TEST(RasterizeTest, EstimateTracksActualWithinFactor)
{
    GaussianScene scene = test::blobScene(400, 17);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 64);
    RasterConfig cfg;
    uint64_t actual = 0, estimated = 0;
    Image image(frame.grid.tiles_x * 64, frame.grid.tiles_y * 64);
    for (int tile = 0; tile < frame.grid.tileCount(); ++tile) {
        auto entries = frame.tiles[tile];
        if (entries.empty())
            continue;
        std::sort(entries.begin(), entries.end(), entryDepthLess);
        actual += rasterizeTile(entries, frame, tile, cfg, &image).blend_ops;
        estimated += estimateTileBlendOps(entries, frame, tile, cfg);
    }
    ASSERT_GT(actual, 0u);
    double ratio = static_cast<double>(estimated) / actual;
    EXPECT_GT(ratio, 0.2) << "estimate too low";
    EXPECT_LT(ratio, 5.0) << "estimate too high";
}

TEST(RasterizeTest, DryRunDoesOnlyItuWork)
{
    BinnedFrame frame =
        singleGaussianFrame({0.0f, 0.0f, 0.0f}, 0.25f, 0.9f,
                            {1.0f, 0.0f, 0.0f});
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    RasterStats stats = rasterizeTile(frame.tiles[tile], frame, tile,
                                      RasterConfig{}, nullptr);
    EXPECT_GT(stats.intersection_tests, 0u);
    EXPECT_EQ(stats.blend_ops, 0u);
}

} // namespace
} // namespace neo
