/**
 * @file
 * Unit tests for the subtile rasterizer (ITU + SCU functional model).
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/neo_renderer.h"
#include "gs/pipeline.h"
#include "gs/raster.h"
#include "test_util.h"

namespace neo
{
namespace
{

/** Single-Gaussian frame helper. */
BinnedFrame
singleGaussianFrame(Vec3 world_pos, float scale, float opacity, Vec3 color,
                    int tile_px = 64)
{
    GaussianScene scene;
    scene.gaussians.push_back(
        test::makeGaussian(world_pos, scale, opacity, color));
    recomputeBounds(scene);
    Camera cam = test::frontCamera(5.0f);
    return binFrame(scene, cam, tile_px);
}

TEST(SubtileBitmapTest, CenteredGaussianCoversAllSubtiles)
{
    ProjectedGaussian pg;
    pg.mean2d = {32.0f, 32.0f};
    pg.radius_px = 64.0f;
    SubtileBitmap bm = subtileBitmap(pg, {0.0f, 0.0f}, 64, 8);
    EXPECT_EQ(bm, ~SubtileBitmap{0});
}

TEST(SubtileBitmapTest, FarGaussianCoversNothing)
{
    ProjectedGaussian pg;
    pg.mean2d = {500.0f, 500.0f};
    pg.radius_px = 10.0f;
    EXPECT_EQ(subtileBitmap(pg, {0.0f, 0.0f}, 64, 8), 0u);
}

TEST(SubtileBitmapTest, CornerGaussianCoversCornerOnly)
{
    ProjectedGaussian pg;
    pg.mean2d = {2.0f, 2.0f};
    pg.radius_px = 5.0f;
    SubtileBitmap bm = subtileBitmap(pg, {0.0f, 0.0f}, 64, 8);
    EXPECT_TRUE(bm & 1); // top-left subtile
    EXPECT_EQ(bm & ~SubtileBitmap{1}, 0u); // nothing else
}

TEST(SubtileBitmapTest, BitmapGrowsWithRadius)
{
    ProjectedGaussian pg;
    pg.mean2d = {32.0f, 32.0f};
    pg.radius_px = 4.0f;
    SubtileBitmap small = subtileBitmap(pg, {0.0f, 0.0f}, 64, 8);
    pg.radius_px = 20.0f;
    SubtileBitmap large = subtileBitmap(pg, {0.0f, 0.0f}, 64, 8);
    EXPECT_EQ(small & large, small); // superset
    EXPECT_GT(std::popcount(large), std::popcount(small));
}

TEST(RasterizeTest, SingleGaussianColorsCenterPixel)
{
    BinnedFrame frame =
        singleGaussianFrame({0.0f, 0.0f, 0.0f}, 0.25f, 0.9f,
                            {1.0f, 0.0f, 0.0f});
    ASSERT_EQ(frame.features.size(), 1u);
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tx = static_cast<int>(pg.mean2d.x) / grid.tile_size;
    int ty = static_cast<int>(pg.mean2d.y) / grid.tile_size;
    int tile = grid.tileIndex(tx, ty);
    ASSERT_FALSE(frame.tiles[tile].empty());

    Image image(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    RasterConfig cfg;
    RasterStats stats = rasterizeTile(frame.tiles[tile], frame, tile, cfg,
                                      &image);
    EXPECT_GT(stats.blend_ops, 0u);
    Vec3 px = image.at(static_cast<int>(pg.mean2d.x),
                       static_cast<int>(pg.mean2d.y));
    EXPECT_GT(px.x, 0.5f);
    EXPECT_LT(px.y, 0.1f);
}

TEST(RasterizeTest, FrontGaussianOccludesBack)
{
    GaussianScene scene;
    // Red in front (closer to camera at -5), blue behind, same screen pos.
    scene.gaussians.push_back(test::makeGaussian(
        {0.0f, 0.0f, -1.0f}, 0.3f, 0.95f, {1.0f, 0.0f, 0.0f}));
    scene.gaussians.push_back(test::makeGaussian(
        {0.0f, 0.0f, 1.0f}, 0.3f, 0.95f, {0.0f, 0.0f, 1.0f}));
    recomputeBounds(scene);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 64);

    // Find the tile containing the screen center and sort it by depth.
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    auto entries = frame.tiles[tile];
    std::sort(entries.begin(), entries.end(), entryDepthLess);

    Image image(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    rasterizeTile(entries, frame, tile, RasterConfig{}, &image);
    Vec3 px = image.at(static_cast<int>(pg.mean2d.x),
                       static_cast<int>(pg.mean2d.y));
    EXPECT_GT(px.x, 0.6f) << "front (red) should dominate";
    EXPECT_LT(px.z, 0.3f);

    // Reverse the order: blue now wrongly blended first.
    std::reverse(entries.begin(), entries.end());
    Image wrong(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    rasterizeTile(entries, frame, tile, RasterConfig{}, &wrong);
    Vec3 wrong_px = wrong.at(static_cast<int>(pg.mean2d.x),
                             static_cast<int>(pg.mean2d.y));
    EXPECT_GT(wrong_px.z, 0.6f) << "reversed order should show blue";
}

TEST(RasterizeTest, InvalidEntriesAreSkipped)
{
    BinnedFrame frame =
        singleGaussianFrame({0.0f, 0.0f, 0.0f}, 0.25f, 0.9f,
                            {1.0f, 0.0f, 0.0f});
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    auto entries = frame.tiles[tile];
    for (auto &e : entries)
        e.valid = false;
    Image image(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    RasterStats stats =
        rasterizeTile(entries, frame, tile, RasterConfig{}, &image);
    EXPECT_EQ(stats.blend_ops, 0u);
    EXPECT_EQ(stats.gaussians_blended, 0u);
}

TEST(RasterizeTest, ValidOutReflectsIntersection)
{
    BinnedFrame frame =
        singleGaussianFrame({0.0f, 0.0f, 0.0f}, 0.25f, 0.9f,
                            {1.0f, 0.0f, 0.0f});
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    std::vector<uint8_t> valid;
    rasterizeTile(frame.tiles[tile], frame, tile, RasterConfig{}, nullptr,
                  &valid);
    ASSERT_EQ(valid.size(), frame.tiles[tile].size());
    EXPECT_EQ(valid[0], 1);

    // An entry for a Gaussian that does not touch this tile gets valid=0.
    auto entries = frame.tiles[tile];
    // Fake an entry pointing at the same feature but in a distant tile.
    int far_tile = grid.tileIndex(0, 0) == tile ? grid.tileCount() - 1
                                                : grid.tileIndex(0, 0);
    rasterizeTile(entries, frame, far_tile, RasterConfig{}, nullptr, &valid);
    EXPECT_EQ(valid[0], 0);
}

TEST(RasterizeTest, OpaqueWallTerminatesEarly)
{
    // Stack many opaque Gaussians on the same spot: pixels must saturate
    // and terminate, so blend ops stay far below entries * pixels.
    GaussianScene scene;
    for (int i = 0; i < 50; ++i)
        scene.gaussians.push_back(test::makeGaussian(
            {0.0f, 0.0f, 0.1f * i}, 0.6f, 0.95f, {0.2f, 0.8f, 0.2f}));
    recomputeBounds(scene);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 64);
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    auto entries = frame.tiles[tile];
    std::sort(entries.begin(), entries.end(), entryDepthLess);
    Image image(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);
    RasterStats stats =
        rasterizeTile(entries, frame, tile, RasterConfig{}, &image);
    EXPECT_GT(stats.pixels_terminated, 0u);
    uint64_t upper = static_cast<uint64_t>(entries.size()) * 64 * 64;
    EXPECT_LT(stats.blend_ops, 3 * upper / 4);
}

TEST(RasterizeTest, EstimateTracksActualWithinFactor)
{
    GaussianScene scene = test::blobScene(400, 17);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 64);
    RasterConfig cfg;
    uint64_t actual = 0, estimated = 0;
    Image image(frame.grid.tiles_x * 64, frame.grid.tiles_y * 64);
    for (int tile = 0; tile < frame.grid.tileCount(); ++tile) {
        auto entries = frame.tiles[tile];
        if (entries.empty())
            continue;
        std::sort(entries.begin(), entries.end(), entryDepthLess);
        actual += rasterizeTile(entries, frame, tile, cfg, &image).blend_ops;
        estimated += estimateTileBlendOps(entries, frame, tile, cfg);
    }
    ASSERT_GT(actual, 0u);
    double ratio = static_cast<double>(estimated) / actual;
    EXPECT_GT(ratio, 0.2) << "estimate too low";
    EXPECT_LT(ratio, 5.0) << "estimate too high";
}

// --- Subtile-blocked kernel vs scalar reference -------------------------
//
// The blocked kernel restructures the blend loop but must reproduce the
// reference bit for bit: identical pixels (frame hash) and identical
// RasterStats, field by field, on every input.

void
expectEqualStats(const RasterStats &a, const RasterStats &b)
{
    EXPECT_EQ(a.gaussians_in, b.gaussians_in);
    EXPECT_EQ(a.intersection_tests, b.intersection_tests);
    EXPECT_EQ(a.gaussians_blended, b.gaussians_blended);
    EXPECT_EQ(a.blend_ops, b.blend_ops);
    EXPECT_EQ(a.pixels_terminated, b.pixels_terminated);
}

/**
 * Rasterize every tile of @p frame into an exact-resolution image (which
 * makes the right/bottom tiles partial when the resolution is not a tile
 * multiple) and return the summed stats.
 */
RasterStats
renderAllTiles(const BinnedFrame &frame, const RasterConfig &cfg,
               Resolution res, Image &image)
{
    image = Image(res.width, res.height);
    RasterStats total;
    for (int tile = 0; tile < frame.grid.tileCount(); ++tile) {
        auto entries = frame.tiles[tile];
        if (entries.empty())
            continue;
        std::sort(entries.begin(), entries.end(), entryDepthLess);
        total += rasterizeTile(entries, frame, tile, cfg, &image);
    }
    return total;
}

void
expectBlockedMatchesReference(const GaussianScene &scene, Resolution res,
                              int tile_px, int subtile, bool fast_exp)
{
    Camera cam = test::frontCamera(5.0f, res);
    BinnedFrame frame = binFrame(scene, cam, tile_px);

    RasterConfig cfg;
    cfg.subtile_size = subtile;
    cfg.fast_exp = fast_exp;

    RasterConfig ref_cfg = cfg;
    ref_cfg.reference_path = true;

    Image blocked_img, ref_img;
    RasterStats blocked = renderAllTiles(frame, cfg, res, blocked_img);
    RasterStats ref = renderAllTiles(frame, ref_cfg, res, ref_img);

    ASSERT_GT(blocked.blend_ops, 0u);
    expectEqualStats(blocked, ref);
    EXPECT_EQ(blocked_img.contentHash(), ref_img.contentHash())
        << "tile=" << tile_px << " subtile=" << subtile
        << " fast_exp=" << fast_exp;
}

TEST(BlockedVsReference, BitIdenticalAcrossSubtileSizes)
{
    GaussianScene scene = test::blobScene(400, 17);
    for (int tile_px : {16, 64})
        for (int subtile : {4, 8, 16}) {
            const int per_side = tile_px / subtile;
            if (per_side * per_side > 64 || per_side < 1)
                continue; // over the 64-bit bitmap (4-px subtiles @ 64)
            expectBlockedMatchesReference(scene, test::smallRes(),
                                          tile_px, subtile, false);
        }
}

TEST(BlockedVsReference, PartialEdgeTilesBitIdentical)
{
    // A resolution that is a multiple of neither tile size: the right and
    // bottom tiles are partial, and with 8-px subtiles their edge blocks
    // are partial too (250 % 8 == 2, 187 % 8 == 3).
    const Resolution res{250, 187, "ragged"};
    GaussianScene scene = test::blobScene(300, 23);
    for (int tile_px : {16, 64})
        expectBlockedMatchesReference(scene, res, tile_px, 8, false);
}

TEST(BlockedVsReference, SaturatedEarlyExitBitIdentical)
{
    // An opaque wall saturates whole subtile blocks: the blocked kernel's
    // block-level retirement must not change any counter or pixel.
    GaussianScene scene;
    for (int i = 0; i < 50; ++i)
        scene.gaussians.push_back(test::makeGaussian(
            {0.0f, 0.0f, 0.1f * i}, 0.6f, 0.95f, {0.2f, 0.8f, 0.2f}));
    recomputeBounds(scene);
    Camera cam = test::frontCamera();
    BinnedFrame frame = binFrame(scene, cam, 64);

    RasterConfig cfg;
    RasterConfig ref_cfg;
    ref_cfg.reference_path = true;

    Image blocked_img, ref_img;
    RasterStats blocked =
        renderAllTiles(frame, cfg, test::smallRes(), blocked_img);
    RasterStats ref =
        renderAllTiles(frame, ref_cfg, test::smallRes(), ref_img);

    ASSERT_GT(blocked.pixels_terminated, 0u)
        << "scene must exercise the saturation path";
    expectEqualStats(blocked, ref);
    EXPECT_EQ(blocked_img.contentHash(), ref_img.contentHash());
}

TEST(BlockedVsReference, FullRendererAndNeoRendererMatch)
{
    // End to end through both renderers: the blocked default and the
    // reference path must produce bit-identical frames and raster
    // counters, including through reuse-and-update orderings.
    GaussianScene scene = test::tinySyntheticScene();
    Camera cam = test::frontCamera();

    PipelineOptions opts;
    PipelineOptions ref_opts;
    ref_opts.raster.reference_path = true;

    FrameStats stats, ref_stats;
    Renderer renderer(opts), reference(ref_opts);
    Image img = renderer.render(scene, cam, &stats);
    Image ref_img = reference.render(scene, cam, &ref_stats);
    EXPECT_EQ(img.contentHash(), ref_img.contentHash());
    expectEqualStats(stats.raster, ref_stats.raster);

    PipelineOptions neo_opts = NeoRenderer::neoDefaultOptions();
    PipelineOptions neo_ref_opts = neo_opts;
    neo_ref_opts.raster.reference_path = true;
    NeoRenderer neo(neo_opts), neo_ref(neo_ref_opts);
    for (uint64_t f = 0; f < 3; ++f) {
        NeoFrameReport rep, ref_rep;
        Image a = neo.renderFrame(scene, cam, f, &rep);
        Image b = neo_ref.renderFrame(scene, cam, f, &ref_rep);
        EXPECT_EQ(a.contentHash(), b.contentHash()) << "frame " << f;
        expectEqualStats(rep.frame.raster, ref_rep.frame.raster);
    }
}

// --- Deterministic polynomial fast-exp ----------------------------------

TEST(FastExpTest, AccuracyBoundAgainstStdExp)
{
    // Dense sweep over the whole falloff range: relative error must stay
    // inside the documented bound.
    float max_rel = 0.0f;
    for (double x = -87.0; x <= 0.0; x += 1.0 / 512.0) {
        const float xf = static_cast<float>(x);
        const float approx = fastExpNegative(xf);
        const float exact = std::exp(xf);
        const float rel = std::fabs(approx - exact) / exact;
        max_rel = std::max(max_rel, rel);
    }
    EXPECT_LE(max_rel, kFastExpMaxRelError);

    // Anchors: exact at 0, flushed to 0 below the underflow point.
    EXPECT_EQ(fastExpNegative(0.0f), 1.0f);
    EXPECT_EQ(fastExpNegative(-90.0f), 0.0f);
    EXPECT_EQ(fastExpNegative(-1000.0f), 0.0f);
}

TEST(FastExpTest, BlockedAndReferencePathsAgree)
{
    // With fast_exp on, pixel values change (within the error bound) but
    // the blocked/reference bit-equality contract must still hold: both
    // paths evaluate the same polynomial.
    GaussianScene scene = test::blobScene(300, 31);
    expectBlockedMatchesReference(scene, test::smallRes(), 16, 8, true);
    expectBlockedMatchesReference(scene, test::smallRes(), 64, 8, true);
}

TEST(FastExpTest, DeterministicAcrossThreadCounts)
{
    // fast_exp is a pure per-pixel function, so the threads∈{1,2,8}
    // bit-equality contract holds with it enabled.
    GaussianScene scene = test::tinySyntheticScene();
    Camera cam = test::frontCamera();

    auto hashAt = [&](int threads) {
        PipelineOptions opts;
        opts.threads = threads;
        opts.raster.fast_exp = true;
        Renderer renderer(opts);
        return renderer.render(scene, cam).contentHash();
    };
    const uint64_t serial = hashAt(1);
    EXPECT_EQ(serial, hashAt(2));
    EXPECT_EQ(serial, hashAt(8));
}

TEST(FastExpTest, LaneBitIdenticalToScalar)
{
    // The survivor exp batch evaluates fastExpNegativeLane (branchless,
    // auto-vectorizable); the scalar fastExpNegative is the reference.
    // The bit-equality contract requires them to agree on every input
    // the batch can see: the whole negative range, zero, the underflow
    // boundary, denormals, -inf and NaN (payload preserved).
    auto expectSame = [](float x) {
        const float a = fastExpNegative(x);
        const float b = fastExpNegativeLane(x);
        EXPECT_EQ(std::bit_cast<uint32_t>(a), std::bit_cast<uint32_t>(b))
            << "x=" << x << " scalar=" << a << " lane=" << b;
    };
    for (double x = -100.0; x <= 0.0; x += 1.0 / 1024.0)
        expectSame(static_cast<float>(x));
    expectSame(0.0f);
    expectSame(-0.0f);
    expectSame(-87.0f);
    expectSame(std::nextafter(-87.0f, 0.0f));
    expectSame(std::nextafter(-87.0f, -100.0f));
    expectSame(-1.0f); // the neutral pad lane
    expectSame(-1e30f);
    expectSame(-std::numeric_limits<float>::infinity());
    expectSame(-std::numeric_limits<float>::denorm_min());
    expectSame(std::numeric_limits<float>::quiet_NaN());
    // Random negative bit patterns (incl. NaNs and denormals): the two
    // forms must agree bit for bit everywhere below zero.
    Rng rng(2027);
    for (int i = 0; i < 200000; ++i) {
        const uint32_t bits =
            static_cast<uint32_t>(rng.next()) | 0x80000000u;
        expectSame(std::bit_cast<float>(bits));
    }
}

TEST(FastExpTest, LanePositiveInputsSaturateDefined)
{
    // Positive inputs sit outside the specified (x <= 0) domain; the
    // lane form must still be defined — it clamps them to +0 and
    // saturates to exp(0) == 1 instead of running the scalar form's
    // exponent arithmetic out of range.
    EXPECT_EQ(fastExpNegativeLane(1.0f), 1.0f);
    EXPECT_EQ(fastExpNegativeLane(100.0f), 1.0f);
    EXPECT_EQ(fastExpNegativeLane(1e30f), 1.0f);
    EXPECT_EQ(fastExpNegativeLane(std::numeric_limits<float>::infinity()),
              1.0f);
    EXPECT_EQ(fastExpNegativeLane(std::numeric_limits<float>::denorm_min()),
              1.0f);
}

// --- Survivor-batch edge cases ------------------------------------------
//
// The batched pipeline (compaction -> batch exp -> blend in survivor
// order) has boundary shapes the random scenes may not hit reliably:
// blocks where no pixel survives the cut, blocks where every pixel
// survives, blocks whose pixel count is not a multiple of the batch
// width (tail lanes), and blocks that saturate midway through a
// survivor list. Each must stay bit-identical to the reference in both
// fast_exp modes.

TEST(BlockedVsReference, AllSkipBlocksBitIdentical)
{
    // Near-threshold opacity: the cut ellipse is much smaller than the
    // 3-sigma circle the phase-1 bitmap tests, so many bucketed
    // Gaussian x block pairs compact to an empty survivor list.
    GaussianScene scene;
    Rng rng(11);
    for (int i = 0; i < 120; ++i)
        scene.gaussians.push_back(test::makeGaussian(
            {rng.uniform(-1.2f, 1.2f), rng.uniform(-0.9f, 0.9f),
             rng.uniform(-0.5f, 0.5f)},
            rng.uniform(0.05f, 0.2f), rng.uniform(0.005f, 0.02f),
            {0.9f, 0.4f, 0.1f}));
    recomputeBounds(scene);
    for (bool fast_exp : {false, true})
        expectBlockedMatchesReference(scene, test::smallRes(), 16, 8,
                                      fast_exp);
}

TEST(BlockedVsReference, AllPassBlocksBitIdentical)
{
    // Huge opaque splats cover whole tiles: every pixel of every block
    // survives, so the survivor list is the full block (and with an
    // 8-px subtile its length is already a batch-width multiple — the
    // padding loop must run zero times without disturbing anything).
    GaussianScene scene;
    for (int i = 0; i < 8; ++i)
        scene.gaussians.push_back(test::makeGaussian(
            {0.1f * i, -0.05f * i, 0.3f * i}, 1.5f, 0.9f,
            {0.2f, 0.5f, 0.9f}));
    recomputeBounds(scene);
    for (bool fast_exp : {false, true})
        expectBlockedMatchesReference(scene, test::smallRes(), 16, 8,
                                      fast_exp);
}

TEST(BlockedVsReference, TailLanesBitIdentical)
{
    // A resolution that is a multiple of neither the tile nor the
    // subtile size: the right/bottom edge blocks are 2x3 pixels, so the
    // survivor batch is shorter than kSurvivorExpBatch and the fast-exp
    // loop runs entirely on a padded tail.
    const Resolution res{250, 187, "ragged"};
    GaussianScene scene = test::blobScene(300, 23);
    for (bool fast_exp : {false, true})
        for (int tile_px : {16, 64})
            expectBlockedMatchesReference(scene, res, tile_px, 8,
                                          fast_exp);
}

TEST(BlockedVsReference, ExtremeAnisotropyBitIdentical)
{
    // Thin, hugely anisotropic splats at oblique rotations: the conic's
    // a*c - b*b cancels catastrophically in float, exactly the case the
    // extent prune's conditioning guard must detect (det below the
    // 2^-10 * a*c floor disables pruning for that Gaussian) so the
    // bit-equality contract survives ill-conditioned covariances.
    GaussianScene scene;
    Rng rng(77);
    for (int i = 0; i < 30; ++i) {
        Gaussian g = test::makeGaussian(
            {rng.uniform(-1.0f, 1.0f), rng.uniform(-0.8f, 0.8f),
             rng.uniform(-0.4f, 0.4f)},
            1.0f, rng.uniform(0.2f, 0.9f), {0.8f, 0.3f, 0.6f});
        g.scale = {rng.uniform(1.0f, 3.0f),
                   rng.uniform(0.001f, 0.004f),
                   rng.uniform(0.005f, 0.02f)};
        const float half = 0.5f * rng.uniform(0.2f, 1.4f);
        g.rotation = {std::cos(half), 0.0f, 0.0f, std::sin(half)};
        scene.gaussians.push_back(g);
    }
    recomputeBounds(scene);
    for (bool fast_exp : {false, true})
        expectBlockedMatchesReference(scene, test::smallRes(), 16, 8,
                                      fast_exp);
}

TEST(BlockedVsReference, SaturatedMidBatchBitIdentical)
{
    // An opaque wall saturates block pixels partway through the
    // front-to-back survivor lists: the per-block live counter must
    // retire the remaining Gaussians at exactly the same point as the
    // reference, in both exp modes.
    GaussianScene scene;
    for (int i = 0; i < 50; ++i)
        scene.gaussians.push_back(test::makeGaussian(
            {0.0f, 0.0f, 0.1f * i}, 0.6f, 0.95f, {0.2f, 0.8f, 0.2f}));
    recomputeBounds(scene);
    Camera cam = test::frontCamera();
    BinnedFrame frame = binFrame(scene, cam, 64);

    for (bool fast_exp : {false, true}) {
        RasterConfig cfg;
        cfg.fast_exp = fast_exp;
        RasterConfig ref_cfg = cfg;
        ref_cfg.reference_path = true;

        Image blocked_img, ref_img;
        RasterStats blocked =
            renderAllTiles(frame, cfg, test::smallRes(), blocked_img);
        RasterStats ref =
            renderAllTiles(frame, ref_cfg, test::smallRes(), ref_img);

        ASSERT_GT(blocked.pixels_terminated, 0u)
            << "scene must exercise the saturation path";
        expectEqualStats(blocked, ref);
        EXPECT_EQ(blocked_img.contentHash(), ref_img.contentHash())
            << "fast_exp=" << fast_exp;
    }
}

TEST(RasterizeTest, DryRunDoesOnlyItuWork)
{
    BinnedFrame frame =
        singleGaussianFrame({0.0f, 0.0f, 0.0f}, 0.25f, 0.9f,
                            {1.0f, 0.0f, 0.0f});
    const ProjectedGaussian &pg = frame.features[0];
    TileGrid grid = frame.grid;
    int tile = grid.tileIndex(static_cast<int>(pg.mean2d.x) / grid.tile_size,
                              static_cast<int>(pg.mean2d.y) / grid.tile_size);
    RasterStats stats = rasterizeTile(frame.tiles[tile], frame, tile,
                                      RasterConfig{}, nullptr);
    EXPECT_GT(stats.intersection_tests, 0u);
    EXPECT_EQ(stats.blend_ops, 0u);
}

} // namespace
} // namespace neo
