/**
 * @file
 * FrameArena and steady-state allocation tests. Two guarantees:
 *
 *  1. No capacity regrowth: once warm, the buffers retained by the
 *     steady-state frame loop (binned frame, scatter/raster scratch)
 *     never grow again when the workload is stable.
 *  2. Zero per-frame heap allocations on the binning/raster path,
 *     verified by counting every operator new call during the warm
 *     frames — at threads == 1 (serial inline path) and at threads == 2
 *     (pooled path: the preallocated job slot and fn-pointer dispatch of
 *     ThreadPool::run make parallel sections allocation-free too).
 *
 * This translation unit overrides the global allocation functions to
 * count calls; the override is per-executable, so it cannot leak into
 * other tests.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/frame_arena.h"
#include "common/image.h"
#include "core/neo_renderer.h"
#include "gs/pipeline.h"
#include "test_util.h"

namespace
{

std::atomic<uint64_t> g_news{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

// The replacement operator new above allocates with std::malloc, so the
// std::free in these deletes is the matching deallocator; GCC's
// -Wmismatched-new-delete cannot see through the override once
// sanitizer instrumentation (-fsanitize=thread) changes its inlining
// view, and flags the pairing as mismatched.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace neo
{
namespace
{

TEST(FrameArenaTest, BuffersPersistByKeyAndType)
{
    FrameArena arena;
    auto &a = arena.buffer<int>(1);
    a.assign(100, 7);
    auto &b = arena.buffer<float>(2);
    b.assign(10, 1.0f);
    EXPECT_EQ(arena.bufferCount(), 2u);

    // Same key -> same storage, contents and capacity intact.
    auto &a2 = arena.buffer<int>(1);
    EXPECT_EQ(&a, &a2);
    EXPECT_EQ(a2.size(), 100u);
    EXPECT_EQ(a2[99], 7);

    EXPECT_GE(arena.retainedBytes(),
              100 * sizeof(int) + 10 * sizeof(float));
    arena.release();
    EXPECT_EQ(arena.bufferCount(), 0u);
    EXPECT_EQ(arena.retainedBytes(), 0u);
}

TEST(FrameArenaTest, ClearNestedKeepsInnerCapacity)
{
    std::vector<std::vector<int>> vv;
    clearNested(vv, 4);
    vv[2].assign(500, 1);
    const size_t cap = vv[2].capacity();
    const int *data = vv[2].data();
    clearNested(vv, 4);
    EXPECT_TRUE(vv[2].empty());
    EXPECT_EQ(vv[2].capacity(), cap);
    EXPECT_EQ(vv[2].data(), data);
}

TEST(ArenaReuseTest, NoCapacityRegrowthAcrossTenFrames)
{
    // A static viewpoint makes every frame's working set identical, so
    // after the warm-up frames the retained capacity must never move.
    GaussianScene scene = test::tinySyntheticScene();
    Camera cam = test::frontCamera();
    for (int threads : {1, 2}) {
        PipelineOptions opts = NeoRenderer::neoDefaultOptions();
        opts.threads = threads;
        NeoRenderer renderer(opts);
        Image image;
        renderer.renderFrameInto(image, scene, cam, 0);
        renderer.renderFrameInto(image, scene, cam, 1);
        const size_t warm = renderer.retainedScratchBytes();
        EXPECT_GT(warm, 0u);
        for (uint64_t f = 2; f < 10; ++f) {
            renderer.renderFrameInto(image, scene, cam, f);
            EXPECT_EQ(renderer.retainedScratchBytes(), warm)
                << "threads=" << threads << " frame=" << f;
        }
    }
}

TEST(ArenaReuseTest, SteadyStateBinRasterPathIsAllocationFree)
{
    // The acceptance bar of the allocation-free frame loop: a warm
    // prepareInto + renderInto loop must perform zero heap allocations —
    // serially (threads == 1) and through the pool (threads == 2), whose
    // dispatch path reuses a preallocated job slot instead of allocating
    // a job record + std::function per parallel section.
    GaussianScene scene = test::tinySyntheticScene();
    Camera cam = test::frontCamera();
    for (int threads : {1, 2}) {
        PipelineOptions opts;
        opts.threads = threads;
        Renderer renderer(opts);
        BinnedFrame frame;
        FrameArena arena;
        Image image;
        const std::vector<std::vector<TileEntry>> no_orderings;

        auto renderOnce = [&] {
            renderer.prepareInto(frame, arena, scene, cam);
            renderer.renderInto(image, frame, no_orderings, nullptr,
                                &arena);
        };

        // Warm-up: spawn pool workers, grow every reused buffer.
        renderOnce();
        renderOnce();
        const uint64_t warm = g_news.load(std::memory_order_relaxed);
        for (int f = 0; f < 8; ++f)
            renderOnce();
        const uint64_t after = g_news.load(std::memory_order_relaxed);
        EXPECT_EQ(after - warm, 0u)
            << "threads=" << threads << ": steady-state frames allocated "
            << (after - warm) << " times";
    }
}

} // namespace
} // namespace neo
