/**
 * @file
 * Unit tests for the reuse-and-update sorter (Neo's core algorithm).
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/reuse_update.h"
#include "test_util.h"

namespace neo
{
namespace
{

BinnedFrame
frameAt(const GaussianScene &scene, float angle, int tile_px = 16)
{
    Camera cam(test::smallRes(), deg2rad(50.0f));
    cam.lookAt({5.0f * std::sin(angle), 0.5f, -5.0f * std::cos(angle)},
               {0.0f, 0.0f, 0.0f});
    return binFrame(scene, cam, tile_px);
}

TEST(ReuseUpdateTest, ColdStartFullySorts)
{
    GaussianScene scene = test::blobScene(300);
    ReuseUpdateSorter sorter;
    BinnedFrame frame = frameAt(scene, 0.0f);
    sorter.beginFrame(frame, 0);
    EXPECT_TRUE(sorter.lastReport().cold_start);
    for (int t = 0; t < frame.grid.tileCount(); ++t)
        EXPECT_TRUE(test::isSorted(sorter.tileOrder(t)));
}

TEST(ReuseUpdateTest, SecondFrameIsIncremental)
{
    GaussianScene scene = test::blobScene(300);
    ReuseUpdateSorter sorter;
    sorter.beginFrame(frameAt(scene, 0.0f), 0);
    sorter.takeStats();
    BinnedFrame f1 = frameAt(scene, 0.01f);
    sorter.beginFrame(f1, 1);
    EXPECT_FALSE(sorter.lastReport().cold_start);
    // Incremental: no global merge passes (Dynamic Partial Sorting only).
    EXPECT_EQ(sorter.stats().global_merge_passes, 0u);
}

TEST(ReuseUpdateTest, MembershipConvergesToCurrentFrame)
{
    // After the merge at frame T the table holds membership(T) plus
    // at most the entries that left between T-1 and T (marked invalid).
    GaussianScene scene = test::blobScene(400);
    ReuseUpdateSorter sorter;
    sorter.beginFrame(frameAt(scene, 0.0f), 0);
    BinnedFrame f1 = frameAt(scene, 0.02f);
    sorter.beginFrame(f1, 1);

    for (int t = 0; t < f1.grid.tileCount(); ++t) {
        std::unordered_set<GaussianId> current;
        for (const auto &e : f1.tiles[t])
            current.insert(e.id);
        size_t valid_entries = 0;
        for (const auto &e : sorter.tileOrder(t)) {
            if (e.valid) {
                ++valid_entries;
                EXPECT_TRUE(current.count(e.id))
                    << "valid entry not in current membership, tile " << t;
            }
        }
        // Every current member must be present (inserted or retained).
        EXPECT_EQ(valid_entries, current.size()) << "tile " << t;
    }
}

TEST(ReuseUpdateTest, DepthsAreRefreshedAfterFrame)
{
    GaussianScene scene = test::blobScene(300);
    ReuseUpdateSorter sorter;
    BinnedFrame f0 = frameAt(scene, 0.0f);
    sorter.beginFrame(f0, 0);
    BinnedFrame f1 = frameAt(scene, 0.05f);
    sorter.beginFrame(f1, 1);
    // After frame 1's deferred update, stored depths equal frame 1 depths.
    for (int t = 0; t < f1.grid.tileCount(); ++t) {
        for (const auto &e : sorter.tables().table(t)) {
            if (f1.isVisible(e.id)) {
                EXPECT_FLOAT_EQ(e.depth, f1.featureOf(e.id).depth);
            }
        }
    }
}

TEST(ReuseUpdateTest, OrderingNearlySortedUnderSlowMotion)
{
    GaussianScene scene = test::blobScene(500);
    ReuseUpdateSorter sorter;
    for (int f = 0; f < 6; ++f) {
        BinnedFrame frame = frameAt(scene, 0.004f * f);
        sorter.beginFrame(frame, f);
        if (f == 0)
            continue;
        // Orderings come from one-frame-stale depths; under slow motion
        // they stay close to sorted.
        double worst = 1.0;
        for (int t = 0; t < frame.grid.tileCount(); ++t) {
            const auto &order = sorter.tileOrder(t);
            if (order.size() > 4) {
                worst = std::min(worst, sortedFraction(order));
            }
        }
        EXPECT_GT(worst, 0.85) << "frame " << f;
    }
}

TEST(ReuseUpdateTest, OutgoingMarkedThenDeletedNextFrame)
{
    GaussianScene scene = test::blobScene(400);
    ReuseUpdateSorter sorter;
    sorter.beginFrame(frameAt(scene, 0.0f), 0);
    BinnedFrame f1 = frameAt(scene, 0.06f);
    sorter.beginFrame(f1, 1);
    uint64_t marked = sorter.lastReport().outgoing_marked;
    EXPECT_GT(marked, 0u) << "motion should push some Gaussians out";

    BinnedFrame f2 = frameAt(scene, 0.12f);
    sorter.beginFrame(f2, 2);
    EXPECT_GT(sorter.lastReport().deleted, 0u)
        << "previously marked entries must be filtered at the next merge";
}

TEST(ReuseUpdateTest, IncomingCountsMatchDelta)
{
    GaussianScene scene = test::blobScene(400);
    ReuseUpdateSorter sorter;
    sorter.beginFrame(frameAt(scene, 0.0f), 0);
    sorter.beginFrame(frameAt(scene, 0.05f), 1);
    EXPECT_EQ(sorter.lastReport().incoming,
              sorter.lastDelta().incoming_total);
}

TEST(ReuseUpdateTest, ResetForcesColdStart)
{
    GaussianScene scene = test::blobScene(200);
    ReuseUpdateSorter sorter;
    sorter.beginFrame(frameAt(scene, 0.0f), 0);
    sorter.beginFrame(frameAt(scene, 0.01f), 1);
    EXPECT_FALSE(sorter.lastReport().cold_start);
    sorter.reset();
    sorter.beginFrame(frameAt(scene, 0.02f), 2);
    EXPECT_TRUE(sorter.lastReport().cold_start);
}

TEST(ReuseUpdateTest, ResolutionChangeForcesColdStart)
{
    GaussianScene scene = test::blobScene(200);
    ReuseUpdateSorter sorter;
    sorter.beginFrame(frameAt(scene, 0.0f, 16), 0);
    // Different tile size -> different tile count -> cold start.
    sorter.beginFrame(frameAt(scene, 0.01f, 32), 1);
    EXPECT_TRUE(sorter.lastReport().cold_start);
}

TEST(ReuseUpdateTest, StationaryCameraCostsAlmostNothing)
{
    GaussianScene scene = test::blobScene(400);
    ReuseUpdateSorter sorter;
    BinnedFrame frame = frameAt(scene, 0.0f);
    sorter.beginFrame(frame, 0);
    sorter.takeStats();
    sorter.beginFrame(frame, 1);
    const ReuseUpdateReport &r = sorter.lastReport();
    EXPECT_EQ(r.incoming, 0u);
    EXPECT_EQ(r.outgoing_marked, 0u);
    // Work is exactly one DPS pass over the tables, no more.
    EXPECT_EQ(sorter.stats().entries_read, sorter.tables().totalEntries());
}

TEST(ReuseUpdateTest, ReportTableEntriesMatchesTables)
{
    GaussianScene scene = test::blobScene(300);
    ReuseUpdateSorter sorter;
    sorter.beginFrame(frameAt(scene, 0.0f), 0);
    EXPECT_EQ(sorter.lastReport().table_entries,
              sorter.tables().totalEntries());
}

TEST(ReuseUpdateTest, NameAndConfigExposed)
{
    DynamicPartialConfig cfg;
    cfg.chunk = 128;
    ReuseUpdateSorter sorter(cfg);
    EXPECT_EQ(sorter.name(), "reuse-update");
    EXPECT_EQ(sorter.config().chunk, 128u);
}

} // namespace
} // namespace neo
