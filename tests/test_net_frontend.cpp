/**
 * @file
 * Loopback chaos suite for the socket front end: end-to-end served
 * hashes bit-identical to solo renders at thread counts {1, 2, 8},
 * reject-at-accept over max_connections, the typed-error answers for
 * every malformed-traffic class, error-budget closes, slow-loris and
 * idle timeouts, forced short writes on the reply path, graceful drain
 * — and the isolation contract: deterministic network faults (torn
 * frames, garbage, abrupt disconnects, stalls) on victim connections
 * never perturb a healthy connection's session, whose served frame
 * hashes stay bit-identical to a solo renderer throughout.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/faultinject.h"
#include "common/integrity.h"
#include "serve/net/client.h"
#include "serve/net/frontend.h"
#include "serve/server.h"
#include "scene/trajectory.h"
#include "test_util.h"

namespace neo::serve::net::test
{
namespace
{

using neo::test::sanitizerTimeScale;
using neo::test::smallRes;
using neo::test::tinySyntheticScene;

std::shared_ptr<const GaussianScene>
sharedScene()
{
    static const auto scene = std::make_shared<const GaussianScene>(
        tinySyntheticScene(1500, 77));
    return scene;
}

/** Hermetic server config (mirrors test_server.cpp). */
ServerConfig
baseConfig(int threads = 1)
{
    ServerConfig cfg;
    cfg.pipeline = NeoRenderer::neoDefaultOptions();
    cfg.pipeline.threads = threads;
    cfg.pipeline.integrity = IntegrityMode::Off;
    cfg.watchdog_floor_ms = 250.0 * sanitizerTimeScale();
    return cfg;
}

/** Net config tuned for test latency: fast poll, timeouts scaled for
    sanitizer builds, generous where a test is not probing them. */
NetConfig
fastNetConfig()
{
    NetConfig cfg;
    cfg.poll_interval_ms = 5;
    cfg.idle_timeout_ms = 60000.0 * sanitizerTimeScale();
    cfg.progress_timeout_ms = 60000.0 * sanitizerTimeScale();
    cfg.drain_deadline_ms = 4000.0 * sanitizerTimeScale();
    return cfg;
}

double
recvTimeout()
{
    return 20000.0 * sanitizerTimeScale();
}

/** Server + front end + loop thread, torn down in order. */
class Harness
{
  public:
    explicit Harness(int threads = 1, NetConfig ncfg = fastNetConfig())
        : server_(sharedScene(), baseConfig(threads)),
          frontend_(server_, ncfg)
    {
        started_ = frontend_.start();
        if (started_)
            loop_ = std::thread([this] { frontend_.run(); });
    }

    ~Harness() { stop(); }

    bool started() const { return started_; }
    int port() const { return frontend_.port(); }
    NeoServer &server() { return server_; }
    NetFrontend &frontend() { return frontend_; }

    /** Hard-stop the loop (counters safe to read afterwards). */
    void stop()
    {
        if (loop_.joinable()) {
            frontend_.requestStop();
            loop_.join();
        }
    }

    /** Wait for run() to return on its own (drain completion). */
    void joinAfterDrain()
    {
        if (loop_.joinable())
            loop_.join();
    }

  private:
    NeoServer server_;
    NetFrontend frontend_;
    std::thread loop_;
    bool started_ = false;
};

std::vector<uint64_t>
soloHashes(float speed, int frames)
{
    const Trajectory traj(TrajectoryKind::Orbit, *sharedScene(), speed);
    PipelineOptions opts = baseConfig(1).pipeline;
    NeoRenderer solo(opts);
    Image img;
    std::vector<uint64_t> hashes;
    for (int f = 0; f < frames; ++f) {
        solo.renderFrameInto(img, *sharedScene(),
                             traj.cameraAt(f, smallRes()),
                             static_cast<uint64_t>(f));
        hashes.push_back(img.contentHash());
    }
    return hashes;
}

OpenSessionReq
openReq(float speed = 1.0f)
{
    OpenSessionReq req;
    req.trajectory_kind = 0; // orbit
    req.speed = speed;
    req.width = static_cast<uint16_t>(smallRes().width);
    req.height = static_cast<uint16_t>(smallRes().height);
    return req;
}

/** Open a session over the wire; returns its id (asserts on failure). */
uint32_t
openOrDie(NetClient &client, float speed = 1.0f)
{
    OpenOkReply ok;
    EXPECT_TRUE(client.openSession(openReq(speed), &ok, recvTimeout()))
        << "open failed: " << wireErrorName(client.lastError());
    return ok.session_id;
}

std::vector<uint8_t>
submitBytes(uint32_t session, uint64_t frame)
{
    std::vector<uint8_t> bytes;
    SubmitFrameReq req;
    req.session_id = session;
    req.frame_index = frame;
    encodeSubmitFrame(bytes, req);
    return bytes;
}

/** Deliver @p buf through the deterministic fault plan. */
void
sendMangled(NetClient &client, const std::vector<uint8_t> &buf,
            const faultinject::NetFaultPlan &plan)
{
    using faultinject::NetFault;
    switch (plan.kind) {
    case NetFault::TornWrite: {
        size_t prev = 0;
        for (size_t split : plan.splits) {
            (void)client.sendRaw(buf.data() + prev, split - prev);
            prev = split;
        }
        (void)client.sendRaw(buf.data() + prev, buf.size() - prev);
        break;
    }
    case NetFault::Garbage:
        (void)client.sendRaw(buf.data(), plan.garbage_offset);
        (void)client.sendRaw(plan.garbage.data(), plan.garbage.size());
        (void)client.sendRaw(buf.data() + plan.garbage_offset,
                             buf.size() - plan.garbage_offset);
        break;
    case NetFault::Disconnect:
        (void)client.sendRaw(buf.data(), plan.prefix);
        client.close();
        break;
    case NetFault::Stall:
        // Write the prefix, then hold the remainder forever.
        (void)client.sendRaw(buf.data(), plan.prefix);
        break;
    case NetFault::None:
        (void)client.sendRaw(buf);
        break;
    }
}

// --- End to end --------------------------------------------------------

TEST(NetFrontendTest, ServedHashesOverTheWireMatchSoloRenderer)
{
    const int frames = 4;
    const std::vector<uint64_t> solo = soloHashes(1.0f, frames);
    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        Harness h(threads);
        ASSERT_TRUE(h.started());

        NetClient client;
        ASSERT_TRUE(client.connect(h.port()));
        const uint32_t sid = openOrDie(client);

        for (int f = 0; f < frames; ++f) {
            SubmitFrameReq req;
            req.session_id = sid;
            req.frame_index = static_cast<uint64_t>(f);
            SubmitReply reply;
            ASSERT_TRUE(client.submitFrame(req, &reply, recvTimeout()))
                << "frame " << f;
            EXPECT_TRUE(reply.accepted);
            ASSERT_TRUE(reply.stepped);
            ASSERT_TRUE(reply.rendered);
            EXPECT_EQ(reply.request, static_cast<uint64_t>(f));
            EXPECT_EQ(reply.frame_hash, solo[static_cast<size_t>(f)])
                << "frame " << f;
            EXPECT_EQ(reply.resolution_drop, 0);
        }

        StatsReply stats;
        ASSERT_TRUE(client.stats(sid, &stats, recvTimeout()));
        EXPECT_EQ(stats.stats.rendered, static_cast<uint64_t>(frames));
        EXPECT_EQ(stats.queue_depth, 0u)
            << "step-on-submit keeps the queue empty";

        EXPECT_TRUE(client.closeSession(sid, recvTimeout()));
        EXPECT_EQ(h.server().liveSessions(), 0u);
    }
}

// --- Accept-path defense -----------------------------------------------

TEST(NetFrontendTest, RejectsAtAcceptBeyondMaxConnections)
{
    NetConfig ncfg = fastNetConfig();
    ncfg.max_connections = 2;
    Harness h(1, ncfg);
    ASSERT_TRUE(h.started());

    NetClient a, b;
    ASSERT_TRUE(a.connect(h.port()));
    ASSERT_TRUE(b.connect(h.port()));
    // Round-trips prove both connections are accepted, not just queued.
    openOrDie(a, 1.0f);
    openOrDie(b, 1.5f);

    NetClient c;
    ASSERT_TRUE(c.connect(h.port()));
    DecodedFrame frame;
    ASSERT_TRUE(c.recvFrame(&frame, recvTimeout()));
    ASSERT_EQ(frame.type, MsgType::Error);
    ErrorReply err;
    ASSERT_TRUE(decodeError(frame.payload, &err));
    EXPECT_EQ(err.code, static_cast<uint16_t>(WireError::ServerFull));
    // And the socket is closed right after the error frame.
    EXPECT_FALSE(c.recvFrame(&frame, recvTimeout()));

    h.stop();
    EXPECT_EQ(h.frontend().counters().rejected_at_accept, 1u);
}

// --- Malformed traffic -------------------------------------------------

TEST(NetFrontendTest, MalformedFramesAnsweredWithTypedErrors)
{
    Harness h;
    ASSERT_TRUE(h.started());
    NetClient client;
    ASSERT_TRUE(client.connect(h.port()));

    auto expectError = [&](WireError want) {
        DecodedFrame frame;
        ASSERT_TRUE(client.recvFrame(&frame, recvTimeout()));
        ASSERT_EQ(frame.type, MsgType::Error);
        ErrorReply err;
        ASSERT_TRUE(decodeError(frame.payload, &err));
        EXPECT_EQ(err.code, static_cast<uint16_t>(want))
            << "got " << wireErrorName(static_cast<WireError>(err.code));
    };

    // Garbage with no magic anywhere: one bad-magic error, then resync.
    std::vector<uint8_t> junk(24, 0x6A);
    ASSERT_TRUE(client.sendRaw(junk));
    expectError(WireError::BadMagic);

    // Valid frame with one payload bit flipped: crc-mismatch.
    std::vector<uint8_t> flipped = submitBytes(0, 1);
    flipped[kWireHeaderSize] ^= 0x01;
    ASSERT_TRUE(client.sendRaw(flipped));
    expectError(WireError::CrcMismatch);

    // Well-framed unknown type.
    std::vector<uint8_t> unknown;
    encodeFrame(unknown, static_cast<MsgType>(0x42), nullptr, 0);
    ASSERT_TRUE(client.sendRaw(unknown));
    expectError(WireError::UnknownType);

    // Parsable type, hostile payload (trajectory kind 9).
    std::vector<uint8_t> bad;
    OpenSessionReq req = openReq();
    req.trajectory_kind = 9;
    encodeOpenSession(bad, req);
    ASSERT_TRUE(client.sendRaw(bad));
    expectError(WireError::BadPayload);

    // Submit into a session this connection never opened.
    ASSERT_TRUE(client.sendRaw(submitBytes(31337, 0)));
    expectError(WireError::UnknownSession);

    // After all that abuse (still under the budget), a valid request
    // on the same connection is served normally.
    openOrDie(client);
}

TEST(NetFrontendTest, ErrorBudgetExhaustionClosesTheConnection)
{
    NetConfig ncfg = fastNetConfig();
    ncfg.error_budget = 3;
    Harness h(1, ncfg);
    ASSERT_TRUE(h.started());

    NetClient abuser;
    ASSERT_TRUE(abuser.connect(h.port()));
    std::vector<uint8_t> flipped = submitBytes(0, 1);
    flipped[kWireHeaderSize] ^= 0x01;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(abuser.sendRaw(flipped));

    // Read until the connection dies; the final frame before the close
    // must be the error-budget notice.
    uint16_t last_code = 0;
    DecodedFrame frame;
    while (abuser.recvFrame(&frame, recvTimeout())) {
        if (frame.type == MsgType::Error) {
            ErrorReply err;
            ASSERT_TRUE(decodeError(frame.payload, &err));
            last_code = err.code;
        }
    }
    EXPECT_EQ(last_code,
              static_cast<uint16_t>(WireError::ErrorBudget));

    h.stop();
    EXPECT_GE(h.frontend().counters().budget_closes, 1u);
}

// --- Timeouts ----------------------------------------------------------

TEST(NetFrontendTest, SlowLorisPartialFrameIsClosedOnProgressTimeout)
{
    NetConfig ncfg = fastNetConfig();
    ncfg.progress_timeout_ms = 200.0 * sanitizerTimeScale();
    Harness h(1, ncfg);
    ASSERT_TRUE(h.started());

    NetClient loris;
    ASSERT_TRUE(loris.connect(h.port()));
    // A plausible frame start that never completes.
    const std::vector<uint8_t> full = submitBytes(1, 2);
    ASSERT_TRUE(loris.sendRaw(full.data(), 9));

    // A healthy sibling keeps being served while the loris hangs.
    NetClient healthy;
    ASSERT_TRUE(healthy.connect(h.port()));
    const uint32_t sid = openOrDie(healthy);
    SubmitFrameReq req;
    req.session_id = sid;
    req.frame_index = 0;
    SubmitReply reply;
    ASSERT_TRUE(healthy.submitFrame(req, &reply, recvTimeout()));
    EXPECT_TRUE(reply.rendered);

    // The loris connection is closed without ever getting a response.
    DecodedFrame frame;
    EXPECT_FALSE(loris.recvFrame(&frame, recvTimeout()));

    h.stop();
    EXPECT_GE(h.frontend().counters().progress_timeouts, 1u);
}

TEST(NetFrontendTest, IdleConnectionIsClosedOnIdleTimeout)
{
    NetConfig ncfg = fastNetConfig();
    ncfg.idle_timeout_ms = 200.0 * sanitizerTimeScale();
    Harness h(1, ncfg);
    ASSERT_TRUE(h.started());

    NetClient idle;
    ASSERT_TRUE(idle.connect(h.port()));
    DecodedFrame frame;
    EXPECT_FALSE(idle.recvFrame(&frame, recvTimeout()));

    h.stop();
    EXPECT_GE(h.frontend().counters().idle_timeouts, 1u);
}

// --- Forced short writes -----------------------------------------------

TEST(NetFrontendTest, RepliesSurviveForcedShortWrites)
{
    Harness h;
    ASSERT_TRUE(h.started());
    NetClient client;
    ASSERT_TRUE(client.connect(h.port()));
    const uint32_t sid = openOrDie(client);

    const uint64_t before = faultinject::shortWriteCount();
    faultinject::armShortWrite("net.send", -1, 4242, 4);
    for (uint64_t f = 0; f < 3; ++f) {
        SubmitFrameReq req;
        req.session_id = sid;
        req.frame_index = f;
        SubmitReply reply;
        ASSERT_TRUE(client.submitFrame(req, &reply, recvTimeout()))
            << "frame " << f;
        EXPECT_TRUE(reply.rendered);
    }
    faultinject::disarmShortWrite();
    EXPECT_GT(faultinject::shortWriteCount(), before)
        << "the short-write injection point must actually have fired";
}

// --- The chaos isolation contract --------------------------------------

TEST(NetFrontendChaosTest, VictimNetworkFaultsNeverPerturbHealthyConns)
{
    using faultinject::NetFault;
    const int frames = 4;
    const std::vector<float> healthy_speeds = {1.0f, 1.5f};
    std::vector<std::vector<uint64_t>> solo;
    for (float speed : healthy_speeds)
        solo.push_back(soloHashes(speed, frames));

    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        NetConfig ncfg = fastNetConfig();
        // Stalled victims should die during the test, not linger.
        ncfg.progress_timeout_ms = 500.0 * sanitizerTimeScale();
        Harness h(threads, ncfg);
        ASSERT_TRUE(h.started());

        // Healthy connections, one session each.
        std::vector<std::unique_ptr<NetClient>> healthy;
        std::vector<uint32_t> healthy_sids;
        for (float speed : healthy_speeds) {
            auto c = std::make_unique<NetClient>();
            ASSERT_TRUE(c->connect(h.port()));
            healthy_sids.push_back(openOrDie(*c, speed));
            healthy.push_back(std::move(c));
        }

        // Victim connections, each with a valid session of its own and
        // a deterministic network-fault personality.
        const std::vector<NetFault> personalities = {
            NetFault::TornWrite, NetFault::Garbage,
            NetFault::Disconnect, NetFault::Stall};
        std::vector<std::unique_ptr<NetClient>> victims;
        std::vector<uint32_t> victim_sids;
        for (size_t v = 0; v < personalities.size(); ++v) {
            auto c = std::make_unique<NetClient>();
            ASSERT_TRUE(c->connect(h.port()));
            victim_sids.push_back(openOrDie(*c, 2.0f + 0.25f * v));
            victims.push_back(std::move(c));
        }

        for (int f = 0; f < frames; ++f) {
            // Chaos first: every victim fires its fault for this round
            // before the healthy submissions go out, so the mangled
            // bytes are in flight while healthy frames render.
            for (size_t v = 0; v < victims.size(); ++v) {
                NetClient &victim = *victims[v];
                const NetFault kind = personalities[v];
                if (kind == NetFault::Disconnect && !victim.connected()) {
                    // Reconnect each round: a fresh session, another
                    // abrupt mid-frame disconnect.
                    if (!victim.connect(h.port()))
                        continue;
                    OpenOkReply ok;
                    if (!victim.openSession(openReq(3.0f), &ok,
                                            recvTimeout()))
                        continue;
                    victim_sids[v] = ok.session_id;
                }
                if (kind == NetFault::Stall && f > 0)
                    continue; // the stall holds; nothing more to send
                const std::vector<uint8_t> buf = submitBytes(
                    victim_sids[v], static_cast<uint64_t>(f));
                const faultinject::NetFaultPlan plan =
                    faultinject::planNetFault(
                        kind,
                        0x9E0 + static_cast<uint64_t>(f) * 13 + v,
                        buf.size(), buf.size());
                sendMangled(victim, buf, plan);
            }

            // Healthy connections must serve bit-identical frames.
            for (size_t i = 0; i < healthy.size(); ++i) {
                SubmitFrameReq req;
                req.session_id = healthy_sids[i];
                req.frame_index = static_cast<uint64_t>(f);
                SubmitReply reply;
                ASSERT_TRUE(healthy[i]->submitFrame(req, &reply,
                                                    recvTimeout()))
                    << "healthy " << i << " frame " << f << ": "
                    << wireErrorName(healthy[i]->lastError());
                ASSERT_TRUE(reply.rendered);
                EXPECT_EQ(reply.frame_hash,
                          solo[i][static_cast<size_t>(f)])
                    << "healthy " << i << " frame " << f
                    << " diverged from solo under network chaos";
                EXPECT_EQ(reply.resolution_drop, 0);
                EXPECT_EQ(reply.state,
                          static_cast<uint8_t>(SessionState::Healthy));
            }
        }

        // Healthy sessions saw exactly their own traffic.
        for (size_t i = 0; i < healthy.size(); ++i) {
            StatsReply stats;
            ASSERT_TRUE(healthy[i]->stats(healthy_sids[i], &stats,
                                          recvTimeout()));
            EXPECT_EQ(stats.stats.rendered,
                      static_cast<uint64_t>(frames));
            EXPECT_EQ(stats.stats.faults, 0u);
            EXPECT_EQ(stats.state,
                      static_cast<uint8_t>(SessionState::Healthy));
        }

        // Graceful drain: requested over the wire, acked, and completed
        // within the deadline with the loop thread exiting on its own.
        ASSERT_TRUE(healthy[0]->shutdownServer(recvTimeout()));
        h.joinAfterDrain();
        EXPECT_TRUE(h.frontend().drained());
        EXPECT_EQ(h.frontend().liveConns(), 0u);
        EXPECT_EQ(h.server().liveSessions(), 0u)
            << "drain must close the sessions of dropped connections";
    }
}

// --- Graceful drain ----------------------------------------------------

TEST(NetFrontendTest, GracefulDrainAcksFlushesAndCompletes)
{
    Harness h;
    ASSERT_TRUE(h.started());
    NetClient client;
    ASSERT_TRUE(client.connect(h.port()));
    const uint32_t sid = openOrDie(client);

    SubmitFrameReq req;
    req.session_id = sid;
    req.frame_index = 0;
    SubmitReply reply;
    ASSERT_TRUE(client.submitFrame(req, &reply, recvTimeout()));
    ASSERT_TRUE(reply.rendered);

    // The ack is flushed before the close — shutdownServer() reading it
    // is the in-flight-responses-delivered assertion.
    ASSERT_TRUE(client.shutdownServer(recvTimeout()));
    h.joinAfterDrain();
    EXPECT_TRUE(h.frontend().drained());
    EXPECT_EQ(h.server().liveSessions(), 0u);

    // And the connection is actually gone.
    DecodedFrame frame;
    EXPECT_FALSE(client.recvFrame(&frame, recvTimeout()));
}

// --- Env knobs ---------------------------------------------------------

TEST(NetConfigEnvTest, ValidatedKnobsApplyAndMalformedFallBack)
{
    env::resetWarnings();
    setenv("NEO_SERVER_NET_MAX_CONNS", "7", 1);
    setenv("NEO_SERVER_NET_ERROR_BUDGET", "nonsense", 1);
    setenv("NEO_SERVER_NET_MAX_PAYLOAD", "99999999", 1); // above cap
    setenv("NEO_SERVER_NET_IDLE_TIMEOUT_MS", "1234", 1);
    const NetConfig cfg = netConfigFromEnv();
    unsetenv("NEO_SERVER_NET_MAX_CONNS");
    unsetenv("NEO_SERVER_NET_ERROR_BUDGET");
    unsetenv("NEO_SERVER_NET_MAX_PAYLOAD");
    unsetenv("NEO_SERVER_NET_IDLE_TIMEOUT_MS");

    EXPECT_EQ(cfg.max_connections, 7);
    EXPECT_EQ(cfg.error_budget, NetConfig{}.error_budget)
        << "malformed value keeps the default";
    EXPECT_EQ(cfg.max_payload, NetConfig{}.max_payload)
        << "out-of-range value keeps the default";
    EXPECT_DOUBLE_EQ(cfg.idle_timeout_ms, 1234.0);
}

} // namespace
} // namespace neo::serve::net::test
