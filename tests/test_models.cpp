/**
 * @file
 * Unit tests for the system performance models (GPU / GSCore / Neo) and
 * the shared harness. The tests assert the *relationships* the paper's
 * evaluation depends on: sorting dominates baseline traffic, Neo cuts
 * traffic and wins more at higher resolution, bandwidth scaling matters
 * more than core scaling for GSCore at QHD, and the ablation flags cost
 * what §4.4/Fig. 18 say they cost.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/perf_harness.h"

namespace neo
{
namespace
{

/** Synthetic workload roughly matching a mid-size scene at a resolution. */
FrameWorkload
syntheticWorkload(Resolution res, int tile_px, double scale = 1.0)
{
    FrameWorkload w;
    w.res = res;
    w.tile_size = tile_px;
    w.scene_gaussians = static_cast<uint64_t>(600000 * scale);
    w.visible_gaussians = static_cast<uint64_t>(350000 * scale);
    // Duplication factor grows with resolution and shrinks with tile size.
    double dup = (tile_px == 16 ? 6.0 : 1.8) *
                 (static_cast<double>(res.pixels()) / kResHD.pixels());
    w.instances =
        static_cast<uint64_t>(w.visible_gaussians * std::max(dup, 1.0));
    w.incoming_instances = w.instances / 25; // ~4% churn
    w.outgoing_instances = w.instances / 25;
    w.mean_tile_retention = 0.92;
    w.blend_ops = static_cast<uint64_t>(res.pixels() * 30.0);
    w.intersection_tests = w.instances * 16;
    int tiles = ((res.width + tile_px - 1) / tile_px) *
                ((res.height + tile_px - 1) / tile_px);
    w.tile_lengths.assign(tiles,
                          static_cast<uint32_t>(w.instances / tiles));
    return w;
}

TEST(GpuModelTest, SortingDominatesTraffic)
{
    GpuModel gpu;
    FrameSim sim = gpu.simulateFrame(syntheticWorkload(kResQHD, 16));
    EXPECT_GT(sim.traffic.fraction(Stage::Sorting), 0.7)
        << "paper reports ~91% at QHD";
    EXPECT_GT(sim.latency_s, 0.0);
}

TEST(GpuModelTest, NeoSwCutsSortTrafficButNotLatency)
{
    GpuConfig base_cfg;
    GpuConfig sw_cfg;
    sw_cfg.neo_sw = true;
    GpuModel base(base_cfg), neosw(sw_cfg);
    FrameWorkload w = syntheticWorkload(kResQHD, 16);
    FrameSim a = base.simulateFrame(w);
    FrameSim b = neosw.simulateFrame(w);
    // Fig. 10: large traffic cut...
    EXPECT_LT(b.traffic.sorting_bytes, 0.35 * a.traffic.sorting_bytes);
    // ...but modest end-to-end speedup (rasterization dominates).
    double speedup = a.latency_s / b.latency_s;
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 2.5);
}

TEST(GscoreModelTest, SortingIsLargestStage)
{
    GscoreModel gscore;
    FrameSim sim = gscore.simulateFrame(syntheticWorkload(kResQHD, 16));
    EXPECT_GT(sim.traffic.fraction(Stage::Sorting), 0.45)
        << "paper reports ~69% at QHD";
    EXPECT_GT(sim.traffic.fraction(Stage::Sorting),
              sim.traffic.fraction(Stage::FeatureExtraction));
    EXPECT_GT(sim.traffic.fraction(Stage::Sorting),
              sim.traffic.fraction(Stage::Rasterization));
}

TEST(GscoreModelTest, FpsDropsWithResolution)
{
    GscoreModel gscore;
    double fps_hd =
        gscore.simulateFrame(syntheticWorkload(kResHD, 16)).fps();
    double fps_fhd =
        gscore.simulateFrame(syntheticWorkload(kResFHD, 16)).fps();
    double fps_qhd =
        gscore.simulateFrame(syntheticWorkload(kResQHD, 16)).fps();
    EXPECT_GT(fps_hd, fps_fhd);
    EXPECT_GT(fps_fhd, fps_qhd);
}

TEST(GscoreModelTest, BandwidthHelpsMoreThanCoresAtQhd)
{
    // Fig. 4: at QHD/51.2 GB/s, 4 -> 16 cores gains little; 51.2 -> 204.8
    // GB/s at 16 cores gains a lot.
    FrameWorkload w = syntheticWorkload(kResQHD, 16);

    GscoreConfig c4;
    c4.cores = 4;
    GscoreConfig c16;
    c16.cores = 16;
    GscoreConfig c16bw;
    c16bw.cores = 16;
    c16bw.dram.bandwidth_gbps = 204.8;

    double fps4 = GscoreModel(c4).simulateFrame(w).fps();
    double fps16 = GscoreModel(c16).simulateFrame(w).fps();
    double fps16bw = GscoreModel(c16bw).simulateFrame(w).fps();

    double core_gain = fps16 / fps4;
    double bw_gain = fps16bw / fps16;
    EXPECT_LT(core_gain, 1.6) << "core scaling is bandwidth-capped";
    EXPECT_GT(bw_gain, 2.0) << "bandwidth is the real bottleneck";
}

TEST(NeoModelTest, TrafficFarBelowGscore)
{
    FrameWorkload w16 = syntheticWorkload(kResQHD, 16);
    FrameWorkload w64 = syntheticWorkload(kResQHD, 64);
    double gscore_gb =
        GscoreModel().simulateFrame(w16).traffic.totalGB();
    double neo_gb = NeoModel().simulateFrame(w64).traffic.totalGB();
    EXPECT_LT(neo_gb, 0.45 * gscore_gb)
        << "paper reports 81.3% end-to-end reduction";
}

TEST(NeoModelTest, FasterThanGscoreAndGapGrowsWithResolution)
{
    auto speedup = [](Resolution res) {
        double gscore =
            GscoreModel().simulateFrame(syntheticWorkload(res, 16)).fps();
        double neo =
            NeoModel().simulateFrame(syntheticWorkload(res, 64)).fps();
        return neo / gscore;
    };
    double s_hd = speedup(kResHD);
    double s_qhd = speedup(kResQHD);
    EXPECT_GT(s_hd, 1.0);
    EXPECT_GT(s_qhd, s_hd) << "Neo's advantage grows with resolution";
}

TEST(NeoModelTest, ColdStartCostsMore)
{
    NeoModel neo;
    FrameWorkload w = syntheticWorkload(kResQHD, 64);
    FrameSim cold = neo.simulateFrame(w, true);
    FrameSim warm = neo.simulateFrame(w, false);
    EXPECT_GT(cold.traffic.sorting_bytes, warm.traffic.sorting_bytes);
}

TEST(NeoModelTest, DisablingDeferredDepthUpdateAddsTraffic)
{
    NeoConfig with;
    NeoConfig without;
    without.deferred_depth_update = false;
    FrameWorkload w = syntheticWorkload(kResQHD, 64);
    FrameSim a = NeoModel(with).simulateFrame(w);
    FrameSim b = NeoModel(without).simulateFrame(w);
    double increase = b.traffic.total() / a.traffic.total() - 1.0;
    // §4.4: ~33% more traffic without the optimization.
    EXPECT_GT(increase, 0.10);
    EXPECT_LT(increase, 0.80);
    EXPECT_GT(b.latency_s, a.latency_s);
}

TEST(NeoModelTest, NeoSConfigSitsBetweenGscoreAndNeo)
{
    FrameWorkload w16 = syntheticWorkload(kResQHD, 16);
    FrameWorkload w64 = syntheticWorkload(kResQHD, 64);
    double gscore = GscoreModel().simulateFrame(w16).traffic.total();
    double neo_s =
        NeoModel(neoSOnlyConfig()).simulateFrame(w64).traffic.total();
    double neo = NeoModel().simulateFrame(w64).traffic.total();
    EXPECT_LT(neo_s, gscore);
    EXPECT_LT(neo, neo_s);
}

TEST(NeoModelTest, ReuseDisabledBehavesLikeFromScratch)
{
    NeoConfig scratch;
    scratch.reuse_sorting = false;
    FrameWorkload w = syntheticWorkload(kResQHD, 64);
    double scratch_sort =
        NeoModel(scratch).simulateFrame(w).traffic.sorting_bytes;
    double reuse_sort = NeoModel().simulateFrame(w).traffic.sorting_bytes;
    EXPECT_GT(scratch_sort, reuse_sort);
}

TEST(HarnessTest, SequenceAggregation)
{
    GpuModel gpu;
    std::vector<FrameWorkload> seq(5, syntheticWorkload(kResHD, 16));
    SequenceResult r = simulateGpu(gpu, seq);
    ASSERT_EQ(r.frames.size(), 5u);
    EXPECT_GT(r.meanFps(), 0.0);
    EXPECT_GT(r.totalTrafficGB(), 0.0);
    EXPECT_NEAR(r.trafficGBPer60Frames(), r.totalTrafficGB() * 12.0, 1e-9);
    EXPECT_GE(r.maxLatencyMs(), r.meanLatencyMs());
}

TEST(HarnessTest, NeoColdStartOnlyFirstFrame)
{
    NeoModel neo;
    std::vector<FrameWorkload> seq(3, syntheticWorkload(kResHD, 64));
    SequenceResult r = simulateNeo(neo, seq, true);
    EXPECT_GT(r.frames[0].traffic.sorting_bytes,
              r.frames[1].traffic.sorting_bytes);
    EXPECT_NEAR(r.frames[1].traffic.sorting_bytes,
                r.frames[2].traffic.sorting_bytes, 1.0);
}

TEST(ModelSanityTest, StageTimesNonNegative)
{
    FrameWorkload w = syntheticWorkload(kResFHD, 16);
    for (const FrameSim &sim :
         {GpuModel().simulateFrame(w), GscoreModel().simulateFrame(w),
          NeoModel().simulateFrame(syntheticWorkload(kResFHD, 64))}) {
        EXPECT_GE(sim.fe_compute_s, 0.0);
        EXPECT_GE(sim.sort_compute_s, 0.0);
        EXPECT_GE(sim.raster_compute_s, 0.0);
        EXPECT_GT(sim.memory_s, 0.0);
        EXPECT_GE(sim.latency_s, sim.memory_s * 0.99);
    }
}

} // namespace
} // namespace neo
