/**
 * @file
 * Unit tests for tile binning / duplication.
 */

#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "gs/projection.h"
#include "gs/tiling.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(TileGridTest, DimensionsRoundUp)
{
    TileGrid grid({100, 50, "t"}, 16);
    EXPECT_EQ(grid.tiles_x, 7);
    EXPECT_EQ(grid.tiles_y, 4);
    EXPECT_EQ(grid.tileCount(), 28);
}

TEST(TileGridTest, IndexAndOriginRoundTrip)
{
    TileGrid grid({256, 192, "t"}, 16);
    int idx = grid.tileIndex(3, 2);
    Vec2 origin = grid.tileOrigin(idx);
    EXPECT_FLOAT_EQ(origin.x, 48.0f);
    EXPECT_FLOAT_EQ(origin.y, 32.0f);
}

TEST(TileRectTest, EmptyRect)
{
    TileRect r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.count(), 0);
}

TEST(TileRectTest, CentralGaussianCoversExpectedTiles)
{
    TileGrid grid({256, 192, "t"}, 16);
    ProjectedGaussian pg;
    pg.mean2d = {128.0f, 96.0f};
    pg.radius_px = 20.0f;
    TileRect r = tileRectOf(pg, grid);
    // 128 +- 20 spans pixels 108..148 -> tiles 6..9; 96 +- 20 -> tiles 4..7.
    EXPECT_EQ(r.x0, 6);
    EXPECT_EQ(r.x1, 9);
    EXPECT_EQ(r.y0, 4);
    EXPECT_EQ(r.y1, 7);
    EXPECT_EQ(r.count(), 16);
}

TEST(TileRectTest, ClampsToGrid)
{
    TileGrid grid({256, 192, "t"}, 16);
    ProjectedGaussian pg;
    pg.mean2d = {2.0f, 2.0f};
    pg.radius_px = 100.0f;
    TileRect r = tileRectOf(pg, grid);
    EXPECT_EQ(r.x0, 0);
    EXPECT_EQ(r.y0, 0);
    EXPECT_LE(r.x1, grid.tiles_x - 1);
    EXPECT_LE(r.y1, grid.tiles_y - 1);
}

TEST(TileRectTest, OffscreenGaussianIsEmpty)
{
    TileGrid grid({256, 192, "t"}, 16);
    ProjectedGaussian pg;
    pg.mean2d = {-500.0f, 96.0f};
    pg.radius_px = 10.0f;
    EXPECT_TRUE(tileRectOf(pg, grid).empty());
}

TEST(BinFrameTest, InstancesEqualSumOfTileLists)
{
    GaussianScene scene = test::blobScene(300);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 16);
    uint64_t sum = 0;
    for (const auto &t : frame.tiles)
        sum += t.size();
    EXPECT_EQ(sum, frame.instances);
    EXPECT_GT(frame.instances, 0u);
}

TEST(BinFrameTest, DuplicationAtLeastOneTilePerVisible)
{
    GaussianScene scene = test::blobScene(300);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 16);
    EXPECT_GE(frame.instances, frame.features.size());
}

TEST(BinFrameTest, FeatureLookupIsConsistent)
{
    GaussianScene scene = test::blobScene(100);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 16);
    for (GaussianId id = 0; id < scene.size(); ++id) {
        if (!frame.isVisible(id))
            continue;
        EXPECT_EQ(frame.featureOf(id).id, id);
    }
}

TEST(BinFrameTest, EntriesCarryFeatureDepth)
{
    GaussianScene scene = test::blobScene(100);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 16);
    for (const auto &tile : frame.tiles)
        for (const auto &e : tile) {
            ASSERT_TRUE(frame.isVisible(e.id));
            EXPECT_FLOAT_EQ(e.depth, frame.featureOf(e.id).depth);
            EXPECT_TRUE(e.valid);
        }
}

TEST(BinFrameTest, EveryInstanceIntersectsItsTileRect)
{
    GaussianScene scene = test::blobScene(100);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 16);
    for (int tile = 0; tile < frame.grid.tileCount(); ++tile) {
        Vec2 origin = frame.grid.tileOrigin(tile);
        for (const auto &e : frame.tiles[tile]) {
            const ProjectedGaussian &pg = frame.featureOf(e.id);
            // The gaussian's bbox must overlap the tile's pixel rect.
            EXPECT_LE(pg.mean2d.x - pg.radius_px,
                      origin.x + frame.grid.tile_size);
            EXPECT_GE(pg.mean2d.x + pg.radius_px, origin.x);
            EXPECT_LE(pg.mean2d.y - pg.radius_px,
                      origin.y + frame.grid.tile_size);
            EXPECT_GE(pg.mean2d.y + pg.radius_px, origin.y);
        }
    }
}

TEST(BinFrameTest, LargerTilesMeanFewerInstances)
{
    GaussianScene scene = test::blobScene(500);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame f16 = binFrame(scene, cam, 16);
    BinnedFrame f64 = binFrame(scene, cam, 64);
    EXPECT_GT(f16.instances, f64.instances);
    EXPECT_EQ(f16.features.size(), f64.features.size());
}

TEST(BinFrameTest, MeanTileLengthSane)
{
    GaussianScene scene = test::blobScene(500);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, 16);
    double mean_len = frame.meanTileLength();
    EXPECT_GT(mean_len, 0.0);
    EXPECT_LE(mean_len, static_cast<double>(frame.instances));
}

/** Parameterized: binning must be self-consistent across tile sizes. */
class TileSizeTest : public ::testing::TestWithParam<int>
{
};

TEST_P(TileSizeTest, GridCoversImage)
{
    int tile_px = GetParam();
    GaussianScene scene = test::blobScene(200);
    Camera cam = test::frontCamera(5.0f);
    BinnedFrame frame = binFrame(scene, cam, tile_px);
    EXPECT_GE(frame.grid.tiles_x * tile_px, cam.width());
    EXPECT_GE(frame.grid.tiles_y * tile_px, cam.height());
    EXPECT_EQ(frame.tiles.size(),
              static_cast<size_t>(frame.grid.tileCount()));
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileSizeTest,
                         ::testing::Values(8, 16, 32, 64));

} // namespace
} // namespace neo
