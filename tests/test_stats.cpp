/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace neo
{
namespace
{

TEST(PercentileTest, EdgeCases)
{
    EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(std::vector<double>{3.0}, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(std::vector<double>{3.0}, 100.0), 3.0);
}

TEST(PercentileTest, MedianOfOddSet)
{
    std::vector<double> v{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(PercentileTest, MinMaxAtExtremes)
{
    std::vector<double> v{9.0, -4.0, 2.0, 7.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), -4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(PercentileTest, FloatOverloadMatches)
{
    std::vector<float> f{1.0f, 2.0f, 3.0f, 4.0f};
    EXPECT_NEAR(percentile(f, 50.0), 2.5, 1e-9);
}

TEST(MeanStddevTest, KnownValues)
{
    std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(stddev(v), 2.138, 1e-3);
}

TEST(MeanStddevTest, DegenerateInputs)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(GeomeanTest, KnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-9);
}

TEST(CdfTest, MonotoneAndNormalized)
{
    Rng rng(4);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(rng.uniform());
    auto cdf = empiricalCdf(v, 32);
    ASSERT_EQ(cdf.size(), 32u);
    for (size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].cumulative, cdf[i - 1].cumulative);
        EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    }
    EXPECT_NEAR(cdf.back().cumulative, 1.0, 1e-12);
}

TEST(CdfTest, ConstantDataCollapses)
{
    auto cdf = empiricalCdf({2.0, 2.0, 2.0}, 16);
    ASSERT_EQ(cdf.size(), 1u);
    EXPECT_DOUBLE_EQ(cdf[0].value, 2.0);
    EXPECT_DOUBLE_EQ(cdf[0].cumulative, 1.0);
}

TEST(FractionAtLeastTest, Basic)
{
    std::vector<double> v{0.1, 0.5, 0.9, 1.0};
    EXPECT_DOUBLE_EQ(fractionAtLeast(v, 0.5), 0.75);
    EXPECT_DOUBLE_EQ(fractionAtLeast(v, 2.0), 0.0);
    EXPECT_DOUBLE_EQ(fractionAtLeast(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(fractionAtLeast({}, 0.5), 0.0);
}

TEST(RunningSummaryTest, TracksMoments)
{
    RunningSummary s;
    EXPECT_EQ(s.count(), 0u);
    s.add(3.0);
    s.add(-1.0);
    s.add(4.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(HistogramTest, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-5.0);  // clamps to bin 0
    h.add(50.0);  // clamps to bin 9
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.5);
    EXPECT_NEAR(h.binCenter(0), 0.5, 1e-12);
    EXPECT_NEAR(h.binCenter(9), 9.5, 1e-12);
}

TEST(SparklineTest, LengthMatchesInput)
{
    EXPECT_TRUE(sparkline({}).empty());
    auto s = sparkline({1.0, 2.0, 3.0});
    EXPECT_FALSE(s.empty());
}

} // namespace
} // namespace neo
