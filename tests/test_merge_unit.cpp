/**
 * @file
 * Unit tests for the Merge Sorting Unit+ model (merge, valid-bit filter,
 * simultaneous insertion).
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sort/merge_unit.h"
#include "test_util.h"

namespace neo
{
namespace
{

std::vector<TileEntry>
sortedTable(size_t n, uint64_t seed)
{
    auto t = test::randomTable(n, seed);
    std::sort(t.begin(), t.end(), entryDepthLess);
    return t;
}

TEST(MsuTest, MergeOfSortedRunsIsSorted)
{
    auto a = sortedTable(20, 1);
    auto b = sortedTable(15, 2);
    // Make ids unique across runs.
    for (auto &e : b)
        e.id += 1000;
    std::vector<TileEntry> out;
    msuMerge(a, b, out);
    EXPECT_EQ(out.size(), 35u);
    EXPECT_TRUE(test::isSorted(out));
}

TEST(MsuTest, MergeWithEmptyRun)
{
    auto a = sortedTable(10, 3);
    std::vector<TileEntry> empty, out;
    msuMerge(a, empty, out);
    EXPECT_EQ(out.size(), 10u);
    msuMerge(empty, a, out);
    EXPECT_EQ(out.size(), 10u);
}

TEST(MsuTest, InvalidEntriesAreFiltered)
{
    auto a = sortedTable(20, 4);
    a[3].valid = false;
    a[10].valid = false;
    std::vector<TileEntry> empty, out;
    MsuStats stats;
    msuMerge(a, empty, out, &stats);
    EXPECT_EQ(out.size(), 18u);
    EXPECT_EQ(stats.filtered_invalid, 2u);
    for (const auto &e : out)
        EXPECT_TRUE(e.valid);
}

TEST(MsuTest, StatsCountElementsAndCompares)
{
    auto a = sortedTable(8, 5);
    auto b = sortedTable(8, 6);
    for (auto &e : b)
        e.id += 100;
    std::vector<TileEntry> out;
    MsuStats stats;
    msuMerge(a, b, out, &stats);
    EXPECT_EQ(stats.merges, 1u);
    EXPECT_EQ(stats.elements_processed, 16u);
    EXPECT_GT(stats.compares, 0u);
    EXPECT_LE(stats.compares, 16u);
}

TEST(MsuTest, MergeRunsFullySortsRunStructure)
{
    // Build 4 sorted runs of 8 entries each, concatenated.
    std::vector<TileEntry> t;
    for (int run = 0; run < 4; ++run) {
        auto r = sortedTable(8, 10 + run);
        for (auto &e : r)
            e.id += run * 100;
        t.insert(t.end(), r.begin(), r.end());
    }
    MsuStats stats;
    int passes = msuMergeRuns(t, 0, t.size(), 8, &stats);
    EXPECT_EQ(passes, 2); // 8 -> 16 -> 32
    EXPECT_TRUE(test::isSorted(t));
}

TEST(MsuTest, MergeRunsOnSingleRunIsNoop)
{
    auto t = sortedTable(8, 20);
    int passes = msuMergeRuns(t, 0, t.size(), 8);
    EXPECT_EQ(passes, 0);
    EXPECT_TRUE(test::isSorted(t));
}

TEST(MsuTest, MergeRunsHandlesRaggedTail)
{
    // 3 runs: 16 + 16 + 5 entries.
    std::vector<TileEntry> t;
    for (int run = 0; run < 2; ++run) {
        auto r = sortedTable(16, 30 + run);
        for (auto &e : r)
            e.id += run * 1000;
        t.insert(t.end(), r.begin(), r.end());
    }
    auto tail = sortedTable(5, 33);
    for (auto &e : tail)
        e.id += 5000;
    t.insert(t.end(), tail.begin(), tail.end());
    msuMergeRuns(t, 0, t.size(), 16);
    EXPECT_TRUE(test::isSorted(t));
}

TEST(MsuTest, UpdateTableInsertsAndDeletesInOnePass)
{
    // Reused table with two invalidated entries plus a sorted incoming
    // table: result must be sorted, contain no invalid entries, and hold
    // exactly (20 - 2 + 5) entries.
    auto reused = sortedTable(20, 40);
    reused[2].valid = false;
    reused[15].valid = false;
    auto incoming = sortedTable(5, 41);
    for (auto &e : incoming)
        e.id += 10000;
    std::vector<TileEntry> out;
    MsuStats stats;
    msuUpdateTable(reused, incoming, out, &stats);
    EXPECT_EQ(out.size(), 23u);
    EXPECT_TRUE(test::isSorted(out));
    EXPECT_EQ(stats.filtered_invalid, 2u);
    for (const auto &e : out)
        EXPECT_TRUE(e.valid);
    // Every incoming id present.
    for (const auto &inc : incoming) {
        bool found = false;
        for (const auto &e : out)
            if (e.id == inc.id)
                found = true;
        EXPECT_TRUE(found) << "incoming id " << inc.id;
    }
}

TEST(MsuTest, InvalidIncomingEntriesAlsoFiltered)
{
    auto reused = sortedTable(10, 50);
    auto incoming = sortedTable(4, 51);
    for (auto &e : incoming)
        e.id += 100;
    incoming[1].valid = false;
    std::vector<TileEntry> out;
    msuUpdateTable(reused, incoming, out);
    EXPECT_EQ(out.size(), 13u);
}

// --- worker-parallel merge paths (bit-identical to serial) ---

void
expectSameEntries(const std::vector<TileEntry> &a,
                  const std::vector<TileEntry> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << "index " << i;
        EXPECT_EQ(a[i].depth, b[i].depth) << "index " << i;
        EXPECT_EQ(a[i].valid, b[i].valid) << "index " << i;
    }
}

void
expectSameMsuStats(const MsuStats &a, const MsuStats &b)
{
    EXPECT_EQ(a.merges, b.merges);
    EXPECT_EQ(a.elements_processed, b.elements_processed);
    EXPECT_EQ(a.compares, b.compares);
    EXPECT_EQ(a.filtered_invalid, b.filtered_invalid);
}

TEST(MsuParallelTest, TwoWayMergeMatchesSerialBitForBit)
{
    // Large enough to clear kMsuParallelMinEntries and actually split.
    auto a = sortedTable(6000, 60);
    auto b = sortedTable(4500, 61);
    for (auto &e : b)
        e.id += 100000;
    for (size_t i = 0; i < a.size(); i += 97)
        a[i].valid = false;
    for (size_t i = 0; i < b.size(); i += 131)
        b[i].valid = false;

    std::vector<TileEntry> serial_out;
    MsuStats serial_stats;
    msuMerge(a, b, serial_out, &serial_stats, 1);
    EXPECT_TRUE(test::isSorted(serial_out));

    for (int threads : {2, 3, 8}) {
        std::vector<TileEntry> out;
        MsuStats stats;
        msuMerge(a, b, out, &stats, threads);
        expectSameEntries(serial_out, out);
        expectSameMsuStats(serial_stats, stats);
    }
}

TEST(MsuParallelTest, TwoWayMergeWithDuplicateKeysMatchesSerial)
{
    // Equal depths across both inputs stress the tie-break (ties emit
    // from the first input) in the merge-path partitioning.
    auto a = sortedTable(3000, 62);
    auto b = a;
    for (auto &e : b)
        e.id += 100000;
    std::sort(b.begin(), b.end(), entryDepthLess);

    std::vector<TileEntry> serial_out, out;
    MsuStats serial_stats, stats;
    msuMerge(a, b, serial_out, &serial_stats, 1);
    msuMerge(a, b, out, &stats, 8);
    expectSameEntries(serial_out, out);
    expectSameMsuStats(serial_stats, stats);
}

TEST(MsuParallelTest, UnsortedInputsFallBackToSerialBehavior)
{
    // The reused table under Dynamic Partial Sorting is only nearly
    // sorted; the parallel path must not change the serial interleaving.
    auto a = test::nearlySortedTable(4000, 5.0f, 63);
    auto b = sortedTable(2000, 64);
    for (auto &e : b)
        e.id += 100000;

    std::vector<TileEntry> serial_out, out;
    MsuStats serial_stats, stats;
    msuUpdateTable(a, b, serial_out, &serial_stats, 1);
    msuUpdateTable(a, b, out, &stats, 8);
    expectSameEntries(serial_out, out);
    expectSameMsuStats(serial_stats, stats);
}

TEST(MsuParallelTest, MergeTreeMatchesSerialBitForBit)
{
    // msuMergeRuns with run=1 is a full bottom-up merge sort; 20k entries
    // give the tree several parallel-eligible passes.
    auto base = test::randomTable(20000, 65);
    for (size_t i = 0; i < base.size(); i += 53)
        base[i].valid = false;

    auto serial = base;
    MsuStats serial_stats;
    const int serial_passes =
        msuMergeRuns(serial, 0, serial.size(), 1, &serial_stats, 1);
    EXPECT_TRUE(test::isSorted(serial));

    for (int threads : {2, 8}) {
        auto t = base;
        MsuStats stats;
        const int passes = msuMergeRuns(t, 0, t.size(), 1, &stats, threads);
        EXPECT_EQ(serial_passes, passes);
        expectSameEntries(serial, t);
        expectSameMsuStats(serial_stats, stats);
    }
}

TEST(MsuParallelTest, MergeTreeSubrangeMatchesSerial)
{
    // first/count offsets must survive the parallel pair fan-out.
    auto base = test::randomTable(8192, 66);
    const size_t first = 1000, count = 6000;

    auto serial = base;
    MsuStats serial_stats;
    msuMergeRuns(serial, first, count, 1, &serial_stats, 1);

    auto t = base;
    MsuStats stats;
    msuMergeRuns(t, first, count, 1, &stats, 8);
    expectSameEntries(serial, t);
    expectSameMsuStats(serial_stats, stats);
}

// --- speculative merge-path split (accept and fallback outcomes) ---

/**
 * The speculative contract in one assertion: whatever the outcome
 * (accepted merge-path parallelism or serial fallback), output and
 * counters are bit-identical to the serial interleaving at every thread
 * count.
 */
void
expectSpeculativeMatchesSerial(const std::vector<TileEntry> &a,
                               const std::vector<TileEntry> &b)
{
    std::vector<TileEntry> serial_out;
    MsuStats serial_stats;
    msuMerge(a, b, serial_out, &serial_stats, 1);
    for (int threads : {1, 2, 8}) {
        std::vector<TileEntry> out;
        MsuStats stats;
        msuMerge(a, b, out, &stats, threads);
        expectSameEntries(serial_out, out);
        expectSameMsuStats(serial_stats, stats);
    }
}

TEST(MsuSpeculativeTest, SortedInputsAcceptBitExact)
{
    // The accept outcome: speculation verifies and the merge-path spans
    // stand. Heavy cross-input ties plus invalid entries stress the
    // tie-break and the filtered-counter reconstruction.
    auto a = sortedTable(5000, 70);
    auto b = a;
    for (auto &e : b)
        e.id += 100000;
    for (size_t i = 0; i < a.size(); i += 61)
        a[i].valid = false;
    expectSpeculativeMatchesSerial(a, b);
}

TEST(MsuSpeculativeTest, AlmostSortedReusedTableFallsBackBitExact)
{
    // The common steady-state fallback: the reused table under Dynamic
    // Partial Sorting is only approximately sorted, so verification must
    // refute the speculation and the serial interleaving must stand.
    auto a = test::nearlySortedTable(6000, 2.0f, 71);
    auto b = sortedTable(3000, 72);
    for (auto &e : b)
        e.id += 100000;
    expectSpeculativeMatchesSerial(a, b);
    expectSpeculativeMatchesSerial(b, a);
}

TEST(MsuSpeculativeTest, SingleInversionAtBoundaryPositionsFallsBack)
{
    // A single swapped adjacent pair is the hardest violation to catch:
    // the merge-path splits look plausible and only one chunk's span scan
    // sees the inversion. Place it at the first pair, the last pair, and
    // around likely span boundaries for 2 and 8 chunks.
    const size_t n = 6000;
    auto b = sortedTable(3000, 73);
    for (auto &e : b)
        e.id += 100000;
    for (size_t pos : {size_t{0}, n / 8 - 1, n / 8, n / 2, n - 2}) {
        auto a = sortedTable(n, 74);
        std::swap(a[pos], a[pos + 1]);
        ASSERT_FALSE(
            std::is_sorted(a.begin(), a.end(), entryDepthLess));
        expectSpeculativeMatchesSerial(a, b);
        expectSpeculativeMatchesSerial(b, a);
    }
}

TEST(MsuSpeculativeTest, FullyUnsortedInputsFallBackBitExact)
{
    // Fully unsorted input: the blind merge-path searches usually yield
    // non-monotone splits here, exercising the pre-flight reject before
    // any parallel work (and the span scans when they happen to pass).
    auto a = sortedTable(4000, 75);
    std::reverse(a.begin(), a.end());
    auto b = test::randomTable(4000, 76);
    for (auto &e : b)
        e.id += 100000;
    expectSpeculativeMatchesSerial(a, b);
    expectSpeculativeMatchesSerial(b, a);
}

TEST(MsuSpeculativeTest, UpdateTableSpeculatesAcrossOutcomes)
{
    // msuUpdateTable is the speculative path's production caller: reused
    // tables arrive almost sorted (fallback) right after a cold start
    // left them fully sorted (accept). Exercise both through the public
    // entry point with invalid entries in flight.
    auto reused = sortedTable(4000, 77);
    for (size_t i = 0; i < reused.size(); i += 83)
        reused[i].valid = false;
    auto incoming = sortedTable(500, 78);
    for (auto &e : incoming)
        e.id += 100000;
    expectSpeculativeMatchesSerial(reused, incoming);

    std::swap(reused[1234], reused[1235]);
    expectSpeculativeMatchesSerial(reused, incoming);
}

} // namespace
} // namespace neo
