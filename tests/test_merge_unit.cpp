/**
 * @file
 * Unit tests for the Merge Sorting Unit+ model (merge, valid-bit filter,
 * simultaneous insertion).
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sort/merge_unit.h"
#include "test_util.h"

namespace neo
{
namespace
{

std::vector<TileEntry>
sortedTable(size_t n, uint64_t seed)
{
    auto t = test::randomTable(n, seed);
    std::sort(t.begin(), t.end(), entryDepthLess);
    return t;
}

TEST(MsuTest, MergeOfSortedRunsIsSorted)
{
    auto a = sortedTable(20, 1);
    auto b = sortedTable(15, 2);
    // Make ids unique across runs.
    for (auto &e : b)
        e.id += 1000;
    std::vector<TileEntry> out;
    msuMerge(a, b, out);
    EXPECT_EQ(out.size(), 35u);
    EXPECT_TRUE(test::isSorted(out));
}

TEST(MsuTest, MergeWithEmptyRun)
{
    auto a = sortedTable(10, 3);
    std::vector<TileEntry> empty, out;
    msuMerge(a, empty, out);
    EXPECT_EQ(out.size(), 10u);
    msuMerge(empty, a, out);
    EXPECT_EQ(out.size(), 10u);
}

TEST(MsuTest, InvalidEntriesAreFiltered)
{
    auto a = sortedTable(20, 4);
    a[3].valid = false;
    a[10].valid = false;
    std::vector<TileEntry> empty, out;
    MsuStats stats;
    msuMerge(a, empty, out, &stats);
    EXPECT_EQ(out.size(), 18u);
    EXPECT_EQ(stats.filtered_invalid, 2u);
    for (const auto &e : out)
        EXPECT_TRUE(e.valid);
}

TEST(MsuTest, StatsCountElementsAndCompares)
{
    auto a = sortedTable(8, 5);
    auto b = sortedTable(8, 6);
    for (auto &e : b)
        e.id += 100;
    std::vector<TileEntry> out;
    MsuStats stats;
    msuMerge(a, b, out, &stats);
    EXPECT_EQ(stats.merges, 1u);
    EXPECT_EQ(stats.elements_processed, 16u);
    EXPECT_GT(stats.compares, 0u);
    EXPECT_LE(stats.compares, 16u);
}

TEST(MsuTest, MergeRunsFullySortsRunStructure)
{
    // Build 4 sorted runs of 8 entries each, concatenated.
    std::vector<TileEntry> t;
    for (int run = 0; run < 4; ++run) {
        auto r = sortedTable(8, 10 + run);
        for (auto &e : r)
            e.id += run * 100;
        t.insert(t.end(), r.begin(), r.end());
    }
    MsuStats stats;
    int passes = msuMergeRuns(t, 0, t.size(), 8, &stats);
    EXPECT_EQ(passes, 2); // 8 -> 16 -> 32
    EXPECT_TRUE(test::isSorted(t));
}

TEST(MsuTest, MergeRunsOnSingleRunIsNoop)
{
    auto t = sortedTable(8, 20);
    int passes = msuMergeRuns(t, 0, t.size(), 8);
    EXPECT_EQ(passes, 0);
    EXPECT_TRUE(test::isSorted(t));
}

TEST(MsuTest, MergeRunsHandlesRaggedTail)
{
    // 3 runs: 16 + 16 + 5 entries.
    std::vector<TileEntry> t;
    for (int run = 0; run < 2; ++run) {
        auto r = sortedTable(16, 30 + run);
        for (auto &e : r)
            e.id += run * 1000;
        t.insert(t.end(), r.begin(), r.end());
    }
    auto tail = sortedTable(5, 33);
    for (auto &e : tail)
        e.id += 5000;
    t.insert(t.end(), tail.begin(), tail.end());
    msuMergeRuns(t, 0, t.size(), 16);
    EXPECT_TRUE(test::isSorted(t));
}

TEST(MsuTest, UpdateTableInsertsAndDeletesInOnePass)
{
    // Reused table with two invalidated entries plus a sorted incoming
    // table: result must be sorted, contain no invalid entries, and hold
    // exactly (20 - 2 + 5) entries.
    auto reused = sortedTable(20, 40);
    reused[2].valid = false;
    reused[15].valid = false;
    auto incoming = sortedTable(5, 41);
    for (auto &e : incoming)
        e.id += 10000;
    std::vector<TileEntry> out;
    MsuStats stats;
    msuUpdateTable(reused, incoming, out, &stats);
    EXPECT_EQ(out.size(), 23u);
    EXPECT_TRUE(test::isSorted(out));
    EXPECT_EQ(stats.filtered_invalid, 2u);
    for (const auto &e : out)
        EXPECT_TRUE(e.valid);
    // Every incoming id present.
    for (const auto &inc : incoming) {
        bool found = false;
        for (const auto &e : out)
            if (e.id == inc.id)
                found = true;
        EXPECT_TRUE(found) << "incoming id " << inc.id;
    }
}

TEST(MsuTest, InvalidIncomingEntriesAlsoFiltered)
{
    auto reused = sortedTable(10, 50);
    auto incoming = sortedTable(4, 51);
    for (auto &e : incoming)
        e.id += 100;
    incoming[1].valid = false;
    std::vector<TileEntry> out;
    msuUpdateTable(reused, incoming, out);
    EXPECT_EQ(out.size(), 13u);
}

} // namespace
} // namespace neo
