/**
 * @file
 * Unit tests for frustum culling.
 */

#include <cstddef>

#include <gtest/gtest.h>

#include "gs/culling.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(CullingTest, CenterIsVisible)
{
    Camera cam = test::frontCamera(5.0f);
    EXPECT_TRUE(inFrustum(test::makeGaussian({0.0f, 0.0f, 0.0f}), cam));
}

TEST(CullingTest, BehindCameraIsCulled)
{
    Camera cam = test::frontCamera(5.0f);
    EXPECT_FALSE(inFrustum(test::makeGaussian({0.0f, 0.0f, -20.0f}), cam));
}

TEST(CullingTest, FarOffAxisIsCulled)
{
    Camera cam = test::frontCamera(5.0f);
    EXPECT_FALSE(inFrustum(test::makeGaussian({100.0f, 0.0f, 0.0f}), cam));
    EXPECT_FALSE(inFrustum(test::makeGaussian({0.0f, 100.0f, 0.0f}), cam));
}

TEST(CullingTest, LargeGaussianNearEdgeSurvives)
{
    Camera cam = test::frontCamera(5.0f);
    // A point just outside the frustum whose 3-sigma extent reaches in.
    Gaussian tight = test::makeGaussian({6.0f, 0.0f, 0.0f}, 0.01f);
    Gaussian wide = test::makeGaussian({6.0f, 0.0f, 0.0f}, 1.5f);
    EXPECT_FALSE(inFrustum(tight, cam));
    EXPECT_TRUE(inFrustum(wide, cam));
}

TEST(CullingTest, MarginWidensAcceptance)
{
    Camera cam = test::frontCamera(5.0f);
    Gaussian g = test::makeGaussian({3.2f, 0.0f, 0.0f}, 0.01f);
    bool strict = inFrustum(g, cam, 1.0f);
    bool relaxed = inFrustum(g, cam, 1.6f);
    EXPECT_TRUE(relaxed || strict);
    if (!strict) {
        EXPECT_TRUE(relaxed);
    }
}

TEST(CullingTest, SceneCullCountsAreConsistent)
{
    GaussianScene scene = test::blobScene(500);
    Camera cam = test::frontCamera(5.0f);
    CullResult r = cullScene(scene, cam);
    EXPECT_EQ(r.total, 500u);
    EXPECT_GT(r.visible.size(), 0u);
    EXPECT_LE(r.visible.size(), 500u);
    EXPECT_NEAR(r.visibleFraction(),
                static_cast<double>(r.visible.size()) / 500.0, 1e-12);
    // Ids must be unique and in range.
    for (size_t i = 1; i < r.visible.size(); ++i)
        EXPECT_LT(r.visible[i - 1], r.visible[i]);
}

TEST(CullingTest, AllVisibleWhenLookingAtBlob)
{
    // Blob is ±1.5 around origin; a distant camera sees it all.
    GaussianScene scene = test::blobScene(200);
    Camera cam = test::frontCamera(12.0f);
    CullResult r = cullScene(scene, cam);
    EXPECT_EQ(r.visible.size(), 200u);
}

TEST(CullingTest, ParallelCullMatchesSerialExactly)
{
    // The parallel path concatenates per-chunk results in chunk order, so
    // the visible list must be identical to the serial one for any thread
    // count — including more threads than hardware cores.
    GaussianScene scene = test::blobScene(1000, 23);
    Camera cam = test::frontCamera(4.0f);
    CullResult serial = cullScene(scene, cam, 1.0f, 1);
    for (int threads : {2, 8}) {
        CullResult parallel = cullScene(scene, cam, 1.0f, threads);
        EXPECT_EQ(parallel.total, serial.total);
        EXPECT_EQ(parallel.visible, serial.visible)
            << "threads=" << threads;
    }
}

TEST(CullingTest, NothingVisibleFacingAway)
{
    GaussianScene scene = test::blobScene(200);
    Camera cam(test::smallRes(), deg2rad(50.0f));
    // Stand at -z and look further down -z, away from the blob.
    cam.lookAt({0.0f, 0.0f, -5.0f}, {0.0f, 0.0f, -10.0f});
    CullResult r = cullScene(scene, cam);
    EXPECT_EQ(r.visible.size(), 0u);
}

} // namespace
} // namespace neo
