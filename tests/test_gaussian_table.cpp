/**
 * @file
 * Unit tests for the persistent tile-table set and order displacement.
 */

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/gaussian_table.h"
#include "test_util.h"

namespace neo
{
namespace
{

TEST(TileTableSetTest, ResetAllocatesEmptyTables)
{
    TileTableSet set;
    EXPECT_TRUE(set.empty());
    set.reset(10);
    EXPECT_EQ(set.tileCount(), 10u);
    EXPECT_EQ(set.totalEntries(), 0u);
    for (size_t t = 0; t < 10; ++t)
        EXPECT_TRUE(set.table(t).empty());
}

TEST(TileTableSetTest, CountsEntriesAndValidBits)
{
    TileTableSet set;
    set.reset(3);
    set.table(0) = test::randomTable(5, 1);
    set.table(2) = test::randomTable(7, 2);
    set.table(2)[0].valid = false;
    set.table(2)[3].valid = false;
    EXPECT_EQ(set.totalEntries(), 12u);
    EXPECT_EQ(set.validEntries(), 10u);
}

TEST(TileTableSetTest, ResetDropsContents)
{
    TileTableSet set;
    set.reset(2);
    set.table(0) = test::randomTable(5, 3);
    set.reset(2);
    EXPECT_EQ(set.totalEntries(), 0u);
}

TEST(OrderDisplacementTest, IdenticalOrderingsAreZero)
{
    auto t = test::randomTable(50, 4);
    std::sort(t.begin(), t.end(), entryDepthLess);
    auto d = orderDisplacements(t, t);
    ASSERT_EQ(d.size(), 50u);
    for (double v : d)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(OrderDisplacementTest, SingleSwapGivesTwoOnes)
{
    std::vector<TileEntry> prev{{0, 1.0f, true}, {1, 2.0f, true},
                                {2, 3.0f, true}};
    auto cur = prev;
    std::swap(cur[0], cur[1]);
    auto d = orderDisplacements(prev, cur);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_DOUBLE_EQ(d[0], 1.0);
    EXPECT_DOUBLE_EQ(d[1], 1.0);
    EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(OrderDisplacementTest, UnsharedIdsAreIgnored)
{
    std::vector<TileEntry> prev{{0, 1.0f, true}, {1, 2.0f, true}};
    std::vector<TileEntry> cur{{1, 1.5f, true}, {9, 2.5f, true}};
    auto d = orderDisplacements(prev, cur);
    ASSERT_EQ(d.size(), 1u); // only id 1 shared
    EXPECT_DOUBLE_EQ(d[0], 1.0); // moved from slot 1 to slot 0
}

TEST(OrderDisplacementTest, ReversalGivesLargeDisplacements)
{
    auto prev = test::randomTable(20, 5);
    auto cur = prev;
    std::reverse(cur.begin(), cur.end());
    auto d = orderDisplacements(prev, cur);
    double max_d = *std::max_element(d.begin(), d.end());
    EXPECT_DOUBLE_EQ(max_d, 19.0);
}

TEST(OrderDisplacementTest, EmptyInputs)
{
    std::vector<TileEntry> empty;
    auto t = test::randomTable(5, 6);
    EXPECT_TRUE(orderDisplacements(empty, empty).empty());
    EXPECT_TRUE(orderDisplacements(empty, t).empty());
    EXPECT_TRUE(orderDisplacements(t, empty).empty());
}

TEST(TableEntryBytesTest, MatchesPaperLayout)
{
    // 32-bit id + 32-bit depth = 8 bytes per off-chip entry.
    EXPECT_EQ(kTableEntryBytes, 8u);
}

} // namespace
} // namespace neo
