/**
 * @file
 * Unit tests for the analytic area/power model (Tables 3-4).
 */

#include <gtest/gtest.h>
#include <string>

#include "sim/area_power.h"

namespace neo
{
namespace
{

TEST(AreaPowerTest, TotalsMatchTable3)
{
    ComponentAP neo = neoAreaPowerTotal();
    EXPECT_NEAR(neo.area_mm2, 0.387, 0.005);
    EXPECT_NEAR(neo.power_mw, 797.8, 5.0);

    ComponentAP gscore = gscoreAreaPowerTotal();
    EXPECT_NEAR(gscore.area_mm2, 0.417, 1e-9);
    EXPECT_NEAR(gscore.power_mw, 719.9, 1e-9);
}

TEST(AreaPowerTest, NeoSmallerThanGscoreSlightlyMorePower)
{
    ComponentAP neo = neoAreaPowerTotal();
    ComponentAP gscore = gscoreAreaPowerTotal();
    EXPECT_LT(neo.area_mm2, gscore.area_mm2);
    EXPECT_GT(neo.power_mw, gscore.power_mw);
}

TEST(AreaPowerTest, EngineBreakdownMatchesTable4)
{
    auto rows = neoAreaPowerBreakdown();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].name, "Preprocessing Engine");
    EXPECT_NEAR(rows[0].area_mm2, 0.026, 0.002);
    EXPECT_NEAR(rows[0].power_mw, 194.9, 2.0);
    EXPECT_EQ(rows[1].name, "Sorting Engine");
    EXPECT_NEAR(rows[1].area_mm2, 0.053, 0.002);
    EXPECT_NEAR(rows[1].power_mw, 159.0, 2.0);
    EXPECT_EQ(rows[2].name, "Rasterization Engine");
    EXPECT_NEAR(rows[2].area_mm2, 0.308, 0.003);
    EXPECT_NEAR(rows[2].power_mw, 443.9, 3.0);
}

TEST(AreaPowerTest, Table4SubcomponentsMatch)
{
    auto rows = neoTable4Rows();
    // Find MSU+, BSU, SCU, ITU rows by name.
    auto find = [&](const std::string &name) -> const ComponentAP & {
        for (const auto &r : rows)
            if (r.name.find(name) != std::string::npos)
                return r;
        static ComponentAP missing;
        return missing;
    };
    EXPECT_NEAR(find("Merge Sort Unit+").area_mm2, 0.005, 5e-4);
    EXPECT_NEAR(find("Merge Sort Unit+").power_mw, 12.4, 0.2);
    EXPECT_NEAR(find("Bitonic Sort Unit").area_mm2, 0.008, 5e-4);
    EXPECT_NEAR(find("Bitonic Sort Unit").power_mw, 75.0, 0.5);
    EXPECT_NEAR(find("Subtile Compute Unit").area_mm2, 0.228, 2e-3);
    EXPECT_NEAR(find("Subtile Compute Unit").power_mw, 375.0, 1.0);
    EXPECT_NEAR(find("Intersection Test Unit").area_mm2, 0.030, 1e-3);
    EXPECT_NEAR(find("Intersection Test Unit").power_mw, 58.7, 0.5);
}

TEST(AreaPowerTest, BreakdownSumsToTotal)
{
    auto engines = neoAreaPowerBreakdown();
    double area = 0.0, power = 0.0;
    for (const auto &e : engines) {
        area += e.area_mm2;
        power += e.power_mw;
    }
    ComponentAP total = neoAreaPowerTotal();
    EXPECT_NEAR(area, total.area_mm2, 1e-9);
    EXPECT_NEAR(power, total.power_mw, 1e-9);
}

TEST(AreaPowerTest, ScalesWithUnitCounts)
{
    NeoConfig big;
    big.sorting_cores = 32;
    ComponentAP base = neoAreaPowerTotal();
    ComponentAP scaled = neoAreaPowerTotal(big);
    EXPECT_GT(scaled.area_mm2, base.area_mm2);
    EXPECT_GT(scaled.power_mw, base.power_mw);
}

TEST(DeepScaleTest, IdentityAtSameNode)
{
    EXPECT_DOUBLE_EQ(deepScaleFactor(7, 7, true), 1.0);
    EXPECT_DOUBLE_EQ(deepScaleFactor(28, 28, false), 1.0);
}

TEST(DeepScaleTest, ShrinkFrom28To7)
{
    double area = deepScaleFactor(28, 7, true);
    double power = deepScaleFactor(28, 7, false);
    EXPECT_LT(area, 0.2) << "7 nm is ~9x denser than 28 nm";
    EXPECT_LT(power, 0.5);
}

TEST(DeepScaleTest, RoundTripIsIdentity)
{
    double down = deepScaleFactor(28, 7, true);
    double up = deepScaleFactor(7, 28, true);
    EXPECT_NEAR(down * up, 1.0, 1e-9);
}

TEST(DeepScaleTest, UnknownNodeDies)
{
    EXPECT_DEATH({ deepScaleFactor(28, 5, true); }, "unsupported node");
}

} // namespace
} // namespace neo
