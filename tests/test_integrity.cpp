/**
 * @file
 * Integrity-hardened serving mode tests: Digest64 sensitivity, the
 * deterministic fault-injection hook, IntegrityContext seal/verify/restore
 * semantics, and the end-to-end bit-flip injection matrix — one flip into
 * each duplicated control structure, at thread counts {1, 2, 8} and both
 * raster kernels, asserting that check mode reports the exact stage and
 * that recover mode delivers the bit-identical uncorrupted frame hash.
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/digest.h"
#include "common/env.h"
#include "common/faultinject.h"
#include "common/integrity.h"
#include "common/parallel.h"
#include "gs/tile_sort.h"
#include "core/neo_renderer.h"
#include "scene/trajectory.h"
#include "test_util.h"

namespace neo::test
{
namespace
{

// --- Digest64 ----------------------------------------------------------

TEST(Digest64Test, AnySingleBitFlipChangesRawSpanDigest)
{
    std::vector<uint32_t> data = {0u, 1u, 0xdeadbeefu, 0xffffffffu};
    const uint64_t clean = digestSpan(data.data(), data.size());
    for (size_t e = 0; e < data.size(); ++e)
        for (int bit = 0; bit < 32; ++bit) {
            data[e] ^= 1u << bit;
            EXPECT_NE(digestSpan(data.data(), data.size()), clean)
                << "elem " << e << " bit " << bit;
            data[e] ^= 1u << bit;
        }
    EXPECT_EQ(digestSpan(data.data(), data.size()), clean);
}

TEST(Digest64Test, ElementCountIsPartOfTheDigest)
{
    std::vector<uint32_t> data = {1u, 2u, 3u};
    EXPECT_NE(digestSpan(data.data(), 2), digestSpan(data.data(), 3));
    // An empty span digests to a value distinct from one zero element.
    const uint32_t zero = 0;
    EXPECT_NE(digestSpan(&zero, 0), digestSpan(&zero, 1));
}

TEST(Digest64Test, TileEntryDigestCoversEveryField)
{
    std::vector<TileEntry> t = randomTable(16);
    const uint64_t clean = digestSpan(t.data(), t.size());

    t[3].id ^= 1u << 17;
    EXPECT_NE(digestSpan(t.data(), t.size()), clean);
    t[3].id ^= 1u << 17;

    t[7].depth = t[7].depth + 0.5f;
    EXPECT_NE(digestSpan(t.data(), t.size()), clean);

    t = randomTable(16);
    t[0].valid = false;
    EXPECT_NE(digestSpan(t.data(), t.size()), clean);
}

TEST(Digest64Test, TileEntryPaddingBytesAreInvisible)
{
    // The field-aware digestInto must make two entries with identical
    // fields but different padding bytes digest equal — otherwise every
    // seal would false-positive on uninitialized padding.
    unsigned char raw_a[sizeof(TileEntry)];
    unsigned char raw_b[sizeof(TileEntry)];
    std::memset(raw_a, 0x00, sizeof raw_a);
    std::memset(raw_b, 0xAB, sizeof raw_b);
    TileEntry fields;
    fields.id = 1234;
    fields.depth = 7.25f;
    fields.valid = true;
    auto imprint = [&](unsigned char *raw) {
        std::memcpy(raw + offsetof(TileEntry, id), &fields.id,
                    sizeof fields.id);
        std::memcpy(raw + offsetof(TileEntry, depth), &fields.depth,
                    sizeof fields.depth);
        std::memcpy(raw + offsetof(TileEntry, valid), &fields.valid,
                    sizeof fields.valid);
    };
    imprint(raw_a);
    imprint(raw_b);
    TileEntry a, b;
    std::memcpy(&a, raw_a, sizeof a);
    std::memcpy(&b, raw_b, sizeof b);
    EXPECT_EQ(digestSpan(&a, 1), digestSpan(&b, 1));
}

// --- faultinject -------------------------------------------------------

TEST(FaultInjectTest, FlipIsDeterministicInSeed)
{
    std::vector<uint32_t> a = {10u, 20u, 30u, 40u};
    std::vector<uint32_t> b = a;

    faultinject::armBitFlip("test.point", -1, 99);
    faultinject::corrupt("test.point", 0, a.data(), a.size(),
                         sizeof(uint32_t), sizeof(uint32_t));
    faultinject::Injection first;
    ASSERT_TRUE(faultinject::lastInjection(&first));

    faultinject::armBitFlip("test.point", -1, 99);
    faultinject::corrupt("test.point", 0, b.data(), b.size(),
                         sizeof(uint32_t), sizeof(uint32_t));
    faultinject::Injection second;
    ASSERT_TRUE(faultinject::lastInjection(&second));

    EXPECT_EQ(first.elem, second.elem);
    EXPECT_EQ(first.byte, second.byte);
    EXPECT_EQ(first.bit, second.bit);
    EXPECT_EQ(a, b); // same flip, same result
    EXPECT_NE(a, (std::vector<uint32_t>{10u, 20u, 30u, 40u}));
}

TEST(FaultInjectTest, FiresOnceThenDisarms)
{
    std::vector<uint32_t> data = {1u, 2u, 3u};
    const uint64_t count0 = faultinject::injectionCount();

    faultinject::armBitFlip("test.once", -1, 5);
    EXPECT_TRUE(faultinject::pending());
    faultinject::corrupt("test.once", 0, data.data(), data.size(),
                         sizeof(uint32_t), sizeof(uint32_t));
    EXPECT_FALSE(faultinject::pending());
    EXPECT_EQ(faultinject::injectionCount(), count0 + 1);

    // A second execution of the point is a no-op.
    const std::vector<uint32_t> after = data;
    faultinject::corrupt("test.once", 0, data.data(), data.size(),
                         sizeof(uint32_t), sizeof(uint32_t));
    EXPECT_EQ(data, after);
    EXPECT_EQ(faultinject::injectionCount(), count0 + 1);
}

TEST(FaultInjectTest, PointAndIndexMustMatch)
{
    std::vector<uint32_t> data = {1u, 2u, 3u};
    const std::vector<uint32_t> orig = data;

    faultinject::armBitFlip("test.match", 7, 1);
    faultinject::corrupt("test.other", 7, data.data(), data.size(),
                         sizeof(uint32_t), sizeof(uint32_t));
    EXPECT_EQ(data, orig) << "wrong point must not fire";
    faultinject::corrupt("test.match", 3, data.data(), data.size(),
                         sizeof(uint32_t), sizeof(uint32_t));
    EXPECT_EQ(data, orig) << "wrong index must not fire";
    EXPECT_TRUE(faultinject::pending());

    faultinject::corrupt("test.match", 7, data.data(), data.size(),
                         sizeof(uint32_t), sizeof(uint32_t));
    EXPECT_NE(data, orig);
    EXPECT_FALSE(faultinject::pending());
    faultinject::disarm();
}

TEST(FaultInjectTest, TileEntryFlipsLandInSemanticBytes)
{
    // SemanticBytes<TileEntry> restricts flips to the first 8 bytes
    // (id + depth): padding is invisible to the digest and a multi-bit
    // bool is UB, so neither is a legitimate target.
    static_assert(faultinject::SemanticBytes<TileEntry>::value == 8);
    std::vector<std::vector<TileEntry>> tiles(3);
    tiles[1] = randomTable(32, 21);
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        faultinject::armBitFlip(kIntegrityBinTiles, -1, seed);
        faultinject::corruptTiles(kIntegrityBinTiles, tiles);
        faultinject::Injection inj;
        ASSERT_TRUE(faultinject::lastInjection(&inj));
        EXPECT_EQ(inj.index, 1) << "first non-empty tile";
        EXPECT_LT(inj.byte, 8u) << "seed " << seed;
    }
    faultinject::disarm();
}

// --- Mode parsing ------------------------------------------------------

TEST(IntegrityModeTest, ParseRecognizesModes)
{
    EXPECT_EQ(parseIntegrityMode("off"), IntegrityMode::Off);
    EXPECT_EQ(parseIntegrityMode("check"), IntegrityMode::Check);
    EXPECT_EQ(parseIntegrityMode("recover"), IntegrityMode::Recover);
    EXPECT_EQ(parseIntegrityMode("attest"), IntegrityMode::Attest);
    EXPECT_EQ(parseIntegrityMode(nullptr), IntegrityMode::Off);
    EXPECT_EQ(parseIntegrityMode(""), IntegrityMode::Off);
    EXPECT_EQ(parseIntegrityMode("paranoid"), IntegrityMode::Unset);
    EXPECT_STREQ(integrityModeName(IntegrityMode::Attest), "attest");
}

TEST(IntegrityModeTest, AttestDueFollowsPeriodAndModeGating)
{
    IntegrityContext ctx;
    ctx.configure(IntegrityMode::Attest);
    ctx.setAttestPeriod(3);
    EXPECT_TRUE(ctx.attestDue(0));
    EXPECT_FALSE(ctx.attestDue(1));
    EXPECT_FALSE(ctx.attestDue(2));
    EXPECT_TRUE(ctx.attestDue(3));
    EXPECT_TRUE(ctx.attestDue(6));

    ctx.setAttestPeriod(0); // clamps to every frame
    EXPECT_EQ(ctx.attestPeriod(), 1);
    EXPECT_TRUE(ctx.attestDue(5));

    // Only attest mode cross-renders, whatever the period says.
    ctx.configure(IntegrityMode::Check);
    EXPECT_FALSE(ctx.attestDue(0));
}

TEST(IntegrityModeTest, AttestPeriodEnvParseIsValidated)
{
    const char *saved = std::getenv("NEO_INTEGRITY_ATTEST_PERIOD");
    const std::string saved_copy = saved ? saved : "";

    unsetenv("NEO_INTEGRITY_ATTEST_PERIOD");
    EXPECT_EQ(integrityAttestPeriodFromEnv(), 4);

    setenv("NEO_INTEGRITY_ATTEST_PERIOD", "7", 1);
    EXPECT_EQ(integrityAttestPeriodFromEnv(), 7);

    // Malformed or non-positive values keep the default.
    setenv("NEO_INTEGRITY_ATTEST_PERIOD", "7x", 1);
    EXPECT_EQ(integrityAttestPeriodFromEnv(), 4);
    setenv("NEO_INTEGRITY_ATTEST_PERIOD", "0", 1);
    EXPECT_EQ(integrityAttestPeriodFromEnv(), 4);
    setenv("NEO_INTEGRITY_ATTEST_PERIOD", "-2", 1);
    EXPECT_EQ(integrityAttestPeriodFromEnv(), 4);

    if (saved)
        setenv("NEO_INTEGRITY_ATTEST_PERIOD", saved_copy.c_str(), 1);
    else
        unsetenv("NEO_INTEGRITY_ATTEST_PERIOD");
}

TEST(IntegrityModeTest, ResolveDefersToEnvironmentOnlyWhenUnset)
{
    const char *saved = std::getenv("NEO_INTEGRITY");
    const std::string saved_copy = saved ? saved : "";

    setenv("NEO_INTEGRITY", "check", 1);
    EXPECT_EQ(resolveIntegrityMode(IntegrityMode::Unset),
              IntegrityMode::Check);
    EXPECT_EQ(resolveIntegrityMode(IntegrityMode::Off), IntegrityMode::Off);
    EXPECT_EQ(resolveIntegrityMode(IntegrityMode::Recover),
              IntegrityMode::Recover);

    setenv("NEO_INTEGRITY", "bogus", 1);
    EXPECT_EQ(resolveIntegrityMode(IntegrityMode::Unset), IntegrityMode::Off);
    unsetenv("NEO_INTEGRITY");
    EXPECT_EQ(resolveIntegrityMode(IntegrityMode::Unset), IntegrityMode::Off);

    if (saved)
        setenv("NEO_INTEGRITY", saved_copy.c_str(), 1);
    else
        unsetenv("NEO_INTEGRITY");
}

TEST(IntegrityModeTest, MalformedEnvWarnsOnceThroughSharedRegistry)
{
    // Regression for the common/env migration: NEO_INTEGRITY parses via
    // envChoice, so an unrecognized value warns exactly once (shared
    // registry, re-armed by env::resetWarnings()) and keeps integrity
    // off rather than silently doing nothing.
    const char *saved = std::getenv("NEO_INTEGRITY");
    const std::string saved_copy = saved ? saved : "";

    env::resetWarnings();
    setenv("NEO_INTEGRITY", "paranoid", 1);
    EXPECT_EQ(integrityModeFromEnv(), IntegrityMode::Off);
    EXPECT_FALSE(env::shouldWarnOnce("NEO_INTEGRITY"))
        << "the first parse consumed the knob's single warning slot";
    EXPECT_EQ(integrityModeFromEnv(), IntegrityMode::Off);

    env::resetWarnings();
    EXPECT_TRUE(env::shouldWarnOnce("NEO_INTEGRITY"))
        << "resetWarnings must re-arm the diagnostic";

    if (saved)
        setenv("NEO_INTEGRITY", saved_copy.c_str(), 1);
    else
        unsetenv("NEO_INTEGRITY");
    env::resetWarnings();
}

// --- IntegrityContext seal/verify/restore ------------------------------

std::vector<std::vector<TileEntry>>
sampleTiles()
{
    std::vector<std::vector<TileEntry>> tiles(4);
    tiles[0] = randomTable(8, 31);
    tiles[2] = randomTable(40, 32);
    tiles[3] = randomTable(3, 33);
    return tiles;
}

TEST(IntegrityContextTest, CleanVerifyPassesAndCountsOneCheck)
{
    IntegrityContext ctx;
    ctx.configure(IntegrityMode::Check);
    ctx.beginFrame(0);
    auto tiles = sampleTiles();
    ctx.sealTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles);
    EXPECT_TRUE(
        ctx.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles));
    IntegrityFrameStats stats;
    ctx.exportStats(stats);
    EXPECT_EQ(stats.mode, IntegrityMode::Check);
    EXPECT_EQ(stats.checks, 1u);
    EXPECT_EQ(stats.faults, 0u);
    EXPECT_FALSE(stats.frame_recovered);
}

TEST(IntegrityContextTest, CheckModeReportsTileAndKeepsData)
{
    IntegrityContext ctx;
    ctx.configure(IntegrityMode::Check);
    ctx.beginFrame(5);
    auto tiles = sampleTiles();
    ctx.sealTiles(IntegrityStage::Sorting, kIntegritySortTables, tiles);

    tiles[2][10].id ^= 1u << 4;
    const uint32_t corrupted_id = tiles[2][10].id;
    EXPECT_FALSE(ctx.verifyTiles(IntegrityStage::Sorting,
                                 kIntegritySortTables, tiles));

    IntegrityFrameStats stats;
    ctx.exportStats(stats);
    ASSERT_EQ(stats.faults, 1u);
    const FaultReport &r = stats.reports[0];
    EXPECT_EQ(r.stage, IntegrityStage::Sorting);
    EXPECT_STREQ(r.structure, kIntegritySortTables);
    EXPECT_EQ(r.frame_index, 5u);
    EXPECT_EQ(r.tile, 2);
    EXPECT_NE(r.expected_digest, r.actual_digest);
    EXPECT_FALSE(r.recovered);
    // Check mode observes; it does not mutate the data.
    EXPECT_EQ(tiles[2][10].id, corrupted_id);
}

TEST(IntegrityContextTest, RecoverModeRestoresFromShadow)
{
    IntegrityContext ctx;
    ctx.configure(IntegrityMode::Recover);
    ctx.beginFrame(0);
    auto tiles = sampleTiles();
    const auto original = tiles;
    ctx.sealTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles);

    tiles[2][10].id ^= 1u << 4;
    tiles[0][1].depth += 1.0f;
    EXPECT_FALSE(
        ctx.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles));

    // Both faulted tiles restored bit-identically from the shadow copy.
    for (size_t t = 0; t < tiles.size(); ++t) {
        ASSERT_EQ(tiles[t].size(), original[t].size());
        EXPECT_EQ(digestSpan(tiles[t].data(), tiles[t].size()),
                  digestSpan(original[t].data(), original[t].size()))
            << "tile " << t;
    }
    IntegrityFrameStats stats;
    ctx.exportStats(stats);
    EXPECT_EQ(stats.faults, 2u);
    for (const FaultReport &r : stats.reports)
        EXPECT_TRUE(r.recovered);
    // Restored data passes a re-verify.
    EXPECT_TRUE(
        ctx.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles));
}

TEST(IntegrityContextTest, ReshapedStructurePassesVacuously)
{
    IntegrityContext ctx;
    ctx.configure(IntegrityMode::Check);
    ctx.beginFrame(0);
    auto tiles = sampleTiles();
    ctx.sealTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles);
    tiles.resize(2); // legal reshape: reset / resolution change
    EXPECT_TRUE(
        ctx.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles));
    IntegrityFrameStats stats;
    ctx.exportStats(stats);
    EXPECT_EQ(stats.faults, 0u);
}

TEST(IntegrityContextTest, ForgottenSealPassesVacuously)
{
    IntegrityContext ctx;
    ctx.configure(IntegrityMode::Check);
    ctx.beginFrame(0);
    auto tiles = sampleTiles();
    ctx.sealTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles);
    ctx.forgetSeals();
    tiles[2][10].id ^= 1u;
    EXPECT_TRUE(
        ctx.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles));
}

TEST(IntegrityContextTest, OffModeDoesNothing)
{
    IntegrityContext ctx;
    ctx.configure(IntegrityMode::Off);
    EXPECT_FALSE(ctx.enabled());
    ctx.beginFrame(0);
    auto tiles = sampleTiles();
    ctx.sealTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles);
    tiles[2][10].id ^= 1u;
    EXPECT_TRUE(
        ctx.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles));
    IntegrityFrameStats stats;
    ctx.exportStats(stats);
    EXPECT_EQ(stats.checks, 0u);
    EXPECT_EQ(stats.faults, 0u);
}

TEST(IntegrityContextTest, FaultHandlerSeesEveryFault)
{
    IntegrityContext ctx;
    ctx.configure(IntegrityMode::Check);
    ctx.beginFrame(9);
    std::vector<FaultReport> seen;
    ctx.setFaultHandler([&](const FaultReport &r) { seen.push_back(r); });
    auto tiles = sampleTiles();
    ctx.sealTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles);
    tiles[0][0].id ^= 1u;
    tiles[3][2].id ^= 1u << 8;
    ctx.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles, tiles);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].tile, 0);
    EXPECT_EQ(seen[1].tile, 3);
    EXPECT_EQ(seen[0].frame_index, 9u);
}

// --- End-to-end injection matrix ---------------------------------------

const GaussianScene &
integrityScene()
{
    static const GaussianScene scene = tinySyntheticScene(1500, 77);
    return scene;
}

PipelineOptions
integrityOpts(int threads, bool reference, IntegrityMode mode)
{
    PipelineOptions opts = NeoRenderer::neoDefaultOptions();
    opts.threads = threads;
    opts.raster.reference_path = reference;
    opts.integrity = mode;
    return opts;
}

constexpr int kMatrixFrames = 3;

/** Frame hashes of the uncorrupted sequence (determinism contract:
    identical at every thread count and for both raster kernels). */
const std::vector<uint64_t> &
cleanFrameHashes()
{
    static const std::vector<uint64_t> hashes = [] {
        const GaussianScene &scene = integrityScene();
        Trajectory traj(TrajectoryKind::Orbit, scene);
        NeoRenderer r(integrityOpts(1, false, IntegrityMode::Off));
        std::vector<uint64_t> h;
        for (int f = 0; f < kMatrixFrames; ++f) {
            Image img = r.renderFrame(
                scene, traj.cameraAt(f, smallRes()), f);
            h.push_back(img.contentHash());
        }
        return h;
    }();
    return hashes;
}

struct MatrixConfig
{
    int threads;
    bool reference;
    IntegrityMode mode;
};

std::vector<MatrixConfig>
matrixConfigs(bool include_reference_kernel)
{
    std::vector<MatrixConfig> configs;
    for (int threads : {1, 2, 8})
        for (int ref = 0; ref <= (include_reference_kernel ? 1 : 0); ++ref)
            for (IntegrityMode mode :
                 {IntegrityMode::Check, IntegrityMode::Recover})
                configs.push_back({threads, ref != 0, mode});
    return configs;
}

std::string
configName(const MatrixConfig &c)
{
    return std::string("threads=") + std::to_string(c.threads) +
           (c.reference ? " kernel=reference" : " kernel=blocked") +
           " mode=" + integrityModeName(c.mode);
}

/**
 * Run the shared matrix body for a structure whose flip is injected
 * before frame 1 and detected at @p detect_frame: renders the sequence,
 * asserts the flip fired exactly once, was reported at the expected
 * stage/structure on the detection frame and nowhere else, and that
 * recover mode delivers the uncorrupted frame hash on every frame.
 */
void
runInjectionMatrix(const char *structure, IntegrityStage stage,
                   int detect_frame, bool include_reference_kernel,
                   bool check_hash_on_detect_frame, int64_t inject_index,
                   uint64_t seed)
{
    const GaussianScene &scene = integrityScene();
    Trajectory traj(TrajectoryKind::Orbit, scene);
    const std::vector<uint64_t> &clean = cleanFrameHashes();

    for (const MatrixConfig &c : matrixConfigs(include_reference_kernel)) {
        SCOPED_TRACE(std::string(structure) + " " + configName(c));
        NeoRenderer renderer(integrityOpts(c.threads, c.reference, c.mode));
        Image img;
        NeoFrameReport report;

        const uint64_t count0 = faultinject::injectionCount();
        for (int f = 0; f < kMatrixFrames; ++f) {
            if (f == 1)
                faultinject::armBitFlip(structure, inject_index, seed);
            renderer.renderFrameInto(img, scene,
                                     traj.cameraAt(f, smallRes()),
                                     static_cast<uint64_t>(f), &report);
            const IntegrityFrameStats &stats = report.frame.integrity;
            EXPECT_EQ(stats.mode, c.mode);
            if (f >= 1) {
                EXPECT_EQ(faultinject::injectionCount(), count0 + 1)
                    << "frame " << f << ": the armed flip must fire "
                    << "exactly once, in frame 1's injection window";
            }

            if (f == detect_frame) {
                ASSERT_EQ(stats.faults, 1u) << "frame " << f;
                const FaultReport &r = stats.reports[0];
                EXPECT_EQ(r.stage, stage);
                EXPECT_STREQ(r.structure, structure);
                EXPECT_EQ(r.frame_index, static_cast<uint64_t>(f));
                EXPECT_GE(r.tile, 0);
                if (c.mode == IntegrityMode::Recover) {
                    EXPECT_TRUE(r.recovered);
                    EXPECT_TRUE(stats.frame_recovered);
                }
            } else {
                EXPECT_EQ(stats.faults, 0u)
                    << "frame " << f << ": no fault outside the "
                    << "detection frame (stale seals must not re-report)";
            }
            EXPECT_GT(stats.checks, 0u) << "frame " << f;

            // Recover mode's contract: every delivered frame is
            // bit-identical to the uncorrupted reference. Before the
            // detection frame the corruption is invisible either way.
            if (c.mode == IntegrityMode::Recover || f < detect_frame ||
                (f == detect_frame && check_hash_on_detect_frame &&
                 c.mode == IntegrityMode::Check)) {
                EXPECT_EQ(img.contentHash(), clean[static_cast<size_t>(f)])
                    << "frame " << f;
            }
        }
        faultinject::disarm();
    }
}

TEST(IntegrityInjectionMatrix, BinTilesFlipDetectedAtBinningFence)
{
    runInjectionMatrix(kIntegrityBinTiles, IntegrityStage::Binning,
                       /*detect_frame=*/1,
                       /*include_reference_kernel=*/true,
                       /*check_hash_on_detect_frame=*/false,
                       /*inject_index=*/-1, /*seed=*/101);
}

TEST(IntegrityInjectionMatrix, SortTablesFlipDetectedAtSortingFence)
{
    runInjectionMatrix(kIntegritySortTables, IntegrityStage::Sorting,
                       /*detect_frame=*/1,
                       /*include_reference_kernel=*/true,
                       /*check_hash_on_detect_frame=*/false,
                       /*inject_index=*/-1, /*seed=*/202);
}

TEST(IntegrityInjectionMatrix, SortTablesFlipInsideFusedBatchDetected)
{
    // The sort stage now dispatches small tiles in fused cross-tile
    // batches (gs/tile_sort.h): runs of tiny tables share one parallel
    // invocation instead of getting a chunk each. The sort.tables fence
    // must still attribute a flip landing in one of those fused tiles.
    // Pin the flip to an explicit tile index — the fused dispatch runs
    // inside a parallel region, where "first execution wins" would race
    // between workers, while a pinned (point, tile) lands identically at
    // any thread count.
    const GaussianScene &scene = integrityScene();
    Trajectory traj(TrajectoryKind::Orbit, scene);

    // Probe frame 1's tile sizes, recompute the weighted batch packing
    // the sorter uses, and pick a non-empty tile from a batch that fused
    // at least two tiles.
    int64_t fused_tile = -1;
    {
        NeoRenderer probe(integrityOpts(1, false, IntegrityMode::Off));
        Image img;
        for (int f = 0; f <= 1; ++f)
            probe.renderFrameInto(img, scene,
                                  traj.cameraAt(f, smallRes()),
                                  static_cast<uint64_t>(f));
        const auto &tiles = probe.lastBinnedFrame().tiles;
        std::vector<ParallelRange> batches;
        buildWeightedBatchesInto(
            batches, tiles.size(), kSortBatchGrain,
            [&](size_t t) { return tiles[t].size(); });
        for (const ParallelRange &b : batches) {
            if (b.size() < 2)
                continue;
            for (size_t t = b.begin; t < b.end; ++t)
                if (!tiles[t].empty()) {
                    fused_tile = static_cast<int64_t>(t);
                    break;
                }
            if (fused_tile >= 0)
                break;
        }
        ASSERT_GE(fused_tile, 0)
            << "frame 1 packs no multi-tile sort batch with a non-empty "
            << "tile; the fused-batch injection case needs one";
        ASSERT_LT(tiles[static_cast<size_t>(fused_tile)].size(),
                  kSortBatchGrain);
    }

    runInjectionMatrix(kIntegritySortTables, IntegrityStage::Sorting,
                       /*detect_frame=*/1,
                       /*include_reference_kernel=*/true,
                       /*check_hash_on_detect_frame=*/false,
                       /*inject_index=*/fused_tile, /*seed=*/505);

    // The flip really landed in the pinned fused tile.
    faultinject::Injection last;
    ASSERT_TRUE(faultinject::lastInjection(&last));
    EXPECT_EQ(last.point, kIntegritySortTables);
    EXPECT_EQ(last.index, fused_tile);
}

TEST(IntegrityInjectionMatrix, TrackerPrevIdsFlipDetectedNextFrame)
{
    // The tracker fence spans the inter-frame window: the flip lands in
    // frame 1's seal window (after observe adopts the new membership) and
    // the consumer fence at frame 2's observe entry detects it.
    runInjectionMatrix(kIntegrityTrackerPrevIds, IntegrityStage::Tracking,
                       /*detect_frame=*/2,
                       /*include_reference_kernel=*/true,
                       /*check_hash_on_detect_frame=*/false,
                       /*inject_index=*/-1, /*seed=*/303);
}

TEST(IntegrityInjectionMatrix, RasterCsrFlipFallsBackBitIdentically)
{
    // The CSR bounds exist only inside the blocked kernel, so the
    // reference-kernel column is vacuous and skipped. A corrupted CSR is
    // never consumed: the fence fires before any pixel write and the tile
    // falls back to the reference blend, so even *check* mode delivers
    // the bit-identical frame. Inject into a specific tile: under
    // parallel raster "first execution wins" would race, a pinned
    // (point, tile) lands identically at any thread count.
    const GaussianScene &scene = integrityScene();
    Trajectory traj(TrajectoryKind::Orbit, scene);

    // Probe: the busiest tile of frame 1 (deterministic across configs).
    int64_t target_tile = -1;
    {
        NeoRenderer probe(integrityOpts(1, false, IntegrityMode::Off));
        Image img;
        for (int f = 0; f <= 1; ++f)
            probe.renderFrameInto(img, scene,
                                  traj.cameraAt(f, smallRes()),
                                  static_cast<uint64_t>(f));
        const auto &tiles = probe.lastBinnedFrame().tiles;
        size_t best = 0;
        for (size_t t = 0; t < tiles.size(); ++t)
            if (tiles[t].size() > best) {
                best = tiles[t].size();
                target_tile = static_cast<int64_t>(t);
            }
    }
    ASSERT_GE(target_tile, 0) << "probe found no non-empty tile";

    runInjectionMatrix(kIntegrityRasterCsr, IntegrityStage::Raster,
                       /*detect_frame=*/1,
                       /*include_reference_kernel=*/false,
                       /*check_hash_on_detect_frame=*/true,
                       /*inject_index=*/target_tile, /*seed=*/404);
}

TEST(IntegrityInjectionMatrix, CleanRunReportsNoFaults)
{
    const GaussianScene &scene = integrityScene();
    Trajectory traj(TrajectoryKind::Orbit, scene);
    const std::vector<uint64_t> &clean = cleanFrameHashes();

    for (IntegrityMode mode :
         {IntegrityMode::Check, IntegrityMode::Recover}) {
        SCOPED_TRACE(integrityModeName(mode));
        NeoRenderer renderer(integrityOpts(2, false, mode));
        Image img;
        NeoFrameReport report;
        for (int f = 0; f < kMatrixFrames; ++f) {
            renderer.renderFrameInto(img, scene,
                                     traj.cameraAt(f, smallRes()),
                                     static_cast<uint64_t>(f), &report);
            EXPECT_EQ(report.frame.integrity.faults, 0u) << "frame " << f;
            EXPECT_GT(report.frame.integrity.checks, 0u) << "frame " << f;
            EXPECT_FALSE(report.frame.integrity.frame_recovered);
            EXPECT_EQ(img.contentHash(), clean[static_cast<size_t>(f)])
                << "frame " << f << ": fences must not perturb output";
        }
    }
}

TEST(IntegrityInjectionMatrix, FaultHandlerFiresOnInjectedFlip)
{
    const GaussianScene &scene = integrityScene();
    Trajectory traj(TrajectoryKind::Orbit, scene);

    NeoRenderer renderer(integrityOpts(1, false, IntegrityMode::Check));
    std::vector<FaultReport> seen;
    renderer.setFaultHandler(
        [&](const FaultReport &r) { seen.push_back(r); });

    Image img;
    renderer.renderFrameInto(img, scene, traj.cameraAt(0, smallRes()), 0);
    EXPECT_TRUE(seen.empty());
    faultinject::armBitFlip(kIntegrityBinTiles, -1, 11);
    renderer.renderFrameInto(img, scene, traj.cameraAt(1, smallRes()), 1);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].stage, IntegrityStage::Binning);
    EXPECT_STREQ(seen[0].structure, kIntegrityBinTiles);
    faultinject::disarm();
}

TEST(IntegrityInjectionMatrix, OffModeRunsNoChecksAndIgnoresArmedFlips)
{
    // With integrity off nothing calls the injection points either, so an
    // armed flip stays pending — the hook costs one atomic load and the
    // output is untouched.
    const GaussianScene &scene = integrityScene();
    Trajectory traj(TrajectoryKind::Orbit, scene);
    const std::vector<uint64_t> &clean = cleanFrameHashes();

    NeoRenderer renderer(integrityOpts(1, false, IntegrityMode::Off));
    EXPECT_EQ(renderer.integrityMode(), IntegrityMode::Off);
    Image img;
    NeoFrameReport report;
    const uint64_t count0 = faultinject::injectionCount();
    faultinject::armBitFlip(kIntegrityBinTiles, -1, 1);
    for (int f = 0; f < kMatrixFrames; ++f) {
        renderer.renderFrameInto(img, scene, traj.cameraAt(f, smallRes()),
                                 static_cast<uint64_t>(f), &report);
        EXPECT_EQ(report.frame.integrity.checks, 0u);
        EXPECT_EQ(img.contentHash(), clean[static_cast<size_t>(f)]);
    }
    EXPECT_EQ(faultinject::injectionCount(), count0);
    EXPECT_TRUE(faultinject::pending());
    faultinject::disarm();
}

// --- Projection span fences --------------------------------------------

/**
 * Span-fence variant of runInjectionMatrix: the projected feature SoA
 * arrays are sealed as flat spans, so a detected fault is frame-global
 * (tile == -1) rather than per-tile — the shared matrix body's
 * EXPECT_GE(tile, 0) cannot be reused. The flip is injected before
 * frame 1 and must be detected at frame 1's consumer fence; recover mode
 * restores the span before the sorter consumes it, so every delivered
 * frame hash stays clean.
 */
void
runSpanInjectionMatrix(const char *structure, uint64_t seed)
{
    const GaussianScene &scene = integrityScene();
    Trajectory traj(TrajectoryKind::Orbit, scene);
    const std::vector<uint64_t> &clean = cleanFrameHashes();

    for (const MatrixConfig &c : matrixConfigs(false)) {
        SCOPED_TRACE(std::string(structure) + " " + configName(c));
        NeoRenderer renderer(integrityOpts(c.threads, c.reference, c.mode));
        Image img;
        NeoFrameReport report;

        const uint64_t count0 = faultinject::injectionCount();
        for (int f = 0; f < kMatrixFrames; ++f) {
            if (f == 1)
                faultinject::armBitFlip(structure, -1, seed);
            renderer.renderFrameInto(img, scene,
                                     traj.cameraAt(f, smallRes()),
                                     static_cast<uint64_t>(f), &report);
            const IntegrityFrameStats &stats = report.frame.integrity;
            if (f >= 1) {
                EXPECT_EQ(faultinject::injectionCount(), count0 + 1)
                    << "frame " << f;
            }

            if (f == 1) {
                ASSERT_EQ(stats.faults, 1u);
                const FaultReport &r = stats.reports[0];
                EXPECT_EQ(r.stage, IntegrityStage::Projection);
                EXPECT_STREQ(r.structure, structure);
                EXPECT_EQ(r.frame_index, 1u);
                EXPECT_EQ(r.tile, -1) << "span faults are frame-global";
                EXPECT_NE(r.expected_digest, r.actual_digest);
                EXPECT_EQ(r.recovered, c.mode == IntegrityMode::Recover);
            } else {
                EXPECT_EQ(stats.faults, 0u) << "frame " << f;
            }

            // The projection arrays are rebuilt every frame, so in
            // recover mode (span restored before any consumer ran) the
            // delivered hash is clean on every frame; in check mode only
            // until the corrupted span is consumed.
            if (c.mode == IntegrityMode::Recover || f < 1) {
                EXPECT_EQ(img.contentHash(), clean[static_cast<size_t>(f)])
                    << "frame " << f;
            }
        }
        faultinject::disarm();
    }
}

TEST(IntegrityInjectionMatrix, ProjectionMean2dSpanFlipDetected)
{
    runSpanInjectionMatrix(kIntegrityProjMean2d, 601);
}

TEST(IntegrityInjectionMatrix, ProjectionRadiusSpanFlipDetected)
{
    runSpanInjectionMatrix(kIntegrityProjRadius, 602);
}

TEST(IntegrityInjectionMatrix, ProjectionDepthSpanFlipDetected)
{
    runSpanInjectionMatrix(kIntegrityProjDepth, 603);
}

TEST(IntegrityInjectionMatrix, ProjectionConicSpanFlipDetected)
{
    runSpanInjectionMatrix(kIntegrityProjConic, 604);
}

// --- Attest mode -------------------------------------------------------

TEST(IntegrityAttestTest, CleanAttestFramesAreNonPerturbing)
{
    const GaussianScene &scene = integrityScene();
    Trajectory traj(TrajectoryKind::Orbit, scene);
    const std::vector<uint64_t> &clean = cleanFrameHashes();

    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        NeoRenderer renderer(
            integrityOpts(threads, false, IntegrityMode::Attest));
        EXPECT_EQ(renderer.integrityMode(), IntegrityMode::Attest);
        Image img;
        NeoFrameReport report;
        for (int f = 0; f < kMatrixFrames; ++f) {
            renderer.renderFrameInto(img, scene,
                                     traj.cameraAt(f, smallRes()),
                                     static_cast<uint64_t>(f), &report);
            EXPECT_EQ(report.frame.integrity.mode, IntegrityMode::Attest);
            EXPECT_EQ(report.frame.integrity.faults, 0u) << "frame " << f;
            EXPECT_GT(report.frame.integrity.checks, 0u) << "frame " << f;
            EXPECT_EQ(img.contentHash(), clean[static_cast<size_t>(f)])
                << "frame " << f
                << ": the cross-render must not perturb the output";
        }
    }
}

TEST(IntegrityAttestTest, CorruptedFrameCaughtByCrossRender)
{
    const GaussianScene &scene = integrityScene();
    Trajectory traj(TrajectoryKind::Orbit, scene);
    const std::vector<uint64_t> &clean = cleanFrameHashes();

    NeoRenderer renderer(integrityOpts(2, false, IntegrityMode::Attest));
    Image img;
    NeoFrameReport report;

    // Frame 0 is attest-due (0 % period == 0): a flip in the delivered
    // pixels is invisible to every structural fence but caught by the
    // end-to-end reference cross-render.
    faultinject::armBitFlip(kIntegrityAttestFrame, -1, 777);
    renderer.renderFrameInto(img, scene, traj.cameraAt(0, smallRes()), 0,
                             &report);
    ASSERT_EQ(report.frame.integrity.faults, 1u);
    const FaultReport &r = report.frame.integrity.reports[0];
    EXPECT_EQ(r.stage, IntegrityStage::Attestation);
    EXPECT_STREQ(r.structure, kIntegrityAttestFrame);
    EXPECT_EQ(r.tile, -1);
    EXPECT_FALSE(r.recovered) << "attest is detection-only";
    EXPECT_FALSE(report.frame.integrity.frame_recovered);
    EXPECT_NE(img.contentHash(), clean[0])
        << "the corrupted frame is delivered as-is";

    // The next frame is not attest-due: an armed pixel flip has no
    // injection point to fire at and stays pending.
    const uint64_t count0 = faultinject::injectionCount();
    faultinject::armBitFlip(kIntegrityAttestFrame, -1, 778);
    renderer.renderFrameInto(img, scene, traj.cameraAt(1, smallRes()), 1,
                             &report);
    EXPECT_EQ(report.frame.integrity.faults, 0u);
    EXPECT_EQ(faultinject::injectionCount(), count0);
    EXPECT_TRUE(faultinject::pending());
    EXPECT_EQ(img.contentHash(), clean[1]);
    faultinject::disarm();
}

} // namespace
} // namespace neo::test
