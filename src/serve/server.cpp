#include "serve/server.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace neo::serve
{

NeoServer::NeoServer(std::shared_ptr<const GaussianScene> scene,
                     ServerConfig cfg)
    : cfg_(std::move(cfg)),
      scene_(std::move(scene)),
      shared_(std::make_shared<const RendererShared>(cfg_.pipeline))
{
}

AdmitResult
NeoServer::open(const Trajectory &trajectory, Resolution resolution)
{
    return open(trajectory, resolution, cfg_.default_qos);
}

AdmitResult
NeoServer::open(const Trajectory &trajectory, Resolution resolution,
                const QosTarget &qos)
{
    AdmitResult r;
    std::lock_guard<std::mutex> lock(mutex_);

    size_t live = 0;
    for (const auto &s : sessions_)
        live += s != nullptr;
    if (live >= cfg_.max_sessions) {
        r.reason = "server full";
        return r;
    }

    // Reuse the lowest freed slot so ids stay small and stable.
    size_t slot = sessions_.size();
    for (size_t i = 0; i < sessions_.size(); ++i) {
        if (!sessions_[i]) {
            slot = i;
            break;
        }
    }
    if (slot == sessions_.size())
        sessions_.emplace_back();

    sessions_[slot] = std::make_unique<Session>(
        static_cast<uint32_t>(slot), scene_, shared_, trajectory,
        resolution, qos, cfg_);
    r.admitted = true;
    r.session_id = static_cast<uint32_t>(slot);

    if (durability_) {
        sessions_[slot]->setDurability(durability_.get());
        SessionOpenParams open;
        open.trajectory_kind =
            static_cast<uint8_t>(trajectory.kind());
        open.center = trajectory.center();
        open.radius = trajectory.radius();
        open.speed = trajectory.speed();
        open.width = resolution.width;
        open.height = resolution.height;
        open.qos = qos;
        durability_->recordOpen(r.session_id, open);
    }
    return r;
}

bool
NeoServer::close(uint32_t session_id)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (session_id >= sessions_.size() || !sessions_[session_id])
            return false;
        sessions_[session_id].reset();
    }
    if (durability_)
        durability_->recordClose(session_id);
    return true;
}

Session *
NeoServer::session(uint32_t session_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (session_id >= sessions_.size())
        return nullptr;
    return sessions_[session_id].get();
}

size_t
NeoServer::liveSessions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t live = 0;
    for (const auto &s : sessions_)
        live += s != nullptr;
    return live;
}

std::vector<Session *>
NeoServer::liveSnapshot() const
{
    std::vector<Session *> live;
    std::lock_guard<std::mutex> lock(mutex_);
    live.reserve(sessions_.size());
    for (const auto &s : sessions_) {
        if (s)
            live.push_back(s.get());
    }
    return live;
}

size_t
NeoServer::pump()
{
    size_t processed = 0;
    for (Session *s : liveSnapshot())
        processed += s->step();
    return processed;
}

size_t
NeoServer::drain()
{
    size_t processed = 0;
    // Round-robin rather than per-session drain: under overload no
    // session starves behind a sibling's deep queue.
    while (true) {
        const size_t round = pump();
        if (round == 0)
            return processed;
        processed += round;
    }
}

// --- Durable serving mode ----------------------------------------------

Session *
NeoServer::placeSessionAt(uint32_t id, const SessionOpenParams &open)
{
    Trajectory trajectory(
        static_cast<TrajectoryKind>(open.trajectory_kind), open.center,
        open.radius, open.speed);
    Resolution resolution;
    resolution.width = open.width;
    resolution.height = open.height;
    resolution.name = "durable";

    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() <= id)
        sessions_.resize(id + 1);
    sessions_[id] = std::make_unique<Session>(id, scene_, shared_,
                                              trajectory, resolution,
                                              open.qos, cfg_);
    if (durability_)
        sessions_[id]->setDurability(durability_.get());
    return sessions_[id].get();
}

void
NeoServer::replayRecord(const durable::JournalRecord &rec)
{
    switch (rec.type) {
    case durable::JournalRecordType::Open:
        placeSessionAt(rec.session_id, rec.open);
        break;
    case durable::JournalRecordType::Submit: {
        // Step-on-submit, exactly as the socket front end drives live
        // traffic — the wire path's queue depth is always zero, so
        // submit-then-step replays it faithfully and deterministically.
        Session *s = session(rec.session_id);
        if (!s) {
            warn("durable: replayed submit for dead session %u",
                 rec.session_id);
            break;
        }
        s->submit(rec.frame_index);
        s->step();
        break;
    }
    case durable::JournalRecordType::Close:
        close(rec.session_id);
        break;
    }
}

bool
NeoServer::enableDurability(const durable::DurableConfig &dcfg)
{
    auto mgr = std::make_unique<durable::DurabilityManager>(dcfg);
    std::string err;
    if (!mgr->init(&err)) {
        warn("durable: disabled: %s", err.c_str());
        return false;
    }
    durability_ = std::move(mgr);
    durable::RecoveryStatus &status = durability_->status();

    // Newest verified snapshot generation wins; every corrupt one is
    // detected by its typed loader error and skipped, never loaded.
    durable::ServerSnapshot snap;
    bool have_snapshot = false;
    for (const durable::SnapshotFile &f :
         durable::listSnapshots(dcfg.state_dir)) {
        durable::ServerSnapshot candidate;
        const durable::SnapshotError e =
            durable::loadSnapshotFile(f.path, &candidate);
        if (e == durable::SnapshotError::Ok) {
            snap = std::move(candidate);
            have_snapshot = true;
            break;
        }
        warn("durable: snapshot %s refused (%s); falling back a "
             "generation",
             f.path.c_str(), durable::snapshotErrorName(e));
        ++status.generations_skipped;
    }

    if (have_snapshot) {
        for (SessionDurable &d : snap.sessions) {
            Session *s = placeSessionAt(d.id, d.open);
            s->restoreDurable(std::move(d));
        }
        status.snapshot_seq = snap.meta.seq;
        status.sessions_restored =
            static_cast<uint32_t>(snap.sessions.size());
    }

    // Replay coordinates: a snapshot replays its journal suffix only
    // under a matching epoch; with no loadable snapshot, only an epoch-0
    // journal (never compacted, i.e. the full history) can be replayed
    // from the top against the empty state.
    durable::Journal &journal = durability_->journal();
    uint64_t replay_from = 0;
    bool do_replay = false;
    if (have_snapshot &&
        journal.epoch() == snap.meta.journal_epoch) {
        replay_from = snap.meta.journal_offset;
        do_replay = true;
    } else if (!have_snapshot && journal.epoch() == 0) {
        replay_from = durable::kJournalHeaderSize;
        do_replay = true;
    } else if (have_snapshot) {
        warn("durable: journal epoch %llu does not pair with snapshot "
             "epoch %llu; replaying nothing",
             static_cast<unsigned long long>(journal.epoch()),
             static_cast<unsigned long long>(snap.meta.journal_epoch));
    } else if (journal.epoch() != 0) {
        warn("durable: no loadable snapshot and the journal was "
             "compacted (epoch %llu); cold start",
             static_cast<unsigned long long>(journal.epoch()));
    }

    if (do_replay) {
        std::vector<durable::JournalRecord> records;
        if (journal.replay(replay_from, &records)) {
            uint64_t submits = 0;
            durability_->setReplaying(true);
            for (const durable::JournalRecord &rec : records) {
                replayRecord(rec);
                submits +=
                    rec.type == durable::JournalRecordType::Submit;
            }
            durability_->setReplaying(false);
            status.journal_replayed = records.size();
            durability_->noteReplayed(submits);
        } else {
            warn("durable: journal read failed; replaying nothing");
        }
    }

    status.recovered =
        status.sessions_restored > 0 || status.journal_replayed > 0;

    // Fold what recovery rebuilt into a fresh compacted baseline: after
    // this, a restart restores the new snapshot and replays nothing.
    if (!checkpointCompact())
        warn("durable: post-recovery compacting checkpoint failed");
    return true;
}

const durable::RecoveryStatus &
NeoServer::recovery() const
{
    static const durable::RecoveryStatus kNotDurable;
    return durability_ ? durability_->status() : kNotDurable;
}

void
NeoServer::exportSnapshot(durable::ServerSnapshot &snap)
{
    snap.sessions.clear();
    for (Session *s : liveSnapshot()) {
        snap.sessions.emplace_back();
        s->exportDurable(snap.sessions.back());
    }
}

bool
NeoServer::checkpointNow()
{
    if (!durability_)
        return false;
    durable::ServerSnapshot snap;
    exportSnapshot(snap);
    // Sync first so the offset the snapshot claims is actually durable:
    // the snapshot must never promise journal bytes the disk lost.
    durable::Journal &journal = durability_->journal();
    journal.sync();
    snap.meta.seq = durability_->allocSeq();
    snap.meta.journal_epoch = journal.epoch();
    snap.meta.journal_offset = journal.endOffset();
    snap.meta.frames_journaled = durability_->framesJournaled();
    std::string err;
    if (!durability_->writeSnapshot(snap, &err)) {
        warn("durable: checkpoint failed: %s", err.c_str());
        return false;
    }
    return true;
}

bool
NeoServer::maybeCheckpoint()
{
    if (!durability_ || !durability_->checkpointDue())
        return false;
    return checkpointNow();
}

bool
NeoServer::checkpointCompact()
{
    if (!durability_)
        return false;
    durable::ServerSnapshot snap;
    exportSnapshot(snap);
    const uint64_t seq = durability_->allocSeq();
    snap.meta.seq = seq;
    // Crash-ordering: the snapshot lands first, carrying the *new*
    // epoch; the journal truncation follows. Dying between the two
    // leaves a snapshot whose epoch the journal doesn't carry — replay
    // nothing, which is correct because this snapshot was cut at
    // quiescence — and the older generations still pair with the
    // untruncated journal.
    snap.meta.journal_epoch = seq;
    snap.meta.journal_offset = durable::kJournalHeaderSize;
    snap.meta.frames_journaled = 0;
    std::string err;
    if (!durability_->writeSnapshot(snap, &err)) {
        warn("durable: compacting checkpoint failed: %s", err.c_str());
        return false;
    }
    if (!durability_->compactJournal(seq)) {
        warn("durable: journal compaction failed");
        return false;
    }
    return true;
}

size_t
NeoServer::drainConcurrent(int drivers)
{
    if (drivers <= 1)
        return drain();

    const std::vector<Session *> live = liveSnapshot();
    const size_t n =
        std::min<size_t>(static_cast<size_t>(drivers), live.size());
    if (n <= 1)
        return drain();

    // Partition by index: session i belongs to driver i % n, so no
    // session is ever driven by two threads (single-driver contract).
    std::vector<size_t> processed(n, 0);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t d = 0; d < n; ++d) {
        threads.emplace_back([&, d] {
            size_t local = 0;
            for (size_t i = d; i < live.size(); i += n)
                local += live[i]->drain();
            processed[d] = local;
        });
    }
    size_t total = 0;
    for (size_t d = 0; d < n; ++d) {
        threads[d].join();
        total += processed[d];
    }
    return total;
}

} // namespace neo::serve
