#include "serve/server.h"

#include <algorithm>
#include <thread>

namespace neo::serve
{

NeoServer::NeoServer(std::shared_ptr<const GaussianScene> scene,
                     ServerConfig cfg)
    : cfg_(std::move(cfg)),
      scene_(std::move(scene)),
      shared_(std::make_shared<const RendererShared>(cfg_.pipeline))
{
}

AdmitResult
NeoServer::open(const Trajectory &trajectory, Resolution resolution)
{
    return open(trajectory, resolution, cfg_.default_qos);
}

AdmitResult
NeoServer::open(const Trajectory &trajectory, Resolution resolution,
                const QosTarget &qos)
{
    AdmitResult r;
    std::lock_guard<std::mutex> lock(mutex_);

    size_t live = 0;
    for (const auto &s : sessions_)
        live += s != nullptr;
    if (live >= cfg_.max_sessions) {
        r.reason = "server full";
        return r;
    }

    // Reuse the lowest freed slot so ids stay small and stable.
    size_t slot = sessions_.size();
    for (size_t i = 0; i < sessions_.size(); ++i) {
        if (!sessions_[i]) {
            slot = i;
            break;
        }
    }
    if (slot == sessions_.size())
        sessions_.emplace_back();

    sessions_[slot] = std::make_unique<Session>(
        static_cast<uint32_t>(slot), scene_, shared_, trajectory,
        resolution, qos, cfg_);
    r.admitted = true;
    r.session_id = static_cast<uint32_t>(slot);
    return r;
}

bool
NeoServer::close(uint32_t session_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (session_id >= sessions_.size() || !sessions_[session_id])
        return false;
    sessions_[session_id].reset();
    return true;
}

Session *
NeoServer::session(uint32_t session_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (session_id >= sessions_.size())
        return nullptr;
    return sessions_[session_id].get();
}

size_t
NeoServer::liveSessions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t live = 0;
    for (const auto &s : sessions_)
        live += s != nullptr;
    return live;
}

std::vector<Session *>
NeoServer::liveSnapshot() const
{
    std::vector<Session *> live;
    std::lock_guard<std::mutex> lock(mutex_);
    live.reserve(sessions_.size());
    for (const auto &s : sessions_) {
        if (s)
            live.push_back(s.get());
    }
    return live;
}

size_t
NeoServer::pump()
{
    size_t processed = 0;
    for (Session *s : liveSnapshot())
        processed += s->step();
    return processed;
}

size_t
NeoServer::drain()
{
    size_t processed = 0;
    // Round-robin rather than per-session drain: under overload no
    // session starves behind a sibling's deep queue.
    while (true) {
        const size_t round = pump();
        if (round == 0)
            return processed;
        processed += round;
    }
}

size_t
NeoServer::drainConcurrent(int drivers)
{
    if (drivers <= 1)
        return drain();

    const std::vector<Session *> live = liveSnapshot();
    const size_t n =
        std::min<size_t>(static_cast<size_t>(drivers), live.size());
    if (n <= 1)
        return drain();

    // Partition by index: session i belongs to driver i % n, so no
    // session is ever driven by two threads (single-driver contract).
    std::vector<size_t> processed(n, 0);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t d = 0; d < n; ++d) {
        threads.emplace_back([&, d] {
            size_t local = 0;
            for (size_t i = d; i < live.size(); i += n)
                local += live[i]->drain();
            processed[d] = local;
        });
    }
    size_t total = 0;
    for (size_t d = 0; d < n; ++d) {
        threads[d].join();
        total += processed[d];
    }
    return total;
}

} // namespace neo::serve
