/**
 * @file
 * One render session of the multi-session serving layer: a bounded frame
 * queue with an explicit drop policy, a private NeoRenderer built on the
 * server's shared RendererShared, a deadline-driven BudgetController, a
 * StageWatchdog, and the quarantine state machine that contains faults
 * to this session.
 *
 * Fault-isolation contract: all mutable render state (sorter tables,
 * tracker, binned frame, arena, integrity context, framebuffer) is owned
 * by the session; the only shared pieces — the scene and the stateless
 * rasterizer pair — are const. A fault (integrity FaultReport or
 * watchdog trip) therefore quarantines exactly this session: its
 * renderer is torn down, rebuilt from the shared scene on a capped
 * exponential-backoff ladder (cold-start re-sort), and after M failed
 * recoveries the session turns terminally Degraded. Healthy sibling
 * sessions' frame hashes stay bit-identical to solo runs throughout.
 *
 * Threading: submit()/stats()/state() are thread-safe against a single
 * concurrent driver calling step()/drain(). A session must not be driven
 * by two threads at once (the server's concurrent drain partitions
 * sessions across drivers).
 */

#ifndef NEO_SERVE_SESSION_H
#define NEO_SERVE_SESSION_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "common/image.h"
#include "core/neo_renderer.h"
#include "scene/trajectory.h"
#include "serve/qos.h"
#include "serve/watchdog.h"

namespace neo::serve
{

namespace durable
{
class DurabilityManager;
}

/** Lifecycle state of a session. */
enum class SessionState : uint8_t
{
    Healthy,     //!< serving normally
    Quarantined, //!< faulted; retrying rebuilds on the backoff ladder
    Degraded,    //!< terminal: recovery failed M times, requests drop
};

/** Lower-case state name ("healthy", "quarantined", "degraded"). */
const char *sessionStateName(SessionState state);

/** Outcome of one submit() call. */
struct SubmitResult
{
    bool accepted = false;
    /** Replaced the newest queued request (coalesce-latest policy). */
    bool coalesced = false;
    /** Displaced the oldest queued request (drop-oldest policy). */
    bool dropped_oldest = false;
    /** Backoff hint in frames when rejected (reject-backoff policy or a
        Degraded session). */
    int retry_after_frames = 0;
};

/** What happened in one step() call (for tests and the bench). */
struct FrameOutcome
{
    /** Trajectory frame index of the request processed. */
    uint64_t request = 0;
    /** True when a frame was actually rendered (false: the request was
        dropped by staleness, backoff, or a Degraded session). */
    bool rendered = false;
    uint64_t frame_hash = 0;
    /** Resolution tier the frame rendered at (0 = native). */
    int resolution_drop = 0;
    /** True when the reuse-sorter update was skipped (direct path). */
    bool direct_path = false;
    bool deadline_missed = false;
    StageTimings stages;
    /** Integrity faults detected during this frame. */
    uint32_t faults = 0;
    /** Watchdog stage that tripped, -1 if none. */
    int watchdog_stage = -1;
    /** Session state after the step. */
    SessionState state = SessionState::Healthy;
    /** Quarantine rebuilds performed so far (recovery epoch). */
    uint32_t rebuilds = 0;
};

/** Monotonic per-session counters (snapshot via Session::stats()). */
struct SessionStats
{
    uint64_t submitted = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;       //!< queue-full or Degraded rejections
    uint64_t dropped_oldest = 0; //!< displaced by drop-oldest
    uint64_t coalesced = 0;      //!< replaced by coalesce-latest
    uint64_t dropped_stale = 0;  //!< aged out at dequeue
    uint64_t backoff_skips = 0;  //!< burned by the quarantine ladder
    uint64_t rendered = 0;
    uint64_t deadline_misses = 0;
    uint64_t degraded_frames = 0; //!< rendered below native QoS
    uint64_t faults = 0;          //!< integrity faults observed
    uint64_t watchdog_trips = 0;
    uint64_t quarantines = 0; //!< Healthy -> Quarantined transitions
    uint64_t recoveries = 0;  //!< successful rebuilds back to Healthy
};

/**
 * Everything needed to re-admit a session at its original id after a
 * restart: the open() arguments, reconstructed exactly. The resolution
 * label is not carried (it is a debugging aid, not state); restored
 * sessions render under the label "durable".
 */
struct SessionOpenParams
{
    uint8_t trajectory_kind = 0; //!< TrajectoryKind
    Vec3 center{};
    float radius = 0.0f;
    float speed = 1.0f;
    int32_t width = 0;
    int32_t height = 0;
    QosTarget qos;
};

/**
 * Complete durable state of one session — what Session::exportDurable
 * writes and a crash-consistent snapshot persists. Restoring it into a
 * freshly constructed session (same open params) and replaying the
 * journal suffix resumes the stream bit-identically to an uninterrupted
 * run: the persistent tile tables plus the delta tracker's reference
 * membership are the renderer's entire cross-frame state, and
 * everything else here is the session-layer state machine around it.
 * The stage watchdog is deliberately not captured — its samples are
 * wall-clock measurements of a dead process, meaningless after restart;
 * it restarts in warmup.
 */
struct SessionDurable
{
    /** One queued-but-unrendered request. */
    struct QueuedRequest
    {
        uint64_t frame_index = 0;
        uint64_t submit_seq = 0;
    };

    uint32_t id = 0;
    SessionOpenParams open;

    uint64_t submit_seq = 0;
    SessionStats stats;
    uint8_t state = 0; //!< SessionState
    int32_t quarantine_failures = 0;
    int32_t backoff_remaining = 0;
    uint32_t rebuilds = 0;
    uint8_t sorter_stale = 0;
    int32_t last_drop = 0;
    std::vector<QueuedRequest> queue;
    BudgetController::State budget;

    /** False when the session faulted and its renderer was torn down
        (quarantine/degraded); tables/prev_ids are then empty. */
    uint8_t has_renderer = 1;
    std::vector<std::vector<TileEntry>> tables;
    std::vector<std::vector<GaussianId>> prev_ids;
};

/** One camera stream served against the shared scene (see file comment). */
class Session
{
  public:
    Session(uint32_t id, std::shared_ptr<const GaussianScene> scene,
            std::shared_ptr<const RendererShared> shared,
            Trajectory trajectory, Resolution resolution, QosTarget qos,
            const ServerConfig &cfg);

    uint32_t id() const { return id_; }
    const QosTarget &qos() const { return qos_; }
    SessionState state() const;
    SessionStats stats() const;
    size_t queueDepth() const;
    uint32_t rebuilds() const;

    /** Enqueue a request for trajectory frame @p frame_index
        (thread-safe). Applies the session's drop policy when full; a
        Degraded session rejects everything. */
    SubmitResult submit(uint64_t frame_index);

    /** Dequeue and process one request: render it, drop it (staleness /
        Degraded), or burn one backoff step of the quarantine ladder.
        Returns false when the queue was empty. Single driver only. */
    bool step(FrameOutcome *outcome = nullptr);

    /** step() until the queue is empty; returns requests processed. */
    size_t drain();

    /** Framebuffer of the most recent rendered frame. Only meaningful
        between steps (single-driver contract). */
    const Image &lastImage() const { return image_; }

    /**
     * Test hook: for the next @p frames rendered frames, sleep @p ms
     * inside stage @p stage (StageWatchdog::Stage) and inflate that
     * stage's measured time accordingly — a deterministic way to model
     * a wedged stage for watchdog/quarantine tests.
     */
    void injectStall(int stage, double ms, int frames);

    /**
     * Attach the durability manager (nullptr detaches): every accepted
     * submit() is journaled through it before the call returns, except
     * while the manager is replaying that very journal.
     */
    void setDurability(durable::DurabilityManager *mgr);

    /**
     * Write this session's complete durable state into @p out (see
     * SessionDurable). Requires driver quiescence: must not race a
     * concurrent step()/drain() — the checkpoint paths run between
     * pump rounds, where that holds by construction.
     */
    void exportDurable(SessionDurable &out) const;

    /**
     * Adopt a snapshotted state. Call once, immediately after
     * construction with the same open parameters, before any traffic;
     * the next step() resumes exactly where the snapshot left off.
     */
    void restoreDurable(SessionDurable d);

  private:
    struct Request
    {
        uint64_t frame_index = 0;
        uint64_t submit_seq = 0; //!< staleness clock
    };

    /** Render one request (assumes Healthy or a recovery attempt). */
    void renderRequest(const Request &req, FrameOutcome &out);
    /** Rebuild the renderer from the shared scene (cold start). */
    void rebuildRenderer();
    int backoffFor(int failures) const;

    const uint32_t id_;
    const std::shared_ptr<const GaussianScene> scene_;
    const std::shared_ptr<const RendererShared> shared_;
    const Trajectory trajectory_;
    const Resolution resolution_;
    const QosTarget qos_;
    const ServerConfig cfg_;

    mutable std::mutex mutex_; //!< guards queue_, stats_, state_
    std::deque<Request> queue_;
    uint64_t submit_seq_ = 0;
    SessionStats stats_;
    SessionState state_ = SessionState::Healthy;

    // Driver-thread-only state (single-driver contract).
    std::unique_ptr<NeoRenderer> renderer_;
    BudgetController budget_;
    StageWatchdog watchdog_;
    Image image_;
    /** Set when a direct-path frame left the sorter tables stale; the
        next reuse-path frame resets the renderer first (full re-sort). */
    bool sorter_stale_ = false;
    /** Resolution tier of the last reuse-path frame — a tier change
        reshapes the tile grid, so the sorter cold-starts on it. */
    int last_drop_ = 0;
    /** Faults reported by the renderer during the current frame (the
        handler may run on pool workers — hence atomic). */
    std::atomic<uint32_t> frame_faults_{0};
    int quarantine_failures_ = 0; //!< failed recovery attempts
    int backoff_remaining_ = 0;   //!< requests to burn before retrying
    uint32_t rebuilds_ = 0;

    // Stall injection (test hook).
    int stall_stage_ = -1;
    double stall_ms_ = 0.0;
    int stall_frames_ = 0;

    /** Journal sink for accepted submissions (not owned; may be null). */
    durable::DurabilityManager *durability_ = nullptr;
};

} // namespace neo::serve

#endif // NEO_SERVE_SESSION_H
