/**
 * @file
 * Multi-session serving layer over the Neo renderer. One NeoServer owns
 * the immutable half of the pipeline — the scene and a RendererShared
 * (stateless base + reference rasterizer pair) — and admits up to
 * max_sessions camera streams against it. Each admitted Session carries
 * its own mutable state (sorter tables, tracker, arena, integrity
 * context, framebuffer), which is what makes fault isolation a
 * structural property rather than a convention: there is no mutable
 * byte a faulty session can reach that a healthy sibling reads.
 *
 * Driving model: the server does not own threads. Callers pump it —
 * pump() steps every live session once (round-robin fairness under
 * overload), drain() pumps until all queues empty, drainConcurrent()
 * partitions sessions across caller-spawned driver threads. Determinism
 * note: NeoRenderer's tile-parallel stages are bit-exact at any thread
 * count and the shared ThreadPool serializes dispatches, so a frame's
 * hash does not depend on which driver thread rendered it or on what
 * sibling sessions were doing — the property bench_server measures and
 * the isolation tests enforce.
 */

#ifndef NEO_SERVE_SERVER_H
#define NEO_SERVE_SERVER_H

#include <memory>
#include <mutex>
#include <vector>

#include "serve/durable/durable.h"
#include "serve/session.h"

namespace neo::serve
{

/** Outcome of an open() admission attempt. */
struct AdmitResult
{
    bool admitted = false;
    /** Valid when admitted; stable for the session's lifetime. */
    uint32_t session_id = 0;
    /** Human-readable rejection reason (static string), else nullptr. */
    const char *reason = nullptr;
};

/** Session admission, registry, and pump loop (see file comment). */
class NeoServer
{
  public:
    /** @param scene immutable scene shared by all sessions
        @param cfg   server policy; defaults come from the NEO_SERVER_*
                     environment knobs (serverConfigFromEnv()) */
    explicit NeoServer(std::shared_ptr<const GaussianScene> scene,
                       ServerConfig cfg = serverConfigFromEnv());

    /** Admit a new session with the server's default QoS. */
    AdmitResult open(const Trajectory &trajectory, Resolution resolution);

    /** Admit a new session with an explicit QoS target. Rejects with
        reason "server full" at max_sessions live sessions. */
    AdmitResult open(const Trajectory &trajectory, Resolution resolution,
                     const QosTarget &qos);

    /** Tear down a session and free its slot. Must not race with a
        driver currently stepping that session. */
    bool close(uint32_t session_id);

    /** Look up a live session (nullptr when closed / never opened).
        The pointer stays valid until close(). */
    Session *session(uint32_t session_id);

    size_t liveSessions() const;
    const ServerConfig &config() const { return cfg_; }
    const std::shared_ptr<const GaussianScene> &scene() const
    {
        return scene_;
    }
    const std::shared_ptr<const RendererShared> &shared() const
    {
        return shared_;
    }

    /** Step every live session once (round-robin). Returns the number
        of requests processed. Single pumping thread at a time. */
    size_t pump();

    /** pump() until every queue is empty; returns requests processed. */
    size_t drain();

    /**
     * Drain all sessions using @p drivers concurrent driver threads,
     * sessions partitioned by id (a session is never driven by two
     * threads). Returns requests processed across all drivers.
     */
    size_t drainConcurrent(int drivers);

    // --- Durable serving mode (serve/durable/) -------------------------

    /**
     * Enable durability rooted at @p dcfg.state_dir and run recovery:
     * load the newest digest-verified snapshot generation (corrupt ones
     * are detected, warned about, and skipped — never loaded), restore
     * its sessions at their original ids, deterministically replay the
     * journal suffix, then cut a compacting checkpoint as the new
     * baseline. Call once, before any traffic (and before spawning
     * drivers). False when the state directory is unusable — the server
     * then keeps serving, just not durably.
     */
    bool enableDurability(const durable::DurableConfig &dcfg);

    bool durable() const { return durability_ != nullptr; }
    durable::DurabilityManager *durability() { return durability_.get(); }

    /** What recovery found (all-zero defaults when not durable). */
    const durable::RecoveryStatus &recovery() const;

    /**
     * Cut a snapshot of the current state now (periodic checkpoint: the
     * journal keeps its epoch, so older generations stay valid
     * fallbacks). Quiescence contract: no concurrent driver may be
     * stepping a session. False when not durable or the write failed.
     */
    bool checkpointNow();

    /** checkpointNow() only when the configured cadence
        (checkpoint_every accepted submissions) has elapsed. */
    bool maybeCheckpoint();

    /**
     * Compacting checkpoint (graceful drain, recovery completion):
     * snapshot under a fresh journal epoch, then truncate the journal.
     * After it, a restart restores the snapshot and replays nothing.
     */
    bool checkpointCompact();

  private:
    /** Live sessions snapshot (registry lock held only for the copy). */
    std::vector<Session *> liveSnapshot() const;

    /** Admit a session at an exact slot (recovery/replay path). */
    Session *placeSessionAt(uint32_t id, const SessionOpenParams &open);
    /** Export every live session + journal coordinates into @p snap. */
    void exportSnapshot(durable::ServerSnapshot &snap);
    /** Replay one journal record against the current state. */
    void replayRecord(const durable::JournalRecord &rec);

    const ServerConfig cfg_;
    const std::shared_ptr<const GaussianScene> scene_;
    const std::shared_ptr<const RendererShared> shared_;

    mutable std::mutex mutex_; //!< guards sessions_
    std::vector<std::unique_ptr<Session>> sessions_; //!< index == id

    /** Durable mode storage layer (null = not durable). */
    std::unique_ptr<durable::DurabilityManager> durability_;
};

} // namespace neo::serve

#endif // NEO_SERVE_SERVER_H
