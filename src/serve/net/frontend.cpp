#include "serve/net/frontend.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/faultinject.h"
#include "common/logging.h"
#include "scene/trajectory.h"

namespace neo::serve::net
{

namespace
{

/** Injection point name of the front end's send path. */
constexpr char kNetSendPoint[] = "net.send";

bool
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** True for errno values that mean "try again later", not failure. */
bool
wouldBlock(int err)
{
    return err == EAGAIN || err == EWOULDBLOCK;
}

} // namespace

NetFrontend::NetFrontend(NeoServer &server, NetConfig cfg)
    : server_(server), cfg_(cfg)
{
}

NetFrontend::~NetFrontend()
{
    for (auto &c : conns_) {
        if (c->hasSession())
            server_.close(c->sessionId());
        ::close(c->fd());
    }
    conns_.clear();
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
}

double
NetFrontend::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
NetFrontend::start()
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return false;
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));

    // Loopback only: this is a dev/test front end, not an internet
    // listener — the lifecycle defenses assume a hostile peer, not a
    // hostile network position.
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(cfg_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, cfg_.backlog) != 0 ||
        !setNonBlocking(listen_fd_)) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    port_ = ntohs(bound.sin_port);
    return true;
}

void
NetFrontend::acceptPending()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or a transient accept failure: next tick
        }
        (void)setNonBlocking(fd);
        const int one = 1;
        (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                           sizeof(one));

        if (conns_.size() >=
            static_cast<size_t>(cfg_.max_connections)) {
            // Reject at accept: one best-effort error frame, then close
            // — the connection never reaches request parsing.
            std::vector<uint8_t> frame;
            ErrorReply reply;
            reply.code = static_cast<uint16_t>(WireError::ServerFull);
            encodeError(frame, reply);
            (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
            ::close(fd);
            ++counters_.rejected_at_accept;
            continue;
        }

        conns_.push_back(std::make_unique<Conn>(fd, next_conn_id_++,
                                                cfg_, nowMs()));
        ++counters_.accepted;
    }
}

void
NetFrontend::readConn(Conn &c, double now_ms)
{
    uint8_t buf[4096];
    // Bounded per tick: at most the decoder's frame window, so one
    // fire-hosing peer cannot starve its siblings of loop time.
    size_t tick_budget = kWireHeaderSize + cfg_.max_payload;
    while (tick_budget > 0 && !c.closed()) {
        const size_t want = tick_budget < sizeof(buf)
                                ? tick_budget
                                : sizeof(buf);
        const ssize_t n = ::recv(c.fd(), buf, want, 0);
        if (n > 0) {
            counters_.bytes_in += static_cast<uint64_t>(n);
            c.onBytes(buf, static_cast<size_t>(n), now_ms);
            tick_budget -= static_cast<size_t>(n);
            continue;
        }
        if (n == 0) {
            c.markClosed(CloseReason::PeerClosed);
            return;
        }
        if (errno == EINTR)
            continue;
        if (!wouldBlock(errno))
            c.markClosed(CloseReason::PeerClosed);
        return;
    }
}

void
NetFrontend::answerError(Conn &c, WireError code, uint16_t detail)
{
    ++counters_.protocol_errors;
    c.enqueueError(code, detail);
    ++counters_.frames_out;

    // QoS rejections are the server's state, not peer misbehavior; only
    // malformed or out-of-contract traffic charges the budget.
    const bool peer_fault =
        code != WireError::ServerFull && code != WireError::Draining;
    if (peer_fault && c.recordError()) {
        c.enqueueError(WireError::ErrorBudget);
        ++counters_.frames_out;
        c.closeAfterFlush(CloseReason::ErrorBudget);
        ++counters_.budget_closes;
    }
}

bool
NetFrontend::routeFrame(Conn &c, const DecodedFrame &frame)
{
    std::vector<uint8_t> out;
    switch (frame.type) {
    case MsgType::OpenSession: {
        OpenSessionReq req;
        if (!decodeOpenSession(frame.payload, &req)) {
            answerError(c, WireError::BadPayload,
                        static_cast<uint16_t>(frame.type));
            return false;
        }
        if (draining_) {
            answerError(c, WireError::Draining, 0);
            return false;
        }
        if (c.hasSession()) {
            answerError(c, WireError::AlreadyOpen, 0);
            return false;
        }
        Trajectory traj(static_cast<TrajectoryKind>(req.trajectory_kind),
                        *server_.scene(), req.speed);
        Resolution res;
        res.width = req.width;
        res.height = req.height;
        res.name = "net";
        const AdmitResult admit = server_.open(traj, res);
        if (!admit.admitted) {
            answerError(c, WireError::ServerFull, 0);
            return false;
        }
        c.bindSession(admit.session_id);
        ++counters_.sessions_opened;
        OpenOkReply ok;
        ok.session_id = admit.session_id;
        encodeOpenOk(out, ok);
        break;
    }
    case MsgType::ResumeSession: {
        SessionRef req;
        if (!decodeSessionRef(frame.payload, &req)) {
            answerError(c, WireError::BadPayload,
                        static_cast<uint16_t>(frame.type));
            return false;
        }
        if (draining_) {
            answerError(c, WireError::Draining, 0);
            return false;
        }
        if (c.hasSession()) {
            answerError(c, WireError::AlreadyOpen, 0);
            return false;
        }
        if (!server_.session(req.session_id)) {
            answerError(c, WireError::UnknownSession, 0);
            return false;
        }
        // One owner per session even across restarts: resuming a session
        // another live connection is bound to is refused, not stolen.
        bool taken = false;
        for (const auto &other : conns_) {
            taken |= !other->closed() && other->hasSession() &&
                     other->sessionId() == req.session_id;
        }
        if (taken) {
            answerError(c, WireError::AlreadyOpen, 0);
            return false;
        }
        c.bindSession(req.session_id);
        ++counters_.sessions_opened;
        OpenOkReply ok;
        ok.session_id = req.session_id;
        encodeOpenOk(out, ok);
        break;
    }
    case MsgType::SubmitFrame: {
        SubmitFrameReq req;
        if (!decodeSubmitFrame(frame.payload, &req)) {
            answerError(c, WireError::BadPayload,
                        static_cast<uint16_t>(frame.type));
            return false;
        }
        // Session ownership is per connection: a connection can only
        // submit into the session it opened, so one misbehaving client
        // cannot even address a sibling's session.
        if (!c.hasSession() || c.sessionId() != req.session_id) {
            answerError(c, WireError::UnknownSession, 0);
            return false;
        }
        Session *session = server_.session(req.session_id);
        if (!session) {
            answerError(c, WireError::UnknownSession, 0);
            return false;
        }
        const SubmitResult submit = session->submit(req.frame_index);
        SubmitReply reply;
        reply.accepted = submit.accepted;
        reply.coalesced = submit.coalesced;
        reply.dropped_oldest = submit.dropped_oldest;
        reply.retry_after_frames = submit.retry_after_frames;
        if (submit.accepted) {
            // Render inline: one step per accepted submission keeps the
            // reply tied to this very request and the queue at depth 0.
            FrameOutcome outcome;
            reply.stepped = session->step(&outcome);
            if (reply.stepped) {
                reply.rendered = outcome.rendered;
                reply.direct_path = outcome.direct_path;
                reply.deadline_missed = outcome.deadline_missed;
                reply.request = outcome.request;
                reply.frame_hash = outcome.frame_hash;
                reply.resolution_drop =
                    static_cast<uint8_t>(outcome.resolution_drop);
                reply.state = static_cast<uint8_t>(outcome.state);
                reply.watchdog_stage =
                    static_cast<int8_t>(outcome.watchdog_stage);
                reply.faults = outcome.faults;
                reply.rebuilds = outcome.rebuilds;
            }
        } else {
            reply.state = static_cast<uint8_t>(session->state());
        }
        encodeSubmitReply(out, reply);
        break;
    }
    case MsgType::Stats: {
        SessionRef req;
        if (!decodeSessionRef(frame.payload, &req)) {
            answerError(c, WireError::BadPayload,
                        static_cast<uint16_t>(frame.type));
            return false;
        }
        if (!c.hasSession() || c.sessionId() != req.session_id) {
            answerError(c, WireError::UnknownSession, 0);
            return false;
        }
        Session *session = server_.session(req.session_id);
        if (!session) {
            answerError(c, WireError::UnknownSession, 0);
            return false;
        }
        StatsReply reply;
        reply.session_id = req.session_id;
        reply.state = static_cast<uint8_t>(session->state());
        reply.queue_depth =
            static_cast<uint32_t>(session->queueDepth());
        reply.stats = session->stats();
        const durable::RecoveryStatus &rec = server_.recovery();
        reply.durable = rec.durable;
        reply.recovered = rec.recovered;
        reply.snapshot_seq = rec.snapshot_seq;
        reply.journal_replayed = rec.journal_replayed;
        reply.generations_skipped = rec.generations_skipped;
        encodeStatsReply(out, reply);
        break;
    }
    case MsgType::CloseSession: {
        SessionRef req;
        if (!decodeSessionRef(frame.payload, &req)) {
            answerError(c, WireError::BadPayload,
                        static_cast<uint16_t>(frame.type));
            return false;
        }
        if (!c.hasSession() || c.sessionId() != req.session_id) {
            answerError(c, WireError::UnknownSession, 0);
            return false;
        }
        server_.close(req.session_id);
        c.unbindSession();
        ++counters_.sessions_closed;
        encodeEmpty(out, MsgType::CloseOk);
        break;
    }
    case MsgType::Shutdown: {
        encodeEmpty(out, MsgType::ShutdownAck);
        drain_requested_.store(true);
        break;
    }
    default:
        // Well-framed but not a request type (a response frame aimed at
        // the server, say) — out of contract.
        answerError(c, WireError::UnknownType,
                    static_cast<uint16_t>(frame.type));
        return false;
    }
    c.enqueue(out);
    ++counters_.frames_out;
    return true;
}

size_t
NetFrontend::processConn(Conn &c, double now_ms)
{
    (void)now_ms;
    size_t served = 0;
    DecodedFrame frame;
    WireError error = WireError::None;
    while (!c.closed() && !c.closingAfterFlush()) {
        const DecodeStatus st = c.nextFrame(&frame, &error);
        if (st == DecodeStatus::NeedMore)
            break;
        if (st == DecodeStatus::Error) {
            answerError(c, error, 0);
            continue;
        }
        ++counters_.frames_in;
        if (routeFrame(c, frame))
            ++served;
    }
    return served;
}

void
NetFrontend::flushConn(Conn &c, double now_ms)
{
    while (c.wantWrite() && !c.closed()) {
        const size_t want = c.writeSize();
        const size_t budget = faultinject::writeBudget(
            kNetSendPoint, static_cast<int64_t>(c.id()), want);
        const ssize_t n =
            ::send(c.fd(), c.writeData(), budget, MSG_NOSIGNAL);
        if (n > 0) {
            counters_.bytes_out += static_cast<uint64_t>(n);
            c.wrote(static_cast<size_t>(n), now_ms);
            // A forced short write models a congested peer: stop here
            // and resume next tick, leaving the remainder torn across
            // send() calls.
            if (budget < want)
                return;
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && !wouldBlock(errno))
            c.markClosed(CloseReason::PeerClosed);
        return;
    }
}

void
NetFrontend::beginDrain(double now_ms)
{
    draining_ = true;
    drain_start_ms_ = now_ms;
    // Durable graceful drain: fold everything into a final compacting
    // snapshot while the sessions are still live, so a restart recovers
    // them with nothing left to replay.
    if (server_.durable())
        server_.checkpointCompact();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    // Stop reading, flush what is queued, close when flushed. The
    // deadline in runOnce() hard-closes whoever refuses to drain.
    for (auto &c : conns_)
        c->closeAfterFlush(CloseReason::Drained);
}

void
NetFrontend::reapClosed()
{
    size_t kept = 0;
    for (auto &c : conns_) {
        if (!c->closed()) {
            conns_[kept++] = std::move(c);
            continue;
        }
        switch (c->closeReason()) {
        case CloseReason::IdleTimeout:
            ++counters_.idle_timeouts;
            break;
        case CloseReason::ProgressTimeout:
            ++counters_.progress_timeouts;
            break;
        case CloseReason::WriteOverflow:
            ++counters_.overflow_closes;
            break;
        case CloseReason::DrainDeadline:
            ++counters_.drain_hard_closes;
            break;
        default:
            break;
        }
        if (c->hasSession()) {
            // Durable sessions outlive their connections: a disconnect
            // detaches (ResumeSession re-binds later, possibly after a
            // server restart), and only an explicit CloseSession request
            // tears the session down. Closing here would also journal a
            // teardown after a drain's final snapshot was already cut.
            if (!server_.durable()) {
                server_.close(c->sessionId());
                ++counters_.sessions_closed;
            }
        }
        ::close(c->fd());
        ++counters_.conns_closed;
    }
    conns_.resize(kept);
}

size_t
NetFrontend::runOnce(int timeout_ms)
{
    double now = nowMs();
    if (drain_requested_.load() && !draining_)
        beginDrain(now);

    std::vector<pollfd> fds;
    std::vector<Conn *> fd_conn; // parallel to fds; nullptr = listener
    if (listen_fd_ >= 0 && !draining_) {
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
        fd_conn.push_back(nullptr);
    }
    for (auto &c : conns_) {
        short events = 0;
        if (c->wantRead() && !draining_)
            events |= POLLIN;
        if (c->wantWrite())
            events |= POLLOUT;
        if (events == 0)
            continue; // timeout clocks still tick below
        fds.push_back(pollfd{c->fd(), events, 0});
        fd_conn.push_back(c.get());
    }

    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    now = nowMs();

    size_t served = 0;
    if (ready > 0) {
        for (size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            if (!fd_conn[i]) {
                acceptPending();
                continue;
            }
            Conn &c = *fd_conn[i];
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                readConn(c, now);
                served += processConn(c, now);
            }
            if (!c.closed() && (fds[i].revents & POLLOUT))
                flushConn(c, now);
        }
    }

    // A newly requested drain (Shutdown frame this tick) takes effect
    // before the flush pass so acks get flushed under the deadline.
    if (drain_requested_.load() && !draining_)
        beginDrain(now);

    for (auto &c : conns_) {
        if (c->closed())
            continue;
        // Flush pass for conns that were not polled writable (freshly
        // queued responses) — send() just returns EAGAIN when full.
        if (c->wantWrite())
            flushConn(*c, now);
        if (c->closingAfterFlush() && !c->wantWrite())
            c->markClosed(c->closeReason());
        const CloseReason timeout = c->checkTimeouts(now);
        if (timeout != CloseReason::None)
            c->markClosed(timeout);
        if (draining_ &&
            now - drain_start_ms_ > cfg_.drain_deadline_ms)
            c->markClosed(CloseReason::DrainDeadline);
    }

    reapClosed();
    // Periodic durability checkpoint between ticks: the loop is the only
    // driver, so every session is quiescent right here.
    if (!draining_)
        server_.maybeCheckpoint();
    counters_.requests_served += served;
    return served;
}

void
NetFrontend::run()
{
    while (!stop_requested_.load()) {
        runOnce(cfg_.poll_interval_ms);
        if (draining_ && conns_.empty()) {
            drained_ = true;
            break;
        }
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    for (auto &c : conns_)
        c->markClosed(CloseReason::Drained);
    reapClosed();
}

} // namespace neo::serve::net
