/**
 * @file
 * Socket front end of the serving layer: a single-threaded non-blocking
 * poll() event loop that accepts TCP connections, decodes the framed
 * wire protocol (serve/net/wire.h), and routes validated requests into
 * the in-process NeoServer / Session::submit path.
 *
 * Driving model: the front end renders inline. A SubmitFrame request is
 * submitted to its session and, when accepted, the session is stepped
 * once before the reply is encoded — so replies arrive in request order,
 * carry the FrameOutcome (including the frame hash) of the very request
 * they answer, and per-session queues never build up behind the socket.
 * NeoRenderer's stages are bit-exact at any thread count, so the hash a
 * client reads over the wire equals the solo-render hash — the property
 * the chaos suite asserts for healthy connections while siblings are
 * being torn, stalled, garbled, and disconnected.
 *
 * Lifecycle defense (details in serve/net/conn.h): bounded read/write
 * buffers with backpressure, idle and read-progress timeouts, a
 * per-connection protocol-error budget, reject-at-accept beyond
 * max_connections, and a graceful drain (stop accepting, flush every
 * write buffer, bounded deadline, hard-close stragglers) triggered by a
 * Shutdown request or requestDrain().
 *
 * Threading: run()/runOnce() must be driven by one thread. requestDrain()
 * and requestStop() are safe from any thread; everything else (counters,
 * liveConns) is loop-thread state — read it after run() returns or from
 * the loop thread.
 */

#ifndef NEO_SERVE_NET_FRONTEND_H
#define NEO_SERVE_NET_FRONTEND_H

#include <atomic>
#include <memory>
#include <vector>

#include "serve/net/conn.h"
#include "serve/server.h"

namespace neo::serve::net
{

/** Monotonic front-end counters (loop-thread owned; see file comment). */
struct NetCounters
{
    uint64_t accepted = 0;
    uint64_t rejected_at_accept = 0; //!< over max_connections
    uint64_t conns_closed = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t frames_in = 0;         //!< validated request frames
    uint64_t frames_out = 0;        //!< response frames queued
    uint64_t protocol_errors = 0;   //!< typed errors answered
    uint64_t requests_served = 0;   //!< requests routed into the server
    uint64_t sessions_opened = 0;
    uint64_t sessions_closed = 0;
    uint64_t idle_timeouts = 0;
    uint64_t progress_timeouts = 0; //!< slow-loris closes
    uint64_t overflow_closes = 0;   //!< write-backpressure overflow
    uint64_t budget_closes = 0;     //!< error budget exhausted
    uint64_t drain_hard_closes = 0; //!< drain deadline hard-closes
};

/** The socket front end (see file comment). */
class NetFrontend
{
  public:
    /** @param server the in-process server requests are routed into;
        must outlive the front end. */
    explicit NetFrontend(NeoServer &server,
                         NetConfig cfg = netConfigFromEnv());
    ~NetFrontend();

    NetFrontend(const NetFrontend &) = delete;
    NetFrontend &operator=(const NetFrontend &) = delete;

    /** Bind and listen on cfg.port (0 = ephemeral). False on failure. */
    bool start();

    /** Bound TCP port (valid after start()). */
    int port() const { return port_; }

    /** Event loop: poll, accept, read, route, write, reap — until
        requestStop(), or until a drain completes. */
    void run();

    /**
     * One poll iteration with the given timeout (test hook; run() is
     * this in a loop at cfg.poll_interval_ms). Returns the number of
     * requests routed.
     */
    size_t runOnce(int timeout_ms);

    /** Graceful drain from any thread: stop accepting, stop reading,
        flush write buffers, hard-close at the deadline. */
    void requestDrain() { drain_requested_.store(true); }

    /** Hard stop from any thread: the loop exits at the next tick. */
    void requestStop() { stop_requested_.store(true); }

    bool draining() const { return draining_; }

    /** True after run() observed a drain through to completion. */
    bool drained() const { return drained_; }

    const NetCounters &counters() const { return counters_; }
    size_t liveConns() const { return conns_.size(); }

  private:
    void acceptPending();
    void readConn(Conn &c, double now_ms);
    /** Decode + route every buffered frame of @p c. */
    size_t processConn(Conn &c, double now_ms);
    /** Route one validated request frame. True when it was served. */
    bool routeFrame(Conn &c, const DecodedFrame &frame);
    /** Answer a typed error, charge the budget where deserved. */
    void answerError(Conn &c, WireError code, uint16_t detail);
    void flushConn(Conn &c, double now_ms);
    void beginDrain(double now_ms);
    /** Close fds / sessions of conns marked closed; drop them. */
    void reapClosed();
    double nowMs() const;

    NeoServer &server_;
    const NetConfig cfg_;

    int listen_fd_ = -1;
    int port_ = 0;
    uint64_t next_conn_id_ = 1;
    std::vector<std::unique_ptr<Conn>> conns_;
    NetCounters counters_;

    std::atomic<bool> drain_requested_{false};
    std::atomic<bool> stop_requested_{false};
    bool draining_ = false;
    bool drained_ = false;
    double drain_start_ms_ = 0.0;
};

} // namespace neo::serve::net

#endif // NEO_SERVE_NET_FRONTEND_H
