#include "serve/net/client.h"

#include <cerrno>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace neo::serve::net
{

NetClient::~NetClient()
{
    close();
}

bool
NetClient::connect(int port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    const int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    decoder_.reset();
    last_error_ = WireError::None;
    return true;
}

void
NetClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    decoder_.reset();
}

bool
NetClient::sendRaw(const uint8_t *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        const ssize_t n =
            ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
NetClient::recvFrame(DecodedFrame *frame, double timeout_ms)
{
    for (;;) {
        WireError error = WireError::None;
        const DecodeStatus st = decoder_.next(frame, &error);
        if (st == DecodeStatus::Frame)
            return true;
        if (st == DecodeStatus::Error) {
            last_error_ = error;
            return false;
        }

        pollfd pfd{fd_, POLLIN, 0};
        const int timeout =
            timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms);
        const int ready = ::poll(&pfd, 1, timeout);
        if (ready <= 0)
            return false; // timeout or poll failure

        uint8_t buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            decoder_.feed(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // peer closed or hard error
    }
}

bool
NetClient::roundTrip(const std::vector<uint8_t> &request, MsgType expect,
                     DecodedFrame *reply, double timeout_ms)
{
    last_error_ = WireError::None;
    if (fd_ < 0 || !sendRaw(request))
        return false;
    if (!recvFrame(reply, timeout_ms))
        return false;
    if (reply->type == MsgType::Error) {
        ErrorReply err;
        if (decodeError(reply->payload, &err))
            last_error_ = static_cast<WireError>(err.code);
        return false;
    }
    return reply->type == expect;
}

bool
NetClient::openSession(const OpenSessionReq &req, OpenOkReply *reply,
                       double timeout_ms)
{
    std::vector<uint8_t> request;
    encodeOpenSession(request, req);
    DecodedFrame frame;
    if (!roundTrip(request, MsgType::OpenOk, &frame, timeout_ms))
        return false;
    return decodeOpenOk(frame.payload, reply);
}

bool
NetClient::resumeSession(uint32_t session_id, OpenOkReply *reply,
                         double timeout_ms)
{
    std::vector<uint8_t> request;
    SessionRef ref;
    ref.session_id = session_id;
    encodeSessionRef(request, MsgType::ResumeSession, ref);
    DecodedFrame frame;
    if (!roundTrip(request, MsgType::OpenOk, &frame, timeout_ms))
        return false;
    return decodeOpenOk(frame.payload, reply);
}

bool
NetClient::submitFrame(const SubmitFrameReq &req, SubmitReply *reply,
                       double timeout_ms)
{
    std::vector<uint8_t> request;
    encodeSubmitFrame(request, req);
    DecodedFrame frame;
    if (!roundTrip(request, MsgType::SubmitReply, &frame, timeout_ms))
        return false;
    return decodeSubmitReply(frame.payload, reply);
}

bool
NetClient::stats(uint32_t session_id, StatsReply *reply,
                 double timeout_ms)
{
    std::vector<uint8_t> request;
    SessionRef ref;
    ref.session_id = session_id;
    encodeSessionRef(request, MsgType::Stats, ref);
    DecodedFrame frame;
    if (!roundTrip(request, MsgType::StatsReply, &frame, timeout_ms))
        return false;
    return decodeStatsReply(frame.payload, reply);
}

bool
NetClient::closeSession(uint32_t session_id, double timeout_ms)
{
    std::vector<uint8_t> request;
    SessionRef ref;
    ref.session_id = session_id;
    encodeSessionRef(request, MsgType::CloseSession, ref);
    DecodedFrame frame;
    return roundTrip(request, MsgType::CloseOk, &frame, timeout_ms);
}

bool
NetClient::shutdownServer(double timeout_ms)
{
    std::vector<uint8_t> request;
    encodeEmpty(request, MsgType::Shutdown);
    DecodedFrame frame;
    return roundTrip(request, MsgType::ShutdownAck, &frame, timeout_ms);
}

} // namespace neo::serve::net
