#include "serve/net/conn.h"

#include "common/env.h"

namespace neo::serve::net
{

NetConfig
netConfigFromEnv()
{
    using env::envLong;
    NetConfig cfg;
    cfg.port =
        static_cast<int>(envLong("NEO_SERVER_NET_PORT", cfg.port, 0, 65535));
    cfg.max_connections = static_cast<int>(envLong(
        "NEO_SERVER_NET_MAX_CONNS", cfg.max_connections, 1, 4096));
    cfg.max_payload = static_cast<size_t>(
        envLong("NEO_SERVER_NET_MAX_PAYLOAD",
                static_cast<long>(cfg.max_payload), 64,
                static_cast<long>(kWireMaxPayload)));
    cfg.write_buffer_cap = static_cast<size_t>(
        envLong("NEO_SERVER_NET_WRITE_CAP",
                static_cast<long>(cfg.write_buffer_cap), 4096, 16777216));
    cfg.error_budget = static_cast<int>(
        envLong("NEO_SERVER_NET_ERROR_BUDGET", cfg.error_budget, 1, 1000));
    cfg.idle_timeout_ms = static_cast<double>(
        envLong("NEO_SERVER_NET_IDLE_TIMEOUT_MS",
                static_cast<long>(cfg.idle_timeout_ms), 10, 3600000));
    cfg.progress_timeout_ms = static_cast<double>(
        envLong("NEO_SERVER_NET_PROGRESS_TIMEOUT_MS",
                static_cast<long>(cfg.progress_timeout_ms), 10, 3600000));
    cfg.drain_deadline_ms = static_cast<double>(
        envLong("NEO_SERVER_NET_DRAIN_DEADLINE_MS",
                static_cast<long>(cfg.drain_deadline_ms), 10, 3600000));
    return cfg;
}

const char *
closeReasonName(CloseReason reason)
{
    switch (reason) {
    case CloseReason::None:
        return "none";
    case CloseReason::PeerClosed:
        return "peer-closed";
    case CloseReason::ErrorBudget:
        return "error-budget";
    case CloseReason::IdleTimeout:
        return "idle-timeout";
    case CloseReason::ProgressTimeout:
        return "progress-timeout";
    case CloseReason::WriteOverflow:
        return "write-overflow";
    case CloseReason::Drained:
        return "drained";
    case CloseReason::DrainDeadline:
        return "drain-deadline";
    case CloseReason::ServerFull:
        return "server-full";
    }
    return "none";
}

Conn::Conn(int fd, uint64_t id, const NetConfig &cfg, double now_ms)
    : fd_(fd), id_(id), cfg_(cfg), decoder_(cfg.max_payload),
      progress_ms_(now_ms), activity_ms_(now_ms)
{
}

void
Conn::onBytes(const uint8_t *data, size_t len, double now_ms)
{
    decoder_.feed(data, len);
    activity_ms_ = now_ms;
}

DecodeStatus
Conn::nextFrame(DecodedFrame *frame, WireError *error)
{
    const DecodeStatus st = decoder_.next(frame, error);
    // Progress means the decoder consumed bytes — a frame, an error, or
    // garbage swallowed by resync. Only a backlog that grows without
    // consumption (a frame header never completed, a declared payload
    // never delivered) leaves the progress clock untouched: that is the
    // slow-loris signature checkTimeouts() fires on.
    const size_t pending = decoder_.pendingBytes();
    if (st != DecodeStatus::NeedMore || pending < last_pending_ ||
        pending == 0)
        progress_ms_ = activity_ms_;
    last_pending_ = pending;
    return st;
}

bool
Conn::wantRead() const
{
    return !hard_closed_ && !close_after_flush_ && !read_paused_;
}

void
Conn::enqueue(const std::vector<uint8_t> &bytes)
{
    if (hard_closed_)
        return;
    out_.insert(out_.end(), bytes.begin(), bytes.end());
    const size_t buffered = out_.size() - out_off_;
    if (buffered > cfg_.write_buffer_cap)
        read_paused_ = true;
    if (buffered > 2 * cfg_.write_buffer_cap)
        markClosed(CloseReason::WriteOverflow);
}

void
Conn::enqueueError(WireError code, uint16_t detail)
{
    std::vector<uint8_t> frame;
    ErrorReply reply;
    reply.code = static_cast<uint16_t>(code);
    reply.detail = detail;
    encodeError(frame, reply);
    enqueue(frame);
}

void
Conn::wrote(size_t n, double now_ms)
{
    out_off_ += n;
    if (n > 0)
        activity_ms_ = now_ms;
    if (out_off_ >= out_.size()) {
        out_.clear();
        out_off_ = 0;
    } else if (out_off_ > 4096 && out_off_ * 2 > out_.size()) {
        out_.erase(out_.begin(), out_.begin() + static_cast<ptrdiff_t>(out_off_));
        out_off_ = 0;
    }
    if (read_paused_ && out_.size() - out_off_ < cfg_.write_buffer_cap / 2)
        read_paused_ = false;
}

bool
Conn::recordError()
{
    ++errors_;
    return errors_ >= cfg_.error_budget;
}

void
Conn::closeAfterFlush(CloseReason reason)
{
    if (hard_closed_)
        return;
    close_after_flush_ = true;
    if (close_reason_ == CloseReason::None)
        close_reason_ = reason;
    // Nothing buffered: flush is already complete.
    if (!wantWrite())
        hard_closed_ = true;
}

void
Conn::markClosed(CloseReason reason)
{
    hard_closed_ = true;
    if (close_reason_ == CloseReason::None)
        close_reason_ = reason;
}

CloseReason
Conn::checkTimeouts(double now_ms) const
{
    if (hard_closed_)
        return CloseReason::None;
    if (now_ms - activity_ms_ > cfg_.idle_timeout_ms)
        return CloseReason::IdleTimeout;
    if (last_pending_ > 0 &&
        now_ms - progress_ms_ > cfg_.progress_timeout_ms)
        return CloseReason::ProgressTimeout;
    return CloseReason::None;
}

} // namespace neo::serve::net
