/**
 * @file
 * Minimal blocking client for the socket front end: connect, one
 * request / one reply per call, plus the raw-byte access the chaos
 * suite uses to tear frames, inject garbage, stall, and disconnect at
 * adversarial offsets. Not thread-safe; one client per connection.
 */

#ifndef NEO_SERVE_NET_CLIENT_H
#define NEO_SERVE_NET_CLIENT_H

#include "serve/net/wire.h"

namespace neo::serve::net
{

/** Blocking request/reply client (see file comment). */
class NetClient
{
  public:
    NetClient() = default;
    ~NetClient();

    NetClient(const NetClient &) = delete;
    NetClient &operator=(const NetClient &) = delete;

    /** Connect to the front end on loopback. False on failure. */
    bool connect(int port);

    /** Orderly close (safe when not connected). */
    void close();

    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Last wire error answered by the server (None when the last call
        succeeded). */
    WireError lastError() const { return last_error_; }

    // --- Request/reply -------------------------------------------------

    bool openSession(const OpenSessionReq &req, OpenOkReply *reply,
                     double timeout_ms = 10000.0);
    /** Re-bind to a session that survived a durable server restart. */
    bool resumeSession(uint32_t session_id, OpenOkReply *reply,
                       double timeout_ms = 10000.0);
    bool submitFrame(const SubmitFrameReq &req, SubmitReply *reply,
                     double timeout_ms = 10000.0);
    bool stats(uint32_t session_id, StatsReply *reply,
               double timeout_ms = 10000.0);
    bool closeSession(uint32_t session_id, double timeout_ms = 10000.0);
    /** Request a graceful server drain; true on the ShutdownAck. */
    bool shutdownServer(double timeout_ms = 10000.0);

    // --- Raw access (chaos suite) --------------------------------------

    /** Blocking send of arbitrary bytes. False on failure. */
    bool sendRaw(const uint8_t *data, size_t len);
    bool sendRaw(const std::vector<uint8_t> &bytes)
    {
        return sendRaw(bytes.data(), bytes.size());
    }

    /** Block until the next validated frame arrives (or the timeout /
        a connection loss / a wire-level decode error — all false, with
        lastError() set for decode errors). */
    bool recvFrame(DecodedFrame *frame, double timeout_ms = 10000.0);

  private:
    /** Send a request, read one reply, check its type; Error replies
        land in last_error_. */
    bool roundTrip(const std::vector<uint8_t> &request, MsgType expect,
                   DecodedFrame *reply, double timeout_ms);

    int fd_ = -1;
    FrameDecoder decoder_;
    WireError last_error_ = WireError::None;
};

} // namespace neo::serve::net

#endif // NEO_SERVE_NET_CLIENT_H
