#include "serve/net/wire.h"

#include <cmath>
#include <cstring>

namespace neo::serve::net
{

namespace
{

/** Bounds-checked little-endian writer appending to a byte vector. */
class Writer
{
  public:
    explicit Writer(std::vector<uint8_t> &out) : out_(out) {}

    void u8(uint8_t v) { out_.push_back(v); }
    void u16(uint16_t v)
    {
        out_.push_back(static_cast<uint8_t>(v));
        out_.push_back(static_cast<uint8_t>(v >> 8));
    }
    void u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }
    void u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }
    void i8(int8_t v) { u8(static_cast<uint8_t>(v)); }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void f32(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u32(bits);
    }
    void boolean(bool v) { u8(v ? 1 : 0); }

  private:
    std::vector<uint8_t> &out_;
};

/** Bounds-checked little-endian reader. ok() goes false on the first
    over-read and every later value reads as zero — callers check once. */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t len) : data_(data), len_(len) {}

    bool ok() const { return ok_; }
    bool done() const { return ok_ && off_ == len_; }

    uint8_t u8()
    {
        if (!take(1))
            return 0;
        return data_[off_++];
    }
    uint16_t u16()
    {
        if (!take(2))
            return 0;
        uint16_t v = static_cast<uint16_t>(
            data_[off_] | (static_cast<uint16_t>(data_[off_ + 1]) << 8));
        off_ += 2;
        return v;
    }
    uint32_t u32()
    {
        const uint32_t lo = u16();
        const uint32_t hi = u16();
        return lo | (hi << 16);
    }
    uint64_t u64()
    {
        const uint64_t lo = u32();
        const uint64_t hi = u32();
        return lo | (hi << 32);
    }
    int8_t i8() { return static_cast<int8_t>(u8()); }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    float f32()
    {
        const uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    bool boolean() { return u8() != 0; }

  private:
    bool take(size_t n)
    {
        if (!ok_ || len_ - off_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const uint8_t *data_;
    size_t len_;
    size_t off_ = 0;
    bool ok_ = true;
};

/** The four magic bytes as they appear on the wire ("NEOW"). */
constexpr uint8_t kMagicBytes[4] = {0x4E, 0x45, 0x4F, 0x57};

} // namespace

bool
knownMsgType(uint16_t type)
{
    switch (static_cast<MsgType>(type)) {
    case MsgType::OpenSession:
    case MsgType::SubmitFrame:
    case MsgType::Stats:
    case MsgType::CloseSession:
    case MsgType::Shutdown:
    case MsgType::ResumeSession:
    case MsgType::OpenOk:
    case MsgType::SubmitReply:
    case MsgType::StatsReply:
    case MsgType::CloseOk:
    case MsgType::ShutdownAck:
    case MsgType::Error:
        return true;
    }
    return false;
}

const char *
msgTypeName(MsgType type)
{
    switch (type) {
    case MsgType::OpenSession:
        return "open-session";
    case MsgType::SubmitFrame:
        return "submit-frame";
    case MsgType::Stats:
        return "stats";
    case MsgType::CloseSession:
        return "close-session";
    case MsgType::Shutdown:
        return "shutdown";
    case MsgType::ResumeSession:
        return "resume-session";
    case MsgType::OpenOk:
        return "open-ok";
    case MsgType::SubmitReply:
        return "submit-reply";
    case MsgType::StatsReply:
        return "stats-reply";
    case MsgType::CloseOk:
        return "close-ok";
    case MsgType::ShutdownAck:
        return "shutdown-ack";
    case MsgType::Error:
        return "error";
    }
    return "unknown";
}

const char *
wireErrorName(WireError error)
{
    switch (error) {
    case WireError::None:
        return "none";
    case WireError::BadMagic:
        return "bad-magic";
    case WireError::BadVersion:
        return "bad-version";
    case WireError::UnknownType:
        return "unknown-type";
    case WireError::Oversized:
        return "oversized";
    case WireError::CrcMismatch:
        return "crc-mismatch";
    case WireError::Truncated:
        return "truncated";
    case WireError::BadPayload:
        return "bad-payload";
    case WireError::ServerFull:
        return "server-full";
    case WireError::UnknownSession:
        return "unknown-session";
    case WireError::AlreadyOpen:
        return "already-open";
    case WireError::Draining:
        return "draining";
    case WireError::ErrorBudget:
        return "error-budget";
    }
    return "none";
}

uint32_t
crc32(const void *data, size_t len)
{
    static const auto table = [] {
        std::vector<uint32_t> t(256);
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

// --- Encoding ----------------------------------------------------------

void
encodeFrame(std::vector<uint8_t> &out, MsgType type,
            const uint8_t *payload, size_t len)
{
    Writer w(out);
    w.u32(kWireMagic);
    w.u16(kWireVersion);
    w.u16(static_cast<uint16_t>(type));
    w.u32(static_cast<uint32_t>(len));
    w.u32(crc32(payload, len));
    out.insert(out.end(), payload, payload + len);
}

namespace
{

/** Encode a payload built by @p fill into a framed message on @p out. */
template <typename Fill>
void
frame(std::vector<uint8_t> &out, MsgType type, Fill fill)
{
    std::vector<uint8_t> payload;
    Writer w(payload);
    fill(w);
    encodeFrame(out, type, payload.data(), payload.size());
}

} // namespace

void
encodeOpenSession(std::vector<uint8_t> &out, const OpenSessionReq &m)
{
    frame(out, MsgType::OpenSession, [&](Writer &w) {
        w.u8(m.trajectory_kind);
        w.f32(m.speed);
        w.u16(m.width);
        w.u16(m.height);
    });
}

void
encodeOpenOk(std::vector<uint8_t> &out, const OpenOkReply &m)
{
    frame(out, MsgType::OpenOk, [&](Writer &w) { w.u32(m.session_id); });
}

void
encodeSubmitFrame(std::vector<uint8_t> &out, const SubmitFrameReq &m)
{
    frame(out, MsgType::SubmitFrame, [&](Writer &w) {
        w.u32(m.session_id);
        w.u64(m.frame_index);
    });
}

void
encodeSubmitReply(std::vector<uint8_t> &out, const SubmitReply &m)
{
    frame(out, MsgType::SubmitReply, [&](Writer &w) {
        w.boolean(m.accepted);
        w.boolean(m.coalesced);
        w.boolean(m.dropped_oldest);
        w.boolean(m.stepped);
        w.boolean(m.rendered);
        w.boolean(m.direct_path);
        w.boolean(m.deadline_missed);
        w.i32(m.retry_after_frames);
        w.u64(m.request);
        w.u64(m.frame_hash);
        w.u8(m.resolution_drop);
        w.u8(m.state);
        w.i8(m.watchdog_stage);
        w.u32(m.faults);
        w.u32(m.rebuilds);
    });
}

void
encodeSessionRef(std::vector<uint8_t> &out, MsgType type,
                 const SessionRef &m)
{
    frame(out, type, [&](Writer &w) { w.u32(m.session_id); });
}

void
encodeStatsReply(std::vector<uint8_t> &out, const StatsReply &m)
{
    frame(out, MsgType::StatsReply, [&](Writer &w) {
        w.u32(m.session_id);
        w.u8(m.state);
        w.u32(m.queue_depth);
        w.u64(m.stats.submitted);
        w.u64(m.stats.accepted);
        w.u64(m.stats.rejected);
        w.u64(m.stats.dropped_oldest);
        w.u64(m.stats.coalesced);
        w.u64(m.stats.dropped_stale);
        w.u64(m.stats.backoff_skips);
        w.u64(m.stats.rendered);
        w.u64(m.stats.deadline_misses);
        w.u64(m.stats.degraded_frames);
        w.u64(m.stats.faults);
        w.u64(m.stats.watchdog_trips);
        w.u64(m.stats.quarantines);
        w.u64(m.stats.recoveries);
        w.boolean(m.durable);
        w.boolean(m.recovered);
        w.u64(m.snapshot_seq);
        w.u64(m.journal_replayed);
        w.u32(m.generations_skipped);
    });
}

void
encodeEmpty(std::vector<uint8_t> &out, MsgType type)
{
    encodeFrame(out, type, nullptr, 0);
}

void
encodeError(std::vector<uint8_t> &out, const ErrorReply &m)
{
    frame(out, MsgType::Error, [&](Writer &w) {
        w.u16(m.code);
        w.u16(m.detail);
    });
}

// --- Payload decoding --------------------------------------------------

bool
decodeOpenSession(const std::vector<uint8_t> &p, OpenSessionReq *out)
{
    Reader r(p.data(), p.size());
    OpenSessionReq m;
    m.trajectory_kind = r.u8();
    m.speed = r.f32();
    m.width = r.u16();
    m.height = r.u16();
    if (!r.done())
        return false;
    // Range checks: a kind outside the enum, a non-finite or wild speed,
    // or a degenerate/huge resolution is hostile input, not a request.
    if (m.trajectory_kind > 2)
        return false;
    if (!std::isfinite(m.speed) || m.speed <= 0.0f || m.speed > 64.0f)
        return false;
    if (m.width < 16 || m.width > 4096 || m.height < 16 ||
        m.height > 4096)
        return false;
    *out = m;
    return true;
}

bool
decodeOpenOk(const std::vector<uint8_t> &p, OpenOkReply *out)
{
    Reader r(p.data(), p.size());
    OpenOkReply m;
    m.session_id = r.u32();
    if (!r.done())
        return false;
    *out = m;
    return true;
}

bool
decodeSubmitFrame(const std::vector<uint8_t> &p, SubmitFrameReq *out)
{
    Reader r(p.data(), p.size());
    SubmitFrameReq m;
    m.session_id = r.u32();
    m.frame_index = r.u64();
    if (!r.done())
        return false;
    *out = m;
    return true;
}

bool
decodeSubmitReply(const std::vector<uint8_t> &p, SubmitReply *out)
{
    Reader r(p.data(), p.size());
    SubmitReply m;
    m.accepted = r.boolean();
    m.coalesced = r.boolean();
    m.dropped_oldest = r.boolean();
    m.stepped = r.boolean();
    m.rendered = r.boolean();
    m.direct_path = r.boolean();
    m.deadline_missed = r.boolean();
    m.retry_after_frames = r.i32();
    m.request = r.u64();
    m.frame_hash = r.u64();
    m.resolution_drop = r.u8();
    m.state = r.u8();
    m.watchdog_stage = r.i8();
    m.faults = r.u32();
    m.rebuilds = r.u32();
    if (!r.done())
        return false;
    *out = m;
    return true;
}

bool
decodeSessionRef(const std::vector<uint8_t> &p, SessionRef *out)
{
    Reader r(p.data(), p.size());
    SessionRef m;
    m.session_id = r.u32();
    if (!r.done())
        return false;
    *out = m;
    return true;
}

bool
decodeStatsReply(const std::vector<uint8_t> &p, StatsReply *out)
{
    Reader r(p.data(), p.size());
    StatsReply m;
    m.session_id = r.u32();
    m.state = r.u8();
    m.queue_depth = r.u32();
    m.stats.submitted = r.u64();
    m.stats.accepted = r.u64();
    m.stats.rejected = r.u64();
    m.stats.dropped_oldest = r.u64();
    m.stats.coalesced = r.u64();
    m.stats.dropped_stale = r.u64();
    m.stats.backoff_skips = r.u64();
    m.stats.rendered = r.u64();
    m.stats.deadline_misses = r.u64();
    m.stats.degraded_frames = r.u64();
    m.stats.faults = r.u64();
    m.stats.watchdog_trips = r.u64();
    m.stats.quarantines = r.u64();
    m.stats.recoveries = r.u64();
    m.durable = r.boolean();
    m.recovered = r.boolean();
    m.snapshot_seq = r.u64();
    m.journal_replayed = r.u64();
    m.generations_skipped = r.u32();
    if (!r.done())
        return false;
    *out = m;
    return true;
}

bool
decodeError(const std::vector<uint8_t> &p, ErrorReply *out)
{
    Reader r(p.data(), p.size());
    ErrorReply m;
    m.code = r.u16();
    m.detail = r.u16();
    if (!r.done())
        return false;
    *out = m;
    return true;
}

// --- Incremental decoding ----------------------------------------------

FrameDecoder::FrameDecoder(size_t max_payload)
    : max_payload_(max_payload < kWireMaxPayload ? max_payload
                                                 : kWireMaxPayload)
{
}

void
FrameDecoder::feed(const uint8_t *data, size_t len)
{
    buf_.insert(buf_.end(), data, data + len);
}

void
FrameDecoder::reset()
{
    buf_.clear();
    off_ = 0;
    resync_ = false;
}

void
FrameDecoder::compact()
{
    // Amortized O(1): only shift once the dead prefix dominates.
    if (off_ > 4096 && off_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<ptrdiff_t>(off_));
        off_ = 0;
    }
}

DecodeStatus
FrameDecoder::next(DecodedFrame *frame, WireError *error)
{
    for (;;) {
        if (resync_) {
            // Framing lost: scan for the next magic. A partial magic
            // match at the tail must be kept — it may complete on the
            // next feed() (torn writes split inside the magic on
            // purpose).
            const size_t size = buf_.size();
            size_t i = off_;
            for (; i < size; ++i) {
                size_t m = 0;
                while (m < 4 && i + m < size &&
                       buf_[i + m] == kMagicBytes[m])
                    ++m;
                if (m == 4) {
                    resync_ = false;
                    break;
                }
                if (i + m == size)
                    break; // prefix match runs off the tail: hold it
            }
            off_ = i;
            compact();
            if (resync_)
                return DecodeStatus::NeedMore;
        }

        const size_t avail = buf_.size() - off_;
        if (avail < kWireHeaderSize) {
            compact();
            return DecodeStatus::NeedMore;
        }

        Reader r(buf_.data() + off_, kWireHeaderSize);
        const uint32_t magic = r.u32();
        const uint16_t version = r.u16();
        const uint16_t type = r.u16();
        const uint32_t length = r.u32();
        const uint32_t crc = r.u32();

        if (magic != kWireMagic) {
            // One typed error per resync event; the scan then swallows
            // garbage silently until the next plausible frame start.
            resync_ = true;
            ++errors_;
            *error = WireError::BadMagic;
            return DecodeStatus::Error;
        }
        if (version != kWireVersion) {
            // The magic matched but nothing after it can be trusted —
            // skip past the magic so the resync scan moves forward.
            off_ += 4;
            resync_ = true;
            ++errors_;
            *error = WireError::BadVersion;
            return DecodeStatus::Error;
        }
        if (length > max_payload_) {
            off_ += 4;
            resync_ = true;
            ++errors_;
            *error = WireError::Oversized;
            return DecodeStatus::Error;
        }
        if (avail < kWireHeaderSize + length)
            return DecodeStatus::NeedMore;

        const uint8_t *payload = buf_.data() + off_ + kWireHeaderSize;
        const bool crc_ok = crc32(payload, length) == crc;
        const bool type_ok = knownMsgType(type);
        // Framing is trusted from here on: consume the whole frame even
        // when its contents are rejected, and keep parsing.
        if (!crc_ok || !type_ok) {
            off_ += kWireHeaderSize + length;
            compact();
            ++errors_;
            *error = crc_ok ? WireError::UnknownType
                            : WireError::CrcMismatch;
            return DecodeStatus::Error;
        }

        frame->type = static_cast<MsgType>(type);
        frame->payload.assign(payload, payload + length);
        off_ += kWireHeaderSize + length;
        compact();
        ++frames_;
        return DecodeStatus::Frame;
    }
}

} // namespace neo::serve::net
