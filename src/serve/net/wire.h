/**
 * @file
 * Framed wire protocol of the socket front end (serve/net/). Every byte
 * arriving from a socket is untrusted until validated; the codec here is
 * the validation boundary.
 *
 * Frame layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic      "NEOW" (0x574F454E as a LE u32)
 *   4       2     version    kWireVersion (1)
 *   6       2     type       MsgType
 *   8       4     length     payload byte count, <= the configured cap
 *   12      4     crc32      IEEE CRC-32 over the payload bytes
 *   16      len   payload    fixed-layout fields per type
 *
 * The decoder is incremental (frames arrive torn at arbitrary offsets)
 * and total: any byte stream maps to a sequence of frames and typed
 * errors, never a crash, an over-read, or unbounded buffering. After a
 * framing-loss error (bad magic, bad version, oversized length) it
 * resyncs by scanning for the next magic; after an in-frame error (CRC
 * mismatch, unknown type) it consumes the well-framed bytes and
 * continues. Truncation (a partial frame that stops making progress) is
 * detected by the connection's read-progress timeout, not the codec.
 */

#ifndef NEO_SERVE_NET_WIRE_H
#define NEO_SERVE_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/session.h"

namespace neo::serve::net
{

/** "NEOW" read little-endian ('N' is byte 0 on the wire). */
inline constexpr uint32_t kWireMagic = 0x574F454Eu;
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kWireHeaderSize = 16;
/** Hard upper bound on the configurable payload cap. */
inline constexpr size_t kWireMaxPayload = 1u << 20;

/** Frame types. Requests are < 0x80, responses >= 0x80. */
enum class MsgType : uint16_t
{
    // Client -> server.
    OpenSession = 0x01,  //!< admit a camera stream
    SubmitFrame = 0x02,  //!< enqueue + render one trajectory frame
    Stats = 0x03,        //!< snapshot session counters
    CloseSession = 0x04, //!< tear down the session
    Shutdown = 0x05,     //!< request a graceful server drain
    /** Re-bind this connection to a session that survived a server
        restart (durable mode). Payload is a SessionRef; the reply is an
        OpenOk echoing the id. Refused (unknown-session) when the id is
        not live, or (already-open) when another connection owns it. */
    ResumeSession = 0x06,

    // Server -> client.
    OpenOk = 0x81,
    SubmitReply = 0x82,
    StatsReply = 0x83,
    CloseOk = 0x84,
    ShutdownAck = 0x85,
    Error = 0xFF,
};

/** True for the types this build knows how to parse. */
bool knownMsgType(uint16_t type);

/** Lower-case type name ("open-session", ...; "unknown" otherwise). */
const char *msgTypeName(MsgType type);

/** Typed protocol errors carried by Error frames (and decoder events). */
enum class WireError : uint16_t
{
    None = 0,
    BadMagic = 1,     //!< framing lost; decoder resynced
    BadVersion = 2,   //!< only kWireVersion is spoken
    UnknownType = 3,  //!< well-framed frame of an unknown type
    Oversized = 4,    //!< declared length above the payload cap
    CrcMismatch = 5,  //!< payload checksum failed
    Truncated = 6,    //!< partial frame stopped making progress
    BadPayload = 7,   //!< payload malformed for its type
    ServerFull = 8,   //!< admission cap reached (sessions or conns)
    UnknownSession = 9,
    AlreadyOpen = 10, //!< this connection already owns a session
    Draining = 11,    //!< server is shutting down
    ErrorBudget = 12, //!< per-connection error budget exhausted
};

/** Lower-case error name ("bad-magic", ...). */
const char *wireErrorName(WireError error);

/** IEEE CRC-32 (reflected, poly 0xEDB88320) of @p len bytes. */
uint32_t crc32(const void *data, size_t len);

// --- Typed payloads ----------------------------------------------------

/** OpenSession request payload. */
struct OpenSessionReq
{
    uint8_t trajectory_kind = 0; //!< TrajectoryKind (0 orbit, 1 dolly, 2 walk)
    float speed = 1.0f;          //!< trajectory speed multiplier
    uint16_t width = 0;
    uint16_t height = 0;
};

/** OpenOk response payload. */
struct OpenOkReply
{
    uint32_t session_id = 0;
};

/** SubmitFrame request payload. */
struct SubmitFrameReq
{
    uint32_t session_id = 0;
    uint64_t frame_index = 0;
};

/** SubmitReply response payload: the SubmitResult of this submission
    plus the FrameOutcome of the step it triggered. */
struct SubmitReply
{
    // Submission outcome.
    bool accepted = false;
    bool coalesced = false;
    bool dropped_oldest = false;
    int32_t retry_after_frames = 0;
    // Step outcome (valid when stepped — the front end steps the
    // session once per accepted submission).
    bool stepped = false;
    bool rendered = false;
    bool direct_path = false;
    bool deadline_missed = false;
    uint64_t request = 0; //!< trajectory frame the step processed
    uint64_t frame_hash = 0;
    uint8_t resolution_drop = 0;
    uint8_t state = 0; //!< SessionState after the step
    int8_t watchdog_stage = -1;
    uint32_t faults = 0;
    uint32_t rebuilds = 0;
};

/** Stats / CloseSession request payload. */
struct SessionRef
{
    uint32_t session_id = 0;
};

/** StatsReply response payload: SessionStats + lifecycle state, plus
    the server's recovery attestation (durable mode; zeros otherwise). */
struct StatsReply
{
    uint32_t session_id = 0;
    uint8_t state = 0;
    uint32_t queue_depth = 0;
    SessionStats stats;
    // Recovery attestation (see serve/durable/durable.h).
    bool durable = false;
    bool recovered = false;
    uint64_t snapshot_seq = 0;
    uint64_t journal_replayed = 0;
    uint32_t generations_skipped = 0;
};

/** Error response payload. */
struct ErrorReply
{
    uint16_t code = 0;   //!< WireError
    uint16_t detail = 0; //!< offending MsgType when relevant, else 0
};

// --- Encoding ----------------------------------------------------------

/** Append one framed message (header + payload) to @p out. */
void encodeFrame(std::vector<uint8_t> &out, MsgType type,
                 const uint8_t *payload, size_t len);

/** Payload-struct encoders: append the framed message to @p out. */
void encodeOpenSession(std::vector<uint8_t> &out, const OpenSessionReq &m);
void encodeOpenOk(std::vector<uint8_t> &out, const OpenOkReply &m);
void encodeSubmitFrame(std::vector<uint8_t> &out, const SubmitFrameReq &m);
void encodeSubmitReply(std::vector<uint8_t> &out, const SubmitReply &m);
void encodeSessionRef(std::vector<uint8_t> &out, MsgType type,
                      const SessionRef &m);
void encodeStatsReply(std::vector<uint8_t> &out, const StatsReply &m);
void encodeEmpty(std::vector<uint8_t> &out, MsgType type);
void encodeError(std::vector<uint8_t> &out, const ErrorReply &m);

/** Payload-struct decoders: false when the payload is malformed for the
    type (wrong size or an out-of-range field). Never over-read. */
bool decodeOpenSession(const std::vector<uint8_t> &p, OpenSessionReq *out);
bool decodeOpenOk(const std::vector<uint8_t> &p, OpenOkReply *out);
bool decodeSubmitFrame(const std::vector<uint8_t> &p, SubmitFrameReq *out);
bool decodeSubmitReply(const std::vector<uint8_t> &p, SubmitReply *out);
bool decodeSessionRef(const std::vector<uint8_t> &p, SessionRef *out);
bool decodeStatsReply(const std::vector<uint8_t> &p, StatsReply *out);
bool decodeError(const std::vector<uint8_t> &p, ErrorReply *out);

// --- Incremental decoding ----------------------------------------------

/** One fully validated frame. */
struct DecodedFrame
{
    MsgType type = MsgType::Error;
    std::vector<uint8_t> payload;
};

/** Result of one FrameDecoder::next() pull. */
enum class DecodeStatus
{
    NeedMore, //!< no complete frame buffered
    Frame,    //!< *frame holds the next validated frame
    Error,    //!< *error holds a typed protocol error
};

/**
 * Incremental frame parser over a torn byte stream (see file comment
 * for the error/resync taxonomy). feed() appends received bytes;
 * next() pulls validated frames and typed errors in input order.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(size_t max_payload = kWireMaxPayload);

    void feed(const uint8_t *data, size_t len);

    DecodeStatus next(DecodedFrame *frame, WireError *error);

    /** Bytes buffered but not yet consumed (partial frame or garbage
        awaiting resync) — the connection's read-progress clock. */
    size_t pendingBytes() const { return buf_.size() - off_; }

    /** Frames validated since construction. */
    uint64_t framesDecoded() const { return frames_; }
    /** Typed errors emitted since construction. */
    uint64_t errorsEmitted() const { return errors_; }

    void reset();

  private:
    /** Drop consumed prefix once it dominates the buffer. */
    void compact();

    const size_t max_payload_;
    std::vector<uint8_t> buf_;
    size_t off_ = 0;
    bool resync_ = false;
    uint64_t frames_ = 0;
    uint64_t errors_ = 0;
};

} // namespace neo::serve::net

#endif // NEO_SERVE_NET_WIRE_H
