/**
 * @file
 * Per-connection lifecycle state of the socket front end: the incremental
 * frame decoder, a bounded write buffer with backpressure, the error
 * budget, and the idle / read-progress timeout clocks. The front end owns
 * the poll loop; each Conn owns everything that must not leak across
 * connections — which is the isolation boundary the chaos suite tests.
 *
 * Backpressure: when the write buffer crosses its cap the connection
 * stops reading (its POLLIN interest drops) until the peer drains it
 * below half the cap; a peer that also refuses to read, pushing the
 * buffer past twice the cap, is closed (overflow). Combined with the
 * decoder's bounded pending window this caps per-connection memory at a
 * small constant regardless of peer behavior.
 *
 * Timeouts: idle (no bytes either direction) and read-progress (bytes
 * buffered mid-frame without completing one — the slow-loris shape) each
 * have their own clock; either expiring closes the connection.
 */

#ifndef NEO_SERVE_NET_CONN_H
#define NEO_SERVE_NET_CONN_H

#include <cstdint>
#include <vector>

#include "serve/net/wire.h"

namespace neo::serve::net
{

/** Socket front end policy (see netConfigFromEnv for the env knobs). */
struct NetConfig
{
    /** TCP port to bind (0 = ephemeral; read it back via port()). */
    int port = 0;
    int backlog = 16;
    /** Connections beyond this are rejected at accept (closed after an
        error frame, before any request parsing). */
    int max_connections = 64;
    /** Request/response payload cap in bytes (wire `length` field). */
    size_t max_payload = 4096;
    /** Write-buffer backpressure cap in bytes. */
    size_t write_buffer_cap = 1u << 18;
    /** Protocol errors a connection survives before it is closed. */
    int error_budget = 8;
    /** Close after this long with no bytes in either direction (ms). */
    double idle_timeout_ms = 30000.0;
    /** Close when a partial frame makes no progress for this long (ms). */
    double progress_timeout_ms = 2000.0;
    /** Graceful drain: flush deadline before hard-closing (ms). */
    double drain_deadline_ms = 2000.0;
    /** poll() tick, which bounds timeout detection latency (ms). */
    int poll_interval_ms = 20;
};

/**
 * NetConfig from the NEO_SERVER_NET_* environment knobs (validated,
 * warn-once, via common/env):
 *
 *   NEO_SERVER_NET_PORT              [0, 65535]
 *   NEO_SERVER_NET_MAX_CONNS         [1, 4096]
 *   NEO_SERVER_NET_MAX_PAYLOAD       [64, 1048576] bytes
 *   NEO_SERVER_NET_WRITE_CAP         [4096, 16777216] bytes
 *   NEO_SERVER_NET_ERROR_BUDGET      [1, 1000]
 *   NEO_SERVER_NET_IDLE_TIMEOUT_MS   [10, 3600000]
 *   NEO_SERVER_NET_PROGRESS_TIMEOUT_MS [10, 3600000]
 *   NEO_SERVER_NET_DRAIN_DEADLINE_MS [10, 3600000]
 */
NetConfig netConfigFromEnv();

/** Why a connection was closed (for counters and logs). */
enum class CloseReason : uint8_t
{
    None,         //!< still open
    PeerClosed,   //!< orderly or abrupt close from the peer
    ErrorBudget,  //!< protocol error budget exhausted
    IdleTimeout,
    ProgressTimeout, //!< slow-loris: partial frame stopped progressing
    WriteOverflow,   //!< peer refused to read past 2x the write cap
    Drained,         //!< graceful drain flushed and closed it
    DrainDeadline,   //!< drain deadline hard-closed it
    ServerFull,      //!< rejected at accept
};

/** Lower-case reason name ("peer-closed", ...). */
const char *closeReasonName(CloseReason reason);

/**
 * One accepted connection (see file comment). The front end drives it:
 * onBytes() with received data, enqueue*() with responses, takeWrite()/
 * wrote() around send(), checkTimeouts() each tick.
 */
class Conn
{
  public:
    Conn(int fd, uint64_t id, const NetConfig &cfg, double now_ms);

    int fd() const { return fd_; }
    uint64_t id() const { return id_; }

    // --- Reading -------------------------------------------------------

    /** Feed received bytes into the frame decoder (updates the activity
        and progress clocks). */
    void onBytes(const uint8_t *data, size_t len, double now_ms);

    /** Pull the next validated frame / typed error (DecodeStatus). */
    DecodeStatus nextFrame(DecodedFrame *frame, WireError *error);

    /** True while the connection should be polled for reading: not
        closing, and not paused by write backpressure. */
    bool wantRead() const;

    // --- Writing -------------------------------------------------------

    /** Queue an encoded response frame. Applies backpressure thresholds;
        may pause reading or (past 2x cap) mark the connection for
        overflow close. */
    void enqueue(const std::vector<uint8_t> &bytes);

    /** Queue a typed error frame. */
    void enqueueError(WireError code, uint16_t detail = 0);

    bool wantWrite() const { return out_off_ < out_.size(); }

    /** Contiguous unwritten span for send(). */
    const uint8_t *writeData() const { return out_.data() + out_off_; }
    size_t writeSize() const { return out_.size() - out_off_; }

    /** Record @p n bytes accepted by send(); un-pauses reading once the
        buffer drains below half the cap. */
    void wrote(size_t n, double now_ms);

    bool readPaused() const { return read_paused_; }

    // --- Lifecycle -----------------------------------------------------

    /** Count one protocol error; true when the budget just ran out (the
        caller sends the final error frame and closes after flush). */
    bool recordError();
    int errorsSeen() const { return errors_; }

    /** Close once the write buffer flushes (error budget, drain). */
    void closeAfterFlush(CloseReason reason);
    bool closingAfterFlush() const { return close_after_flush_; }

    /** Mark closed immediately (peer close, timeout, overflow). Keeps
        the first recorded reason. */
    void markClosed(CloseReason reason);
    bool closed() const { return hard_closed_; }
    CloseReason closeReason() const { return close_reason_; }

    /** Idle / read-progress timeout check; returns the reason to close
        for, or CloseReason::None. */
    CloseReason checkTimeouts(double now_ms) const;

    // --- Session binding ----------------------------------------------

    /** The session this connection opened (one per connection); closing
        the connection closes the session. */
    bool hasSession() const { return has_session_; }
    uint32_t sessionId() const { return session_id_; }
    void bindSession(uint32_t id)
    {
        session_id_ = id;
        has_session_ = true;
    }
    void unbindSession() { has_session_ = false; }

  private:
    const int fd_;
    const uint64_t id_;
    const NetConfig &cfg_;

    FrameDecoder decoder_;
    size_t last_pending_ = 0;  //!< decoder backlog at last progress
    double progress_ms_;       //!< last time the decoder made progress
    double activity_ms_;       //!< last byte in either direction

    std::vector<uint8_t> out_;
    size_t out_off_ = 0;
    bool read_paused_ = false;

    int errors_ = 0;
    bool close_after_flush_ = false;
    bool hard_closed_ = false;
    CloseReason close_reason_ = CloseReason::None;

    bool has_session_ = false;
    uint32_t session_id_ = 0;
};

} // namespace neo::serve::net

#endif // NEO_SERVE_NET_CONN_H
