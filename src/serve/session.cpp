#include "serve/session.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/faultinject.h"
#include "serve/durable/durable.h"

namespace neo::serve
{

const char *
sessionStateName(SessionState state)
{
    switch (state) {
    case SessionState::Healthy:
        return "healthy";
    case SessionState::Quarantined:
        return "quarantined";
    case SessionState::Degraded:
        return "degraded";
    }
    return "unknown";
}

Session::Session(uint32_t id, std::shared_ptr<const GaussianScene> scene,
                 std::shared_ptr<const RendererShared> shared,
                 Trajectory trajectory, Resolution resolution,
                 QosTarget qos, const ServerConfig &cfg)
    : id_(id),
      scene_(std::move(scene)),
      shared_(std::move(shared)),
      trajectory_(trajectory),
      resolution_(resolution),
      qos_(qos),
      cfg_(cfg)
{
    budget_.configure(qos_);
    StageWatchdog::Config wd;
    wd.factor = cfg_.watchdog_factor;
    wd.floor_ms = cfg_.watchdog_floor_ms;
    wd.warmup = cfg_.watchdog_warmup;
    watchdog_.configure(wd);
    rebuildRenderer();
}

SessionState
Session::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

SessionStats
Session::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

size_t
Session::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

uint32_t
Session::rebuilds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rebuilds_;
}

SubmitResult
Session::submit(uint64_t frame_index)
{
    SubmitResult r;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;

    if (state_ == SessionState::Degraded) {
        // Terminal: this stream is dead; the hint tells the client to
        // reconnect (open a fresh session) rather than retry soon.
        ++stats_.rejected;
        r.retry_after_frames = cfg_.backoff_cap;
        return r;
    }

    if (queue_.size() >= qos_.queue_capacity) {
        switch (qos_.drop_policy) {
        case DropPolicy::DropOldest:
            queue_.pop_front();
            ++stats_.dropped_oldest;
            r.dropped_oldest = true;
            break;
        case DropPolicy::RejectBackoff:
            // The queue drains one request per pump: its current depth
            // *is* the number of frames until a slot opens.
            ++stats_.rejected;
            r.retry_after_frames =
                static_cast<int>(std::min<size_t>(queue_.size(), 1 << 20));
            return r;
        case DropPolicy::CoalesceLatest:
            // The newest pending camera is superseded by this one.
            queue_.pop_back();
            ++stats_.coalesced;
            r.coalesced = true;
            break;
        }
    }

    queue_.push_back(Request{frame_index, ++submit_seq_});
    ++stats_.accepted;
    r.accepted = true;
    // Write-ahead journal hook: an accepted submission is durable before
    // the caller learns it was accepted (no-op during journal replay —
    // the manager is the caller then). Lock order is session -> journal,
    // and the checkpoint path never takes them in reverse.
    if (durability_)
        durability_->recordSubmit(id_, frame_index);
    return r;
}

int
Session::backoffFor(int failures) const
{
    const int shift = std::min(failures - 1, 12);
    const long backoff = static_cast<long>(cfg_.backoff_base) << shift;
    return static_cast<int>(
        std::min<long>(backoff, cfg_.backoff_cap));
}

void
Session::rebuildRenderer()
{
    // A fresh renderer from the shared scene-immutable half: new sorter
    // tables (cold-start full re-sort on its first frame), new tracker,
    // new arena, new integrity context — any corrupted bytes of the
    // torn-down instance are unreachable.
    renderer_ = std::make_unique<NeoRenderer>(shared_, cfg_.dps);
    renderer_->setFaultHandler([this](const FaultReport &) {
        frame_faults_.fetch_add(1, std::memory_order_relaxed);
    });
    budget_.reset();
    watchdog_.reset();
    sorter_stale_ = false;
    last_drop_ = 0;
}

void
Session::renderRequest(const Request &req, FrameOutcome &out)
{
    const DegradePlan plan = budget_.plan();
    Resolution res = resolution_;
    res.width = std::max(resolution_.width >> plan.resolution_drop, 32);
    res.height = std::max(resolution_.height >> plan.resolution_drop, 32);
    const Camera cam =
        trajectory_.cameraAt(static_cast<int>(req.frame_index), res);

    frame_faults_.store(0, std::memory_order_relaxed);
    StageTimings stages;
    {
        // Scope the frame work into this session's fault domain, so
        // domain-pinned injections (the soak test's victim targeting)
        // can only land here.
        faultinject::DomainScope scope(id_);
        if (plan.skip_sorter_update) {
            renderer_->renderFrameDirect(image_, *scene_, cam,
                                         req.frame_index, stages);
            sorter_stale_ = true;
        } else {
            if (sorter_stale_ || plan.resolution_drop != last_drop_) {
                // A previous direct-path frame left the persistent
                // tables stale, or the resolution tier (and with it the
                // tile-grid shape) changed; cold-start re-sort before
                // reusing them.
                renderer_->reset();
                sorter_stale_ = false;
            }
            renderer_->renderFrameTimed(image_, *scene_, cam,
                                        req.frame_index, stages);
            last_drop_ = plan.resolution_drop;
        }
    }

    // Artificial stall (test hook): sleep inside the frame and inflate
    // the stage sample so the watchdog sees the stall it models.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stall_frames_ > 0 && stall_stage_ >= 0 &&
            stall_stage_ < StageWatchdog::kStageCount) {
            --stall_frames_;
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(stall_ms_));
            double *slot[StageWatchdog::kStageCount] = {
                &stages.bin_ms, &stages.sort_ms, &stages.raster_ms};
            *slot[stall_stage_] += stall_ms_;
        }
    }

    out.rendered = true;
    out.frame_hash = image_.contentHash();
    out.resolution_drop = plan.resolution_drop;
    out.direct_path = plan.skip_sorter_update;
    out.stages = stages;
    out.faults = frame_faults_.load(std::memory_order_relaxed);
    out.watchdog_stage = watchdog_.observeFrame(stages);
    const double deadline = qos_.frameDeadlineMs();
    out.deadline_missed = deadline > 0.0 && stages.totalMs() > deadline;
    budget_.record(stages);
}

bool
Session::step(FrameOutcome *outcome)
{
    FrameOutcome out;
    Request req;
    SessionState entry_state;
    {
        std::lock_guard<std::mutex> lock(mutex_);

        // Age out requests that exceeded the declared staleness budget
        // (measured in submissions, which keeps it deterministic).
        while (!queue_.empty() && qos_.max_staleness > 0 &&
               submit_seq_ - queue_.front().submit_seq >
                   static_cast<uint64_t>(qos_.max_staleness)) {
            queue_.pop_front();
            ++stats_.dropped_stale;
        }
        if (queue_.empty())
            return false;
        req = queue_.front();
        queue_.pop_front();
        out.request = req.frame_index;
        out.rebuilds = rebuilds_;
        entry_state = state_;

        if (entry_state == SessionState::Degraded) {
            ++stats_.rejected;
            out.state = state_;
            if (outcome)
                *outcome = out;
            return true;
        }
        if (entry_state == SessionState::Quarantined &&
            backoff_remaining_ > 0) {
            // Burn one step of the retry ladder; the request is shed.
            --backoff_remaining_;
            ++stats_.backoff_skips;
            out.state = state_;
            if (outcome)
                *outcome = out;
            return true;
        }
    }

    // Render outside the lock (single-driver contract). A quarantined
    // session whose backoff expired attempts recovery: rebuild from the
    // shared scene, then render this request cold.
    const bool recovering = entry_state == SessionState::Quarantined;
    if (recovering) {
        rebuildRenderer();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++rebuilds_;
        }
    }
    renderRequest(req, out);

    const bool faulted = out.faults > 0 || out.watchdog_stage >= 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.rendered;
        stats_.faults += out.faults;
        if (out.watchdog_stage >= 0)
            ++stats_.watchdog_trips;
        if (out.deadline_missed)
            ++stats_.deadline_misses;
        if (out.resolution_drop > 0 || out.direct_path)
            ++stats_.degraded_frames;

        if (faulted) {
            if (!recovering) {
                ++stats_.quarantines;
                quarantine_failures_ = 1;
            } else {
                ++quarantine_failures_;
            }
            if (quarantine_failures_ >= cfg_.quarantine_max_failures) {
                state_ = SessionState::Degraded;
            } else {
                state_ = SessionState::Quarantined;
                backoff_remaining_ = backoffFor(quarantine_failures_);
            }
            // Teardown now: whatever the fault corrupted dies with the
            // renderer; the next recovery attempt rebuilds cold.
            renderer_.reset();
            sorter_stale_ = false;
        } else if (recovering) {
            state_ = SessionState::Healthy;
            ++stats_.recoveries;
            quarantine_failures_ = 0;
            backoff_remaining_ = 0;
        }
        out.rebuilds = rebuilds_;
        out.state = state_;
    }

    if (outcome)
        *outcome = out;
    return true;
}

size_t
Session::drain()
{
    size_t n = 0;
    while (step())
        ++n;
    return n;
}

void
Session::injectStall(int stage, double ms, int frames)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stall_stage_ = stage;
    stall_ms_ = ms;
    stall_frames_ = frames;
}

void
Session::setDurability(durable::DurabilityManager *mgr)
{
    std::lock_guard<std::mutex> lock(mutex_);
    durability_ = mgr;
}

void
Session::exportDurable(SessionDurable &out) const
{
    out.id = id_;
    out.open.trajectory_kind = static_cast<uint8_t>(trajectory_.kind());
    out.open.center = trajectory_.center();
    out.open.radius = trajectory_.radius();
    out.open.speed = trajectory_.speed();
    out.open.width = resolution_.width;
    out.open.height = resolution_.height;
    out.open.qos = qos_;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.submit_seq = submit_seq_;
        out.stats = stats_;
        out.state = static_cast<uint8_t>(state_);
        out.quarantine_failures = quarantine_failures_;
        out.backoff_remaining = backoff_remaining_;
        out.rebuilds = rebuilds_;
        out.queue.clear();
        out.queue.reserve(queue_.size());
        for (const Request &r : queue_)
            out.queue.push_back({r.frame_index, r.submit_seq});
    }
    // Driver-thread state: safe under the quiescence contract (no
    // concurrent step()), which is how the checkpoint paths call this.
    out.budget = budget_.exportState();
    out.sorter_stale = sorter_stale_ ? 1 : 0;
    out.last_drop = last_drop_;
    out.has_renderer = renderer_ != nullptr;
    if (renderer_) {
        out.tables = renderer_->sorter().tables().tables();
        out.prev_ids = renderer_->sorter().trackerPrevIds();
    } else {
        out.tables.clear();
        out.prev_ids.clear();
    }
}

void
Session::restoreDurable(SessionDurable d)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        submit_seq_ = d.submit_seq;
        stats_ = d.stats;
        state_ = static_cast<SessionState>(d.state);
        quarantine_failures_ = d.quarantine_failures;
        backoff_remaining_ = d.backoff_remaining;
        rebuilds_ = d.rebuilds;
        queue_.clear();
        for (const SessionDurable::QueuedRequest &q : d.queue)
            queue_.push_back(Request{q.frame_index, q.submit_seq});
    }
    budget_.restoreState(d.budget);
    sorter_stale_ = d.sorter_stale != 0;
    last_drop_ = d.last_drop;
    if (d.has_renderer) {
        // The constructor built a fresh renderer; adopting the
        // snapshotted tables + tracker membership puts its next frame on
        // the reuse path exactly where the snapshot left off.
        renderer_->restorePersistentState(std::move(d.tables),
                                          std::move(d.prev_ids));
    } else {
        // The session faulted before the snapshot: it is mid-quarantine
        // and the next eligible step() rebuilds cold, as it would have.
        renderer_.reset();
    }
    // watchdog_ stays freshly constructed (warmup): its rolling medians
    // are wall-clock measurements of the dead process.
}

} // namespace neo::serve
