/**
 * @file
 * Per-session quality-of-service declarations and the deadline-driven
 * budget controller of the multi-session serving layer (src/serve/).
 *
 * Each session declares a QosTarget: a per-frame deadline (explicit or
 * derived from a target fps), how far the server may degrade it
 * (resolution tiers, sorter-update skips), how stale a queued request may
 * get, and what happens when its bounded frame queue overflows. The
 * BudgetController turns the measured staged timings of past frames into
 * a prediction for the next one and walks a severity ladder: predicted
 * deadline misses first downgrade the resolution tier, then skip the
 * reuse-sorter update (rendering from a fresh per-tile sort, full
 * re-sort on the next healthy frame); K consecutive on-time frames
 * restore one step. A session with no deadline never degrades — its
 * frames stay bit-identical to a solo run by construction.
 */

#ifndef NEO_SERVE_QOS_H
#define NEO_SERVE_QOS_H

#include <cstddef>
#include <cstdint>

#include "core/neo_renderer.h"
#include "gs/pipeline.h"
#include "sort/dynamic_partial.h"

namespace neo::serve
{

/** What a full per-session frame queue does with new submissions. */
enum class DropPolicy : uint8_t
{
    /** Displace the oldest queued request (latency over completeness). */
    DropOldest,
    /** Reject the submission with a retry-after backoff hint. */
    RejectBackoff,
    /** Replace the newest queued request — the queue converges to the
        latest camera, the natural policy for interactive viewers. */
    CoalesceLatest,
};

/** Lower-case policy name ("drop-oldest", ...). */
const char *dropPolicyName(DropPolicy policy);

/** Parse a policy name; false (and *out untouched) when unrecognized. */
bool parseDropPolicy(const char *value, DropPolicy *out);

/** Per-session quality-of-service target. */
struct QosTarget
{
    /** Target frame rate; 0 disables the deadline unless deadline_ms is
        set explicitly. */
    double target_fps = 0.0;
    /** Explicit per-frame deadline in ms; overrides target_fps when > 0. */
    double deadline_ms = 0.0;
    /** Maximum resolution-tier downgrades (tier t renders at
        width >> t by height >> t) before the controller escalates to
        skipping sorter updates. */
    int max_resolution_drop = 2;
    /** Queued requests more than this many submissions old are dropped
        at dequeue time; 0 keeps everything. */
    int max_staleness = 0;
    /** Bounded frame-queue capacity. */
    size_t queue_capacity = 8;
    DropPolicy drop_policy = DropPolicy::DropOldest;
    /** Consecutive on-time frames required per severity restore step. */
    int restore_after = 4;

    /** Effective per-frame deadline in ms (0 = no deadline). */
    double frameDeadlineMs() const
    {
        if (deadline_ms > 0.0)
            return deadline_ms;
        return target_fps > 0.0 ? 1000.0 / target_fps : 0.0;
    }
};

/** Server-wide configuration (shared by every session). */
struct ServerConfig
{
    /** Admission-control cap on concurrently open sessions. */
    size_t max_sessions = 8;
    /** Pipeline geometry/threads shared by all session renderers. */
    PipelineOptions pipeline = NeoRenderer::neoDefaultOptions();
    /** Dynamic Partial Sorting tunables shared by all sessions. */
    DynamicPartialConfig dps;
    /** Default per-session QoS (overridable per open()). */
    QosTarget default_qos;

    // Stage-watchdog tuning (see watchdog.h): a stage trips when it
    // exceeds factor x its rolling median AND the absolute floor —
    // the floor keeps microsecond-scale stages (tiny test scenes) from
    // tripping on scheduler noise.
    double watchdog_factor = 8.0;
    double watchdog_floor_ms = 20.0;
    int watchdog_warmup = 4;

    // Quarantine retry ladder: a quarantined session waits
    // min(backoff_cap, backoff_base << (failures - 1)) requests between
    // recovery attempts and turns terminally Degraded after
    // quarantine_max_failures failed attempts.
    int quarantine_max_failures = 3;
    int backoff_base = 1;
    int backoff_cap = 16;
};

/**
 * ServerConfig with every NEO_SERVER_* environment knob applied on top
 * of the defaults. All parses are validated full-string strtol/strtod
 * (a malformed value warns once and keeps the default):
 *
 *   NEO_SERVER_MAX_SESSIONS       [1, 4096]
 *   NEO_SERVER_QUEUE_CAP          [1, 65536]
 *   NEO_SERVER_DROP_POLICY        drop-oldest | reject-backoff |
 *                                 coalesce-latest
 *   NEO_SERVER_DEADLINE_MS        [0, 60000] (0 = off)
 *   NEO_SERVER_MAX_STALENESS      [0, 65536] (0 = keep all)
 *   NEO_SERVER_RESTORE_FRAMES     [1, 1024]
 *   NEO_SERVER_WATCHDOG_FACTOR    [1.5, 1000]
 *   NEO_SERVER_WATCHDOG_FLOOR_MS  [0, 60000]
 *   NEO_SERVER_QUARANTINE_RETRIES [1, 64]
 *   NEO_SERVER_BACKOFF_CAP        [1, 4096]
 */
ServerConfig serverConfigFromEnv();

/** What the budget controller asks of the next frame. */
struct DegradePlan
{
    /** Resolution tier to render at (0 = native). */
    int resolution_drop = 0;
    /** Skip the reuse-sorter update (render from a fresh per-tile sort;
        the session resets the sorter before its next reuse frame). */
    bool skip_sorter_update = false;
};

/**
 * Deadline-driven degradation ladder over the measured staged timings.
 * Severity s in [0, max_resolution_drop + 1]: steps 1..max drop the
 * resolution tier, the last step additionally skips sorter updates.
 * record() feeds one frame's measured stages; the predictor is a
 * half-life-one EMA of the frame totals.
 */
class BudgetController
{
  public:
    void configure(const QosTarget &qos)
    {
        qos_ = qos;
        reset();
    }

    /** Drop all prediction state and severity (session rebuild). */
    void reset()
    {
        ema_ms_ = 0.0;
        warm_ = false;
        severity_ = 0;
        on_time_streak_ = 0;
    }

    /** Degradation to apply to the next frame. */
    DegradePlan plan() const
    {
        DegradePlan p;
        p.resolution_drop = severity_ < qos_.max_resolution_drop
                                ? severity_
                                : qos_.max_resolution_drop;
        p.skip_sorter_update = severity_ > qos_.max_resolution_drop;
        return p;
    }

    /** Feed one rendered frame's measured stage timings. */
    void record(const StageTimings &stages);

    int severity() const { return severity_; }
    double predictedMs() const { return ema_ms_; }
    uint64_t degradations() const { return degradations_; }
    uint64_t restores() const { return restores_; }

    /** Complete controller state, for durable snapshots. */
    struct State
    {
        double ema_ms = 0.0;
        bool warm = false;
        int severity = 0;
        int on_time_streak = 0;
        uint64_t degradations = 0;
        uint64_t restores = 0;
    };

    State exportState() const
    {
        return {ema_ms_, warm_, severity_, on_time_streak_,
                degradations_, restores_};
    }

    /** Restore a snapshotted state (configure() with the session's QoS
        first — the target itself is snapshotted by the owner). */
    void restoreState(const State &s)
    {
        ema_ms_ = s.ema_ms;
        warm_ = s.warm;
        severity_ = s.severity;
        on_time_streak_ = s.on_time_streak;
        degradations_ = s.degradations;
        restores_ = s.restores;
    }

  private:
    int maxSeverity() const { return qos_.max_resolution_drop + 1; }

    QosTarget qos_;
    double ema_ms_ = 0.0;
    bool warm_ = false;
    int severity_ = 0;
    int on_time_streak_ = 0;
    uint64_t degradations_ = 0;
    uint64_t restores_ = 0;
};

} // namespace neo::serve

#endif // NEO_SERVE_QOS_H
