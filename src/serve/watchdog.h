/**
 * @file
 * Per-stage watchdog of the serving layer: a monotonic-clock tripwire
 * that flags a pipeline stage taking T times its rolling median — the
 * "session is wedged or thrashing" signal that cannot be derived from
 * integrity fences (a stall corrupts no digest). A trip quarantines the
 * owning session exactly like a FaultReport does.
 *
 * Robustness details: the median comes from a bounded ring of recent
 * samples, tripped samples are excluded from the history (a repeatedly
 * stalling stage must not drag its own median up until stalls look
 * normal), and an absolute floor keeps microsecond-scale stages — tiny
 * test scenes, empty tiles — from tripping on scheduler noise.
 */

#ifndef NEO_SERVE_WATCHDOG_H
#define NEO_SERVE_WATCHDOG_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gs/pipeline.h"

namespace neo::serve
{

/** Rolling-median stage tripwire (see file comment). */
class StageWatchdog
{
  public:
    /** Stages fed by the session's staged render. */
    enum Stage
    {
        Bin = 0,
        Sort = 1,
        Raster = 2,
        kStageCount = 3,
    };

    struct Config
    {
        /** Trip when a sample exceeds factor x rolling median... */
        double factor = 8.0;
        /** ...and this absolute floor in ms. */
        double floor_ms = 20.0;
        /** Samples per stage before the tripwire arms. */
        int warmup = 4;
        /** Ring-buffer window per stage. */
        size_t window = 16;
    };

    void configure(const Config &cfg)
    {
        cfg_ = cfg;
        reset();
    }

    /** Drop all history (session rebuild). */
    void reset();

    /**
     * Feed one sample. Returns true when it trips (sample > factor x
     * median and > floor, with at least warmup prior samples); tripped
     * samples are not added to the history.
     */
    bool observe(int stage, double ms);

    /**
     * Feed one frame's stage breakdown. Returns the first tripping
     * stage, or -1 when all stages passed.
     */
    int observeFrame(const StageTimings &stages);

    /** Rolling median of @p stage (0 with no samples). */
    double rollingMedian(int stage) const;

    uint64_t trips() const { return trips_; }

    static const char *stageName(int stage);

  private:
    struct Ring
    {
        std::vector<double> samples; //!< insertion ring, size <= window
        size_t next = 0;             //!< overwrite cursor once full
    };

    Config cfg_;
    Ring rings_[kStageCount];
    uint64_t trips_ = 0;
    /** Reused median scratch (nth_element input). */
    mutable std::vector<double> scratch_;
};

} // namespace neo::serve

#endif // NEO_SERVE_WATCHDOG_H
