#include "serve/qos.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace neo::serve
{

const char *
dropPolicyName(DropPolicy policy)
{
    switch (policy) {
    case DropPolicy::DropOldest:
        return "drop-oldest";
    case DropPolicy::RejectBackoff:
        return "reject-backoff";
    case DropPolicy::CoalesceLatest:
        return "coalesce-latest";
    }
    return "drop-oldest";
}

bool
parseDropPolicy(const char *value, DropPolicy *out)
{
    if (!value || !out)
        return false;
    if (std::strcmp(value, "drop-oldest") == 0) {
        *out = DropPolicy::DropOldest;
        return true;
    }
    if (std::strcmp(value, "reject-backoff") == 0) {
        *out = DropPolicy::RejectBackoff;
        return true;
    }
    if (std::strcmp(value, "coalesce-latest") == 0) {
        *out = DropPolicy::CoalesceLatest;
        return true;
    }
    return false;
}

namespace
{

// Validated full-string env parses, NEO_THREADS-style: a malformed or
// out-of-range value warns once per knob and keeps the default —
// silently consuming a numeric prefix ("8x" -> 8) is exactly the bug
// class these helpers exist to prevent.

long
envLong(const char *name, long def, long lo, long hi,
        std::atomic<bool> &warned)
{
    const char *env = std::getenv(name);
    if (!env || env[0] == '\0')
        return def;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < lo || v > hi) {
        if (!warned.exchange(true))
            warn("%s='%s' is not an integer in [%ld, %ld]; using %ld",
                 name, env, lo, hi, def);
        return def;
    }
    return v;
}

double
envDouble(const char *name, double def, double lo, double hi,
          std::atomic<bool> &warned)
{
    const char *env = std::getenv(name);
    if (!env || env[0] == '\0')
        return def;
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || !(v >= lo) || !(v <= hi)) {
        if (!warned.exchange(true))
            warn("%s='%s' is not a number in [%g, %g]; using %g", name,
                 env, lo, hi, def);
        return def;
    }
    return v;
}

} // namespace

ServerConfig
serverConfigFromEnv()
{
    ServerConfig cfg;

    static std::atomic<bool> w_sessions{false};
    cfg.max_sessions = static_cast<size_t>(
        envLong("NEO_SERVER_MAX_SESSIONS",
                static_cast<long>(cfg.max_sessions), 1, 4096, w_sessions));

    static std::atomic<bool> w_queue{false};
    cfg.default_qos.queue_capacity = static_cast<size_t>(
        envLong("NEO_SERVER_QUEUE_CAP",
                static_cast<long>(cfg.default_qos.queue_capacity), 1,
                65536, w_queue));

    if (const char *env = std::getenv("NEO_SERVER_DROP_POLICY")) {
        if (env[0] != '\0' &&
            !parseDropPolicy(env, &cfg.default_qos.drop_policy)) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true))
                warn("NEO_SERVER_DROP_POLICY='%s' is not one of "
                     "{drop-oldest,reject-backoff,coalesce-latest}; "
                     "using %s",
                     env, dropPolicyName(cfg.default_qos.drop_policy));
        }
    }

    static std::atomic<bool> w_deadline{false};
    cfg.default_qos.deadline_ms =
        envDouble("NEO_SERVER_DEADLINE_MS", cfg.default_qos.deadline_ms,
                  0.0, 60000.0, w_deadline);

    static std::atomic<bool> w_stale{false};
    cfg.default_qos.max_staleness = static_cast<int>(
        envLong("NEO_SERVER_MAX_STALENESS", cfg.default_qos.max_staleness,
                0, 65536, w_stale));

    static std::atomic<bool> w_restore{false};
    cfg.default_qos.restore_after = static_cast<int>(
        envLong("NEO_SERVER_RESTORE_FRAMES",
                cfg.default_qos.restore_after, 1, 1024, w_restore));

    static std::atomic<bool> w_factor{false};
    cfg.watchdog_factor =
        envDouble("NEO_SERVER_WATCHDOG_FACTOR", cfg.watchdog_factor, 1.5,
                  1000.0, w_factor);

    static std::atomic<bool> w_floor{false};
    cfg.watchdog_floor_ms =
        envDouble("NEO_SERVER_WATCHDOG_FLOOR_MS", cfg.watchdog_floor_ms,
                  0.0, 60000.0, w_floor);

    static std::atomic<bool> w_retries{false};
    cfg.quarantine_max_failures = static_cast<int>(
        envLong("NEO_SERVER_QUARANTINE_RETRIES",
                cfg.quarantine_max_failures, 1, 64, w_retries));

    static std::atomic<bool> w_backoff{false};
    cfg.backoff_cap = static_cast<int>(envLong(
        "NEO_SERVER_BACKOFF_CAP", cfg.backoff_cap, 1, 4096, w_backoff));

    return cfg;
}

void
BudgetController::record(const StageTimings &stages)
{
    const double deadline = qos_.frameDeadlineMs();
    if (deadline <= 0.0)
        return; // no deadline: the controller is inert by design

    const double total = stages.totalMs();
    ema_ms_ = warm_ ? 0.5 * (ema_ms_ + total) : total;
    warm_ = true;

    // Degrade on a miss *or* a predicted miss — the controller is
    // allowed to act one frame early, that is the point of predicting.
    if (total > deadline || ema_ms_ > deadline) {
        on_time_streak_ = 0;
        if (severity_ < maxSeverity()) {
            ++severity_;
            ++degradations_;
        }
        return;
    }
    if (severity_ > 0 && ++on_time_streak_ >= qos_.restore_after) {
        --severity_;
        ++restores_;
        on_time_streak_ = 0;
    }
}

} // namespace neo::serve
