#include "serve/qos.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "common/logging.h"

namespace neo::serve
{

const char *
dropPolicyName(DropPolicy policy)
{
    switch (policy) {
    case DropPolicy::DropOldest:
        return "drop-oldest";
    case DropPolicy::RejectBackoff:
        return "reject-backoff";
    case DropPolicy::CoalesceLatest:
        return "coalesce-latest";
    }
    return "drop-oldest";
}

bool
parseDropPolicy(const char *value, DropPolicy *out)
{
    if (!value || !out)
        return false;
    if (std::strcmp(value, "drop-oldest") == 0) {
        *out = DropPolicy::DropOldest;
        return true;
    }
    if (std::strcmp(value, "reject-backoff") == 0) {
        *out = DropPolicy::RejectBackoff;
        return true;
    }
    if (std::strcmp(value, "coalesce-latest") == 0) {
        *out = DropPolicy::CoalesceLatest;
        return true;
    }
    return false;
}

ServerConfig
serverConfigFromEnv()
{
    using env::envDouble;
    using env::envLong;

    ServerConfig cfg;

    cfg.max_sessions = static_cast<size_t>(
        envLong("NEO_SERVER_MAX_SESSIONS",
                static_cast<long>(cfg.max_sessions), 1, 4096));

    cfg.default_qos.queue_capacity = static_cast<size_t>(
        envLong("NEO_SERVER_QUEUE_CAP",
                static_cast<long>(cfg.default_qos.queue_capacity), 1,
                65536));

    if (const char *env = std::getenv("NEO_SERVER_DROP_POLICY")) {
        if (env[0] != '\0' &&
            !parseDropPolicy(env, &cfg.default_qos.drop_policy)) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true))
                warn("NEO_SERVER_DROP_POLICY='%s' is not one of "
                     "{drop-oldest,reject-backoff,coalesce-latest}; "
                     "using %s",
                     env, dropPolicyName(cfg.default_qos.drop_policy));
        }
    }

    cfg.default_qos.deadline_ms =
        envDouble("NEO_SERVER_DEADLINE_MS", cfg.default_qos.deadline_ms,
                  0.0, 60000.0);

    cfg.default_qos.max_staleness = static_cast<int>(
        envLong("NEO_SERVER_MAX_STALENESS", cfg.default_qos.max_staleness,
                0, 65536));

    cfg.default_qos.restore_after = static_cast<int>(
        envLong("NEO_SERVER_RESTORE_FRAMES",
                cfg.default_qos.restore_after, 1, 1024));

    cfg.watchdog_factor =
        envDouble("NEO_SERVER_WATCHDOG_FACTOR", cfg.watchdog_factor, 1.5,
                  1000.0);

    cfg.watchdog_floor_ms =
        envDouble("NEO_SERVER_WATCHDOG_FLOOR_MS", cfg.watchdog_floor_ms,
                  0.0, 60000.0);

    cfg.quarantine_max_failures = static_cast<int>(
        envLong("NEO_SERVER_QUARANTINE_RETRIES",
                cfg.quarantine_max_failures, 1, 64));

    cfg.backoff_cap = static_cast<int>(
        envLong("NEO_SERVER_BACKOFF_CAP", cfg.backoff_cap, 1, 4096));

    return cfg;
}

void
BudgetController::record(const StageTimings &stages)
{
    const double deadline = qos_.frameDeadlineMs();
    if (deadline <= 0.0)
        return; // no deadline: the controller is inert by design

    const double total = stages.totalMs();
    ema_ms_ = warm_ ? 0.5 * (ema_ms_ + total) : total;
    warm_ = true;

    // Degrade on a miss *or* a predicted miss — the controller is
    // allowed to act one frame early, that is the point of predicting.
    if (total > deadline || ema_ms_ > deadline) {
        on_time_streak_ = 0;
        if (severity_ < maxSeverity()) {
            ++severity_;
            ++degradations_;
        }
        return;
    }
    if (severity_ > 0 && ++on_time_streak_ >= qos_.restore_after) {
        --severity_;
        ++restores_;
        on_time_streak_ = 0;
    }
}

} // namespace neo::serve
