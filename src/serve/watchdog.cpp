#include "serve/watchdog.h"

#include <algorithm>

namespace neo::serve
{

void
StageWatchdog::reset()
{
    for (Ring &r : rings_) {
        r.samples.clear();
        r.next = 0;
    }
    trips_ = 0;
}

double
StageWatchdog::rollingMedian(int stage) const
{
    if (stage < 0 || stage >= kStageCount)
        return 0.0;
    const Ring &r = rings_[stage];
    if (r.samples.empty())
        return 0.0;
    scratch_.assign(r.samples.begin(), r.samples.end());
    const size_t mid = scratch_.size() / 2;
    std::nth_element(scratch_.begin(),
                     scratch_.begin() + static_cast<ptrdiff_t>(mid),
                     scratch_.end());
    return scratch_[mid];
}

bool
StageWatchdog::observe(int stage, double ms)
{
    if (stage < 0 || stage >= kStageCount)
        return false;
    Ring &r = rings_[stage];

    const bool armed =
        r.samples.size() >= static_cast<size_t>(std::max(cfg_.warmup, 1));
    if (armed && ms > cfg_.floor_ms &&
        ms > cfg_.factor * rollingMedian(stage)) {
        ++trips_;
        return true; // tripped sample stays out of the history
    }

    if (r.samples.size() < cfg_.window) {
        r.samples.push_back(ms);
    } else if (!r.samples.empty()) {
        r.samples[r.next] = ms;
        r.next = (r.next + 1) % r.samples.size();
    }
    return false;
}

int
StageWatchdog::observeFrame(const StageTimings &stages)
{
    // Feed every stage (each keeps its history warm) and report the
    // first trip.
    int tripped = -1;
    if (observe(Bin, stages.bin_ms))
        tripped = Bin;
    if (observe(Sort, stages.sort_ms) && tripped < 0)
        tripped = Sort;
    if (observe(Raster, stages.raster_ms) && tripped < 0)
        tripped = Raster;
    return tripped;
}

const char *
StageWatchdog::stageName(int stage)
{
    switch (stage) {
    case Bin:
        return "bin";
    case Sort:
        return "sort";
    case Raster:
        return "raster";
    }
    return "unknown";
}

} // namespace neo::serve
