/**
 * @file
 * Durable serving mode: crash-consistent checkpointing of the
 * multi-session server. The DurabilityManager owns the on-disk state of
 * one NeoServer — a directory holding N snapshot generations
 * (snapshot.h) and one append-only request journal (journal.h) — plus
 * the bookkeeping that ties them together: the snapshot sequence
 * counter, the checkpoint cadence, and the replay flag that keeps
 * journaling quiescent while the journal itself is being replayed.
 *
 * The recovery/checkpoint *orchestration* (which sessions to restore,
 * how to replay a record) lives in NeoServer::enableDurability and the
 * checkpoint methods — the manager is the storage layer under it.
 *
 * Environment knobs (validated via common/env, warn-once on malformed
 * values):
 *
 *   NEO_SERVER_DURABLE_DIR         state directory (enables the mode)
 *   NEO_SERVER_DURABLE_KEEP        snapshot generations kept   [1, 16]
 *   NEO_SERVER_DURABLE_CHECKPOINT  frames between checkpoints  [0, 1e9]
 *                                  (0 = only drain/recovery compactions)
 *   NEO_SERVER_DURABLE_SYNC        journal fdatasync cadence   [0, 1e6]
 *                                  (0 = never, 1 = every record, N =
 *                                  every Nth record)
 */

#ifndef NEO_SERVE_DURABLE_DURABLE_H
#define NEO_SERVE_DURABLE_DURABLE_H

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/durable/journal.h"
#include "serve/durable/snapshot.h"

namespace neo::serve::durable
{

/** Durable-mode configuration (see the knob table above). */
struct DurableConfig
{
    /** State directory; empty disables durability. */
    std::string state_dir;
    int keep_generations = 3;
    /** Accepted submissions between automatic checkpoints (0 = only the
        drain-final and recovery compactions). */
    uint64_t checkpoint_every = 64;
    uint64_t sync_every = 1;
};

/**
 * DurableConfig from the NEO_SERVER_DURABLE_* environment, with
 * @p state_dir (e.g. a --state-dir flag) taking precedence over
 * NEO_SERVER_DURABLE_DIR when non-empty.
 */
DurableConfig durableConfigFromEnv(const std::string &state_dir = "");

/** What recovery found, attested in the Stats wire reply. */
struct RecoveryStatus
{
    /** Durability is enabled for this server. */
    bool durable = false;
    /** Any state was recovered from disk (snapshot and/or journal). */
    bool recovered = false;
    /** Sequence of the snapshot generation loaded (0 = none). */
    uint64_t snapshot_seq = 0;
    /** Sessions restored from that snapshot. */
    uint32_t sessions_restored = 0;
    /** Journal records replayed on top of it. */
    uint64_t journal_replayed = 0;
    /** Corrupt snapshot generations detected and skipped — every one of
        these was refused, never silently loaded. */
    uint32_t generations_skipped = 0;
};

/** Storage layer of the durable serving mode (see file comment). */
class DurabilityManager
{
  public:
    explicit DurabilityManager(DurableConfig cfg) : cfg_(std::move(cfg)) {}

    /**
     * Create the state directory if needed and open the journal. Must
     * succeed before anything else is called. On success the snapshot
     * sequence counter resumes above every generation on disk —
     * including corrupt ones, whose file names still carry their seq.
     */
    bool init(std::string *err = nullptr);

    const DurableConfig &config() const { return cfg_; }
    Journal &journal() { return journal_; }
    RecoveryStatus &status() { return status_; }
    const RecoveryStatus &status() const { return status_; }

    /** True while NeoServer replays the journal: the record hooks below
        no-op, so replayed requests are not re-journaled. */
    bool replaying() const
    {
        return replaying_.load(std::memory_order_relaxed);
    }
    void setReplaying(bool on)
    {
        replaying_.store(on, std::memory_order_relaxed);
    }

    // Write-ahead record hooks (no-ops while replaying).
    void recordOpen(uint32_t session_id, const SessionOpenParams &open);
    void recordSubmit(uint32_t session_id, uint64_t frame_index);
    void recordClose(uint32_t session_id);

    /** Accepted submissions journaled in the current epoch. */
    uint64_t framesJournaled() const
    {
        return frames_journaled_.load(std::memory_order_relaxed);
    }
    /** True when the configured checkpoint cadence has elapsed. */
    bool checkpointDue() const
    {
        return cfg_.checkpoint_every > 0 &&
               frames_since_checkpoint_.load(std::memory_order_relaxed) >=
                   cfg_.checkpoint_every;
    }

    /** Claim the next snapshot sequence number (monotonic; a failed
        write burns it, which is harmless). */
    uint64_t allocSeq() { return next_seq_++; }

    /**
     * Persist @p snap (meta fully filled by the caller) and prune old
     * generations. Resets the checkpoint cadence on success.
     */
    bool writeSnapshot(const ServerSnapshot &snap,
                       std::string *err = nullptr);

    /**
     * Compaction bookkeeping after the compacting snapshot landed:
     * truncate the journal to @p new_epoch and zero the epoch counters.
     */
    bool compactJournal(uint64_t new_epoch);

    /** Bump counters for a replayed-or-restored submission history (so
        frames_journaled reflects the records still in the journal). */
    void noteReplayed(uint64_t submits);

  private:
    const DurableConfig cfg_;
    Journal journal_;
    RecoveryStatus status_;
    std::atomic<bool> replaying_{false};
    std::atomic<uint64_t> frames_journaled_{0};
    std::atomic<uint64_t> frames_since_checkpoint_{0};
    uint64_t next_seq_ = 1;
};

} // namespace neo::serve::durable

#endif // NEO_SERVE_DURABLE_DURABLE_H
