/**
 * @file
 * Little-endian byte codec shared by the durable snapshot and journal
 * formats — the same bounds-checked writer/reader discipline as the wire
 * codec (serve/net/wire.cpp), duplicated here because on-disk state is
 * exactly as untrusted as bytes from a socket: a reader over-read is a
 * corruption signal, never a crash.
 */

#ifndef NEO_SERVE_DURABLE_CODEC_H
#define NEO_SERVE_DURABLE_CODEC_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace neo::serve::durable
{

/** Little-endian writer appending to a byte vector. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<uint8_t> &out) : out_(out) {}

    void u8(uint8_t v) { out_.push_back(v); }
    void u16(uint16_t v)
    {
        out_.push_back(static_cast<uint8_t>(v));
        out_.push_back(static_cast<uint8_t>(v >> 8));
    }
    void u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }
    void u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void f32(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u32(bits);
    }
    void f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
    void boolean(bool v) { u8(v ? 1 : 0); }

  private:
    std::vector<uint8_t> &out_;
};

/** Bounds-checked little-endian reader. ok() goes false on the first
    over-read and every later value reads as zero — callers check once. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t len) : data_(data), len_(len) {}

    bool ok() const { return ok_; }
    bool done() const { return ok_ && off_ == len_; }
    size_t offset() const { return off_; }

    uint8_t u8()
    {
        if (!take(1))
            return 0;
        return data_[off_++];
    }
    uint16_t u16()
    {
        if (!take(2))
            return 0;
        uint16_t v = static_cast<uint16_t>(
            data_[off_] | (static_cast<uint16_t>(data_[off_ + 1]) << 8));
        off_ += 2;
        return v;
    }
    uint32_t u32()
    {
        const uint32_t lo = u16();
        const uint32_t hi = u16();
        return lo | (hi << 16);
    }
    uint64_t u64()
    {
        const uint64_t lo = u32();
        const uint64_t hi = u32();
        return lo | (hi << 32);
    }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }
    float f32()
    {
        const uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    double f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    bool boolean() { return u8() != 0; }

  private:
    bool take(size_t n)
    {
        if (!ok_ || len_ - off_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const uint8_t *data_;
    size_t len_;
    size_t off_ = 0;
    bool ok_ = true;
};

} // namespace neo::serve::durable

#endif // NEO_SERVE_DURABLE_CODEC_H
