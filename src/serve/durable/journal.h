/**
 * @file
 * Append-only request journal of the durable serving mode. Every
 * state-changing request the server accepts — session opens, accepted
 * frame submissions, session closes — is appended as a CRC-fenced record
 * before the caller learns the outcome (write-ahead). Recovery loads the
 * newest digest-verified snapshot and replays the journal suffix past
 * the snapshot's offset; because the serving pipeline is deterministic,
 * replaying the same requests against the restored state reproduces the
 * crashed process bit-identically.
 *
 * File layout (`journal.neoj`, all integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic    "NEOJ" (0x4A4F454E as a LE u32)
 *   4       2     version  kJournalVersion (1)
 *   6       2     reserved (0)
 *   8       8     epoch    pairs records with snapshots (see below)
 *   16      ...   records
 *
 * Each record: {u8 type, u32 length, u32 crc32, payload}. A torn or
 * corrupt record ends the valid prefix: open() scans the file once and
 * truncates everything from the first invalid record on — the
 * crash-mid-append residue — so appends always extend a valid log.
 *
 * Epochs: snapshots store (journal_epoch, journal_offset). The journal
 * is only ever emptied by a *compacting* checkpoint (recovery completion
 * and graceful drain), which first writes a snapshot carrying the new
 * epoch, then truncates the journal to that epoch. A crash between the
 * two leaves a snapshot whose epoch the journal doesn't carry — the
 * loader then replays nothing, which is correct because a compacting
 * snapshot is cut at quiescence. Ordinary periodic checkpoints leave the
 * journal growing under the current epoch, so older snapshot generations
 * (same epoch, earlier offset) remain valid fallbacks.
 */

#ifndef NEO_SERVE_DURABLE_JOURNAL_H
#define NEO_SERVE_DURABLE_JOURNAL_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/session.h"

namespace neo::serve::durable
{

/** "NEOJ" read little-endian. */
inline constexpr uint32_t kJournalMagic = 0x4A4F454Eu;
inline constexpr uint16_t kJournalVersion = 1;
inline constexpr size_t kJournalHeaderSize = 16;
/** Per-record prefix: type + length + crc32. */
inline constexpr size_t kRecordHeaderSize = 9;
/** Sanity cap on one record's payload. */
inline constexpr size_t kMaxRecordPayload = 1u << 16;

/** Record types. */
enum class JournalRecordType : uint8_t
{
    Open = 1,   //!< session admitted (id + open params)
    Submit = 2, //!< frame submission accepted (id + frame index)
    Close = 3,  //!< session closed (id)
};

/** Lower-case record name ("open", "submit", "close"). */
const char *journalRecordName(JournalRecordType type);

/** One journal record (fields beyond `type`'s are ignored). */
struct JournalRecord
{
    JournalRecordType type = JournalRecordType::Submit;
    uint32_t session_id = 0;
    uint64_t frame_index = 0; //!< Submit
    SessionOpenParams open;   //!< Open
};

/**
 * The append-only journal file (see file comment). Thread-safe: appends
 * from concurrent sessions serialize on an internal mutex.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal();
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open or create `dir/journal.neoj`. An existing file has its valid
     * record prefix identified and the torn tail truncated; a missing
     * file is created with epoch 0 ("never compacted"); an existing file
     * whose *header* is corrupt is recreated empty with epoch 0 — the
     * epoch scheme guarantees no snapshot pairs with it, so nothing can
     * be misreplayed, and the recovery-completion compaction immediately
     * moves to a fresh epoch.
     */
    bool open(const std::string &dir, std::string *err = nullptr);

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }
    uint64_t epoch() const;
    /** Byte offset one past the last valid record (>= header size). */
    uint64_t endOffset() const;
    /** Records dropped by open()'s torn-tail truncation. */
    uint64_t tailRecordsLost() const { return tail_lost_; }

    /** fdatasync cadence: 0 never, 1 every append (default), N every
        Nth append. */
    void setSyncEvery(uint64_t n);

    /**
     * Append one record (write-ahead: returns only after the bytes are
     * handed to the kernel, and after fdatasync when the cadence says
     * so). The durability fault hooks ("durable.journal") act here.
     */
    bool append(const JournalRecord &rec);

    /** Flush appended records to stable storage now. */
    void sync();

    /**
     * Read the valid records in [@p offset, endOffset()). The caller
     * has already matched the snapshot's epoch against epoch(). False
     * only on I/O failure; a short or corrupt tail simply ends @p out.
     */
    bool replay(uint64_t offset, std::vector<JournalRecord> *out) const;

    /** Compaction: truncate to an empty log carrying @p new_epoch. */
    bool reset(uint64_t new_epoch);

  private:
    bool writeHeader(uint64_t epoch);

    mutable std::mutex mutex_;
    int fd_ = -1;
    std::string path_;
    uint64_t epoch_ = 0;
    uint64_t end_offset_ = kJournalHeaderSize;
    uint64_t sync_every_ = 1;
    uint64_t unsynced_ = 0;
    uint64_t tail_lost_ = 0;
};

} // namespace neo::serve::durable

#endif // NEO_SERVE_DURABLE_JOURNAL_H
