#include "serve/durable/durable.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <sys/stat.h>

#include "common/env.h"
#include "common/logging.h"

namespace neo::serve::durable
{

DurableConfig
durableConfigFromEnv(const std::string &state_dir)
{
    DurableConfig cfg;
    if (!state_dir.empty()) {
        cfg.state_dir = state_dir;
    } else if (const char *dir = std::getenv("NEO_SERVER_DURABLE_DIR")) {
        cfg.state_dir = dir;
    }
    cfg.keep_generations = static_cast<int>(
        env::envLong("NEO_SERVER_DURABLE_KEEP", 3, 1, 16));
    cfg.checkpoint_every = static_cast<uint64_t>(
        env::envLong("NEO_SERVER_DURABLE_CHECKPOINT", 64, 0, 1000000000));
    cfg.sync_every = static_cast<uint64_t>(
        env::envLong("NEO_SERVER_DURABLE_SYNC", 1, 0, 1000000));
    return cfg;
}

bool
DurabilityManager::init(std::string *err)
{
    if (cfg_.state_dir.empty()) {
        if (err)
            *err = "empty state directory";
        return false;
    }
    if (::mkdir(cfg_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        if (err)
            *err = "mkdir " + cfg_.state_dir + ": " + std::strerror(errno);
        return false;
    }
    if (!journal_.open(cfg_.state_dir, err))
        return false;
    journal_.setSyncEvery(cfg_.sync_every);

    // Resume the sequence counter above everything on disk — corrupt
    // generations included (their file names still carry a seq), so a
    // rewritten generation never collides with a refused one.
    uint64_t top = 0;
    for (const SnapshotFile &f : listSnapshots(cfg_.state_dir))
        top = f.seq > top ? f.seq : top;
    next_seq_ = top + 1;

    status_.durable = true;
    return true;
}

void
DurabilityManager::recordOpen(uint32_t session_id,
                              const SessionOpenParams &open)
{
    if (replaying())
        return;
    JournalRecord rec;
    rec.type = JournalRecordType::Open;
    rec.session_id = session_id;
    rec.open = open;
    journal_.append(rec);
}

void
DurabilityManager::recordSubmit(uint32_t session_id, uint64_t frame_index)
{
    if (replaying())
        return;
    JournalRecord rec;
    rec.type = JournalRecordType::Submit;
    rec.session_id = session_id;
    rec.frame_index = frame_index;
    journal_.append(rec);
    frames_journaled_.fetch_add(1, std::memory_order_relaxed);
    frames_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
}

void
DurabilityManager::recordClose(uint32_t session_id)
{
    if (replaying())
        return;
    JournalRecord rec;
    rec.type = JournalRecordType::Close;
    rec.session_id = session_id;
    journal_.append(rec);
}

bool
DurabilityManager::writeSnapshot(const ServerSnapshot &snap,
                                 std::string *err)
{
    if (!writeSnapshotFile(cfg_.state_dir, snap, err))
        return false;
    pruneSnapshots(cfg_.state_dir, cfg_.keep_generations);
    frames_since_checkpoint_.store(0, std::memory_order_relaxed);
    return true;
}

bool
DurabilityManager::compactJournal(uint64_t new_epoch)
{
    if (!journal_.reset(new_epoch))
        return false;
    frames_journaled_.store(0, std::memory_order_relaxed);
    frames_since_checkpoint_.store(0, std::memory_order_relaxed);
    return true;
}

void
DurabilityManager::noteReplayed(uint64_t submits)
{
    frames_journaled_.fetch_add(submits, std::memory_order_relaxed);
    frames_since_checkpoint_.fetch_add(submits, std::memory_order_relaxed);
}

} // namespace neo::serve::durable
