/**
 * @file
 * Versioned, integrity-fenced snapshot container of the durable serving
 * mode (serve/durable/). A snapshot captures the complete
 * session-critical state of a NeoServer — every live session's
 * SessionDurable (frame position, queue, QoS/degradation ladder,
 * persistent sorter tables, delta-tracker membership) plus the journal
 * coordinates it pairs with — so that a restarted process can reload it
 * and deterministically replay the journal suffix.
 *
 * Container layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic         "NEOS" (0x534F454E as a LE u32)
 *   4       4     version       kSnapshotVersion (1)
 *   8       4     section count
 *   12      ...   sections
 *   end-8   8     Digest64 over every preceding byte
 *
 * Each section:
 *
 *   0       4     type          SectionType
 *   4       4     length        payload byte count
 *   8       4     crc32         IEEE CRC-32 over the payload bytes
 *   12      len   payload
 *
 * Two integrity fences on purpose: the per-section CRC localizes a
 * corrupt byte to one section (the torn-file taxonomy tests assert the
 * typed reason per section), and the whole-file Digest64 trailer catches
 * anything the section walk cannot see — truncation at a section
 * boundary, bytes appended after the last section, a corrupted header.
 * A loader failure is never silent: every exit path is a typed
 * SnapshotError, and the recovery driver falls back a generation (or
 * cold-starts) on anything but Ok.
 *
 * Files are written atomically — encode to `<name>.tmp`, fsync, rename
 * into `snap-<seq>.neosnap`, fsync the directory — so a crash at any
 * instant leaves either the previous generation set intact or the new
 * file complete, never a half-written current snapshot.
 */

#ifndef NEO_SERVE_DURABLE_SNAPSHOT_H
#define NEO_SERVE_DURABLE_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/session.h"

namespace neo::serve::durable
{

class ByteWriter;
class ByteReader;

/** "NEOS" read little-endian. */
inline constexpr uint32_t kSnapshotMagic = 0x534F454Eu;
inline constexpr uint32_t kSnapshotVersion = 1;
/** Fixed prefix: magic + version + section count. */
inline constexpr size_t kSnapshotHeaderSize = 12;
/** Per-section prefix: type + length + crc32. */
inline constexpr size_t kSectionHeaderSize = 12;
/** Whole-file Digest64 trailer. */
inline constexpr size_t kSnapshotTrailerSize = 8;

/** Section types. */
enum class SectionType : uint32_t
{
    Meta = 1,    //!< exactly one per snapshot, first section
    Session = 2, //!< one per live session
};

/** Typed loader failures (the torn-file taxonomy). */
enum class SnapshotError : uint16_t
{
    Ok = 0,
    OpenFailed = 1,      //!< file missing or unreadable
    TooShort = 2,        //!< smaller than header + trailer
    BadMagic = 3,        //!< not a snapshot file
    BadVersion = 4,      //!< written by an unknown format revision
    DigestMismatch = 5,  //!< whole-file Digest64 trailer failed
    SectionOverrun = 6,  //!< a section's declared length overruns the file
    SectionCrc = 7,      //!< a section's payload checksum failed
    BadSectionPayload = 8, //!< payload malformed for its section type
    TrailingBytes = 9,   //!< bytes between the last section and trailer
    MissingMeta = 10,    //!< no Meta section
    DuplicateMeta = 11,  //!< more than one Meta section
    SessionCountMismatch = 12, //!< Meta's count != Session sections seen
};

/** Lower-case error name ("digest-mismatch", ...). */
const char *snapshotErrorName(SnapshotError error);

/** Journal coordinates and bookkeeping of one snapshot. */
struct SnapshotMeta
{
    /** Monotonic snapshot sequence number (also in the file name). */
    uint64_t seq = 0;
    /** Journal epoch this snapshot pairs with: replay only applies when
        the journal on disk carries the same epoch. */
    uint64_t journal_epoch = 0;
    /** Byte offset into that journal where replay starts — everything
        before it is already folded into the sessions below. */
    uint64_t journal_offset = 0;
    /** Accepted submissions journaled when the snapshot was cut
        (informational, shown by the recovery attestation). */
    uint64_t frames_journaled = 0;
};

/** One complete snapshot: meta + every live session's durable state. */
struct ServerSnapshot
{
    SnapshotMeta meta;
    std::vector<SessionDurable> sessions;
};

/** Field-level open-params codec, shared with the journal's Open
    records (validated on read: out-of-range values are corruption). */
void writeOpenParams(ByteWriter &w, const SessionOpenParams &p);
bool readOpenParams(ByteReader &r, SessionOpenParams *out);

/** Encode @p snap into the container format described above. */
std::vector<uint8_t> encodeSnapshot(const ServerSnapshot &snap);

/** Decode a container image. @p out is valid only on Ok. */
SnapshotError decodeSnapshot(const uint8_t *data, size_t len,
                             ServerSnapshot *out);

/** Snapshot file name for sequence number @p seq ("snap-17.neosnap"). */
std::string snapshotFileName(uint64_t seq);

/**
 * Atomically write @p snap to `dir/snap-<meta.seq>.neosnap` (temp +
 * fsync + rename + directory fsync). The durability faultinject hooks
 * ("durable.snapshot") act on this path: an armed TornWrite persists a
 * prefix, FlipBit corrupts one encoded bit, AbortRename leaves only the
 * temp file — exactly the states a crash or disk fault produces. False
 * on failure (with @p err describing it when non-null).
 */
bool writeSnapshotFile(const std::string &dir, const ServerSnapshot &snap,
                       std::string *err = nullptr);

/** Load and fully validate one snapshot file. */
SnapshotError loadSnapshotFile(const std::string &path,
                               ServerSnapshot *out);

/** One discovered snapshot generation. */
struct SnapshotFile
{
    uint64_t seq = 0;
    std::string path;
};

/** All `snap-*.neosnap` files in @p dir, newest (highest seq) first. */
std::vector<SnapshotFile> listSnapshots(const std::string &dir);

/** Delete all but the @p keep newest generations (and any stale temp
    files left by an interrupted write). */
void pruneSnapshots(const std::string &dir, int keep);

} // namespace neo::serve::durable

#endif // NEO_SERVE_DURABLE_SNAPSHOT_H
