#include "serve/durable/journal.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/faultinject.h"
#include "common/logging.h"
#include "serve/durable/codec.h"
#include "serve/durable/snapshot.h" // open-params codec
#include "serve/net/wire.h"         // crc32

namespace neo::serve::durable
{

const char *
journalRecordName(JournalRecordType type)
{
    switch (type) {
    case JournalRecordType::Open:
        return "open";
    case JournalRecordType::Submit:
        return "submit";
    case JournalRecordType::Close:
        return "close";
    }
    return "unknown";
}

namespace
{

void
encodeRecordPayload(std::vector<uint8_t> &out, const JournalRecord &rec)
{
    ByteWriter w(out);
    w.u32(rec.session_id);
    switch (rec.type) {
    case JournalRecordType::Open:
        writeOpenParams(w, rec.open);
        break;
    case JournalRecordType::Submit:
        w.u64(rec.frame_index);
        break;
    case JournalRecordType::Close:
        break;
    }
}

bool
decodeRecordPayload(uint8_t type, const uint8_t *data, size_t len,
                    JournalRecord *out)
{
    ByteReader r(data, len);
    JournalRecord rec;
    rec.session_id = r.u32();
    switch (static_cast<JournalRecordType>(type)) {
    case JournalRecordType::Open:
        rec.type = JournalRecordType::Open;
        if (!readOpenParams(r, &rec.open))
            return false;
        break;
    case JournalRecordType::Submit:
        rec.type = JournalRecordType::Submit;
        rec.frame_index = r.u64();
        break;
    case JournalRecordType::Close:
        rec.type = JournalRecordType::Close;
        break;
    default:
        return false;
    }
    if (!r.done())
        return false;
    *out = rec;
    return true;
}

bool
writeAllAt(int fd, const uint8_t *data, size_t len, uint64_t offset)
{
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::pwrite(fd, data + off, len - off,
                                   static_cast<off_t>(offset + off));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
readAllFrom(int fd, uint64_t offset, std::vector<uint8_t> *out)
{
    out->clear();
    uint8_t buf[1 << 16];
    uint64_t pos = offset;
    for (;;) {
        const ssize_t n =
            ::pread(fd, buf, sizeof(buf), static_cast<off_t>(pos));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return true;
        out->insert(out->end(), buf, buf + n);
        pos += static_cast<uint64_t>(n);
    }
}

/** Length of the valid record prefix of @p data (record bytes only,
    header excluded); counts whole valid records into @p records. */
size_t
validPrefix(const uint8_t *data, size_t len, uint64_t *records)
{
    size_t off = 0;
    *records = 0;
    while (len - off >= kRecordHeaderSize) {
        ByteReader h(data + off, kRecordHeaderSize);
        const uint8_t type = h.u8();
        const uint32_t length = h.u32();
        const uint32_t crc = h.u32();
        if (length > kMaxRecordPayload)
            break;
        if (len - off - kRecordHeaderSize < length)
            break;
        const uint8_t *payload = data + off + kRecordHeaderSize;
        if (net::crc32(payload, length) != crc)
            break;
        JournalRecord rec;
        if (!decodeRecordPayload(type, payload, length, &rec))
            break;
        off += kRecordHeaderSize + length;
        ++*records;
    }
    return off;
}

} // namespace

Journal::~Journal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

uint64_t
Journal::epoch() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
}

uint64_t
Journal::endOffset() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return end_offset_;
}

void
Journal::setSyncEvery(uint64_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sync_every_ = n;
}

bool
Journal::writeHeader(uint64_t epoch)
{
    std::vector<uint8_t> header;
    ByteWriter w(header);
    w.u32(kJournalMagic);
    w.u16(kJournalVersion);
    w.u16(0);
    w.u64(epoch);
    if (!writeAllAt(fd_, header.data(), header.size(), 0))
        return false;
    return ::fdatasync(fd_) == 0;
}

bool
Journal::open(const std::string &dir, std::string *err)
{
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = dir + "/journal.neoj";
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
        if (err)
            *err = "open " + path_ + ": " + std::strerror(errno);
        return false;
    }

    std::vector<uint8_t> data;
    if (!readAllFrom(fd_, 0, &data)) {
        if (err)
            *err = "read " + path_ + ": " + std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
    }

    bool header_ok = false;
    uint64_t epoch = 0;
    if (data.size() >= kJournalHeaderSize) {
        ByteReader h(data.data(), kJournalHeaderSize);
        const uint32_t magic = h.u32();
        const uint16_t version = h.u16();
        h.u16();
        epoch = h.u64();
        header_ok = magic == kJournalMagic && version == kJournalVersion;
    }

    if (!header_ok) {
        // Fresh file, or a header too corrupt to trust: an empty log
        // with epoch 0, which by construction no snapshot pairs with.
        if (!data.empty() && data.size() >= kJournalHeaderSize)
            warn("durable: journal header corrupt; starting a fresh "
                 "epoch (nothing will be replayed from it)");
        epoch_ = 0;
        end_offset_ = kJournalHeaderSize;
        tail_lost_ = 0;
        if (::ftruncate(fd_, 0) != 0 || !writeHeader(0)) {
            if (err)
                *err = "init " + path_ + ": " + std::strerror(errno);
            ::close(fd_);
            fd_ = -1;
            return false;
        }
        return true;
    }

    // Identify the valid record prefix and drop the crash-mid-append
    // tail so appends always extend a valid log.
    uint64_t records = 0;
    const size_t prefix = validPrefix(data.data() + kJournalHeaderSize,
                                      data.size() - kJournalHeaderSize,
                                      &records);
    const uint64_t valid_end = kJournalHeaderSize + prefix;
    tail_lost_ = data.size() - valid_end > 0 ? 1 : 0;
    if (valid_end < data.size()) {
        warn("durable: journal %s: truncating %zu torn tail byte(s) "
             "after %llu valid record(s)",
             path_.c_str(), data.size() - static_cast<size_t>(valid_end),
             static_cast<unsigned long long>(records));
        if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
            if (err)
                *err = "truncate " + path_ + ": " + std::strerror(errno);
            ::close(fd_);
            fd_ = -1;
            return false;
        }
    }
    epoch_ = epoch;
    end_offset_ = valid_end;
    return true;
}

bool
Journal::append(const JournalRecord &rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return false;

    std::vector<uint8_t> payload;
    encodeRecordPayload(payload, rec);
    std::vector<uint8_t> buf;
    ByteWriter w(buf);
    w.u8(static_cast<uint8_t>(rec.type));
    w.u32(static_cast<uint32_t>(payload.size()));
    w.u32(net::crc32(payload.data(), payload.size()));
    buf.insert(buf.end(), payload.begin(), payload.end());

    // Fault hooks (see common/faultinject.h): FlipBit corrupts the
    // record in flight, TornWrite persists a prefix. Either way the
    // in-memory offset advances as if the append succeeded — exactly
    // what a process that crashed (or whose disk lied) believed — and
    // the next open() truncates the residue.
    faultinject::durableCorrupt("durable.journal", buf.data(), buf.size());
    const size_t persist =
        faultinject::durableWriteLimit("durable.journal", buf.size());
    if (!writeAllAt(fd_, buf.data(), persist, end_offset_))
        return false;
    end_offset_ += buf.size();

    if (sync_every_ > 0 && ++unsynced_ >= sync_every_) {
        ::fdatasync(fd_);
        unsynced_ = 0;
    }
    return true;
}

void
Journal::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::fdatasync(fd_);
        unsynced_ = 0;
    }
}

bool
Journal::replay(uint64_t offset, std::vector<JournalRecord> *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out->clear();
    if (fd_ < 0)
        return false;
    if (offset < kJournalHeaderSize || offset >= end_offset_)
        return true; // nothing (or nothing valid) to replay
    std::vector<uint8_t> data;
    if (!readAllFrom(fd_, offset, &data))
        return false;
    if (data.size() > end_offset_ - offset)
        data.resize(end_offset_ - offset);
    size_t off = 0;
    while (data.size() - off >= kRecordHeaderSize) {
        ByteReader h(data.data() + off, kRecordHeaderSize);
        const uint8_t type = h.u8();
        const uint32_t length = h.u32();
        const uint32_t crc = h.u32();
        if (length > kMaxRecordPayload ||
            data.size() - off - kRecordHeaderSize < length)
            break;
        const uint8_t *payload = data.data() + off + kRecordHeaderSize;
        if (net::crc32(payload, length) != crc)
            break;
        JournalRecord rec;
        if (!decodeRecordPayload(type, payload, length, &rec))
            break;
        out->push_back(rec);
        off += kRecordHeaderSize + length;
    }
    return true;
}

bool
Journal::reset(uint64_t new_epoch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return false;
    if (::ftruncate(fd_, 0) != 0)
        return false;
    if (!writeHeader(new_epoch))
        return false;
    epoch_ = new_epoch;
    end_offset_ = kJournalHeaderSize;
    unsynced_ = 0;
    return true;
}

} // namespace neo::serve::durable
