#include "serve/durable/snapshot.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/digest.h"
#include "common/faultinject.h"
#include "serve/durable/codec.h"
#include "serve/net/wire.h" // crc32

namespace neo::serve::durable
{

const char *
snapshotErrorName(SnapshotError error)
{
    switch (error) {
    case SnapshotError::Ok:
        return "ok";
    case SnapshotError::OpenFailed:
        return "open-failed";
    case SnapshotError::TooShort:
        return "too-short";
    case SnapshotError::BadMagic:
        return "bad-magic";
    case SnapshotError::BadVersion:
        return "bad-version";
    case SnapshotError::DigestMismatch:
        return "digest-mismatch";
    case SnapshotError::SectionOverrun:
        return "section-overrun";
    case SnapshotError::SectionCrc:
        return "section-crc";
    case SnapshotError::BadSectionPayload:
        return "bad-section-payload";
    case SnapshotError::TrailingBytes:
        return "trailing-bytes";
    case SnapshotError::MissingMeta:
        return "missing-meta";
    case SnapshotError::DuplicateMeta:
        return "duplicate-meta";
    case SnapshotError::SessionCountMismatch:
        return "session-count-mismatch";
    }
    return "ok";
}

// --- Field-level payload codecs ----------------------------------------

void
writeOpenParams(ByteWriter &w, const SessionOpenParams &p)
{
    w.u8(p.trajectory_kind);
    w.f32(p.center.x);
    w.f32(p.center.y);
    w.f32(p.center.z);
    w.f32(p.radius);
    w.f32(p.speed);
    w.i32(p.width);
    w.i32(p.height);
    w.f64(p.qos.target_fps);
    w.f64(p.qos.deadline_ms);
    w.i32(p.qos.max_resolution_drop);
    w.i32(p.qos.max_staleness);
    w.u64(p.qos.queue_capacity);
    w.u8(static_cast<uint8_t>(p.qos.drop_policy));
    w.i32(p.qos.restore_after);
}

bool
readOpenParams(ByteReader &r, SessionOpenParams *out)
{
    SessionOpenParams p;
    p.trajectory_kind = r.u8();
    p.center.x = r.f32();
    p.center.y = r.f32();
    p.center.z = r.f32();
    p.radius = r.f32();
    p.speed = r.f32();
    p.width = r.i32();
    p.height = r.i32();
    p.qos.target_fps = r.f64();
    p.qos.deadline_ms = r.f64();
    p.qos.max_resolution_drop = r.i32();
    p.qos.max_staleness = r.i32();
    p.qos.queue_capacity = static_cast<size_t>(r.u64());
    const uint8_t policy = r.u8();
    p.qos.restore_after = r.i32();
    if (!r.ok())
        return false;
    // Range checks: this file may be arbitrarily corrupt; a value the
    // constructor would never have seen is corruption, not a request.
    if (p.trajectory_kind > 2 || policy > 2)
        return false;
    if (p.width < 1 || p.width > 65536 || p.height < 1 ||
        p.height > 65536)
        return false;
    p.qos.drop_policy = static_cast<DropPolicy>(policy);
    *out = p;
    return true;
}

namespace
{

void
writeTileVectors(ByteWriter &w,
                 const std::vector<std::vector<TileEntry>> &tables)
{
    w.u32(static_cast<uint32_t>(tables.size()));
    for (const std::vector<TileEntry> &t : tables) {
        w.u32(static_cast<uint32_t>(t.size()));
        for (const TileEntry &e : t) {
            w.u32(e.id);
            w.f32(e.depth);
            w.u8(e.valid ? 1 : 0);
        }
    }
}

bool
readTileVectors(ByteReader &r,
                std::vector<std::vector<TileEntry>> *out)
{
    // No reserve() from untrusted counts: each loop iteration consumes
    // bytes, so the reader's bounds check caps memory at the payload
    // size long before a hostile count matters.
    const uint32_t tiles = r.u32();
    out->clear();
    for (uint32_t t = 0; t < tiles && r.ok(); ++t) {
        out->emplace_back();
        const uint32_t entries = r.u32();
        for (uint32_t i = 0; i < entries && r.ok(); ++i) {
            TileEntry e;
            e.id = r.u32();
            e.depth = r.f32();
            const uint8_t valid = r.u8();
            if (valid > 1)
                return false;
            e.valid = valid != 0;
            out->back().push_back(e);
        }
    }
    return r.ok();
}

void
writeIdVectors(ByteWriter &w,
               const std::vector<std::vector<GaussianId>> &ids)
{
    w.u32(static_cast<uint32_t>(ids.size()));
    for (const std::vector<GaussianId> &t : ids) {
        w.u32(static_cast<uint32_t>(t.size()));
        for (GaussianId id : t)
            w.u32(id);
    }
}

bool
readIdVectors(ByteReader &r, std::vector<std::vector<GaussianId>> *out)
{
    const uint32_t tiles = r.u32();
    out->clear();
    for (uint32_t t = 0; t < tiles && r.ok(); ++t) {
        out->emplace_back();
        const uint32_t count = r.u32();
        for (uint32_t i = 0; i < count && r.ok(); ++i)
            out->back().push_back(r.u32());
    }
    return r.ok();
}

void
encodeSessionPayload(std::vector<uint8_t> &out, const SessionDurable &s)
{
    ByteWriter w(out);
    w.u32(s.id);
    writeOpenParams(w, s.open);
    w.u64(s.submit_seq);
    w.u64(s.stats.submitted);
    w.u64(s.stats.accepted);
    w.u64(s.stats.rejected);
    w.u64(s.stats.dropped_oldest);
    w.u64(s.stats.coalesced);
    w.u64(s.stats.dropped_stale);
    w.u64(s.stats.backoff_skips);
    w.u64(s.stats.rendered);
    w.u64(s.stats.deadline_misses);
    w.u64(s.stats.degraded_frames);
    w.u64(s.stats.faults);
    w.u64(s.stats.watchdog_trips);
    w.u64(s.stats.quarantines);
    w.u64(s.stats.recoveries);
    w.u8(s.state);
    w.i32(s.quarantine_failures);
    w.i32(s.backoff_remaining);
    w.u32(s.rebuilds);
    w.u8(s.sorter_stale);
    w.i32(s.last_drop);
    w.u32(static_cast<uint32_t>(s.queue.size()));
    for (const SessionDurable::QueuedRequest &q : s.queue) {
        w.u64(q.frame_index);
        w.u64(q.submit_seq);
    }
    w.f64(s.budget.ema_ms);
    w.boolean(s.budget.warm);
    w.i32(s.budget.severity);
    w.i32(s.budget.on_time_streak);
    w.u64(s.budget.degradations);
    w.u64(s.budget.restores);
    w.u8(s.has_renderer);
    writeTileVectors(w, s.tables);
    writeIdVectors(w, s.prev_ids);
}

bool
decodeSessionPayload(const uint8_t *data, size_t len, SessionDurable *out)
{
    ByteReader r(data, len);
    SessionDurable s;
    s.id = r.u32();
    if (!readOpenParams(r, &s.open))
        return false;
    s.submit_seq = r.u64();
    s.stats.submitted = r.u64();
    s.stats.accepted = r.u64();
    s.stats.rejected = r.u64();
    s.stats.dropped_oldest = r.u64();
    s.stats.coalesced = r.u64();
    s.stats.dropped_stale = r.u64();
    s.stats.backoff_skips = r.u64();
    s.stats.rendered = r.u64();
    s.stats.deadline_misses = r.u64();
    s.stats.degraded_frames = r.u64();
    s.stats.faults = r.u64();
    s.stats.watchdog_trips = r.u64();
    s.stats.quarantines = r.u64();
    s.stats.recoveries = r.u64();
    s.state = r.u8();
    s.quarantine_failures = r.i32();
    s.backoff_remaining = r.i32();
    s.rebuilds = r.u32();
    s.sorter_stale = r.u8();
    s.last_drop = r.i32();
    const uint32_t queued = r.u32();
    for (uint32_t i = 0; i < queued && r.ok(); ++i) {
        SessionDurable::QueuedRequest q;
        q.frame_index = r.u64();
        q.submit_seq = r.u64();
        s.queue.push_back(q);
    }
    s.budget.ema_ms = r.f64();
    s.budget.warm = r.boolean();
    s.budget.severity = r.i32();
    s.budget.on_time_streak = r.i32();
    s.budget.degradations = r.u64();
    s.budget.restores = r.u64();
    s.has_renderer = r.u8();
    if (!readTileVectors(r, &s.tables))
        return false;
    if (!readIdVectors(r, &s.prev_ids))
        return false;
    if (!r.done())
        return false;
    if (s.state > 2 || s.sorter_stale > 1 || s.has_renderer > 1)
        return false;
    *out = std::move(s);
    return true;
}

void
encodeMetaPayload(std::vector<uint8_t> &out, const SnapshotMeta &meta,
                  uint32_t session_count)
{
    ByteWriter w(out);
    w.u64(meta.seq);
    w.u64(meta.journal_epoch);
    w.u64(meta.journal_offset);
    w.u64(meta.frames_journaled);
    w.u32(session_count);
}

bool
decodeMetaPayload(const uint8_t *data, size_t len, SnapshotMeta *out,
                  uint32_t *session_count)
{
    ByteReader r(data, len);
    SnapshotMeta m;
    m.seq = r.u64();
    m.journal_epoch = r.u64();
    m.journal_offset = r.u64();
    m.frames_journaled = r.u64();
    const uint32_t count = r.u32();
    if (!r.done())
        return false;
    *out = m;
    *session_count = count;
    return true;
}

void
appendSection(std::vector<uint8_t> &out, SectionType type,
              const std::vector<uint8_t> &payload)
{
    ByteWriter w(out);
    w.u32(static_cast<uint32_t>(type));
    w.u32(static_cast<uint32_t>(payload.size()));
    w.u32(net::crc32(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

} // namespace

// --- Container ---------------------------------------------------------

std::vector<uint8_t>
encodeSnapshot(const ServerSnapshot &snap)
{
    std::vector<uint8_t> out;
    {
        ByteWriter w(out);
        w.u32(kSnapshotMagic);
        w.u32(kSnapshotVersion);
        w.u32(static_cast<uint32_t>(1 + snap.sessions.size()));
    }
    std::vector<uint8_t> payload;
    encodeMetaPayload(payload, snap.meta,
                      static_cast<uint32_t>(snap.sessions.size()));
    appendSection(out, SectionType::Meta, payload);
    for (const SessionDurable &s : snap.sessions) {
        payload.clear();
        encodeSessionPayload(payload, s);
        appendSection(out, SectionType::Session, payload);
    }
    Digest64 d;
    d.bytes(out.data(), out.size());
    ByteWriter w(out);
    w.u64(d.finish());
    return out;
}

SnapshotError
decodeSnapshot(const uint8_t *data, size_t len, ServerSnapshot *out)
{
    if (len < kSnapshotHeaderSize + kSnapshotTrailerSize)
        return SnapshotError::TooShort;

    ByteReader header(data, kSnapshotHeaderSize);
    if (header.u32() != kSnapshotMagic)
        return SnapshotError::BadMagic;
    if (header.u32() != kSnapshotVersion)
        return SnapshotError::BadVersion;
    const uint32_t sections = header.u32();

    // Walk the sections first so a localized fault reports a localized
    // reason (the torn-file taxonomy); the whole-file digest below is
    // the catch-all for anything the structural walk cannot see.
    ServerSnapshot snap;
    uint32_t meta_count = 0;
    uint32_t meta_sessions = 0;
    const size_t body_end = len - kSnapshotTrailerSize;
    size_t off = kSnapshotHeaderSize;
    for (uint32_t i = 0; i < sections; ++i) {
        if (body_end - off < kSectionHeaderSize)
            return SnapshotError::SectionOverrun;
        ByteReader sh(data + off, kSectionHeaderSize);
        const uint32_t type = sh.u32();
        const uint32_t length = sh.u32();
        const uint32_t crc = sh.u32();
        off += kSectionHeaderSize;
        if (body_end - off < length)
            return SnapshotError::SectionOverrun;
        const uint8_t *payload = data + off;
        if (net::crc32(payload, length) != crc)
            return SnapshotError::SectionCrc;
        switch (static_cast<SectionType>(type)) {
        case SectionType::Meta:
            if (++meta_count > 1)
                return SnapshotError::DuplicateMeta;
            if (!decodeMetaPayload(payload, length, &snap.meta,
                                   &meta_sessions))
                return SnapshotError::BadSectionPayload;
            break;
        case SectionType::Session: {
            SessionDurable s;
            if (!decodeSessionPayload(payload, length, &s))
                return SnapshotError::BadSectionPayload;
            snap.sessions.push_back(std::move(s));
            break;
        }
        default:
            // A type this build does not know inside a CRC-valid section
            // is format skew, not corruption — but with a single version
            // in existence it can only be corruption that landed in the
            // type field with a compensating CRC, so reject it.
            return SnapshotError::BadSectionPayload;
        }
        off += length;
    }
    if (off != body_end)
        return SnapshotError::TrailingBytes;
    if (meta_count == 0)
        return SnapshotError::MissingMeta;
    if (meta_sessions != snap.sessions.size())
        return SnapshotError::SessionCountMismatch;

    Digest64 d;
    d.bytes(data, body_end);
    ByteReader trailer(data + body_end, kSnapshotTrailerSize);
    if (trailer.u64() != d.finish())
        return SnapshotError::DigestMismatch;

    *out = std::move(snap);
    return SnapshotError::Ok;
}

// --- Files -------------------------------------------------------------

std::string
snapshotFileName(uint64_t seq)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "snap-%llu.neosnap",
                  static_cast<unsigned long long>(seq));
    return buf;
}

namespace
{

bool
writeAll(int fd, const uint8_t *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

void
fsyncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

void
setErr(std::string *err, const std::string &what)
{
    if (err)
        *err = what + ": " + std::strerror(errno);
}

} // namespace

bool
writeSnapshotFile(const std::string &dir, const ServerSnapshot &snap,
                  std::string *err)
{
    std::vector<uint8_t> image = encodeSnapshot(snap);
    // Fault hooks on the production path (see common/faultinject.h):
    // FlipBit models rot the writer never notices, TornWrite a crash
    // that leaves a prefix, AbortRename a kill between write and rename.
    faultinject::durableCorrupt("durable.snapshot", image.data(),
                                image.size());
    const size_t persist =
        faultinject::durableWriteLimit("durable.snapshot", image.size());

    const std::string final_path = dir + "/" + snapshotFileName(snap.meta.seq);
    const std::string tmp_path = final_path + ".tmp";
    const int fd =
        ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setErr(err, "open " + tmp_path);
        return false;
    }
    const bool wrote = writeAll(fd, image.data(), persist);
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!wrote || !synced) {
        setErr(err, "write " + tmp_path);
        ::unlink(tmp_path.c_str());
        return false;
    }
    if (faultinject::durableAbortRename("durable.snapshot")) {
        // Simulated kill between write and rename: the temp file stays
        // behind (prune collects it) and the previous generation is
        // still the newest — exactly the crash window's residue.
        if (err)
            *err = "aborted before rename (fault injection)";
        return false;
    }
    if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        setErr(err, "rename " + final_path);
        ::unlink(tmp_path.c_str());
        return false;
    }
    fsyncDir(dir);
    return true;
}

SnapshotError
loadSnapshotFile(const std::string &path, ServerSnapshot *out)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return SnapshotError::OpenFailed;
    std::vector<uint8_t> data;
    uint8_t buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return SnapshotError::OpenFailed;
        }
        if (n == 0)
            break;
        data.insert(data.end(), buf, buf + n);
    }
    ::close(fd);
    return decodeSnapshot(data.data(), data.size(), out);
}

std::vector<SnapshotFile>
listSnapshots(const std::string &dir)
{
    std::vector<SnapshotFile> found;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return found;
    while (struct dirent *e = ::readdir(d)) {
        const char *name = e->d_name;
        unsigned long long seq = 0;
        int consumed = 0;
        if (std::sscanf(name, "snap-%llu.neosnap%n", &seq, &consumed) ==
                1 &&
            consumed > 0 && name[consumed] == '\0') {
            SnapshotFile f;
            f.seq = seq;
            f.path = dir + "/" + name;
            found.push_back(std::move(f));
        }
    }
    ::closedir(d);
    std::sort(found.begin(), found.end(),
              [](const SnapshotFile &a, const SnapshotFile &b) {
                  return a.seq > b.seq;
              });
    return found;
}

void
pruneSnapshots(const std::string &dir, int keep)
{
    const std::vector<SnapshotFile> all = listSnapshots(dir);
    for (size_t i = keep < 0 ? 0 : static_cast<size_t>(keep);
         i < all.size(); ++i)
        ::unlink(all[i].path.c_str());

    // Collect temp files orphaned by an interrupted write.
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    while (struct dirent *e = ::readdir(d)) {
        const char *name = e->d_name;
        const size_t len = std::strlen(name);
        if (len > 4 && std::strcmp(name + len - 4, ".tmp") == 0 &&
            std::strncmp(name, "snap-", 5) == 0)
            ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
}

} // namespace neo::serve::durable
