#include "scene/datasets.h"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/logging.h"

namespace neo
{

namespace
{

ScenePreset
makePreset(const std::string &name, uint64_t seed, size_t count,
           float extent, int clusters, TrajectoryKind traj)
{
    ScenePreset p;
    p.name = name;
    p.params.name = name;
    p.params.seed = seed;
    p.params.count = count;
    p.params.extent = extent;
    p.params.clusters = clusters;
    // Trained T&T reconstructions splat larger than our generator default;
    // this median reproduces their per-tile duplication factor (several
    // instances per visible Gaussian at QHD with 16-px tiles), which is
    // what makes sorting dominate baseline traffic in Figs. 5/16.
    p.params.scale_median = 0.042f;
    p.trajectory = traj;
    return p;
}

} // namespace

std::vector<ScenePreset>
tanksAndTemplesPresets()
{
    // Counts approximate published 3DGS reconstruction sizes for the Tanks
    // and Temples scenes; extents/cluster counts shape the per-tile
    // occupancy the way each capture does (e.g. Train is the largest and
    // most cluttered, Horse the smallest and most object-centric).
    std::vector<ScenePreset> v;
    v.push_back(makePreset("Family", 101, 550000, 9.0f, 10,
                           TrajectoryKind::Orbit));
    v.push_back(makePreset("Francis", 102, 600000, 10.0f, 8,
                           TrajectoryKind::Orbit));
    v.push_back(makePreset("Horse", 103, 450000, 8.0f, 6,
                           TrajectoryKind::Orbit));
    v.push_back(makePreset("Lighthouse", 104, 650000, 14.0f, 9,
                           TrajectoryKind::Dolly));
    v.push_back(makePreset("Playground", 105, 750000, 12.0f, 14,
                           TrajectoryKind::Orbit));
    v.push_back(makePreset("Train", 106, 1000000, 16.0f, 16,
                           TrajectoryKind::Walk));
    return v;
}

std::vector<ScenePreset>
mill19Presets()
{
    // Mill 19 aerial captures reconstruct to multi-million Gaussian scenes
    // spanning hundreds of meters; grazing aerial orbits maximize per-tile
    // churn, which is the stress Fig. 17(a) targets.
    std::vector<ScenePreset> v;
    auto building = makePreset("Building", 201, 2400000, 40.0f, 36,
                               TrajectoryKind::Dolly);
    building.params.ground_fraction = 0.35f;
    building.params.scale_median = 0.045f;
    v.push_back(building);
    auto rubble = makePreset("Rubble", 202, 2100000, 36.0f, 48,
                             TrajectoryKind::Orbit);
    rubble.params.ground_fraction = 0.45f;
    rubble.params.scale_median = 0.04f;
    v.push_back(rubble);
    return v;
}

ScenePreset
presetByName(const std::string &name)
{
    for (const auto &p : tanksAndTemplesPresets())
        if (p.name == name)
            return p;
    for (const auto &p : mill19Presets())
        if (p.name == name)
            return p;
    fatal("unknown scene preset '%s'", name.c_str());
}

GaussianScene
buildScene(const ScenePreset &preset, double scale)
{
    SyntheticSceneParams params = preset.params;
    size_t count = static_cast<size_t>(params.count * scale);
    params.count = count < 1000 ? 1000 : count;
    return generateScene(params);
}

double
benchSceneScale()
{
    // Full-string consumption (common/env): atof would quietly read
    // "2x" as 2 and double the scene. The scale must stay strictly
    // positive; the tiny inclusive lower bound stands in for "> 0" so
    // NEO_SCENE_SCALE=0 still warns instead of silently defaulting.
    return env::envDouble("NEO_SCENE_SCALE", 1.0, 1e-9, 4.0);
}

int
benchFrameCount(int default_frames)
{
    // Full-string consumption (common/env): atoi would quietly read
    // "10garbage" as 10.
    return static_cast<int>(env::envLong("NEO_BENCH_FRAMES",
                                         default_frames, 2, 100000));
}

} // namespace neo
