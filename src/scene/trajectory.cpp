#include "scene/trajectory.h"

#include <cmath>

namespace neo
{

namespace
{
/**
 * Base angular step per frame, radians. Chosen so that a 1x orbit matches
 * the temporal similarity the paper measures on 30 FPS captures (>78% tile
 * retention, p99 order displacement of a few tens of slots).
 */
constexpr float kBaseAngularStep = deg2rad(0.35f);
} // namespace

Trajectory::Trajectory(TrajectoryKind kind, Vec3 scene_center,
                       float scene_radius, float speed)
    : kind_(kind), center_(scene_center), radius_(scene_radius),
      speed_(speed)
{
}

Camera
Trajectory::cameraAt(int frame, Resolution res, float fov_y_rad) const
{
    Camera cam(res, fov_y_rad);
    const float t = speed_ * kBaseAngularStep * static_cast<float>(frame);

    switch (kind_) {
      case TrajectoryKind::Orbit: {
        float r = 1.25f * radius_;
        Vec3 eye{center_.x + r * std::cos(t),
                 center_.y + 0.45f * radius_ +
                     0.05f * radius_ * std::sin(0.7f * t),
                 center_.z + r * std::sin(t)};
        cam.lookAt(eye, center_);
        break;
      }
      case TrajectoryKind::Dolly: {
        float r = radius_ * (1.35f + 0.45f * std::sin(0.5f * t));
        Vec3 eye{center_.x + r * std::cos(t),
                 center_.y + 0.4f * radius_,
                 center_.z + r * std::sin(t)};
        cam.lookAt(eye, center_);
        break;
      }
      case TrajectoryKind::Walk: {
        // Straight line through the scene with a slowly turning gaze.
        float s = 0.35f * radius_ * speed_ * kBaseAngularStep *
                  static_cast<float>(frame);
        Vec3 eye{center_.x - radius_ + s, center_.y + 0.25f * radius_,
                 center_.z - 0.3f * radius_};
        Vec3 target{eye.x + radius_, center_.y + 0.2f * radius_,
                    center_.z + 0.25f * radius_ * std::sin(0.3f * t)};
        cam.lookAt(eye, target);
        break;
      }
    }
    return cam;
}

} // namespace neo
