/**
 * @file
 * PLY import/export in the 3D Gaussian Splatting attribute layout.
 *
 * Trained 3DGS models are distributed as binary little-endian PLY files
 * with per-vertex properties (x, y, z, f_dc_0..2, f_rest_*, opacity,
 * scale_0..2, rot_0..3), where opacity is a logit, scales are logs, and
 * SH "rest" coefficients are stored channel-major. This module reads and
 * writes that layout so the library can consume real reconstructions and
 * its synthetic scenes can be inspected in standard splat viewers.
 *
 * The reader accepts any number of f_rest coefficients and keeps the
 * first (kShCoeffsPerChannel - 1) per channel; files without f_rest
 * properties load as flat-color scenes.
 */

#ifndef NEO_SCENE_PLY_IO_H
#define NEO_SCENE_PLY_IO_H

#include <string>

#include "gs/gaussian.h"

namespace neo
{

/**
 * Save @p scene as a binary little-endian 3DGS PLY.
 * @return true on success.
 */
bool savePly(const GaussianScene &scene, const std::string &path);

/**
 * Load a 3DGS PLY into @p scene (replacing its contents and recomputing
 * bounds).
 * @return true on success; on failure the scene is left empty and a
 * warning describes the problem.
 */
bool loadPly(GaussianScene &scene, const std::string &path);

/** Inverse-sigmoid used for the opacity logit encoding. */
float opacityToLogit(float opacity);

/** Sigmoid decoding of a stored opacity logit. */
float logitToOpacity(float logit);

} // namespace neo

#endif // NEO_SCENE_PLY_IO_H
