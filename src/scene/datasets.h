/**
 * @file
 * Named dataset presets mirroring the paper's benchmarks: six
 * Tanks-and-Temples-style outdoor scenes (Family, Francis, Horse,
 * Lighthouse, Playground, Train) and two Mill 19-style large-scale aerial
 * scenes (Building, Rubble). Gaussian counts follow published 3DGS
 * reconstruction sizes; geometry is synthesized (see scene/synthetic.h).
 */

#ifndef NEO_SCENE_DATASETS_H
#define NEO_SCENE_DATASETS_H

#include <string>
#include <vector>

#include "scene/synthetic.h"
#include "scene/trajectory.h"

namespace neo
{

/** A named benchmark scene preset. */
struct ScenePreset
{
    std::string name;
    SyntheticSceneParams params;
    TrajectoryKind trajectory = TrajectoryKind::Orbit;
};

/** The six Tanks-and-Temples-style scenes of the main evaluation. */
std::vector<ScenePreset> tanksAndTemplesPresets();

/** The two Mill 19-style large-scale scenes of Fig. 17(a). */
std::vector<ScenePreset> mill19Presets();

/** Look up a preset by (case-sensitive) name across both suites. */
ScenePreset presetByName(const std::string &name);

/**
 * Instantiate a preset's scene.
 *
 * @param preset which scene
 * @param scale multiplier on the Gaussian count (quality experiments run
 *        scaled-down scenes; timing experiments run scale 1). The effective
 *        count is never below 1000.
 */
GaussianScene buildScene(const ScenePreset &preset, double scale = 1.0);

/**
 * Global scene-size scale for benchmarks, read once from the environment
 * variable NEO_SCENE_SCALE (default 1.0). Lets CI run the full harness
 * quickly without editing the benches.
 */
double benchSceneScale();

/** Global frame-count for trajectory benches (NEO_BENCH_FRAMES, default). */
int benchFrameCount(int default_frames);

} // namespace neo

#endif // NEO_SCENE_DATASETS_H
