/**
 * @file
 * Parametric camera trajectories standing in for the captured camera paths
 * of the evaluation datasets. Paths are smooth (orbit / dolly / walk), and
 * a speed multiplier scales the per-frame viewpoint delta to reproduce the
 * rapid-camera-movement sweep of Fig. 17(b).
 */

#ifndef NEO_SCENE_TRAJECTORY_H
#define NEO_SCENE_TRAJECTORY_H

#include "gs/camera.h"
#include "gs/gaussian.h"

namespace neo
{

/** Trajectory families. */
enum class TrajectoryKind
{
    Orbit,   //!< circle the scene center at fixed height
    Dolly,   //!< orbit with oscillating radius (push-in / pull-out)
    Walk,    //!< straight traversal through the scene looking forward
};

/** A camera path over a scene. */
class Trajectory
{
  public:
    /**
     * @param kind path family
     * @param scene_center orbit/walk focus
     * @param scene_radius scene bounding radius (sets path scale)
     * @param speed per-frame motion multiplier (1 = paper's 30 FPS capture)
     */
    Trajectory(TrajectoryKind kind, Vec3 scene_center, float scene_radius,
               float speed = 1.0f);

    /** Convenience constructor from a scene's bounds. */
    Trajectory(TrajectoryKind kind, const GaussianScene &scene,
               float speed = 1.0f)
        : Trajectory(kind, scene.center, scene.bounding_radius, speed)
    {
    }

    /** Camera pose for frame @p frame at resolution @p res. */
    Camera cameraAt(int frame, Resolution res,
                    float fov_y_rad = deg2rad(50.0f)) const;

    float speed() const { return speed_; }
    TrajectoryKind kind() const { return kind_; }
    /** Path focus / scale — with kind() and speed(), everything a
        durable snapshot needs to reconstruct the trajectory exactly. */
    Vec3 center() const { return center_; }
    float radius() const { return radius_; }

  private:
    TrajectoryKind kind_;
    Vec3 center_;
    float radius_;
    float speed_;
};

} // namespace neo

#endif // NEO_SCENE_TRAJECTORY_H
