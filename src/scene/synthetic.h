/**
 * @file
 * Procedural Gaussian-scene generation.
 *
 * We cannot ship trained Tanks-and-Temples 3DGS reconstructions, so scenes
 * are synthesized with the statistical structure that matters for the
 * sorting stage: a few hundred thousand to a few million anisotropic
 * Gaussians arranged as (a) clustered foreground objects, (b) a flattened
 * ground sheet, and (c) a sparse distant background shell. This yields the
 * same per-tile occupancy skew, depth distribution, and overlap behaviour
 * that real reconstructions exhibit (see DESIGN.md, substitution table).
 */

#ifndef NEO_SCENE_SYNTHETIC_H
#define NEO_SCENE_SYNTHETIC_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "gs/gaussian.h"

namespace neo
{

/** Parameters of the synthetic scene generator. */
struct SyntheticSceneParams
{
    uint64_t seed = 1;
    /** Total number of Gaussians. */
    size_t count = 100000;
    /** Approximate world-space radius of the scene. */
    float extent = 10.0f;
    /** Number of foreground object clusters. */
    int clusters = 12;
    /** Fraction of Gaussians on the ground sheet. */
    float ground_fraction = 0.25f;
    /** Fraction of Gaussians in the background shell. */
    float background_fraction = 0.10f;
    /** Log-normal scale distribution parameters (world units). */
    float scale_median = 0.02f;
    float scale_sigma = 0.7f;
    /** Per-axis anisotropy spread (1 = isotropic). */
    float anisotropy = 3.0f;
    /** Beta-like opacity distribution mean. */
    float opacity_mean = 0.55f;
    /** Strength of view-dependent SH color. */
    float sh_directional = 0.15f;
    /** Scene name recorded on the result. */
    std::string name = "synthetic";
};

/** Generate a scene from @p params (deterministic in the seed). */
GaussianScene generateScene(const SyntheticSceneParams &params);

} // namespace neo

#endif // NEO_SCENE_SYNTHETIC_H
