#include "scene/ply_io.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/math.h"

namespace neo
{

namespace
{

/** SH DC normalization: 3DGS stores (color - 0.5) / C0 in f_dc. */
constexpr int kRestPerChannel = kShCoeffsPerChannel - 1;

struct PlyProperty
{
    std::string name;
    int offset_floats = 0; // offset within a vertex record, in floats
};

struct PlyHeader
{
    size_t vertex_count = 0;
    int floats_per_vertex = 0;
    std::vector<PlyProperty> properties;

    int
    offsetOf(const std::string &name) const
    {
        for (const auto &p : properties)
            if (p.name == name)
                return p.offset_floats;
        return -1;
    }
};

bool
parseHeader(std::FILE *f, PlyHeader &header)
{
    char line[512];
    bool binary_le = false;
    bool in_vertex_element = false;
    int offset = 0;
    while (std::fgets(line, sizeof(line), f)) {
        std::string s(line);
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
            s.pop_back();
        if (s == "end_header")
            return binary_le && header.vertex_count > 0;
        if (s.rfind("format ", 0) == 0) {
            binary_le = s.find("binary_little_endian") != std::string::npos;
            if (!binary_le) {
                warn("loadPly: only binary_little_endian is supported");
                return false;
            }
        } else if (s.rfind("element ", 0) == 0) {
            in_vertex_element = s.rfind("element vertex ", 0) == 0;
            if (in_vertex_element)
                header.vertex_count =
                    std::strtoull(s.c_str() + 15, nullptr, 10);
        } else if (in_vertex_element && s.rfind("property ", 0) == 0) {
            // "property float <name>"
            if (s.find("float") == std::string::npos) {
                warn("loadPly: non-float vertex property in '%s'",
                     s.c_str());
                return false;
            }
            size_t last_space = s.find_last_of(' ');
            header.properties.push_back(
                {s.substr(last_space + 1), offset});
            ++offset;
        }
    }
    return false;
}

} // namespace

float
opacityToLogit(float opacity)
{
    float o = clamp(opacity, 1e-5f, 1.0f - 1e-5f);
    return std::log(o / (1.0f - o));
}

float
logitToOpacity(float logit)
{
    return 1.0f / (1.0f + std::exp(-logit));
}

bool
savePly(const GaussianScene &scene, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warn("savePly: cannot open %s", path.c_str());
        return false;
    }

    std::fprintf(f, "ply\nformat binary_little_endian 1.0\n");
    std::fprintf(f, "comment neo3dgs scene '%s'\n", scene.name.c_str());
    std::fprintf(f, "element vertex %zu\n", scene.size());
    const char *base_props[] = {"x", "y", "z", "f_dc_0", "f_dc_1",
                                "f_dc_2"};
    for (const char *p : base_props)
        std::fprintf(f, "property float %s\n", p);
    for (int i = 0; i < 3 * kRestPerChannel; ++i)
        std::fprintf(f, "property float f_rest_%d\n", i);
    std::fprintf(f, "property float opacity\n");
    for (int i = 0; i < 3; ++i)
        std::fprintf(f, "property float scale_%d\n", i);
    for (int i = 0; i < 4; ++i)
        std::fprintf(f, "property float rot_%d\n", i);
    std::fprintf(f, "end_header\n");

    std::vector<float> rec(6 + 3 * kRestPerChannel + 1 + 3 + 4);
    for (const auto &g : scene.gaussians) {
        size_t k = 0;
        rec[k++] = g.position.x;
        rec[k++] = g.position.y;
        rec[k++] = g.position.z;
        for (int c = 0; c < 3; ++c)
            rec[k++] = g.sh[c][0];
        // f_rest is channel-major: all of channel 0, then 1, then 2.
        for (int c = 0; c < 3; ++c)
            for (int i = 1; i < kShCoeffsPerChannel; ++i)
                rec[k++] = g.sh[c][i];
        rec[k++] = opacityToLogit(g.opacity);
        rec[k++] = std::log(std::max(g.scale.x, 1e-9f));
        rec[k++] = std::log(std::max(g.scale.y, 1e-9f));
        rec[k++] = std::log(std::max(g.scale.z, 1e-9f));
        rec[k++] = g.rotation.w;
        rec[k++] = g.rotation.x;
        rec[k++] = g.rotation.y;
        rec[k++] = g.rotation.z;
        std::fwrite(rec.data(), sizeof(float), rec.size(), f);
    }
    std::fclose(f);
    return true;
}

bool
loadPly(GaussianScene &scene, const std::string &path)
{
    scene.gaussians.clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        warn("loadPly: cannot open %s", path.c_str());
        return false;
    }

    PlyHeader header;
    if (!parseHeader(f, header)) {
        warn("loadPly: unsupported or malformed header in %s",
             path.c_str());
        std::fclose(f);
        return false;
    }
    header.floats_per_vertex = static_cast<int>(header.properties.size());

    const int off_x = header.offsetOf("x");
    const int off_y = header.offsetOf("y");
    const int off_z = header.offsetOf("z");
    const int off_dc0 = header.offsetOf("f_dc_0");
    const int off_opacity = header.offsetOf("opacity");
    const int off_scale = header.offsetOf("scale_0");
    const int off_rot = header.offsetOf("rot_0");
    if (off_x < 0 || off_y < 0 || off_z < 0 || off_opacity < 0 ||
        off_scale < 0 || off_rot < 0) {
        warn("loadPly: %s is missing required 3DGS properties",
             path.c_str());
        std::fclose(f);
        return false;
    }
    const int off_rest = header.offsetOf("f_rest_0");
    // Count the contiguous f_rest block to infer the file's SH degree.
    int rest_count = 0;
    while (header.offsetOf("f_rest_" + std::to_string(rest_count)) >= 0)
        ++rest_count;
    const int rest_per_channel = rest_count / 3;

    std::vector<float> rec(header.floats_per_vertex);
    scene.gaussians.reserve(header.vertex_count);
    for (size_t v = 0; v < header.vertex_count; ++v) {
        if (std::fread(rec.data(), sizeof(float), rec.size(), f) !=
            rec.size()) {
            warn("loadPly: %s truncated at vertex %zu", path.c_str(), v);
            scene.gaussians.clear();
            std::fclose(f);
            return false;
        }
        Gaussian g;
        g.position = {rec[off_x], rec[off_y], rec[off_z]};
        if (off_dc0 >= 0)
            for (int c = 0; c < 3; ++c)
                g.sh[c][0] = rec[off_dc0 + c];
        if (off_rest >= 0) {
            int keep = std::min(rest_per_channel, kRestPerChannel);
            for (int c = 0; c < 3; ++c)
                for (int i = 0; i < keep; ++i)
                    g.sh[c][1 + i] =
                        rec[off_rest + c * rest_per_channel + i];
        }
        g.opacity = logitToOpacity(rec[off_opacity]);
        g.scale = {std::exp(rec[off_scale]), std::exp(rec[off_scale + 1]),
                   std::exp(rec[off_scale + 2])};
        g.rotation = Quat{rec[off_rot], rec[off_rot + 1],
                          rec[off_rot + 2], rec[off_rot + 3]}
                         .normalized();
        scene.gaussians.push_back(g);
    }
    std::fclose(f);
    recomputeBounds(scene);
    return true;
}

} // namespace neo
