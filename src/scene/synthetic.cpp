#include "scene/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "gs/sh.h"

namespace neo
{

namespace
{

/** Log-normal sample with a given median and log-space sigma. */
float
logNormal(Rng &rng, float median, float sigma)
{
    return median * std::exp(sigma * rng.normal());
}

/** Saturated pseudo-random color from a palette index. */
Vec3
paletteColor(Rng &rng, int index)
{
    float hue = std::fmod(0.61803398875f * index, 1.0f) * 6.0f;
    float sat = rng.uniform(0.45f, 0.9f);
    float val = rng.uniform(0.35f, 0.95f);
    int sector = static_cast<int>(hue);
    float frac = hue - sector;
    float p = val * (1.0f - sat);
    float q = val * (1.0f - sat * frac);
    float t = val * (1.0f - sat * (1.0f - frac));
    switch (sector % 6) {
      case 0: return {val, t, p};
      case 1: return {q, val, p};
      case 2: return {p, val, t};
      case 3: return {p, q, val};
      case 4: return {t, p, val};
      default: return {val, p, q};
    }
}

Gaussian
makeGaussian(Rng &rng, const SyntheticSceneParams &p, const Vec3 &pos,
             const Vec3 &base_color, float flatten_y)
{
    Gaussian g;
    g.position = pos;

    float s = logNormal(rng, p.scale_median, p.scale_sigma);
    float ax = std::exp(rng.uniform(0.0f, std::log(p.anisotropy)));
    float ay = std::exp(rng.uniform(0.0f, std::log(p.anisotropy)));
    g.scale = {s * ax, s * ay * flatten_y, s};
    g.rotation = rng.rotation();

    // Opacity: squashed normal around the configured mean, in (0.02, 0.98).
    float o = p.opacity_mean + 0.22f * rng.normal();
    g.opacity = clamp(o, 0.02f, 0.98f);

    Vec3 c = base_color;
    c.x = clamp(c.x + 0.08f * rng.normal(), 0.0f, 1.0f);
    c.y = clamp(c.y + 0.08f * rng.normal(), 0.0f, 1.0f);
    c.z = clamp(c.z + 0.08f * rng.normal(), 0.0f, 1.0f);
    setShFromColor(g, c, p.sh_directional,
                   {rng.uniform(-0.4f, 0.4f), rng.uniform(-0.4f, 0.4f),
                    rng.uniform(-0.4f, 0.4f)});
    return g;
}

} // namespace

GaussianScene
generateScene(const SyntheticSceneParams &p)
{
    Rng rng(p.seed);
    GaussianScene scene;
    scene.name = p.name;
    scene.gaussians.reserve(p.count);

    const size_t n_ground =
        static_cast<size_t>(p.ground_fraction * p.count);
    const size_t n_background =
        static_cast<size_t>(p.background_fraction * p.count);
    const size_t n_cluster = p.count - n_ground - n_background;

    // Cluster centers on and above the ground disc.
    std::vector<Vec3> centers;
    std::vector<Vec3> colors;
    std::vector<float> radii;
    centers.reserve(p.clusters);
    for (int c = 0; c < p.clusters; ++c) {
        float r = p.extent * std::sqrt(static_cast<float>(rng.uniform()));
        float theta = rng.uniform(0.0f, 2.0f * kPi);
        float height = rng.uniform(0.1f, 0.45f) * p.extent;
        centers.push_back(
            {r * std::cos(theta), 0.5f * height, r * std::sin(theta)});
        colors.push_back(paletteColor(rng, c));
        radii.push_back(rng.uniform(0.06f, 0.22f) * p.extent);
    }

    // (a) clustered foreground.
    for (size_t i = 0; i < n_cluster; ++i) {
        int c = static_cast<int>(rng.below(p.clusters));
        Vec3 offset{rng.normal() * radii[c], rng.normal() * radii[c] * 0.8f,
                    rng.normal() * radii[c]};
        Vec3 pos = centers[c] + offset;
        pos.y = std::max(pos.y, 0.005f * p.extent);
        scene.gaussians.push_back(makeGaussian(rng, p, pos, colors[c], 1.0f));
    }

    // (b) ground sheet: flattened Gaussians on y ~ 0.
    Vec3 ground_color{0.35f, 0.32f, 0.28f};
    for (size_t i = 0; i < n_ground; ++i) {
        float r = p.extent * 1.2f * std::sqrt(static_cast<float>(rng.uniform()));
        float theta = rng.uniform(0.0f, 2.0f * kPi);
        Vec3 pos{r * std::cos(theta), 0.002f * p.extent * rng.uniform(0.0f, 1.0f),
                 r * std::sin(theta)};
        scene.gaussians.push_back(
            makeGaussian(rng, p, pos, ground_color, 0.15f));
    }

    // (c) distant background shell.
    Vec3 sky_color{0.55f, 0.65f, 0.8f};
    for (size_t i = 0; i < n_background; ++i) {
        Vec3 dir = rng.onSphere();
        dir.y = std::fabs(dir.y); // upper hemisphere
        float r = p.extent * rng.uniform(2.2f, 3.5f);
        Gaussian g = makeGaussian(rng, p, dir * r, sky_color, 1.0f);
        // Background splats are larger and softer.
        g.scale = g.scale * 6.0f;
        g.opacity = clamp(g.opacity * 0.6f, 0.02f, 0.98f);
        scene.gaussians.push_back(g);
    }

    recomputeBounds(scene);
    return scene;
}

} // namespace neo
