#include "sim/dram_bank.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace neo
{

BankedDramModel::BankedDramModel(BankedDramConfig cfg) : cfg_(cfg)
{
    reset();
}

void
BankedDramModel::reset()
{
    stats_ = DramReplayStats{};
    open_row_.assign(cfg_.banks, -1);
}

uint64_t
BankedDramModel::access(const DramRequest &req)
{
    // Split into bursts; interleave banks by row so sequential streams
    // rotate across banks (standard address mapping: row bits above bank
    // bits above column bits).
    uint64_t cycles = 0;
    uint64_t first = req.address / cfg_.burst_bytes;
    uint64_t last = (req.address + req.bytes - 1) / cfg_.burst_bytes;
    for (uint64_t burst = first; burst <= last; ++burst) {
        uint64_t byte_addr = burst * cfg_.burst_bytes;
        uint64_t row_global = byte_addr / cfg_.row_bytes;
        int bank = static_cast<int>(row_global % cfg_.banks);
        int64_t row = static_cast<int64_t>(row_global / cfg_.banks);

        if (open_row_[bank] == row) {
            ++stats_.row_hits;
            cycles += cfg_.t_burst;
        } else {
            ++stats_.row_misses;
            // Precharge the old row (if any), activate, column access.
            uint64_t penalty = cfg_.t_rcd + cfg_.t_cas + cfg_.t_burst;
            if (open_row_[bank] >= 0)
                penalty += cfg_.t_rp;
            cycles += penalty;
            open_row_[bank] = row;
        }
        ++stats_.bursts;
    }
    stats_.cycles += cycles;
    return cycles;
}

const DramReplayStats &
BankedDramModel::replay(const std::vector<DramRequest> &reqs)
{
    for (const auto &r : reqs)
        access(r);
    return stats_;
}

double
BankedDramModel::elapsedSeconds() const
{
    return static_cast<double>(stats_.cycles) /
           (cfg_.io_clock_ghz * 1e9);
}

double
BankedDramModel::achievedBandwidth() const
{
    double secs = elapsedSeconds();
    if (secs <= 0.0)
        return 0.0;
    return static_cast<double>(stats_.bursts) * cfg_.burst_bytes / secs;
}

std::vector<DramRequest>
sequentialStream(uint64_t base, uint64_t bytes, uint32_t request_bytes)
{
    std::vector<DramRequest> reqs;
    reqs.reserve(bytes / request_bytes + 1);
    for (uint64_t off = 0; off < bytes; off += request_bytes) {
        uint32_t sz = static_cast<uint32_t>(
            std::min<uint64_t>(request_bytes, bytes - off));
        reqs.push_back({base + off, sz});
    }
    return reqs;
}

std::vector<DramRequest>
randomStream(uint64_t span, size_t count, uint32_t bytes_each,
             uint64_t seed)
{
    Rng rng(seed);
    std::vector<DramRequest> reqs;
    reqs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        reqs.push_back({rng.below(span), bytes_each});
    return reqs;
}

} // namespace neo
