#include "sim/traffic.h"

namespace neo
{

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::FeatureExtraction: return "feature-extraction";
      case Stage::Sorting: return "sorting";
      case Stage::Rasterization: return "rasterization";
    }
    return "unknown";
}

} // namespace neo
