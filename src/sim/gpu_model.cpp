#include "sim/gpu_model.h"

#include <algorithm>

namespace neo
{

FrameSim
GpuModel::simulateFrame(const FrameWorkload &w) const
{
    FrameSim sim;
    const double visible = static_cast<double>(w.visible_gaussians);
    const double instances = static_cast<double>(w.instances);
    const double pixels = static_cast<double>(w.res.pixels());
    const double blends = static_cast<double>(w.blend_ops);

    // --- Stage 1+2: culling + feature extraction -------------------------
    // Read every Gaussian's full parameters and write the projected
    // feature table.
    double fe_bytes = static_cast<double>(w.scene_gaussians) * 32.0 // cull
                      + visible * (record::kGaussian3d + record::kFeature2d);
    sim.traffic.add(Stage::FeatureExtraction, fe_bytes);
    sim.fe_compute_s = visible / cfg_.preprocess_rate;

    // --- Stage 3: sorting -------------------------------------------------
    // Duplication (key-value scatter) is part of the sorting stage in the
    // 3DGS pipeline (§2.4).
    double sort_bytes = instances * record::kKeyValue;
    double sort_ops = 0.0;
    if (!cfg_.neo_sw) {
        // CUB radix sort: every pass streams the full pair array in and
        // out; the scatter write pattern is only partially coalesced.
        sort_bytes += instances * record::kKeyValue * 2.0 *
                      cfg_.sort_passes * cfg_.sort_scatter_penalty;
        sort_ops = instances * cfg_.sort_passes;
    } else {
        // Neo-SW (Fig. 10): Dynamic Partial Sorting reads and writes each
        // table entry once, but per-tile tables are scattered in GPU
        // memory so the chunk streams coalesce poorly, and the
        // insert/delete merge's data-dependent control flow diverges
        // badly on SIMT hardware — the reasons the paper's software-only
        // version gains little latency.
        const double incoming =
            static_cast<double>(w.incoming_instances);
        sort_bytes = instances * record::kTableEntry * 2.0 * 4.5 +
                     incoming * record::kTableEntry * 8.0;
        sort_ops = (instances + incoming * 4.0) * cfg_.neo_sw_divergence;
    }
    sim.traffic.add(Stage::Sorting, sort_bytes);
    sim.sort_compute_s = sort_ops / cfg_.sort_rate;

    // --- Stage 4: rasterization -------------------------------------------
    // Each tile's threadblock streams the sorted ids and re-fetches the 2D
    // features per instance; the framebuffer is written once.
    double raster_bytes =
        instances * (record::kTableEntry + record::kFeature2d) +
        pixels * record::kPixel;
    if (cfg_.neo_sw) {
        // Deferred depth update piggybacks table write-back on raster.
        raster_bytes += instances * record::kTableEntry;
    }
    sim.traffic.add(Stage::Rasterization, raster_bytes);
    sim.raster_compute_s = blends / cfg_.blend_rate;

    // --- Latency ------------------------------------------------------------
    // Kernels launch back to back; each stage is the max of its compute
    // time and its own memory service time (GPU overlaps compute with its
    // stage's memory stream but not across kernel boundaries).
    double fe_t = std::max(sim.fe_compute_s, dram_.streamSeconds(fe_bytes));
    double sort_t =
        std::max(sim.sort_compute_s, dram_.streamSeconds(sort_bytes));
    double raster_t =
        std::max(sim.raster_compute_s, dram_.streamSeconds(raster_bytes));
    sim.memory_s = dram_.streamSeconds(sim.traffic.total());
    sim.latency_s = fe_t + sort_t + raster_t;
    return sim;
}

} // namespace neo
