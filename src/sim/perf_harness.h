/**
 * @file
 * Trajectory-level simulation harness shared by the paper-reproduction
 * benches: extracts per-frame workload descriptors for a scene+trajectory
 * at a given resolution (once per tile geometry) and feeds them through
 * the GPU / GSCore / Neo models.
 */

#ifndef NEO_SIM_PERF_HARNESS_H
#define NEO_SIM_PERF_HARNESS_H

#include <vector>

#include "gs/pipeline.h"
#include "scene/trajectory.h"
#include "sim/gpu_model.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"

namespace neo
{

/** Simulation results over a frame sequence. */
struct SequenceResult
{
    std::vector<FrameSim> frames;

    /** Throughput over the sequence (frames / total seconds). */
    double meanFps() const;
    /** Total attributed DRAM traffic in GB. */
    double totalTrafficGB() const;
    /** Per-stage traffic sums. */
    TrafficBreakdown traffic() const;
    /** Traffic normalized to the paper's 60-rendered-frames convention. */
    double trafficGBPer60Frames() const;
    /** Mean per-frame latency in milliseconds. */
    double meanLatencyMs() const;
    /** Maximum per-frame latency in milliseconds. */
    double maxLatencyMs() const;
};

/**
 * Per-frame workloads for one scene/trajectory/resolution, extracted at
 * both tile geometries used by the systems under study.
 */
struct WorkloadSequences
{
    std::vector<FrameWorkload> tile16; //!< GPU and GSCore geometry
    std::vector<FrameWorkload> tile64; //!< Neo geometry (with deltas)
};

/**
 * Run the functional pipeline over @p frames frames of @p trajectory and
 * collect workload descriptors. Temporal deltas (incoming/outgoing and
 * retention) are tracked for both tile geometries.
 *
 * @param want16 extract the 16-px tile sequence (GPU/GSCore)
 * @param want64 extract the 64-px tile sequence (Neo)
 * @param threads worker threads for the functional pipeline
 *        (resolveThreadCount semantics: 0 defers to NEO_THREADS); the
 *        extracted workloads are bit-identical for any value
 */
WorkloadSequences extractSequences(const GaussianScene &scene,
                                   const Trajectory &trajectory,
                                   Resolution res, int frames,
                                   bool want16 = true, bool want64 = true,
                                   int threads = 0);

// StageTimings lives in gs/pipeline.h (the serving layer consumes it
// per frame); the staged sweep stores mean ms/frame in the same struct.

/** One measurement of the thread-scaling sweep. */
struct ThreadScalingPoint
{
    int threads = 1;          //!< effective worker-thread count
    double ms_per_frame = 0;  //!< mean wall-clock per frame
    double speedup = 1.0;     //!< vs the sweep's first (baseline) point
    uint64_t frame_hash = 0;  //!< FNV-1a over the last rendered frame
    bool has_stages = false;  //!< stage breakdown populated?
    StageTimings stages;      //!< per-stage ms (staged sweep only)
    /**
     * Functional counters of the last rendered frame (staged sweep only).
     * The blocked/reference rasterizer A/B in bench_scaling compares
     * these field by field — the two paths must agree exactly, not just
     * on the frame hash.
     */
    FrameStats last_frame;
};

/**
 * Thread-scaling sweep over the *functional* pipeline (not the cycle
 * models): render @p frames frames of @p trajectory at each requested
 * thread count and report wall-clock per frame plus a frame hash, which
 * must be identical across all points (determinism contract). The first
 * entry of @p thread_counts is the speedup baseline. The frame loop runs
 * steady state: binned frame, scratch arena and framebuffer persist
 * across frames with capacity retained.
 *
 * @param opts pipeline geometry for the sweep; opts.threads is overridden
 *        by each sweep point
 */
std::vector<ThreadScalingPoint>
sweepRenderThreads(const GaussianScene &scene, const Trajectory &trajectory,
                   Resolution res, int frames,
                   const std::vector<int> &thread_counts,
                   PipelineOptions opts = {});

/**
 * sweepRenderThreads with a per-stage breakdown: each frame runs the
 * explicit staged loop (binFrameInto -> per-tile sort -> renderInto ->
 * DeltaTracker::observe) with each stage timed separately, so the
 * elimination of serial stages is visible per stage and not just in the
 * frame total. ms_per_frame is the sum of the stage means; hashes obey
 * the same determinism contract as the plain sweep.
 */
std::vector<ThreadScalingPoint>
sweepRenderThreadsStaged(const GaussianScene &scene,
                         const Trajectory &trajectory, Resolution res,
                         int frames, const std::vector<int> &thread_counts,
                         PipelineOptions opts = {});

/** Simulate a workload sequence on the GPU model. */
SequenceResult simulateGpu(const GpuModel &model,
                           const std::vector<FrameWorkload> &seq);

/** Simulate a workload sequence on the GSCore model. */
SequenceResult simulateGscore(const GscoreModel &model,
                              const std::vector<FrameWorkload> &seq);

/**
 * Simulate a workload sequence on the Neo model. The first frame is
 * treated as a cold start (conventional full sort) unless
 * @p first_is_cold is false.
 */
SequenceResult simulateNeo(const NeoModel &model,
                           const std::vector<FrameWorkload> &seq,
                           bool first_is_cold = true);

} // namespace neo

#endif // NEO_SIM_PERF_HARNESS_H
