/**
 * @file
 * Trajectory-level simulation harness shared by the paper-reproduction
 * benches: extracts per-frame workload descriptors for a scene+trajectory
 * at a given resolution (once per tile geometry) and feeds them through
 * the GPU / GSCore / Neo models.
 */

#ifndef NEO_SIM_PERF_HARNESS_H
#define NEO_SIM_PERF_HARNESS_H

#include <vector>

#include "gs/pipeline.h"
#include "scene/trajectory.h"
#include "sim/gpu_model.h"
#include "sim/gscore_model.h"
#include "sim/neo_model.h"

namespace neo
{

/** Simulation results over a frame sequence. */
struct SequenceResult
{
    std::vector<FrameSim> frames;

    /** Throughput over the sequence (frames / total seconds). */
    double meanFps() const;
    /** Total attributed DRAM traffic in GB. */
    double totalTrafficGB() const;
    /** Per-stage traffic sums. */
    TrafficBreakdown traffic() const;
    /** Traffic normalized to the paper's 60-rendered-frames convention. */
    double trafficGBPer60Frames() const;
    /** Mean per-frame latency in milliseconds. */
    double meanLatencyMs() const;
    /** Maximum per-frame latency in milliseconds. */
    double maxLatencyMs() const;
};

/**
 * Per-frame workloads for one scene/trajectory/resolution, extracted at
 * both tile geometries used by the systems under study.
 */
struct WorkloadSequences
{
    std::vector<FrameWorkload> tile16; //!< GPU and GSCore geometry
    std::vector<FrameWorkload> tile64; //!< Neo geometry (with deltas)
};

/**
 * Run the functional pipeline over @p frames frames of @p trajectory and
 * collect workload descriptors. Temporal deltas (incoming/outgoing and
 * retention) are tracked for both tile geometries.
 *
 * @param want16 extract the 16-px tile sequence (GPU/GSCore)
 * @param want64 extract the 64-px tile sequence (Neo)
 */
WorkloadSequences extractSequences(const GaussianScene &scene,
                                   const Trajectory &trajectory,
                                   Resolution res, int frames,
                                   bool want16 = true, bool want64 = true);

/** Simulate a workload sequence on the GPU model. */
SequenceResult simulateGpu(const GpuModel &model,
                           const std::vector<FrameWorkload> &seq);

/** Simulate a workload sequence on the GSCore model. */
SequenceResult simulateGscore(const GscoreModel &model,
                              const std::vector<FrameWorkload> &seq);

/**
 * Simulate a workload sequence on the Neo model. The first frame is
 * treated as a cold start (conventional full sort) unless
 * @p first_is_cold is false.
 */
SequenceResult simulateNeo(const NeoModel &model,
                           const std::vector<FrameWorkload> &seq,
                           bool first_is_cold = true);

} // namespace neo

#endif // NEO_SIM_PERF_HARNESS_H
