/**
 * @file
 * Performance/traffic model of 3DGS rendering on an NVIDIA Orin AGX class
 * edge GPU. Stages execute as sequential kernel launches; sorting uses a
 * CUB-style multi-pass radix sort over duplicated (tile|depth, id) pairs,
 * whose repeated full-array passes are what makes GPU sorting consume
 * ~81-91% of DRAM traffic (paper Fig. 5a).
 *
 * The model also supports the Neo-SW configuration of Fig. 10: Dynamic
 * Partial Sorting and deferred depth updates implemented in CUDA, which
 * slash sorting traffic but gain little latency because GPU rasterization
 * dominates runtime and irregular insert/delete hurts SIMD utilization.
 */

#ifndef NEO_SIM_GPU_MODEL_H
#define NEO_SIM_GPU_MODEL_H

#include "gs/pipeline.h"
#include "sim/dram.h"
#include "sim/engine.h"

namespace neo
{

/** Orin-class GPU configuration. */
struct GpuConfig
{
    DramConfig dram = lpddr5Orin();
    /** Effective shader throughput for preprocessing (Gaussians/s). */
    double preprocess_rate = 2.6e9;
    /** Effective radix-sort throughput (pairs/s per pass). */
    double sort_rate = 9.0e9;
    /** Effective alpha-blend throughput (blends/s). */
    double blend_rate = 5.5e9;
    /** Radix passes over the key-value array (4-bit digits, 48-bit keys
     *  plus scatter inefficiency folded in). */
    int sort_passes = 12;
    /** Uncoalesced-scatter multiplier on sort traffic. */
    double sort_scatter_penalty = 2.2;
    /** Run the Neo-SW algorithm instead of full re-sorting (Fig. 10). */
    bool neo_sw = false;
    /** SIMD-divergence multiplier for Neo-SW insert/delete merge work. */
    double neo_sw_divergence = 6.0;
};

/** GPU system model. */
class GpuModel
{
  public:
    explicit GpuModel(GpuConfig cfg = {}) : cfg_(cfg), dram_(cfg.dram) {}

    const GpuConfig &config() const { return cfg_; }

    /** Simulate one frame from its workload descriptor. */
    FrameSim simulateFrame(const FrameWorkload &w) const;

  private:
    GpuConfig cfg_;
    DramModel dram_;
};

} // namespace neo

#endif // NEO_SIM_GPU_MODEL_H
