#include "sim/engine.h"

namespace neo
{

// Engine is fully inline; this translation unit anchors the header in the
// build so include hygiene is checked even when nothing else references it.

} // namespace neo
