#include "sim/neo_model.h"

#include <algorithm>
#include <cmath>

namespace neo
{

NeoConfig
neoSOnlyConfig()
{
    NeoConfig cfg;
    cfg.reuse_sorting = true;
    cfg.deferred_depth_update = false;
    cfg.itu_on_the_fly = false;
    return cfg;
}

FrameSim
NeoModel::simulateFrame(const FrameWorkload &w, bool cold_start) const
{
    FrameSim sim;
    const double visible = static_cast<double>(w.visible_gaussians);
    const double instances = static_cast<double>(w.instances);
    const double incoming = cold_start
                                ? instances
                                : static_cast<double>(w.incoming_instances);
    const double pixels = static_cast<double>(w.res.pixels());
    const double blends = static_cast<double>(w.blend_ops);
    const double tests = static_cast<double>(w.intersection_tests);
    const double clock = cfg_.frequency_ghz * 1e9;

    // --- Preprocessing Engine ---------------------------------------------
    // Full Gaussian read + feature-table write every frame; duplication
    // only writes the *incoming* tables after verifying against the
    // previous frame's membership, which is the first traffic saving.
    double dup_write = cfg_.reuse_sorting ? incoming : instances;
    double fe_bytes =
        visible * (record::kGaussian3d + record::kFeature2d) +
        dup_write * record::kTableEntry;
    if (!cfg_.itu_on_the_fly) {
        // Bitmaps generated early and shipped through DRAM (GSCore style).
        fe_bytes += instances * record::kBitmap;
    }
    sim.traffic.add(Stage::FeatureExtraction, fe_bytes);
    sim.fe_compute_s = visible / (cfg_.preprocess_units * clock);

    // --- Sorting Engine ------------------------------------------------------
    double sort_bytes = 0.0;
    double sort_entries = 0.0;
    if (cfg_.reuse_sorting && !cold_start) {
        // Dynamic Partial Sorting: each chunk of the reused table is read
        // and written exactly once. Incoming tables are far more expensive
        // per entry: they are gathered by the duplication unit, sorted as
        // small (padded) chunks, and merged through the MSU+, costing
        // several passes over their (short) length.
        sort_bytes = instances * record::kTableEntry * 2.0 +
                     incoming * record::kTableEntry * 2.0 * 6.0;
        sort_entries = instances + 8.0 * incoming;
    } else {
        // Conventional full sort: chunk sorts plus a global merge tree.
        double table_len = w.meanTileLength();
        double chunks = std::max(1.0, table_len / 256.0);
        double passes = 1.0 + std::ceil(std::log2(std::max(1.0, chunks)));
        sort_bytes = instances * record::kTableEntry * 2.0 * passes;
        sort_entries = instances * passes;
    }
    sim.traffic.add(Stage::Sorting, sort_bytes);
    sim.sort_compute_s =
        sort_entries /
        (cfg_.sort_entries_per_core_cycle * cfg_.sorting_cores * clock);

    // --- Rasterization Engine ---------------------------------------------
    // Stream sorted tables in, fetch features once per instance, write the
    // framebuffer; the deferred depth update overwrites table entries on
    // the way out instead of paying a separate pass.
    double raster_bytes =
        instances * (record::kTableEntry + record::kFeature2d) +
        pixels * record::kPixel;
    if (cfg_.itu_on_the_fly) {
        // Bitmaps live in the bitmap buffer only: no DRAM traffic.
    } else {
        raster_bytes += instances * record::kBitmap;
    }
    if (cfg_.deferred_depth_update) {
        raster_bytes += instances * record::kTableEntry; // piggyback write
    } else {
        // Separate post-processing pass: re-read the sorted table, fetch
        // each entry's depth from the feature table at random (a full
        // burst per touch), and write the table back (§4.4: +33% traffic).
        sim.traffic.add(Stage::Sorting,
                        instances * (record::kTableEntry * 2.0 + 32.0));
    }
    sim.traffic.add(Stage::Rasterization, raster_bytes);

    double scu_s =
        blends /
        (cfg_.blends_per_scu_cycle * cfg_.raster_cores * cfg_.scu_per_core *
         clock);
    double itu_s =
        tests /
        (cfg_.tests_per_itu_cycle * cfg_.raster_cores * cfg_.itu_per_core *
         clock);
    // ITU and SCU are pipelined (Fig. 14); the engine settles at the
    // slower of the two streams.
    sim.raster_compute_s = std::max(scu_s, itu_s);

    // --- Latency ----------------------------------------------------------------
    sim.memory_s = dram_.streamSeconds(sim.traffic.total());
    if (!cfg_.deferred_depth_update) {
        // The post-processing pass's random depth fetches serialize after
        // rasterization rather than overlapping with it.
        sim.memory_s += dram_.randomSeconds(instances * 0.25, 8.0);
    }
    double compute_bound = std::max(
        {sim.fe_compute_s, sim.sort_compute_s, sim.raster_compute_s});
    sim.latency_s = std::max(compute_bound, sim.memory_s);
    return sim;
}

} // namespace neo
