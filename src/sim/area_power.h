/**
 * @file
 * Analytic area/power model of the Neo and GSCore accelerators.
 *
 * The paper obtains these numbers from Synopsys DC synthesis with the
 * ASAP7 library plus CACTI for SRAMs, then scales across nodes with
 * DeepScaleTool. We cannot run synthesis here, so the model is built the
 * way an early-phase architecture estimate is: per-unit area/power
 * constants (hardened to match the paper's published component breakdown,
 * Table 4) multiplied by the configured unit counts, plus per-KB SRAM
 * constants for the buffers, with DeepScaleTool-style technology scaling
 * between nodes. The model therefore reproduces Tables 3-4 exactly at the
 * default configuration and extrapolates sensibly when unit counts change
 * (used by the ablation benches).
 */

#ifndef NEO_SIM_AREA_POWER_H
#define NEO_SIM_AREA_POWER_H

#include <string>
#include <vector>

#include "sim/neo_model.h"

namespace neo
{

/** Area/power of one named component. */
struct ComponentAP
{
    std::string name;
    double area_mm2 = 0.0;
    double power_mw = 0.0;
};

/**
 * DeepScaleTool-style technology scaling: returns the multiplier applied
 * to @p value when moving a design from @p from_nm to @p to_nm.
 * Supported nodes: 28, 22, 16, 14, 10, 7 (nm).
 *
 * @param area true scales area (density), false scales power.
 */
double deepScaleFactor(int from_nm, int to_nm, bool area);

/** Neo's per-engine breakdown at 7 nm / 1 GHz for a given configuration. */
std::vector<ComponentAP> neoAreaPowerBreakdown(const NeoConfig &cfg = {});

/** Sum of the breakdown. */
ComponentAP neoAreaPowerTotal(const NeoConfig &cfg = {});

/** GSCore (16-core variant) total at 7 nm / 1 GHz. */
ComponentAP gscoreAreaPowerTotal();

/**
 * Fine-grained Table 4 rows: engine subtotals plus the subcomponents of
 * the Sorting and Rasterization engines (MSU+, BSU, SCU, ITU, buffers).
 */
std::vector<ComponentAP> neoTable4Rows(const NeoConfig &cfg = {});

} // namespace neo

#endif // NEO_SIM_AREA_POWER_H
