/**
 * @file
 * Event-driven model of the Neo Sorting Engine microarchitecture
 * (Fig. 12): 16 Sorting Cores, each with double-buffered input/output
 * chunk buffers, a BSU+MSU+ datapath, and a shared DRAM channel.
 *
 * Where the analytic NeoModel charges sorting time as ops/throughput,
 * this model *schedules* the engine: tiles are dispatched to cores, each
 * core alternates chunk loads, in-core sorting, and write-backs, loads
 * and stores contend on the single memory channel, and double buffering
 * overlaps a chunk's sort with the next chunk's load. It answers the
 * microarchitectural questions the analytic model assumes away — how
 * many cores the channel can feed, and how much double buffering hides —
 * and its busy/idle accounting validates the analytic model's
 * utilization assumptions (see test_sorting_engine.cpp).
 */

#ifndef NEO_SIM_SORTING_ENGINE_H
#define NEO_SIM_SORTING_ENGINE_H

#include <cstdint>
#include <vector>

namespace neo
{

/** Sorting Engine microarchitecture parameters. */
struct SortingEngineConfig
{
    int cores = 16;
    /** Entries per chunk (on-chip buffer capacity). */
    uint32_t chunk_entries = 256;
    /** Bytes per table entry. */
    uint32_t entry_bytes = 8;
    /** Core datapath rate: entries sorted per cycle (BSU+MSU pipeline). */
    double sort_entries_per_cycle = 1.0;
    /** Shared channel bandwidth in bytes per cycle (@1 GHz: 51.2 GB/s
     *  -> 51.2 B/cycle). */
    double channel_bytes_per_cycle = 51.2;
    /** Double-buffered I/O (load next chunk during current sort). */
    bool double_buffered = true;
};

/** Result of scheduling one frame's sorting work. */
struct SortingEngineResult
{
    uint64_t cycles = 0;          //!< makespan of the frame's sorting
    uint64_t chunks = 0;          //!< chunk operations scheduled
    uint64_t bytes_moved = 0;     //!< DRAM bytes (loads + stores)
    double core_busy_fraction = 0.0;    //!< mean core utilization
    double channel_busy_fraction = 0.0; //!< memory channel utilization

    double
    seconds(double frequency_ghz = 1.0) const
    {
        return static_cast<double>(cycles) / (frequency_ghz * 1e9);
    }
};

/**
 * Schedule Dynamic Partial Sorting of a frame: each tile table of length
 * tile_lengths[i] is cut into chunks; chunks are processed by the
 * engine's cores with loads/stores serialized on the shared channel.
 *
 * The schedule is greedy list scheduling: tiles are assigned to the
 * earliest-free core (longest tile first), and each chunk's load, sort,
 * and store are placed respecting core and channel occupancy. With
 * double buffering a core may load chunk k+1 while sorting chunk k.
 */
SortingEngineResult
scheduleSortingEngine(const std::vector<uint32_t> &tile_lengths,
                      const SortingEngineConfig &cfg = {});

} // namespace neo

#endif // NEO_SIM_SORTING_ENGINE_H
