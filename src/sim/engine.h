/**
 * @file
 * Compute-engine cycle models. Each engine is a set of identical units
 * processing a stream of operations at a fixed per-unit rate; cycle counts
 * come from the op counters the functional pipeline produces. Timing
 * parameters correspond to the synthesized 1 GHz design (Table 3).
 */

#ifndef NEO_SIM_ENGINE_H
#define NEO_SIM_ENGINE_H

#include <cstdint>
#include <string>
#include <utility>

#include "sim/traffic.h"

namespace neo
{

/** Configuration of one compute engine. */
struct EngineConfig
{
    std::string name;
    int units = 1;               //!< parallel hardware units
    double ops_per_unit_cycle = 1.0; //!< throughput per unit per cycle
    double frequency_ghz = 1.0;  //!< clock (paper synthesizes at 1 GHz)
    double utilization = 0.85;   //!< achievable fraction of peak
};

/** Throughput model of a compute engine. */
class Engine
{
  public:
    explicit Engine(EngineConfig cfg) : cfg_(std::move(cfg)) {}

    const EngineConfig &config() const { return cfg_; }

    /** Seconds to process @p ops operations. */
    double computeSeconds(double ops) const
    {
        double rate = cfg_.units * cfg_.ops_per_unit_cycle *
                      cfg_.frequency_ghz * 1e9 * cfg_.utilization;
        return ops > 0.0 ? ops / rate : 0.0;
    }

    /** Cycles (at the engine clock) to process @p ops. */
    double cycles(double ops) const
    {
        return computeSeconds(ops) * cfg_.frequency_ghz * 1e9;
    }

  private:
    EngineConfig cfg_;
};

/** One simulated frame: latency plus attributed traffic and stage times. */
struct FrameSim
{
    double latency_s = 0.0;          //!< end-to-end frame latency
    double fe_compute_s = 0.0;       //!< feature-extraction compute time
    double sort_compute_s = 0.0;     //!< sorting compute time
    double raster_compute_s = 0.0;   //!< rasterization compute time
    double memory_s = 0.0;           //!< DRAM service time of all traffic
    TrafficBreakdown traffic;        //!< attributed DRAM bytes

    double fps() const { return latency_s > 0.0 ? 1.0 / latency_s : 0.0; }
    double latencyMs() const { return latency_s * 1e3; }
};

} // namespace neo

#endif // NEO_SIM_ENGINE_H
