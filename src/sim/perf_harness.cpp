#include "sim/perf_harness.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/delta_tracker.h"

namespace neo
{

double
SequenceResult::meanFps() const
{
    if (frames.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &f : frames)
        total += f.latency_s;
    return total > 0.0 ? static_cast<double>(frames.size()) / total : 0.0;
}

double
SequenceResult::totalTrafficGB() const
{
    return traffic().totalGB();
}

TrafficBreakdown
SequenceResult::traffic() const
{
    TrafficBreakdown t;
    for (const auto &f : frames)
        t += f.traffic;
    return t;
}

double
SequenceResult::trafficGBPer60Frames() const
{
    if (frames.empty())
        return 0.0;
    return totalTrafficGB() * 60.0 / static_cast<double>(frames.size());
}

double
SequenceResult::meanLatencyMs() const
{
    if (frames.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &f : frames)
        total += f.latency_s;
    return total * 1e3 / static_cast<double>(frames.size());
}

double
SequenceResult::maxLatencyMs() const
{
    double mx = 0.0;
    for (const auto &f : frames)
        mx = std::max(mx, f.latency_s);
    return mx * 1e3;
}

namespace
{

/** Extract one tile-geometry sequence with delta tracking. */
std::vector<FrameWorkload>
extractOne(const GaussianScene &scene, const Trajectory &trajectory,
           Resolution res, int frames, int tile_px)
{
    PipelineOptions opts;
    opts.tile_px = tile_px;
    Renderer renderer(opts);
    DeltaTracker tracker;

    std::vector<FrameWorkload> out;
    out.reserve(frames);
    for (int f = 0; f < frames; ++f) {
        Camera cam = trajectory.cameraAt(f, res);
        BinnedFrame frame = renderer.prepare(scene, cam);
        FrameDelta delta = tracker.observe(frame);
        FrameWorkload w = renderer.workloadFromBinned(frame, res);
        w.incoming_instances = delta.incoming_total;
        w.outgoing_instances = delta.outgoing_total;
        w.mean_tile_retention = delta.meanRetention();
        out.push_back(std::move(w));
    }
    return out;
}

} // namespace

WorkloadSequences
extractSequences(const GaussianScene &scene, const Trajectory &trajectory,
                 Resolution res, int frames, bool want16, bool want64)
{
    WorkloadSequences seqs;
    if (want16)
        seqs.tile16 = extractOne(scene, trajectory, res, frames, 16);
    if (want64)
        seqs.tile64 = extractOne(scene, trajectory, res, frames, 64);
    return seqs;
}

SequenceResult
simulateGpu(const GpuModel &model, const std::vector<FrameWorkload> &seq)
{
    SequenceResult r;
    r.frames.reserve(seq.size());
    for (const auto &w : seq)
        r.frames.push_back(model.simulateFrame(w));
    return r;
}

SequenceResult
simulateGscore(const GscoreModel &model,
               const std::vector<FrameWorkload> &seq)
{
    SequenceResult r;
    r.frames.reserve(seq.size());
    for (const auto &w : seq)
        r.frames.push_back(model.simulateFrame(w));
    return r;
}

SequenceResult
simulateNeo(const NeoModel &model, const std::vector<FrameWorkload> &seq,
            bool first_is_cold)
{
    SequenceResult r;
    r.frames.reserve(seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        bool cold = first_is_cold && i == 0;
        r.frames.push_back(model.simulateFrame(seq[i], cold));
    }
    return r;
}

} // namespace neo
