#include "sim/perf_harness.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/faultinject.h"
#include "common/frame_arena.h"
#include "common/integrity.h"
#include "common/parallel.h"
#include "core/delta_tracker.h"
#include "gs/tile_sort.h"
#include "gs/tiling.h"

namespace neo
{

double
SequenceResult::meanFps() const
{
    if (frames.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &f : frames)
        total += f.latency_s;
    return total > 0.0 ? static_cast<double>(frames.size()) / total : 0.0;
}

double
SequenceResult::totalTrafficGB() const
{
    return traffic().totalGB();
}

TrafficBreakdown
SequenceResult::traffic() const
{
    TrafficBreakdown t;
    for (const auto &f : frames)
        t += f.traffic;
    return t;
}

double
SequenceResult::trafficGBPer60Frames() const
{
    if (frames.empty())
        return 0.0;
    return totalTrafficGB() * 60.0 / static_cast<double>(frames.size());
}

double
SequenceResult::meanLatencyMs() const
{
    if (frames.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &f : frames)
        total += f.latency_s;
    return total * 1e3 / static_cast<double>(frames.size());
}

double
SequenceResult::maxLatencyMs() const
{
    double mx = 0.0;
    for (const auto &f : frames)
        mx = std::max(mx, f.latency_s);
    return mx * 1e3;
}

namespace
{

/** Extract one tile-geometry sequence with delta tracking. */
std::vector<FrameWorkload>
extractOne(const GaussianScene &scene, const Trajectory &trajectory,
           Resolution res, int frames, int tile_px, int threads)
{
    PipelineOptions opts;
    opts.tile_px = tile_px;
    opts.threads = threads;
    Renderer renderer(opts);
    DeltaTracker tracker;
    tracker.setThreads(threads);

    // Steady-state extraction: the binned frame, scatter scratch and
    // delta buffers persist across the frame loop with capacity retained.
    BinnedFrame frame;
    FrameArena arena;
    FrameDelta delta;

    std::vector<FrameWorkload> out;
    out.reserve(frames);
    for (int f = 0; f < frames; ++f) {
        Camera cam = trajectory.cameraAt(f, res);
        renderer.prepareInto(frame, arena, scene, cam);
        tracker.observe(frame, delta);
        FrameWorkload w = renderer.workloadFromBinned(frame, res);
        w.incoming_instances = delta.incoming_total;
        w.outgoing_instances = delta.outgoing_total;
        w.mean_tile_retention = delta.meanRetention();
        out.push_back(std::move(w));
    }
    return out;
}

} // namespace

WorkloadSequences
extractSequences(const GaussianScene &scene, const Trajectory &trajectory,
                 Resolution res, int frames, bool want16, bool want64,
                 int threads)
{
    WorkloadSequences seqs;
    if (want16)
        seqs.tile16 =
            extractOne(scene, trajectory, res, frames, 16, threads);
    if (want64)
        seqs.tile64 =
            extractOne(scene, trajectory, res, frames, 64, threads);
    return seqs;
}

std::vector<ThreadScalingPoint>
sweepRenderThreads(const GaussianScene &scene, const Trajectory &trajectory,
                   Resolution res, int frames,
                   const std::vector<int> &thread_counts,
                   PipelineOptions opts)
{
    using clock = std::chrono::steady_clock;

    std::vector<ThreadScalingPoint> points;
    points.reserve(thread_counts.size());
    for (int requested : thread_counts) {
        opts.threads = requested;
        Renderer renderer(opts);
        BinnedFrame frame;
        FrameArena arena;
        Image image;
        const std::vector<std::vector<TileEntry>> no_orderings;
        auto renderOnce = [&](int f) {
            renderer.prepareInto(frame, arena, scene,
                                 trajectory.cameraAt(f, res));
            renderer.renderInto(image, frame, no_orderings, nullptr,
                                &arena);
        };

        // One untimed warm-up frame spins up the worker pool, faults in
        // the scene and grows the reused buffers to their working size,
        // so the timed frames measure the allocation-free steady state.
        renderOnce(0);

        auto t0 = clock::now();
        for (int f = 0; f < frames; ++f)
            renderOnce(f);
        auto t1 = clock::now();

        ThreadScalingPoint p;
        p.threads = resolveThreadCount(requested);
        p.ms_per_frame =
            std::chrono::duration<double, std::milli>(t1 - t0).count() /
            std::max(frames, 1);
        p.frame_hash = image.contentHash();
        p.speedup = points.empty()
                        ? 1.0
                        : points.front().ms_per_frame / p.ms_per_frame;
        points.push_back(p);
    }
    return points;
}

std::vector<ThreadScalingPoint>
sweepRenderThreadsStaged(const GaussianScene &scene,
                         const Trajectory &trajectory, Resolution res,
                         int frames, const std::vector<int> &thread_counts,
                         PipelineOptions opts)
{
    using clock = std::chrono::steady_clock;
    auto ms_since = [](clock::time_point t0) {
        return std::chrono::duration<double, std::milli>(clock::now() - t0)
            .count();
    };

    std::vector<ThreadScalingPoint> points;
    points.reserve(thread_counts.size());
    for (int requested : thread_counts) {
        opts.threads = requested;
        const int threads = resolveThreadCount(requested);
        Renderer renderer(opts);
        DeltaTracker tracker;
        tracker.setThreads(threads);
        BinnedFrame frame;
        FrameArena arena;
        FrameDelta delta;
        Image image;
        BatchSortScratch sort_scratch;
        const std::vector<std::vector<TileEntry>> no_orderings;

        // Integrity fences run inside the timed stage sections, so a
        // check/recover sweep point measures the mode's true per-stage
        // overhead (this is where BENCH_PR6's check-vs-off delta comes
        // from); with the mode off every fence is a no-op branch.
        IntegrityContext integrity;
        integrity.configure(resolveIntegrityMode(opts.integrity));
        const bool fenced = integrity.enabled();
        IntegrityContext *ctx = fenced ? &integrity : nullptr;
        if (fenced)
            tracker.setIntegrity(ctx);

        StageTimings acc;
        FrameStats last_stats;
        auto frameOnce = [&](int f, bool timed) {
            const Camera cam = trajectory.cameraAt(f, res);
            auto t0 = clock::now();
            if (fenced)
                integrity.beginFrame(static_cast<uint64_t>(f));
            binFrameInto(frame, arena, scene, cam, opts.tile_px, threads);
            if (fenced) {
                integrity.sealTiles(IntegrityStage::Binning,
                                    kIntegrityBinTiles, frame.tiles);
                faultinject::corruptTiles(kIntegrityBinTiles, frame.tiles);
                integrity.verifyTiles(IntegrityStage::Binning,
                                      kIntegrityBinTiles, frame.tiles);
                // Projection fences over the feature SoA arrays (filled
                // by the binning scatter) — same placement as the
                // NeoRenderer frame loop, inside the timed bin section
                // so check-mode overhead stays honestly measured.
                integrity.sealSpan(IntegrityStage::Projection,
                                   kIntegrityProjMean2d, frame.mean2d);
                integrity.sealSpan(IntegrityStage::Projection,
                                   kIntegrityProjRadius, frame.radius_px);
                integrity.sealSpan(IntegrityStage::Projection,
                                   kIntegrityProjDepth, frame.depth);
                integrity.sealSpan(IntegrityStage::Projection,
                                   kIntegrityProjConic, frame.conic);
                faultinject::corruptSpan(kIntegrityProjMean2d,
                                         frame.mean2d);
                faultinject::corruptSpan(kIntegrityProjRadius,
                                         frame.radius_px);
                faultinject::corruptSpan(kIntegrityProjDepth, frame.depth);
                faultinject::corruptSpan(kIntegrityProjConic, frame.conic);
                integrity.verifySpan(IntegrityStage::Projection,
                                     kIntegrityProjMean2d, frame.mean2d);
                integrity.verifySpan(IntegrityStage::Projection,
                                     kIntegrityProjRadius,
                                     frame.radius_px);
                integrity.verifySpan(IntegrityStage::Projection,
                                     kIntegrityProjDepth, frame.depth);
                integrity.verifySpan(IntegrityStage::Projection,
                                     kIntegrityProjConic, frame.conic);
            }
            if (timed)
                acc.bin_ms += ms_since(t0);

            t0 = clock::now();
            // Fused cross-tile batching: tiny tiles pack into ~256-entry
            // batches and sort through the key kernel — one pool dispatch
            // per batch instead of per tile, bit-identical to per-tile
            // std::sort(entryDepthLess) at any thread count.
            sortTablesBatched(frame.tiles, threads, sort_scratch);
            if (fenced) {
                // The sorted tile lists are the orderings rasterization
                // consumes — the staged loop's analogue of the sorter's
                // persistent tables.
                integrity.sealTiles(IntegrityStage::Sorting,
                                    kIntegritySortTables, frame.tiles);
                faultinject::corruptTiles(kIntegritySortTables,
                                          frame.tiles);
                integrity.verifyTiles(IntegrityStage::Sorting,
                                      kIntegritySortTables, frame.tiles);
            }
            if (timed)
                acc.sort_ms += ms_since(t0);

            t0 = clock::now();
            renderer.renderInto(image, frame, no_orderings, &last_stats,
                                &arena, ctx);
            if (timed)
                acc.raster_ms += ms_since(t0);

            t0 = clock::now();
            tracker.observe(frame, delta);
            if (timed)
                acc.tracker_ms += ms_since(t0);
            if (fenced)
                integrity.exportStats(last_stats.integrity);
        };

        // Untimed warm-up: pool spin-up, scene faults, buffer growth.
        frameOnce(0, false);
        for (int f = 0; f < frames; ++f)
            frameOnce(f, true);

        const double denom = std::max(frames, 1);
        ThreadScalingPoint p;
        p.threads = threads;
        p.has_stages = true;
        p.stages.bin_ms = acc.bin_ms / denom;
        p.stages.sort_ms = acc.sort_ms / denom;
        p.stages.raster_ms = acc.raster_ms / denom;
        p.stages.tracker_ms = acc.tracker_ms / denom;
        p.ms_per_frame = p.stages.totalMs();
        p.frame_hash = image.contentHash();
        p.last_frame = last_stats;
        p.speedup = points.empty()
                        ? 1.0
                        : points.front().ms_per_frame / p.ms_per_frame;
        points.push_back(p);
    }
    return points;
}

SequenceResult
simulateGpu(const GpuModel &model, const std::vector<FrameWorkload> &seq)
{
    SequenceResult r;
    r.frames.reserve(seq.size());
    for (const auto &w : seq)
        r.frames.push_back(model.simulateFrame(w));
    return r;
}

SequenceResult
simulateGscore(const GscoreModel &model,
               const std::vector<FrameWorkload> &seq)
{
    SequenceResult r;
    r.frames.reserve(seq.size());
    for (const auto &w : seq)
        r.frames.push_back(model.simulateFrame(w));
    return r;
}

SequenceResult
simulateNeo(const NeoModel &model, const std::vector<FrameWorkload> &seq,
            bool first_is_cold)
{
    SequenceResult r;
    r.frames.reserve(seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        bool cold = first_is_cold && i == 0;
        r.frames.push_back(model.simulateFrame(seq[i], cold));
    }
    return r;
}

} // namespace neo
