/**
 * @file
 * On-disk cache of extracted workload sequences. Extracting per-frame
 * workloads from the functional pipeline costs seconds per frame at QHD
 * scale; every paper figure re-uses the same (scene, trajectory,
 * resolution, tile geometry) sequences, so the benches persist them under
 * a content key and reload instantly on subsequent runs.
 */

#ifndef NEO_SIM_WORKLOAD_CACHE_H
#define NEO_SIM_WORKLOAD_CACHE_H

#include <string>
#include <vector>

#include "gs/pipeline.h"
#include "scene/datasets.h"

namespace neo
{

/** Identity of one cached workload sequence. */
struct WorkloadKey
{
    std::string scene;      //!< preset name
    double scene_scale = 1.0;
    Resolution res;
    int tile_px = 16;
    int frames = 8;
    float speed = 1.0f;

    /** Stable file-name stem for this key. */
    std::string stem() const;
};

/** Serialize a sequence to @p path. @return true on success. */
bool saveWorkloads(const std::string &path,
                   const std::vector<FrameWorkload> &seq);

/** Load a sequence from @p path; empty vector when absent/corrupt. */
std::vector<FrameWorkload> loadWorkloads(const std::string &path);

/**
 * Fetch-or-compute a workload sequence. On a cache miss, builds the scene,
 * runs the functional pipeline for key.frames frames of the preset's
 * trajectory at key.speed, stores the result under @p cache_dir and
 * returns it.
 *
 * @param threads worker threads for the miss-path extraction
 *        (resolveThreadCount semantics). Not part of the cache key: the
 *        extracted workloads are bit-identical for any thread count.
 */
std::vector<FrameWorkload> cachedWorkloads(const WorkloadKey &key,
                                           const std::string &cache_dir,
                                           int threads = 0);

/** Default cache directory (NEO_WORKLOAD_CACHE or .workload_cache). */
std::string defaultCacheDir();

} // namespace neo

#endif // NEO_SIM_WORKLOAD_CACHE_H
