/**
 * @file
 * Banked LPDDR4 timing model — the detailed counterpart of the analytic
 * DramModel. Requests are replayed against per-bank row-buffer state with
 * LPDDR4-class timing parameters (tRCD / tRP / tCAS / tBURST), giving an
 * *emergent* effective bandwidth instead of an assumed efficiency factor.
 *
 * The repository's system models use the analytic DramModel for speed;
 * this model exists to validate its stream_efficiency / random_penalty
 * constants (see test_dram_bank.cpp: a long sequential stream achieves
 * ~85-95% of peak, scattered 8-byte accesses a small fraction of it),
 * mirroring how the paper calibrates against Ramulator.
 */

#ifndef NEO_SIM_DRAM_BANK_H
#define NEO_SIM_DRAM_BANK_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace neo
{

/** LPDDR4-class device timing (one channel). */
struct BankedDramConfig
{
    int banks = 8;
    /** Row (page) size per bank in bytes. */
    uint32_t row_bytes = 2048;
    /** Burst granularity in bytes (x16 device, BL16). */
    uint32_t burst_bytes = 32;
    /** IO clock in GHz (LPDDR4-3200 -> 1.6 GHz DDR). */
    double io_clock_ghz = 1.6;
    // Timings in device cycles.
    int t_rcd = 29;   //!< activate -> column access
    int t_rp = 29;    //!< precharge
    int t_cas = 29;   //!< column access latency
    int t_burst = 8;  //!< data transfer per burst (BL16 / 2 for DDR)

    /** Peak bandwidth in bytes/second (both edges of the IO clock). */
    double peakBandwidth() const
    {
        return io_clock_ghz * 1e9 * 2.0 *
               (burst_bytes / static_cast<double>(t_burst * 2));
    }
};

/** One memory request: address and size (split into bursts internally). */
struct DramRequest
{
    uint64_t address = 0;
    uint32_t bytes = 32;
};

/** Replay statistics. */
struct DramReplayStats
{
    uint64_t bursts = 0;
    uint64_t row_hits = 0;
    uint64_t row_misses = 0;
    uint64_t cycles = 0;

    double hitRate() const
    {
        uint64_t total = row_hits + row_misses;
        return total ? static_cast<double>(row_hits) / total : 0.0;
    }
};

/** Row-buffer-accurate request replay engine. */
class BankedDramModel
{
  public:
    explicit BankedDramModel(BankedDramConfig cfg = {});

    const BankedDramConfig &config() const { return cfg_; }

    /** Reset all bank state and counters. */
    void reset();

    /** Replay one request; returns cycles it occupied the channel. */
    uint64_t access(const DramRequest &req);

    /** Replay a request stream. */
    const DramReplayStats &replay(const std::vector<DramRequest> &reqs);

    const DramReplayStats &stats() const { return stats_; }

    /** Seconds corresponding to the accumulated cycles. */
    double elapsedSeconds() const;

    /** Achieved bandwidth over everything replayed so far (bytes/s). */
    double achievedBandwidth() const;

    /** Achieved / peak bandwidth. */
    double efficiency() const
    {
        double peak = cfg_.peakBandwidth();
        return peak > 0.0 ? achievedBandwidth() / peak : 0.0;
    }

  private:
    BankedDramConfig cfg_;
    DramReplayStats stats_;
    /** Open row per bank (-1 = closed). */
    std::vector<int64_t> open_row_;
};

/** Build a sequential read stream of @p bytes starting at @p base. */
std::vector<DramRequest> sequentialStream(uint64_t base, uint64_t bytes,
                                          uint32_t request_bytes = 256);

/** Build @p count random accesses of @p bytes_each within @p span bytes. */
std::vector<DramRequest> randomStream(uint64_t span, size_t count,
                                      uint32_t bytes_each, uint64_t seed);

} // namespace neo

#endif // NEO_SIM_DRAM_BANK_H
