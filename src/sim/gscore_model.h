/**
 * @file
 * Performance/traffic model of GSCore (Lee et al., ASPLOS 2024), the prior
 * 3DGS ASIC the paper compares against. GSCore sorts every frame from
 * scratch with hierarchical (coarse bucket + fine) sorting over per-tile
 * tables, generates subtile bitmaps early and propagates them off-chip to
 * the rasterizer, and rasterizes with subtile-skipping cores.
 *
 * The configuration defaults to the paper's scaled 16-core variant at
 * 51.2 GB/s (§6.1); Fig. 3 uses the original 4-core configuration.
 */

#ifndef NEO_SIM_GSCORE_MODEL_H
#define NEO_SIM_GSCORE_MODEL_H

#include "gs/pipeline.h"
#include "sim/dram.h"
#include "sim/engine.h"

namespace neo
{

/** GSCore accelerator configuration. */
struct GscoreConfig
{
    DramConfig dram = lpddr4Edge();
    int cores = 16;              //!< sorting/rasterization core pairs
    double frequency_ghz = 1.0;
    /** Preprocessing throughput per core (Gaussians/cycle). */
    double preprocess_per_core_cycle = 0.25;
    /** Sorting-core streaming rate (entries/cycle/core). */
    double sort_entries_per_core_cycle = 1.0;
    /** Rasterization rate (blends/cycle/core). */
    double blends_per_core_cycle = 4.0;
    /**
     * Off-chip read+write passes over the duplicated tables performed by
     * hierarchical sorting (coarse bucket scatter, per-level merges, and
     * the final gather; calibrated against the paper's Fig. 5 sorting
     * share on GSCore).
     */
    double sort_passes = 8.0;
};

/** GSCore system model. */
class GscoreModel
{
  public:
    explicit GscoreModel(GscoreConfig cfg = {}) : cfg_(cfg), dram_(cfg.dram)
    {
    }

    const GscoreConfig &config() const { return cfg_; }

    /** Simulate one frame from its workload descriptor (16-px tiles). */
    FrameSim simulateFrame(const FrameWorkload &w) const;

  private:
    GscoreConfig cfg_;
    DramModel dram_;
};

} // namespace neo

#endif // NEO_SIM_GSCORE_MODEL_H
