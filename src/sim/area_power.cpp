#include "sim/area_power.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace neo
{

namespace
{

// Per-unit constants at 7 nm / 1 GHz. Derived from the paper's Table 4 by
// dividing each component's synthesized area/power by its unit count
// (16 BSU/MSU+, 16 SCU/ITU, 4 preprocessing unit groups) and each buffer
// pool by its capacity (64 KB sorting I/O, 200 KB rasterization buffers).
struct UnitConstants
{
    double area_mm2;
    double power_mw;
};

constexpr UnitConstants kPreprocessGroup{0.0055, 45.0}; // proj+color+dup
constexpr UnitConstants kPreprocessOverhead{0.004, 14.9};
constexpr UnitConstants kBsu{0.0005, 4.6875};
constexpr UnitConstants kMsuPlus{0.0003125, 0.775};
constexpr UnitConstants kSortBufferPerKb{0.000625, 1.11875};
constexpr UnitConstants kScu{0.01425, 23.4375};
constexpr UnitConstants kItu{0.001875, 3.66875};
constexpr UnitConstants kRasterBufferPerKb{0.00025, 0.051};

constexpr double kSortBufferKb = 64.0;
constexpr double kRasterBufferKb = 200.0;

// Published GSCore totals after the paper's own DeepScaleTool rescale of
// the original 28 nm synthesis to 7 nm (Table 3).
constexpr double kGscoreArea7nm = 0.417;
constexpr double kGscorePower7nm = 719.9;

/**
 * Relative logic density (1 / area) and relative dynamic power at equal
 * frequency, normalized to 28 nm. Values follow the DeepScaleTool fitted
 * scaling curves for the 28 -> 7 nm range.
 */
struct NodeScale
{
    int nm;
    double density; // relative transistor density
    double power;   // relative power at iso-design
};

constexpr NodeScale kNodes[] = {
    {28, 1.00, 1.00}, {22, 1.52, 0.80}, {16, 2.80, 0.60},
    {14, 3.30, 0.55}, {10, 5.60, 0.42}, {7, 9.00, 0.33},
};

const NodeScale *
findNode(int nm)
{
    for (const auto &n : kNodes)
        if (n.nm == nm)
            return &n;
    return nullptr;
}

} // namespace

double
deepScaleFactor(int from_nm, int to_nm, bool area)
{
    const NodeScale *from = findNode(from_nm);
    const NodeScale *to = findNode(to_nm);
    if (!from || !to)
        fatal("deepScaleFactor: unsupported node %d or %d nm", from_nm,
              to_nm);
    if (area)
        return from->density / to->density;
    return to->power / from->power;
}

std::vector<ComponentAP>
neoAreaPowerBreakdown(const NeoConfig &cfg)
{
    std::vector<ComponentAP> rows;

    ComponentAP pre{"Preprocessing Engine", 0.0, 0.0};
    pre.area_mm2 = cfg.preprocess_units * kPreprocessGroup.area_mm2 +
                   kPreprocessOverhead.area_mm2;
    pre.power_mw = cfg.preprocess_units * kPreprocessGroup.power_mw +
                   kPreprocessOverhead.power_mw;
    rows.push_back(pre);

    ComponentAP sort{"Sorting Engine", 0.0, 0.0};
    sort.area_mm2 = cfg.sorting_cores * (kBsu.area_mm2 + kMsuPlus.area_mm2) +
                    kSortBufferKb * kSortBufferPerKb.area_mm2;
    sort.power_mw = cfg.sorting_cores * (kBsu.power_mw + kMsuPlus.power_mw) +
                    kSortBufferKb * kSortBufferPerKb.power_mw;
    rows.push_back(sort);

    ComponentAP raster{"Rasterization Engine", 0.0, 0.0};
    const int scus = cfg.raster_cores * cfg.scu_per_core;
    const int itus = cfg.raster_cores * cfg.itu_per_core;
    raster.area_mm2 = scus * kScu.area_mm2 + itus * kItu.area_mm2 +
                      kRasterBufferKb * kRasterBufferPerKb.area_mm2;
    raster.power_mw = scus * kScu.power_mw + itus * kItu.power_mw +
                      kRasterBufferKb * kRasterBufferPerKb.power_mw;
    rows.push_back(raster);

    return rows;
}

ComponentAP
neoAreaPowerTotal(const NeoConfig &cfg)
{
    ComponentAP total{"Neo", 0.0, 0.0};
    for (const auto &c : neoAreaPowerBreakdown(cfg)) {
        total.area_mm2 += c.area_mm2;
        total.power_mw += c.power_mw;
    }
    return total;
}

ComponentAP
gscoreAreaPowerTotal()
{
    return {"GSCore", kGscoreArea7nm, kGscorePower7nm};
}

std::vector<ComponentAP>
neoTable4Rows(const NeoConfig &cfg)
{
    std::vector<ComponentAP> rows;
    auto engines = neoAreaPowerBreakdown(cfg);

    rows.push_back(engines[0]); // preprocessing

    rows.push_back({"  Merge Sort Unit+",
                    cfg.sorting_cores * kMsuPlus.area_mm2,
                    cfg.sorting_cores * kMsuPlus.power_mw});
    rows.push_back({"  Bitonic Sort Unit",
                    cfg.sorting_cores * kBsu.area_mm2,
                    cfg.sorting_cores * kBsu.power_mw});
    rows.push_back({"  Buffers + others (sort)",
                    kSortBufferKb * kSortBufferPerKb.area_mm2,
                    kSortBufferKb * kSortBufferPerKb.power_mw});
    rows.push_back(engines[1]); // sorting total

    const int scus = cfg.raster_cores * cfg.scu_per_core;
    const int itus = cfg.raster_cores * cfg.itu_per_core;
    rows.push_back({"  Subtile Compute Unit", scus * kScu.area_mm2,
                    scus * kScu.power_mw});
    rows.push_back({"  Intersection Test Unit", itus * kItu.area_mm2,
                    itus * kItu.power_mw});
    rows.push_back({"  Buffers + others (raster)",
                    kRasterBufferKb * kRasterBufferPerKb.area_mm2,
                    kRasterBufferKb * kRasterBufferPerKb.power_mw});
    rows.push_back(engines[2]); // rasterization total

    rows.push_back(neoAreaPowerTotal(cfg));
    return rows;
}

} // namespace neo
