/**
 * @file
 * Performance/traffic model of the Neo accelerator (§5): Preprocessing
 * Engine (projection/color/duplication with incoming verification),
 * Sorting Engine (16 cores of BSU + MSU+ running Dynamic Partial Sorting
 * plus incoming merge), and Rasterization Engine (4 cores x 4 ITU/SCU with
 * on-the-fly bitmaps and deferred depth update).
 *
 * Ablation flags reproduce Fig. 18's Neo-S configuration (Neo Sorting
 * Engine grafted onto GSCore: no deferred depth update, so a separate
 * post-processing pass refreshes table metadata; bitmaps still travel
 * off-chip) and the §4.4 no-deferral study.
 */

#ifndef NEO_SIM_NEO_MODEL_H
#define NEO_SIM_NEO_MODEL_H

#include "gs/pipeline.h"
#include "sim/dram.h"
#include "sim/engine.h"

namespace neo
{

/** Neo accelerator configuration (defaults = paper Table 1). */
struct NeoConfig
{
    DramConfig dram = lpddr4Edge();
    double frequency_ghz = 1.0;
    int sorting_cores = 16;      //!< BSU + MSU+ pairs
    int raster_cores = 4;        //!< each with 4 ITUs + 4 SCUs
    int scu_per_core = 4;
    int itu_per_core = 4;
    /** Preprocessing engine: 4 projection + 4 color + 4 duplication units. */
    int preprocess_units = 4;
    /** Entries streamed per sorting core per cycle. */
    double sort_entries_per_core_cycle = 1.0;
    /** Blends per SCU per cycle (pipelined alpha-blend datapath). */
    double blends_per_scu_cycle = 2.0;
    /** Subtile tests per ITU per cycle. */
    double tests_per_itu_cycle = 4.0;

    // --- ablation flags (full Neo = all true) ---------------------------
    /** Reuse-and-update sorting (false = sort from scratch like GSCore). */
    bool reuse_sorting = true;
    /** Deferred depth update piggybacked on rasterization (§4.4). */
    bool deferred_depth_update = true;
    /** On-the-fly ITU bitmaps (false = bitmaps travel through DRAM). */
    bool itu_on_the_fly = true;
};

/** Neo-S: Neo's Sorting Engine only, grafted onto GSCore (Fig. 18). */
NeoConfig neoSOnlyConfig();

/** Neo system model. */
class NeoModel
{
  public:
    explicit NeoModel(NeoConfig cfg = {}) : cfg_(cfg), dram_(cfg.dram) {}

    const NeoConfig &config() const { return cfg_; }

    /**
     * Simulate one frame. The workload must come from the Neo pipeline
     * (64-px tiles) with incoming/outgoing counts populated; pass
     * cold_start = true for the first frame of a sequence, which performs
     * a conventional full sort.
     */
    FrameSim simulateFrame(const FrameWorkload &w,
                           bool cold_start = false) const;

  private:
    NeoConfig cfg_;
    DramModel dram_;
};

} // namespace neo

#endif // NEO_SIM_NEO_MODEL_H
