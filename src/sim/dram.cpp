#include "sim/dram.h"

#include <cmath>

namespace neo
{

DramConfig
lpddr4Edge()
{
    DramConfig c;
    c.bandwidth_gbps = 51.2;
    return c;
}

DramConfig
lpddr4Double()
{
    DramConfig c;
    c.bandwidth_gbps = 102.4;
    return c;
}

DramConfig
lpddr5Orin()
{
    DramConfig c;
    c.bandwidth_gbps = 204.8;
    // The GPU's many concurrent access streams schedule somewhat worse
    // than a dedicated accelerator's streaming DMA.
    c.stream_efficiency = 0.70;
    return c;
}

double
DramModel::streamSeconds(double bytes) const
{
    if (bytes <= 0.0)
        return 0.0;
    // Round up to burst granularity.
    double bursts = std::ceil(bytes / cfg_.burst_bytes);
    return bursts * cfg_.burst_bytes / effectiveBandwidth();
}

double
DramModel::randomSeconds(double count, double bytes_each) const
{
    if (count <= 0.0)
        return 0.0;
    double per_request =
        std::ceil(bytes_each / cfg_.burst_bytes) * cfg_.burst_bytes;
    return count * per_request * cfg_.random_penalty /
           effectiveBandwidth();
}

} // namespace neo
