#include "sim/workload_cache.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "sim/perf_harness.h"

namespace neo
{

namespace
{

/** Bump when the workload layout or the extraction pipeline changes. */
constexpr uint32_t kCacheVersion = 3;
constexpr uint32_t kMagic = 0x4e454f57; // "NEOW"

void
writeU64(std::FILE *f, uint64_t v)
{
    std::fwrite(&v, sizeof(v), 1, f);
}

bool
readU64(std::FILE *f, uint64_t &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

} // namespace

std::string
WorkloadKey::stem() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s_s%.3f_%dx%d_t%d_f%d_v%.2f_c%u",
                  scene.c_str(), scene_scale, res.width, res.height,
                  tile_px, frames, static_cast<double>(speed),
                  kCacheVersion);
    return buf;
}

bool
saveWorkloads(const std::string &path,
              const std::vector<FrameWorkload> &seq)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    uint32_t magic = kMagic;
    std::fwrite(&magic, sizeof(magic), 1, f);
    writeU64(f, seq.size());
    for (const auto &w : seq) {
        int32_t dims[3] = {w.res.width, w.res.height, w.tile_size};
        std::fwrite(dims, sizeof(dims), 1, f);
        writeU64(f, w.scene_gaussians);
        writeU64(f, w.visible_gaussians);
        writeU64(f, w.instances);
        writeU64(f, w.blend_ops);
        writeU64(f, w.intersection_tests);
        writeU64(f, w.incoming_instances);
        writeU64(f, w.outgoing_instances);
        std::fwrite(&w.mean_tile_retention, sizeof(double), 1, f);
        writeU64(f, w.tile_lengths.size());
        if (!w.tile_lengths.empty())
            std::fwrite(w.tile_lengths.data(), sizeof(uint32_t),
                        w.tile_lengths.size(), f);
    }
    std::fclose(f);
    return true;
}

std::vector<FrameWorkload>
loadWorkloads(const std::string &path)
{
    std::vector<FrameWorkload> out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    uint32_t magic = 0;
    uint64_t count = 0;
    if (std::fread(&magic, sizeof(magic), 1, f) != 1 || magic != kMagic ||
        !readU64(f, count)) {
        std::fclose(f);
        return out;
    }
    out.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        FrameWorkload w;
        int32_t dims[3];
        uint64_t tiles = 0;
        bool ok = std::fread(dims, sizeof(dims), 1, f) == 1 &&
                  readU64(f, w.scene_gaussians) &&
                  readU64(f, w.visible_gaussians) &&
                  readU64(f, w.instances) && readU64(f, w.blend_ops) &&
                  readU64(f, w.intersection_tests) &&
                  readU64(f, w.incoming_instances) &&
                  readU64(f, w.outgoing_instances) &&
                  std::fread(&w.mean_tile_retention, sizeof(double), 1,
                             f) == 1 &&
                  readU64(f, tiles);
        if (!ok) {
            out.clear();
            break;
        }
        w.res.width = dims[0];
        w.res.height = dims[1];
        w.res.name = "cached";
        w.tile_size = dims[2];
        w.tile_lengths.resize(tiles);
        if (tiles && std::fread(w.tile_lengths.data(), sizeof(uint32_t),
                                tiles, f) != tiles) {
            out.clear();
            break;
        }
        out.push_back(std::move(w));
    }
    std::fclose(f);
    return out;
}

std::string
defaultCacheDir()
{
    if (const char *env = std::getenv("NEO_WORKLOAD_CACHE"))
        return env;
    return ".workload_cache";
}

std::vector<FrameWorkload>
cachedWorkloads(const WorkloadKey &key, const std::string &cache_dir,
                int threads)
{
    ::mkdir(cache_dir.c_str(), 0755);
    std::string path = cache_dir + "/" + key.stem() + ".bin";
    std::vector<FrameWorkload> seq = loadWorkloads(path);
    if (static_cast<int>(seq.size()) == key.frames)
        return seq;

    inform("workload cache miss: computing %s", key.stem().c_str());
    ScenePreset preset = presetByName(key.scene);
    GaussianScene scene = buildScene(preset, key.scene_scale);
    Trajectory traj(preset.trajectory, scene, key.speed);

    WorkloadSequences seqs =
        extractSequences(scene, traj, key.res, key.frames,
                         key.tile_px == 16, key.tile_px == 64, threads);
    seq = key.tile_px == 16 ? std::move(seqs.tile16)
                            : std::move(seqs.tile64);
    if (seq.empty())
        fatal("workload extraction produced nothing for %s",
              key.stem().c_str());
    if (!saveWorkloads(path, seq))
        warn("could not persist workload cache at %s", path.c_str());
    return seq;
}

} // namespace neo
