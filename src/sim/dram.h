/**
 * @file
 * Off-chip memory model. The paper models LPDDR4 with Ramulator; here the
 * model is burst-granular and analytic: a stream of requests is served at
 * the device's peak bandwidth derated by a scheduling-efficiency factor,
 * and random (non-streaming) requests pay a row-miss penalty expressed as
 * an effective-bandwidth divisor. Sorting traffic in 3DGS is dominated by
 * long sequential streams, which is why this approximation preserves the
 * bandwidth-bound behaviour of Figs. 4-5 (see DESIGN.md substitutions).
 */

#ifndef NEO_SIM_DRAM_H
#define NEO_SIM_DRAM_H

#include <cstdint>

namespace neo
{

/** DRAM device configuration. */
struct DramConfig
{
    /** Peak bandwidth in GB/s (10^9 bytes). */
    double bandwidth_gbps = 51.2;
    /** Achievable fraction of peak for streaming access. */
    double stream_efficiency = 0.85;
    /** Effective-bandwidth divisor for random access (row misses). */
    double random_penalty = 4.0;
    /** Minimum transfer granularity in bytes (LPDDR4 BL16 x16: 32 B). */
    double burst_bytes = 32.0;
};

/** LPDDR4-class presets used across the evaluation. */
DramConfig lpddr4Edge();     //!< 51.2 GB/s — typical edge device
DramConfig lpddr4Double();   //!< 102.4 GB/s
DramConfig lpddr5Orin();     //!< 204.8 GB/s — Jetson Orin AGX class

/** Analytic DRAM service-time model. */
class DramModel
{
  public:
    explicit DramModel(DramConfig cfg = {}) : cfg_(cfg) {}

    const DramConfig &config() const { return cfg_; }

    /** Seconds to stream @p bytes sequentially. */
    double streamSeconds(double bytes) const;

    /**
     * Seconds to service @p count random requests of @p bytes_each
     * (each rounded up to the burst granularity).
     */
    double randomSeconds(double count, double bytes_each) const;

    /** Effective streaming bandwidth in bytes/second. */
    double effectiveBandwidth() const
    {
        return cfg_.bandwidth_gbps * 1e9 * cfg_.stream_efficiency;
    }

  private:
    DramConfig cfg_;
};

} // namespace neo

#endif // NEO_SIM_DRAM_H
