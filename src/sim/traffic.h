/**
 * @file
 * Per-stage DRAM traffic accounting, bucketed the way the paper's Fig. 5
 * breakdown is: feature extraction (including culling and duplication
 * write-out), sorting, and rasterization.
 */

#ifndef NEO_SIM_TRAFFIC_H
#define NEO_SIM_TRAFFIC_H

#include <cstdint>

namespace neo
{

/** Pipeline stages used for traffic attribution. */
enum class Stage
{
    FeatureExtraction,
    Sorting,
    Rasterization,
};

/** Byte counters per pipeline stage. */
struct TrafficBreakdown
{
    double feature_bytes = 0.0;
    double sorting_bytes = 0.0;
    double raster_bytes = 0.0;

    double total() const
    {
        return feature_bytes + sorting_bytes + raster_bytes;
    }

    double fraction(Stage s) const
    {
        double t = total();
        if (t <= 0.0)
            return 0.0;
        switch (s) {
          case Stage::FeatureExtraction: return feature_bytes / t;
          case Stage::Sorting: return sorting_bytes / t;
          case Stage::Rasterization: return raster_bytes / t;
        }
        return 0.0;
    }

    void add(Stage s, double bytes)
    {
        switch (s) {
          case Stage::FeatureExtraction: feature_bytes += bytes; break;
          case Stage::Sorting: sorting_bytes += bytes; break;
          case Stage::Rasterization: raster_bytes += bytes; break;
        }
    }

    TrafficBreakdown &operator+=(const TrafficBreakdown &o)
    {
        feature_bytes += o.feature_bytes;
        sorting_bytes += o.sorting_bytes;
        raster_bytes += o.raster_bytes;
        return *this;
    }

    /** Convert to gigabytes (10^9 bytes, as the paper plots). */
    double totalGB() const { return total() / 1e9; }
};

/** Printable name of a pipeline stage. */
const char *stageName(Stage s);

/** Record sizes shared by the traffic models (see DESIGN.md §5). */
namespace record
{
/** Full 3D Gaussian parameter record (59 floats: pos/scale/rot/op/SH). */
constexpr double kGaussian3d = 236.0;
/** Projected 2D feature record (mean, conic, color, opacity, depth). */
constexpr double kFeature2d = 40.0;
/** Sorted-table entry (id + depth). */
constexpr double kTableEntry = 8.0;
/** GPU sort key-value pair (64-bit tile|depth key + 32-bit id). */
constexpr double kKeyValue = 12.0;
/** Subtile bitmap per instance (GSCore propagates these off-chip). */
constexpr double kBitmap = 8.0;
/** Framebuffer bytes per pixel (RGBA accumulation + transmittance). */
constexpr double kPixel = 12.0;
} // namespace record

} // namespace neo

#endif // NEO_SIM_TRAFFIC_H
