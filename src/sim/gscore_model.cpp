#include "sim/gscore_model.h"

#include <algorithm>

namespace neo
{

FrameSim
GscoreModel::simulateFrame(const FrameWorkload &w) const
{
    FrameSim sim;
    const double visible = static_cast<double>(w.visible_gaussians);
    const double instances = static_cast<double>(w.instances);
    const double pixels = static_cast<double>(w.res.pixels());
    const double blends = static_cast<double>(w.blend_ops);
    const double clock = cfg_.frequency_ghz * 1e9;

    // --- Preprocessing ------------------------------------------------------
    // Full Gaussian read and feature-table write.
    double fe_bytes = visible * (record::kGaussian3d + record::kFeature2d);
    sim.traffic.add(Stage::FeatureExtraction, fe_bytes);
    sim.fe_compute_s =
        visible / (cfg_.preprocess_per_core_cycle * cfg_.cores * clock);

    // --- Sorting --------------------------------------------------------------
    // Per the 3DGS pipeline (paper §2.4), duplication into per-tile lists
    // happens in the sorting stage: scatter the (id, depth) pairs and the
    // early subtile bitmaps, then hierarchical sorting streams the whole
    // duplicated table through DRAM several times per frame (coarse
    // scatter + fine sort + gather) — the bottleneck Neo attacks.
    double sort_bytes =
        instances * (record::kTableEntry + record::kBitmap) +
        instances * record::kTableEntry * 2.0 * cfg_.sort_passes;
    sim.traffic.add(Stage::Sorting, sort_bytes);
    double sort_entries = instances * cfg_.sort_passes;
    sim.sort_compute_s =
        sort_entries / (cfg_.sort_entries_per_core_cycle * cfg_.cores *
                        clock);

    // --- Rasterization ---------------------------------------------------------
    // Stream sorted table + bitmaps back in, fetch features once per
    // instance, write the framebuffer.
    double raster_bytes =
        instances *
            (record::kTableEntry + record::kBitmap + record::kFeature2d) +
        pixels * record::kPixel;
    sim.traffic.add(Stage::Rasterization, raster_bytes);
    sim.raster_compute_s =
        blends / (cfg_.blends_per_core_cycle * cfg_.cores * clock);

    // --- Latency ---------------------------------------------------------------
    // Engines pipeline across tiles, so the frame settles at the slowest
    // engine — or at the DRAM service time of the whole frame's traffic,
    // whichever binds.
    sim.memory_s = dram_.streamSeconds(sim.traffic.total());
    double compute_bound = std::max(
        {sim.fe_compute_s, sim.sort_compute_s, sim.raster_compute_s});
    sim.latency_s = std::max(compute_bound, sim.memory_s);
    return sim;
}

} // namespace neo
