#include "sim/sorting_engine.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace neo
{

namespace
{

/** Per-core chunk pipeline state. */
struct CoreSim
{
    std::vector<uint32_t> chunk_sizes;
    size_t next_load = 0;
    size_t next_store = 0;
    std::vector<uint64_t> load_done;
    std::vector<uint64_t> sort_start;
    std::vector<uint64_t> sort_done;
    uint64_t last_store_done = 0;

    bool
    finished() const
    {
        return next_store >= chunk_sizes.size();
    }

    /**
     * Whether the next channel op is a load. With double buffering a
     * core may run one load ahead of its stores (load k+1 while chunk k
     * sorts); without, loads and stores strictly alternate.
     */
    bool
    nextOpIsLoad(bool double_buffered) const
    {
        if (next_load >= chunk_sizes.size())
            return false;
        size_t ahead = double_buffered ? 1 : 0;
        return next_load <= next_store + ahead;
    }

    /** Ready time of the core's next channel op. */
    uint64_t
    nextOpReady(bool double_buffered) const
    {
        if (nextOpIsLoad(double_buffered)) {
            if (next_load == 0)
                return 0;
            // Double buffering: the input buffer frees when the previous
            // chunk's sort begins; otherwise the previous store must
            // drain first.
            return double_buffered ? sort_start[next_load - 1]
                                   : last_store_done;
        }
        return sort_done[next_store];
    }
};

} // namespace

SortingEngineResult
scheduleSortingEngine(const std::vector<uint32_t> &tile_lengths,
                      const SortingEngineConfig &cfg)
{
    SortingEngineResult result;

    // Cut tiles into chunk jobs and distribute across cores, largest
    // tiles first onto the least-loaded core (LPT list scheduling).
    std::vector<uint32_t> tiles(tile_lengths);
    tiles.erase(std::remove(tiles.begin(), tiles.end(), 0u), tiles.end());
    std::sort(tiles.begin(), tiles.end(), std::greater<uint32_t>());

    std::vector<CoreSim> cores(std::max(cfg.cores, 1));
    std::vector<uint64_t> core_load_entries(cores.size(), 0);
    for (uint32_t len : tiles) {
        size_t lightest = 0;
        for (size_t c = 1; c < cores.size(); ++c)
            if (core_load_entries[c] < core_load_entries[lightest])
                lightest = c;
        core_load_entries[lightest] += len;
        for (uint32_t off = 0; off < len; off += cfg.chunk_entries)
            cores[lightest].chunk_sizes.push_back(
                std::min(cfg.chunk_entries, len - off));
    }
    for (auto &core : cores) {
        size_t n = core.chunk_sizes.size();
        core.load_done.assign(n, 0);
        core.sort_start.assign(n, 0);
        core.sort_done.assign(n, 0);
        result.chunks += n;
    }

    auto channel_cycles = [&](uint64_t bytes) {
        return static_cast<uint64_t>(
            std::ceil(bytes / cfg.channel_bytes_per_cycle));
    };

    // Event loop: repeatedly grant the shared channel to the pending op
    // with the earliest ready time (FCFS in time order, so idle slots are
    // usable by whichever core reaches the channel first).
    uint64_t channel_free = 0;
    uint64_t channel_busy = 0;
    uint64_t core_busy = 0;
    uint64_t makespan = 0;

    for (;;) {
        size_t pick = cores.size();
        uint64_t best_ready = std::numeric_limits<uint64_t>::max();
        for (size_t c = 0; c < cores.size(); ++c) {
            if (cores[c].finished())
                continue;
            uint64_t ready = cores[c].nextOpReady(cfg.double_buffered);
            if (ready < best_ready) {
                best_ready = ready;
                pick = c;
            }
        }
        if (pick == cores.size())
            break; // all cores drained

        CoreSim &core = cores[pick];
        const bool is_load = core.nextOpIsLoad(cfg.double_buffered);
        const size_t idx = is_load ? core.next_load : core.next_store;
        const uint64_t bytes =
            static_cast<uint64_t>(core.chunk_sizes[idx]) * cfg.entry_bytes;
        const uint64_t dur = channel_cycles(bytes);
        const uint64_t start = std::max(best_ready, channel_free);
        const uint64_t done = start + dur;
        channel_free = done;
        channel_busy += dur;
        result.bytes_moved += bytes;
        makespan = std::max(makespan, done);

        if (is_load) {
            core.load_done[idx] = done;
            // Sort follows immediately once the datapath is free.
            uint64_t prev_sort_done = idx ? core.sort_done[idx - 1] : 0;
            core.sort_start[idx] = std::max(done, prev_sort_done);
            uint64_t sort_cycles = static_cast<uint64_t>(std::ceil(
                core.chunk_sizes[idx] / cfg.sort_entries_per_cycle));
            core.sort_done[idx] = core.sort_start[idx] + sort_cycles;
            core_busy += sort_cycles;
            makespan = std::max(makespan, core.sort_done[idx]);
            ++core.next_load;
        } else {
            core.last_store_done = done;
            ++core.next_store;
        }
    }

    result.cycles = makespan;
    if (makespan > 0) {
        result.core_busy_fraction =
            static_cast<double>(core_busy) /
            (static_cast<double>(makespan) * cores.size());
        result.channel_busy_fraction =
            static_cast<double>(channel_busy) /
            static_cast<double>(makespan);
    }
    return result;
}

} // namespace neo
