/**
 * @file
 * Integrity-hardened serving mode — application-level selective
 * duplication in the spirit of ASPIS, applied to the renderer's
 * control-critical per-frame state rather than to every instruction.
 *
 * Fault model: random single/few-bit corruption of in-memory control
 * state (SEUs, stray writes) between the point where a pipeline stage
 * produces a structure and the point where the next stage consumes it.
 * Pixel data is excluded by design — a flipped pixel is transient and
 * self-healing next frame, while a flipped control word (a tile-table id,
 * a CSR bucket bound, a tracker membership id) silently corrupts every
 * subsequent frame through the reuse-and-update state.
 *
 * Mechanism: each protected structure is *sealed* at its producer fence
 * (per-tile Digest64 digests; in recover mode also a full shadow copy in
 * a FrameArena) and *verified* at its consumer fence. On mismatch a
 * FaultReport is recorded into FrameStats and the registered FaultHandler
 * runs; in recover mode the structure is first restored from the
 * digest-verified shadow copy and the frame is re-rendered through the
 * retained scalar reference rasterizer (bit-identical to the blocked
 * kernel by the repo's determinism contract), so the delivered frame hash
 * equals the uncorrupted reference. The existing frame content hash
 * doubles as end-to-end attestation.
 *
 * Selected by NEO_INTEGRITY={off,check,recover,attest} or
 * programmatically via PipelineOptions::integrity. Attest layers periodic
 * end-to-end cross-rendering on top of the check fences: every Nth frame
 * (NEO_INTEGRITY_ATTEST_PERIOD) is also rendered through the scalar
 * reference kernel and the two frame hashes compared. Off costs nothing:
 * every fence is behind an enabled() branch on the caller side.
 */

#ifndef NEO_COMMON_INTEGRITY_H
#define NEO_COMMON_INTEGRITY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/digest.h"
#include "common/frame_arena.h"

namespace neo
{

/** Operating mode of the integrity machinery. */
enum class IntegrityMode : uint8_t
{
    /** Defer to the NEO_INTEGRITY environment variable (options default). */
    Unset,
    /** No duplication, no checks — zero overhead (the default). */
    Off,
    /** Digest fences at stage boundaries; faults are recorded and the
        frame continues with the corrupted (memory-safe) data. */
    Check,
    /** Check plus shadow copies: faulted structures are restored from the
        verified shadow and the frame is re-rendered through the scalar
        reference path. */
    Recover,
    /** Check plus periodic end-to-end attestation: every Nth frame
        (NEO_INTEGRITY_ATTEST_PERIOD, default 4) is cross-rendered through
        the scalar reference kernel and the two frame hashes compared; a
        mismatch is recorded as an Attestation fault. Detection only — the
        delivered frame is not replaced. */
    Attest,
};

/** Parse an NEO_INTEGRITY value; Unset for an unrecognized non-empty one. */
IntegrityMode parseIntegrityMode(const char *value);

/** Mode from the environment (Off when unset; warns once on unknown). */
IntegrityMode integrityModeFromEnv();

/** Resolve a requested mode: Unset defers to NEO_INTEGRITY. */
IntegrityMode resolveIntegrityMode(IntegrityMode requested);

/** Lower-case mode name ("off", "check", "recover", "attest"). */
const char *integrityModeName(IntegrityMode mode);

/**
 * Attestation period from NEO_INTEGRITY_ATTEST_PERIOD (frames between
 * cross-rendered frames in attest mode). Validated strtol parse — a
 * malformed or non-positive value warns once and falls back to the
 * default of 4.
 */
int integrityAttestPeriodFromEnv();

/** Pipeline stage a fence (and hence a detected fault) belongs to. */
enum class IntegrityStage : uint8_t
{
    Projection,  //!< projected feature SoA arrays (mean2d/radius/depth/conic)
    Binning,     //!< per-tile binned (id, depth) lists
    Sorting,     //!< persistent sorted tables / per-tile permutations
    Tracking,    //!< DeltaTracker previous-frame membership ids
    Raster,      //!< CSR subtile bucket bounds inside the blocked kernel
    Attestation, //!< end-to-end frame-hash comparison
};

/** Stage name for reports and logs. */
const char *integrityStageName(IntegrityStage stage);

/** One detected cross-check mismatch. */
struct FaultReport
{
    IntegrityStage stage = IntegrityStage::Binning;
    const char *structure = "";  //!< canonical structure name
    uint64_t frame_index = 0;    //!< frame whose fence detected it
    int tile = -1;               //!< tile index, -1 when frame-global
    uint64_t expected_digest = 0;
    uint64_t actual_digest = 0;
    /** True when the structure was restored from its verified shadow (or
        the faulted tile was re-rendered through the reference path). */
    bool recovered = false;
};

/** Callback invoked (on the detecting thread) for every fault. */
using FaultHandler = std::function<void(const FaultReport &)>;

/** Per-frame integrity summary, carried inside FrameStats. */
struct IntegrityFrameStats
{
    IntegrityMode mode = IntegrityMode::Off;
    uint32_t checks = 0; //!< fences verified this frame
    uint32_t faults = 0; //!< mismatches detected this frame
    /** True when the whole frame was re-rendered through the reference
        path after a detected fault (recover mode). */
    bool frame_recovered = false;
    std::vector<FaultReport> reports;
};

// Canonical structure names — also the fault-injection point names
// (see common/faultinject.h).
inline constexpr const char *kIntegrityBinTiles = "bin.tiles";
inline constexpr const char *kIntegritySortTables = "sort.tables";
inline constexpr const char *kIntegrityTrackerPrevIds = "tracker.prev_ids";
inline constexpr const char *kIntegrityRasterCsr = "raster.csr";
// Projected feature SoA arrays (flat spans, sealed after binning fills
// them and verified before the sorter consumes depths).
inline constexpr const char *kIntegrityProjMean2d = "project.mean2d";
inline constexpr const char *kIntegrityProjRadius = "project.radius_px";
inline constexpr const char *kIntegrityProjDepth = "project.depth";
inline constexpr const char *kIntegrityProjConic = "project.conic";
// Delivered frame pixels — attest-mode end-to-end injection point.
inline constexpr const char *kIntegrityAttestFrame = "attest.frame";

/**
 * Per-renderer integrity state: the seal/verify fences over per-tile
 * structures, the shadow copies (held in an owned FrameArena, capacity
 * retained across frames), and the frame's fault reports.
 *
 * Seal/verify run on the frame-control thread; recordFault()/noteCheck()
 * are additionally safe from inside parallel raster regions.
 */
class IntegrityContext
{
  public:
    /** Set the mode; attest mode also resolves its period from the
        environment (override with setAttestPeriod). */
    void configure(IntegrityMode mode)
    {
        mode_ = mode;
        if (mode_ == IntegrityMode::Attest)
            attest_period_ = integrityAttestPeriodFromEnv();
    }
    IntegrityMode mode() const { return mode_; }
    bool enabled() const
    {
        return mode_ == IntegrityMode::Check ||
               mode_ == IntegrityMode::Recover ||
               mode_ == IntegrityMode::Attest;
    }

    /** Frames between attest cross-renders (attest mode only). */
    void setAttestPeriod(int period)
    {
        attest_period_ = period > 0 ? period : 1;
    }
    int attestPeriod() const { return attest_period_; }

    /** True when attest mode cross-renders frame @p frame_index. */
    bool attestDue(uint64_t frame_index) const
    {
        return mode_ == IntegrityMode::Attest &&
               frame_index % static_cast<uint64_t>(attest_period_) == 0;
    }

    /** Register the fault callback (replaces any previous one). */
    void setFaultHandler(FaultHandler handler);

    /** Start a frame: reset the per-frame counters and reports. */
    void beginFrame(uint64_t frame_index);

    /**
     * Producer fence: record per-tile digests of @p tiles under @p name
     * (and, in recover mode, refresh its shadow copy). Overwrites the
     * previous seal of the same structure.
     */
    template <typename T>
    void sealTiles(IntegrityStage stage, const char *name,
                   const std::vector<std::vector<T>> &tiles);

    /**
     * Consumer fence: recompute the per-tile digests of @p tiles and
     * compare against the seal. Every mismatching tile is reported (and,
     * in recover mode, restored from the shadow copy first — restoration
     * only happens when the shadow itself still matches the sealed
     * digest, so a doubly-corrupted structure is reported as
     * unrecovered). A structure that was never sealed, or whose tile
     * count changed (reset, resolution change), passes vacuously.
     * Returns true when everything matched.
     */
    template <typename T>
    bool verifyTiles(IntegrityStage stage, const char *name,
                     std::vector<std::vector<T>> &tiles);

    /**
     * Producer fence over a flat array (the projected feature SoA
     * arrays): one digest over the whole span (and, in recover mode, a
     * full shadow copy). Overwrites the previous seal of the same name.
     */
    template <typename T>
    void sealSpan(IntegrityStage stage, const char *name,
                  const std::vector<T> &data);

    /**
     * Consumer fence for sealSpan: recompute the digest and compare. On
     * mismatch one frame-global fault (tile = -1) is reported; in
     * recover mode the whole span is first restored from its
     * digest-verified shadow. A span that was never sealed or whose
     * length changed passes vacuously. Returns true when it matched.
     */
    template <typename T>
    bool verifySpan(IntegrityStage stage, const char *name,
                    std::vector<T> &data);

    /** Record one fault and invoke the handler (thread-safe). */
    void recordFault(IntegrityStage stage, const char *structure, int tile,
                     uint64_t expected, uint64_t actual, bool recovered);

    /** Count one passed cross-check (thread-safe). */
    void noteCheck() { checks_.fetch_add(1, std::memory_order_relaxed); }

    /** True when any fault was recorded since beginFrame(). */
    bool frameFaulted() const;

    /** Mark that the frame was re-rendered through the reference path. */
    void markFrameRecovered() { frame_recovered_ = true; }

    uint64_t frameIndex() const { return frame_index_; }

    /** Copy the frame's counters and reports into @p out. */
    void exportStats(IntegrityFrameStats &out) const;

    /** Drop all seals (renderer reset / new trajectory). */
    void forgetSeals();

  private:
    /** Seal record of one protected structure. */
    struct Structure
    {
        const char *name = "";
        IntegrityStage stage = IntegrityStage::Binning;
        bool sealed = false;
        int shadow_key = 0; //!< arena keys {data, offsets} of the shadow
        std::vector<uint64_t> digests; //!< per tile
        std::vector<uint32_t> sizes;   //!< per tile element counts
    };

    Structure &structureFor(IntegrityStage stage, const char *name);
    Structure *findStructure(const char *name);

    template <typename T>
    bool restoreTile(Structure &s, size_t t,
                     std::vector<std::vector<T>> &tiles);

    IntegrityMode mode_ = IntegrityMode::Off;
    int attest_period_ = 4;
    uint64_t frame_index_ = 0;
    std::atomic<uint32_t> checks_{0};
    bool frame_recovered_ = false;
    std::vector<Structure> structures_;
    /** Shadow copies (recover mode), capacity retained across frames. */
    FrameArena shadow_;
    mutable std::mutex fault_mutex_;
    FaultHandler handler_;
    std::vector<FaultReport> faults_;
};

template <typename T>
void
IntegrityContext::sealTiles(IntegrityStage stage, const char *name,
                            const std::vector<std::vector<T>> &tiles)
{
    if (!enabled())
        return;
    Structure &s = structureFor(stage, name);
    const size_t n = tiles.size();
    s.digests.resize(n);
    s.sizes.resize(n);
    for (size_t t = 0; t < n; ++t) {
        s.digests[t] = digestSpan(tiles[t].data(), tiles[t].size());
        s.sizes[t] = static_cast<uint32_t>(tiles[t].size());
    }
    if (mode_ == IntegrityMode::Recover) {
        // Shadow layout: one concatenated element array plus tile offsets,
        // both reused frame over frame with capacity retained.
        auto &data = shadow_.buffer<T>(s.shadow_key);
        auto &offsets = shadow_.buffer<uint64_t>(s.shadow_key + 1);
        offsets.resize(n + 1);
        uint64_t total = 0;
        for (size_t t = 0; t < n; ++t) {
            offsets[t] = total;
            total += tiles[t].size();
        }
        offsets[n] = total;
        data.resize(total);
        for (size_t t = 0; t < n; ++t)
            std::copy(tiles[t].begin(), tiles[t].end(),
                      data.begin() + static_cast<ptrdiff_t>(offsets[t]));
    }
    s.sealed = true;
}

template <typename T>
bool
IntegrityContext::verifyTiles(IntegrityStage stage, const char *name,
                              std::vector<std::vector<T>> &tiles)
{
    if (!enabled())
        return true;
    Structure *s = findStructure(name);
    if (!s || !s->sealed || s->sizes.size() != tiles.size())
        return true; // never sealed, or legitimately reshaped
    bool ok = true;
    for (size_t t = 0; t < tiles.size(); ++t) {
        const uint64_t d = digestSpan(tiles[t].data(), tiles[t].size());
        if (d == s->digests[t] &&
            tiles[t].size() == s->sizes[t])
            continue;
        ok = false;
        bool restored = false;
        if (mode_ == IntegrityMode::Recover)
            restored = restoreTile(*s, t, tiles);
        recordFault(stage, name, static_cast<int>(t), s->digests[t], d,
                    restored);
    }
    noteCheck();
    return ok;
}

template <typename T>
void
IntegrityContext::sealSpan(IntegrityStage stage, const char *name,
                           const std::vector<T> &data)
{
    if (!enabled())
        return;
    Structure &s = structureFor(stage, name);
    s.digests.assign(1, digestSpan(data.data(), data.size()));
    s.sizes.assign(1, static_cast<uint32_t>(data.size()));
    if (mode_ == IntegrityMode::Recover) {
        auto &shadow = shadow_.buffer<T>(s.shadow_key);
        shadow.assign(data.begin(), data.end());
    }
    s.sealed = true;
}

template <typename T>
bool
IntegrityContext::verifySpan(IntegrityStage stage, const char *name,
                             std::vector<T> &data)
{
    if (!enabled())
        return true;
    Structure *s = findStructure(name);
    if (!s || !s->sealed || s->sizes.size() != 1 ||
        s->sizes[0] != data.size())
        return true; // never sealed, or legitimately reshaped
    const uint64_t d = digestSpan(data.data(), data.size());
    noteCheck();
    if (d == s->digests[0])
        return true;
    bool restored = false;
    if (mode_ == IntegrityMode::Recover) {
        auto &shadow = shadow_.buffer<T>(s->shadow_key);
        if (shadow.size() == data.size() &&
            digestSpan(shadow.data(), shadow.size()) == s->digests[0]) {
            data.assign(shadow.begin(), shadow.end());
            restored = true;
        }
    }
    recordFault(stage, name, -1, s->digests[0], d, restored);
    return false;
}

template <typename T>
bool
IntegrityContext::restoreTile(Structure &s, size_t t,
                              std::vector<std::vector<T>> &tiles)
{
    auto &data = shadow_.buffer<T>(s.shadow_key);
    auto &offsets = shadow_.buffer<uint64_t>(s.shadow_key + 1);
    if (offsets.size() != s.sizes.size() + 1 || t + 1 >= offsets.size())
        return false;
    const uint64_t begin = offsets[t];
    const uint64_t end = offsets[t + 1];
    if (end < begin || end > data.size() || end - begin != s.sizes[t])
        return false;
    if (digestSpan(data.data() + begin, static_cast<size_t>(end - begin)) !=
        s.digests[t])
        return false; // shadow corrupted too: unrecoverable
    tiles[t].assign(data.begin() + static_cast<ptrdiff_t>(begin),
                    data.begin() + static_cast<ptrdiff_t>(end));
    return true;
}

} // namespace neo

#endif // NEO_COMMON_INTEGRITY_H
