/**
 * @file
 * Statistics helpers used by the temporal-similarity analyses (Figs. 6-7)
 * and by the benchmark harnesses: percentiles, CDFs, running summaries and
 * fixed-bin histograms.
 */

#ifndef NEO_COMMON_STATS_H
#define NEO_COMMON_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace neo
{

/**
 * Percentile of a sample set with linear interpolation between order
 * statistics (the "exclusive" convention used by numpy's default).
 *
 * @param values sample set; taken by value because it must be sorted.
 * @param pct percentile in [0, 100].
 */
double percentile(std::vector<double> values, double pct);

/** Convenience overload for float samples. */
double percentile(const std::vector<float> &values, double pct);

/** Arithmetic mean; 0 for an empty set. */
double mean(const std::vector<double> &values);

/** Sample standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &values);

/** Geometric mean; inputs must be positive. */
double geomean(const std::vector<double> &values);

/**
 * One point of an empirical CDF: fraction of samples <= value.
 */
struct CdfPoint
{
    double value = 0.0;
    double cumulative = 0.0;
};

/**
 * Build an empirical CDF sampled at @p resolution evenly spaced points
 * spanning [min, max] of the data.
 */
std::vector<CdfPoint> empiricalCdf(std::vector<double> values,
                                   size_t resolution = 64);

/**
 * Fraction of samples that are >= @p threshold. Used for statements such as
 * "90% of tiles retain more than 78% of their Gaussians".
 */
double fractionAtLeast(const std::vector<double> &values, double threshold);

/** Streaming mean/min/max/count accumulator. */
class RunningSummary
{
  public:
    void add(double v);

    size_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double v);

    size_t bins() const { return counts_.size(); }
    size_t binCount(size_t i) const { return counts_[i]; }
    double binCenter(size_t i) const;
    size_t total() const { return total_; }

    /** Normalized bin mass (0 when the histogram is empty). */
    double binFraction(size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<size_t> counts_;
    size_t total_ = 0;
};

/**
 * Render a one-line ASCII sparkline of a series (for bench output); returns
 * an empty string for empty input.
 */
std::string sparkline(const std::vector<double> &values);

} // namespace neo

#endif // NEO_COMMON_STATS_H
