#include "common/integrity.h"

#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "common/logging.h"

namespace neo
{

IntegrityMode
parseIntegrityMode(const char *value)
{
    if (!value || value[0] == '\0' || std::strcmp(value, "off") == 0)
        return IntegrityMode::Off;
    if (std::strcmp(value, "check") == 0)
        return IntegrityMode::Check;
    if (std::strcmp(value, "recover") == 0)
        return IntegrityMode::Recover;
    if (std::strcmp(value, "attest") == 0)
        return IntegrityMode::Attest;
    return IntegrityMode::Unset;
}

IntegrityMode
integrityModeFromEnv()
{
    // Validated choice parse through common/env: an unrecognized value
    // warns once (re-armed by env::resetWarnings() for tests) and keeps
    // integrity off rather than silently doing nothing.
    static const char *const kModes[] = {"off", "check", "recover",
                                         "attest"};
    switch (env::envChoice("NEO_INTEGRITY", kModes, 4, 0)) {
    case 1:
        return IntegrityMode::Check;
    case 2:
        return IntegrityMode::Recover;
    case 3:
        return IntegrityMode::Attest;
    default:
        return IntegrityMode::Off;
    }
}

int
integrityAttestPeriodFromEnv()
{
    // Warn-once validated parse shared with every other NEO_* knob.
    return static_cast<int>(
        env::envLong("NEO_INTEGRITY_ATTEST_PERIOD", 4, 1, 1000000));
}

IntegrityMode
resolveIntegrityMode(IntegrityMode requested)
{
    if (requested == IntegrityMode::Unset)
        return integrityModeFromEnv();
    return requested;
}

const char *
integrityModeName(IntegrityMode mode)
{
    switch (mode) {
    case IntegrityMode::Unset:
        return "unset";
    case IntegrityMode::Off:
        return "off";
    case IntegrityMode::Check:
        return "check";
    case IntegrityMode::Recover:
        return "recover";
    case IntegrityMode::Attest:
        return "attest";
    }
    return "off";
}

const char *
integrityStageName(IntegrityStage stage)
{
    switch (stage) {
    case IntegrityStage::Projection:
        return "projection";
    case IntegrityStage::Binning:
        return "binning";
    case IntegrityStage::Sorting:
        return "sorting";
    case IntegrityStage::Tracking:
        return "tracking";
    case IntegrityStage::Raster:
        return "raster";
    case IntegrityStage::Attestation:
        return "attestation";
    }
    return "unknown";
}

void
IntegrityContext::setFaultHandler(FaultHandler handler)
{
    std::lock_guard<std::mutex> lock(fault_mutex_);
    handler_ = std::move(handler);
}

void
IntegrityContext::beginFrame(uint64_t frame_index)
{
    if (!enabled())
        return;
    frame_index_ = frame_index;
    checks_.store(0, std::memory_order_relaxed);
    frame_recovered_ = false;
    std::lock_guard<std::mutex> lock(fault_mutex_);
    faults_.clear();
}

void
IntegrityContext::recordFault(IntegrityStage stage, const char *structure,
                              int tile, uint64_t expected, uint64_t actual,
                              bool recovered)
{
    FaultReport report;
    report.stage = stage;
    report.structure = structure;
    report.frame_index = frame_index_;
    report.tile = tile;
    report.expected_digest = expected;
    report.actual_digest = actual;
    report.recovered = recovered;

    FaultHandler handler;
    {
        std::lock_guard<std::mutex> lock(fault_mutex_);
        faults_.push_back(report);
        handler = handler_;
    }
    warn("integrity fault: stage=%s structure=%s frame=%llu tile=%d "
         "digest %016llx != %016llx%s",
         integrityStageName(stage), structure,
         static_cast<unsigned long long>(report.frame_index), tile,
         static_cast<unsigned long long>(expected),
         static_cast<unsigned long long>(actual),
         recovered ? " (restored from shadow)" : "");
    if (handler)
        handler(report);
}

bool
IntegrityContext::frameFaulted() const
{
    std::lock_guard<std::mutex> lock(fault_mutex_);
    return !faults_.empty();
}

void
IntegrityContext::exportStats(IntegrityFrameStats &out) const
{
    out.mode = mode_;
    out.checks = checks_.load(std::memory_order_relaxed);
    out.frame_recovered = frame_recovered_;
    std::lock_guard<std::mutex> lock(fault_mutex_);
    out.faults = static_cast<uint32_t>(faults_.size());
    out.reports = faults_;
}

void
IntegrityContext::forgetSeals()
{
    for (Structure &s : structures_)
        s.sealed = false;
}

IntegrityContext::Structure &
IntegrityContext::structureFor(IntegrityStage stage, const char *name)
{
    for (Structure &s : structures_)
        if (std::strcmp(s.name, name) == 0)
            return s;
    Structure s;
    s.name = name;
    s.stage = stage;
    s.shadow_key = kArenaKeysIntegrity +
                   2 * static_cast<int>(structures_.size());
    structures_.push_back(std::move(s));
    return structures_.back();
}

IntegrityContext::Structure *
IntegrityContext::findStructure(const char *name)
{
    for (Structure &s : structures_)
        if (std::strcmp(s.name, name) == 0)
            return &s;
    return nullptr;
}

} // namespace neo
