/**
 * @file
 * Small linear-algebra toolkit used throughout the renderer and the
 * performance models: vectors, 3x3 / 4x4 matrices and quaternions.
 *
 * The types are deliberately plain aggregates with value semantics; the
 * renderer keeps Gaussians in structure-of-arrays form, so these types are
 * only used for per-element computation, never for bulk storage.
 */

#ifndef NEO_COMMON_MATH_H
#define NEO_COMMON_MATH_H

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

namespace neo
{

constexpr float kPi = 3.14159265358979323846f;

/** Degrees-to-radians conversion. */
constexpr float
deg2rad(float deg)
{
    return deg * kPi / 180.0f;
}

/** Radians-to-degrees conversion. */
constexpr float
rad2deg(float rad)
{
    return rad * 180.0f / kPi;
}

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** 2-component float vector. */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
    constexpr float dot(const Vec2 &o) const { return x * o.x + y * o.y; }
    float norm() const { return std::sqrt(dot(*this)); }
};

/** 3-component float vector. */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    constexpr Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &operator+=(const Vec3 &o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }

    constexpr float dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    float norm() const { return std::sqrt(dot(*this)); }

    Vec3 normalized() const
    {
        float n = norm();
        if (n <= std::numeric_limits<float>::min())
            return {0.0f, 0.0f, 0.0f};
        return *this / n;
    }
};

constexpr Vec3
operator*(float s, const Vec3 &v)
{
    return v * s;
}

/** 4-component float vector (homogeneous coordinates). */
struct Vec4
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 0.0f;

    constexpr Vec4 operator+(const Vec4 &o) const
    {
        return {x + o.x, y + o.y, z + o.z, w + o.w};
    }
    constexpr Vec4 operator*(float s) const
    {
        return {x * s, y * s, z * s, w * s};
    }
    constexpr float dot(const Vec4 &o) const
    {
        return x * o.x + y * o.y + z * o.z + w * o.w;
    }
    constexpr Vec3 xyz() const { return {x, y, z}; }
};

/** Row-major 3x3 matrix. */
struct Mat3
{
    // m[r][c]
    std::array<std::array<float, 3>, 3> m{};

    static constexpr Mat3
    identity()
    {
        Mat3 r;
        r.m = {{{1.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f}, {0.0f, 0.0f, 1.0f}}};
        return r;
    }

    static constexpr Mat3
    diagonal(float a, float b, float c)
    {
        Mat3 r;
        r.m = {{{a, 0.0f, 0.0f}, {0.0f, b, 0.0f}, {0.0f, 0.0f, c}}};
        return r;
    }

    constexpr float operator()(int r, int c) const { return m[r][c]; }
    constexpr float &operator()(int r, int c) { return m[r][c]; }

    Mat3
    operator*(const Mat3 &o) const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j) {
                float acc = 0.0f;
                for (int k = 0; k < 3; ++k)
                    acc += m[i][k] * o.m[k][j];
                r.m[i][j] = acc;
            }
        return r;
    }

    Vec3
    operator*(const Vec3 &v) const
    {
        return {
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        };
    }

    Mat3
    transposed() const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[j][i];
        return r;
    }

    float
    determinant() const
    {
        return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
               m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
               m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    }

    /**
     * Matrix inverse via adjugate. Returns identity when the matrix is
     * numerically singular; callers that care should test determinant()
     * themselves first.
     */
    Mat3
    inverse() const
    {
        float det = determinant();
        if (std::fabs(det) <= std::numeric_limits<float>::min())
            return identity();
        float inv_det = 1.0f / det;
        Mat3 r;
        r.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        r.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        r.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        r.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        r.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        r.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        r.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        r.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        r.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        return r;
    }
};

/** Row-major 4x4 matrix used for world-to-camera transforms. */
struct Mat4
{
    std::array<std::array<float, 4>, 4> m{};

    static constexpr Mat4
    identity()
    {
        Mat4 r;
        for (int i = 0; i < 4; ++i)
            r.m[i][i] = 1.0f;
        return r;
    }

    constexpr float operator()(int r, int c) const { return m[r][c]; }
    constexpr float &operator()(int r, int c) { return m[r][c]; }

    Mat4
    operator*(const Mat4 &o) const
    {
        Mat4 r;
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j) {
                float acc = 0.0f;
                for (int k = 0; k < 4; ++k)
                    acc += m[i][k] * o.m[k][j];
                r.m[i][j] = acc;
            }
        return r;
    }

    Vec4
    operator*(const Vec4 &v) const
    {
        return {
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z + m[0][3] * v.w,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z + m[1][3] * v.w,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z + m[2][3] * v.w,
            m[3][0] * v.x + m[3][1] * v.y + m[3][2] * v.z + m[3][3] * v.w,
        };
    }

    /** Transform a point (w=1) and drop the homogeneous coordinate. */
    Vec3
    transformPoint(const Vec3 &p) const
    {
        Vec4 r = (*this) * Vec4{p.x, p.y, p.z, 1.0f};
        return r.xyz();
    }

    /** Upper-left 3x3 rotation/scale block. */
    Mat3
    rotationBlock() const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j];
        return r;
    }
};

/** Unit quaternion for Gaussian orientations (w, x, y, z). */
struct Quat
{
    float w = 1.0f;
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    Quat
    normalized() const
    {
        float n = std::sqrt(w * w + x * x + y * y + z * z);
        if (n <= std::numeric_limits<float>::min())
            return {1.0f, 0.0f, 0.0f, 0.0f};
        return {w / n, x / n, y / n, z / n};
    }

    /** Rotation matrix of the (assumed normalized) quaternion. */
    Mat3
    toMatrix() const
    {
        Mat3 r;
        r.m[0][0] = 1.0f - 2.0f * (y * y + z * z);
        r.m[0][1] = 2.0f * (x * y - w * z);
        r.m[0][2] = 2.0f * (x * z + w * y);
        r.m[1][0] = 2.0f * (x * y + w * z);
        r.m[1][1] = 1.0f - 2.0f * (x * x + z * z);
        r.m[1][2] = 2.0f * (y * z - w * x);
        r.m[2][0] = 2.0f * (x * z - w * y);
        r.m[2][1] = 2.0f * (y * z + w * x);
        r.m[2][2] = 1.0f - 2.0f * (x * x + y * y);
        return r;
    }

    /** Axis-angle constructor; @p axis need not be normalized. */
    static Quat
    fromAxisAngle(const Vec3 &axis, float angle_rad)
    {
        Vec3 a = axis.normalized();
        float half = 0.5f * angle_rad;
        float s = std::sin(half);
        return Quat{std::cos(half), a.x * s, a.y * s, a.z * s}.normalized();
    }
};

/**
 * Build a 3D covariance matrix from per-axis scales and an orientation,
 * Sigma = R S S^T R^T, exactly as 3DGS parameterizes Gaussians.
 */
inline Mat3
covarianceFromScaleRotation(const Vec3 &scale, const Quat &rot)
{
    Mat3 r = rot.toMatrix();
    Mat3 s = Mat3::diagonal(scale.x, scale.y, scale.z);
    Mat3 rs = r * s;
    return rs * rs.transposed();
}

/** Eigenvalues of a symmetric 2x2 matrix [[a, b], [b, c]] (max, min). */
inline std::pair<float, float>
symmetricEigenvalues2x2(float a, float b, float c)
{
    float mid = 0.5f * (a + c);
    float det = a * c - b * b;
    float disc = std::sqrt(std::max(0.0f, mid * mid - det));
    return {mid + disc, std::max(0.0f, mid - disc)};
}

} // namespace neo

#endif // NEO_COMMON_MATH_H
