#include "common/image.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace neo
{

Image::Image(int width, int height, Vec3 fill)
    : width_(width), height_(height),
      data_(static_cast<size_t>(width) * height, fill)
{
}

void
Image::reset(int width, int height, Vec3 fill)
{
    width_ = width;
    height_ = height;
    data_.assign(static_cast<size_t>(width) * height, fill);
}

void
Image::clampChannels()
{
    for (auto &p : data_) {
        p.x = clamp(p.x, 0.0f, 1.0f);
        p.y = clamp(p.y, 0.0f, 1.0f);
        p.z = clamp(p.z, 0.0f, 1.0f);
    }
}

double
Image::meanAbsoluteDifference(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height() || a.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < a.data_.size(); ++i) {
        acc += std::fabs(a.data_[i].x - b.data_[i].x);
        acc += std::fabs(a.data_[i].y - b.data_[i].y);
        acc += std::fabs(a.data_[i].z - b.data_[i].z);
    }
    return acc / (3.0 * static_cast<double>(a.data_.size()));
}

Image
Image::downsample2x() const
{
    int w = width_ / 2;
    int h = height_ / 2;
    if (w == 0 || h == 0)
        return Image();
    Image out(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            Vec3 acc = at(2 * x, 2 * y);
            acc += at(2 * x + 1, 2 * y);
            acc += at(2 * x, 2 * y + 1);
            acc += at(2 * x + 1, 2 * y + 1);
            out.at(x, y) = acc * 0.25f;
        }
    }
    return out;
}

std::vector<float>
Image::luma() const
{
    std::vector<float> out(data_.size());
    for (size_t i = 0; i < data_.size(); ++i) {
        const Vec3 &p = data_[i];
        out[i] = 0.299f * p.x + 0.587f * p.y + 0.114f * p.z;
    }
    return out;
}

bool
Image::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    std::vector<unsigned char> row(static_cast<size_t>(width_) * 3);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            const Vec3 &p = at(x, y);
            row[3 * x + 0] =
                static_cast<unsigned char>(clamp(p.x, 0.0f, 1.0f) * 255.0f);
            row[3 * x + 1] =
                static_cast<unsigned char>(clamp(p.y, 0.0f, 1.0f) * 255.0f);
            row[3 * x + 2] =
                static_cast<unsigned char>(clamp(p.z, 0.0f, 1.0f) * 255.0f);
        }
        std::fwrite(row.data(), 1, row.size(), f);
    }
    std::fclose(f);
    return true;
}

uint64_t
Image::contentHash() const
{
    uint64_t h = 1469598103934665603ull;
    for (const Vec3 &px : data_) {
        for (float c : {px.x, px.y, px.z}) {
            uint32_t bits;
            std::memcpy(&bits, &c, sizeof(bits));
            for (int i = 0; i < 4; ++i) {
                h ^= (bits >> (8 * i)) & 0xffu;
                h *= 1099511628211ull;
            }
        }
    }
    return h;
}

} // namespace neo
