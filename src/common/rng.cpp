#include "common/rng.h"

#include <cmath>
#include <cstdint>

namespace neo
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    has_cached_normal_ = false;
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

float
Rng::uniform(float lo, float hi)
{
    return lo + static_cast<float>(uniform()) * (hi - lo);
}

uint64_t
Rng::below(uint64_t n)
{
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

float
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    cached_normal_ = static_cast<float>(mag * std::sin(2.0 * kPi * u2));
    has_cached_normal_ = true;
    return static_cast<float>(mag * std::cos(2.0 * kPi * u2));
}

float
Rng::normal(float mean, float stddev)
{
    return mean + stddev * normal();
}

Vec3
Rng::onSphere()
{
    // Marsaglia's method.
    for (;;) {
        float a = uniform(-1.0f, 1.0f);
        float b = uniform(-1.0f, 1.0f);
        float s = a * a + b * b;
        if (s >= 1.0f)
            continue;
        float root = std::sqrt(1.0f - s);
        return {2.0f * a * root, 2.0f * b * root, 1.0f - 2.0f * s};
    }
}

Quat
Rng::rotation()
{
    float u1 = static_cast<float>(uniform());
    float u2 = static_cast<float>(uniform());
    float u3 = static_cast<float>(uniform());
    float a = std::sqrt(1.0f - u1);
    float b = std::sqrt(u1);
    return Quat{
        a * std::sin(2.0f * kPi * u2),
        a * std::cos(2.0f * kPi * u2),
        b * std::sin(2.0f * kPi * u3),
        b * std::cos(2.0f * kPi * u3),
    }.normalized();
}

} // namespace neo
