/**
 * @file
 * FrameArena — reusable per-frame scratch storage for the steady-state
 * frame loop. Hot-loop stages (binning scatter, rasterization accumulators,
 * harness buffers) fetch their working vectors from an arena owned by the
 * long-lived renderer instead of allocating fresh ones every frame: the
 * first frame grows each buffer to its working size, every later frame is
 * a clear()-and-refill with capacity retained, so the binning/raster path
 * performs zero per-frame heap allocations once warm.
 *
 * Buffers are addressed by (key, element type); the key spaces below keep
 * independent subsystems that share one arena from colliding. Reuse of a
 * key with a different element type is a programming error and panics.
 */

#ifndef NEO_COMMON_FRAME_ARENA_H
#define NEO_COMMON_FRAME_ARENA_H

#include <cstddef>
#include <memory>
#include <typeinfo>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace neo
{

/**
 * Arena key spaces, one per subsystem that stores scratch in a shared
 * arena. A subsystem uses keys [base, base + 0x100).
 */
enum : int
{
    kArenaKeysBinning = 0x100,   //!< gs/tiling.cpp (scatter scratch)
    kArenaKeysRaster = 0x200,    //!< gs/pipeline.cpp (raster accumulators)
    kArenaKeysHarness = 0x300,   //!< sim/perf_harness.cpp
    kArenaKeysIntegrity = 0x400, //!< common/integrity.cpp (shadow copies)
};

/** Keyed set of reusable, capacity-retaining scratch vectors. */
class FrameArena
{
  public:
    FrameArena() = default;

    FrameArena(const FrameArena &) = delete;
    FrameArena &operator=(const FrameArena &) = delete;
    FrameArena(FrameArena &&) = default;
    FrameArena &operator=(FrameArena &&) = default;

    /**
     * The reusable vector bound to @p key, created empty on first use.
     * Contents persist between calls — callers reset what they need
     * (assign / clear / resize) and capacity is retained across frames.
     * The element type must be the same at every use of a given key.
     */
    template <typename T>
    std::vector<T> &buffer(int key)
    {
        for (Entry &e : slots_) {
            if (e.key == key) {
                if (*e.type != typeid(T))
                    panic("FrameArena: key %d reused with a different "
                          "element type",
                          key);
                return static_cast<Slot<T> *>(e.slot.get())->v;
            }
        }
        auto slot = std::make_unique<Slot<T>>();
        std::vector<T> &v = slot->v;
        slots_.push_back(Entry{key, &typeid(T), std::move(slot)});
        return v;
    }

    /** Number of distinct buffers created so far. */
    size_t bufferCount() const { return slots_.size(); }

    /**
     * Bytes of capacity currently retained across all buffers. Element
     * types that expose a `size_t capacityBytes() const` member (e.g.
     * the rasterizer's per-chunk scratch) contribute their nested heap
     * capacity too; other nested containers count only their headers.
     * Steady-state frame loops keep this constant — the arena-reuse test
     * asserts exactly that.
     */
    size_t retainedBytes() const;

    /** Drop every buffer and its capacity. */
    void release() { slots_.clear(); }

  private:
    struct SlotBase
    {
        virtual ~SlotBase() = default;
        virtual size_t capacityBytes() const = 0;
    };

    template <typename T>
    struct Slot final : SlotBase
    {
        std::vector<T> v;
        size_t capacityBytes() const override
        {
            size_t total = v.capacity() * sizeof(T);
            if constexpr (requires(const T &t) { t.capacityBytes(); }) {
                for (const T &t : v)
                    total += t.capacityBytes();
            }
            return total;
        }
    };

    struct Entry
    {
        int key = 0;
        const std::type_info *type = nullptr;
        std::unique_ptr<SlotBase> slot;
    };

    /** Small linear-scanned registry: lookup is allocation-free. */
    std::vector<Entry> slots_;
};

/**
 * Resize a nested vector to @p n outer elements and clear every inner
 * vector while keeping its capacity — the canonical per-frame reset of
 * per-tile lists.
 */
template <typename T>
void
clearNested(std::vector<std::vector<T>> &vv, size_t n)
{
    if (vv.size() != n)
        vv.resize(n);
    for (auto &v : vv)
        v.clear();
}

} // namespace neo

#endif // NEO_COMMON_FRAME_ARENA_H
