#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace neo
{

namespace
{

thread_local bool t_inside_parallel = false;

/** RAII marker for "this thread is executing a chunk body". */
struct ParallelRegionGuard
{
    ParallelRegionGuard() { t_inside_parallel = true; }
    ~ParallelRegionGuard() { t_inside_parallel = false; }
};

} // namespace

int
hardwareThreadCount()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(std::min<unsigned>(n, kMaxThreads));
}

int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return std::min(requested, kMaxThreads);
    if (requested < 0)
        return hardwareThreadCount();

    const char *env = std::getenv("NEO_THREADS");
    if (!env || !*env)
        return 1;
    if (std::strcmp(env, "auto") == 0 || std::strcmp(env, "0") == 0)
        return hardwareThreadCount();
    int v = std::atoi(env);
    if (v > 0)
        return std::min(v, kMaxThreads);
    return 1;
}

size_t
parallelChunkCount(size_t n, int threads)
{
    size_t t = threads < 1
                   ? 1
                   : static_cast<size_t>(std::min(threads, kMaxThreads));
    return std::min(n, t);
}

ParallelRange
parallelChunkRange(size_t n, size_t chunks, size_t chunk)
{
    ParallelRange r;
    if (chunks == 0 || chunk >= chunks)
        return r;
    const size_t base = n / chunks;
    const size_t extra = n % chunks;
    r.begin = chunk * base + std::min(chunk, extra);
    r.end = r.begin + base + (chunk < extra ? 1 : 0);
    return r;
}

/**
 * One dispatched job. Each job owns its claim/completion counters, so a
 * worker that wakes up late for an already-finished job can never claim
 * chunks of a newer one: it drains through its own snapshot of the job.
 */
struct ThreadPool::Job
{
    const std::function<void(size_t)> *fn = nullptr;
    size_t chunks = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> remaining{0};
    /** First exception thrown by any chunk of THIS job. */
    std::mutex error_mutex;
    std::exception_ptr error;
};

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

int
ThreadPool::workerCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(workers_.size());
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

bool
ThreadPool::insideParallelRegion()
{
    return t_inside_parallel;
}

void
ThreadPool::ensureWorkers(size_t wanted)
{
    std::lock_guard<std::mutex> lock(mutex_);
    wanted = std::min(wanted, static_cast<size_t>(kMaxThreads - 1));
    while (workers_.size() < wanted)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::drainJob(Job &job)
{
    for (;;) {
        size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= job.chunks)
            return;
        try {
            ParallelRegionGuard guard;
            (*job.fn)(chunk);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.error_mutex);
            if (!job.error)
                job.error = std::current_exception();
        }
        if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last chunk done: wake the dispatching thread. The empty
            // critical section orders the notify after its wait() check.
            std::lock_guard<std::mutex> lock(mutex_);
            done_cv_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen_generation = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_cv_.wait(lock, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            job = job_;
        }
        if (job)
            drainJob(*job);
    }
}

void
ThreadPool::run(size_t chunks, const std::function<void(size_t)> &fn)
{
    if (chunks == 0)
        return;
    if (chunks == 1) {
        ParallelRegionGuard guard;
        fn(0);
        return;
    }

    // One job at a time: concurrent dispatching threads (e.g. two
    // renderers owned by different application threads) queue here
    // instead of clobbering each other's job state.
    std::lock_guard<std::mutex> dispatch(dispatch_mutex_);

    ensureWorkers(chunks - 1);

    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->chunks = chunks;
    job->remaining.store(chunks, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
        ++generation_;
    }
    wake_cv_.notify_all();

    drainJob(*job);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return job->remaining.load(std::memory_order_acquire) == 0;
        });
        if (job_ == job)
            job_.reset();
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

} // namespace neo
