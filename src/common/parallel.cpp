#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/env.h"
#include "common/logging.h"

namespace neo
{

namespace
{

thread_local bool t_inside_parallel = false;

/** RAII marker for "this thread is executing a chunk body". */
struct ParallelRegionGuard
{
    ParallelRegionGuard() { t_inside_parallel = true; }
    ~ParallelRegionGuard() { t_inside_parallel = false; }
};

} // namespace

int
hardwareThreadCount()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(std::min<unsigned>(n, kMaxThreads));
}

ThreadAffinity
parseThreadAffinity(const char *value)
{
    if (value && std::strcmp(value, "compact") == 0)
        return ThreadAffinity::Compact;
    if (value && std::strcmp(value, "scatter") == 0)
        return ThreadAffinity::Scatter;
    return ThreadAffinity::None;
}

ThreadAffinity
threadAffinityMode()
{
    // An unrecognized value (e.g. a "compat" typo) silently behaving
    // like None cost real debugging time — envChoice diagnoses it, once,
    // through the shared warn-once registry (so env::resetWarnings()
    // re-arms the diagnostic for tests).
    static const char *const kModes[] = {"none", "compact", "scatter"};
    const int mode = env::envChoice("NEO_THREAD_AFFINITY", kModes, 3, 0);
    return mode == 1 ? ThreadAffinity::Compact
           : mode == 2 ? ThreadAffinity::Scatter
                       : ThreadAffinity::None;
}

int
affinityCpuForWorker(ThreadAffinity mode, int worker, int cpus)
{
    if (cpus <= 1 || worker < 0)
        return 0;
    // Slot 0 is the dispatching thread's conventional home; workers
    // start at slot 1.
    const int slot = worker + 1;
    if (mode == ThreadAffinity::Compact)
        return slot % cpus;
    // Scatter: even slots walk the lower half of the index range, odd
    // slots the upper half — on the common two-socket enumeration this
    // alternates sockets, spreading memory bandwidth. Each half wraps
    // within itself, so odd cpu counts cannot collide two workers on
    // one cpu while another sits idle.
    const int half = cpus / 2;
    if (slot % 2)
        return half + (slot / 2) % (cpus - half);
    return (slot / 2) % half;
}

namespace
{

/** Best-effort pin of the calling thread (no-op off Linux). */
void
applyWorkerAffinity(ThreadAffinity mode, int worker)
{
    if (mode == ThreadAffinity::None)
        return;
#if defined(__linux__)
    const int cpu =
        affinityCpuForWorker(mode, worker, hardwareThreadCount());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu), &set);
    // Failure (e.g. a cgroup cpuset excluding the cpu) is harmless:
    // the worker just stays unpinned.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)worker;
#endif
}

} // namespace

int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return std::min(requested, kMaxThreads);
    if (requested < 0)
        return hardwareThreadCount();

    const char *env = std::getenv("NEO_THREADS");
    if (!env || !*env)
        return 1;
    if (std::strcmp(env, "auto") == 0 || std::strcmp(env, "0") == 0)
        return hardwareThreadCount();
    long v = 0;
    // Full-string consumption (common/env): "4garbage" must not silently
    // run with 4 threads (nor "garbage" with 1 and no diagnostic). The
    // "auto" special case above keeps this off envLong, but the warn-once
    // state lives in env's registry so resetWarnings() covers it.
    if (!neo::env::parseLong(env, &v) || v <= 0) {
        if (neo::env::shouldWarnOnce("NEO_THREADS"))
            warn("NEO_THREADS=%s is not a positive integer or \"auto\"; "
                 "using 1 thread",
                 env);
        return 1;
    }
    return std::min(static_cast<int>(std::min<long>(v, kMaxThreads)),
                    kMaxThreads);
}

size_t
parallelChunkCount(size_t n, int threads)
{
    size_t t = threads < 1
                   ? 1
                   : static_cast<size_t>(std::min(threads, kMaxThreads));
    return std::min(n, t);
}

ParallelRange
parallelChunkRange(size_t n, size_t chunks, size_t chunk)
{
    ParallelRange r;
    if (chunks == 0 || chunk >= chunks)
        return r;
    const size_t base = n / chunks;
    const size_t extra = n % chunks;
    r.begin = chunk * base + std::min(chunk, extra);
    r.end = r.begin + base + (chunk < extra ? 1 : 0);
    return r;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

int
ThreadPool::workerCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(workers_.size());
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

bool
ThreadPool::insideParallelRegion()
{
    return t_inside_parallel;
}

void
ThreadPool::ensureWorkers(size_t wanted)
{
    std::lock_guard<std::mutex> lock(mutex_);
    wanted = std::min(wanted, static_cast<size_t>(kMaxThreads - 1));
    // The affinity mode is sampled at spawn time, so a pool created
    // after setting NEO_THREAD_AFFINITY picks it up (and the smoke test
    // can exercise it with a private pool).
    const ThreadAffinity affinity = threadAffinityMode();
    while (workers_.size() < wanted) {
        const int index = static_cast<int>(workers_.size());
        workers_.emplace_back([this, affinity, index] {
            applyWorkerAffinity(affinity, index);
            workerLoop();
        });
    }
}

void
ThreadPool::drainJob(JobFn fn, void *ctx, size_t chunks, uint64_t epoch)
{
    // Truncate to the epoch bits actually stored in the claim word.
    epoch &= (uint64_t{1} << (64 - kClaimChunkBits)) - 1;
    uint64_t cur = claim_.load(std::memory_order_relaxed);
    for (;;) {
        // The claim word packs {epoch, next chunk}. A successful CAS both
        // claims a chunk and proves the slot still holds the job this
        // thread saw — once the slot is reused for a newer job the epoch
        // bits differ, the CAS cannot succeed, and this thread backs out
        // without ever touching the new job's counters.
        if ((cur >> kClaimChunkBits) != epoch)
            return;
        const size_t chunk =
            cur & ((uint64_t{1} << kClaimChunkBits) - 1);
        if (chunk >= chunks)
            return;
        if (!claim_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed))
            continue; // cur reloaded by the failed CAS
        try {
            ParallelRegionGuard guard;
            fn(ctx, chunk);
        } catch (...) {
            // Only current-epoch claimants reach here, so this records
            // into the job that is actually running.
            std::lock_guard<std::mutex> lock(error_mutex_);
            if (!error_)
                error_ = std::current_exception();
        }
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last chunk done: wake the dispatching thread. The empty
            // critical section orders the notify after its wait() check.
            std::lock_guard<std::mutex> lock(mutex_);
            done_cv_.notify_all();
        }
        cur = claim_.load(std::memory_order_relaxed);
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen_generation = 0;
    for (;;) {
        JobFn fn = nullptr;
        void *ctx = nullptr;
        size_t chunks = 0;
        uint64_t epoch = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_cv_.wait(lock, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            epoch = generation_;
            fn = fn_;
            ctx = ctx_;
            chunks = chunks_;
        }
        if (fn)
            drainJob(fn, ctx, chunks, epoch);
    }
}

void
ThreadPool::run(size_t chunks, JobFn fn, void *ctx)
{
    if (chunks == 0)
        return;
    if (chunks == 1) {
        ParallelRegionGuard guard;
        fn(ctx, 0);
        return;
    }
    if (chunks >= (uint64_t{1} << kClaimChunkBits))
        panic("ThreadPool::run: chunk count %zu exceeds the claim-word "
              "limit",
              chunks);

    // One job at a time: concurrent dispatching threads (e.g. two
    // renderers owned by different application threads) queue here
    // instead of clobbering each other's job state.
    std::lock_guard<std::mutex> dispatch(dispatch_mutex_);

    ensureWorkers(chunks - 1);

    // Refill the preallocated job slot *inside* the lock: workers only
    // read the slot fields under mutex_ (on wake), but a freshly spawned
    // or spuriously woken worker may do so at any moment — writing the
    // fields and bumping the generation in one critical section
    // guarantees every snapshot is internally consistent. A consistent
    // snapshot of an already-completed job is harmless: its claim word
    // is saturated (next == chunks) until this store replaces it, so the
    // epoch-checked CAS in drainJob can never claim through it.
    uint64_t epoch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = fn;
        ctx_ = ctx;
        chunks_ = chunks;
        error_ = nullptr;
        remaining_.store(chunks, std::memory_order_relaxed);
        epoch = ++generation_;
        claim_.store(epoch << kClaimChunkBits,
                     std::memory_order_release);
    }
    wake_cv_.notify_all();

    drainJob(fn, ctx, chunks, epoch);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return remaining_.load(std::memory_order_acquire) == 0;
        });
    }
    if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        std::rethrow_exception(e);
    }
}

} // namespace neo
