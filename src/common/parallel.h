/**
 * @file
 * Deterministic tile-parallel execution layer: a small persistent thread
 * pool plus parallelFor with *static* chunking.
 *
 * Determinism contract (guarded by tests/test_determinism.cpp): for any
 * thread count, every parallel section of the pipeline produces bit-exact
 * the same results as the serial path, because
 *  - the iteration space is split into at most `threads` contiguous
 *    chunks whose boundaries depend only on (n, threads), never on timing;
 *  - chunk bodies write disjoint outputs (tiles own disjoint pixel
 *    rectangles, per-Gaussian slots are index-addressed);
 *  - accumulators are kept per chunk and merged in fixed chunk order
 *    after the join.
 * With threads == 1 the body runs inline on the caller thread and the pool
 * is never touched, reproducing the historical serial path bit for bit.
 *
 * Thread count resolution: an explicit positive request wins; a request of
 * 0 defers to the NEO_THREADS environment variable ("auto" or a positive
 * integer); otherwise the pipeline stays serial. A negative request asks
 * for one thread per hardware core.
 */

#ifndef NEO_COMMON_PARALLEL_H
#define NEO_COMMON_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace neo
{

/** Upper bound on worker threads (sanity cap for bad NEO_THREADS values). */
constexpr int kMaxThreads = 256;

/** Number of hardware threads, at least 1. */
int hardwareThreadCount();

/**
 * Opt-in worker CPU affinity, the first step of the NUMA roadmap item.
 * Selected by NEO_THREAD_AFFINITY at worker spawn time:
 *  - unset / unrecognized -> None: workers stay unpinned (the default;
 *    behavior is exactly that of previous releases);
 *  - "compact": worker w pins to cpu (w + 1) % cpus — consecutive
 *    cores, leaving cpu 0 for the dispatching thread; best when the
 *    working set should stay within one socket's cache;
 *  - "scatter": workers alternate between the two halves of the cpu
 *    index range (the common two-socket enumeration), walking each half
 *    in order — spreads memory bandwidth across sockets.
 * Pinning changes scheduling only, never results: the deterministic
 * chunking contract is unaffected. Non-Linux builds parse the variable
 * but pinning is a no-op.
 */
enum class ThreadAffinity
{
    None,
    Compact,
    Scatter,
};

/** Parse a NEO_THREAD_AFFINITY value ("compact" / "scatter" / other). */
ThreadAffinity parseThreadAffinity(const char *value);

/** Affinity mode from the environment (None when unset/unrecognized). */
ThreadAffinity threadAffinityMode();

/**
 * The cpu index worker @p worker (0-based) pins to under @p mode with
 * @p cpus logical cpus. Pure function of its arguments (unit-tested);
 * slot 0 — the dispatching thread's conventional home — is skipped.
 */
int affinityCpuForWorker(ThreadAffinity mode, int worker, int cpus);

/**
 * Resolve a requested thread count to an effective one in [1, kMaxThreads]:
 * requested > 0 uses it verbatim (capped); requested == 0 consults
 * NEO_THREADS (positive integer, or "auto"/"0" for all hardware threads)
 * and defaults to 1; requested < 0 uses all hardware threads.
 */
int resolveThreadCount(int requested);

/** Half-open index range owned by one chunk of a parallel loop. */
struct ParallelRange
{
    size_t begin = 0;
    size_t end = 0;

    size_t size() const { return end - begin; }
};

/**
 * Number of chunks parallelFor uses for @p n items on @p threads threads:
 * min(n, max(1, threads)). Callers sizing per-chunk accumulators must use
 * this exact function so accumulator indices match body chunk indices.
 */
size_t parallelChunkCount(size_t n, int threads);

/**
 * Boundaries of chunk @p chunk of @p n items split into @p chunks
 * contiguous chunks whose sizes differ by at most one (the first
 * n % chunks chunks get the extra item). Pure function of its arguments.
 */
ParallelRange parallelChunkRange(size_t n, size_t chunks, size_t chunk);

/**
 * Persistent worker pool. One process-wide instance is shared by all
 * renderers (ThreadPool::shared()); workers are spawned lazily on first
 * use and park on a condition variable between jobs, so an idle pool
 * costs nothing and threads == 1 never creates any.
 *
 * Dispatch is heap-allocation-free: the one-at-a-time job lives in a
 * preallocated slot inside the pool (no per-run job record), and the
 * chunk body is passed as a function pointer plus context pointer (no
 * std::function), so the steady-state frame loop performs zero
 * allocations per parallel section at any thread count (guarded by
 * tests/test_frame_arena.cpp).
 */
class ThreadPool
{
  public:
    /** Chunk body: fn(ctx, chunk). */
    using JobFn = void (*)(void *ctx, size_t chunk);

    ThreadPool() = default;
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers currently spawned (excludes the calling thread). */
    int workerCount() const;

    /**
     * Execute fn(ctx, chunk) for every chunk in [0, chunks) and block
     * until all complete. The caller participates as a worker. Chunk
     * assignment is dynamic (work claiming), which is safe because chunk
     * bodies only touch chunk-indexed state. The first exception thrown
     * by any chunk is rethrown here after the join; only claimants of the
     * current job can record one, so concurrent callers cannot observe
     * each other's exceptions.
     *
     * Safe to call from multiple application threads: concurrent run()
     * calls serialize on an internal dispatch lock (one job at a time).
     * Not reentrant from inside a chunk body — use parallelFor, which
     * detects that case via insideParallelRegion() and runs inline.
     */
    void run(size_t chunks, JobFn fn, void *ctx);

    /** Allocation-free convenience overload for any callable. */
    template <typename F>
    void run(size_t chunks, F &&f)
    {
        using Fn = std::remove_reference_t<F>;
        run(chunks,
            [](void *ctx, size_t chunk) {
                (*static_cast<Fn *>(ctx))(chunk);
            },
            const_cast<void *>(
                static_cast<const void *>(std::addressof(f))));
    }

    /** Process-wide shared pool. */
    static ThreadPool &shared();

    /** True while the current thread is executing a chunk body. */
    static bool insideParallelRegion();

  private:
    /** Bits of the claim word holding the next-chunk counter. */
    static constexpr int kClaimChunkBits = 20;

    void ensureWorkers(size_t wanted);
    void workerLoop();
    /** Claim and execute chunks of the job tagged @p epoch. */
    void drainJob(JobFn fn, void *ctx, size_t chunks, uint64_t epoch);

    /** Serializes whole jobs: one dispatching thread at a time. */
    std::mutex dispatch_mutex_;
    mutable std::mutex mutex_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;

    // Preallocated job slot, reused by every dispatch. fn_/ctx_/chunks_
    // are written before the generation bump under mutex_, so a worker
    // that wakes for generation G reads G's fields. claim_ packs
    // {epoch : 64 - kClaimChunkBits, next_chunk : kClaimChunkBits}; the
    // epoch-checked CAS in drainJob guarantees a worker holding a stale
    // snapshot can never claim (or account against) a newer job that
    // reuses the slot.
    JobFn fn_ = nullptr;
    void *ctx_ = nullptr;
    size_t chunks_ = 0;
    std::atomic<uint64_t> claim_{0};
    std::atomic<size_t> remaining_{0};
    std::mutex error_mutex_;
    /** First exception thrown by any chunk of the current job. */
    std::exception_ptr error_;
    uint64_t generation_ = 0;
    bool stop_ = false;
};

/**
 * Deterministic statically-chunked parallel loop: invoke
 * body(begin, end, chunk) for every chunk of [0, n). With an effective
 * thread count <= 1 (or n <= 1, or when already inside a parallel region)
 * the body runs inline as body(0, n, 0) without touching the pool.
 *
 * Implemented as a template so the serial path is a direct call, and the
 * pooled path hands the pool a function pointer + context (never a
 * std::function), so the steady-state frame loop performs no per-call
 * heap allocations at any thread count.
 *
 * @param n iteration count
 * @param threads effective thread count (callers resolve requests via
 *        resolveThreadCount; values <= 1 mean serial)
 * @param body chunk body; must only write chunk-owned state
 */
template <typename Body>
void
parallelFor(size_t n, int threads, Body &&body)
{
    if (n == 0)
        return;
    const size_t chunks = parallelChunkCount(n, threads);
    if (chunks <= 1 || ThreadPool::insideParallelRegion()) {
        body(size_t{0}, n, size_t{0});
        return;
    }
    ThreadPool::shared().run(chunks, [&](size_t chunk) {
        ParallelRange r = parallelChunkRange(n, chunks, chunk);
        body(r.begin, r.end, chunk);
    });
}

/** Element-wise convenience wrapper over parallelFor: body(i) per index. */
template <typename Body>
void
parallelForEach(size_t n, int threads, Body &&body)
{
    parallelFor(n, threads, [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i)
            body(i);
    });
}

/**
 * Pack the items of [0, n) into contiguous weighted batches: each batch
 * is either a single item whose weight reaches @p grain on its own, or a
 * maximal run of smaller items whose combined weight stays at (about)
 * @p grain. The result is a pure function of (n, grain, weights) — batch
 * boundaries never depend on the thread count — so batched dispatch
 * preserves the determinism contract. @p out is reused (cleared first);
 * zero-weight items simply join the current batch, and a batch always
 * holds at least one item.
 *
 * This is the dispatch-granularity fix for stages made of thousands of
 * tiny independent problems (per-tile sorts): instead of one work item
 * per tile — where the per-item bookkeeping dwarfs a 3-entry sort — the
 * pool sees fused ~grain-sized batches of roughly equal cost, so static
 * chunking over batches is weight-balanced even when tile sizes span
 * four orders of magnitude.
 */
template <typename WeightFn>
void
buildWeightedBatchesInto(std::vector<ParallelRange> &out, size_t n,
                         size_t grain, WeightFn &&weight)
{
    out.clear();
    size_t begin = 0;
    size_t acc = 0;
    for (size_t i = 0; i < n; ++i) {
        const size_t w = weight(i);
        if (i > begin && acc + w > grain) {
            out.push_back({begin, i});
            begin = i;
            acc = 0;
        }
        acc += w;
        if (acc >= grain) {
            out.push_back({begin, i + 1});
            begin = i + 1;
            acc = 0;
        }
    }
    if (begin < n)
        out.push_back({begin, n});
}

/**
 * Fused batched dispatch: invoke body(begin, end, chunk) once per batch
 * (item range [begin, end)), where @p chunk is the pool-chunk index the
 * batch executes under — the index callers use for per-chunk scratch and
 * accumulators, sized with parallelChunkCount(batches.size(), threads).
 * Batches are statically chunked in batch order exactly like parallelFor
 * items, so with weight-equalized batches every chunk carries roughly
 * equal work; the serial path runs the batches in order inline.
 */
template <typename Body>
void
parallelForBatched(const std::vector<ParallelRange> &batches, int threads,
                   Body &&body)
{
    parallelFor(batches.size(), threads,
                [&](size_t b_begin, size_t b_end, size_t chunk) {
                    for (size_t b = b_begin; b < b_end; ++b)
                        body(batches[b].begin, batches[b].end, chunk);
                });
}

/**
 * parallelFor with one default-constructed accumulator per chunk:
 * body(begin, end, acc) runs once per chunk with exclusive access to its
 * accumulator (counters, scratch buffers, ...). Returns the accumulators
 * in chunk order so the caller merges them deterministically. The vector
 * is sized with parallelChunkCount, keeping the accumulator-per-chunk
 * invariant single-sourced.
 */
template <typename Accum, typename Body>
std::vector<Accum>
parallelForAccumulate(size_t n, int threads, Body &&body)
{
    std::vector<Accum> acc(parallelChunkCount(n, threads));
    parallelFor(n, threads, [&](size_t begin, size_t end, size_t chunk) {
        body(begin, end, acc[chunk]);
    });
    return acc;
}

} // namespace neo

#endif // NEO_COMMON_PARALLEL_H
