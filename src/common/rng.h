/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every synthetic workload in this repository is seeded, so an experiment
 * reruns bit-identically. We use xoshiro256** which is fast, has a 256-bit
 * state, and passes BigCrush; std::mt19937 is avoided because its state is
 * large and its seeding semantics differ across standard libraries.
 */

#ifndef NEO_COMMON_RNG_H
#define NEO_COMMON_RNG_H

#include <cstdint>

#include "common/math.h"

namespace neo
{

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Uniform integer in [0, n). @p n must be > 0. */
    uint64_t below(uint64_t n);

    /** Standard normal via Box-Muller (cached second value). */
    float normal();

    /** Normal with explicit mean and standard deviation. */
    float normal(float mean, float stddev);

    /** Uniformly distributed point on the unit sphere. */
    Vec3 onSphere();

    /** Uniform random unit quaternion (Shoemake's method). */
    Quat rotation();

  private:
    uint64_t s_[4];
    bool has_cached_normal_ = false;
    float cached_normal_ = 0.0f;
};

} // namespace neo

#endif // NEO_COMMON_RNG_H
