#include "common/frame_arena.h"

#include <cstddef>

namespace neo
{

size_t
FrameArena::retainedBytes() const
{
    size_t total = 0;
    for (const Entry &e : slots_)
        total += e.slot->capacityBytes();
    return total;
}

} // namespace neo
