/**
 * @file
 * Minimal status-message helpers in the gem5 spirit: inform() for status,
 * warn() for suspicious-but-continuable conditions, fatal() for user errors
 * and panic() for internal invariant violations.
 */

#ifndef NEO_COMMON_LOGGING_H
#define NEO_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace neo
{

/** Verbosity gate for inform(); warn/fatal/panic are never suppressed. */
void setVerbose(bool verbose);
bool verbose();

/** Informational message (printf-style), suppressed unless verbose. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Non-fatal warning (printf-style). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** User/configuration error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace neo

#endif // NEO_COMMON_LOGGING_H
