/**
 * @file
 * Validated environment-knob parsing, shared by every NEO_* config
 * surface (thread count, bench scene scale, integrity attest period,
 * NEO_SERVER_* and NEO_SERVER_NET_* serving knobs).
 *
 * The contract all call sites want is identical: a knob is either a
 * full-string-consumed number inside its documented range, or it is
 * ignored with a warn-once diagnostic and the compiled-in default —
 * silently consuming a numeric prefix ("8x" -> 8, "2garbage" -> 2) is
 * exactly the bug class these helpers exist to prevent, and a knob that
 * silently does nothing costs real debugging time.
 */

#ifndef NEO_COMMON_ENV_H
#define NEO_COMMON_ENV_H

namespace neo::env
{

/** Full-string strtol: true iff @p text is one complete base-10
    integer (no trailing junk, no empty string). */
bool parseLong(const char *text, long *out);

/** Full-string strtod: true iff @p text is one complete number. */
bool parseDouble(const char *text, double *out);

/**
 * Integer knob: getenv(@p name), validated full-string parse, range
 * check [@p lo, @p hi]. Unset or empty returns @p def silently; a
 * malformed or out-of-range value warns once per knob name and returns
 * @p def.
 */
long envLong(const char *name, long def, long lo, long hi);

/** Floating-point knob with the same warn-once validated contract. */
double envDouble(const char *name, double def, double lo, double hi);

/**
 * String-choice knob: getenv(@p name) must equal one of the @p count
 * strings in @p choices; returns its index. Unset or empty returns
 * @p def silently; an unrecognized value warns once (listing the valid
 * choices) and returns @p def.
 */
int envChoice(const char *name, const char *const *choices, int count,
              int def);

/**
 * Shared warn-once registry for bespoke parsers that cannot use
 * envLong/envChoice directly (e.g. NEO_THREADS's "auto" special case):
 * true exactly once per knob name until resetWarnings(). The caller
 * emits its own diagnostic.
 */
bool shouldWarnOnce(const char *name);

/** Test hook: forget which knob names have already warned, so a suite
    can assert the diagnostic fires again. */
void resetWarnings();

} // namespace neo::env

#endif // NEO_COMMON_ENV_H
