/**
 * @file
 * Digest64 — a fast xxhash-style 64-bit streaming digest used by the
 * integrity fences (common/integrity.h) to cross-check control-critical
 * per-frame state against its shadow copy. Not cryptographic: the goal is
 * detecting random corruption (single-event upsets, stray writes), where
 * any single flipped bit must change the digest.
 *
 * The main accumulator is four independent lanes fed round-robin: each
 * 64-bit word gets one multiply-rotate round (as in xxhash), but
 * consecutive words land in different lanes, so the per-word dependency
 * chain is a quarter of the single-lane length and the fence cost over an
 * instance-sized array pipelines instead of serializing — this is what
 * keeps check-mode overhead inside its ≤10 % ms/frame budget. A separate
 * flag lane accumulates bools multiplicatively (base-3, so any flipped
 * flag in a sequence of up to 2^40 flags changes the lane value). Types
 * with padding bytes implement digestInto() over their semantic fields
 * only — hashing raw object bytes would fold uninitialized padding into
 * the digest and break determinism.
 */

#ifndef NEO_COMMON_DIGEST_H
#define NEO_COMMON_DIGEST_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace neo
{

/** Streaming 64-bit digest (see file comment). */
class Digest64
{
  public:
    explicit Digest64(uint64_t seed = 0)
    {
        lanes_[0] = seed + kPrime1 + kPrime2;
        lanes_[1] = seed + kPrime2;
        lanes_[2] = seed + kPrime5;
        lanes_[3] = seed - kPrime1;
    }

    /** Mix one 64-bit word into the next main lane (round-robin). */
    void u64v(uint64_t v)
    {
        uint64_t &h = lanes_[next_ & 3u];
        h = std::rotl(h ^ (v * kPrime2), 27) * kPrime1 + kPrime4;
        ++next_;
    }

    void u32v(uint32_t v) { u64v(v); }
    void f32v(float v) { u64v(std::bit_cast<uint32_t>(v)); }

    /** Accumulate a bool into the flag lane (order-sensitive). */
    void flag(bool b) { flags_ = flags_ * 3 + (b ? 2 : 1); }

    /** Mix a raw byte range, 8 bytes per main-lane round. */
    void bytes(const void *data, size_t n)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            uint64_t v;
            std::memcpy(&v, p + i, 8);
            u64v(v);
        }
        if (i < n) {
            uint64_t tail = 0;
            for (int shift = 0; i < n; ++i, shift += 8)
                tail |= static_cast<uint64_t>(p[i]) << shift;
            u64v(tail);
        }
    }

    /** Finalize: avalanche every lane into one value. */
    uint64_t finish() const
    {
        // Word count folded in: lane assignment is positional, so two
        // streams whose words collapse to the same lane states but have
        // different lengths still digest apart.
        uint64_t h = std::rotl(lanes_[0], 1) + std::rotl(lanes_[1], 7) +
                     std::rotl(lanes_[2], 12) + std::rotl(lanes_[3], 18) +
                     next_;
        h ^= flags_ * kPrime2;
        h ^= h >> 33;
        h *= kPrime2;
        h ^= h >> 29;
        h *= kPrime3;
        h ^= h >> 32;
        return h;
    }

  private:
    static constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ull;
    static constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4full;
    static constexpr uint64_t kPrime3 = 0x165667b19e3779f9ull;
    static constexpr uint64_t kPrime4 = 0x85ebca77c2b2ae63ull;
    static constexpr uint64_t kPrime5 = 0x27d4eb2f165667c5ull;

    uint64_t lanes_[4];
    uint64_t next_ = 0;
    uint64_t flags_ = 1;
};

/**
 * Opt-in marker: T's object bytes are a deterministic function of its
 * value even though `has_unique_object_representations` is false. The
 * trait is about equality (e.g. -0.0f == +0.0f with different bytes),
 * but the fences compare *bit patterns*, not values — a padding-free
 * float struct is a perfectly sound raw-byte digest input. Specialize to
 * std::true_type for such types (float itself is pre-registered).
 */
template <typename T>
struct DigestAsRawBytes : std::false_type
{
};

template <>
struct DigestAsRawBytes<float> : std::true_type
{
};

/**
 * Digest of @p n elements at @p data. Types that provide
 * `digestInto(Digest64&) const` are hashed field by field (required for
 * structs with padding, whose raw bytes are not deterministic); all other
 * types must have unique object representations (or opt in via
 * DigestAsRawBytes) and are hashed as raw bytes. The element count is
 * folded in, so a truncated span never collides with its prefix.
 */
template <typename T>
uint64_t
digestSpan(const T *data, size_t n)
{
    Digest64 d;
    d.u64v(static_cast<uint64_t>(n));
    if constexpr (requires(const T &t, Digest64 &dd) { t.digestInto(dd); }) {
        for (size_t i = 0; i < n; ++i)
            data[i].digestInto(d);
    } else {
        static_assert(std::has_unique_object_representations_v<T> ||
                          DigestAsRawBytes<T>::value,
                      "digestSpan over a padded type needs digestInto()");
        d.bytes(data, n * sizeof(T));
    }
    return d.finish();
}

} // namespace neo

#endif // NEO_COMMON_DIGEST_H
