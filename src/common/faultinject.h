/**
 * @file
 * neo::faultinject — deterministic bit-flip injection into named control
 * arrays, the test hook of the integrity-hardened serving mode
 * (common/integrity.h). Production code marks its injection points with
 * corrupt()/corruptTiles() calls between the seal and verify fences of a
 * control structure; a test arms one flip with armBitFlip() and the next
 * matching point execution flips exactly one RNG-chosen bit, then
 * disarms itself. Disarmed, a point costs one relaxed atomic load.
 *
 * Determinism: the flipped (element, byte, bit) is a pure function of the
 * arming seed. For points executed inside parallel regions (the per-tile
 * CSR fence), arm with an explicit element index — "first execution wins"
 * would race between workers; with a pinned (point, index) the flip lands
 * identically at any thread count.
 */

#ifndef NEO_COMMON_FAULTINJECT_H
#define NEO_COMMON_FAULTINJECT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace neo::faultinject
{

/** Description of the most recent injected flip (for test assertions). */
struct Injection
{
    std::string point;
    int64_t index = -1;
    size_t elem = 0; //!< element whose bytes were flipped
    size_t byte = 0; //!< byte offset within the element
    int bit = 0;     //!< flipped bit within that byte
    uint64_t domain = 0; //!< fault domain the flip landed in
};

/**
 * Arm one single-bit flip at injection point @p point. The flip fires on
 * the next corrupt() call whose point name matches and whose index
 * matches @p index (or on the first non-empty call when @p index < 0),
 * then the hook disarms itself. @p seed selects the element/byte/bit
 * deterministically.
 *
 * @p domain pins the flip to one fault domain (see DomainScope): with
 * domain >= 0 only corrupt() calls executing inside that domain's scope
 * can fire it — the multi-session server scopes each session's frame
 * work, so an armed flip lands in exactly the targeted session's state.
 * The default (-1) matches any domain, preserving single-renderer tests.
 */
void armBitFlip(const char *point, int64_t index = -1, uint64_t seed = 1,
                int64_t domain = -1);

/** Fault domain of the calling thread (0 outside any DomainScope). */
uint64_t currentDomain();

/**
 * RAII fault-domain scope (thread-local): injection points executed
 * while the scope is live — including from pool workers only when they
 * scope themselves, which they don't — belong to domain @p domain.
 * Parallel-region injection points (the per-tile CSR fence) run on
 * workers outside the scope; domain-pinned arming therefore targets the
 * frame-control-thread fences, which is where the session layer injects.
 */
class DomainScope
{
  public:
    explicit DomainScope(uint64_t domain);
    ~DomainScope();
    DomainScope(const DomainScope &) = delete;
    DomainScope &operator=(const DomainScope &) = delete;

  private:
    uint64_t prev_;
};

/** Cancel a pending flip. */
void disarm();

/** True while a flip is armed and has not fired yet. */
bool pending();

/** Total flips fired since process start. */
uint64_t injectionCount();

/** Copy the most recent injection into @p out; false if none fired yet. */
bool lastInjection(Injection *out);

/**
 * Injection point: when armed for (@p point, @p index), flip one bit of
 * @p data and disarm. The array is @p elems elements of @p stride bytes;
 * only the first @p semantic_bytes of each element are candidate targets,
 * so padding bytes (invisible to field-aware digests) and trap-prone
 * fields can be excluded. No-op while disarmed.
 */
void corrupt(const char *point, int64_t index, void *data, size_t elems,
             size_t stride, size_t semantic_bytes);

/**
 * Byte count of an element that is a legitimate flip target. Defaults to
 * the whole element; specialized for padded types (e.g. TileEntry flips
 * only its id/depth bytes — padding is not covered by the digest, and a
 * multi-bit bool is undefined behavior, so neither is a valid fault
 * model target).
 */
template <typename T>
struct SemanticBytes
{
    static constexpr size_t value = sizeof(T);
};

/**
 * Injection point over a per-tile structure: element index = tile index,
 * one corrupt() call per non-empty tile. The pending() fast path keeps
 * the disarmed cost at one atomic load for the whole structure.
 */
template <typename T>
void
corruptTiles(const char *point, std::vector<std::vector<T>> &tiles)
{
    if (!pending())
        return;
    for (size_t t = 0; t < tiles.size(); ++t)
        if (!tiles[t].empty())
            corrupt(point, static_cast<int64_t>(t), tiles[t].data(),
                    tiles[t].size(), sizeof(T), SemanticBytes<T>::value);
}

/**
 * Injection point over a flat array (the feature SoA fences and the
 * attest-mode frame pixels): element index 0, one corrupt() call for the
 * whole span.
 */
template <typename T>
void
corruptSpan(const char *point, std::vector<T> &data)
{
    if (!pending() || data.empty())
        return;
    corrupt(point, 0, data.data(), data.size(), sizeof(T),
            SemanticBytes<T>::value);
}

// --- Network fault domain ----------------------------------------------
//
// The socket front end (serve/net/) extends the fault model from memory
// bit flips to the wire: a hostile or failing peer tears frames at
// adversarial byte offsets, interleaves garbage, hangs mid-frame, or
// disconnects abruptly. The chaos suite needs those behaviors to be a
// pure function of a seed, so a failing run replays exactly — the same
// discipline armBitFlip applies to in-memory state.

/** What a network fault does to one outgoing wire buffer. */
enum class NetFault : uint8_t
{
    None,       //!< write the buffer untouched
    TornWrite,  //!< split the buffer at adversarial offsets
    Garbage,    //!< insert seeded garbage bytes at an adversarial offset
    Disconnect, //!< write a prefix, then close the socket abruptly
    Stall,      //!< write a prefix, hold the rest past a timeout
};

/** Lower-case fault name ("torn-write", ...). */
const char *netFaultName(NetFault fault);

/**
 * Deterministic mangling plan for one @p len-byte wire buffer. All
 * offsets are a pure function of (@p kind, @p seed, @p len,
 * @p frame_size): the same arming replays byte-for-byte.
 */
struct NetFaultPlan
{
    NetFault kind = NetFault::None;
    /** Ascending split offsets in (0, len): write [0,s0), [s0,s1), ...
        as separate segments (TornWrite; also used by Stall). */
    std::vector<size_t> splits;
    /** Garbage bytes to insert before offset @p garbage_offset. */
    std::vector<uint8_t> garbage;
    size_t garbage_offset = 0;
    /** Bytes of the buffer to write before abruptly closing
        (Disconnect) or before stalling (Stall); len otherwise. */
    size_t prefix = 0;
    /** How long the Stall fault holds the remainder, in milliseconds. */
    double stall_ms = 0.0;
};

/**
 * Build the deterministic plan for mangling a @p len-byte buffer.
 * Split/garbage/truncation offsets are biased to the adversarial frame
 * positions — inside the magic, one byte either side of the
 * @p frame_size header boundary, and the last byte — because those are
 * the offsets a length-prefixed parser mishandles when it mishandles
 * anything. @p stall_ms only shapes Stall plans.
 */
NetFaultPlan planNetFault(NetFault kind, uint64_t seed, size_t len,
                          size_t frame_size, double stall_ms = 0.0);

/** @p n seeded garbage bytes, biased toward bytes that look like the
    start of a frame (magic prefixes) so resync logic is actually
    exercised rather than trivially skipping noise. */
std::vector<uint8_t> netGarbageBytes(uint64_t seed, size_t n);

/**
 * Arm a short-write fault on a socket send path: the next @p count
 * writeBudget() calls for (@p point, @p conn) return a seeded prefix
 * length instead of the full requested size, deterministically forcing
 * the partial-write path that real kernels only take under pressure.
 * @p conn < 0 matches any connection.
 */
void armShortWrite(const char *point, int64_t conn, uint64_t seed,
                   int count = 1);

/**
 * Injection point on a send path: how many of @p want bytes the caller
 * may pass to this write. Returns @p want while disarmed (one relaxed
 * atomic load); an armed short-write returns a seeded value in
 * [1, want - 1] (or want when want < 2) and burns one count.
 */
size_t writeBudget(const char *point, int64_t conn, size_t want);

/** Cancel a pending short-write fault. */
void disarmShortWrite();

/** Short writes forced since process start. */
uint64_t shortWriteCount();

// --- Durability fault domain --------------------------------------------
//
// The crash-consistency layer (serve/durable/) extends the fault model
// from memory and the wire to stable storage: a process dying mid-write
// leaves a torn file, a disk or filesystem bug flips bytes at rest, and
// SIGKILL between "write temp" and "rename into place" leaves a stale
// generation plus an orphaned temp file. Arming a durable fault makes
// the *production* snapshot/journal writers take exactly those paths
// deterministically, so the loader's digest-verification and
// fall-back-a-generation behavior is tested through real file I/O.

/** What a durability fault does to one file write. */
enum class DurableFault : uint8_t
{
    None,        //!< write untouched
    TornWrite,   //!< persist only a prefix (crash mid-write)
    FlipBit,     //!< flip one seeded bit of the buffer (rot at rest)
    AbortRename, //!< write the temp file fully, then skip the rename
};

/** Lower-case fault name ("torn-write", "flip-bit", "abort-rename"). */
const char *durableFaultName(DurableFault fault);

/**
 * Arm one durability fault at injection point @p point (the writers use
 * "durable.snapshot" and "durable.journal"). It fires on the next
 * matching hook call, then disarms itself. @p at >= 0 pins the
 * truncation length (TornWrite) or the flipped byte offset (FlipBit);
 * -1 picks a seeded offset — every offset is reachable by sweeping
 * @p at, which is what the torn-file taxonomy tests do.
 */
void armDurableFault(const char *point, DurableFault kind,
                     uint64_t seed = 1, int64_t at = -1);

/** Cancel a pending durability fault. */
void disarmDurableFault();

/** True while a durability fault is armed and has not fired. */
bool durablePending();

/** Durability faults fired since process start. */
uint64_t durableFaultCount();

/**
 * Injection point on a file-write path: how many of @p len bytes the
 * caller should actually persist. Returns @p len while disarmed; an
 * armed TornWrite for @p point returns a prefix length in [0, len) and
 * burns the arm.
 */
size_t durableWriteLimit(const char *point, size_t len);

/**
 * Injection point on an encoded file image: an armed FlipBit for
 * @p point flips one bit (at the pinned or seeded offset) and burns
 * the arm. No-op while disarmed.
 */
void durableCorrupt(const char *point, uint8_t *data, size_t len);

/**
 * Injection point between temp-file write and rename: true when an
 * armed AbortRename for @p point fired — the caller must leave the
 * temp file in place and report failure, exactly what a kill between
 * write and rename leaves behind. Burns the arm.
 */
bool durableAbortRename(const char *point);

} // namespace neo::faultinject

#endif // NEO_COMMON_FAULTINJECT_H
